(* Hot-path microbenchmarks with in-binary baselines.

   Each benchmark measures the current implementation against the code it
   replaced, kept verbatim in this file ([Rle_ref] is the byte-wise diff
   encoder; the software-MMU baseline is the same [Vm] with the fast path
   switched off), so the speedup numbers survive without needing an old
   checkout to compare against.  Results go to stdout and BENCH_6.json.

   Usage: bench/micro.exe [output.json]   (default BENCH_6.json) *)

open Tmk_sim
open Tmk_dsm

(* ------------------------------------------------------------------ *)
(* Baseline: the pre-word-granular RLE encoder, byte-at-a-time.        *)

module Rle_ref = struct
  type run = { offset : int; bytes : Bytes.t }

  let encode ?(join_gap = 4) ~old_ current =
    let n = Bytes.length old_ in
    if Bytes.length current <> n then
      invalid_arg "Rle_ref.encode: buffers must have equal length";
    let rec find_diff i =
      if i >= n then None
      else if Bytes.unsafe_get old_ i <> Bytes.unsafe_get current i then Some i
      else find_diff (i + 1)
    in
    let rec find_same i =
      if i >= n then n
      else if Bytes.unsafe_get old_ i = Bytes.unsafe_get current i then i
      else find_same (i + 1)
    in
    let rec spans acc i =
      match find_diff i with
      | None -> List.rev acc
      | Some start ->
        let stop = find_same (start + 1) in
        (match acc with
        | (s0, e0) :: rest when start - e0 < join_gap -> spans ((s0, stop) :: rest) stop
        | _ -> spans ((start, stop) :: acc) stop)
    in
    let to_run (start, stop) =
      { offset = start; bytes = Bytes.sub current start (stop - start) }
    in
    List.map to_run (spans [] 0)

  let apply t target =
    let n = Bytes.length target in
    let apply_run { offset; bytes } =
      let len = Bytes.length bytes in
      if offset < 0 || offset + len > n then invalid_arg "Rle_ref.apply: run out of bounds";
      Bytes.blit bytes 0 target offset len
    in
    List.iter apply_run t
end

(* ------------------------------------------------------------------ *)
(* Measurement: grow the iteration count until the timed section runs
   long enough to trust, then take the best rate of three trials (the
   standard defence against scheduler noise on a shared machine). *)

let rate_of f =
  let timed n =
    let t0 = Unix.gettimeofday () in
    f n;
    let dt = Unix.gettimeofday () -. t0 in
    (n, dt)
  in
  let rec calibrate n =
    let n, dt = timed n in
    if dt >= 0.2 || n >= 1 lsl 24 then n else calibrate (n * 4)
  in
  let n = calibrate 256 in
  let best = ref 0.0 in
  for _ = 1 to 3 do
    let n, dt = timed n in
    let r = float_of_int n /. dt in
    if r > !best then best := r
  done;
  !best

type bench = {
  b_name : string;
  b_unit : string;
  b_baseline : float option;  (* None: nothing comparable to measure against *)
  b_current : float;
}

let speedup b = Option.map (fun base -> b.b_current /. base) b.b_baseline

(* ------------------------------------------------------------------ *)
(* Fixtures: a page with ~10% of its bytes modified in scattered runs,
   the diff shape §4.2's basic-operation costs are quoted for.          *)

let page_size = Tmk_mem.Vm.page_size

let make_pair () =
  let twin = Bytes.make page_size 'a' in
  let page = Bytes.copy twin in
  for i = 0 to 50 do
    Bytes.set page (i * 80) 'b';
    Bytes.set page ((i * 80) + 1) 'c'
  done;
  (twin, page)

let sanity () =
  (* The word-granular encoder must produce byte-identical runs to the
     byte-wise baseline — it is the digest-preservation invariant, checked
     here on the bench fixture before any number is reported. *)
  let twin, page = make_pair () in
  let reference =
    List.map
      (fun r -> (r.Rle_ref.offset, Bytes.to_string r.Rle_ref.bytes))
      (Rle_ref.encode ~old_:twin page)
  in
  let current =
    List.map
      (fun r -> (r.Tmk_util.Rle.offset, Bytes.to_string r.Tmk_util.Rle.bytes))
      (Tmk_util.Rle.runs (Tmk_util.Rle.encode ~old_:twin page))
  in
  if reference <> current then failwith "micro: word-granular RLE diverges from byte-wise baseline"

(* ------------------------------------------------------------------ *)
(* Benchmarks                                                          *)

let bench_encode () =
  let twin, page = make_pair () in
  let bytes_scanned n = float_of_int n *. float_of_int page_size in
  let baseline =
    rate_of (fun n ->
        for _ = 1 to n do
          ignore (Rle_ref.encode ~old_:twin page)
        done)
  in
  let current =
    rate_of (fun n ->
        for _ = 1 to n do
          ignore (Tmk_util.Rle.encode ~old_:twin page)
        done)
  in
  {
    b_name = "rle_encode_bytes_per_sec";
    b_unit = "bytes/s";
    b_baseline = Some (bytes_scanned 1 *. baseline);
    b_current = bytes_scanned 1 *. current;
  }

let bench_apply () =
  let twin, page = make_pair () in
  let ref_diff = Rle_ref.encode ~old_:twin page in
  let diff = Tmk_util.Rle.encode ~old_:twin page in
  let target = Bytes.copy twin in
  let per_iter = float_of_int page_size in
  let baseline =
    rate_of (fun n ->
        for _ = 1 to n do
          Rle_ref.apply ref_diff target
        done)
  in
  let current =
    rate_of (fun n ->
        for _ = 1 to n do
          Tmk_util.Rle.apply diff target
        done)
  in
  {
    b_name = "rle_apply_bytes_per_sec";
    b_unit = "bytes/s";
    b_baseline = Some (per_iter *. baseline);
    b_current = per_iter *. current;
  }

let bench_diffs () =
  (* One full diff lifecycle, as the protocol performs it: snapshot the
     page, encode against the twin, apply to a peer's copy. *)
  let twin, page = make_pair () in
  let target = Bytes.copy twin in
  let baseline =
    rate_of (fun n ->
        for _ = 1 to n do
          let d = Rle_ref.encode ~old_:twin page in
          Rle_ref.apply d target
        done)
  in
  let current =
    rate_of (fun n ->
        for _ = 1 to n do
          let d = Tmk_util.Rle.encode ~old_:twin page in
          Tmk_util.Rle.apply d target
        done)
  in
  {
    b_name = "diffs_per_sec";
    b_unit = "diffs/s";
    b_baseline = Some baseline;
    b_current = current;
  }

let bench_vm_access () =
  (* The software-MMU hot path: typed accesses on resident read-write
     pages — the fault-check every load and store of the applications
     passes through.  Baseline is the same Vm with the fast path off,
     i.e. the full range/protection/hook check on every access. *)
  let run_with ~fast_path =
    let vm = Tmk_mem.Vm.create ~fast_path ~pages:64 () in
    rate_of (fun n ->
        let iters = n / 4 in
        for i = 1 to iters do
          let addr = (i * 8) land (Tmk_mem.Vm.size_bytes vm - 8) land lnot 7 in
          Tmk_mem.Vm.write_int vm addr i;
          ignore (Tmk_mem.Vm.read_int vm addr);
          ignore (Tmk_mem.Vm.read_u8 vm addr);
          Tmk_mem.Vm.write_u8 vm addr (i land 0xFF)
        done)
  in
  {
    b_name = "vm_fault_checked_accesses_per_sec";
    b_unit = "accesses/s";
    b_baseline = Some (run_with ~fast_path:false);
    b_current = run_with ~fast_path:true;
  }

let bench_vm_faults () =
  (* Genuine fault dispatches: every access below trips No_access, runs
     the handler, upgrades, then re-arms.  No baseline — the fault path
     itself is deliberately unchanged; the number anchors the cost gap
     between a fault and a fast-path access. *)
  let vm = Tmk_mem.Vm.create ~pages:1 () in
  Tmk_mem.Vm.set_fault_handler vm (fun _ page -> Tmk_mem.Vm.set_prot vm page Tmk_mem.Vm.Read_write);
  let current =
    rate_of (fun n ->
        for _ = 1 to n do
          Tmk_mem.Vm.set_prot vm 0 Tmk_mem.Vm.No_access;
          ignore (Tmk_mem.Vm.read_u8 vm 0)
        done)
  in
  { b_name = "vm_faults_per_sec"; b_unit = "faults/s"; b_baseline = None; b_current = current }

let bench_events () =
  (* Raw event-queue throughput: schedule-and-fire chains with no
     application on top.  No baseline — the engine core predates this
     round; the number tracks regression across future PRs. *)
  let current =
    rate_of (fun n ->
        let engine = Engine.create ~nprocs:1 in
        let remaining = ref n in
        let rec tick at () =
          if !remaining > 0 then begin
            decr remaining;
            Engine.schedule engine ~at:(at + 1) (tick (at + 1))
          end
        in
        Engine.schedule engine ~at:1 (tick 1);
        Engine.run engine)
  in
  { b_name = "engine_events_per_sec"; b_unit = "events/s"; b_baseline = None; b_current = current }

let bench_e2e () =
  (* End-to-end: the five applications at 8 processors (one batched arm of
     the E11 sweep each), fast path off vs on.  Simulated results are
     bit-identical either way — only the wall clock moves. *)
  let wall ~fast_path =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun app ->
        let cfg =
          Tmk_harness.Harness.config ~app ~nprocs:8 ~protocol:Config.Lrc
            ~net:Tmk_net.Params.atm_aal34
        in
        ignore
          (Tmk_harness.Harness.run_cfg ~app { cfg with Config.vm_fast_path = fast_path }))
      Tmk_harness.Harness.all_apps;
    Unix.gettimeofday () -. t0
  in
  ignore (wall ~fast_path:true);
  (* warm-up *)
  let slow = wall ~fast_path:false in
  let fast = wall ~fast_path:true in
  {
    b_name = "e2e_five_apps_8p_runs_per_sec";
    b_unit = "runs/s";
    (* rates, so higher is better and speedup composes like the others *)
    b_baseline = Some (5.0 /. slow);
    b_current = 5.0 /. fast;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let json_of benches =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i bench ->
      if i > 0 then Buffer.add_string b ",\n";
      let opt = function None -> "null" | Some v -> Printf.sprintf "%.1f" v in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"unit\": %S, \"baseline\": %s, \"current\": %.1f, \
            \"speedup\": %s}"
           bench.b_name bench.b_unit (opt bench.b_baseline) bench.b_current
           (match speedup bench with None -> "null" | Some s -> Printf.sprintf "%.2f" s)))
    benches;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_6.json" in
  sanity ();
  let benches =
    [
      bench_encode (); bench_apply (); bench_diffs (); bench_vm_access ();
      bench_vm_faults (); bench_events (); bench_e2e ();
    ]
  in
  Printf.printf "%-36s %14s %14s %9s\n" "benchmark" "baseline" "current" "speedup";
  List.iter
    (fun bench ->
      Printf.printf "%-36s %14s %14.1f %9s  (%s)\n" bench.b_name
        (match bench.b_baseline with None -> "-" | Some v -> Printf.sprintf "%.1f" v)
        bench.b_current
        (match speedup bench with None -> "-" | Some s -> Printf.sprintf "%.2fx" s)
        bench.b_unit)
    benches;
  let oc = open_out out in
  output_string oc (json_of benches);
  close_out oc;
  Printf.printf "\n[raw measurements written to %s]\n" out
