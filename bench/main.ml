(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (experiments E1-E10, see DESIGN.md for the index) plus the
   E11 scaling study, the E12 crash-survival study, the E13 coherence
   backend comparison, and Bechamel microbenchmarks of the
   implementation's hot paths.

   Usage:
     bench/main.exe            run E1-E13
     bench/main.exe e3 e8 a2   run selected experiments/ablations
     bench/main.exe e11        scaling study only (writes BENCH_3.json)
     bench/main.exe e12        crash-survival study only (writes BENCH_5.json)
     bench/main.exe e13        backend comparison only (writes BENCH_7.json)
     bench/main.exe ablation   run the ablation suite A1-A5
     bench/main.exe micro      run the Bechamel microbenchmarks
     bench/main.exe all        everything

   Options:
     --jobs N    run independent sweep arms (E10, E11, E13) on N OCaml
                 domains; reports are byte-identical at any N (default 1) *)

open Tmk_harness

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  (* Hot paths: diff creation (page compare + RLE), diff application,
     vector timestamp ops, event queue churn. *)
  let page = Bytes.make 4096 'a' in
  let twin = Bytes.copy page in
  let () =
    (* touch ~10% of the page so the diff is realistic *)
    for i = 0 to 50 do
      Bytes.set page (i * 80) 'b'
    done
  in
  let diff = Tmk_util.Rle.encode ~old_:twin page in
  let vt_a = Tmk_dsm.Vector_time.create 8 and vt_b = Tmk_dsm.Vector_time.create 8 in
  let () =
    for q = 0 to 7 do
      Tmk_dsm.Vector_time.set vt_a q (q * 3);
      Tmk_dsm.Vector_time.set vt_b q (24 - (q * 3))
    done
  in
  let tests =
    [
      Test.make ~name:"rle-encode-4k-page" (Staged.stage (fun () ->
          ignore (Tmk_util.Rle.encode ~old_:twin page)));
      Test.make ~name:"rle-apply-diff" (Staged.stage (fun () ->
          Tmk_util.Rle.apply diff (Bytes.copy twin)));
      Test.make ~name:"vector-time-leq" (Staged.stage (fun () ->
          ignore (Tmk_dsm.Vector_time.leq vt_a vt_b)));
      Test.make ~name:"vector-time-max" (Staged.stage (fun () ->
          let dst = Tmk_dsm.Vector_time.copy vt_a in
          Tmk_dsm.Vector_time.max_into ~src:vt_b ~dst));
      Test.make ~name:"heap-push-pop-64" (Staged.stage (fun () ->
          let h = Tmk_util.Heap.create ~compare in
          for i = 63 downto 0 do
            Tmk_util.Heap.push h i
          done;
          while not (Tmk_util.Heap.is_empty h) do
            ignore (Tmk_util.Heap.pop h)
          done));
      Test.make ~name:"prng-draw" (Staged.stage (
          let rng = Tmk_util.Prng.create 1L in
          fun () -> ignore (Tmk_util.Prng.bits64 rng)));
    ]
  in
  let benchmark test =
    let instance = Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" [ test ]) in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-28s %10.1f ns/op\n" name est
        | _ -> Printf.printf "  %-28s (no estimate)\n" name)
      results
  in
  print_endline "Microbenchmarks (Bechamel, monotonic clock):";
  List.iter benchmark tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse_jobs acc = function
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some jobs when jobs >= 1 -> Experiments.set_jobs jobs
      | _ -> failwith (Printf.sprintf "bench: --jobs expects a positive integer, got %S" n));
      parse_jobs acc rest
    | "--jobs" :: [] -> failwith "bench: --jobs expects an argument"
    | arg :: rest -> parse_jobs (arg :: acc) rest
    | [] -> List.rev acc
  in
  let args = parse_jobs [] args in
  let t0 = Unix.gettimeofday () in
  let run_one id =
    match Experiments.id_of_name id with
    | eid ->
      Printf.printf "=== %s: %s ===\n%s\n"
        (String.uppercase_ascii (Experiments.id_name eid))
        (Experiments.describe eid) (Experiments.run eid)
    | exception Invalid_argument _ ->
      let aid = Ablations.id_of_name id in
      Printf.printf "=== %s: %s ===\n%s\n"
        (String.uppercase_ascii (Ablations.id_name aid))
        (Ablations.describe aid) (Ablations.run aid)
  in
  (match args with
  | [] -> print_string (Experiments.run_all ())
  | [ "all" ] ->
    print_string (Experiments.run_all ());
    print_string (Ablations.run_all ());
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | [ "ablation" ] -> print_string (Ablations.run_all ())
  | ids -> List.iter run_one ids);
  Printf.printf "\n[bench completed in %.1fs wall time]\n" (Unix.gettimeofday () -. t0)
