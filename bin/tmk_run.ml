(* tmk_run — run one of the paper's applications on the simulated cluster
   and print its execution statistics.

     tmk_run --app water --nprocs 8 --network atm --protocol lazy
     tmk_run --app jacobi --nprocs 4 --speedup
     tmk_run --app water --nprocs 32 --no-batching
     tmk_run --racecheck examples/racey.ml       (exits 2: races found)
     tmk_run --app tsp --racecheck --check-invariants
     tmk_run --check-trace run.jsonl             (offline oracle pass)
     tmk_run --list *)

open Cmdliner
module Params = Tmk_net.Params

let pf = Format.printf

let max_nprocs = 64

(* The SARIF artifact points findings at the app's fixture source. *)
let app_uri app =
  Printf.sprintf "lib/apps/%s.ml"
    (String.lowercase_ascii (Tmk_harness.Harness.app_name app))

let run_one ~app ~nprocs ~protocol ~net ~show_speedup ~seed ~gc_threshold ~eager_diffs
    ~updates ~batching ~faults ~diff_backup ~racecheck ~check_invariants ~lint
    ~lint_sarif ~lint_jsonl ~trace_file ~trace_format ~trace_report ~breakdown =
  let override cfg =
    {
      cfg with
      Tmk_dsm.Config.seed;
      faults;
      gc_threshold = (match gc_threshold with Some g -> g | None -> max_int);
      lazy_diffs = not eager_diffs;
      lrc_updates = updates;
      batching;
      diff_backup;
    }
  in
  let cfg = override (Tmk_harness.Harness.config ~app ~nprocs ~protocol ~net) in
  (* Checkers attach to the main run only: the speedup baseline below is
     a different cluster (1 processor), so it runs unchecked. *)
  (* The lint suite always runs the HB detector alongside: lockset rows
     that duplicate a confirmed race are dropped in favor of the better
     report. *)
  let race =
    if racecheck || lint <> None then
      Some (Tmk_check.Race.create ~nprocs ~pages:cfg.Tmk_dsm.Config.pages ())
    else None
  in
  let oracle =
    if check_invariants then Some (Tmk_check.Oracle.create ~nprocs ()) else None
  in
  let lint =
    Option.map (fun analyzers -> Tmk_lint.Lint.create ~analyzers ~nprocs ()) lint
  in
  let cfg =
    match (race, oracle, lint) with
    | None, None, None -> cfg
    | _ ->
      let hooks, attach =
        match lint with
        | Some l -> ([ Tmk_lint.Lint.hooks l ], [ Tmk_lint.Lint.attach l ])
        | None -> ([], [])
      in
      {
        cfg with
        Tmk_dsm.Config.check = Some (Tmk_check.Checker.create ?race ?oracle ~hooks ~attach ());
      }
  in
  let m, sink =
    if trace_file <> None || trace_report then begin
      let s = Tmk_trace.Sink.create () in
      (Tmk_harness.Harness.run_cfg ~trace:s ~app cfg, Some s)
    end
    else (Tmk_harness.Harness.run_cfg ~app cfg, None)
  in
  pf "application : %s (%s)@." (Tmk_harness.Harness.app_name app)
    (Tmk_harness.Harness.workload_description app);
  pf "cluster     : %d processors, %s, %s, batching %s@." nprocs
    m.Tmk_harness.Harness.m_net
    (Tmk_dsm.Config.protocol_description protocol)
    (if batching then "on" else "off");
  pf "faults      : %s@." (Tmk_net.Fault_plan.describe faults);
  pf "time        : %.3f simulated seconds@." m.Tmk_harness.Harness.m_time_s;
  let raw = m.Tmk_harness.Harness.m_raw in
  List.iter
    (fun r ->
      pf
        "recovery    : processor %d crashed at %.0f us, detected +%.0f us (epoch %d), %d \
         locks re-homed, %d fetches re-issued@."
        r.Tmk_dsm.Protocol.rc_pid
        (Tmk_sim.Vtime.to_us r.Tmk_dsm.Protocol.rc_crash_at)
        (Tmk_sim.Vtime.to_us
           (Tmk_sim.Vtime.sub r.Tmk_dsm.Protocol.rc_detected_at
              r.Tmk_dsm.Protocol.rc_crash_at))
        r.Tmk_dsm.Protocol.rc_epoch r.Tmk_dsm.Protocol.rc_locks_rehomed
        r.Tmk_dsm.Protocol.rc_retries)
    raw.Tmk_dsm.Api.recoveries;
  (match raw.Tmk_dsm.Api.stopped with
  | Some reason when raw.Tmk_dsm.Api.recoveries = [] -> pf "stopped     : %s@." reason
  | _ -> ());
  if show_speedup && nprocs > 1 then begin
    let base_cfg = override (Tmk_harness.Harness.config ~app ~nprocs:1 ~protocol ~net) in
    (* The crash schedule names pids of the full cluster; the baseline
       runs crash-free. *)
    let base_cfg =
      if Tmk_net.Fault_plan.crashes faults <> [] then
        { base_cfg with Tmk_dsm.Config.faults = Tmk_net.Fault_plan.none }
      else base_cfg
    in
    let base = Tmk_harness.Harness.run_cfg ~app base_cfg in
    pf "speedup     : %.2f (uniprocessor %.3f s)@."
      (base.Tmk_harness.Harness.m_time_s /. m.Tmk_harness.Harness.m_time_s)
      base.Tmk_harness.Harness.m_time_s
  end;
  pf "rates       : %.0f msgs/s, %.0f KB/s, %.1f locks/s, %.1f barriers/s, %.1f diffs/s@."
    m.Tmk_harness.Harness.m_msgs_per_sec m.Tmk_harness.Harness.m_kbytes_per_sec
    m.Tmk_harness.Harness.m_locks_per_sec m.Tmk_harness.Harness.m_barriers_per_sec
    m.Tmk_harness.Harness.m_diffs_per_sec;
  pf "breakdown   : computation %.1f%%, unix %.1f%% (comm %.1f%% / mem %.1f%%),@."
    m.Tmk_harness.Harness.m_comp_pct
    (Tmk_harness.Harness.unix_pct m)
    m.Tmk_harness.Harness.m_unix_comm_pct m.Tmk_harness.Harness.m_unix_mem_pct;
  pf "              treadmarks %.1f%% (mem %.1f%% / consistency %.1f%% / other %.1f%%), idle %.1f%%@."
    (Tmk_harness.Harness.tmk_pct m)
    m.Tmk_harness.Harness.m_tmk_mem_pct m.Tmk_harness.Harness.m_tmk_consistency_pct
    m.Tmk_harness.Harness.m_tmk_other_pct m.Tmk_harness.Harness.m_idle_pct;
  let s = m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.total_stats in
  pf "protocol    : %d twins, %d diffs created, %d applied, %d page fetches, %d gc runs@."
    s.Tmk_dsm.Stats.twins_created s.Tmk_dsm.Stats.diffs_created s.Tmk_dsm.Stats.diffs_applied
    s.Tmk_dsm.Stats.page_fetches s.Tmk_dsm.Stats.gc_runs;
  if batching then
    pf "batching    : %d frames coalesced, diff cache %d hits / %d misses@."
      m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.frames_coalesced
      s.Tmk_dsm.Stats.diff_cache_hits s.Tmk_dsm.Stats.diff_cache_misses;
  if diff_backup then
    pf "replication : %d diffs mirrored, %d bytes@." s.Tmk_dsm.Stats.diff_backups
      s.Tmk_dsm.Stats.diff_backup_bytes;
  if Tmk_net.Fault_plan.is_faulty faults then
    pf "reliability : %d retransmissions@."
      m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.retransmissions;
  if breakdown then pf "%s@." (Tmk_harness.Harness.breakdown_table m);
  (* The speedup baseline above runs untraced on purpose: only the main
     run's configuration carries the sink. *)
  (match (sink, trace_file) with
  | Some s, Some file ->
    let oc = open_out file in
    (match trace_format with
    | `Jsonl -> Tmk_trace.Jsonl.write oc s
    | `Chrome -> Tmk_trace.Chrome.write oc s);
    close_out oc;
    pf "trace       : %d events -> %s (%s)@." (Tmk_trace.Sink.length s) file
      (match trace_format with `Jsonl -> "jsonl" | `Chrome -> "chrome trace_event")
  | _ -> ());
  let lint_findings = Option.map (fun l -> Tmk_lint.Lint.findings ?race l) lint in
  (match sink with
  | Some s when trace_report ->
    let findings = Option.map Tmk_lint.Findings.table lint_findings in
    pf "@.%s" (Tmk_trace.Analyze.report ?findings (Tmk_trace.Analyze.analyze s))
  | _ -> ());
  let race_bad =
    (* With --lint the HB findings already appear in the unified report
       (analyzer "hb"); print the dedicated race report only when
       --racecheck asked for it. *)
    match race with
    | None -> false
    | Some r ->
      if racecheck then pf "@.%s@." (Tmk_check.Race.report r);
      racecheck && Tmk_check.Race.has_findings r
  in
  let lint_bad =
    match (lint, lint_findings) with
    | Some l, Some fs ->
      pf "@.%s@." (Tmk_lint.Lint.report ?race l);
      let uri = app_uri app in
      (match lint_sarif with
      | Some file ->
        let oc = open_out file in
        output_string oc (Tmk_lint.Findings.to_sarif ~uri fs);
        close_out oc;
        pf "sarif       : %d finding(s) -> %s@." (List.length fs) file
      | None -> ());
      (match lint_jsonl with
      | Some file ->
        let oc = open_out file in
        output_string oc (Tmk_lint.Findings.to_jsonl fs);
        close_out oc;
        pf "findings    : %d finding(s) -> %s@." (List.length fs) file
      | None -> ());
      Tmk_lint.Findings.has_errors fs
    | _ -> false
  in
  let oracle_bad =
    match oracle with
    | None -> false
    | Some o ->
      let violations = Tmk_check.Oracle.finish o in
      pf "@.%s@." (Tmk_check.Oracle.report violations);
      violations <> []
  in
  (race_bad || oracle_bad || lint_bad, raw.Tmk_dsm.Api.stopped <> None)

let app_conv =
  let parse s =
    match Tmk_harness.Harness.app_of_name s with
    | app -> Ok app
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf app -> Format.pp_print_string ppf (Tmk_harness.Harness.app_name app))

let protocol_conv =
  let parse s =
    match Tmk_dsm.Config.protocol_of_string s with
    | p -> Ok p
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf p -> Format.pp_print_string ppf (Tmk_dsm.Config.protocol_name p))

let net_conv =
  let parse = function
    | "atm" | "atm-aal34" -> Ok Params.atm_aal34
    | "atm-udp" -> Ok Params.atm_udp
    | "ethernet" | "eth" -> Ok Params.ethernet_udp
    | s -> Error (`Msg (Printf.sprintf "unknown network %S (atm|atm-udp|ethernet)" s))
  in
  Arg.conv (parse, fun ppf n -> Format.pp_print_string ppf (Params.name n))

let cmd =
  let app_arg =
    Arg.(value & opt app_conv Tmk_harness.Harness.Jacobi
         & info [ "a"; "app" ] ~docv:"APP"
             ~doc:"Application: water, jacobi, tsp, quicksort, ilink — or racey, the \
                   deliberately data-racy fixture for $(b,--racecheck).")
  in
  let app_pos =
    Arg.(value & pos 0 (some app_conv) None
         & info [] ~docv:"APP"
             ~doc:"Application, as a positional alternative to $(b,--app); also accepts \
                   a source path such as $(i,examples/racey.ml).")
  in
  let procs =
    Arg.(value & opt int 8
         & info [ "p"; "nprocs"; "procs" ] ~docv:"N"
             ~doc:"Number of processors, 1 to 64 ($(b,--procs) is an alias kept for \
                   compatibility).")
  in
  let protocol =
    Arg.(value & opt protocol_conv Tmk_dsm.Config.Lrc
         & info [ "c"; "protocol" ] ~docv:"PROTO"
             ~doc:"Coherence backend: lazy (TreadMarks LRC), eager (Munin-style update), \
                   sc (single-writer baseline), tardis (timestamp leases, no \
                   invalidations), or sc-abd (majority-quorum replication, crash-tolerant \
                   with zero recovery).")
  in
  let net =
    Arg.(value & opt net_conv Params.atm_aal34
         & info [ "n"; "network" ] ~docv:"NET" ~doc:"Network: atm, atm-udp or ethernet.")
  in
  let speedup =
    Arg.(value & flag & info [ "s"; "speedup" ] ~doc:"Also run a uniprocessor baseline and report speedup.")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List applications and exit.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Trace protocol events (lock transfers, misses, flushes, barriers) to stderr.")
  in
  let seed =
    Arg.(value & opt int64 1994L & info [ "seed" ] ~docv:"N" ~doc:"Root random seed.")
  in
  let gc_threshold =
    Arg.(value & opt (some int) None
         & info [ "gc-threshold" ] ~docv:"N"
             ~doc:"Garbage-collect at the next barrier once a node holds N consistency records.")
  in
  let eager_diffs =
    Arg.(value & flag
         & info [ "eager-diffs" ]
             ~doc:"Create diffs eagerly at every interval close (Munin-style; default lazy).")
  in
  let updates =
    Arg.(value & flag
         & info [ "updates" ]
             ~doc:"Hybrid update protocol: piggyback diffs on synchronization messages for \
                   pages the receiver caches (default: invalidate).")
  in
  let no_batching =
    Arg.(value & flag
         & info [ "no-batching" ]
             ~doc:"Disable consistency-traffic batching: send each piggybacked interval, \
                   diff request and diff reply as its own frame instead of coalescing \
                   per-peer (the ablation baseline; default batched).")
  in
  let loss =
    Arg.(value & opt float 0.0
         & info [ "loss" ] ~docv:"P" ~doc:"Frame loss probability in [0,1).")
  in
  let dup =
    Arg.(value & opt float 0.0
         & info [ "dup" ] ~docv:"P" ~doc:"Frame duplication probability in [0,1).")
  in
  let reorder =
    Arg.(value & opt float 0.0
         & info [ "reorder" ] ~docv:"P"
             ~doc:"Probability a frame is held back by a random delay (reordering) in [0,1).")
  in
  let reorder_window =
    Arg.(value & opt int 200
         & info [ "reorder-window" ] ~docv:"US"
             ~doc:"Maximum extra delay of a held-back frame, microseconds.")
  in
  let stall =
    Arg.(value & opt string ""
         & info [ "stall" ] ~docv:"SPEC"
             ~doc:"Node stall windows: comma-separated pid@start_us+len_us, e.g. 1@2000+500.")
  in
  let unreachable =
    Arg.(value & opt (list int) []
         & info [ "unreachable" ] ~docv:"PIDS"
             ~doc:"Partitioned processors (every frame to or from them is dropped); once a \
                   retry budget is exhausted the peer is suspected and the run stops \
                   cleanly, reporting the stop reason.")
  in
  let crash =
    Arg.(value & opt string ""
         & info [ "crash" ] ~docv:"SPEC"
             ~doc:"Crash schedule: comma-separated pid@t_us, e.g. 4@5000.  The processor \
                   goes silent at that instant (crash-stop); the survivors detect it, fail \
                   its lock managership over, and finish the run (LRC only).  Exits 3 if \
                   the run cannot complete without the dead processor's state.")
  in
  let diff_backup =
    Arg.(value & flag
         & info [ "diff-backup" ]
             ~doc:"Mirror every diff to a deterministic backup peer at creation (forces \
                   eager diff creation), so a crashed processor's committed work stays \
                   fetchable (use with $(b,--crash)).")
  in
  let racecheck =
    Arg.(value & flag
         & info [ "racecheck" ]
             ~doc:"Run the happens-before data-race detector alongside the application: \
                   every typed shared access is checked against a per-word frontier of \
                   prior accesses, and conflicting pairs not ordered by the run's locks \
                   and barriers are reported.  Exits 2 if any race is found.")
  in
  let check_invariants =
    Arg.(value & flag
         & info [ "check-invariants" ]
             ~doc:"Run the protocol invariant oracle over the live event stream (vector \
                   time monotonicity, interval coverage at acquire, diff conservation, \
                   barrier epoch agreement, GC safety).  Exits 2 on any violation.")
  in
  let lint =
    Arg.(value
         & opt ~vopt:(Some "all") (some string) None
         & info [ "lint" ] ~docv:"ANALYZERS"
             ~doc:"Run the sanitizer suite alongside the application: the Eraser-style \
                   lockset race detector (potential races, schedule-insensitive), the \
                   sharing-pattern linter (false sharing, diff fragmentation, never-read \
                   write notices, lock contention) and the sync-discipline lints.  \
                   ANALYZERS is a comma-separated subset of lockset, sharing, discipline \
                   (default all).  The happens-before detector runs too, so confirmed \
                   races outrank the lockset's potential ones.  Exits 2 on any \
                   error-severity finding.")
  in
  let lint_sarif =
    Arg.(value & opt (some string) None
         & info [ "lint-sarif" ] ~docv:"FILE"
             ~doc:"Write the sanitizer findings to FILE as SARIF 2.1.0 (GitHub \
                   code-scanning ingests it).  Implies $(b,--lint).")
  in
  let lint_jsonl =
    Arg.(value & opt (some string) None
         & info [ "lint-jsonl" ] ~docv:"FILE"
             ~doc:"Write the sanitizer findings to FILE as JSONL, one finding per line.  \
                   Implies $(b,--lint).")
  in
  let check_trace =
    Arg.(value & opt (some string) None
         & info [ "check-trace" ] ~docv:"FILE"
             ~doc:"Instead of running an application, replay a recorded JSONL trace (from \
                   $(b,--trace)) through the invariant oracle.  The cluster size is \
                   inferred from the processor ids in the stream.  Exits 2 on any \
                   violation.  (Race checking needs the typed accesses of a live run, so \
                   it is not available offline.)")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record the typed protocol event stream and write it to FILE (see \
                   --trace-format).")
  in
  let trace_format =
    Arg.(value
         & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
         & info [ "trace-format" ] ~docv:"FMT"
             ~doc:"Trace file format: jsonl (one event per line) or chrome (trace_event \
                   JSON loadable in Perfetto / chrome://tracing, one track per processor).")
  in
  let trace_report =
    Arg.(value & flag
         & info [ "trace-report" ]
             ~doc:"Record the event stream and print the analyzer's lock-contention, \
                   hot-page, barrier-skew and per-processor tables.")
  in
  let breakdown =
    Arg.(value & flag
         & info [ "breakdown" ]
             ~doc:"Print a per-processor execution-time table with the idle remainder \
                   (makespan minus the busy categories) reported explicitly.")
  in
  let main app app_pos nprocs protocol net show_speedup list verbose seed gc_threshold
      eager_diffs updates no_batching loss dup reorder reorder_window stall unreachable
      crash diff_backup racecheck check_invariants lint lint_sarif lint_jsonl check_trace
      trace_file trace_format trace_report breakdown =
    let app = match app_pos with Some a -> a | None -> app in
    (* Asking for a findings file implies running the suite. *)
    let lint =
      match lint with
      | None when lint_sarif <> None || lint_jsonl <> None -> Some "all"
      | l -> l
    in
    if verbose then begin
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level ~all:true (Some Logs.Debug)
    end;
    if list then
      List.iter
        (fun a ->
          pf "%-10s %s@." (Tmk_harness.Harness.app_name a)
            (Tmk_harness.Harness.workload_description a))
        Tmk_harness.Harness.all_apps
    else
      match check_trace with
      | Some file -> (
        try
          let sink = Tmk_trace.Jsonl.read_file file in
          let nprocs =
            let top = ref 0 in
            Tmk_trace.Sink.iter
              (fun r -> if r.Tmk_trace.Sink.r_pid > !top then top := r.Tmk_trace.Sink.r_pid)
              sink;
            !top + 1
          in
          let violations = Tmk_check.Oracle.check_sink ~nprocs sink in
          pf "trace       : %d events from %s (%d processors)@."
            (Tmk_trace.Sink.length sink) file nprocs;
          pf "%s@." (Tmk_check.Oracle.report violations);
          if violations <> [] then exit 2
        with
        | Sys_error msg ->
          prerr_endline ("tmk_run: " ^ msg);
          exit 1
        | Tmk_trace.Jsonl.Parse_error msg ->
          prerr_endline (Printf.sprintf "tmk_run: %s: %s" file msg);
          exit 1)
      | None ->
    if nprocs < 1 || nprocs > max_nprocs then begin
      Printf.eprintf
        "tmk_run: --nprocs %d is out of range: the simulated cluster supports 1 to %d \
         processors (the scaling study's upper bound; see EXPERIMENTS.md E11)\n"
        nprocs max_nprocs;
      exit 1
    end
    else
      match
        let open Tmk_net.Fault_plan in
        let plan = none in
        let plan = if loss > 0.0 then with_loss plan loss else plan in
        let plan = if dup > 0.0 then with_dup plan dup else plan in
        let plan =
          if reorder > 0.0 then
            with_reorder ~window:(Tmk_sim.Vtime.us reorder_window) plan reorder
          else plan
        in
        let plan =
          List.fold_left
            (fun p s -> with_stall p ~pid:s.st_pid ~start:s.st_start ~len:s.st_len)
            plan (parse_stalls stall)
        in
        let plan = List.fold_left with_unreachable plan unreachable in
        List.fold_left
          (fun p c -> with_crash p ~pid:c.cr_pid ~at:c.cr_at)
          plan (parse_crashes crash)
      with
      | faults -> (
        try
          let lint = Option.map Tmk_lint.Lint.analyzers_of_string lint in
          let findings, stopped =
            run_one ~app ~nprocs ~protocol ~net ~show_speedup ~seed ~gc_threshold
              ~eager_diffs ~updates ~batching:(not no_batching) ~faults ~diff_backup
              ~racecheck ~check_invariants ~lint ~lint_sarif ~lint_jsonl ~trace_file
              ~trace_format ~trace_report ~breakdown
          in
          if findings then exit 2;
          (* the run was cut short with a diagnosis (e.g. an unreachable
             peer): the printed stats describe an incomplete execution *)
          if stopped then exit 1
        with
        | Tmk_dsm.Api.Degraded { pid; reason } ->
          Printf.eprintf
            "tmk_run: degraded: the run cannot complete without processor %d (%s)\n" pid
            reason;
          exit 3
        | Invalid_argument msg ->
          (* e.g. Config.validate rejecting a fault plan that names pids
             outside the cluster *)
          prerr_endline ("tmk_run: " ^ msg);
          exit 1)
      | exception Invalid_argument msg ->
        prerr_endline ("tmk_run: " ^ msg);
        exit 1
  in
  let term =
    Term.(
      const main $ app_arg $ app_pos $ procs $ protocol $ net $ speedup $ list $ verbose
      $ seed $ gc_threshold $ eager_diffs $ updates $ no_batching $ loss $ dup $ reorder
      $ reorder_window $ stall $ unreachable $ crash $ diff_backup $ racecheck
      $ check_invariants $ lint $ lint_sarif $ lint_jsonl $ check_trace $ trace_file
      $ trace_format $ trace_report $ breakdown)
  in
  Cmd.v
    (Cmd.info "tmk_run" ~version:"1.0.0"
       ~doc:"Run a TreadMarks application on the simulated workstation cluster")
    term

let () = exit (Cmd.eval cmd)
