examples/quickstart.ml: Api Config Fmt Tmk_dsm Tmk_sim
