examples/task_farm.ml: Api Array Config Fmt Stats Tmk_dsm Tmk_mem Tmk_sim Tmk_util
