examples/quickstart.mli:
