examples/heat_diffusion.ml: Api Array Config Fmt Stats String Tmk_dsm Tmk_mem Tmk_sim
