examples/histogram.mli:
