(* Quickstart: the smallest complete TreadMarks program.

   Processor 0 initializes a shared array; everyone meets at a barrier;
   every processor then sums a slice and publishes its partial result under
   a lock.  Run with:

     dune exec examples/quickstart.exe *)

open Tmk_dsm

let () =
  let config = { Config.default with Config.nprocs = 4; pages = 8 } in
  let result =
    Api.run config (fun ctx ->
        let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
        (* Every processor performs the same allocations (SPMD). *)
        let data = Api.falloc ctx 1000 in
        let total = Api.falloc ctx 1 in
        if pid = 0 then begin
          for i = 0 to 999 do
            Api.fset ctx data i (float_of_int (i + 1))
          done;
          Api.fset ctx total 0 0.0
        end;
        (* Barrier 0: processor 0's initialization becomes visible. *)
        Api.barrier ctx 0;
        (* Each processor sums its slice... *)
        let slice = 1000 / nprocs in
        let lo = pid * slice in
        let partial = ref 0.0 in
        for i = lo to lo + slice - 1 do
          partial := !partial +. Api.fget ctx data i
        done;
        Api.compute_flops ctx slice;
        (* ...and accumulates it into the shared total under a lock. *)
        Api.with_lock ctx 0 (fun () ->
            Api.fset ctx total 0 (Api.fget ctx total 0 +. !partial));
        Api.barrier ctx 1;
        if pid = 0 then
          Fmt.pr "sum of 1..1000 = %.0f (expected %d)@." (Api.fget ctx total 0)
            (1000 * 1001 / 2))
  in
  Fmt.pr "simulated time: %a; %d messages, %d bytes on the wire@." Tmk_sim.Vtime.pp
    result.Api.total_time result.Api.messages result.Api.bytes
