(* Application correctness: each program's parallel execution on the DSM
   must reproduce its sequential reference, across protocols and cluster
   sizes. *)

open Tmk_dsm
open Tmk_apps

let check = Alcotest.check

let cfg ~nprocs ~pages ~protocol =
  { Config.default with nprocs; pages; protocol; seed = 3L }

let run_app ?(lrc_updates = false) ~nprocs ~pages ~protocol app =
  let out = ref None in
  let result =
    Api.run
      { (cfg ~nprocs ~pages ~protocol) with Config.lrc_updates }
      (fun ctx ->
        match app ctx with
        | Some r -> out := Some r
        | None -> ())
  in
  match !out with
  | Some r -> (r, result)
  | None -> Alcotest.fail "processor 0 produced no result"

(* ------------------------------------------------------------------ *)
(* Jacobi *)

let jacobi_params = { Jacobi.default with Jacobi.rows = 40; cols = 32; iters = 6 }

let jacobi_matches ~lrc_updates ~nprocs ~protocol () =
  let expected = Jacobi.sequential jacobi_params in
  let got, _ =
    run_app ~lrc_updates ~nprocs ~pages:(Jacobi.pages_needed jacobi_params) ~protocol
      (fun ctx -> Jacobi.parallel ctx jacobi_params)
  in
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c v ->
          if v <> expected.(r).(c) then
            Alcotest.failf "grid mismatch at (%d,%d): %g vs %g" r c v expected.(r).(c))
        row)
    got

let jacobi_checksum_sane () =
  let g = Jacobi.sequential jacobi_params in
  check Alcotest.bool "finite" true (Float.is_finite (Jacobi.checksum g))

(* ------------------------------------------------------------------ *)
(* TSP *)

let tsp_params = { Tsp.default with Tsp.ncities = 9; prefix_depth = 3 }

let tsp_matches ~lrc_updates ~nprocs ~protocol () =
  let expected = Tsp.sequential tsp_params in
  let got, _ =
    run_app ~lrc_updates ~nprocs ~pages:(Tsp.pages_needed tsp_params) ~protocol (fun ctx ->
        Tsp.parallel ctx tsp_params)
  in
  check Alcotest.int "optimal tour length" expected.Tsp.best got.Tsp.best;
  check Alcotest.bool "expanded some nodes" true (got.Tsp.nodes_expanded > 0)

let tsp_optimum_brute_force () =
  (* Cross-check the branch and bound against exhaustive enumeration on a
     tiny instance. *)
  let p = { Tsp.default with Tsp.ncities = 7; prefix_depth = 2 } in
  let _, dist = Tmk_workload.Workload.cities ~n:7 ~seed:p.Tsp.seed in
  let best = ref max_int in
  let rec permute placed rest len =
    match rest with
    | [] ->
      let tour = len + dist.(placed).(0) in
      if tour < !best then best := tour
    | _ ->
      List.iter
        (fun c ->
          permute c (List.filter (( <> ) c) rest) (len + dist.(placed).(c)))
        rest
  in
  permute 0 [ 1; 2; 3; 4; 5; 6 ] 0;
  let r = Tsp.sequential p in
  check Alcotest.int "matches brute force" !best r.Tsp.best

(* ------------------------------------------------------------------ *)
(* Quicksort *)

let qsort_params = { Quicksort.default with Quicksort.n = 2048; threshold = 64 }

let quicksort_matches ~lrc_updates ~nprocs ~protocol () =
  let expected = Quicksort.sequential qsort_params in
  let got, _ =
    run_app ~lrc_updates ~nprocs ~pages:(Quicksort.pages_needed qsort_params) ~protocol
      (fun ctx -> Quicksort.parallel ctx qsort_params)
  in
  check Alcotest.bool "sorted equal" true (got = expected)

let quicksort_reference_is_sorted () =
  let sorted = Quicksort.sequential qsort_params in
  let input = Tmk_workload.Workload.int_array ~n:qsort_params.Quicksort.n ~seed:qsort_params.Quicksort.seed in
  let resorted = Array.copy input in
  Array.sort compare resorted;
  check Alcotest.bool "matches Array.sort" true (sorted = resorted)

(* ------------------------------------------------------------------ *)
(* Water *)

let water_params = { Water.default with Water.nmol = 27; steps = 2 }

let water_matches ~lrc_updates ~nprocs ~protocol () =
  let expected = Water.sequential water_params in
  let got, _ =
    run_app ~lrc_updates ~nprocs ~pages:(Water.pages_needed water_params) ~protocol
      (fun ctx -> Water.parallel ctx water_params)
  in
  check (Alcotest.float 0.0) "energy exact" expected.Water.energy got.Water.energy;
  Array.iteri
    (fun i (x, y, z) ->
      let ex, ey, ez = expected.Water.positions.(i) in
      if x <> ex || y <> ey || z <> ez then
        Alcotest.failf "molecule %d position mismatch" i)
    got.Water.positions

let water_energy_moves () =
  (* the system is dynamic: positions change over steps *)
  let one = Water.sequential { water_params with Water.steps = 1 } in
  let two = Water.sequential { water_params with Water.steps = 2 } in
  check Alcotest.bool "positions evolve" true (one.Water.positions <> two.Water.positions)

(* ------------------------------------------------------------------ *)
(* ILINK *)

let ilink_params = { Ilink.default with Ilink.families = 12; iterations = 3 }

let ilink_matches ~lrc_updates ~nprocs ~protocol () =
  let expected = Ilink.sequential ilink_params in
  let got, _ =
    run_app ~lrc_updates ~nprocs ~pages:(Ilink.pages_needed ilink_params) ~protocol
      (fun ctx -> Ilink.parallel ctx ilink_params)
  in
  check (Alcotest.float 0.0) "log likelihood exact" expected.Ilink.log_likelihood
    got.Ilink.log_likelihood;
  check (Alcotest.float 0.0) "theta" expected.Ilink.theta got.Ilink.theta

let ilink_sizes_are_skewed () =
  let sizes = Tmk_workload.Workload.pedigree_sizes ~families:60 ~seed:1L in
  let small = Array.fold_left (fun acc s -> if s <= 6 then acc + 1 else acc) 0 sizes in
  let large = Array.length sizes - small in
  check Alcotest.bool "mostly small" true (small > large);
  check Alcotest.bool "some large" true (large > 0)

(* ------------------------------------------------------------------ *)
(* Paper-shape checks *)

(* §5.2: TSP under LRC does redundant work against stale bounds that
   ERC's eager updates avoid — eager should expand no more nodes. *)
let tsp_stale_bound_shape () =
  let p = { Tsp.default with Tsp.ncities = 10; prefix_depth = 3 } in
  let lazy_r, _ =
    run_app ~nprocs:4 ~pages:(Tsp.pages_needed p) ~protocol:Config.Lrc (fun ctx ->
        Tsp.parallel ctx p)
  in
  let eager_r, _ =
    run_app ~nprocs:4 ~pages:(Tsp.pages_needed p) ~protocol:Config.Erc (fun ctx ->
        Tsp.parallel ctx p)
  in
  check Alcotest.int "same optimum" lazy_r.Tsp.best eager_r.Tsp.best;
  check Alcotest.bool "eager expands no more nodes" true
    (eager_r.Tsp.nodes_expanded <= lazy_r.Tsp.nodes_expanded)

(* Water's signature: lots of lock traffic and messages per unit time. *)
let water_is_communication_heavy () =
  let _, water_run =
    run_app ~nprocs:4 ~pages:(Water.pages_needed water_params) ~protocol:Config.Lrc
      (fun ctx -> Water.parallel ctx water_params)
  in
  let _, jacobi_run =
    run_app ~nprocs:4 ~pages:(Jacobi.pages_needed jacobi_params) ~protocol:Config.Lrc
      (fun ctx -> Jacobi.parallel ctx jacobi_params)
  in
  let rate r =
    float_of_int r.Api.messages /. Tmk_sim.Vtime.to_s r.Api.total_time
  in
  check Alcotest.bool "water messages/sec much higher" true
    (rate water_run > 2.0 *. rate jacobi_run);
  check Alcotest.bool "water used many locks" true
    (water_run.Api.total_stats.Stats.lock_acquires > 100)

(* Garbage collection interleaved with a lock-heavy application: Water
   with a tiny record threshold must still match its reference. *)
let water_with_gc () =
  let p = { Water.default with Water.nmol = 27; steps = 3 } in
  let expected = Water.sequential p in
  let c =
    {
      Config.default with
      Config.nprocs = 4;
      pages = Water.pages_needed p;
      gc_threshold = 50;
      seed = 3L;
    }
  in
  let out = ref None in
  let r =
    Api.run c (fun ctx ->
        match Water.parallel ctx p with Some x -> out := Some x | None -> ())
  in
  check Alcotest.bool "gc actually ran" true (r.Api.total_stats.Stats.gc_runs > 0);
  let got = Option.get !out in
  check (Alcotest.float 0.0) "energy exact despite gc" expected.Water.energy
    got.Water.energy;
  check Alcotest.bool "positions exact despite gc" true
    (got.Water.positions = expected.Water.positions)

let matrix name f =
  let plain = f ~lrc_updates:false in
  [
    Alcotest.test_case (name ^ " lrc 2p") `Quick (plain ~nprocs:2 ~protocol:Config.Lrc);
    Alcotest.test_case (name ^ " lrc 4p") `Quick (plain ~nprocs:4 ~protocol:Config.Lrc);
    Alcotest.test_case (name ^ " lrc 8p") `Slow (plain ~nprocs:8 ~protocol:Config.Lrc);
    Alcotest.test_case (name ^ " erc 4p") `Quick (plain ~nprocs:4 ~protocol:Config.Erc);
    Alcotest.test_case (name ^ " sc 4p") `Quick (plain ~nprocs:4 ~protocol:Config.Sc);
    Alcotest.test_case (name ^ " sc 2p") `Quick (plain ~nprocs:2 ~protocol:Config.Sc);
    Alcotest.test_case (name ^ " lrc+updates 4p") `Quick
      (f ~lrc_updates:true ~nprocs:4 ~protocol:Config.Lrc);
    Alcotest.test_case (name ^ " 1p") `Quick (plain ~nprocs:1 ~protocol:Config.Lrc);
  ]

(* The single-writer baseline ping-pongs whole pages under false sharing
   (§2.3), where the multiple-writer protocol merges diffs: same program,
   wildly different traffic. *)
let false_sharing_page_pingpong () =
  let program rounds ctx =
    let arr = Api.ialloc ctx 8 in
    (* 8 slots on ONE page, one slot per processor *)
    if Api.pid ctx = 0 then
      for s = 0 to 7 do
        Api.iset ctx arr s 0
      done;
    Api.barrier ctx 0;
    for r = 1 to rounds do
      Api.iset ctx arr (Api.pid ctx) r;
      Api.barrier ctx r
    done
  in
  let run protocol =
    Api.run (cfg ~nprocs:4 ~pages:4 ~protocol) (program 10)
  in
  let lrc = run Config.Lrc and sc = run Config.Sc in
  check Alcotest.bool "sc moves much more data" true (sc.Api.bytes > 3 * lrc.Api.bytes);
  check Alcotest.bool "sc fetches whole pages repeatedly" true
    (sc.Api.total_stats.Stats.page_fetches > 5 * lrc.Api.total_stats.Stats.page_fetches);
  check Alcotest.bool "sc is slower" true (sc.Api.total_time > lrc.Api.total_time)

let sc_read_replication () =
  (* many readers of one page: each fetches the page once; a later write
     invalidates all of them *)
  let r =
    Api.run (cfg ~nprocs:4 ~pages:4 ~protocol:Config.Sc) (fun ctx ->
        let arr = Api.ialloc ctx 8 in
        if Api.pid ctx = 0 then Api.iset ctx arr 0 7;
        Api.barrier ctx 0;
        check Alcotest.int "read replicated" 7 (Api.iget ctx arr 0);
        Api.barrier ctx 1;
        if Api.pid ctx = 3 then Api.iset ctx arr 1 9;
        Api.barrier ctx 2;
        check Alcotest.int "invalidated then refetched" 9 (Api.iget ctx arr 1))
  in
  check Alcotest.bool "page fetches happened" true
    (r.Api.total_stats.Stats.page_fetches >= 3)

let suite =
  matrix "jacobi" jacobi_matches
  @ matrix "tsp" tsp_matches
  @ matrix "quicksort" quicksort_matches
  @ matrix "water" water_matches
  @ matrix "ilink" ilink_matches
  @ [
      Alcotest.test_case "jacobi checksum" `Quick jacobi_checksum_sane;
      Alcotest.test_case "tsp brute force" `Quick tsp_optimum_brute_force;
      Alcotest.test_case "quicksort reference" `Quick quicksort_reference_is_sorted;
      Alcotest.test_case "water dynamics evolve" `Quick water_energy_moves;
      Alcotest.test_case "ilink sizes skewed" `Quick ilink_sizes_are_skewed;
      Alcotest.test_case "tsp stale bound shape" `Quick tsp_stale_bound_shape;
      Alcotest.test_case "water communication heavy" `Quick water_is_communication_heavy;
      Alcotest.test_case "false sharing page ping-pong" `Quick false_sharing_page_pingpong;
      Alcotest.test_case "sc read replication" `Quick sc_read_replication;
      Alcotest.test_case "water with gc" `Quick water_with_gc;
    ]
