(* Protocol tests: vector timestamps, end-to-end shared-memory semantics
   under LRC and ERC, multi-writer merging, lazy diffs, locks, barriers,
   garbage collection, determinism, and behaviour under frame loss. *)

open Tmk_dsm

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Vector timestamps *)

let vt_gen n =
  QCheck.make
    ~print:(fun a -> String.concat "," (List.map string_of_int (Array.to_list a)))
    QCheck.Gen.(array_size (return n) (int_range 0 20))

let vt_of_array a =
  let vt = Vector_time.create (Array.length a) in
  Array.iteri (fun i v -> Vector_time.set vt i v) a;
  vt

let vt_leq_reflexive =
  qtest "vt leq reflexive" (vt_gen 4) (fun a ->
      let vt = vt_of_array a in
      Vector_time.leq vt vt)

let vt_leq_antisymmetric =
  qtest "vt leq antisymmetric" QCheck.(pair (vt_gen 4) (vt_gen 4)) (fun (a, b) ->
      let x = vt_of_array a and y = vt_of_array b in
      (not (Vector_time.leq x y && Vector_time.leq y x)) || Vector_time.equal x y)

let vt_max_is_lub =
  qtest "vt max_into computes the lub" QCheck.(pair (vt_gen 4) (vt_gen 4)) (fun (a, b) ->
      let x = vt_of_array a and y = vt_of_array b in
      let m = Vector_time.copy x in
      Vector_time.max_into ~src:y ~dst:m;
      Vector_time.leq x m && Vector_time.leq y m
      && Array.for_all2 (fun v w -> v >= w || v >= 0) a b
      (* minimality: each entry equals one of the inputs *)
      && List.for_all
           (fun q -> Vector_time.get m q = max a.(q) b.(q))
           [ 0; 1; 2; 3 ])

let vt_compare_total_extends =
  qtest "vt compare_total extends leq" QCheck.(pair (vt_gen 4) (vt_gen 4)) (fun (a, b) ->
      let x = vt_of_array a and y = vt_of_array b in
      if Vector_time.equal x y then Vector_time.compare_total x y = 0
      else if Vector_time.leq x y then Vector_time.compare_total x y < 0
      else if Vector_time.leq y x then Vector_time.compare_total x y > 0
      else Vector_time.compare_total x y = -Vector_time.compare_total y x)

let wire_sizes () =
  check Alcotest.int "notice" 2 Wire.write_notice_bytes;
  check Alcotest.int "vt" 32 (Vector_time.bytes 8);
  check Alcotest.int "interval hdr" 34 (Wire.interval_header_bytes ~nprocs:8);
  (* two intervals with 3 and 0 notices *)
  check Alcotest.int "intervals" (34 + 6 + 34) (Wire.intervals_bytes ~nprocs:8 [ 3; 0 ]);
  check Alcotest.int "page reply" (2 + 4096) Wire.page_reply_bytes;
  check Alcotest.bool "grant grows" true
    (Wire.lock_grant_bytes ~nprocs:8 [ 5 ] > Wire.lock_grant_bytes ~nprocs:8 [])

(* ------------------------------------------------------------------ *)
(* End-to-end programs *)

let cfg ?(nprocs = 4) ?(pages = 8) ?(protocol = Config.Lrc) ?(gc_threshold = max_int)
    ?(net = Tmk_net.Params.atm_aal34) () =
  { Config.default with nprocs; pages; protocol; gc_threshold; net; seed = 99L }

(* Producer/consumer through a barrier: everyone sees processor 0's
   initialization. *)
let broadcast_program c () =
  let seen = Array.make c.Config.nprocs false in
  let result =
    Api.run c (fun ctx ->
        let arr = Api.falloc ctx 100 in
        if Api.pid ctx = 0 then
          for i = 0 to 99 do
            Api.fset ctx arr i (float_of_int (i * i))
          done;
        Api.barrier ctx 0;
        let ok = ref true in
        for i = 0 to 99 do
          if Api.fget ctx arr i <> float_of_int (i * i) then ok := false
        done;
        seen.(Api.pid ctx) <- !ok)
  in
  check Alcotest.bool "all saw the data" true (Array.for_all Fun.id seen);
  check Alcotest.bool "time advanced" true (result.Api.total_time > 0)

let broadcast_lrc () = broadcast_program (cfg ()) ()
let broadcast_erc () = broadcast_program (cfg ~protocol:Config.Erc ()) ()
let broadcast_8procs () = broadcast_program (cfg ~nprocs:8 ()) ()
let broadcast_1proc () = broadcast_program (cfg ~nprocs:1 ()) ()
let broadcast_ethernet () = broadcast_program (cfg ~net:Tmk_net.Params.ethernet_udp ()) ()

(* The signature multiple-writer test: every processor writes a disjoint
   slice of ONE page concurrently; after the barrier everyone sees every
   slice (false sharing handled by diff merging). *)
let multi_writer_merge protocol () =
  let n = 4 in
  let c = cfg ~nprocs:n ~protocol () in
  let result =
    Api.run c (fun ctx ->
        let arr = Api.ialloc ctx 64 in
        (* 64 ints = 512 bytes: all in one page *)
        Api.barrier ctx 0;
        let p = Api.pid ctx in
        for i = 0 to 15 do
          Api.iset ctx arr ((p * 16) + i) ((100 * p) + i)
        done;
        Api.barrier ctx 1;
        for q = 0 to n - 1 do
          for i = 0 to 15 do
            if Api.iget ctx arr ((q * 16) + i) <> (100 * q) + i then
              Alcotest.failf "processor %d sees wrong value for writer %d slot %d" p q i
          done
        done)
  in
  (* Each processor twinned the page once: 4 twins, and diffs were created
     for the concurrent writers. *)
  check Alcotest.bool "twins" true (result.Api.total_stats.Stats.twins_created >= n);
  check Alcotest.bool "diffs" true (result.Api.total_stats.Stats.diffs_created >= n - 1)

let multi_writer_lrc () = multi_writer_merge Config.Lrc ()
let multi_writer_erc () = multi_writer_merge Config.Erc ()

(* Lock-ordered counter: mutual exclusion and write visibility through
   acquire/release chains. *)
let lock_counter protocol () =
  let n = 4 and rounds = 10 in
  let c = cfg ~nprocs:n ~protocol () in
  let finals = Array.make n 0 in
  let _result =
    Api.run c (fun ctx ->
        let counter = Api.ialloc ctx 1 in
        if Api.pid ctx = 0 then Api.iset ctx counter 0 0;
        Api.barrier ctx 0;
        for _ = 1 to rounds do
          Api.with_lock ctx 7 (fun () ->
              Api.iset ctx counter 0 (Api.iget ctx counter 0 + 1))
        done;
        Api.barrier ctx 1;
        finals.(Api.pid ctx) <- Api.iget ctx counter 0)
  in
  Array.iteri
    (fun p v -> check Alcotest.int (Printf.sprintf "final count at %d" p) (n * rounds) v)
    finals

let lock_counter_lrc () = lock_counter Config.Lrc ()
let lock_counter_erc () = lock_counter Config.Erc ()

(* Causal transitivity: p0 -> (lock) -> p1 -> (lock) -> p2 must carry p0's
   write to p2 even though p0 and p2 never synchronize directly. *)
let causal_chain () =
  let c = cfg ~nprocs:3 () in
  let got = ref (-1) in
  let _ =
    Api.run c (fun ctx ->
        let x = Api.ialloc ctx 1 in
        let y = Api.ialloc ctx 1 in
        match Api.pid ctx with
        | 0 ->
          Api.with_lock ctx 1 (fun () -> Api.iset ctx x 0 41);
          (* hand the token onwards *)
          Api.barrier ctx 9
        | 1 ->
          (* wait until p0 is done: poll through the lock *)
          let rec wait () =
            let v = Api.with_lock ctx 1 (fun () -> Api.iget ctx x 0) in
            if v <> 41 then begin
              Api.compute_ns ctx 1000;
              wait ()
            end
          in
          wait ();
          Api.with_lock ctx 2 (fun () -> Api.iset ctx y 0 (Api.iget ctx x 0 + 1));
          Api.barrier ctx 9
        | _ ->
          let rec wait () =
            let v = Api.with_lock ctx 2 (fun () -> Api.iget ctx y 0) in
            if v = 42 then got := Api.with_lock ctx 1 (fun () -> Api.iget ctx x 0)
            else begin
              Api.compute_ns ctx 1000;
              wait ()
            end
          in
          wait ();
          Api.barrier ctx 9)
  in
  check Alcotest.int "p2 sees p0's write" 41 !got

(* Verify the lazy-diff property through counters on a two-phase
   program (diffs appear only when a reader demands them). *)
let lazy_diff_counts () =
  let c = cfg ~nprocs:2 () in
  (* Phase A: p0 writes and both just hit a barrier repeatedly with no
     reader: no diffs should ever be created, only write notices. *)
  let r1 =
    Api.run c (fun ctx ->
        let arr = Api.ialloc ctx 8 in
        for b = 0 to 4 do
          if Api.pid ctx = 0 then Api.iset ctx arr 0 b;
          Api.barrier ctx b
        done)
  in
  check Alcotest.int "no reader, no diffs" 0 r1.Api.total_stats.Stats.diffs_created;
  (* Under ERC the same program must diff at every flush. *)
  let r2 =
    Api.run
      { c with Config.protocol = Config.Erc }
      (fun ctx ->
        let arr = Api.ialloc ctx 8 in
        for b = 0 to 4 do
          if Api.pid ctx = 0 then Api.iset ctx arr 0 b;
          Api.barrier ctx b
        done)
  in
  (* p1 never reads, so p1 caches nothing and the copyset is {0}: eager
     flushes find no other cacher either. Force caching by reading once. *)
  ignore r2;
  let r3 =
    Api.run
      { c with Config.protocol = Config.Erc }
      (fun ctx ->
        let arr = Api.ialloc ctx 8 in
        if Api.pid ctx = 0 then Api.iset ctx arr 0 1;
        Api.barrier ctx 0;
        ignore (Api.iget ctx arr 0);
        Api.barrier ctx 1;
        for b = 2 to 6 do
          if Api.pid ctx = 0 then Api.iset ctx arr 0 b;
          Api.barrier ctx b
        done)
  in
  let r4 =
    Api.run c (fun ctx ->
        let arr = Api.ialloc ctx 8 in
        if Api.pid ctx = 0 then Api.iset ctx arr 0 1;
        Api.barrier ctx 0;
        ignore (Api.iget ctx arr 0);
        Api.barrier ctx 1;
        for b = 2 to 6 do
          if Api.pid ctx = 0 then Api.iset ctx arr 0 b;
          Api.barrier ctx b
        done)
  in
  (* Same program: eager created a diff per write round; lazy created one
     only when p1 actually fetched (after barrier 0). *)
  check Alcotest.bool "eager diffs more than lazy" true
    (r3.Api.total_stats.Stats.diffs_created > r4.Api.total_stats.Stats.diffs_created)

(* A cached lock reacquired by the same processor exchanges no messages. *)
let cached_lock_no_messages () =
  let c = cfg ~nprocs:2 () in
  let r =
    Api.run c (fun ctx ->
        if Api.pid ctx = 0 then
          (* lock 0 is managed by processor 0: always local *)
          for _ = 1 to 50 do
            Api.with_lock ctx 0 (fun () -> Api.compute_ns ctx 10)
          done)
  in
  check Alcotest.int "no messages at all" 0 r.Api.messages;
  check Alcotest.int "50 acquires" 50 r.Api.stats.(0).Stats.lock_acquires;
  check Alcotest.int "0 remote" 0 r.Api.stats.(0).Stats.lock_remote

(* Lock manager forwarding: the grant must come from the last holder, and
   the requester must see its writes. *)
let lock_forwarding_chain () =
  let c = cfg ~nprocs:3 () in
  let r =
    Api.run c (fun ctx ->
        let x = Api.ialloc ctx 1 in
        (* lock 1 is managed by processor 1; the token starts there. *)
        (match Api.pid ctx with
        | 0 ->
          Api.with_lock ctx 1 (fun () -> Api.iset ctx x 0 7);
          Api.barrier ctx 5
        | 1 -> Api.barrier ctx 5
        | _ -> Api.barrier ctx 5);
        (* After the barrier, processor 2 acquires: manager (1) forwards to
           the last requester (0). *)
        if Api.pid ctx = 2 then
          check Alcotest.int "forwarded grant carries data" 7
            (Api.with_lock ctx 1 (fun () -> Api.iget ctx x 0));
        Api.barrier ctx 6)
  in
  check Alcotest.bool "remote acquires happened" true (r.Api.total_stats.Stats.lock_remote >= 2)

(* ERC moves more messages and data than LRC on a write-heavy
   lock-migrating workload (Figures 10/11's shape). *)
let erc_more_traffic_than_lrc () =
  let program ctx =
    let arr = Api.ialloc ctx 128 in
    if Api.pid ctx = 0 then
      for i = 0 to 127 do
        Api.iset ctx arr i 0
      done;
    Api.barrier ctx 0;
    (* Everyone reads everything once so all processors cache the pages. *)
    let s = ref 0 in
    for i = 0 to 127 do
      s := !s + Api.iget ctx arr i
    done;
    Api.barrier ctx 1;
    for round = 2 to 11 do
      Api.with_lock ctx 9 (fun () -> Api.iset ctx arr (Api.pid ctx) round);
      Api.barrier ctx round
    done
  in
  let lazy_r = Api.run (cfg ~nprocs:4 ~pages:4 ()) program in
  let eager_r = Api.run (cfg ~nprocs:4 ~pages:4 ~protocol:Config.Erc ()) program in
  check Alcotest.bool "eager sends more messages" true
    (eager_r.Api.messages > lazy_r.Api.messages);
  check Alcotest.bool "eager sends more bytes" true (eager_r.Api.bytes > lazy_r.Api.bytes);
  check Alcotest.bool "eager makes more diffs" true
    (eager_r.Api.total_stats.Stats.diffs_created > lazy_r.Api.total_stats.Stats.diffs_created)

(* Garbage collection: trigger it with a tiny threshold and verify the
   records are reclaimed and the memory still behaves. *)
let gc_reclaims_and_preserves () =
  let c = cfg ~nprocs:4 ~pages:8 ~gc_threshold:10 () in
  let r =
    Api.run c (fun ctx ->
        let arr = Api.ialloc ctx 64 in
        for round = 0 to 9 do
          (* every processor writes its slice, then a barrier *)
          for i = 0 to 15 do
            Api.iset ctx arr ((Api.pid ctx * 16) + i) ((round * 1000) + i)
          done;
          Api.barrier ctx round
        done;
        (* final check: all slices visible everywhere *)
        for q = 0 to 3 do
          for i = 0 to 15 do
            if Api.iget ctx arr ((q * 16) + i) <> 9000 + i then
              Alcotest.failf "stale data after GC (writer %d slot %d)" q i
          done
        done;
        Api.barrier ctx 100)
  in
  check Alcotest.bool "gc ran" true (r.Api.total_stats.Stats.gc_runs > 0);
  check Alcotest.bool "records discarded" true
    (r.Api.total_stats.Stats.records_discarded > 0);
  (* Every node's live record count was reset by its last GC. *)
  let nodes_ok =
    List.for_all
      (fun p ->
        (Protocol.node r.Api.cluster p).Node.live_records
        < 200 (* far below what 10 unrecycled rounds would accumulate *))
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.bool "live records bounded" true nodes_ok

(* Determinism: identical configurations give bit-identical outcomes. *)
let deterministic_runs () =
  let program ctx =
    let arr = Api.ialloc ctx 64 in
    for round = 0 to 3 do
      Api.with_lock ctx 2 (fun () ->
          Api.iset ctx arr (Api.pid ctx) round);
      Api.barrier ctx round
    done
  in
  let r1 = Api.run (cfg ()) program in
  let r2 = Api.run (cfg ()) program in
  check Alcotest.int "same time" r1.Api.total_time r2.Api.total_time;
  check Alcotest.int "same messages" r1.Api.messages r2.Api.messages;
  check Alcotest.int "same bytes" r1.Api.bytes r2.Api.bytes

(* The protocol survives a lossy medium: user-level retransmission keeps
   the execution correct. *)
let correct_under_loss () =
  let net = Tmk_net.Params.with_loss Tmk_net.Params.atm_aal34 0.15 in
  let c = cfg ~nprocs:3 ~net () in
  let r =
    Api.run c (fun ctx ->
        let counter = Api.ialloc ctx 1 in
        if Api.pid ctx = 0 then Api.iset ctx counter 0 0;
        Api.barrier ctx 0;
        for _ = 1 to 5 do
          Api.with_lock ctx 4 (fun () ->
              Api.iset ctx counter 0 (Api.iget ctx counter 0 + 1))
        done;
        Api.barrier ctx 1;
        check Alcotest.int "count under loss" 15 (Api.iget ctx counter 0))
  in
  check Alcotest.bool "retransmissions happened" true (r.Api.retransmissions > 0)

(* SPMD allocation discipline is enforced. *)
let malloc_divergence_detected () =
  let c = cfg ~nprocs:2 () in
  (match
     Api.run c (fun ctx ->
         if Api.pid ctx = 0 then ignore (Api.malloc ctx ~bytes:64)
         else ignore (Api.malloc ctx ~bytes:128))
   with
  | _ -> Alcotest.fail "expected divergence failure"
  | exception Invalid_argument msg ->
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "mentions divergence" true (contains msg "diverge"))

let malloc_page_align () =
  let c = cfg ~nprocs:1 ~pages:4 () in
  ignore
    (Api.run c (fun ctx ->
         let a = Api.malloc ctx ~bytes:100 in
         let b = Api.malloc ~align:Tmk_mem.Vm.page_size ctx ~bytes:100 in
         check Alcotest.int "first at 0" 0 a;
         check Alcotest.int "second page-aligned" 4096 b))

let out_of_memory_detected () =
  let c = cfg ~nprocs:1 ~pages:1 () in
  ignore
    (Api.run c (fun ctx ->
         match Api.malloc ctx ~bytes:8192 with
         | _ -> Alcotest.fail "expected out of memory"
         | exception Invalid_argument _ -> ()))

(* Read-only sharing: many readers of the same page cause exactly one
   page fetch each and no diffs at all. *)
let read_sharing_no_diffs () =
  let c = cfg ~nprocs:4 () in
  let r =
    Api.run c (fun ctx ->
        let arr = Api.falloc ctx 100 in
        if Api.pid ctx = 0 then
          for i = 0 to 99 do
            Api.fset ctx arr i 1.0
          done;
        Api.barrier ctx 0;
        let s = ref 0.0 in
        for i = 0 to 99 do
          s := !s +. Api.fget ctx arr i
        done;
        Api.barrier ctx 1;
        check (Alcotest.float 0.0) "sum" 100.0 !s)
  in
  (* p0's single diff may be created when readers fetch; but no reader
     creates diffs. *)
  check Alcotest.bool "at most p0's diffs" true (r.Api.total_stats.Stats.diffs_created <= 1);
  check Alcotest.bool "three fetches" true (r.Api.total_stats.Stats.page_fetches >= 3)

let suite =
  [
    vt_leq_reflexive;
    vt_leq_antisymmetric;
    vt_max_is_lub;
    vt_compare_total_extends;
    Alcotest.test_case "wire sizes" `Quick wire_sizes;
    Alcotest.test_case "broadcast lrc" `Quick broadcast_lrc;
    Alcotest.test_case "broadcast erc" `Quick broadcast_erc;
    Alcotest.test_case "broadcast 8 procs" `Quick broadcast_8procs;
    Alcotest.test_case "broadcast 1 proc" `Quick broadcast_1proc;
    Alcotest.test_case "broadcast ethernet" `Quick broadcast_ethernet;
    Alcotest.test_case "multi-writer merge lrc" `Quick multi_writer_lrc;
    Alcotest.test_case "multi-writer merge erc" `Quick multi_writer_erc;
    Alcotest.test_case "lock counter lrc" `Quick lock_counter_lrc;
    Alcotest.test_case "lock counter erc" `Quick lock_counter_erc;
    Alcotest.test_case "causal chain" `Quick causal_chain;
    Alcotest.test_case "lazy diff counts" `Quick lazy_diff_counts;
    Alcotest.test_case "cached lock no messages" `Quick cached_lock_no_messages;
    Alcotest.test_case "lock forwarding chain" `Quick lock_forwarding_chain;
    Alcotest.test_case "erc more traffic" `Quick erc_more_traffic_than_lrc;
    Alcotest.test_case "gc reclaims and preserves" `Quick gc_reclaims_and_preserves;
    Alcotest.test_case "deterministic runs" `Quick deterministic_runs;
    Alcotest.test_case "correct under loss" `Quick correct_under_loss;
    Alcotest.test_case "malloc divergence detected" `Quick malloc_divergence_detected;
    Alcotest.test_case "malloc page align" `Quick malloc_page_align;
    Alcotest.test_case "out of memory detected" `Quick out_of_memory_detected;
    Alcotest.test_case "read sharing no diffs" `Quick read_sharing_no_diffs;
  ]
