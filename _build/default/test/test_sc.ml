(* Direct tests of the sequentially-consistent single-writer baseline:
   ownership transfer, read replication, invalidation on write, request
   queuing, and its contrast with the multiple-writer protocol. *)

open Tmk_dsm
module Vm = Tmk_mem.Vm

let check = Alcotest.check

let cfg ?(nprocs = 4) ?(pages = 4) () =
  { Config.default with Config.nprocs; pages; protocol = Config.Sc; seed = 21L }

let ownership_transfers () =
  let r =
    Api.run (cfg ()) (fun ctx ->
        let x = Api.ialloc ctx 4 in
        (* write ownership moves 0 -> 1 -> 2 -> 3, reads follow *)
        for round = 0 to 3 do
          if Api.pid ctx = round then Api.iset ctx x 0 (100 + round);
          Api.barrier ctx round;
          check Alcotest.int "everyone reads the new value" (100 + round) (Api.iget ctx x 0);
          Api.barrier ctx (100 + round)
        done)
  in
  check Alcotest.bool "pages moved" true (r.Api.total_stats.Stats.page_fetches > 4)

let write_upgrade_in_place () =
  (* a processor that holds a read copy and becomes the writer must not
     transfer the page (it is current), only the ownership *)
  let r =
    Api.run (cfg ~nprocs:2 ()) (fun ctx ->
        let x = Api.ialloc ctx 4 in
        if Api.pid ctx = 0 then Api.iset ctx x 0 5;
        Api.barrier ctx 0;
        (* p1 reads (replicates), then writes (upgrade) *)
        if Api.pid ctx = 1 then begin
          check Alcotest.int "read" 5 (Api.iget ctx x 0);
          Api.iset ctx x 0 6
        end;
        Api.barrier ctx 1;
        check Alcotest.int "write visible" 6 (Api.iget ctx x 0))
  in
  ignore r

let concurrent_writers_serialize () =
  (* all processors hammer the same word under a lock: single-writer
     transfers serialize the updates, the count must be exact *)
  let n = 4 and rounds = 8 in
  let _ =
    Api.run (cfg ~nprocs:n ()) (fun ctx ->
        let x = Api.ialloc ctx 4 in
        if Api.pid ctx = 0 then Api.iset ctx x 0 0;
        Api.barrier ctx 0;
        for _ = 1 to rounds do
          Api.with_lock ctx 3 (fun () -> Api.iset ctx x 0 (Api.iget ctx x 0 + 1))
        done;
        Api.barrier ctx 1;
        check Alcotest.int "count" (n * rounds) (Api.iget ctx x 0))
  in
  ()

let no_twins_no_diffs () =
  let r =
    Api.run (cfg ()) (fun ctx ->
        let x = Api.ialloc ctx 64 in
        if Api.pid ctx = 0 then
          for i = 0 to 63 do
            Api.iset ctx x i i
          done;
        Api.barrier ctx 0;
        ignore (Api.iget ctx x (Api.pid ctx)))
  in
  check Alcotest.int "no twins under SC" 0 r.Api.total_stats.Stats.twins_created;
  check Alcotest.int "no diffs under SC" 0 r.Api.total_stats.Stats.diffs_created

let deterministic () =
  let run () =
    let r =
      Api.run (cfg ()) (fun ctx ->
          let x = Api.ialloc ctx 16 in
          for round = 0 to 4 do
            Api.iset ctx x (Api.pid ctx * 4) round;
            Api.barrier ctx round
          done)
    in
    (r.Api.total_time, r.Api.messages)
  in
  check
    Alcotest.(pair int int)
    "same outcome" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "ownership transfers" `Quick ownership_transfers;
    Alcotest.test_case "write upgrade in place" `Quick write_upgrade_in_place;
    Alcotest.test_case "concurrent writers serialize" `Quick concurrent_writers_serialize;
    Alcotest.test_case "no twins no diffs" `Quick no_twins_no_diffs;
    Alcotest.test_case "deterministic" `Quick deterministic;
  ]
