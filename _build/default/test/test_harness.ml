(* Harness and experiment-driver tests: metric extraction sanity, id
   parsing, and light end-to-end runs (the heavyweight sweeps live in
   bench/main.exe, not the test suite). *)

open Tmk_dsm
open Tmk_harness

let check = Alcotest.check

let app_names_roundtrip () =
  List.iter
    (fun app ->
      check Alcotest.bool "roundtrip" true
        (Harness.app_of_name (Harness.app_name app) = app))
    Harness.all_apps;
  check Alcotest.bool "qsort alias" true (Harness.app_of_name "qsort" = Harness.Quicksort);
  Alcotest.check_raises "unknown app"
    (Invalid_argument "Harness.app_of_name: unknown application \"mandelbrot\"") (fun () ->
      ignore (Harness.app_of_name "mandelbrot"))

let metrics_consistent () =
  let m =
    Harness.run ~app:Harness.Ilink ~nprocs:4 ~protocol:Config.Lrc
      ~net:Tmk_net.Params.atm_aal34
  in
  check Alcotest.bool "time positive" true (m.Harness.m_time_s > 0.0);
  let total =
    m.Harness.m_comp_pct +. Harness.unix_pct m +. Harness.tmk_pct m +. m.Harness.m_idle_pct
  in
  check Alcotest.bool "percentages sum to ~100" true (Float.abs (total -. 100.0) < 0.5);
  check Alcotest.bool "ilink has no locks" true (m.Harness.m_locks_per_sec = 0.0);
  check Alcotest.bool "ilink has barriers" true (m.Harness.m_barriers_per_sec > 0.0)

let water_shape () =
  let m =
    Harness.run ~app:Harness.Water ~nprocs:4 ~protocol:Config.Lrc
      ~net:Tmk_net.Params.atm_aal34
  in
  check Alcotest.bool "water locks heavily" true (m.Harness.m_locks_per_sec > 100.0);
  check Alcotest.bool "water msgs heavy" true (m.Harness.m_msgs_per_sec > 500.0)

let jacobi_parallelizes () =
  let atm = Tmk_net.Params.atm_aal34 in
  let t1 =
    (Harness.run ~app:Harness.Jacobi ~nprocs:1 ~protocol:Config.Lrc ~net:atm).Harness.m_time_s
  in
  let t4 =
    (Harness.run ~app:Harness.Jacobi ~nprocs:4 ~protocol:Config.Lrc ~net:atm).Harness.m_time_s
  in
  check Alcotest.bool "speedup > 3 at 4 procs" true (t1 /. t4 > 3.0)

let experiment_ids () =
  List.iter
    (fun id ->
      check Alcotest.bool "id roundtrip" true
        (Experiments.id_of_name (Experiments.id_name id) = id);
      check Alcotest.bool "describe nonempty" true (String.length (Experiments.describe id) > 0))
    Experiments.all;
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Experiments.id_of_name: unknown experiment \"e42\"") (fun () ->
      ignore (Experiments.id_of_name "e42"))

let e1_report_renders () =
  let report = Experiments.run Experiments.E1 in
  check Alcotest.bool "mentions paper values" true
    (List.for_all
       (fun needle ->
         let n = String.length needle in
         let rec go i = i + n <= String.length report && (String.sub report i n = needle || go (i + 1)) in
         go 0)
       [ "827"; "1149"; "2186"; "2792"; "lock acquire" ])

let suite =
  [
    Alcotest.test_case "app names roundtrip" `Quick app_names_roundtrip;
    Alcotest.test_case "metrics consistent" `Quick metrics_consistent;
    Alcotest.test_case "water shape" `Quick water_shape;
    Alcotest.test_case "jacobi parallelizes" `Slow jacobi_parallelizes;
    Alcotest.test_case "experiment ids" `Quick experiment_ids;
    Alcotest.test_case "e1 report renders" `Quick e1_report_renders;
  ]
