test/test_sc.ml: Alcotest Api Config Stats Tmk_dsm Tmk_mem
