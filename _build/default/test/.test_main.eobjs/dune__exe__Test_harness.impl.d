test/test_harness.ml: Alcotest Config Experiments Float Harness List String Tmk_dsm Tmk_harness Tmk_net
