test/test_fuzz.ml: Api Array Config Int64 List Printf QCheck QCheck_alcotest Tmk_dsm Tmk_mem Tmk_net
