test/test_dsm.ml: Alcotest Api Array Config Fun List Node Printf Protocol QCheck QCheck_alcotest Stats String Tmk_dsm Tmk_mem Tmk_net Vector_time Wire
