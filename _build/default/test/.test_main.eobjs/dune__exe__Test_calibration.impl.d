test/test_calibration.ml: Alcotest Array Category Config Engine Float Node Protocol Tmk_dsm Tmk_mem Tmk_net Tmk_sim Tmk_util Vtime
