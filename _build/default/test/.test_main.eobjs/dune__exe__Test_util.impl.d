test/test_util.ml: Alcotest Array Bitset Bytes Float Gen Hashtbl Heap List Printf Prng QCheck QCheck_alcotest Rle String Summary Tablefmt Tmk_util
