test/test_apps.ml: Alcotest Api Array Config Float Ilink Jacobi List Option Quicksort Stats Tmk_apps Tmk_dsm Tmk_sim Tmk_workload Tsp Water
