test/test_node.ml: Alcotest Array Bytes Int64 List Node Stats Tmk_dsm Tmk_mem Tmk_util Vector_time
