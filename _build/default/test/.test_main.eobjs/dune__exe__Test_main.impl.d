test/test_main.ml: Alcotest Test_apps Test_calibration Test_dsm Test_fuzz Test_harness Test_mem Test_net Test_node Test_sc Test_sim Test_util
