test/test_sim.ml: Alcotest Array Buffer Category Engine Format List Printf QCheck QCheck_alcotest String Tmk_sim Vtime
