test/test_net.ml: Alcotest Engine List Params Tmk_net Tmk_sim Tmk_util Transport Vtime
