test/test_mem.ml: Alcotest Bytes Costs List QCheck QCheck_alcotest Tmk_mem Tmk_util Vm
