type t = { words : Bytes.t; capacity : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((n + 7) / 8) '\000'; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i / 8)) in
  Bytes.set t.words (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))

let remove t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i / 8)) in
  Bytes.set t.words (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8)) land 0xFF))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i mod 8)) <> 0

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let cardinal t = fold (fun _ n -> n + 1) t 0
let is_empty t =
  let n = Bytes.length t.words in
  let rec all_zero i = i >= n || (Bytes.get t.words i = '\000' && all_zero (i + 1)) in
  all_zero 0

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let union_into ~src ~dst =
  if src.capacity <> dst.capacity then
    invalid_arg "Bitset.union_into: capacity mismatch";
  for i = 0 to Bytes.length src.words - 1 do
    let b = Char.code (Bytes.get src.words i) lor Char.code (Bytes.get dst.words i) in
    Bytes.set dst.words i (Char.chr b)
  done

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    (to_list t)
