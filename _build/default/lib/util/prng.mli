(** Deterministic splittable pseudo-random number generator.

    The whole reproduction must be replayable from a single seed: workload
    generation, application scheduling decisions, and any randomised test
    input all draw from this generator.  We use SplitMix64 (Steele, Lea &
    Flood, OOPSLA 2014), which is tiny, fast, has a 64-bit state, and
    supports {e splitting}: deriving an independent stream for a
    sub-component so that adding draws in one module does not perturb the
    stream seen by another. *)

type t

(** [create seed] makes a fresh generator from a 64-bit seed. *)
val create : int64 -> t

(** [split t] derives a generator whose stream is independent of further
    draws from [t].  [t] itself advances by one step. *)
val split : t -> t

(** [split_named t name] splits deterministically on a label, so call sites
    are robust to reordering. *)
val split_named : t -> string -> t

(** [bits64 t] draws 64 uniformly distributed bits. *)
val bits64 : t -> int64

(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)
val int : t -> int -> int

(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)
val int_in : t -> int -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bool t] draws a fair coin flip. *)
val bool : t -> bool

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t arr] draws a uniformly random element of the non-empty array
    [arr]. *)
val pick : t -> 'a array -> 'a
