(** Imperative binary min-heap keyed by a user-supplied comparison.

    Backbone of the discrete-event queue in [Tmk_sim.Engine]: events are
    popped in virtual-time order.  Insertion order is used as a tiebreaker
    so that simultaneous events dequeue deterministically (FIFO among
    equals), which is what makes whole-cluster runs replayable. *)

type 'a t

(** [create ~compare] makes an empty heap ordered by [compare] (smallest
    first).  Elements comparing equal dequeue in insertion order. *)
val create : compare:('a -> 'a -> int) -> 'a t

(** [length h] is the number of queued elements. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** [push h x] inserts [x]. *)
val push : 'a t -> 'a -> unit

(** [pop h] removes and returns the smallest element.
    @raise Not_found if the heap is empty. *)
val pop : 'a t -> 'a

(** [pop_opt h] is [Some (pop h)], or [None] when empty. *)
val pop_opt : 'a t -> 'a option

(** [peek_opt h] is the smallest element without removing it. *)
val peek_opt : 'a t -> 'a option

(** [clear h] removes every element. *)
val clear : 'a t -> unit

(** [to_sorted_list h] drains the heap, returning elements smallest
    first. *)
val to_sorted_list : 'a t -> 'a list
