type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(* SplitMix64 output mixer: state advances by the golden gamma, and the
   result is the finalised hash of the new state. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (bits64 t)

(* FNV-1a over the label, folded into a fresh stream drawn from [t]. *)
let split_named t name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  create (Int64.logxor (bits64 t) !h)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits scaled into [0, bound). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))
