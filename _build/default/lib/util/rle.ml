type run = { offset : int; bytes : Bytes.t }
type t = run list

let header_bytes = 4

let encode ?(join_gap = 4) ~old_ current =
  let n = Bytes.length old_ in
  if Bytes.length current <> n then
    invalid_arg "Rle.encode: buffers must have equal length";
  (* Scan for maximal differing runs; then merge runs whose separating gap
     of equal bytes is shorter than [join_gap]. *)
  let rec find_diff i =
    if i >= n then None
    else if Bytes.unsafe_get old_ i <> Bytes.unsafe_get current i then Some i
    else find_diff (i + 1)
  in
  let rec find_same i =
    if i >= n then n
    else if Bytes.unsafe_get old_ i = Bytes.unsafe_get current i then i
    else find_same (i + 1)
  in
  (* Accumulate (start, stop) spans, joining across small gaps. *)
  let rec spans acc i =
    match find_diff i with
    | None -> List.rev acc
    | Some start ->
      let stop = find_same (start + 1) in
      (match acc with
       | (s0, e0) :: rest when start - e0 < join_gap -> spans ((s0, stop) :: rest) stop
       | _ -> spans ((start, stop) :: acc) stop)
  in
  let to_run (start, stop) =
    { offset = start; bytes = Bytes.sub current start (stop - start) }
  in
  List.map to_run (spans [] 0)

let apply t target =
  let n = Bytes.length target in
  let apply_run { offset; bytes } =
    let len = Bytes.length bytes in
    if offset < 0 || offset + len > n then invalid_arg "Rle.apply: run out of bounds";
    Bytes.blit bytes 0 target offset len
  in
  List.iter apply_run t

let is_empty t = t = []
let run_count t = List.length t

let payload_size t =
  List.fold_left (fun acc r -> acc + Bytes.length r.bytes) 0 t

let encoded_size t = payload_size t + (header_bytes * run_count t)

let overlaps a b =
  let covers r pos = pos >= r.offset && pos < r.offset + Bytes.length r.bytes in
  let run_overlap ra rb =
    covers ra rb.offset || covers rb ra.offset
  in
  List.exists (fun ra -> List.exists (run_overlap ra) b) a

let pp ppf t =
  let pp_run ppf r = Format.fprintf ppf "%d+%d" r.offset (Bytes.length r.bytes) in
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_run) t
