(** Plain-text rendering of the paper's tables and figures.

    The benchmark harness regenerates every table and figure from the
    evaluation section; since the original figures are plots, we render
    them as aligned tables, horizontal bar charts, and line charts on a
    character grid, which is enough to compare shapes against the paper. *)

(** [render ~title ~header rows] draws an aligned table with a rule under
    the header.  Every row must have [List.length header] cells. *)
val render : title:string -> header:string list -> string list list -> string

(** [bar_chart ~title ~unit_ ~max_width items] draws one horizontal bar per
    [(label, value)] pair, scaled so the largest value spans [max_width]
    characters (default 50). *)
val bar_chart :
  ?max_width:int -> title:string -> unit_:string -> (string * float) list -> string

(** [grouped_bar_chart ~title ~unit_ ~series items] draws, per item, one bar
    per series (e.g. Lazy vs Eager), labelled with the series names. *)
val grouped_bar_chart :
  ?max_width:int ->
  title:string ->
  unit_:string ->
  series:string list ->
  (string * float list) list ->
  string

(** [stacked_bar_chart ~title ~unit_ ~components items] draws one bar per
    item partitioned into components (e.g. Computation / Unix / TreadMarks /
    Idle), plus a numeric legend per item. *)
val stacked_bar_chart :
  ?max_width:int ->
  title:string ->
  unit_:string ->
  components:string list ->
  (string * float list) list ->
  string

(** [line_chart ~title ~x_label ~y_label ~x series] plots several series
    against shared x values on a character grid (used for the Figure 3
    speedup curves).  Each series is [(name, glyph, ys)]. *)
val line_chart :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  x:float list ->
  (string * char * float list) list ->
  string

(** [float_cell v] formats a float with sensible width for table cells. *)
val float_cell : float -> string
