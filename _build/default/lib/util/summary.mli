(** Streaming summary statistics (count, mean, min, max, variance).

    Uses Welford's online algorithm so long event streams can be summarised
    without retaining samples. *)

type t

(** [create ()] makes an empty accumulator. *)
val create : unit -> t

(** [add t x] folds one observation in. *)
val add : t -> float -> unit

(** [count t] is the number of observations. *)
val count : t -> int

(** [mean t] is the arithmetic mean, or [nan] when empty. *)
val mean : t -> float

(** [min_value t] / [max_value t] are extreme observations, or [nan] when
    empty. *)
val min_value : t -> float

val max_value : t -> float

(** [variance t] is the unbiased sample variance, or [nan] with fewer than
    two observations. *)
val variance : t -> float

(** [stddev t] is [sqrt (variance t)]. *)
val stddev : t -> float

(** [total t] is the running sum of observations. *)
val total : t -> float

(** [merge a b] is a fresh accumulator equivalent to having observed both
    streams. *)
val merge : t -> t -> t

(** [pp] formats as [n=.. mean=.. min=.. max=..]. *)
val pp : Format.formatter -> t -> unit
