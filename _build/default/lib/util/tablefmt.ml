let float_cell v =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let render ~title ~header rows =
  let ncols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> ncols then
        invalid_arg "Tablefmt.render: row width mismatch")
    rows;
  let widths = Array.of_list (List.map String.length header) in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths rows;
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let pad i cell =
    (* Right-align everything but the first column (labels). *)
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let emit_row row =
    Buffer.add_string buf (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let label_width items = List.fold_left (fun w (l, _) -> max w (String.length l)) 0 items

let bar_chart ?(max_width = 50) ~title ~unit_ items =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let top = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 items in
  let lw = label_width items in
  let emit (label, v) =
    let n = if top <= 0.0 then 0 else int_of_float (Float.round (v /. top *. float_of_int max_width)) in
    Buffer.add_string buf
      (Printf.sprintf "%-*s |%s %s %s\n" lw label (String.make n '#') (float_cell v) unit_)
  in
  List.iter emit items;
  Buffer.contents buf

let grouped_bar_chart ?(max_width = 50) ~title ~unit_ ~series items =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let top =
    List.fold_left (fun m (_, vs) -> List.fold_left Float.max m vs) 0.0 items
  in
  let lw = label_width (List.map (fun (l, _) -> (l, 0.0)) items) in
  let sw = List.fold_left (fun w s -> max w (String.length s)) 0 series in
  let glyphs = [| '#'; '='; '+'; '%'; '@' |] in
  let emit (label, vs) =
    List.iteri
      (fun i v ->
        let name = List.nth series i in
        let n =
          if top <= 0.0 then 0
          else int_of_float (Float.round (v /. top *. float_of_int max_width))
        in
        let row_label = if i = 0 then label else "" in
        Buffer.add_string buf
          (Printf.sprintf "%-*s %-*s |%s %s %s\n" lw row_label sw name
             (String.make n glyphs.(i mod Array.length glyphs))
             (float_cell v) unit_))
      vs;
    Buffer.add_char buf '\n'
  in
  List.iter emit items;
  Buffer.contents buf

let stacked_bar_chart ?(max_width = 60) ~title ~unit_ ~components items =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let total vs = List.fold_left ( +. ) 0.0 vs in
  let top = List.fold_left (fun m (_, vs) -> Float.max m (total vs)) 0.0 items in
  let lw = label_width (List.map (fun (l, _) -> (l, 0.0)) items) in
  let glyphs = [| '#'; '='; '+'; '.' ; '%' |] in
  let emit (label, vs) =
    let bar = Buffer.create 64 in
    List.iteri
      (fun i v ->
        let n =
          if top <= 0.0 then 0
          else int_of_float (Float.round (v /. top *. float_of_int max_width))
        in
        Buffer.add_string bar (String.make n glyphs.(i mod Array.length glyphs)))
      vs;
    let legend =
      String.concat "  "
        (List.map2 (fun name v -> Printf.sprintf "%s=%s" name (float_cell v)) components vs)
    in
    Buffer.add_string buf
      (Printf.sprintf "%-*s |%s| total %s %s  (%s)\n" lw label (Buffer.contents bar)
         (float_cell (total vs)) unit_ legend)
  in
  List.iter emit items;
  let key =
    String.concat "  "
      (List.mapi (fun i name -> Printf.sprintf "%c=%s" glyphs.(i mod Array.length glyphs) name) components)
  in
  Buffer.add_string buf ("key: " ^ key ^ "\n");
  Buffer.contents buf

let line_chart ?(width = 60) ?(height = 20) ~title ~x_label ~y_label ~x series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let xs = Array.of_list x in
  let nx = Array.length xs in
  let all_ys = List.concat_map (fun (_, _, ys) -> ys) series in
  let y_max = List.fold_left Float.max 0.0 all_ys in
  let y_max = if y_max <= 0.0 then 1.0 else y_max in
  let x_min = xs.(0) and x_max = xs.(nx - 1) in
  let grid = Array.make_matrix height width ' ' in
  let col_of xv =
    if x_max = x_min then 0
    else
      min (width - 1)
        (int_of_float (Float.round ((xv -. x_min) /. (x_max -. x_min) *. float_of_int (width - 1))))
  in
  let row_of yv =
    let r = int_of_float (Float.round (yv /. y_max *. float_of_int (height - 1))) in
    height - 1 - min (height - 1) (max 0 r)
  in
  let plot_series (_, glyph, ys) =
    List.iteri
      (fun i yv ->
        if i < nx then grid.(row_of yv).(col_of xs.(i)) <- glyph)
      ys
  in
  List.iter plot_series series;
  let y_label_w = 8 in
  for r = 0 to height - 1 do
    let yv = y_max *. float_of_int (height - 1 - r) /. float_of_int (height - 1) in
    let label =
      if r mod 4 = 0 || r = height - 1 then Printf.sprintf "%*.1f |" (y_label_w - 2) yv
      else String.make (y_label_w - 1) ' ' ^ "|"
    in
    Buffer.add_string buf label;
    Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make (y_label_w - 1) ' ' ^ "+" ^ String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%*s%-*.0f%*.0f   (%s)\n" y_label_w "" (width - 8) x_min 8 x_max x_label);
  Buffer.add_string buf (Printf.sprintf "y: %s   series: " y_label);
  Buffer.add_string buf
    (String.concat "  " (List.map (fun (name, glyph, _) -> Printf.sprintf "%c=%s" glyph name) series));
  Buffer.add_char buf '\n';
  Buffer.contents buf
