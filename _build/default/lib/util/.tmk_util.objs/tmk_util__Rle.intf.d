lib/util/rle.mli: Bytes Format
