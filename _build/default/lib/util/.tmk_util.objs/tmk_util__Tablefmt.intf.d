lib/util/tablefmt.mli:
