lib/util/heap.mli:
