lib/util/prng.mli:
