lib/util/summary.ml: Float Format
