lib/util/rle.ml: Bytes Format List
