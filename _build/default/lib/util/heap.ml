(* Each element carries the sequence number of its insertion; comparison
   falls back on it so equal-priority elements are FIFO. *)
type 'a entry = { value : 'a; seq : int }

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare = { compare; data = [||]; size = 0; next_seq = 0 }

let length h = h.size
let is_empty h = h.size = 0

let entry_lt h a b =
  let c = h.compare a.value b.value in
  c < 0 || (c = 0 && a.seq < b.seq)

(* Only called with a non-empty backing array (the first push allocates
   it), so slot 0 is a safe dummy for the unreachable tail cells. *)
let grow h =
  let cap = Array.length h.data in
  let data = Array.make (cap * 2) h.data.(0) in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_lt h h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && entry_lt h h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  let entry = { value = x; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 entry
  else if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then raise Not_found;
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top.value

let pop_opt h = if h.size = 0 then None else Some (pop h)
let peek_opt h = if h.size = 0 then None else Some h.data.(0).value

let clear h =
  h.size <- 0;
  h.data <- [||]

let to_sorted_list h =
  let rec drain acc = match pop_opt h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
