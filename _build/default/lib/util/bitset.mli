(** Fixed-capacity mutable bitsets.

    Used for page copysets (the set of processors believed to cache a page,
    paper §3.1) and for per-interval page sets.  Capacity is fixed at
    creation; membership operations are O(1). *)

type t

(** [create n] makes a set over the universe [0, n). *)
val create : int -> t

(** [capacity t] is the universe size given at creation. *)
val capacity : t -> int

(** [add t i] inserts [i]. *)
val add : t -> int -> unit

(** [remove t i] deletes [i]. *)
val remove : t -> int -> unit

(** [mem t i] tests membership. *)
val mem : t -> int -> bool

(** [cardinal t] is the number of members. *)
val cardinal : t -> int

(** [is_empty t] holds when no element is present. *)
val is_empty : t -> bool

(** [clear t] removes every element. *)
val clear : t -> unit

(** [iter f t] applies [f] to members in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f t init] folds over members in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list t] lists members in increasing order. *)
val to_list : t -> int list

(** [copy t] is an independent duplicate. *)
val copy : t -> t

(** [union_into ~src ~dst] adds every member of [src] to [dst].  The two
    sets must have the same capacity. *)
val union_into : src:t -> dst:t -> unit

(** [equal a b] holds when the sets have identical members. *)
val equal : t -> t -> bool

(** [pp] formats as [{0,3,5}]. *)
val pp : Format.formatter -> t -> unit
