open Tmk_sim

(* DECstation-5000/240 (40 MHz R3400): bcopy of a 4 KB page ≈ 35 µs; a
   compare scan is similar per byte with extra branching. *)
let mprotect = Vtime.us 25
let sigsegv = Vtime.us 45
let twin_copy = Vtime.us 35

let diff_create page_bytes = Vtime.add (Vtime.us 15) (Vtime.ns (page_bytes * 15))

let diff_apply payload_bytes = Vtime.add (Vtime.us 10) (Vtime.ns (payload_bytes * 12))

let page_copy = Vtime.us 35
