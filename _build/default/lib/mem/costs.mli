(** Memory-management cost constants.

    Splits follow the paper's accounting: kernel-side costs (mprotect,
    SIGSEGV generation/delivery) are charged to [Unix_mem]; user-level
    change detection (twin copy, diff construction and application) to
    [Tmk_mem].  The paper reports that for Water less than 0.8% of time is
    kernel memory management and less than 2.2% is user-level detection
    ("most of this time is spent copying the page and constructing the
    diff"), which these constants reproduce at the measured fault and diff
    rates. *)

open Tmk_sim

(** [mprotect] — one protection change on one page. *)
val mprotect : Vtime.t

(** [sigsegv] — generating and delivering one access-violation signal to
    the user-level handler. *)
val sigsegv : Vtime.t

(** [twin_copy] — bcopy of one 4096-byte page into a twin. *)
val twin_copy : Vtime.t

(** [diff_create page_bytes] — comparing a page against its twin
    (word-by-word scan of the whole page) and building the runlength
    encoding. *)
val diff_create : int -> Vtime.t

(** [diff_apply payload_bytes] — patching a page with a received diff;
    proportional to the diff payload, plus a fixed dispatch cost. *)
val diff_apply : int -> Vtime.t

(** [page_copy] — copying a full page into or out of a message buffer. *)
val page_copy : Vtime.t
