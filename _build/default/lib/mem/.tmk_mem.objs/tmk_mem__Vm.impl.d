lib/mem/vm.ml: Array Bytes Char Int64 List Printf Tmk_util
