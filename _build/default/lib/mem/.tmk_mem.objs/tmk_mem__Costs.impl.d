lib/mem/costs.ml: Tmk_sim Vtime
