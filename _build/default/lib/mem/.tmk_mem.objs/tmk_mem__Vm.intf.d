lib/mem/vm.mli: Bytes Tmk_util
