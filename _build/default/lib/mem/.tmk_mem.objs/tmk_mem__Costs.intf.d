lib/mem/costs.mli: Tmk_sim Vtime
