type t = int array

let create n =
  if n <= 0 then invalid_arg "Vector_time.create: need at least one processor";
  Array.make n 0

let copy = Array.copy
let size = Array.length
let get t q = t.(q)
let set t q i = t.(q) <- i

let max_into ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Vector_time.max_into: size mismatch";
  for q = 0 to Array.length dst - 1 do
    if src.(q) > dst.(q) then dst.(q) <- src.(q)
  done

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_time.leq: size mismatch";
  let rec go q = q >= Array.length a || (a.(q) <= b.(q) && go (q + 1)) in
  go 0

let dominates a b = leq b a
let equal a b = a = b

let compare_total a b =
  if equal a b then 0
  else if leq a b then -1
  else if leq b a then 1
  else compare a b

let bytes n = 4 * n

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int t)))
