lib/dsm/sc.mli: Engine Node Tmk_mem Tmk_net Tmk_sim
