lib/dsm/stats.ml: Format
