lib/dsm/cpu.ml: Tmk_sim Vtime
