lib/dsm/sc.ml: Array Category Cpu Engine List Node Queue Stats Tmk_mem Tmk_net Tmk_sim Tmk_util Vtime Wire
