lib/dsm/stats.mli: Format
