lib/dsm/vector_time.mli: Format
