lib/dsm/cpu.mli: Tmk_sim Vtime
