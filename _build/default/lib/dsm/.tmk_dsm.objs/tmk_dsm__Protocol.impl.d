lib/dsm/protocol.ml: Array Bytes Category Config Cpu Engine Hashtbl List Logs Node Option Printf Queue Sc Stats Tmk_mem Tmk_net Tmk_sim Tmk_util Vector_time Vtime Wire
