lib/dsm/node.mli: Bytes Category Stats Tmk_mem Tmk_sim Tmk_util Vector_time Vtime
