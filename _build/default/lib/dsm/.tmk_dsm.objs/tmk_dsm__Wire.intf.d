lib/dsm/wire.mli:
