lib/dsm/vector_time.ml: Array Format String
