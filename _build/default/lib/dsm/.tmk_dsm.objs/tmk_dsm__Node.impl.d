lib/dsm/node.ml: Array Bytes Category Cpu Hashtbl List Option Printf Stats Tmk_mem Tmk_sim Tmk_util Vector_time Vtime
