lib/dsm/api.ml: Array Category Config Engine Hashtbl List Node Printf Protocol Stats Tmk_mem Tmk_net Tmk_sim Tmk_util Vtime
