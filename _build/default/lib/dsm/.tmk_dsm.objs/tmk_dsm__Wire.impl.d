lib/dsm/wire.ml: List Tmk_mem Vector_time
