lib/dsm/protocol.mli: Config Engine Node Tmk_net Tmk_sim
