lib/dsm/api.mli: Config Protocol Stats Tmk_sim Tmk_util Vtime
