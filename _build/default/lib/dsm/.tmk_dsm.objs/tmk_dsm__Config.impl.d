lib/dsm/config.ml: Tmk_net
