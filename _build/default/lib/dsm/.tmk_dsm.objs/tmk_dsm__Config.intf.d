lib/dsm/config.mli: Tmk_net
