(** Per-node protocol event counters.

    These feed the paper's execution statistics (Figure 4) and the
    lazy-vs-eager comparison (Figures 9–12).  Communication volume lives
    in {!Tmk_net.Transport}; simulated time lives in
    {!Tmk_sim.Engine}. *)

type t = {
  mutable lock_acquires : int;  (** every application acquire *)
  mutable lock_remote : int;  (** acquires that needed communication *)
  mutable barriers : int;
  mutable read_faults : int;
  mutable write_faults : int;
  mutable remote_misses : int;  (** faults that fetched pages or diffs *)
  mutable twins_created : int;
  mutable diffs_created : int;
  mutable diffs_applied : int;
  mutable diff_bytes_created : int;
  mutable write_notices_in : int;  (** notices received in sync messages *)
  mutable intervals_in : int;
  mutable page_fetches : int;  (** full-page copies received *)
  mutable gc_runs : int;
  mutable records_discarded : int;  (** consistency records freed by GC *)
}

val create : unit -> t

(** [add ~into t] accumulates [t] into [into] (cluster totals). *)
val add : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
