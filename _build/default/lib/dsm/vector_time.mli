(** Vector timestamps over the partial order of intervals (§2.2).

    A timestamp has one entry per processor.  Entry [q] of processor [p]'s
    current timestamp names the most recent interval of [q] that precedes
    [p]'s current interval in the happened-before partial order; entry [p]
    is [p]'s own current interval index. *)

type t

(** [create n] is the zero vector over [n] processors (no intervals seen;
    interval indices start at 1). *)
val create : int -> t

(** [copy t] is an independent duplicate. *)
val copy : t -> t

(** [size t] is the number of processors. *)
val size : t -> int

(** [get t q] / [set t q i] access entry [q]. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** [max_into ~src ~dst] folds [src] into [dst] by pairwise maximum — the
    acquirer's new timestamp rule. *)
val max_into : src:t -> dst:t -> unit

(** [leq a b] holds when [a] ≤ [b] pointwise: every interval covered by
    [a] is covered by [b]. *)
val leq : t -> t -> bool

(** [dominates a b] is [leq b a]. *)
val dominates : t -> t -> bool

(** [equal a b] — pointwise equality. *)
val equal : t -> t -> bool

(** [compare_total a b] is a total order extending the partial order: if
    [leq a b] and not [equal a b] then [compare_total a b < 0].
    Incomparable timestamps are ordered by their entry vectors
    lexicographically.  Used to apply concurrent diffs deterministically
    (their runs are disjoint for properly-labeled programs, so any
    deterministic order merges correctly). *)
val compare_total : t -> t -> int

(** [bytes n] is the wire size of a timestamp over [n] processors (32-bit
    entries). *)
val bytes : int -> int

val pp : Format.formatter -> t -> unit
