(** Deterministic input generators for the five applications.

    The paper's exact inputs are either impractically large for a
    simulation (2000×1000 Jacobi grid, 256K-element Quicksort) or
    unavailable (the CLP pedigree data used by ILINK); every generator
    here produces a scaled, seeded equivalent that preserves the property
    the evaluation depends on — neighbour-only communication for Jacobi,
    a pruned irregular search tree for TSP, recursive task generation for
    Quicksort, dense all-pairs interaction for Water, and skewed
    per-family costs (the documented load imbalance) for ILINK. *)

(** [grid ~rows ~cols ~seed] — Jacobi boundary/interior initial values:
    hot top edge, cold elsewhere, plus small seeded noise so diffs are
    non-trivial. *)
val grid : rows:int -> cols:int -> seed:int64 -> float array array

(** [cities ~n ~seed] — TSP instance: [n] city coordinates in the unit
    square and the symmetric rounded-integer distance matrix. *)
val cities : n:int -> seed:int64 -> (float * float) array * int array array

(** [int_array ~n ~seed] — Quicksort input: [n] pseudo-random integers. *)
val int_array : n:int -> seed:int64 -> int array

(** Water molecule initial state. *)
type molecule = { px : float; py : float; pz : float; vx : float; vy : float; vz : float }

(** [molecules ~n ~seed] — molecules on a perturbed cubic lattice with
    small random velocities. *)
val molecules : n:int -> seed:int64 -> molecule array

(** [pedigree_sizes ~families ~seed] — ILINK family sizes drawn from a
    skewed distribution (most families small, a few large), reproducing
    the load imbalance of §4.4. *)
val pedigree_sizes : families:int -> seed:int64 -> int array
