module Prng = Tmk_util.Prng

let grid ~rows ~cols ~seed =
  let rng = Prng.create seed in
  let cell r c =
    if r = 0 then 100.0 (* hot top edge *)
    else if r = rows - 1 || c = 0 || c = cols - 1 then 0.0
    else Prng.float rng 1.0
  in
  Array.init rows (fun r -> Array.init cols (fun c -> cell r c))

let cities ~n ~seed =
  if n < 3 then invalid_arg "Workload.cities: need at least 3 cities";
  let rng = Prng.create seed in
  let coords = Array.init n (fun _ -> (Prng.float rng 1.0, Prng.float rng 1.0)) in
  let dist (x1, y1) (x2, y2) =
    let dx = x1 -. x2 and dy = y1 -. y2 in
    (* Rounded to integers like TSPLIB, so tour lengths compare exactly. *)
    int_of_float (Float.round (1000.0 *. sqrt ((dx *. dx) +. (dy *. dy))))
  in
  let matrix = Array.init n (fun i -> Array.init n (fun j -> dist coords.(i) coords.(j))) in
  (coords, matrix)

let int_array ~n ~seed =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Prng.int rng 1_000_000)

type molecule = { px : float; py : float; pz : float; vx : float; vy : float; vz : float }

let molecules ~n ~seed =
  let rng = Prng.create seed in
  (* Smallest cube holding n molecules. *)
  let side = int_of_float (Float.ceil (Float.cbrt (float_of_int n))) in
  let spacing = 1.0 in
  let make i =
    let x = i mod side and y = i / side mod side and z = i / (side * side) in
    let jitter () = Prng.float rng 0.1 -. 0.05 in
    {
      px = (float_of_int x *. spacing) +. jitter ();
      py = (float_of_int y *. spacing) +. jitter ();
      pz = (float_of_int z *. spacing) +. jitter ();
      vx = Prng.float rng 0.02 -. 0.01;
      vy = Prng.float rng 0.02 -. 0.01;
      vz = Prng.float rng 0.02 -. 0.01;
    }
  in
  Array.init n make

let pedigree_sizes ~families ~seed =
  if families < 1 then invalid_arg "Workload.pedigree_sizes: need at least one family";
  let rng = Prng.create seed in
  (* Skewed: size 3-6 typically, but roughly one family in six is a large
     multi-generation pedigree.  Work per family scales superlinearly with
     size, so a few large families dominate and defeat static balance. *)
  let make _ =
    if Prng.int rng 6 = 0 then 7 + Prng.int rng 3 else 3 + Prng.int rng 4
  in
  Array.init families make
