lib/workload/workload.ml: Array Float Tmk_util
