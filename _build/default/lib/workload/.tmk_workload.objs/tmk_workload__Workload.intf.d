lib/workload/workload.mli:
