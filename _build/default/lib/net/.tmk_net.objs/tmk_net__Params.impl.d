lib/net/params.ml: Printf Tmk_sim Vtime
