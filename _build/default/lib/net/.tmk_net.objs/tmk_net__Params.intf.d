lib/net/params.mli: Tmk_sim Vtime
