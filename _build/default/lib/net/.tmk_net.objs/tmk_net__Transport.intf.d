lib/net/transport.mli: Engine Params Tmk_sim Tmk_util
