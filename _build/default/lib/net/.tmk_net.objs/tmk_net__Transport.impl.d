lib/net/transport.ml: Array Category Engine Hashtbl List Option Params Tmk_sim Tmk_util Vtime
