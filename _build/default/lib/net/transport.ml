open Tmk_sim

type counters = { mutable msgs : int; mutable bytes : int }

type t = {
  engine : Engine.t;
  params : Params.t;
  prng : Tmk_util.Prng.t;
  link_free : Vtime.t array;  (* per-source ATM link, or slot 0 = shared bus *)
  per_proc : counters array;
  by_label : (string, counters) Hashtbl.t;  (* message mix by protocol operation *)
  mutable retransmissions : int;
  mutable next_msg_id : int;
  delivered : (int, unit) Hashtbl.t;  (* duplicate suppression, lossy mode only *)
}

let create ~engine ~params ~prng =
  let n = Engine.nprocs engine in
  {
    engine;
    params;
    prng;
    link_free = Array.make (max n 1) Vtime.zero;
    per_proc = Array.init n (fun _ -> { msgs = 0; bytes = 0 });
    by_label = Hashtbl.create 16;
    retransmissions = 0;
    next_msg_id = 0;
    delivered = Hashtbl.create 64;
  }

let engine t = t.engine
let params t = t.params

let lossy t = t.params.Params.loss_rate > 0.0

let fresh_id t =
  let id = t.next_msg_id in
  t.next_msg_id <- id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Medium: arbitration, loss, statistics.                             *)

(* Hand one frame to the medium at [at]; [on_arrival] fires at the
   receiver's network interface (no CPU charged yet). *)
let transmit ?(label = "other") t ~src ~bytes ~at ~on_arrival =
  let p = t.params in
  let frame = Params.frame_bytes p bytes in
  let c = t.per_proc.(src) in
  c.msgs <- c.msgs + 1;
  c.bytes <- c.bytes + frame;
  (let lc =
     match Hashtbl.find_opt t.by_label label with
     | Some lc -> lc
     | None ->
       let lc = { msgs = 0; bytes = 0 } in
       Hashtbl.add t.by_label label lc;
       lc
   in
   lc.msgs <- lc.msgs + 1;
   lc.bytes <- lc.bytes + frame);
  Engine.schedule t.engine ~at (fun () ->
      let slot = if p.Params.shared_medium then 0 else src in
      let free_at = t.link_free.(slot) in
      (* A frame finding the medium busy pays the contention penalty
         (deference + collisions + backoff) on top of waiting its turn. *)
      let start =
        if free_at > at then Vtime.add free_at p.Params.busy_access_delay
        else at
      in
      let occupancy = Vtime.ns (frame * p.Params.wire_ns_per_byte) in
      t.link_free.(slot) <- Vtime.add start occupancy;
      let dropped = lossy t && Tmk_util.Prng.float t.prng 1.0 < p.Params.loss_rate in
      if not dropped then
        let arrival = Vtime.add (Vtime.add start occupancy) p.Params.wire_latency in
        Engine.schedule t.engine ~at:arrival (fun () -> on_arrival arrival))

(* Deliver a request frame into [dst]'s SIGIO handler: charge the
   interrupt/dispatch/receive path, then run the payload. *)
let deliver_to_handler t ~dst ~bytes ~arrival ~deliver =
  Engine.post_handler t.engine ~pid:dst ~at:arrival (fun h ->
      Engine.hcharge h Category.Unix_comm
        (Params.deliver_handler_cpu t.params ~fresh:(Engine.hfresh h));
      Engine.hcharge h Category.Unix_comm (Params.recv_cost t.params bytes);
      deliver h)

(* ------------------------------------------------------------------ *)
(* Reliable one-way messages.                                          *)

(* In lossy mode each one-way message is acknowledged; the sender
   retransmits on a timer until the ack lands.  Acks and retransmissions
   consume CPU through self-posted handlers so the charges land on the
   right processor even though the original caller has moved on. *)
let rec oneway ?label t ~src ~dst ~bytes ~at ~deliver =
  if not (lossy t) then
    transmit ?label t ~src ~bytes ~at ~on_arrival:(fun arrival ->
        deliver_to_handler t ~dst ~bytes ~arrival ~deliver)
  else begin
    let id = fresh_id t in
    let acked = ref false in
    let rec attempt ~at =
      transmit ?label t ~src ~bytes ~at ~on_arrival:(fun arrival ->
          deliver_to_handler t ~dst ~bytes ~arrival ~deliver:(fun h ->
              if not (Hashtbl.mem t.delivered id) then begin
                Hashtbl.add t.delivered id ();
                deliver h
              end;
              send_ack t h ~dst:src ~on_ack:(fun () -> acked := true)));
      let timeout = Vtime.add at t.params.Params.retransmit_timeout in
      let (_cancel : unit -> unit) =
        Engine.schedule_cancellable t.engine ~at:timeout (fun () ->
            if not !acked then begin
              t.retransmissions <- t.retransmissions + 1;
              (* The user-level timer fires on [src]: charge the resend. *)
              Engine.post_handler t.engine ~pid:src ~at:timeout (fun h ->
                  Engine.hcharge h Category.Unix_comm (Params.send_cost t.params bytes);
                  attempt ~at:(Engine.hnow h))
            end)
      in
      ()
    in
    attempt ~at
  end

(* Acks are fire-and-forget minimum-size frames; a lost ack just causes a
   (suppressed) duplicate. *)
and send_ack t h ~dst ~on_ack =
  Engine.hcharge h Category.Unix_comm (Params.send_cost t.params 0);
  transmit ~label:"ack" t ~src:(Engine.hpid h) ~bytes:0 ~at:(Engine.hnow h)
    ~on_arrival:(fun arrival ->
      Engine.post_handler t.engine ~pid:dst ~at:arrival (fun ha ->
          Engine.hcharge ha Category.Unix_comm
            (Params.deliver_handler_cpu t.params ~fresh:(Engine.hfresh ha));
          Engine.hcharge ha Category.Unix_comm (Params.recv_cost t.params 0);
          on_ack ()))

let send ?label t ~src ~dst ~bytes ~deliver =
  Engine.advance Category.Unix_comm (Params.send_cost t.params bytes);
  oneway ?label t ~src ~dst ~bytes ~at:(Engine.now t.engine) ~deliver

let hsend ?label t h ~dst ~bytes ~deliver =
  Engine.hcharge h Category.Unix_comm (Params.send_cost t.params bytes);
  oneway ?label t ~src:(Engine.hpid h) ~dst ~bytes ~at:(Engine.hnow h) ~deliver

(* ------------------------------------------------------------------ *)
(* Messages that wake a blocked process.                               *)

type 'a mailbox = (int * 'a) Engine.Ivar.t

let mailbox () = Engine.Ivar.create ()

(* The data lands in the mailbox at wire arrival; the interrupt/resume
   and receive CPU are charged by [await_value] when the process resumes,
   which is when that kernel work happens on the real system.  In lossy
   mode the frame additionally runs a (cheap) handler on [dst] to source
   the acknowledgement. *)
let value_message ?label t ~src ~dst ~bytes ~at mb v =
  if not (lossy t) then
    transmit ?label t ~src ~bytes ~at ~on_arrival:(fun arrival ->
        if not (Engine.Ivar.is_filled mb) then
          Engine.fill t.engine mb ~at:arrival (bytes, v))
  else begin
    let id = fresh_id t in
    let acked = ref false in
    let rec attempt ~at =
      transmit ?label t ~src ~bytes ~at ~on_arrival:(fun arrival ->
          if (not (Hashtbl.mem t.delivered id)) && not (Engine.Ivar.is_filled mb) then begin
            Hashtbl.add t.delivered id ();
            Engine.fill t.engine mb ~at:arrival (bytes, v)
          end;
          Engine.post_handler t.engine ~pid:dst ~at:arrival (fun h ->
              send_ack t h ~dst:src ~on_ack:(fun () -> acked := true)));
      let timeout = Vtime.add at t.params.Params.retransmit_timeout in
      let (_cancel : unit -> unit) =
        Engine.schedule_cancellable t.engine ~at:timeout (fun () ->
            if not !acked then begin
              t.retransmissions <- t.retransmissions + 1;
              Engine.post_handler t.engine ~pid:src ~at:timeout (fun h ->
                  Engine.hcharge h Category.Unix_comm (Params.send_cost t.params bytes);
                  attempt ~at:(Engine.hnow h))
            end)
      in
      ()
    in
    attempt ~at
  end

let send_value ?label t ~src ~dst ~bytes mb v =
  Engine.advance Category.Unix_comm (Params.send_cost t.params bytes);
  value_message ?label t ~src ~dst ~bytes ~at:(Engine.now t.engine) mb v

let hsend_value ?label t h ~dst ~bytes mb v =
  Engine.hcharge h Category.Unix_comm (Params.send_cost t.params bytes);
  value_message ?label t ~src:(Engine.hpid h) ~dst ~bytes ~at:(Engine.hnow h) mb v

let await_value t mb =
  let bytes, v = Engine.await mb in
  Engine.advance Category.Unix_comm (Params.deliver_blocked_cpu t.params);
  Engine.advance Category.Unix_comm (Params.recv_cost t.params bytes);
  v

(* ------------------------------------------------------------------ *)
(* Request/response.                                                   *)

type 'a promise = 'a mailbox

let call ?label t ~src ~dst ~bytes ~serve =
  let mb = mailbox () in
  let reply_label = Option.map (fun l -> l ^ "-reply") label in
  Engine.advance Category.Unix_comm (Params.send_cost t.params bytes);
  oneway ?label t ~src ~dst ~bytes ~at:(Engine.now t.engine) ~deliver:(fun h ->
      let reply_bytes, reply = serve h in
      hsend_value ?label:reply_label t h ~dst:src ~bytes:reply_bytes mb reply);
  mb

let await_reply = await_value

let rpc ?label t ~src ~dst ~bytes ~serve =
  await_reply t (call ?label t ~src ~dst ~bytes ~serve)

(* ------------------------------------------------------------------ *)
(* Statistics.                                                         *)

let messages_sent t = Array.fold_left (fun acc c -> acc + c.msgs) 0 t.per_proc
let bytes_sent t = Array.fold_left (fun acc c -> acc + c.bytes) 0 t.per_proc
let messages_of t pid = t.per_proc.(pid).msgs
let bytes_of t pid = t.per_proc.(pid).bytes
let retransmissions t = t.retransmissions

let message_mix t =
  Hashtbl.fold (fun label c acc -> (label, c.msgs, c.bytes) :: acc) t.by_label []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let reset_stats t =
  Array.iter
    (fun c ->
      c.msgs <- 0;
      c.bytes <- 0)
    t.per_proc;
  Hashtbl.reset t.by_label;
  t.retransmissions <- 0
