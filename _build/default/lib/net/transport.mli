(** Simulated interprocessor communication.

    Models the path a TreadMarks message takes on the real system:

    + sender CPU: kernel send plus programmed-I/O per-byte cost, charged to
      [Unix_comm] in the caller's context (application process or SIGIO
      handler);
    + the medium: per-source link arbitration on the ATM switch, or a
      single shared bus on the Ethernet; frames occupy the medium for
      [frame_bytes × wire_ns_per_byte] and can be dropped when a loss rate
      is configured;
    + receiver CPU: either the SIGIO-handler path (interrupt + signal
      dispatch + receive; back-to-back messages skip the dispatch, see
      {!Tmk_sim.Engine.hfresh}) for request messages, or the
      blocked-receive path (interrupt + resume + receive) for replies to a
      waiting process.

    Reliability: the real TreadMarks runs "operation-specific, user-level
    protocols on top of UDP/IP and AAL3/4 to insure delivery" (§3.7).
    Here, when [loss_rate = 0] (the default) frames always arrive and no
    acknowledgements are sent; with a positive loss rate every one-way
    message is acknowledged and retransmitted on a timer, and duplicates
    are suppressed by message id, giving exactly-once delivery of the
    [deliver] callback.

    Message payloads are OCaml closures/values; the [bytes] argument is
    the payload size used for costing and statistics, which the DSM layer
    computes from the protocol encoding it would use on the wire. *)

open Tmk_sim

type t

(** [create ~engine ~params ~prng] builds a transport over [engine]'s
    processors.  [prng] drives loss draws only. *)
val create : engine:Engine.t -> params:Params.t -> prng:Tmk_util.Prng.t -> t

val engine : t -> Engine.t
val params : t -> Params.t

(** [send t ~src ~dst ~bytes ~deliver] — one-way message from the
    application process currently running on [src].  Charges send CPU via
    {!Engine.advance}, so it must be called from process context.
    [deliver] runs in a handler context on [dst]. *)
val send :
  ?label:string ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  deliver:(Engine.hctx -> unit) ->
  unit

(** [hsend t h ~dst ~bytes ~deliver] — one-way message sent from handler
    context [h]; departs at [hnow h] after the send CPU charge. *)
val hsend :
  ?label:string ->
  t ->
  Engine.hctx ->
  dst:Engine.pid ->
  bytes:int ->
  deliver:(Engine.hctx -> unit) ->
  unit

(** Mailbox for messages that wake a blocked process (replies, lock
    grants, barrier releases). *)
type 'a mailbox

(** [mailbox ()] makes an empty mailbox. *)
val mailbox : unit -> 'a mailbox

(** [send_value t ~src ~dst ~bytes mb v] — one-way message carrying [v]
    into [mb] on [dst]; application-context variant. *)
val send_value :
  ?label:string -> t -> src:Engine.pid -> dst:Engine.pid -> bytes:int -> 'a mailbox -> 'a -> unit

(** [hsend_value t h ~dst ~bytes mb v] — handler-context variant. *)
val hsend_value :
  ?label:string -> t -> Engine.hctx -> dst:Engine.pid -> bytes:int -> 'a mailbox -> 'a -> unit

(** [await_value t mb] — process context: block until a value lands in
    [mb], charge the blocked-receive delivery CPU, and return it.  A
    mailbox delivers exactly one value. *)
val await_value : t -> 'a mailbox -> 'a

(** Outstanding reply of an asynchronous {!call}. *)
type 'a promise

(** [call t ~src ~dst ~bytes ~serve] — request/response: [serve] runs in a
    handler context on [dst] and returns [(reply_bytes, reply)]; the reply
    is sent back to [src].  Returns immediately; several calls may be
    outstanding (the access-miss protocol fetches diffs "in parallel",
    §3.5). *)
val call :
  ?label:string ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  serve:(Engine.hctx -> int * 'a) ->
  'a promise

(** [await_reply t p] — process context: block for the reply, charge
    delivery CPU, return it. *)
val await_reply : t -> 'a promise -> 'a

(** [rpc t ~src ~dst ~bytes ~serve] is [await_reply t (call t ...)]. *)
val rpc :
  ?label:string ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  serve:(Engine.hctx -> int * 'a) ->
  'a

(** {2 Statistics}

    Counters cover every frame handed to the medium, including
    retransmissions and acknowledgements; bytes are on-wire frame sizes
    (payload + protocol header, padded to the minimum frame). *)

val messages_sent : t -> int
val bytes_sent : t -> int
val messages_of : t -> Engine.pid -> int
val bytes_of : t -> Engine.pid -> int
val retransmissions : t -> int

(** [message_mix t] — frames and on-wire bytes per message label (the
    [?label] given at each send; replies get ["<label>-reply"], transport
    acknowledgements ["ack"], unlabelled traffic ["other"]), most frequent
    first. *)
val message_mix : t -> (string * int * int) list

(** [reset_stats t] zeroes all counters. *)
val reset_stats : t -> unit
