(** CPU-time accounting categories.

    These mirror the decomposition the paper reports in Figures 5–7:
    application computation; Unix kernel time split into communication and
    memory management; TreadMarks user-level time split into memory
    management (twin/diff work), consistency (interval and write-notice
    bookkeeping), and other (protocol message handling and
    synchronization).  Idle time is not a category — the engine derives it
    as elapsed time minus busy time. *)

type t =
  | Computation  (** application code *)
  | Unix_comm  (** kernel communication: send/receive/select/signal dispatch *)
  | Unix_mem  (** kernel memory management: mprotect, SIGSEGV generation *)
  | Tmk_mem  (** user-level change detection: twin copy, diff create/apply *)
  | Tmk_consistency  (** interval/write-notice/vector-timestamp bookkeeping *)
  | Tmk_other  (** remaining DSM code: request marshalling, sync handling *)

(** [all] lists every category, in report order. *)
val all : t list

(** [count] is [List.length all]. *)
val count : int

(** [index t] is a dense index for array-based accumulators. *)
val index : t -> int

(** [name t] is the label used in reports. *)
val name : t -> string

(** [is_unix t] groups the categories charged to the kernel (Figure 6). *)
val is_unix : t -> bool

(** [is_treadmarks t] groups the user-level DSM categories (Figure 7). *)
val is_treadmarks : t -> bool

val pp : Format.formatter -> t -> unit
