type t =
  | Computation
  | Unix_comm
  | Unix_mem
  | Tmk_mem
  | Tmk_consistency
  | Tmk_other

let all = [ Computation; Unix_comm; Unix_mem; Tmk_mem; Tmk_consistency; Tmk_other ]
let count = List.length all

let index = function
  | Computation -> 0
  | Unix_comm -> 1
  | Unix_mem -> 2
  | Tmk_mem -> 3
  | Tmk_consistency -> 4
  | Tmk_other -> 5

let name = function
  | Computation -> "computation"
  | Unix_comm -> "unix-comm"
  | Unix_mem -> "unix-mem"
  | Tmk_mem -> "tmk-mem"
  | Tmk_consistency -> "tmk-consistency"
  | Tmk_other -> "tmk-other"

let is_unix = function
  | Unix_comm | Unix_mem -> true
  | Computation | Tmk_mem | Tmk_consistency | Tmk_other -> false

let is_treadmarks = function
  | Tmk_mem | Tmk_consistency | Tmk_other -> true
  | Computation | Unix_comm | Unix_mem -> false

let pp ppf t = Format.pp_print_string ppf (name t)
