type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_us_float x = int_of_float (Float.round (x *. 1_000.0))

let to_us t = float_of_int t /. 1_000.0
let to_ms t = float_of_int t /. 1_000_000.0
let to_s t = float_of_int t /. 1_000_000_000.0

let add = ( + )
let sub = ( - )
let max = Stdlib.max
let min = Stdlib.min
let scale t k = t * k

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.2fus" (to_us t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%.4fs" (to_s t)
