(** Virtual time: integer nanoseconds since simulation start.

    Integer time keeps the simulation exactly deterministic (no
    floating-point drift between runs or platforms).  One [int] holds
    ~292 years of nanoseconds on a 64-bit OCaml, far beyond any run. *)

type t = int

(** [zero] is the simulation epoch. *)
val zero : t

(** [ns n], [us n], [ms n], [s n] build durations from the given unit. *)
val ns : int -> t

val us : int -> t
val ms : int -> t
val s : int -> t

(** [of_us_float x] converts fractional microseconds, rounding to the
    nearest nanosecond (used when scaling per-byte costs). *)
val of_us_float : float -> t

(** [to_us t], [to_ms t], [to_s t] convert to floating-point units for
    reporting. *)
val to_us : t -> float

val to_ms : t -> float
val to_s : t -> float

(** [add], [sub], [max], [min] — arithmetic, for readability at call
    sites. *)
val add : t -> t -> t

val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t

(** [scale t k] multiplies a duration by an integer factor. *)
val scale : t -> int -> t

(** [pp] prints adaptively ([ns], [µs], [ms] or [s]). *)
val pp : Format.formatter -> t -> unit
