lib/sim/engine.mli: Category Vtime
