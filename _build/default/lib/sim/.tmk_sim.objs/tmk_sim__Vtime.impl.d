lib/sim/vtime.ml: Float Format Stdlib
