lib/sim/engine.ml: Array Category Effect List Printf Queue Tmk_util Vtime
