lib/sim/category.ml: Format List
