(** Quicksort — parallel quicksort over a shared task stack (§4.3).

    The paper sorts 256K integers, switching to bubble sort below 1K
    elements; the default here is scaled down proportionally.  All
    synchronization is locks: workers pop subarray tasks from a shared
    stack, partition in place in shared memory, push one half back and
    continue with the other.  Subarray boundaries ignore page boundaries,
    so neighbouring tasks exhibit exactly the false sharing the
    multiple-writer protocol exists for. *)

open Tmk_dsm

type params = {
  n : int;
  threshold : int;  (** below this size, sort locally (paper: bubble sort) *)
  seed : int64;
  flops_per_compare : int;
}

(** [default] — 16K integers, threshold 256. *)
val default : params

val pages_needed : params -> int

(** [sequential p] — reference; returns the sorted array. *)
val sequential : params -> int array

(** [parallel ctx p] — SPMD body; the sorted array on processor 0. *)
val parallel : ?collect:bool -> Api.ctx -> params -> int array option
