(** TSP — branch-and-bound travelling salesman (§4.3).

    The paper solves a 19-city tour; the default here is smaller but keeps
    the interesting behaviour: all synchronization is locks (a task-queue
    lock and a bound lock), and the current minimum tour length is
    {e read without synchronization} while updates are locked — the
    program is not "properly labeled" (§5.2), so under LRC a processor can
    prune against a stale bound and do redundant work that ERC's eager
    updates avoid.  The final optimum is unaffected. *)

open Tmk_dsm

type params = {
  ncities : int;
  prefix_depth : int;  (** tasks are tour prefixes of this length *)
  seed : int64;
  flops_per_node : int;  (** charged work per search-tree node *)
}

(** [default] — 11 cities, depth-3 prefixes. *)
val default : params

val pages_needed : params -> int

(** Outcome of a solve: the optimal tour length and the number of search
    nodes expanded (the redundant-work metric of §5.2). *)
type result = { best : int; nodes_expanded : int }

(** [sequential p] — single-processor branch and bound. *)
val sequential : params -> result

(** [parallel ctx p] — SPMD body; the result on processor 0. *)
val parallel : Api.ctx -> params -> result option
