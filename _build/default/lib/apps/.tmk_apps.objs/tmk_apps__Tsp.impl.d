lib/apps/tsp.ml: Api Array List Tmk_dsm Tmk_mem Tmk_workload
