lib/apps/jacobi.ml: Api Array Tmk_dsm Tmk_mem Tmk_workload
