lib/apps/quicksort.mli: Api Tmk_dsm
