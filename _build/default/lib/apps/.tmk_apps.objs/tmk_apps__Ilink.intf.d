lib/apps/ilink.mli: Api Tmk_dsm
