lib/apps/water.mli: Api Tmk_dsm
