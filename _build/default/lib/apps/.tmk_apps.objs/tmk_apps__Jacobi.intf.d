lib/apps/jacobi.mli: Api Tmk_dsm
