lib/apps/quicksort.ml: Api Array Stack Tmk_dsm Tmk_mem Tmk_workload
