lib/apps/tsp.mli: Api Tmk_dsm
