lib/apps/ilink.ml: Api Array Float Tmk_dsm Tmk_mem Tmk_workload
