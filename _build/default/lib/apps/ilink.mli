(** ILINK — genetic linkage analysis from the LINKAGE package (§4.3).

    The paper's input (12 CLP families) is not redistributable, so the
    workload generator synthesizes a pedigree set with the property the
    paper highlights: per-family likelihood evaluation cost varies wildly
    and unpredictably with family structure, so statically distributing
    families leaves processors unevenly loaded and caps the speedup below
    what the (modest) communication rates would allow (§4.4).

    The computation is an iterative likelihood maximisation: each
    iteration evaluates, per family, a peeling-style likelihood at the
    current recombination parameter theta, sums them, and nudges theta.
    Barriers separate iterations; there are no locks, matching the
    paper's execution statistics (0 locks/sec for ILINK). *)

open Tmk_dsm

type params = {
  families : int;
  iterations : int;
  seed : int64;
  flops_per_unit : int;  (** charged work per likelihood work-unit *)
}

(** [default] — 24 families, 6 iterations. *)
val default : params

val pages_needed : params -> int

type result = { log_likelihood : float; theta : float }

val sequential : params -> result

(** [parallel ctx p] — SPMD body; result on processor 0, exactly equal to
    {!sequential} (the final sum is computed in family order). *)
val parallel : Api.ctx -> params -> result option
