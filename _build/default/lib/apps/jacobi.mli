(** Jacobi — iterative grid relaxation (a form of successive
    over-relaxation, §4.3).

    The paper runs a 2000×1000 grid; the default here is scaled down but
    keeps the structure that gives Jacobi near-linear speedup: rows are
    block-partitioned, all synchronization is barriers, and the only
    communication is the two boundary rows each processor shares with its
    neighbours. *)

open Tmk_dsm

type params = {
  rows : int;
  cols : int;
  iters : int;
  seed : int64;
  flops_per_point : int;  (** charged application work per grid point *)
}

(** [default] — 96×64 grid, 12 iterations. *)
val default : params

(** [pages_needed p] — shared pages the run requires (for [Config.pages]). *)
val pages_needed : params -> int

(** [sequential p] — reference implementation; returns the final grid. *)
val sequential : params -> float array array

(** [parallel ctx p] — SPMD body.  Returns the final grid on processor 0,
    [None] elsewhere.  Bit-identical to {!sequential}.  [collect:false]
    skips the result read-back (which faults in the whole grid on
    processor 0) so timing runs measure only the computation proper. *)
val parallel : ?collect:bool -> Api.ctx -> params -> float array array option

(** [checksum grid] — order-fixed sum for quick comparisons. *)
val checksum : float array array -> float
