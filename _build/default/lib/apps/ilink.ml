open Tmk_dsm
module Workload = Tmk_workload.Workload

type params = { families : int; iterations : int; seed : int64; flops_per_unit : int }

let default = { families = 24; iterations = 6; seed = 23L; flops_per_unit = 25 }

type result = { log_likelihood : float; theta : float }

(* Work units for one family likelihood: cubic in pedigree size, the
   superlinear cost of peeling a larger pedigree. *)
let work_units size = size * size * size

(* Deterministic stand-in for a peeling likelihood evaluation: a smooth
   function of theta and the family structure with a maximum somewhere in
   (0, 0.5), summed over [work_units] pseudo-genotype configurations so
   the arithmetic volume tracks the charged cost. *)
let family_likelihood ~size ~family ~theta =
  let units = work_units size in
  let acc = ref 0.0 in
  for k = 1 to units do
    let g = float_of_int (((family * 37) + (k * 11)) mod 97) /. 97.0 in
    let p = (theta *. g) +. ((1.0 -. theta) *. (1.0 -. g)) in
    acc := !acc +. log (Float.max p 1e-9)
  done;
  !acc /. float_of_int units *. float_of_int size

let theta_step = 0.04

let sequential p =
  let sizes = Workload.pedigree_sizes ~families:p.families ~seed:p.seed in
  let theta = ref 0.1 and total = ref 0.0 in
  for _iter = 1 to p.iterations do
    total := 0.0;
    for f = 0 to p.families - 1 do
      total := !total +. family_likelihood ~size:sizes.(f) ~family:f ~theta:!theta
    done;
    (* crude ascent: probe the gradient sign with a fixed step *)
    theta := Float.min 0.45 (!theta +. theta_step)
  done;
  { log_likelihood = !total; theta = !theta }

let pages_needed p =
  let bytes = (p.families * 2 * 8) + 4096 in
  (bytes / Tmk_mem.Vm.page_size) + 3

let parallel ctx p =
  let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
  let sizes_arr = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx p.families in
  let results = Api.falloc ~align:Tmk_mem.Vm.page_size ctx p.families in
  let sh_theta = Api.falloc ctx 1 in
  if pid = 0 then begin
    let sizes = Workload.pedigree_sizes ~families:p.families ~seed:p.seed in
    Array.iteri (fun f s -> Api.iset ctx sizes_arr f s) sizes;
    Api.fset ctx sh_theta 0 0.1
  end;
  Api.barrier ctx 0;
  let final = ref None in
  for iter = 1 to p.iterations do
    let theta = Api.fget ctx sh_theta 0 in
    (* Families are distributed round-robin without regard to size: the
       inherent load imbalance of §4.4. *)
    for f = 0 to p.families - 1 do
      if f mod nprocs = pid then begin
        let size = Api.iget ctx sizes_arr f in
        Api.compute_flops ctx (work_units size * p.flops_per_unit);
        Api.fset ctx results f (family_likelihood ~size ~family:f ~theta)
      end
    done;
    Api.barrier ctx ((2 * iter) - 1);
    if pid = 0 then begin
      let total = ref 0.0 in
      for f = 0 to p.families - 1 do
        total := !total +. Api.fget ctx results f
      done;
      Api.fset ctx sh_theta 0 (Float.min 0.45 (theta +. theta_step));
      if iter = p.iterations then
        final := Some { log_likelihood = !total; theta = Api.fget ctx sh_theta 0 }
    end;
    Api.barrier ctx (2 * iter)
  done;
  if pid = 0 then !final else None
