(** Water — molecular dynamics in the style of the SPLASH benchmark
    (§4.3), the paper's stress case.

    N molecules interact pairwise; every interaction accumulates forces
    into shared per-molecule slots protected by {e per-molecule locks}
    that "are accessed frequently by a majority of the processors", plus
    barriers between phases.  This produces the paper's signature
    behaviour: very high lock and message rates, many small messages, and
    only moderate speedup.

    Simplifications versus SPLASH Water (documented in DESIGN.md): point
    molecules with a softened Lennard-Jones potential instead of the
    three-site water model and predictor-corrector integration.  The
    sharing and synchronization pattern — the thing the paper measures —
    is preserved. *)

open Tmk_dsm

type params = {
  nmol : int;
  steps : int;
  seed : int64;
  cutoff : float;  (** interaction cutoff distance *)
  flops_per_pair : int;
  flops_per_molecule : int;
}

(** [default] — 64 molecules, 3 steps. *)
val default : params

val pages_needed : params -> int

(** Simulation outcome: final positions and total energy. *)
type result = { positions : (float * float * float) array; energy : float }

val sequential : params -> result

(** [parallel ctx p] — SPMD body; the result on processor 0.  Force and
    energy sums use fixed-point accumulation, which is order-independent,
    so positions and energy match {!sequential} exactly no matter how the
    per-molecule lock acquisitions interleave. *)
val parallel : ?collect:bool -> Api.ctx -> params -> result option
