open Tmk_dsm
module Workload = Tmk_workload.Workload

type params = { n : int; threshold : int; seed : int64; flops_per_compare : int }

let default = { n = 16_384; threshold = 256; seed = 13L; flops_per_compare = 3 }

let lock_stack = 0

let pages_needed p =
  let bytes = (p.n * 8) + 4096 (* stack *) + 4096 in
  (bytes / Tmk_mem.Vm.page_size) + 3

(* Bubble sort, as the paper uses for small subarrays.  [get]/[set]
   abstract the array so the same code runs sequentially and on shared
   memory; [charge] accounts [n] comparisons' work in one batch (one
   simulated-time advance per pass, not per compare). *)
let bubble_sort ~get ~set ~charge lo hi =
  for i = hi downto lo + 1 do
    charge (i - lo);
    for j = lo to i - 1 do
      let a = get j and b = get (j + 1) in
      if a > b then begin
        set j b;
        set (j + 1) a
      end
    done
  done

(* Hoare-style partition around the middle-element pivot. *)
let partition ~get ~set ~charge lo hi =
  charge (hi - lo + 1);
  let pivot = get ((lo + hi) / 2) in
  let i = ref lo and j = ref hi in
  let continue_ = ref true in
  while !continue_ do
    while get !i < pivot do
      incr i
    done;
    while get !j > pivot do
      decr j
    done;
    if !i >= !j then continue_ := false
    else begin
      let a = get !i and b = get !j in
      set !i b;
      set !j a;
      incr i;
      decr j
    end
  done;
  !j

let rec sort_range ~params ~get ~set ~charge ~push lo hi =
  if hi - lo + 1 < params.threshold then begin
    if lo < hi then bubble_sort ~get ~set ~charge lo hi
  end
  else begin
    let mid = partition ~get ~set ~charge lo hi in
    (* Push the left half for someone else, keep the right. *)
    push lo mid;
    sort_range ~params ~get ~set ~charge ~push (mid + 1) hi
  end

let sequential p =
  let data = Workload.int_array ~n:p.n ~seed:p.seed in
  let pending = Stack.create () in
  let get i = data.(i) and set i v = data.(i) <- v in
  let push lo hi = Stack.push (lo, hi) pending in
  Stack.push (0, p.n - 1) pending;
  let rec drain () =
    match Stack.pop_opt pending with
    | None -> ()
    | Some (lo, hi) ->
      sort_range ~params:p ~get ~set ~charge:(fun _ -> ()) ~push lo hi;
      drain ()
  in
  drain ();
  data

(* Shared task stack layout: slot 0 = top index, slot 1 = number of busy
   workers, slots 2.. = (lo, hi) pairs. *)
let parallel ?(collect = true) ctx p =
  let pid = Api.pid ctx in
  let data = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx p.n in
  let stack_capacity = 128 in
  let stack = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx (2 + (2 * stack_capacity)) in
  if pid = 0 then begin
    let init = Workload.int_array ~n:p.n ~seed:p.seed in
    for i = 0 to p.n - 1 do
      Api.iset ctx data i init.(i)
    done;
    Api.iset ctx stack 0 1 (* one task *);
    Api.iset ctx stack 1 0 (* no busy workers *);
    Api.iset ctx stack 2 0;
    Api.iset ctx stack 3 (p.n - 1)
  end;
  Api.barrier ctx 0;
  let get i = Api.iget ctx data i and set i v = Api.iset ctx data i v in
  let charge n = Api.compute_flops ctx (n * p.flops_per_compare) in
  let push lo hi =
    Api.with_lock ctx lock_stack (fun () ->
        let top = Api.iget ctx stack 0 in
        if top >= stack_capacity then
          failwith "Quicksort: shared task stack overflow (raise stack_capacity)";
        Api.iset ctx stack (2 + (2 * top)) lo;
        Api.iset ctx stack (3 + (2 * top)) hi;
        Api.iset ctx stack 0 (top + 1))
  in
  (* Pop a task, or learn that the sort is complete.  The busy counter
     makes termination sound: an empty stack only means "done" once no
     worker can still push. *)
  let pop () =
    Api.with_lock ctx lock_stack (fun () ->
        let top = Api.iget ctx stack 0 in
        if top > 0 then begin
          Api.iset ctx stack 0 (top - 1);
          Api.iset ctx stack 1 (Api.iget ctx stack 1 + 1);
          `Task (Api.iget ctx stack (2 + (2 * (top - 1))), Api.iget ctx stack (3 + (2 * (top - 1))))
        end
        else if Api.iget ctx stack 1 = 0 then `Done
        else `Wait)
  in
  let finish_task () =
    Api.with_lock ctx lock_stack (fun () -> Api.iset ctx stack 1 (Api.iget ctx stack 1 - 1))
  in
  let rec work () =
    match pop () with
    | `Done -> ()
    | `Wait ->
      (* back off 5ms before re-polling the stack lock *)
      Api.compute_ns ctx 5_000_000;
      work ()
    | `Task (lo, hi) ->
      sort_range ~params:p ~get ~set ~charge ~push lo hi;
      finish_task ();
      work ()
  in
  work ();
  Api.barrier ctx 1;
  if pid = 0 && collect then Some (Array.init p.n (fun i -> Api.iget ctx data i)) else None
