(** Ablations of the design decisions the paper argues for (§2).

    Where experiments E1–E9 regenerate the paper's published artefacts,
    these isolate the mechanisms:

    - {b A1} protocol zoo: the five applications under LRC, ERC and the
      sequentially-consistent single-writer baseline — quantifying §1's
      claim that early SC-based DSM designs performed poorly;
    - {b A2} false sharing: concurrent writers inside one page under the
      multiple-writer protocol versus single-writer page ping-pong (§2.3);
    - {b A3} lazy versus eager diff creation within LRC (§2.4; the paper
      reports 25% fewer diffs for Jacobi at their scale);
    - {b A4} garbage-collection threshold sweep (§3.6): reclaimed records
      versus time overhead;
    - {b A5} frame loss: the user-level reliability protocol under an
      increasingly lossy medium (robustness check; the paper's networks
      are assumed mostly loss-free);
    - {b A6} invalidate versus hybrid-update write-notice propagation
      within LRC (§2.2 names both options; TreadMarks ships the
      invalidate protocol). *)

type id = A1 | A2 | A3 | A4 | A5 | A6

val all : id list

val id_name : id -> string

(** @raise Invalid_argument on unknown names. *)
val id_of_name : string -> id

val describe : id -> string

(** [run id] — execute and render. *)
val run : id -> string

val run_all : unit -> string
