open Tmk_dsm
module Tablefmt = Tmk_util.Tablefmt
module Params = Tmk_net.Params

type id = A1 | A2 | A3 | A4 | A5 | A6

let all = [ A1; A2; A3; A4; A5; A6 ]

let id_name = function
  | A1 -> "a1"
  | A2 -> "a2"
  | A3 -> "a3"
  | A4 -> "a4"
  | A5 -> "a5"
  | A6 -> "a6"

let id_of_name s =
  match String.lowercase_ascii s with
  | "a1" -> A1
  | "a2" -> A2
  | "a3" -> A3
  | "a4" -> A4
  | "a5" -> A5
  | "a6" -> A6
  | other -> invalid_arg (Printf.sprintf "Ablations.id_of_name: unknown ablation %S" other)

let describe = function
  | A1 -> "protocol zoo: LRC vs ERC vs single-writer SC on the five applications"
  | A2 -> "false sharing: multiple-writer diffs vs single-writer page ping-pong"
  | A3 -> "lazy vs eager diff creation within LRC"
  | A4 -> "garbage collection threshold sweep"
  | A5 -> "frame loss and the user-level reliability protocol"
  | A6 -> "invalidate vs hybrid-update propagation within LRC"

let atm = Params.atm_aal34
let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f0 v = Printf.sprintf "%.0f" v

(* ------------------------------------------------------------------ *)
(* A1: protocol zoo                                                    *)

let a1 () =
  let protocols = [ Config.Lrc; Config.Erc; Config.Sc ] in
  let rows =
    List.concat_map
      (fun app ->
        let base = Harness.run ~app ~nprocs:1 ~protocol:Config.Lrc ~net:atm in
        List.map
          (fun protocol ->
            let m = Harness.run ~app ~nprocs:8 ~protocol ~net:atm in
            [ Harness.app_name app;
              Config.protocol_name protocol;
              f2 m.Harness.m_time_s;
              f2 (base.Harness.m_time_s /. m.Harness.m_time_s);
              f0 m.Harness.m_msgs_per_sec;
              f0 m.Harness.m_kbytes_per_sec ])
          protocols)
      Harness.all_apps
  in
  Tablefmt.render
    ~title:
      "A1. Protocol zoo, 8 processors, ATM\n\
       (sc = sequentially consistent single-writer: the pre-TreadMarks DSM design;\n\
       its whole-page transfers and invalidations are why release consistency and\n\
       multiple writers were introduced)"
    ~header:[ "app"; "protocol"; "time s"; "speedup"; "msgs/s"; "KB/s" ]
    rows

(* ------------------------------------------------------------------ *)
(* A2: false sharing                                                   *)

(* [writers] processors update disjoint slots of ONE shared page between
   barriers. *)
let false_sharing_run ~protocol ~writers ~rounds =
  let cfg =
    { Config.default with Config.nprocs = writers; pages = 4; seed = 7L; protocol }
  in
  Api.run cfg (fun ctx ->
      let arr = Api.ialloc ctx 64 in
      if Api.pid ctx = 0 then
        for s = 0 to 63 do
          Api.iset ctx arr s 0
        done;
      Api.barrier ctx 0;
      for r = 1 to rounds do
        Api.iset ctx arr (Api.pid ctx) r;
        Api.compute_ns ctx 200_000;
        Api.barrier ctx r
      done)

let a2 () =
  let rounds = 20 in
  let rows =
    List.concat_map
      (fun writers ->
        List.map
          (fun protocol ->
            let r = false_sharing_run ~protocol ~writers ~rounds in
            [ string_of_int writers;
              Config.protocol_name protocol;
              f1 (Tmk_sim.Vtime.to_ms r.Api.total_time);
              string_of_int r.Api.messages;
              string_of_int (r.Api.bytes / 1024);
              string_of_int r.Api.total_stats.Stats.page_fetches ])
          [ Config.Lrc; Config.Sc ])
      [ 2; 4; 8 ]
  in
  Tablefmt.render
    ~title:
      (Printf.sprintf
         "A2. False sharing: %d rounds of disjoint writes to ONE page (section 2.3)\n\
          (under LRC concurrent writers exchange small diffs; under single-writer SC\n\
          the entire 4 KB page ping-pongs through the manager on every write)"
         rounds)
    ~header:[ "writers"; "protocol"; "time ms"; "msgs"; "KB"; "page fetches" ]
    rows

(* ------------------------------------------------------------------ *)
(* A3: lazy vs eager diff creation                                     *)

let a3 () =
  let rows =
    List.concat_map
      (fun app ->
        List.map
          (fun lazy_diffs ->
            let cfg_patch c = { c with Config.lazy_diffs } in
            (* re-run with the patched configuration *)
            let cfg =
              cfg_patch
                (Harness.config ~app ~nprocs:8 ~protocol:Config.Lrc ~net:atm)
            in
            let raw = Api.run cfg (Harness.body app) in
            let time_s = Tmk_sim.Vtime.to_s raw.Api.total_time in
            [ Harness.app_name app;
              (if lazy_diffs then "lazy" else "eager");
              f2 time_s;
              string_of_int raw.Api.total_stats.Stats.diffs_created;
              f0 (float_of_int raw.Api.total_stats.Stats.diffs_created /. time_s) ])
          [ true; false ])
      Harness.all_apps
  in
  Tablefmt.render
    ~title:
      "A3. Lazy vs eager diff creation within LRC, 8 processors (section 2.4)\n\
       (the paper reports lazy creation makes 25% fewer diffs for Jacobi at their scale)"
    ~header:[ "app"; "diffing"; "time s"; "diffs"; "diffs/s" ]
    rows

(* ------------------------------------------------------------------ *)
(* A4: garbage collection threshold                                    *)

let a4 () =
  (* A long-running barrier workload accumulating consistency records:
     every processor rewrites its slice of a multi-page region each
     round. *)
  let run threshold =
    let cfg =
      {
        Config.default with
        Config.nprocs = 8;
        pages = 64;
        seed = 9L;
        gc_threshold = threshold;
      }
    in
    Api.run cfg (fun ctx ->
        let nprocs = Api.nprocs ctx in
        let arr = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx (8 * 1024) in
        for round = 1 to 30 do
          (* write the local slice, read the neighbour's: every round each
             slice is invalidated and re-fetched as diffs, so interval,
             notice and diff records accumulate on every node *)
          let base = Api.pid ctx * 1024 in
          for i = 0 to 255 do
            Api.iset ctx arr (base + (i * 4)) ((round * 10_000) + i)
          done;
          let nbase = (Api.pid ctx + 1) mod nprocs * 1024 in
          let sum = ref 0 in
          for i = 0 to 255 do
            sum := !sum + Api.iget ctx arr (nbase + (i * 4))
          done;
          Api.compute_ns ctx 2_000_000;
          Api.barrier ctx round
        done)
  in
  let rows =
    List.map
      (fun threshold ->
        let r = run threshold in
        let live =
          List.fold_left
            (fun acc p -> acc + (Protocol.node r.Api.cluster p).Node.live_records)
            0
            (List.init 8 (fun p -> p))
        in
        [ (if threshold = max_int then "off" else string_of_int threshold);
          f1 (Tmk_sim.Vtime.to_ms r.Api.total_time);
          string_of_int r.Api.total_stats.Stats.gc_runs;
          string_of_int r.Api.total_stats.Stats.records_discarded;
          string_of_int live;
          string_of_int r.Api.messages ])
      [ max_int; 400; 200; 100 ]
  in
  Tablefmt.render
    ~title:
      "A4. Garbage collection threshold (records per node) on a 30-round barrier\n\
       workload (section 3.6): lower thresholds bound memory at the cost of extra\n\
       collection barriers and page revalidation traffic"
    ~header:[ "threshold"; "time ms"; "gc runs"; "records freed"; "records live"; "msgs" ]
    rows

(* ------------------------------------------------------------------ *)
(* A5: loss                                                            *)

let a5 () =
  let app = Harness.Ilink in
  let rows =
    List.map
      (fun loss ->
        let net = if loss = 0.0 then atm else Params.with_loss atm loss in
        let cfg = Harness.config ~app ~nprocs:4 ~protocol:Config.Lrc ~net in
        let raw = Api.run cfg (Harness.body app) in
        [ Printf.sprintf "%.0f%%" (loss *. 100.0);
          f2 (Tmk_sim.Vtime.to_s raw.Api.total_time);
          string_of_int raw.Api.messages;
          string_of_int raw.Api.retransmissions ])
      [ 0.0; 0.01; 0.05; 0.15 ]
  in
  Tablefmt.render
    ~title:
      "A5. Frame loss (ILINK, 4 processors): the operation-specific user-level\n\
       reliability protocols of section 3.7 keep executions correct; losses cost\n\
       retransmission timeouts"
    ~header:[ "loss rate"; "time s"; "frames"; "retransmissions" ]
    rows

(* ------------------------------------------------------------------ *)
(* A6: invalidate vs hybrid update                                     *)

let a6 () =
  let rows =
    List.concat_map
      (fun app ->
        List.map
          (fun lrc_updates ->
            let cfg =
              { (Harness.config ~app ~nprocs:8 ~protocol:Config.Lrc ~net:atm) with
                Config.lrc_updates }
            in
            let m = Harness.run_cfg ~app cfg in
            [ Harness.app_name app;
              (if lrc_updates then "update" else "invalidate");
              f2 m.Harness.m_time_s;
              f0 m.Harness.m_msgs_per_sec;
              f0 m.Harness.m_kbytes_per_sec;
              string_of_int m.Harness.m_raw.Api.total_stats.Stats.read_faults;
              string_of_int m.Harness.m_raw.Api.total_stats.Stats.remote_misses ])
          [ false; true ])
      Harness.all_apps
  in
  Tablefmt.render
    ~title:
      "A6. Invalidate vs hybrid-update write-notice propagation within LRC,
       8 processors (section 2.2 lists both; TreadMarks ships invalidate).
       The hybrid piggybacks diffs for pages the receiver caches, trading
       larger synchronization messages for fewer access misses"
    ~header:[ "app"; "mode"; "time s"; "msgs/s"; "KB/s"; "faults"; "misses" ]
    rows

let run = function
  | A1 -> a1 ()
  | A2 -> a2 ()
  | A3 -> a3 ()
  | A4 -> a4 ()
  | A5 -> a5 ()
  | A6 -> a6 ()

let run_all () =
  String.concat "\n"
    (List.map
       (fun id ->
         Printf.sprintf "=== %s: %s ===\n%s" (String.uppercase_ascii (id_name id))
           (describe id) (run id))
       all)
