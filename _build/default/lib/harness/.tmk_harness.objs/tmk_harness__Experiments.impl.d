lib/harness/experiments.ml: Api Array Category Config Engine Harness Lazy List Node Printf Protocol String Tmk_dsm Tmk_mem Tmk_net Tmk_sim Tmk_util Vtime
