lib/harness/experiments.mli:
