lib/harness/harness.mli: Api Config Tmk_apps Tmk_dsm Tmk_net
