lib/harness/ablations.ml: Api Config Harness List Node Printf Protocol Stats String Tmk_dsm Tmk_mem Tmk_net Tmk_sim Tmk_util
