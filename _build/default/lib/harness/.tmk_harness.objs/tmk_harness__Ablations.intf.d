lib/harness/ablations.mli:
