lib/harness/harness.ml: Api Array Category Config Printf Stats String Tmk_apps Tmk_dsm Tmk_net Tmk_sim Vtime
