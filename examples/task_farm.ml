(* Task farm: dynamic load balancing over shared memory.

   A bag of variable-sized tasks (deliberately skewed, like ILINK's
   pedigrees) is drained by all processors through a lock-protected
   cursor; results land in a shared array.  Contrast the dynamic
   distribution with a static round-robin split to see why the paper's
   ILINK loses speedup to load imbalance.  Run with:

     dune exec examples/task_farm.exe *)

open Tmk_dsm
module Prng = Tmk_util.Prng

let ntasks = 64

(* deterministic skewed task costs, in microseconds of work *)
let costs =
  let rng = Prng.create 77L in
  Array.init ntasks (fun _ ->
      if Prng.int rng 8 = 0 then 80_000 + Prng.int rng 120_000 else 4_000 + Prng.int rng 16_000)

let run ~dynamic =
  let config = { Config.default with Config.nprocs = 8; pages = 8 } in
  let result =
    Api.run config (fun ctx ->
        let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
        let cursor = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx 1 in
        let results = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx ntasks in
        Api.bcast ctx (fun () -> Api.iset ctx cursor 0 0);
        let execute t =
          Api.compute_ns ctx (costs.(t) * 1000);
          Api.iset ctx results t (t * t)
        in
        if dynamic then begin
          (* grab the next task under the lock until the bag is empty *)
          let rec drain () =
            let t =
              Api.with_lock ctx 1 (fun () ->
                  let t = Api.iget ctx cursor 0 in
                  if t < ntasks then Api.iset ctx cursor 0 (t + 1);
                  t)
            in
            if t < ntasks then begin
              execute t;
              drain ()
            end
          in
          drain ()
        end
        else
          (* static round-robin assignment *)
          for t = 0 to ntasks - 1 do
            if t mod nprocs = pid then execute t
          done;
        Api.barrier ctx 1;
        if pid = 0 then
          for t = 0 to ntasks - 1 do
            assert (Api.iget ctx results t = t * t)
          done)
  in
  result

let () =
  let dynamic = run ~dynamic:true in
  let static = run ~dynamic:false in
  let time (r : Api.run_result) = Tmk_sim.Vtime.to_ms r.Api.total_time in
  Fmt.pr "64 skewed tasks on 8 processors:@.";
  Fmt.pr "  static round-robin : %.1f ms simulated@." (time static);
  Fmt.pr "  dynamic task farm  : %.1f ms simulated (%.2fx faster)@." (time dynamic)
    (time static /. time dynamic);
  Fmt.pr "  (the dynamic version pays %d lock acquires for the balance)@."
    dynamic.Api.total_stats.Stats.lock_acquires
