(* Quickstart: the smallest complete TreadMarks program.

   Processor 0 broadcasts a shared array; every processor then sums a
   slice and the partial results meet in a reduction.  Run with:

     dune exec examples/quickstart.exe *)

open Tmk_dsm

let () =
  let config = { Config.default with Config.nprocs = 4; pages = 8 } in
  let result =
    Api.run config (fun ctx ->
        let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
        (* Every processor performs the same allocations (SPMD). *)
        let data = Api.falloc ctx 1000 in
        (* Processor 0 fills the array; the barrier inside [bcast] makes
           the initialization visible everywhere. *)
        Api.bcast ctx (fun () ->
            for i = 0 to 999 do
              Api.fset ctx data i (float_of_int (i + 1))
            done);
        (* Each processor sums its slice... *)
        let slice = 1000 / nprocs in
        let lo = pid * slice in
        let partial = ref 0.0 in
        for i = lo to lo + slice - 1 do
          partial := !partial +. Api.fget ctx data i
        done;
        Api.compute_flops ctx slice;
        (* ...and the partials are folded in pid order: every processor
           gets the identical total, no lock-and-accumulate boilerplate. *)
        let total = Api.reduce_f ctx ( +. ) !partial in
        if pid = 0 then
          Fmt.pr "sum of 1..1000 = %.0f (expected %d)@." total (1000 * 1001 / 2))
  in
  Fmt.pr "simulated time: %a; %d messages, %d bytes on the wire@." Tmk_sim.Vtime.pp
    result.Api.total_time result.Api.messages result.Api.bytes
