(* Histogram: classify a large shared dataset into shared buckets.

   A realistic "cluster as a parallel computer" workload: the dataset is
   initialized once, each processor scans a slice, accumulates counts
   privately, and folds them into shared buckets under per-bucket locks —
   the same private-accumulation idiom the paper's modified Water uses to
   keep lock rates manageable.  Run with:

     dune exec examples/histogram.exe *)

open Tmk_dsm
module Workload = Tmk_workload.Workload

let n = 40_000
let buckets = 16

let () =
  let config = { Config.default with Config.nprocs = 8; pages = (n * 8 / 4096) + 4 } in
  let result =
    Api.run config (fun ctx ->
        let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
        let data = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx n in
        let hist = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx buckets in
        Api.bcast ctx (fun () ->
            let values = Workload.int_array ~n ~seed:2024L in
            Array.iteri (fun i v -> Api.iset ctx data i v) values;
            for b = 0 to buckets - 1 do
              Api.iset ctx hist b 0
            done);
        (* Private counts for the local slice. *)
        let local = Array.make buckets 0 in
        let slice = n / nprocs in
        let lo = pid * slice in
        let hi = if pid = nprocs - 1 then n - 1 else lo + slice - 1 in
        for i = lo to hi do
          let b = Api.iget ctx data i * buckets / 1_000_000 in
          let b = min b (buckets - 1) in
          local.(b) <- local.(b) + 1
        done;
        Api.compute_flops ctx ((hi - lo + 1) * 2);
        (* Fold into the shared histogram, one lock per bucket. *)
        for b = 0 to buckets - 1 do
          if local.(b) > 0 then
            Api.with_lock ctx b (fun () ->
                Api.iset ctx hist b (Api.iget ctx hist b + local.(b)))
        done;
        Api.barrier ctx 1;
        if pid = 0 then begin
          Fmt.pr "bucket counts:@.";
          let total = ref 0 in
          for b = 0 to buckets - 1 do
            let c = Api.iget ctx hist b in
            total := !total + c;
            Fmt.pr "  [%7d-%7d) %s %d@." (b * 1_000_000 / buckets)
              ((b + 1) * 1_000_000 / buckets)
              (String.make (c * 60 / n) '#')
              c
          done;
          Fmt.pr "total classified: %d (expected %d)@." !total n
        end)
  in
  Fmt.pr "simulated time: %a; %d lock acquires (%d remote)@." Tmk_sim.Vtime.pp
    result.Api.total_time result.Api.total_stats.Stats.lock_acquires
    result.Api.total_stats.Stats.lock_remote
