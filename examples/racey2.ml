(* Racey2: a race the happens-before detector misses and the lockset
   analyzer catches.  An unprotected flag word whose conflicting accesses
   all happen to be ordered through an unrelated lock's release→acquire
   chain: this execution is race-free, so the HB detector is silent — but
   the program is not, and a different lock-grant order exposes the race.
   The schedule-insensitive lockset analyzer flags it regardless.  Run:

     dune exec examples/racey2.exe        (exits 1: lockset race found)
     tmk_run --lint examples/racey2.ml    (same fixture via the harness)

   See lib/apps/racey2.ml for the choreography. *)

open Tmk_dsm

let nprocs = 8

let () =
  let p = Tmk_apps.Racey2.default in
  let config =
    {
      Config.default with
      Config.nprocs;
      pages = Tmk_apps.Racey2.pages_needed p;
      seed = 1994L;
    }
  in
  let race = Tmk_check.Race.create ~nprocs ~pages:config.Config.pages () in
  let lint = Tmk_lint.Lint.create ~nprocs () in
  let check =
    Tmk_check.Checker.create ~race
      ~hooks:[ Tmk_lint.Lint.hooks lint ]
      ~attach:[ Tmk_lint.Lint.attach lint ]
      ()
  in
  let config = { config with Config.check = Some check } in
  let result =
    Api.run config (fun ctx ->
        match Tmk_apps.Racey2.parallel ctx p with
        | None -> ()
        | Some count ->
          Fmt.pr "final counter: %d (expected %d)@." count (p.Tmk_apps.Racey2.rounds * nprocs))
  in
  Fmt.pr "simulated time: %a@." Tmk_sim.Vtime.pp result.Api.total_time;
  Fmt.pr "@.happens-before detector: %s@."
    (if Tmk_check.Race.has_findings race then "found races (unexpected!)"
     else "silent — this schedule ordered every conflicting pair");
  Fmt.pr "@.%s@." (Tmk_lint.Lint.report ~race lint);
  if Tmk_lint.Findings.has_errors (Tmk_lint.Lint.findings ~race lint) then exit 1
