(* Racey: the histogram example with the per-bucket locks removed — a
   deliberately data-racy program, kept as the race detector's positive
   fixture.  Every processor folds its private counts into the shared
   buckets with a plain read-modify-write, so nothing orders the folds
   and the detector must flag every bucket word.  Run with:

     dune exec examples/racey.exe          (exits 1: races found)
     tmk_run --racecheck examples/racey.ml (same fixture via the harness)

   TreadMarks promises sequential consistency only for data-race-free
   programs (§2 of the paper); under an unlucky schedule this program
   really does lose increments. *)

open Tmk_dsm

let nprocs = 8

let () =
  let p = Tmk_apps.Racey.default in
  let config =
    {
      Config.default with
      Config.nprocs;
      pages = Tmk_apps.Racey.pages_needed p;
      seed = 1994L;
    }
  in
  let race = Tmk_check.Race.create ~nprocs ~pages:config.Config.pages () in
  let config = { config with Config.check = Some (Tmk_check.Checker.create ~race ()) } in
  let expected = Tmk_apps.Racey.sequential p in
  let result =
    Api.run config (fun ctx ->
        match Tmk_apps.Racey.parallel ctx p with
        | None -> ()
        | Some hist ->
          Fmt.pr "bucket counts (racy fold):@.";
          Array.iteri
            (fun b c ->
              Fmt.pr "  bucket %d: %d (sequential says %d)%s@." b c expected.(b)
                (if c <> expected.(b) then "  <- lost updates" else ""))
            hist)
  in
  Fmt.pr "simulated time: %a@." Tmk_sim.Vtime.pp result.Api.total_time;
  Fmt.pr "@.%s@." (Tmk_check.Race.report race);
  if Tmk_check.Race.has_findings race then exit 1
