(* Heat diffusion: an iterative stencil in the style the paper's
   introduction motivates — scientific computation on a network of
   workstations instead of a supercomputer.

   A 2-D plate with a hot spot diffuses heat over time.  Rows are
   block-partitioned; each iteration reads the neighbours' boundary rows
   (the only communication, all of it implicit through shared memory) and
   a barrier separates iterations.  The example also demonstrates how the
   same program behaves under the lazy and eager protocols.  Run with:

     dune exec examples/heat_diffusion.exe *)

open Tmk_dsm

let rows = 64
let cols = 128
let iters = 30

let run protocol =
  let pages = (2 * rows * cols * 8 / 4096) + 4 in
  let config = { Config.default with Config.nprocs = 4; pages; protocol } in
  let final = ref [||] in
  let result =
    Api.run config (fun ctx ->
        let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
        let a = Api.falloc ~align:Tmk_mem.Vm.page_size ctx (rows * cols) in
        let b = Api.falloc ~align:Tmk_mem.Vm.page_size ctx (rows * cols) in
        let idx r c = (r * cols) + c in
        Api.bcast ctx (fun () ->
            (* a hot square in the middle of a cold plate *)
            for r = 0 to rows - 1 do
              for c = 0 to cols - 1 do
                let v =
                  if abs (r - (rows / 2)) < 4 && abs (c - (cols / 2)) < 8 then 100.0
                  else 0.0
                in
                Api.fset ctx a (idx r c) v;
                Api.fset ctx b (idx r c) v
              done
            done);
        let per = (rows - 2) / nprocs in
        let lo = 1 + (pid * per) in
        let hi = if pid = nprocs - 1 then rows - 2 else lo + per - 1 in
        let src = ref a and dst = ref b in
        for iter = 1 to iters do
          let s = !src and d = !dst in
          for r = lo to hi do
            for c = 1 to cols - 2 do
              let v =
                Api.fget ctx s (idx r c)
                +. 0.2
                   *. (Api.fget ctx s (idx (r - 1) c)
                      +. Api.fget ctx s (idx (r + 1) c)
                      +. Api.fget ctx s (idx r (c - 1))
                      +. Api.fget ctx s (idx r (c + 1))
                      -. (4.0 *. Api.fget ctx s (idx r c)))
              in
              Api.fset ctx d (idx r c) v
            done;
            Api.compute_flops ctx (cols * 8)
          done;
          Api.barrier ctx iter;
          let t = !src in
          src := !dst;
          dst := t
        done;
        if pid = 0 then
          final := Array.init rows (fun r -> Api.fget ctx !src (idx r (cols / 2))))
  in
  (result, !final)

let () =
  let lazy_result, profile = run Config.Lrc in
  let eager_result, _ = run Config.Erc in
  Fmt.pr "temperature profile through the hot spot (column %d):@." (cols / 2);
  Array.iteri
    (fun r v ->
      if r mod 4 = 0 then
        Fmt.pr "  row %2d %s %.1f@." r (String.make (int_of_float v * 2 / 5) '*') v)
    profile;
  let report name (r : Api.run_result) =
    Fmt.pr "%-6s: %a simulated, %d msgs, %d KB, %d diffs created@." name Tmk_sim.Vtime.pp
      r.Api.total_time r.Api.messages (r.Api.bytes / 1024)
      r.Api.total_stats.Stats.diffs_created
  in
  report "lazy" lazy_result;
  report "eager" eager_result;
  Fmt.pr "(lazy release consistency should move fewer messages and create fewer diffs)@."
