type prot = No_access | Read_only | Read_write
type access = Read | Write

exception Fault_loop of { page : int; kind : access }

type t = {
  data : Bytes.t;
  prot : prot array;
  fast : Bytes.t;
      (* per-page "unchecked OK" bitmap: ['\001'] exactly when the page is
         [Read_write], no access hook is installed, and the fast path is
         enabled — the accessors may then touch [data] directly, skipping
         the full [ensure] (range/prot check + hook dispatch).  Kept
         consistent by [refresh_fast] on every [set_prot] /
         [set_access_hook] / [set_fast_path]. *)
  npages : int;
  mutable fast_enabled : bool;
  mutable on_fault : access -> int -> unit;
  mutable on_access : (access -> int -> int -> unit) option;
}

let page_size = 4096
let page_shift = 12
let offset_mask = page_size - 1

let create ?(fast_path = true) ~pages () =
  if pages <= 0 then invalid_arg "Vm.create: pages must be positive";
  {
    data = Bytes.make (pages * page_size) '\000';
    prot = Array.make pages Read_write;
    fast = Bytes.make pages (if fast_path then '\001' else '\000');
    npages = pages;
    fast_enabled = fast_path;
    on_fault = (fun _ page -> failwith (Printf.sprintf "Vm: unhandled fault on page %d" page));
    on_access = None;
  }

let npages t = t.npages
let size_bytes t = t.npages * page_size

let refresh_fast t page =
  Bytes.unsafe_set t.fast page
    (if t.fast_enabled && t.on_access = None && t.prot.(page) = Read_write then '\001'
     else '\000')

let refresh_fast_all t =
  for page = 0 to t.npages - 1 do
    refresh_fast t page
  done

let set_fault_handler t f = t.on_fault <- f

let set_access_hook t f =
  t.on_access <- Some f;
  refresh_fast_all t

let fast_path t = t.fast_enabled

let set_fast_path t enabled =
  t.fast_enabled <- enabled;
  refresh_fast_all t

let prot t page = t.prot.(page)

let set_prot t page p =
  t.prot.(page) <- p;
  refresh_fast t page

let page_of_addr addr = addr / page_size
let addr_of_page page = page * page_size

let check_range t addr width =
  if addr < 0 || addr + width > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Vm: address %d out of range" addr);
  if width > 1 && addr / page_size <> (addr + width - 1) / page_size then
    invalid_arg (Printf.sprintf "Vm: access at %d straddles a page boundary" addr)

(* Fault-check an access; after the handler runs the protection must allow
   the retried access, otherwise the handler is broken. *)
let ensure t addr width kind =
  check_range t addr width;
  let page = addr / page_size in
  let allowed () =
    match (t.prot.(page), kind) with
    | Read_write, _ -> true
    | Read_only, Read -> true
    | Read_only, Write | No_access, _ -> false
  in
  if not (allowed ()) then begin
    (* The handler may have to run more than once: on the real system a
       concurrently arriving write notice can re-invalidate the page
       between the handler's fix and the retried access. *)
    let rec retry attempts =
      t.on_fault kind page;
      if not (allowed ()) then
        if attempts >= 64 then raise (Fault_loop { page; kind }) else retry (attempts + 1)
    in
    retry 0
  end;
  match t.on_access with None -> () | Some f -> f kind addr width

(* Fast-path admission: the access is entirely inside one page whose fast
   bit is set.  [addr lsr page_shift] maps any negative address to a huge
   positive page (lsr is a logical shift), so the single [page < npages]
   compare also rejects addr < 0; the offset mask check rejects accesses
   that would straddle the page boundary (so an in-bounds fast access can
   never leave the page, and [page < npages] alone proves the whole access
   is in range).  Everything else falls through to [ensure], which raises
   the exact errors the checked path always raised. *)
let[@inline] fast_ok t addr width =
  let page = addr lsr page_shift in
  page < t.npages
  && Bytes.unsafe_get t.fast page <> '\000'
  && addr land offset_mask <= page_size - width

let read_u8 t addr =
  if not (fast_ok t addr 1) then ensure t addr 1 Read;
  Char.code (Bytes.unsafe_get t.data addr)

let write_u8 t addr v =
  if not (fast_ok t addr 1) then ensure t addr 1 Write;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let read_i64 t addr =
  if not (fast_ok t addr 8) then ensure t addr 8 Read;
  Bytes.get_int64_le t.data addr

let write_i64 t addr v =
  if not (fast_ok t addr 8) then ensure t addr 8 Write;
  Bytes.set_int64_le t.data addr v

let read_int t addr = Int64.to_int (read_i64 t addr)
let write_int t addr v = write_i64 t addr (Int64.of_int v)

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)

let page_snapshot t page =
  Bytes.sub t.data (addr_of_page page) page_size

let install_page t page bytes =
  if Bytes.length bytes <> page_size then
    invalid_arg "Vm.install_page: wrong page size";
  Bytes.blit bytes 0 t.data (addr_of_page page) page_size

let patch t page rle =
  let base = addr_of_page page in
  let apply_run { Tmk_util.Rle.offset; bytes } =
    let len = Bytes.length bytes in
    if offset < 0 || offset + len > page_size then
      invalid_arg "Vm.patch: run out of page bounds";
    Bytes.blit bytes 0 t.data (base + offset) len
  in
  List.iter apply_run (Tmk_util.Rle.runs rle)

let diff_against t page ~twin =
  Tmk_util.Rle.encode ~old_:twin (page_snapshot t page)
