(** Software MMU: a paged address space with per-page protection.

    Substitutes for the [mmap]/[mprotect]/SIGSEGV machinery the real
    TreadMarks uses (§3.7).  Shared memory is a flat byte buffer split into
    4096-byte pages, each in one of three states mirroring the hardware
    protections.  Every typed accessor checks the page's protection and, on
    a violation, invokes the registered fault handler — the analogue of the
    SIGSEGV handler — then retries the access.  The fault handler runs in
    the faulting process's context and may block (e.g. to fetch diffs from
    other processors) and change protections before returning.

    The accessors themselves model ordinary user-mode loads and stores and
    charge no simulated time; only the protocol activity that faults
    trigger costs time, exactly as on real hardware. *)

(** Page protection, as set by [mprotect] on the real system. *)
type prot = No_access | Read_only | Read_write

(** Kind of access that faulted. *)
type access = Read | Write

type t

(** [page_size] is 4096 bytes, the DECstation's virtual-memory page. *)
val page_size : int

(** [create ~pages] makes an address space of [pages] pages, zero-filled,
    all [Read_write] (the DSM sets initial protections itself), with a
    fault handler that raises.  [fast_path] (default [true]) lets the
    typed accessors skip the protection check on pages where it cannot
    fault — see {!set_fast_path}; pass [false] to force every access
    through the checked path. *)
val create : ?fast_path:bool -> pages:int -> unit -> t

(** [npages t] / [size_bytes t] — capacity. *)
val npages : t -> int

val size_bytes : t -> int

(** [set_fault_handler t f] installs the SIGSEGV-handler analogue.  [f]
    must change the page's protection so the retried access succeeds.
    @raise Fault_loop if the access still faults after [f] returns. *)
val set_fault_handler : t -> (access -> int -> unit) -> unit

exception Fault_loop of { page : int; kind : access }

(** [set_access_hook t f] installs an observer called as [f kind addr width]
    after every typed access resolves (including any faults it triggered).
    The hook sees the accesses a hardware watchpoint would — one call per
    load or store — and is meant for checkers; it must not change
    protections.  Page-granularity operations ([page_snapshot], [patch],
    ...) are DSM-internal and do not report. *)
val set_access_hook : t -> (access -> int -> int -> unit) -> unit

(** [prot t page] / [set_prot t page p] — read and change protection.
    Charging the [mprotect] cost is the caller's business. *)
val prot : t -> int -> prot

val set_prot : t -> int -> prot -> unit

(** {2 Fast path}

    The typed accessors keep a per-page "unchecked OK" bitmap: a page's
    bit is set exactly when it is [Read_write], no access hook is
    installed, and the fast path is enabled.  An access wholly inside such
    a page cannot fault and has no observer, so it reads or writes the
    backing buffer directly, skipping the protection check and hook
    dispatch.  All other accesses — including out-of-range and straddling
    ones — take the checked path and behave exactly as before.  The bitmap
    is maintained by [set_prot], [set_access_hook], and [set_fast_path];
    results are bit-identical with the fast path on or off. *)

(** [fast_path t] — whether the fast path is enabled. *)
val fast_path : t -> bool

(** [set_fast_path t enabled] — enable or disable the fast path (e.g. to
    measure its effect); contents and semantics are unaffected. *)
val set_fast_path : t -> bool -> unit

(** [page_of_addr addr] is [addr / page_size]. *)
val page_of_addr : int -> int

(** [addr_of_page page] is [page * page_size]. *)
val addr_of_page : int -> int

(** {2 Typed accessors} — byte-addressed; 8-byte accesses must not cross a
    page boundary (the apps keep naturally-aligned data).

    @raise Invalid_argument on out-of-range or straddling accesses. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit

(** [read_int]/[write_int] store an OCaml [int] in 8 bytes. *)
val read_int : t -> int -> int

val write_int : t -> int -> int -> unit

(** [read_f64]/[write_f64] store a [float] in 8 bytes (IEEE bits). *)
val read_f64 : t -> int -> float

val write_f64 : t -> int -> float -> unit

(** {2 Page-granularity operations for the DSM layer} — these bypass
    protection (the DSM manipulates pages it has deliberately protected),
    like kernel-assisted copies in the real system. *)

(** [page_snapshot t page] is a fresh copy of the page's 4096 bytes. *)
val page_snapshot : t -> int -> Bytes.t

(** [install_page t page bytes] overwrites the page's contents. *)
val install_page : t -> int -> Bytes.t -> unit

(** [patch t page rle] applies a diff to the page in place, bypassing
    protection. *)
val patch : t -> int -> Tmk_util.Rle.t -> unit

(** [diff_against t page ~twin] is the runlength encoding of the page's
    current contents against [twin]. *)
val diff_against : t -> int -> twin:Bytes.t -> Tmk_util.Rle.t
