(** The unified findings model every lint analyzer reports through.

    One record shape, one severity scale, one canonical order — the human
    table, the JSONL stream and the SARIF file are all views of the same
    sorted list, and "lint-clean" has a single meaning (no error-severity
    findings) across analyzers, backends and [--jobs] settings. *)

type severity = Info | Warning | Error

type t = {
  analyzer : string;  (** "lockset", "sharing", "discipline" or "hb" *)
  rule : string;  (** stable rule id, e.g. "lockset-race" *)
  severity : severity;
  page : int;  (** -1 when the finding is not page-scoped (a lock, say) *)
  lo : int;  (** byte range within the page; -1 when not byte-scoped *)
  hi : int;
  pids : int list;  (** processors involved, sorted ascending *)
  message : string;
  hint : string;  (** concrete remediation *)
}

val severity_name : severity -> string
val severity_of_string : string -> severity option
val severity_rank : severity -> int

(** Total canonical order: severity (errors first), then page/byte
    location, then analyzer, rule, pids and text. *)
val compare_findings : t -> t -> int

(** [sort_dedup fs] — canonical order with exact duplicates removed.
    Every reporter consumes the result of this, never a raw list. *)
val sort_dedup : t list -> t list

(** [worst fs] — the highest severity present, [None] on an empty list. *)
val worst : t list -> severity option

(** [has_errors fs] — any error-severity finding present (the exit-2 and
    CI-failure condition). *)
val has_errors : t list -> bool

(** [table fs] — the findings as a deterministic Tablefmt table, or a
    one-line all-clear. *)
val table : t list -> string

(** JSONL: one finding object per line, byte-stable; [of_jsonl] is the
    exact inverse of [to_jsonl]. *)
val to_jsonl_line : t -> string

val to_jsonl : t list -> string

exception Parse_error of string

val of_jsonl_line : string -> t
val of_jsonl : string -> t list

(** [to_sarif ?uri fs] — a SARIF 2.1.0 document (driver "tmk-lint") for
    CI code-scanning annotations.  [uri] is the repository artifact the
    annotations attach to (findings describe simulated DSM pages, so the
    page/byte location is carried in each result's message). *)
val to_sarif : ?uri:string -> t list -> string
