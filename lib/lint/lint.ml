(* The sanitizer-suite driver.

   One [Lint.t] per run: it owns a private segment-clock instance, fans
   the checker hook events out to the enabled analyzers, listens on the
   trace stream, and at the end merges every analyzer's findings into the
   unified model — deduplicating the lockset analyzer's potential races
   against the happens-before detector's confirmed ones, and feeding the
   lockset's racy words to the discipline analyzer's unsynchronized-shadow
   check.  Wire it into a run with:

     let lint = Lint.create ~nprocs () in
     let check = Checker.create ~race ~hooks:[Lint.hooks lint]
                   ~attach:[Lint.attach lint] () in
     ... run ...
     print_string (Lint.report ~race lint) *)

module Hooks = Tmk_check.Hooks
module Segments = Tmk_check.Segments

type analyzer = Lockset | Sharing | Discipline

let all_analyzers = [ Lockset; Sharing; Discipline ]

let analyzer_name = function
  | Lockset -> "lockset"
  | Sharing -> "sharing"
  | Discipline -> "discipline"

let analyzers_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "all" -> all_analyzers
  | s ->
    String.split_on_char ',' s
    |> List.map (fun name ->
           match String.trim name with
           | "lockset" -> Lockset
           | "sharing" -> Sharing
           | "discipline" -> Discipline
           | other ->
             invalid_arg
               (Printf.sprintf
                  "Lint.analyzers_of_string: unknown analyzer %S (valid: lockset, \
                   sharing, discipline)"
                  other))

type t = {
  segs : Segments.t;
  suppress : int array;
  lockset : Lockset.t option;
  sharing : Sharing.t option;
  discipline : Discipline.t option;
}

let create ?(analyzers = all_analyzers) ~nprocs () =
  let segs = Segments.create ~nprocs () in
  let on a = List.mem a analyzers in
  {
    segs;
    suppress = Array.make nprocs 0;
    lockset = (if on Lockset then Some (Lockset.create ~segs ()) else None);
    sharing = (if on Sharing then Some (Sharing.create ~segs ~nprocs ()) else None);
    discipline = (if on Discipline then Some (Discipline.create ~nprocs ()) else None);
  }

let enabled t =
  List.filter
    (fun a ->
      match a with
      | Lockset -> t.lockset <> None
      | Sharing -> t.sharing <> None
      | Discipline -> t.discipline <> None)
    all_analyzers

let hooks t =
  {
    Hooks.h_access =
      (fun ~pid kind ~addr ~width ->
        if t.suppress.(pid) = 0 then begin
          (match t.lockset with
          | Some ls -> Lockset.access ls ~pid kind ~addr ~width
          | None -> ());
          match t.sharing with
          | Some sh -> Sharing.access sh ~pid kind ~addr ~width
          | None -> ()
        end;
        (* The discipline analyzer filters internally: it records
           suppressed accesses for the shadow cross-reference. *)
        match t.discipline with
        | Some d -> Discipline.access d ~pid kind ~addr ~width
        | None -> ());
    h_lock_acquired =
      (fun ~pid ~lock ->
        Segments.lock_acquired t.segs ~pid ~lock;
        match t.discipline with
        | Some d -> Discipline.lock_acquired d ~pid ~lock
        | None -> ());
    h_lock_release =
      (fun ~pid ~lock ->
        Segments.lock_release t.segs ~pid ~lock;
        match t.discipline with
        | Some d -> Discipline.lock_release d ~pid ~lock
        | None -> ());
    h_barrier_arrive = (fun ~pid ~id -> Segments.barrier_arrive t.segs ~pid ~id);
    h_barrier_depart = (fun ~pid ~id -> Segments.barrier_depart t.segs ~pid ~id);
    h_suppress =
      (fun ~pid on ->
        t.suppress.(pid) <- (t.suppress.(pid) + if on then 1 else -1);
        match t.discipline with
        | Some d -> Discipline.suppress d ~pid on
        | None -> ());
  }

let attach t sink =
  match t.sharing with Some sh -> Sharing.listen sh sink | None -> ()

(* Convert the HB detector's confirmed races into the unified model, so
   one report carries both — and so the lockset's potential races can be
   deduplicated against them. *)
let kind_name = function Tmk_check.Race.Read -> "R" | Tmk_check.Race.Write -> "W"

let of_hb (f : Tmk_check.Race.finding) =
  {
    Findings.analyzer = "hb";
    rule = "data-race";
    severity = Findings.Error;
    page = f.Tmk_check.Race.f_page;
    lo = f.f_lo;
    hi = f.f_hi;
    pids = List.sort_uniq compare [ f.f_first_pid; f.f_second_pid ];
    message =
      Printf.sprintf "confirmed race: p%d %s (%s) vs p%d %s (%s), %d pair(s)"
        f.f_first_pid (kind_name f.f_first_kind) f.f_first_ctx f.f_second_pid
        (kind_name f.f_second_kind) f.f_second_ctx f.f_pairs;
    hint = f.f_hint;
  }

let findings ?race t =
  let hb =
    match race with
    | Some r -> List.map of_hb (Tmk_check.Race.findings r)
    | None -> []
  in
  let overlaps (a : Findings.t) (b : Findings.t) =
    a.Findings.page = b.Findings.page && a.lo <= b.hi && b.lo <= a.hi
  in
  let lockset =
    match t.lockset with
    | Some ls ->
      (* A potential race the schedule actually exposed is already
         reported (better) by the HB detector; keep the lockset row only
         when it says something HB could not. *)
      List.filter (fun f -> not (List.exists (overlaps f) hb)) (Lockset.findings ls)
    | None -> []
  in
  let racy_words =
    match t.lockset with Some ls -> Lockset.racy_words ls | None -> []
  in
  let discipline =
    match t.discipline with
    | Some d -> Discipline.findings ~racy_words d
    | None -> []
  in
  let sharing = match t.sharing with Some sh -> Sharing.findings sh | None -> [] in
  Findings.sort_dedup (hb @ lockset @ sharing @ discipline)

(* The sharing classification is a summary, not findings: correct
   single-writer pages are worth seeing too. *)
let classification_table t = Option.map Sharing.classification_table t.sharing

let report ?race t =
  let fs = findings ?race t in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Findings.table fs);
  (match classification_table t with
  | Some table ->
    Buffer.add_string b "\n\n";
    Buffer.add_string b table
  | None -> ());
  Buffer.contents b
