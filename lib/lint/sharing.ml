(* Sharing-pattern linter.

   LRC's cost model is dominated by {e how} pages are shared, not whether
   the program is correct: false sharing multiplies diffs and write
   notices, fragmented diffs waste messages, and hot locks serialize the
   run (paper §5, and Cudennec's S-DSM study on surfacing access
   patterns).  This analyzer classifies each page per sync interval —
   single-writer / producer-consumer / migratory / falsely-shared /
   true-shared — from the typed accesses, and mines the trace stream for
   diff fragmentation, never-consumed write notices and lock contention.
   Everything here is advisory (warnings and infos): the program is
   correct either way, just slower than it needs to be. *)

module Segments = Tmk_check.Segments
module Hooks = Tmk_check.Hooks
module Bitset = Tmk_util.Bitset

let word_bytes = 8
let page_bytes = 4096
let words_per_page = page_bytes / word_bytes

(* Thresholds that keep the advisory findings out of the noise: a false
   sharing report needs every writer to own at least two words (the Api
   collectives legitimately give each processor one scratch word per
   page); fragmentation needs a real diff stream of small diffs;
   contention needs a lock that is both popular and fought over. *)
let min_words_per_writer = 2

let frag_min_diffs = 8
let frag_max_avg_bytes = 128
let contention_min_acquires = 16
let contention_queue_ratio = 0.5
let notices_min = 16

(* One page's accesses within one barrier generation. *)
type epoch = {
  mutable ep_gen : int;
  ep_writes : Bitset.t option array;  (* per pid, lazily allocated *)
  ep_reads : Bitset.t option array;
}

(* Per-page aggregate over all finished epochs. *)
type page_acc = {
  mutable pa_epochs : int;  (* epochs with at least one access *)
  mutable pa_fs_epochs : int;  (* >=2 writers, pairwise-disjoint words *)
  mutable pa_true_epochs : int;  (* >=2 writers, overlapping words *)
  mutable pa_owners : int list;  (* single-writer owners, newest first, deduped *)
  mutable pa_readers : int list;  (* distinct reading pids *)
  mutable pa_writers : int list;  (* distinct writing pids *)
  mutable pa_fs_words : int;  (* max words involved in one false-sharing epoch *)
}

type lock_acc = { mutable la_acquires : int; mutable la_queued : int }

type trace_page = {
  mutable tp_diffs : int;
  mutable tp_diff_bytes : int;
  mutable tp_notices : int;
  mutable tp_read_faults : int;
}

type t = {
  segs : Segments.t;
  nprocs : int;
  active : (int, epoch) Hashtbl.t;  (* page -> its current epoch *)
  pages : (int, page_acc) Hashtbl.t;
  locks : (int, lock_acc) Hashtbl.t;
  tpages : (int, trace_page) Hashtbl.t;
}

let create ~segs ~nprocs () =
  {
    segs;
    nprocs;
    active = Hashtbl.create 256;
    pages = Hashtbl.create 256;
    locks = Hashtbl.create 16;
    tpages = Hashtbl.create 256;
  }

let page_acc t page =
  match Hashtbl.find_opt t.pages page with
  | Some a -> a
  | None ->
    let a =
      { pa_epochs = 0; pa_fs_epochs = 0; pa_true_epochs = 0; pa_owners = [];
        pa_readers = []; pa_writers = []; pa_fs_words = 0 }
    in
    Hashtbl.add t.pages page a;
    a

let add_pid pid pids = if List.mem pid pids then pids else pid :: pids

let disjoint a b = Bitset.fold (fun w acc -> acc && not (Bitset.mem b w)) a true

(* Fold one finished epoch into the page aggregate. *)
let finalize t page ep =
  let acc = page_acc t page in
  let writers = ref [] and readers = ref [] in
  for pid = 0 to t.nprocs - 1 do
    (match ep.ep_writes.(pid) with
    | Some ws when not (Bitset.is_empty ws) -> writers := pid :: !writers
    | _ -> ());
    match ep.ep_reads.(pid) with
    | Some rs when not (Bitset.is_empty rs) -> readers := pid :: !readers
    | _ -> ()
  done;
  let writers = List.rev !writers and readers = List.rev !readers in
  if writers <> [] || readers <> [] then begin
    acc.pa_epochs <- acc.pa_epochs + 1;
    List.iter (fun p -> acc.pa_readers <- add_pid p acc.pa_readers) readers;
    List.iter (fun p -> acc.pa_writers <- add_pid p acc.pa_writers) writers;
    match writers with
    | [] -> ()
    | [ owner ] -> (
      match acc.pa_owners with
      | o :: _ when o = owner -> ()
      | os -> acc.pa_owners <- owner :: os)
    | _ :: _ :: _ ->
      let sets =
        List.map (fun p -> match ep.ep_writes.(p) with Some s -> s | None -> assert false)
          writers
      in
      let rec pairwise_disjoint = function
        | [] | [ _ ] -> true
        | s :: rest -> List.for_all (disjoint s) rest && pairwise_disjoint rest
      in
      if pairwise_disjoint sets then begin
        if List.for_all (fun s -> Bitset.cardinal s >= min_words_per_writer) sets then begin
          acc.pa_fs_epochs <- acc.pa_fs_epochs + 1;
          let words = List.fold_left (fun n s -> n + Bitset.cardinal s) 0 sets in
          if words > acc.pa_fs_words then acc.pa_fs_words <- words
        end
      end
      else acc.pa_true_epochs <- acc.pa_true_epochs + 1
  end

let fresh_epoch t gen =
  { ep_gen = gen; ep_writes = Array.make t.nprocs None; ep_reads = Array.make t.nprocs None }

let access t ~pid kind ~addr ~width =
  let gen = Segments.generation t.segs in
  let w0 = addr / word_bytes and w1 = (addr + width - 1) / word_bytes in
  for word = w0 to w1 do
    let page = word / words_per_page in
    let ep =
      match Hashtbl.find_opt t.active page with
      | Some ep when ep.ep_gen = gen -> ep
      | Some ep ->
        finalize t page ep;
        let fresh = fresh_epoch t gen in
        Hashtbl.replace t.active page fresh;
        fresh
      | None ->
        let fresh = fresh_epoch t gen in
        Hashtbl.add t.active page fresh;
        fresh
    in
    let slot = match kind with Hooks.Read -> ep.ep_reads | Hooks.Write -> ep.ep_writes in
    let bits =
      match slot.(pid) with
      | Some b -> b
      | None ->
        let b = Bitset.create words_per_page in
        slot.(pid) <- Some b;
        b
    in
    Bitset.add bits (word mod words_per_page)
  done

(* ---- trace listener: fragmentation, dead notices, contention ---- *)

let trace_page t page =
  match Hashtbl.find_opt t.tpages page with
  | Some p -> p
  | None ->
    let p = { tp_diffs = 0; tp_diff_bytes = 0; tp_notices = 0; tp_read_faults = 0 } in
    Hashtbl.add t.tpages page p;
    p

let lock_acc t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some a -> a
  | None ->
    let a = { la_acquires = 0; la_queued = 0 } in
    Hashtbl.add t.locks lock a;
    a

let listen t sink =
  Tmk_trace.Sink.on_record sink (fun { Tmk_trace.Sink.r_ev; _ } ->
      match r_ev with
      | Tmk_trace.Event.Diff_create { page; bytes; _ } ->
        let p = trace_page t page in
        p.tp_diffs <- p.tp_diffs + 1;
        p.tp_diff_bytes <- p.tp_diff_bytes + bytes
      | Tmk_trace.Event.Write_notice_recv { page; _ } ->
        let p = trace_page t page in
        p.tp_notices <- p.tp_notices + 1
      | Tmk_trace.Event.Page_fault { page; kind = Tmk_trace.Event.Read } ->
        let p = trace_page t page in
        p.tp_read_faults <- p.tp_read_faults + 1
      | Tmk_trace.Event.Lock_acquired { lock; _ } ->
        let a = lock_acc t lock in
        a.la_acquires <- a.la_acquires + 1
      | Tmk_trace.Event.Lock_queued { lock; _ } ->
        let a = lock_acc t lock in
        a.la_queued <- a.la_queued + 1
      | _ -> ())

(* ---- classification and findings ---- *)

let flush t = Hashtbl.iter (fun page ep -> finalize t page ep) t.active

type classification = {
  cl_page : int;
  cl_pattern : string;
  cl_epochs : int;
  cl_writers : int list;
  cl_readers : int list;
}

let pattern acc =
  if acc.pa_fs_epochs > 0 then "falsely-shared"
  else if acc.pa_true_epochs > 0 then "true-shared"
  else
    match List.sort_uniq compare acc.pa_owners with
    | [] -> "read-only"
    | [ owner ] ->
      if List.exists (fun p -> p <> owner) acc.pa_readers then "producer-consumer"
      else "single-writer"
    | _ :: _ :: _ -> "migratory"

let classify t =
  flush t;
  Hashtbl.reset t.active;
  Hashtbl.fold
    (fun page acc rows ->
      if acc.pa_epochs = 0 then rows
      else
        {
          cl_page = page;
          cl_pattern = pattern acc;
          cl_epochs = acc.pa_epochs;
          cl_writers = List.sort_uniq compare acc.pa_writers;
          cl_readers = List.sort_uniq compare acc.pa_readers;
        }
        :: rows)
    t.pages []
  |> List.sort (fun a b -> compare a.cl_page b.cl_page)

let classification_table t =
  match classify t with
  | [] -> "sharing: no shared-page accesses observed"
  | rows ->
    let pids ps = String.concat "," (List.map string_of_int ps) in
    Tmk_util.Tablefmt.render
      ~title:"Page sharing patterns (per barrier interval)"
      ~header:[ "page"; "pattern"; "intervals"; "writers"; "readers" ]
      (List.map
         (fun c ->
           [ string_of_int c.cl_page; c.cl_pattern; string_of_int c.cl_epochs;
             pids c.cl_writers; pids c.cl_readers ])
         rows)

let findings t =
  flush t;
  Hashtbl.reset t.active;
  let fs =
    Hashtbl.fold
      (fun page acc fs ->
        if acc.pa_fs_epochs = 0 then fs
        else
          {
            Findings.analyzer = "sharing";
            rule = "false-sharing";
            severity = Findings.Warning;
            page;
            lo = -1;
            hi = -1;
            pids = List.sort_uniq compare acc.pa_writers;
            message =
              Printf.sprintf
                "falsely shared in %d interval(s): processors write disjoint word ranges \
                 (%d words in the worst interval)"
                acc.pa_fs_epochs acc.pa_fs_words;
            hint =
              Printf.sprintf
                "pad per-processor data to the %d-byte page, or split the structure"
                page_bytes;
          }
          :: fs)
      t.pages []
  in
  let frag =
    Hashtbl.fold
      (fun page p fs ->
        if p.tp_diffs >= frag_min_diffs && p.tp_diff_bytes / p.tp_diffs <= frag_max_avg_bytes
        then
          {
            Findings.analyzer = "sharing";
            rule = "diff-fragmentation";
            severity = Findings.Info;
            page;
            lo = -1;
            hi = -1;
            pids = [];
            message =
              Printf.sprintf "%d diffs averaging %d bytes" p.tp_diffs
                (p.tp_diff_bytes / p.tp_diffs);
            hint = "coalesce writes per interval, or batch them under one lock";
          }
          :: fs
        else fs)
      t.tpages []
  in
  let dead =
    Hashtbl.fold
      (fun page p fs ->
        if p.tp_notices >= notices_min && p.tp_read_faults = 0 then
          {
            Findings.analyzer = "sharing";
            rule = "never-read-notices";
            severity = Findings.Info;
            page;
            lo = -1;
            hi = -1;
            pids = [];
            message =
              Printf.sprintf "%d write notices received but the page is never read-faulted"
                p.tp_notices;
            hint = "the writes are never consumed remotely; keep the data private or \
                    reduce with Api.reduce_*";
          }
          :: fs
        else fs)
      t.tpages []
  in
  let contended =
    Hashtbl.fold
      (fun lock a fs ->
        if
          a.la_acquires >= contention_min_acquires
          && float_of_int a.la_queued >= contention_queue_ratio *. float_of_int a.la_acquires
        then
          {
            Findings.analyzer = "sharing";
            rule = "lock-contention";
            severity = Findings.Warning;
            page = -1;
            lo = -1;
            hi = -1;
            pids = [];
            message =
              Printf.sprintf "lock %d: %d of %d acquires queued behind another holder" lock
                a.la_queued a.la_acquires;
            hint = "split the lock, shorten the critical section, or use Api.reduce_* \
                    collectives";
          }
          :: fs
        else fs)
      t.locks []
  in
  List.sort Findings.compare_findings (fs @ frag @ dead @ contended)
