(* Eraser-style lockset race detection (Savage et al., SOSP '97), adapted
   to a barrier-synchronized SPMD DSM.

   The happens-before detector in [lib/check/race.ml] is complete for the
   observed schedule: it reports a race only if no sync chain ordered the
   two accesses {e in this run}.  A program can still be racy and get
   lucky — a lock chain that happens to order an unprotected write after
   the reads it conflicts with leaves HB silent.  The lockset discipline
   is schedule-insensitive: every shared word must be protected by some
   fixed lock on every access, and a word whose candidate set goes empty
   is a {e potential} race whatever the schedule did.

   Per 8-byte word, the classic state machine with two DSM adaptations:

   - {b Barrier generations} (from [Segments.generation]).  Barriers here
     are global and all-to-all, so a word's discipline restarts at each
     barrier: a cell whose generation is stale resets to Virgin.  Without
     this, the SPMD phase structure (write a page this epoch, others read
     it after the barrier) would drain every candidate set.
   - {b Happens-before ownership transfer}.  In the Exclusive state an
     access by another processor that is HB-ordered after the owner's
     last access transfers ownership instead of demoting the word: that
     is lock-mediated handoff (a task popped from a locked work queue),
     which Eraser famously false-positives on.  Once a word has
     {e concurrent} readers (an unordered read) it enters Shared, and
     from there the discipline is pure lockset: a write with an empty
     candidate set is reported even if the schedule ordered it, which is
     exactly the "ordered by luck" case HB misses (the racey2 fixture). *)

module Segments = Tmk_check.Segments
module Hooks = Tmk_check.Hooks

let word_bytes = 8
let page_bytes = 4096

type state =
  | Exclusive of { mutable e_seg : Segments.segment; mutable e_locks : int list }
  | Shared of { mutable s_cands : int list }  (* candidate lock set, sorted *)
  | Shared_mod of { mutable m_cands : int list }

type cell = {
  mutable c_state : state;
  mutable c_gen : int;
  mutable c_readers : int list;  (* pids seen this generation, small distinct *)
  mutable c_writers : int list;
  mutable c_reported : bool;  (* once per word per generation *)
}

type racy = { r_word : int; r_writers : int list; r_readers : int list }

type t = {
  segs : Segments.t;
  words : (int, cell) Hashtbl.t;
  mutable racy : racy list;
  mutable accesses : int;
}

let create ~segs () =
  { segs; words = Hashtbl.create 4096; racy = []; accesses = 0 }

let inter a b = List.filter (fun l -> List.mem l b) a

let add_pid pid pids = if List.mem pid pids then pids else pid :: pids

let report t word cell =
  if not cell.c_reported then begin
    cell.c_reported <- true;
    t.racy <-
      {
        r_word = word;
        r_writers = List.sort_uniq compare cell.c_writers;
        r_readers = List.sort_uniq compare cell.c_readers;
      }
      :: t.racy
  end

let access t ~pid kind ~addr ~width =
  t.accesses <- t.accesses + 1;
  let seg = Segments.current t.segs pid in
  let locks = List.sort_uniq compare (Segments.held t.segs pid) in
  let gen = Segments.generation t.segs in
  let w0 = addr / word_bytes and w1 = (addr + width - 1) / word_bytes in
  for word = w0 to w1 do
    let cell =
      match Hashtbl.find_opt t.words word with
      | Some c when c.c_gen = gen -> c
      | Some c ->
        (* Stale generation: at least one all-to-all barrier separates
           every prior access from this one — back to Virgin. *)
        c.c_state <- Exclusive { e_seg = seg; e_locks = locks };
        c.c_gen <- gen;
        c.c_readers <- [];
        c.c_writers <- [];
        c.c_reported <- false;
        c
      | None ->
        let c =
          {
            c_state = Exclusive { e_seg = seg; e_locks = locks };
            c_gen = gen;
            c_readers = [];
            c_writers = [];
            c_reported = false;
          }
        in
        Hashtbl.add t.words word c;
        c
    in
    (match kind with
    | Hooks.Read -> cell.c_readers <- add_pid pid cell.c_readers
    | Hooks.Write -> cell.c_writers <- add_pid pid cell.c_writers);
    match cell.c_state with
    | Exclusive e ->
      if e.e_seg.Segments.s_pid = pid then begin
        e.e_seg <- seg;
        e.e_locks <- locks
      end
      else if Segments.ordered e.e_seg seg then begin
        (* Lock-mediated handoff: the new processor is ordered after the
           owner's last access, so it inherits exclusive ownership. *)
        e.e_seg <- seg;
        e.e_locks <- locks
      end
      else begin
        let cands = inter e.e_locks locks in
        match kind with
        | Hooks.Read -> cell.c_state <- Shared { s_cands = cands }
        | Hooks.Write ->
          cell.c_state <- Shared_mod { m_cands = cands };
          if cands = [] then report t word cell
      end
    | Shared s -> (
      let cands = inter s.s_cands locks in
      match kind with
      | Hooks.Read -> s.s_cands <- cands
      | Hooks.Write ->
        cell.c_state <- Shared_mod { m_cands = cands };
        if cands = [] then report t word cell)
    | Shared_mod m ->
      m.m_cands <- inter m.m_cands locks;
      if m.m_cands = [] then report t word cell
  done

let accesses t = t.accesses
let words_tracked t = Hashtbl.length t.words

(* A sorted list of racy words, for the discipline analyzer's
   unsynchronized-shadow cross-reference and the HB dedup. *)
let racy_words t = List.sort_uniq compare (List.map (fun r -> r.r_word) t.racy)

(* One finding per (page, writers, readers), byte range widened over the
   racy words it covers — mirroring the HB report's merge so the two read
   side by side. *)
let findings t =
  let merged = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let page = r.r_word * word_bytes / page_bytes in
      let lo = r.r_word * word_bytes mod page_bytes in
      let hi = lo + word_bytes - 1 in
      let key = (page, r.r_writers, r.r_readers) in
      match Hashtbl.find_opt merged key with
      | Some (lo', hi', count) ->
        Hashtbl.replace merged key (min lo lo', max hi hi', count + 1)
      | None -> Hashtbl.add merged key (lo, hi, 1))
    t.racy;
  Hashtbl.fold
    (fun (page, writers, readers) (lo, hi, count) acc ->
      let pids = List.sort_uniq compare (writers @ readers) in
      let part role = function
        | [] -> []
        | ps -> [ role ^ " " ^ String.concat "," (List.map (Printf.sprintf "p%d") ps) ]
      in
      {
        Findings.analyzer = "lockset";
        rule = "lockset-race";
        severity = Findings.Error;
        page;
        lo;
        hi;
        pids;
        message =
          Printf.sprintf "potential race: no common lock protects %d word(s) (%s)" count
            (String.concat "; " (part "writers" writers @ part "readers" readers));
        hint = "protect every path with one lock, or separate the phases with a barrier";
      }
      :: acc)
    merged []
  |> List.sort Findings.compare_findings
