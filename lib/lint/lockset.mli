(** Eraser-style lockset race detection, adapted to a barrier-synchronized
    SPMD DSM.

    Schedule-insensitive: every shared word must be protected by a fixed
    lock on every access, and a word whose candidate lock set drains to
    empty is a {e potential} race even when this run's schedule happened
    to order the accesses (the case the happens-before detector cannot
    see).  Two adaptations keep the classic state machine quiet on
    correctly synchronized DSM programs: word state resets to Virgin
    across barrier generations, and an HB-ordered access in the Exclusive
    state transfers ownership (lock-mediated work-queue handoff).  See
    PROTOCOL.md, "Sanitizers and lints". *)

type t

(** [create ~segs ()] — the analyzer shares the lint driver's segment
    clocks ([segs] must observe the same sync events as this analyzer's
    accesses). *)
val create : segs:Tmk_check.Segments.t -> unit -> t

(** [access t ~pid kind ~addr ~width] advances the per-word state
    machines.  The caller filters [Api.unsynchronized] spans. *)
val access : t -> pid:int -> Tmk_check.Hooks.access_kind -> addr:int -> width:int -> unit

val accesses : t -> int
val words_tracked : t -> int

(** [racy_words t] — sorted word indices whose candidate set went empty,
    for cross-referencing by other analyzers. *)
val racy_words : t -> int list

(** [findings t] — error-severity findings, one per (page, writers,
    readers) with the byte range widened, in canonical order. *)
val findings : t -> Findings.t list
