(* Sync-discipline lint.

   Locks are cheap to misuse in ways neither race detector sees: a lock
   whose critical sections write disjoint page sets is probably two locks
   rolled into one (or protects nothing in particular); a lock that never
   guards a write orders nothing; and an [Api.unsynchronized] span that
   covers words the lockset analyzer found racy is an annotation hiding a
   bug rather than a benign stale read.  All heuristics, so everything
   here is warning/info severity. *)

module Hooks = Tmk_check.Hooks

let word_bytes = 8
let page_bytes = 4096
let words_per_page = page_bytes / word_bytes

(* Thresholds: inconsistency needs enough writing sessions to mean
   something; a write-free lock needs at least two acquires (one-shot
   initialization locks are fine). *)
let inconsistent_min_sessions = 4
let no_writes_min_sessions = 2
let max_distinct_sets = 8

type lock_acc = {
  mutable dl_sessions : int;
  mutable dl_writing : int;  (* sessions with at least one protected write *)
  mutable dl_inter : int list option;  (* ∩ of nonempty write-page sets *)
  mutable dl_sets : int list list;  (* distinct write-page sets, capped *)
  mutable dl_pids : int list;
}

type t = {
  nprocs : int;
  locks : (int, lock_acc) Hashtbl.t;
  (* Per processor, the open critical sections: (lock, pages written). *)
  active : (int * (int, unit) Hashtbl.t) list array;
  suppress : int array;  (* Api.unsynchronized nesting depth *)
  suppressed_words : (int, int list) Hashtbl.t;  (* word -> pids *)
}

let create ~nprocs () =
  {
    nprocs;
    locks = Hashtbl.create 16;
    active = Array.make nprocs [];
    suppress = Array.make nprocs 0;
    suppressed_words = Hashtbl.create 64;
  }

let lock_acc t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some a -> a
  | None ->
    let a =
      { dl_sessions = 0; dl_writing = 0; dl_inter = None; dl_sets = []; dl_pids = [] }
    in
    Hashtbl.add t.locks lock a;
    a

let add_pid pid pids = if List.mem pid pids then pids else pid :: pids

let lock_acquired t ~pid ~lock =
  t.active.(pid) <- (lock, Hashtbl.create 4) :: t.active.(pid)

let lock_release t ~pid ~lock =
  match List.assoc_opt lock t.active.(pid) with
  | None -> ()  (* release without observed acquire; nothing to score *)
  | Some pages ->
    t.active.(pid) <- List.filter (fun (l, _) -> l <> lock) t.active.(pid);
    let a = lock_acc t lock in
    a.dl_sessions <- a.dl_sessions + 1;
    a.dl_pids <- add_pid pid a.dl_pids;
    let set = List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pages []) in
    if set <> [] then begin
      a.dl_writing <- a.dl_writing + 1;
      a.dl_inter <-
        (match a.dl_inter with
        | None -> Some set
        | Some i -> Some (List.filter (fun p -> List.mem p set) i));
      if (not (List.mem set a.dl_sets)) && List.length a.dl_sets < max_distinct_sets then
        a.dl_sets <- set :: a.dl_sets
    end

let suppress t ~pid on = t.suppress.(pid) <- (t.suppress.(pid) + if on then 1 else -1)

let access t ~pid kind ~addr ~width =
  let w0 = addr / word_bytes and w1 = (addr + width - 1) / word_bytes in
  if t.suppress.(pid) > 0 then
    for word = w0 to w1 do
      let pids = Option.value ~default:[] (Hashtbl.find_opt t.suppressed_words word) in
      Hashtbl.replace t.suppressed_words word (add_pid pid pids)
    done
  else if kind = Hooks.Write then
    List.iter
      (fun (_, pages) ->
        for word = w0 to w1 do
          Hashtbl.replace pages (word / words_per_page) ()
        done)
      t.active.(pid)

let pages_str ps = String.concat "," (List.map string_of_int ps)

(* [findings ?racy_words t] — [racy_words] is the lockset analyzer's
   output, for the unsynchronized-shadow cross-reference. *)
let findings ?(racy_words = []) t =
  let inconsistent =
    Hashtbl.fold
      (fun lock a fs ->
        if
          a.dl_writing >= inconsistent_min_sessions
          && a.dl_inter = Some []
          && List.length a.dl_sets >= 2
        then
          {
            Findings.analyzer = "discipline";
            rule = "inconsistent-lock-pages";
            severity = Findings.Warning;
            page = -1;
            lo = -1;
            hi = -1;
            pids = List.sort_uniq compare a.dl_pids;
            message =
              Printf.sprintf
                "lock %d guards inconsistent page sets across %d writing acquires (e.g. \
                 {%s} vs {%s})"
                lock a.dl_writing
                (pages_str (List.nth a.dl_sets 0))
                (pages_str (List.nth a.dl_sets 1));
            hint = "one lock per protected structure: split it, or name what it guards";
          }
          :: fs
        else fs)
      t.locks []
  in
  let no_writes =
    Hashtbl.fold
      (fun lock a fs ->
        if a.dl_sessions >= no_writes_min_sessions && a.dl_writing = 0 then
          {
            Findings.analyzer = "discipline";
            rule = "no-protected-writes";
            severity = Findings.Info;
            page = -1;
            lo = -1;
            hi = -1;
            pids = List.sort_uniq compare a.dl_pids;
            message =
              Printf.sprintf "lock %d acquired %d times but never guards a write" lock
                a.dl_sessions;
            hint = "a read-only lock orders nothing under LRC; drop it or check the \
                    critical sections";
          }
          :: fs
        else fs)
      t.locks []
  in
  (* Suppressed spans that cover genuinely racy words: merge per page. *)
  let shadowed = Hashtbl.create 8 in
  List.iter
    (fun word ->
      match Hashtbl.find_opt t.suppressed_words word with
      | None -> ()
      | Some pids ->
        let page = word / words_per_page in
        let lo = word * word_bytes mod page_bytes in
        let hi = lo + word_bytes - 1 in
        let lo', hi', count, pids' =
          Option.value ~default:(lo, hi, 0, []) (Hashtbl.find_opt shadowed page)
        in
        Hashtbl.replace shadowed page
          (min lo lo', max hi hi', count + 1, List.fold_left (fun acc p -> add_pid p acc) pids' pids))
    racy_words;
  let shadow =
    Hashtbl.fold
      (fun page (lo, hi, count, pids) fs ->
        {
          Findings.analyzer = "discipline";
          rule = "unsynchronized-shadow";
          severity = Findings.Warning;
          page;
          lo;
          hi;
          pids = List.sort_uniq compare pids;
          message =
            Printf.sprintf
              "Api.unsynchronized span covers %d word(s) that race outside the span" count;
          hint = "the annotation hides a real race, not a benign stale read; synchronize \
                  the other accesses";
        }
        :: fs)
      shadowed []
  in
  List.sort Findings.compare_findings (inconsistent @ no_writes @ shadow)
