(** Sharing-pattern linter: per-interval page classification plus
    trace-mined anti-patterns.

    Classifies every page, per barrier interval, from the typed accesses:
    single-writer, producer-consumer, migratory, falsely-shared (several
    processors writing pairwise-disjoint word ranges of one page) or
    true-shared.  The trace listener adds diff fragmentation,
    never-consumed write notices and lock contention.  All findings are
    advisory (warning/info): the program is correct, just paying LRC
    costs it could avoid. *)

type t

val create : segs:Tmk_check.Segments.t -> nprocs:int -> unit -> t

(** [access t ~pid kind ~addr ~width] records one typed access into the
    page's current barrier-interval epoch.  The caller filters
    [Api.unsynchronized] spans. *)
val access : t -> pid:int -> Tmk_check.Hooks.access_kind -> addr:int -> width:int -> unit

(** [listen t sink] registers the trace listener (diff creation, write
    notices, page faults, lock queueing) on the run's sink. *)
val listen : t -> Tmk_trace.Sink.t -> unit

type classification = {
  cl_page : int;
  cl_pattern : string;
      (** "single-writer" | "producer-consumer" | "migratory" |
          "falsely-shared" | "true-shared" | "read-only" *)
  cl_epochs : int;  (** barrier intervals in which the page was accessed *)
  cl_writers : int list;
  cl_readers : int list;
}

(** [classify t] — per-page classification rows, sorted by page.
    Finalizes any open intervals. *)
val classify : t -> classification list

(** [classification_table t] — the rows as a Tablefmt table. *)
val classification_table : t -> string

(** [findings t] — false-sharing warnings, fragmentation / dead-notice
    infos, lock-contention warnings, in canonical order. *)
val findings : t -> Findings.t list
