(* The unified findings model every analyzer reports through.

   One record shape, one severity scale, one canonical order — so the
   human table, the JSONL stream and the SARIF file are all views of the
   same sorted list, and "lint-clean" has a single meaning (no
   error-severity findings) across analyzers and backends. *)

type severity = Info | Warning | Error

type t = {
  analyzer : string;  (* "lockset" | "sharing" | "discipline" | "hb" *)
  rule : string;  (* stable rule id, e.g. "lockset-race" *)
  severity : severity;
  page : int;  (* -1 when the finding is not page-scoped (a lock, say) *)
  lo : int;  (* byte range within the page; -1..-1 when not byte-scoped *)
  hi : int;
  pids : int list;  (* processors involved, sorted ascending *)
  message : string;
  hint : string;  (* concrete remediation *)
}

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

(* Canonical order: severity (errors first), then location, then
   analyzer/rule, then the free text.  A total order over every field, so
   equal finding sets always render byte-identically. *)
let compare_findings a b =
  let cmp =
    List.find_opt (fun c -> c <> 0)
      [
        compare (severity_rank b.severity) (severity_rank a.severity);
        compare a.page b.page;
        compare a.lo b.lo;
        compare a.hi b.hi;
        compare a.analyzer b.analyzer;
        compare a.rule b.rule;
        compare a.pids b.pids;
        compare a.message b.message;
        compare a.hint b.hint;
      ]
  in
  match cmp with Some c -> c | None -> 0

let sort_dedup findings =
  List.sort_uniq compare_findings findings

let worst findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | Some s when severity_rank s >= severity_rank f.severity -> acc
      | _ -> Some f.severity)
    None findings

let has_errors findings = worst findings = Some Error

let location f =
  if f.page < 0 then "-"
  else if f.lo < 0 then string_of_int f.page
  else Printf.sprintf "%d:%d..%d" f.page f.lo f.hi

let pids_str f = String.concat "," (List.map (Printf.sprintf "p%d") f.pids)

let table findings =
  if findings = [] then "lint: no findings"
  else
    let rows =
      List.map
        (fun f ->
          [
            severity_name f.severity;
            f.analyzer;
            f.rule;
            location f;
            pids_str f;
            f.message;
            f.hint;
          ])
        findings
    in
    let count sev = List.length (List.filter (fun f -> f.severity = sev) findings) in
    Printf.sprintf "lint: %d error(s), %d warning(s), %d info\n\n%s" (count Error)
      (count Warning) (count Info)
      (Tmk_util.Tablefmt.render ~title:"Lint findings (page:bytes, word-granular)"
         ~header:[ "severity"; "analyzer"; "rule"; "page:bytes"; "procs"; "finding"; "hint" ]
         rows)

(* ---- JSON rendering (the same hand-rolled, byte-stable subset as
   Tmk_trace.Jsonl: objects of ints, strings and int arrays) ---- *)

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  escape_to b s;
  Buffer.add_char b '"'

let add_field b ~first k add_v =
  if not first then Buffer.add_char b ',';
  add_str b k;
  Buffer.add_char b ':';
  add_v ()

let to_jsonl_line f =
  let b = Buffer.create 160 in
  Buffer.add_char b '{';
  add_field b ~first:true "analyzer" (fun () -> add_str b f.analyzer);
  add_field b ~first:false "rule" (fun () -> add_str b f.rule);
  add_field b ~first:false "severity" (fun () -> add_str b (severity_name f.severity));
  add_field b ~first:false "page" (fun () -> Buffer.add_string b (string_of_int f.page));
  add_field b ~first:false "lo" (fun () -> Buffer.add_string b (string_of_int f.lo));
  add_field b ~first:false "hi" (fun () -> Buffer.add_string b (string_of_int f.hi));
  add_field b ~first:false "pids" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun i p ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int p))
        f.pids;
      Buffer.add_char b ']');
  add_field b ~first:false "message" (fun () -> add_str b f.message);
  add_field b ~first:false "hint" (fun () -> add_str b f.hint);
  Buffer.add_char b '}';
  Buffer.contents b

let to_jsonl findings =
  String.concat "" (List.map (fun f -> to_jsonl_line f ^ "\n") findings)

(* Decoder: the exact inverse of the encoder above; accepts precisely the
   subset it produces (flat object, int/string/int-array values). *)

exception Parse_error of string

let of_jsonl_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then line.[!pos] else '\255' in
  let advance () = incr pos in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_int () =
    let start = !pos in
    if peek () = '-' then advance ();
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start || (line.[start] = '-' && !pos = start + 1) then fail "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\255' -> fail "unterminated string"
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub line !pos 4)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          if code > 0xFF then fail "non-latin \\u escape";
          Buffer.add_char b (Char.chr code)
        | _ -> fail "unknown escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_ints () =
    expect '[';
    if peek () = ']' then begin
      advance ();
      []
    end
    else begin
      let items = ref [ parse_int () ] in
      let rec go () =
        match peek () with
        | ',' ->
          advance ();
          items := parse_int () :: !items;
          go ()
        | ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      go ();
      List.rev !items
    end
  in
  expect '{';
  let strs = Hashtbl.create 8 and ints = Hashtbl.create 8 in
  let pids = ref [] in
  (if peek () = '}' then advance ()
   else
     let rec go () =
       let k = parse_string () in
       expect ':';
       (match peek () with
       | '"' -> Hashtbl.replace strs k (parse_string ())
       | '[' -> pids := parse_ints ()
       | _ -> Hashtbl.replace ints k (parse_int ()));
       match peek () with
       | ',' ->
         advance ();
         go ()
       | '}' -> advance ()
       | _ -> fail "expected ',' or '}'"
     in
     go ());
  if !pos <> n then fail "trailing bytes after object";
  let str k =
    match Hashtbl.find_opt strs k with
    | Some v -> v
    | None -> fail (Printf.sprintf "missing string field %S" k)
  in
  let int k =
    match Hashtbl.find_opt ints k with
    | Some v -> v
    | None -> fail (Printf.sprintf "missing integer field %S" k)
  in
  let severity =
    match severity_of_string (str "severity") with
    | Some s -> s
    | None -> fail "unknown severity"
  in
  {
    analyzer = str "analyzer";
    rule = str "rule";
    severity;
    page = int "page";
    lo = int "lo";
    hi = int "hi";
    pids = !pids;
    message = str "message";
    hint = str "hint";
  }

let of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.length l > 0)
  |> List.map of_jsonl_line

(* ---- SARIF 2.1.0 ----

   One run, driver "tmk-lint", one rule object per distinct rule id, one
   result per finding.  Findings describe simulated DSM pages, not source
   lines; [uri] names the artifact the annotations should land on (the
   application's fixture file), with the page/byte location carried in
   the message text. *)

let sarif_level = function Info -> "note" | Warning -> "warning" | Error -> "error"

let to_sarif ?(uri = "README.md") findings =
  let b = Buffer.create 2048 in
  let add = Buffer.add_string b in
  let rules =
    List.sort_uniq compare
      (List.map (fun f -> (f.rule, f.analyzer)) findings)
  in
  add "{\"version\":\"2.1.0\",";
  add "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",";
  add "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"tmk-lint\",";
  add "\"informationUri\":\"https://github.com/treadmarks/treadmarks\",";
  add "\"version\":\"1.0.0\",\"rules\":[";
  List.iteri
    (fun i (rule, analyzer) ->
      if i > 0 then add ",";
      add "{\"id\":";
      add_str b rule;
      add ",\"shortDescription\":{\"text\":";
      add_str b (Printf.sprintf "%s analyzer: %s" analyzer rule);
      add "}}")
    rules;
  add "]}},\"results\":[";
  List.iteri
    (fun i f ->
      if i > 0 then add ",";
      add "{\"ruleId\":";
      add_str b f.rule;
      add ",\"level\":";
      add_str b (sarif_level f.severity);
      add ",\"message\":{\"text\":";
      let text =
        if f.page < 0 then Printf.sprintf "%s [%s] %s" f.message (pids_str f) f.hint
        else
          Printf.sprintf "page %s [%s]: %s. %s" (location f) (pids_str f) f.message
            f.hint
      in
      add_str b text;
      add "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
      add_str b uri;
      add "},\"region\":{\"startLine\":1}}}]}")
    findings;
  add "]}]}";
  Buffer.contents b
