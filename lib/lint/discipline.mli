(** Sync-discipline lint: how the locks and annotations are used, not
    whether the data races.

    Three heuristics (all warning/info severity): a lock whose writing
    critical sections touch inconsistent page sets is probably several
    locks rolled into one; a lock that never guards a write orders
    nothing under LRC; and an [Api.unsynchronized] span covering words
    the lockset analyzer found racy is an annotation hiding a bug. *)

type t

val create : nprocs:int -> unit -> t

val lock_acquired : t -> pid:int -> lock:int -> unit
val lock_release : t -> pid:int -> lock:int -> unit

(** [suppress t ~pid on] brackets an [Api.unsynchronized] span. *)
val suppress : t -> pid:int -> bool -> unit

(** [access t ~pid kind ~addr ~width] — unlike the other analyzers this
    one wants {e all} accesses, suppressed included: suppressed words are
    recorded for the shadow cross-reference, unsuppressed writes charge
    the open critical sections. *)
val access : t -> pid:int -> Tmk_check.Hooks.access_kind -> addr:int -> width:int -> unit

(** [findings ?racy_words t] — [racy_words] is {!Lockset.racy_words}
    output, enabling the unsynchronized-shadow check. *)
val findings : ?racy_words:int list -> t -> Findings.t list
