(** The sanitizer-suite driver: lockset race detection, sharing-pattern
    lints and sync-discipline lints over one unified findings model.

    One [Lint.t] rides along on one run, observing it through the generic
    checker hooks ({!Tmk_check.Hooks}) and the trace stream; at the end
    the enabled analyzers' findings merge into one severity-ranked list
    ({!Findings}), with the lockset analyzer's potential races
    deduplicated against the happens-before detector's confirmed ones.

    {[
      let lint = Lint.create ~nprocs () in
      let check =
        Tmk_check.Checker.create ~race ~hooks:[ Lint.hooks lint ]
          ~attach:[ Lint.attach lint ] ()
      in
      (* ... run with { cfg with check = Some check } ... *)
      print_string (Lint.report ~race lint)
    ]} *)

type analyzer = Lockset | Sharing | Discipline

val all_analyzers : analyzer list
val analyzer_name : analyzer -> string

(** [analyzers_of_string s] parses a comma-separated analyzer list; [""]
    and ["all"] mean every analyzer.  Raises [Invalid_argument] on an
    unknown name. *)
val analyzers_of_string : string -> analyzer list

type t

val create : ?analyzers:analyzer list -> nprocs:int -> unit -> t

(** [enabled t] — the analyzers this instance runs, in canonical order. *)
val enabled : t -> analyzer list

(** [hooks t] — the observer to pass to [Checker.create ~hooks]. *)
val hooks : t -> Tmk_check.Hooks.t

(** [attach t] — the trace-attach callback for [Checker.create ~attach]
    (the sharing analyzer's event listener). *)
val attach : t -> Tmk_trace.Sink.t -> unit

(** [findings ?race t] — every enabled analyzer's findings plus the HB
    detector's (analyzer "hb"), sorted and deduplicated.  Lockset rows
    that overlap a confirmed HB race are dropped. *)
val findings : ?race:Tmk_check.Race.t -> t -> Findings.t list

(** [classification_table t] — the sharing analyzer's per-page pattern
    table, when that analyzer is enabled. *)
val classification_table : t -> string option

(** [report ?race t] — the findings table plus the sharing
    classification. *)
val report : ?race:Tmk_check.Race.t -> t -> string
