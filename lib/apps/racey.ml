open Tmk_dsm
module Workload = Tmk_workload.Workload

type params = { items : int; buckets : int; seed : int64; flops_per_item : int }

let default = { items = 4_096; buckets = 8; seed = 77L; flops_per_item = 2 }

let value_range = 1_000_000

let pages_needed p =
  ((p.items * 8) + Tmk_mem.Vm.page_size - 1) / Tmk_mem.Vm.page_size + 3

let bucket_of p v =
  min (v * p.buckets / value_range) (p.buckets - 1)

let sequential p =
  let values = Workload.int_array ~n:p.items ~seed:p.seed in
  let hist = Array.make p.buckets 0 in
  Array.iter (fun v -> hist.(bucket_of p v) <- hist.(bucket_of p v) + 1) values;
  hist

(* Same structure as examples/histogram.ml up to the fold — and then the
   bug this fixture exists for: the shared histogram is updated with a
   plain read-modify-write, no lock.  Two processors' fold segments are
   both "after barrier <init>" with no sync edge between them, so every
   bucket word carries W/W and R/W conflicts the detector must flag; with
   an unlucky interleaving the final counts also drop increments, which
   is the paper's point about what LRC does to racy programs. *)
let parallel ?(collect = true) ctx p =
  let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
  let data = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx p.items in
  let hist = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx p.buckets in
  Api.bcast ctx (fun () ->
      let values = Workload.int_array ~n:p.items ~seed:p.seed in
      Array.iteri (fun i v -> Api.iset ctx data i v) values;
      for b = 0 to p.buckets - 1 do
        Api.iset ctx hist b 0
      done);
  let slice = (p.items + nprocs - 1) / nprocs in
  let lo = pid * slice in
  let hi = min (p.items - 1) (lo + slice - 1) in
  let local = Array.make p.buckets 0 in
  for i = lo to hi do
    let b = bucket_of p (Api.iget ctx data i) in
    local.(b) <- local.(b) + 1
  done;
  if hi >= lo then Api.compute_flops ctx ((hi - lo + 1) * p.flops_per_item);
  for b = 0 to p.buckets - 1 do
    if local.(b) > 0 then
      (* RACY: should be Api.with_lock ctx b (fun () -> ...) *)
      Api.iset ctx hist b (Api.iget ctx hist b + local.(b))
  done;
  Api.barrier ctx 1;
  if pid = 0 && collect then Some (Array.init p.buckets (fun b -> Api.iget ctx hist b))
  else None
