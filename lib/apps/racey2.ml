open Tmk_dsm

type params = { rounds : int; stagger_us : int; read_delay_us : int; writer_delay_us : int }

let default = { rounds = 3; stagger_us = 5_000; read_delay_us = 20_000; writer_delay_us = 50_000 }

let pages_needed _ = 4

(* The lockset analyzer's positive fixture: a race the happens-before
   detector misses because this schedule orders every conflicting pair by
   luck — through the lock-0 chain that all the counter increments form —
   while no lock ever protects the flag word itself.

   Choreography (virtual-time staggering makes it deterministic):

   - p0, at t=0: writes [flag] with no lock (the "fast path"), then runs
     its locked counter rounds.  Its last release precedes everyone
     else's first acquire.
   - p1 and p2, from t=stagger: one locked round, then a long pause, then
     an unprotected read of [flag], then the remaining rounds.  The pause
     keeps both reads clear of both processors' surrounding critical
     sections, so the two reads are concurrent — unordered with each
     other (benign: reads don't conflict) — which is what drives the
     word's lockset state to Shared with an empty candidate set.
   - the last processor, from t=writer_delay: its locked rounds, a locked
     read of the counter, and then — on the "rarely scheduled path" the
     counter value gates — an unprotected write of [flag].

   Happens-before: every conflicting pair on [flag] (p0's write vs the
   reads, the reads vs the last write, write vs write) is ordered through
   lock 0's release→acquire chain, so the HB detector reports nothing.
   Lockset: flag goes Exclusive(p0) → ownership transfer to p1 (ordered
   read) → Shared on p2's concurrent read, candidates ∅∩∅ = ∅ → the
   final write lands in Shared-Modified with an empty set: a potential
   race, reported.  Reorder the lock grants and the luck runs out — which
   is exactly the kind of bug the schedule-insensitive analyzer exists
   for.  Detection needs at least 4 processors (two concurrent readers
   distinct from both writers); fewer than that, the fixture still runs
   but every access chains into an ownership transfer. *)
let parallel ctx p =
  let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
  let flag = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx 1 in
  let counter = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx 1 in
  let last = nprocs - 1 in
  let bump () =
    Api.with_lock ctx 0 (fun () -> Api.iset ctx counter 0 (Api.iget ctx counter 0 + 1))
  in
  if pid = 0 then begin
    (* Fast path: publish the flag, no lock. *)
    Api.iset ctx flag 0 1;
    for _ = 1 to p.rounds do
      bump ()
    done
  end
  else if pid < last then begin
    Api.compute_ns ctx (p.stagger_us * 1_000);
    bump ();
    if pid <= 2 then begin
      Api.compute_ns ctx (p.read_delay_us * 1_000);
      ignore (Api.iget ctx flag 0)
    end;
    for _ = 2 to p.rounds do
      bump ()
    done
  end
  else begin
    Api.compute_ns ctx (p.writer_delay_us * 1_000);
    for _ = 1 to p.rounds do
      bump ()
    done;
    let c = Api.with_lock ctx 0 (fun () -> Api.iget ctx counter 0) in
    (* The "rare path": gated on shared state, runs last in this
       schedule, and writes the flag with no lock held. *)
    if c >= p.rounds then Api.iset ctx flag 0 2
  end;
  if pid = last then Some (Api.iget ctx counter 0) else None
