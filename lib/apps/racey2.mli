(** Racey2 — a race the happens-before detector misses and the lockset
    analyzer catches.

    The positive fixture for [lib/lint/lockset.ml]: a flag word written
    and read with no lock, in a schedule where the lock-0 chain formed by
    unrelated counter increments happens to order every conflicting pair.
    The HB detector is (correctly) silent — this execution really is
    race-free — but the program is not: no common lock protects the flag,
    and a different lock-grant order exposes the race.  The lockset
    analyzer reports it regardless of schedule.

    Detection needs at least 4 processors: two concurrent readers
    distinct from both writers.

    Not part of {!Tmk_harness.Harness.all_apps}: it exists to be caught,
    not benchmarked. *)

open Tmk_dsm

type params = {
  rounds : int;  (** locked counter increments per processor *)
  stagger_us : int;  (** delay before the middle processors start *)
  read_delay_us : int;  (** pause isolating the two unprotected reads *)
  writer_delay_us : int;  (** delay before the last processor starts *)
}

(** [default] — 3 rounds, 5/20/50 ms staggering. *)
val default : params

val pages_needed : params -> int

(** [parallel ctx p] — SPMD body; the final counter value on the last
    processor ([rounds * nprocs] when nothing was lost). *)
val parallel : Api.ctx -> params -> int option
