open Tmk_dsm
module Workload = Tmk_workload.Workload

type params = {
  nmol : int;
  steps : int;
  seed : int64;
  cutoff : float;
  flops_per_pair : int;
  flops_per_molecule : int;
}

let default =
  { nmol = 64; steps = 3; seed = 17L; cutoff = 2.2; flops_per_pair = 60; flops_per_molecule = 20 }

type result = { positions : (float * float * float) array; energy : float }

let dt = 0.002
let mass = 1.0

(* Force and energy sums are accumulated in 2^24 fixed point: integer
   addition commutes, so the totals are independent of the order in which
   processors win the per-molecule locks, and the parallel run reproduces
   the sequential one exactly. *)
let fix_scale = 16_777_216.0

let to_fix x = int_of_float (Float.round (x *. fix_scale))
let of_fix i = float_of_int i /. fix_scale

(* Softened Lennard-Jones force and potential between two points.
   Returns (fx, fy, fz, potential) acting on the first point. *)
let interaction ~cutoff (x1, y1, z1) (x2, y2, z2) =
  let dx = x1 -. x2 and dy = y1 -. y2 and dz = z1 -. z2 in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 > cutoff *. cutoff then None
  else begin
    let r2s = r2 +. 0.05 (* softening: molecules can start close *) in
    let inv2 = 1.0 /. r2s in
    let inv6 = inv2 *. inv2 *. inv2 in
    let inv12 = inv6 *. inv6 in
    let fmag = ((24.0 *. ((2.0 *. inv12) -. inv6)) *. inv2) *. 0.001 in
    let pot = 4.0 *. (inv12 -. inv6) *. 0.001 in
    Some (fmag *. dx, fmag *. dy, fmag *. dz, pot)
  end

let sequential p =
  let mols = Workload.molecules ~n:p.nmol ~seed:p.seed in
  let px = Array.map (fun m -> m.Workload.px) mols in
  let py = Array.map (fun m -> m.Workload.py) mols in
  let pz = Array.map (fun m -> m.Workload.pz) mols in
  let vx = Array.map (fun m -> m.Workload.vx) mols in
  let vy = Array.map (fun m -> m.Workload.vy) mols in
  let vz = Array.map (fun m -> m.Workload.vz) mols in
  let fx = Array.make p.nmol 0 and fy = Array.make p.nmol 0 and fz = Array.make p.nmol 0 in
  let potential = ref 0 in
  for _ = 1 to p.steps do
    Array.fill fx 0 p.nmol 0;
    Array.fill fy 0 p.nmol 0;
    Array.fill fz 0 p.nmol 0;
    potential := 0;
    for i = 0 to p.nmol - 1 do
      for j = i + 1 to p.nmol - 1 do
        match
          interaction ~cutoff:p.cutoff (px.(i), py.(i), pz.(i)) (px.(j), py.(j), pz.(j))
        with
        | None -> ()
        | Some (gx, gy, gz, pot) ->
          fx.(i) <- fx.(i) + to_fix gx;
          fy.(i) <- fy.(i) + to_fix gy;
          fz.(i) <- fz.(i) + to_fix gz;
          fx.(j) <- fx.(j) - to_fix gx;
          fy.(j) <- fy.(j) - to_fix gy;
          fz.(j) <- fz.(j) - to_fix gz;
          potential := !potential + to_fix pot
      done
    done;
    for i = 0 to p.nmol - 1 do
      vx.(i) <- vx.(i) +. (of_fix fx.(i) *. dt /. mass);
      vy.(i) <- vy.(i) +. (of_fix fy.(i) *. dt /. mass);
      vz.(i) <- vz.(i) +. (of_fix fz.(i) *. dt /. mass);
      px.(i) <- px.(i) +. (vx.(i) *. dt);
      py.(i) <- py.(i) +. (vy.(i) *. dt);
      pz.(i) <- pz.(i) +. (vz.(i) *. dt)
    done
  done;
  let kinetic = ref 0 in
  for i = 0 to p.nmol - 1 do
    kinetic :=
      !kinetic
      + to_fix (0.5 *. mass *. ((vx.(i) *. vx.(i)) +. (vy.(i) *. vy.(i)) +. (vz.(i) *. vz.(i))))
  done;
  {
    positions = Array.init p.nmol (fun i -> (px.(i), py.(i), pz.(i)));
    energy = of_fix (!potential + !kinetic);
  }

let pages_needed p =
  let bytes = (6 * p.nmol * 8) + (3 * p.nmol * 8) + 4096 in
  (bytes / Tmk_mem.Vm.page_size) + 6

(* Molecule locks are numbered from the molecule index, so their managers
   round-robin across processors exactly like TreadMarks lock managers. *)
let mol_lock i = i

(* Block ownership of molecules, as SPLASH distributes them. *)
let owned ~nmol ~nprocs ~pid =
  let per = nmol / nprocs and extra = nmol mod nprocs in
  let lo = (pid * per) + min pid extra in
  let hi = lo + per + (if pid < extra then 1 else 0) - 1 in
  (lo, hi)

let parallel ?(collect = true) ctx p =
  let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
  let n = p.nmol in
  let pos = Api.falloc ~align:Tmk_mem.Vm.page_size ctx (3 * n) in
  let vel = Api.falloc ~align:Tmk_mem.Vm.page_size ctx (3 * n) in
  let force = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx (3 * n) in
  Api.bcast ctx (fun () ->
      let mols = Workload.molecules ~n ~seed:p.seed in
      Array.iteri
        (fun i m ->
          Api.fset ctx pos (3 * i) m.Workload.px;
          Api.fset ctx pos ((3 * i) + 1) m.Workload.py;
          Api.fset ctx pos ((3 * i) + 2) m.Workload.pz;
          Api.fset ctx vel (3 * i) m.Workload.vx;
          Api.fset ctx vel ((3 * i) + 1) m.Workload.vy;
          Api.fset ctx vel ((3 * i) + 2) m.Workload.vz)
        mols);
  let lo, hi = owned ~nmol:n ~nprocs ~pid in
  let read_pos i =
    (Api.fget ctx pos (3 * i), Api.fget ctx pos ((3 * i) + 1), Api.fget ctx pos ((3 * i) + 2))
  in
  (* Private per-step force partials, flushed to the shared array under
     the per-molecule locks once per step.  This is the paper's "one
     simple modification to the original program to reduce the number of
     lock accesses" (§4.3): locking per interaction would acquire each
     lock thousands of times per second more. *)
  let partial = Array.make (3 * n) 0 in
  let touched = Array.make n false in
  let accumulate i (gx, gy, gz) sign =
    partial.(3 * i) <- partial.(3 * i) + (sign * to_fix gx);
    partial.((3 * i) + 1) <- partial.((3 * i) + 1) + (sign * to_fix gy);
    partial.((3 * i) + 2) <- partial.((3 * i) + 2) + (sign * to_fix gz);
    touched.(i) <- true
  in
  let flush_partials () =
    for i = 0 to n - 1 do
      if touched.(i) then begin
        Api.compute_flops ctx p.flops_per_molecule;
        Api.with_lock ctx (mol_lock i) (fun () ->
            for d = 0 to 2 do
              Api.iset ctx force ((3 * i) + d)
                (Api.iget ctx force ((3 * i) + d) + partial.((3 * i) + d))
            done);
        partial.(3 * i) <- 0;
        partial.((3 * i) + 1) <- 0;
        partial.((3 * i) + 2) <- 0;
        touched.(i) <- false
      end
    done
  in
  let barrier_id = ref 1 in
  let next_barrier () =
    let id = !barrier_id in
    incr barrier_id;
    Api.barrier ctx id
  in
  (* Only the final step's potential contributes to the reported energy
     (earlier steps' sums are transient), so it is kept locally and
     reduced once after the loop. *)
  let last_potential = ref 0 in
  for _step = 1 to p.steps do
    (* zero own molecules' forces *)
    for i = lo to hi do
      Api.iset ctx force (3 * i) 0;
      Api.iset ctx force ((3 * i) + 1) 0;
      Api.iset ctx force ((3 * i) + 2) 0
    done;
    next_barrier ();
    (* Pair interactions in SPLASH's owner-computes half-shell: the owner
       of molecule i computes its interactions with the next n/2 molecules
       (cyclically), so every unordered pair is computed exactly once and
       each molecule's force receives contributions from only the few
       processors whose blocks precede it.  Work is charged once per
       owned molecule to keep the event count manageable. *)
    let my_potential = ref 0 in
    let half = (n - 1) / 2 in
    let do_pair i j =
      match interaction ~cutoff:p.cutoff (read_pos i) (read_pos j) with
      | None -> ()
      | Some (gx, gy, gz, pot) ->
        accumulate i (gx, gy, gz) 1;
        accumulate j (gx, gy, gz) (-1);
        my_potential := !my_potential + to_fix pot
    in
    for i = lo to hi do
      let mine = ref 0 in
      for off = 1 to half do
        incr mine;
        do_pair i ((i + off) mod n)
      done;
      (* even n: the diametral pair belongs to the lower-numbered owner *)
      if n mod 2 = 0 && i < n / 2 then begin
        incr mine;
        do_pair i (i + (n / 2))
      end;
      Api.compute_flops ctx (!mine * p.flops_per_pair)
    done;
    flush_partials ();
    last_potential := !my_potential;
    next_barrier ();
    (* integrate own molecules *)
    for i = lo to hi do
      Api.compute_flops ctx p.flops_per_molecule;
      for d = 0 to 2 do
        let v =
          Api.fget ctx vel ((3 * i) + d)
          +. (of_fix (Api.iget ctx force ((3 * i) + d)) *. dt /. mass)
        in
        Api.fset ctx vel ((3 * i) + d) v;
        Api.fset ctx pos ((3 * i) + d) (Api.fget ctx pos ((3 * i) + d) +. (v *. dt))
      done
    done;
    next_barrier ()
  done;
  (* kinetic energy of own molecules *)
  let my_kinetic = ref 0 in
  for i = lo to hi do
    let vx = Api.fget ctx vel (3 * i)
    and vy = Api.fget ctx vel ((3 * i) + 1)
    and vz = Api.fget ctx vel ((3 * i) + 2) in
    my_kinetic := !my_kinetic + to_fix (0.5 *. mass *. ((vx *. vx) +. (vy *. vy) +. (vz *. vz)))
  done;
  (* Fixed-point sums reduced in pid order: integer addition commutes, so
     the energy matches the sequential run exactly (see [fix_scale]). *)
  let pot_total = Api.reduce_i ctx ( + ) !last_potential in
  let kin_total = Api.reduce_i ctx ( + ) !my_kinetic in
  if pid = 0 && collect then
    Some { positions = Array.init n read_pos; energy = of_fix (pot_total + kin_total) }
  else None
