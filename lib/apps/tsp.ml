open Tmk_dsm
module Workload = Tmk_workload.Workload

type params = { ncities : int; prefix_depth : int; seed : int64; flops_per_node : int }

let default = { ncities = 11; prefix_depth = 3; seed = 7L; flops_per_node = 40 }

type result = { best : int; nodes_expanded : int }

let lock_queue = 0
let lock_bound = 1

let pages_needed p =
  let n = p.ncities in
  (* distance matrix + tasks + bound + counters, all small *)
  let task_count =
    let rec perms depth acc = if depth = 0 then acc else perms (depth - 1) (acc * (n - depth)) in
    perms (p.prefix_depth - 1) 1
  in
  ignore task_count;
  (* the distance matrix plus three page-aligned singleton structures *)
  ((n * n * 8) / Tmk_mem.Vm.page_size) + 6

(* Nearest-neighbour heuristic: the initial bound. *)
let heuristic_bound dist n =
  let visited = Array.make n false in
  visited.(0) <- true;
  let total = ref 0 and current = ref 0 in
  for _ = 1 to n - 1 do
    let best_city = ref (-1) and best_d = ref max_int in
    for c = 0 to n - 1 do
      if (not visited.(c)) && dist.(!current).(c) < !best_d then begin
        best_city := c;
        best_d := dist.(!current).(c)
      end
    done;
    visited.(!best_city) <- true;
    total := !total + !best_d;
    current := !best_city
  done;
  !total + dist.(!current).(0)

(* Enumerate tour prefixes of the given length starting at city 0, in a
   fixed order; these are the work-queue tasks. *)
let make_tasks n depth =
  let tasks = ref [] in
  let rec extend prefix used len =
    if len = depth then tasks := List.rev prefix :: !tasks
    else
      for c = 1 to n - 1 do
        if not (List.mem c used) then extend (c :: prefix) (c :: used) (len + 1)
      done
  in
  extend [ 0 ] [ 0 ] 1;
  List.rev !tasks

(* Depth-first search below a prefix.  [read_bound]/[try_update] abstract
   the shared bound so the same search serves both implementations;
   [charge] accounts per-node work. *)
let search ~dist ~n ~read_bound ~try_update ~charge prefix =
  let nodes = ref 0 in
  let visited = Array.make n false in
  let rec dfs city len path_cities =
    incr nodes;
    charge ();
    if len >= read_bound () then () (* prune on the (possibly stale) bound *)
    else if path_cities = n then begin
      let tour = len + dist.(city).(0) in
      try_update tour
    end
    else
      for next = 1 to n - 1 do
        if not visited.(next) then begin
          visited.(next) <- true;
          dfs next (len + dist.(city).(next)) (path_cities + 1);
          visited.(next) <- false
        end
      done
  in
  let rec prefix_len = function
    | [] | [ _ ] -> 0
    | a :: (b :: _ as rest) -> dist.(a).(b) + prefix_len rest
  in
  List.iter (fun c -> visited.(c) <- true) prefix;
  let last = List.nth prefix (List.length prefix - 1) in
  dfs last (prefix_len prefix) (List.length prefix);
  !nodes

(* The initial bound is deliberately loose (a long artificial tour rather
   than the nearest-neighbour heuristic): early tours then improve the
   bound many times, which is what makes the timeliness of bound
   propagation — the LRC/ERC difference of section 5.2 — observable. *)
let initial_bound dist n = 2 * heuristic_bound dist n

let sequential p =
  let _, dist = Workload.cities ~n:p.ncities ~seed:p.seed in
  let n = p.ncities in
  let best = ref (initial_bound dist n) in
  let tasks = make_tasks n p.prefix_depth in
  let nodes = ref 0 in
  List.iter
    (fun prefix ->
      nodes :=
        !nodes
        + search ~dist ~n
            ~read_bound:(fun () -> !best)
            ~try_update:(fun tour -> if tour < !best then best := tour)
            ~charge:(fun () -> ())
            prefix)
    tasks;
  { best = !best; nodes_expanded = !nodes }

let parallel ctx p =
  let n = p.ncities in
  let pid = Api.pid ctx and nprocs = Api.nprocs ctx in
  let _, dist = Workload.cities ~n ~seed:p.seed in
  let tasks = make_tasks n p.prefix_depth in
  let ntasks = List.length tasks in
  (* Shared state: distance matrix (read-only after init), the task
     cursor, the bound, and per-processor node counters. *)
  let sh_dist = Api.ialloc ctx (n * n) in
  let sh_cursor = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx 1 in
  let sh_bound = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx 1 in
  let sh_nodes = Api.ialloc ~align:Tmk_mem.Vm.page_size ctx nprocs in
  if pid = 0 then begin
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Api.iset ctx sh_dist ((i * n) + j) dist.(i).(j)
      done
    done;
    Api.iset ctx sh_cursor 0 0;
    Api.iset ctx sh_bound 0 (initial_bound dist n);
    for q = 0 to nprocs - 1 do
      Api.iset ctx sh_nodes q 0
    done
  end;
  Api.barrier ctx 0;
  (* Cache the read-only matrix locally, as the real program's loads
     would after the first fault per page. *)
  let local_dist =
    Array.init n (fun i -> Array.init n (fun j -> Api.iget ctx sh_dist ((i * n) + j)))
  in
  let task_arr = Array.of_list tasks in
  let my_nodes = ref 0 in
  let rec work () =
    let idx =
      Api.with_lock ctx lock_queue (fun () ->
          let i = Api.iget ctx sh_cursor 0 in
          if i < ntasks then Api.iset ctx sh_cursor 0 (i + 1);
          i)
    in
    if idx < ntasks then begin
      let expanded =
        search ~dist:local_dist ~n
          ~read_bound:(fun () ->
            (* ordinary, unsynchronized read: the §5.2 behaviour — a stale
               bound only costs extra search, so the race is the
               algorithm's design and is annotated as such *)
            Api.unsynchronized ctx (fun () -> Api.iget ctx sh_bound 0))
          ~try_update:(fun tour ->
            Api.with_lock ctx lock_bound (fun () ->
                if tour < Api.iget ctx sh_bound 0 then Api.iset ctx sh_bound 0 tour))
          ~charge:(fun () -> Api.compute_flops ctx p.flops_per_node)
          task_arr.(idx)
      in
      my_nodes := !my_nodes + expanded;
      work ()
    end
  in
  work ();
  Api.iset ctx sh_nodes pid !my_nodes;
  Api.barrier ctx 1;
  if pid = 0 then begin
    let total = ref 0 in
    for q = 0 to nprocs - 1 do
      total := !total + Api.iget ctx sh_nodes q
    done;
    Some { best = Api.iget ctx sh_bound 0; nodes_expanded = !total }
  end
  else None
