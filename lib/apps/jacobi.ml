open Tmk_dsm
module Workload = Tmk_workload.Workload
module Vm = Tmk_mem.Vm

type params = { rows : int; cols : int; iters : int; seed : int64; flops_per_point : int }

let default = { rows = 96; cols = 64; iters = 12; seed = 11L; flops_per_point = 5 }

let pages_needed p =
  (* two grids of rows*cols doubles, each page-aligned *)
  let grid_bytes = p.rows * p.cols * 8 in
  (2 * ((grid_bytes + Vm.page_size - 1) / Vm.page_size)) + 2

let checksum grid =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 grid

(* One relaxation of the interior of [src] into [dst]. *)
let relax_row ~cols ~get ~set r =
  for c = 1 to cols - 2 do
    set r c (0.25 *. (get (r - 1) c +. get (r + 1) c +. get r (c - 1) +. get r (c + 1)))
  done

let sequential p =
  let a = Workload.grid ~rows:p.rows ~cols:p.cols ~seed:p.seed in
  let b = Array.map Array.copy a in
  let src = ref a and dst = ref b in
  for _ = 1 to p.iters do
    let s = !src and d = !dst in
    for r = 1 to p.rows - 2 do
      relax_row ~cols:p.cols ~get:(fun r c -> s.(r).(c)) ~set:(fun r c v -> d.(r).(c) <- v) r
    done;
    let tmp = !src in
    src := !dst;
    dst := tmp
  done;
  !src

(* Split the interior rows [1, rows-2] into contiguous blocks. *)
let block ~rows ~nprocs ~pid =
  let interior = rows - 2 in
  let per = interior / nprocs and extra = interior mod nprocs in
  let lo = 1 + (pid * per) + min pid extra in
  let hi = lo + per + (if pid < extra then 1 else 0) - 1 in
  (lo, hi)

let parallel ?(collect = true) ctx p =
  let n = Api.nprocs ctx and pid = Api.pid ctx in
  let grid_a = Api.falloc ~align:Vm.page_size ctx (p.rows * p.cols) in
  let grid_b = Api.falloc ~align:Vm.page_size ctx (p.rows * p.cols) in
  let idx r c = (r * p.cols) + c in
  Api.bcast ctx (fun () ->
      let init = Workload.grid ~rows:p.rows ~cols:p.cols ~seed:p.seed in
      for r = 0 to p.rows - 1 do
        for c = 0 to p.cols - 1 do
          Api.fset ctx grid_a (idx r c) init.(r).(c);
          Api.fset ctx grid_b (idx r c) init.(r).(c)
        done
      done);
  let lo, hi = block ~rows:p.rows ~nprocs:n ~pid in
  let src = ref grid_a and dst = ref grid_b in
  for iter = 1 to p.iters do
    let s = !src and d = !dst in
    for r = lo to hi do
      relax_row ~cols:p.cols
        ~get:(fun r c -> Api.fget ctx s (idx r c))
        ~set:(fun r c v -> Api.fset ctx d (idx r c) v)
        r;
      Api.compute_flops ctx ((p.cols - 2) * p.flops_per_point)
    done;
    Api.barrier ctx iter;
    let tmp = !src in
    src := !dst;
    dst := tmp
  done;
  if pid = 0 && collect then begin
    let final = !src in
    Some (Array.init p.rows (fun r -> Array.init p.cols (fun c -> Api.fget ctx final (idx r c))))
  end
  else None
