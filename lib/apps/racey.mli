(** Racey — a deliberately data-racy histogram.

    The positive fixture for the race detector ([lib/check/race.ml]):
    structurally the private-accumulation histogram of
    [examples/histogram.ml], except the fold into the shared buckets is a
    plain unlocked read-modify-write.  Every bucket word is written by
    every non-empty processor with no ordering between them, so the
    detector must report W/W and R/W races on the histogram page — and
    under an unlucky schedule the run really does lose increments, which
    is what lazy release consistency does to racy programs (§2's DRF
    assumption).

    Not part of {!Tmk_harness.Harness.all_apps}: it exists to be caught,
    not benchmarked. *)

open Tmk_dsm

type params = {
  items : int;
  buckets : int;  (** all bucket counters share one page *)
  seed : int64;
  flops_per_item : int;
}

(** [default] — 4K items, 8 buckets. *)
val default : params

val pages_needed : params -> int

(** [sequential p] — the correct bucket counts. *)
val sequential : params -> int array

(** [parallel ctx p] — SPMD body; bucket counts on processor 0 (possibly
    wrong — that is the point). *)
val parallel : ?collect:bool -> Api.ctx -> params -> int array option
