open Tmk_sim

type network = Atm | Ethernet
type protocol = Aal34 | Udp

type t = {
  network : network;
  protocol : protocol;
  send_cpu : Vtime.t;
  recv_cpu : Vtime.t;
  per_byte_send_cpu : Vtime.t;
  per_byte_recv_cpu : Vtime.t;
  interrupt_cpu : Vtime.t;
  resume_cpu : Vtime.t;
  sigio_dispatch_cpu : Vtime.t;
  wire_latency : Vtime.t;
  wire_ns_per_byte : int;
  header_bytes : int;
  min_frame_bytes : int;
  shared_medium : bool;
  busy_access_delay : Vtime.t;
  loss_rate : float;
  retransmit_timeout : Vtime.t;
  retransmit_backoff_cap : Vtime.t;
  max_retransmits : int;
}

(* Calibration: see the interface comment.  The per-byte CPU figures are
   chosen so the 4096-byte remote page fault lands on the paper's 2792 µs
   (programmed I/O makes the host touch every byte on both sides). *)
let atm_aal34 =
  {
    network = Atm;
    protocol = Aal34;
    send_cpu = Vtime.us 80;
    recv_cpu = Vtime.us 80;
    per_byte_send_cpu = Vtime.ns 200;
    per_byte_recv_cpu = Vtime.ns 200;
    interrupt_cpu = Vtime.us 40;
    resume_cpu = Vtime.us 40;
    sigio_dispatch_cpu = Vtime.us 125;
    wire_latency = Vtime.us 10;
    wire_ns_per_byte = 80 (* 100 Mbps *);
    header_bytes = 8 (* AAL3/4 CPCS header/trailer *);
    min_frame_bytes = 53 (* one ATM cell *);
    shared_medium = false;
    busy_access_delay = Vtime.zero;
    loss_rate = 0.0;
    retransmit_timeout = Vtime.ms 20;
    retransmit_backoff_cap = Vtime.ms 320;
    max_retransmits = 12;
  }

(* UDP/IP on the same wire: extra protocol-stack CPU per message on both
   sides (checksums, headers, socket demultiplexing).  The value is fitted
   to Figure 8's Water execution times (15.0 s AAL3/4 vs 17.5 s UDP). *)
let udp_extra = Vtime.us 55

let atm_udp =
  {
    atm_aal34 with
    protocol = Udp;
    send_cpu = Vtime.add atm_aal34.send_cpu udp_extra;
    recv_cpu = Vtime.add atm_aal34.recv_cpu udp_extra;
    header_bytes = 28 (* UDP + IP *);
    (* The UDP handler multiplexes one socket, avoiding AAL3/4's select,
       but pays the IP input queue: net dispatch cost comparable. *)
  }

let ethernet_udp =
  {
    atm_udp with
    network = Ethernet;
    wire_ns_per_byte = 800 (* 10 Mbps *);
    wire_latency = Vtime.us 25;
    header_bytes = 42 (* UDP + IP + Ethernet *);
    min_frame_bytes = 64;
    shared_medium = true;
    busy_access_delay = Vtime.us 250;
  }

let of_names ~network ~protocol =
  match (network, protocol) with
  | Atm, Aal34 -> atm_aal34
  | Atm, Udp -> atm_udp
  | Ethernet, Udp -> ethernet_udp
  | Ethernet, Aal34 -> invalid_arg "Params.of_names: AAL3/4 requires the ATM LAN"

let with_loss t rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Params.with_loss: rate in [0,1)";
  { t with loss_rate = rate }

(* Exponential backoff, capped: 20, 40, 80, ... ms.  [attempt] counts
   transmissions already made, so the first timer uses the base timeout. *)
let retransmit_delay t ~attempt =
  let rec grow d k = if k <= 0 || d >= t.retransmit_backoff_cap then d else grow (Vtime.scale d 2) (k - 1) in
  Vtime.min t.retransmit_backoff_cap (grow t.retransmit_timeout (attempt - 1))

let frame_bytes t payload = max t.min_frame_bytes (payload + t.header_bytes)

let wire_time t payload =
  Vtime.add t.wire_latency (Vtime.ns (frame_bytes t payload * t.wire_ns_per_byte))

let send_cost t payload =
  Vtime.add t.send_cpu (Vtime.scale t.per_byte_send_cpu payload)

let recv_cost t payload =
  Vtime.add t.recv_cpu (Vtime.scale t.per_byte_recv_cpu payload)

let deliver_blocked_cpu t = Vtime.add t.interrupt_cpu t.resume_cpu

let deliver_handler_cpu t ~fresh =
  if fresh then Vtime.add t.interrupt_cpu t.sigio_dispatch_cpu else t.interrupt_cpu

let network_name = function Atm -> "ATM" | Ethernet -> "Ethernet"
let protocol_name = function Aal34 -> "AAL3/4" | Udp -> "UDP"

let name t =
  Printf.sprintf "%s-%s" (network_name t.network) (protocol_name t.protocol)
