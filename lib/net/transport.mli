(** Simulated interprocessor communication.

    Models the path a TreadMarks message takes on the real system:

    + sender CPU: kernel send plus programmed-I/O per-byte cost, charged to
      [Unix_comm] in the caller's context (application process or SIGIO
      handler);
    + the medium: per-source link arbitration on the ATM switch, or a
      single shared bus on the Ethernet; frames occupy the medium for
      [frame_bytes × wire_ns_per_byte] and are then subject to the
      transport's {!Fault_plan} — loss, duplication, reordering, node
      stalls, partitioned peers;
    + receiver CPU: either the SIGIO-handler path (interrupt + signal
      dispatch + receive; back-to-back messages skip the dispatch, see
      {!Tmk_sim.Engine.hfresh}) for request messages, or the
      blocked-receive path (interrupt + resume + receive) for replies to a
      waiting process.

    {2 Reliability}

    The real TreadMarks runs "operation-specific, user-level protocols on
    top of UDP/IP and AAL3/4 to insure delivery" (§3.7).  Here, when the
    fault plan cannot affect delivery ({!Fault_plan.is_faulty} is false —
    the default) frames always arrive and no acknowledgements are sent.
    Otherwise every one-way message is acknowledged and retransmitted on a
    timer with exponential backoff (doubling from
    [Params.retransmit_timeout] up to [Params.retransmit_backoff_cap]);
    duplicates — whether retransmission- or medium-induced — are
    suppressed by message id, giving exactly-once delivery of the
    [deliver] callback.  The suppression table is pruned as soon as a
    message's ack has landed and its last in-flight copy has been
    filtered, so it holds only in-flight messages.  A message still
    unacknowledged after its retry budget ([Params.max_retransmits]
    transmissions, or the smaller [?retry_budget] given at the send) makes
    the sender {e suspect} the peer: the event is counted, traced
    ({!Tmk_trace.Event.Peer_suspect}) and reported through the
    {!on_suspect} callback so the DSM layer's failure detector can react.
    Without a registered callback the run is terminated cleanly
    ({!Engine.request_stop}) — never by an exception out of a timer
    callback, which would tear the simulation mid-event.

    Crash-stop failures ({!Fault_plan.with_crash}, injected via
    {!Engine.mark_crashed}) silence an endpoint: frames to or from a
    crashed processor are dropped by the medium, and a crashed sender
    neither retransmits nor suspects anyone.

    All fault draws come from the transport's seeded PRNG: a (seed, plan)
    pair reproduces the run bit-for-bit.

    Message payloads are OCaml closures/values; the [bytes] argument is
    the payload size used for costing and statistics, which the DSM layer
    computes from the protocol encoding it would use on the wire. *)

open Tmk_sim

type t

(** [create ~engine ~params ~prng] builds a transport over [engine]'s
    processors.  [prng] drives the fault draws.  [?plan] installs a fault
    schedule (default {!Fault_plan.none}); a legacy [Params.with_loss]
    rate is folded into the effective plan, whichever is larger.

    [?batching] (default [true]) controls how multi-part messages (the
    [?parts] argument of the send functions) reach the wire: a batching
    transport coalesces all parts into one frame and counts the saved
    frames in {!frames_coalesced}; an unbatched transport fragments the
    payload into [parts] back-to-back frames, each paying the per-frame
    header and minimum-size overhead plus the fixed kernel send cost.
    Either way the burst shares a single fate (one loss/duplication/
    reordering draw, one delivery) so the two modes consume identical
    PRNG streams and each is bit-deterministic for a given seed. *)
val create :
  ?plan:Fault_plan.t ->
  ?batching:bool ->
  engine:Engine.t ->
  params:Params.t ->
  prng:Tmk_util.Prng.t ->
  unit ->
  t

val engine : t -> Engine.t
val params : t -> Params.t

(** [plan t] is the effective fault plan (after folding in
    [Params.loss_rate]). *)
val plan : t -> Fault_plan.t

(** [reliable t] — true when the plan engages the ack/retransmit
    protocol. *)
val reliable : t -> bool

(** [batching t] — whether multi-part messages coalesce into single
    frames (see {!create}). *)
val batching : t -> bool

(** [on_suspect t f] registers the suspicion callback: [f] fires (from a
    timer callback — no process context, no CPU charges) each time a
    message from [src] to [dst] exhausts its retry budget.  One callback;
    a later registration replaces the earlier. *)
val on_suspect :
  t -> (src:int -> dst:int -> label:string -> attempts:int -> unit) -> unit

(** [suspicions t] — how many retry budgets have been exhausted. *)
val suspicions : t -> int

(** [send t ~src ~dst ~bytes ~deliver] — one-way message from the
    application process currently running on [src].  Charges send CPU via
    {!Engine.advance}, so it must be called from process context.
    [deliver] runs in a handler context on [dst] (exactly once, even
    under faults).

    [?parts] (default 1, every send function) declares how many logical
    protocol units the message carries; see {!create} for how batched and
    unbatched transports put them on the wire. *)
val send :
  ?label:string ->
  ?parts:int ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  deliver:(Engine.hctx -> unit) ->
  unit

(** [hsend t h ~dst ~bytes ~deliver] — one-way message sent from handler
    context [h]; departs at [hnow h] after the send CPU charge. *)
val hsend :
  ?label:string ->
  ?parts:int ->
  t ->
  Engine.hctx ->
  dst:Engine.pid ->
  bytes:int ->
  deliver:(Engine.hctx -> unit) ->
  unit

(** [notify t ~src ~dst ~bytes ~deliver] — context-free one-way message
    departing at the current simulation instant.  Callable from scheduled
    thunks and recovery code where neither process nor handler context
    exists; sender CPU is not charged (delivery still charges the
    receiver).  [?retry_budget] caps this message's transmissions below
    [Params.max_retransmits] — the failure detector's probes use a small
    budget to detect silence quickly. *)
val notify :
  ?label:string ->
  ?parts:int ->
  ?retry_budget:int ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  deliver:(Engine.hctx -> unit) ->
  unit

(** Mailbox for messages that wake a blocked process (replies, lock
    grants, barrier releases). *)
type 'a mailbox

(** [mailbox ()] makes an empty mailbox. *)
val mailbox : unit -> 'a mailbox

(** [mailbox_filled mb] — whether a value has already landed in [mb]
    (recovery uses this to tell settled operations from stuck ones). *)
val mailbox_filled : 'a mailbox -> bool

(** [send_value t ~src ~dst ~bytes mb v] — one-way message carrying [v]
    into [mb] on [dst]; application-context variant. *)
val send_value :
  ?label:string ->
  ?parts:int ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  'a mailbox ->
  'a ->
  unit

(** [hsend_value t h ~dst ~bytes mb v] — handler-context variant. *)
val hsend_value :
  ?label:string ->
  ?parts:int ->
  t ->
  Engine.hctx ->
  dst:Engine.pid ->
  bytes:int ->
  'a mailbox ->
  'a ->
  unit

(** [await_value t mb] — process context: block until a value lands in
    [mb], charge the blocked-receive delivery CPU, and return it.  A
    mailbox delivers exactly one value. *)
val await_value : t -> 'a mailbox -> 'a

(** Outstanding reply of an asynchronous {!call}. *)
type 'a promise

(** [call t ~src ~dst ~bytes ~serve] — request/response: [serve] runs in a
    handler context on [dst] and returns [(reply_bytes, reply)]; the reply
    is sent back to [src].  Returns immediately; several calls may be
    outstanding (the access-miss protocol fetches diffs "in parallel",
    §3.5). *)
val call :
  ?label:string ->
  ?parts:int ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  serve:(Engine.hctx -> int * 'a) ->
  'a promise

(** [await_reply t p] — process context: block for the reply, charge
    delivery CPU, return it. *)
val await_reply : t -> 'a promise -> 'a

(** [rpc t ~src ~dst ~bytes ~serve] is [await_reply t (call t ...)]. *)
val rpc :
  ?label:string ->
  t ->
  src:Engine.pid ->
  dst:Engine.pid ->
  bytes:int ->
  serve:(Engine.hctx -> int * 'a) ->
  'a

(** {2 Statistics}

    Counters cover every frame handed to the medium by a sender,
    including retransmissions and acknowledgements; bytes are on-wire
    frame sizes (payload + protocol header, padded to the minimum frame).
    Extra copies injected by a duplicating medium are counted separately
    (they are not sender traffic). *)

val messages_sent : t -> int
val bytes_sent : t -> int
val messages_of : t -> Engine.pid -> int
val bytes_of : t -> Engine.pid -> int

(** [retransmissions t] — frames re-sent by the reliability protocol. *)
val retransmissions : t -> int

(** [frames_coalesced t] — frames saved by batching: the sum of
    [parts − 1] over every multi-part message a batching transport put on
    the wire as a single frame.  For identical protocol activity,
    [unbatched.messages = batched.messages + batched.frames_coalesced].
    Always zero on an unbatched transport. *)
val frames_coalesced : t -> int

(** [duplicates_injected t] — extra copies the medium fabricated. *)
val duplicates_injected : t -> int

(** [duplicates_suppressed t] — deliveries filtered by the duplicate
    table (or an already-filled mailbox). *)
val duplicates_suppressed : t -> int

(** [dedup_entries t] — live entries in the duplicate-suppression table;
    zero once a run has quiesced (every message acked and its copies
    accounted for). *)
val dedup_entries : t -> int

(** One row of {!message_mix}: per-label frame/byte totals plus how many
    of the frames were retransmissions and how many extra copies the
    medium injected for that label. *)
type mix_entry = {
  mix_label : string;
  mix_msgs : int;
  mix_bytes : int;
  mix_retrans : int;
  mix_dups : int;
}

(** [message_mix t] — traffic per message label (the [?label] given at
    each send; replies get ["<label>-reply"], transport acknowledgements
    ["ack"], unlabelled traffic ["other"]), most frequent first. *)
val message_mix : t -> mix_entry list

(** [reset_stats t] zeroes all counters and clears the
    duplicate-suppression table (call only between quiesced phases:
    clearing while messages are in flight would defeat dedup). *)
val reset_stats : t -> unit
