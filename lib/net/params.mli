(** Communication cost model, calibrated to the paper's §4.2 measurements.

    The paper reports, for DECstation-5000/240s on a 100 Mbps ATM LAN with
    the AAL3/4 adaptation-layer protocol:

    - minimum round trip (blocking receive): 500 µs, of which 80 µs is the
      kernel send, 80 µs the kernel receive (per side), and the remaining
      180 µs "divided between wire time, interrupt processing and resuming
      the processor that blocked in receive";
    - round trip with SIGIO handlers on both ends: 670 µs (so a handler
      delivery costs ~85 µs more than waking a blocked receiver);
    - remote lock acquisition: 827 µs (manager was last holder) and
      1149 µs (one forwarding hop);
    - 8-processor barrier: 2186 µs;
    - remote fault fetching a 4096-byte page: 2792 µs.

    The decomposition used here (all CPU values; wire time is separate):

    {v
      one-way, blocked receiver  = send(80) + wire(10)
                                 + interrupt(40) + resume(40) + recv(80)
                                 = 250 µs  →  round trip 500 µs
      one-way, handler receiver  = send(80) + wire(10)
                                 + interrupt(40) + sigio(125) + recv(80)
                                 = 335 µs  →  round trip 670 µs
    v}

    Page transfers additionally pay per-byte costs: the Fore interface does
    {e programmed I/O}, so the host CPU touches every byte on both send and
    receive, besides the 0.08 µs/byte wire occupancy of a 100 Mbps link.

    UDP/IP pays extra protocol-stack CPU per message relative to AAL3/4
    (Figure 8: Water rises from 15.0 s to 17.5 s on the same wire).  The
    10 Mbps Ethernet is additionally a shared medium: one frame in flight
    cluster-wide, which is what saturates under Water (27.5 s). *)

open Tmk_sim

(** Transmission medium. *)
type network =
  | Atm  (** 100 Mbps point-to-point switch: per-source links transmit in parallel *)
  | Ethernet  (** 10 Mbps shared bus: a single frame in flight cluster-wide *)

(** Message protocol. *)
type protocol =
  | Aal34  (** connection-oriented ATM adaptation layer, bypassing TCP/IP *)
  | Udp  (** UDP/IP socket path *)

type t = {
  network : network;
  protocol : protocol;
  send_cpu : Vtime.t;  (** kernel send path, per message *)
  recv_cpu : Vtime.t;  (** kernel receive path, per message *)
  per_byte_send_cpu : Vtime.t;  (** programmed-I/O cost per payload byte, send side *)
  per_byte_recv_cpu : Vtime.t;  (** programmed-I/O cost per payload byte, receive side *)
  interrupt_cpu : Vtime.t;  (** end-of-message interrupt processing *)
  resume_cpu : Vtime.t;  (** waking a process blocked in receive *)
  sigio_dispatch_cpu : Vtime.t;  (** signal delivery + handler entry/exit (fresh only) *)
  wire_latency : Vtime.t;  (** propagation plus switch latency *)
  wire_ns_per_byte : int;  (** medium occupancy per frame byte *)
  header_bytes : int;  (** protocol header added to every message *)
  min_frame_bytes : int;  (** short frames are padded to this size *)
  shared_medium : bool;  (** true: one frame in flight cluster-wide *)
  busy_access_delay : Vtime.t;
      (** extra medium-access delay paid by a frame that finds the medium
          busy: CSMA/CD deference, collisions and binary exponential
          backoff waste air time on a loaded Ethernet (zero on the
          point-to-point ATM switch) *)
  loss_rate : float;  (** probability a frame is dropped (default 0) *)
  retransmit_timeout : Vtime.t;  (** user-level protocol timer, first attempt *)
  retransmit_backoff_cap : Vtime.t;
      (** ceiling of the exponential backoff: successive retransmission
          timers double from [retransmit_timeout] up to this cap *)
  max_retransmits : int;
      (** retry budget per message; once exhausted the transport raises
          a per-peer suspicion ({!Transport.on_suspect}) instead of
          retransmitting forever *)
}

(** [atm_aal34] — the paper's primary configuration. *)
val atm_aal34 : t

(** [atm_udp] — UDP/IP over the ATM LAN. *)
val atm_udp : t

(** [ethernet_udp] — UDP/IP over the 10 Mbps Ethernet. *)
val ethernet_udp : t

(** [of_names ~network ~protocol] selects a preset.
    @raise Invalid_argument on [Ethernet]+[Aal34], which the paper's
    hardware could not run either. *)
val of_names : network:network -> protocol:protocol -> t

(** [with_loss t rate] enables frame loss (testing the user-level
    reliability protocol).  Shorthand for a {!Fault_plan} with only a
    global loss rate: the transport folds it into its effective plan. *)
val with_loss : t -> float -> t

(** [retransmit_delay t ~attempt] — the timer armed after transmission
    number [attempt] (1-based): [retransmit_timeout] doubled per further
    attempt, capped at [retransmit_backoff_cap]. *)
val retransmit_delay : t -> attempt:int -> Vtime.t

(** [frame_bytes t payload] is the on-wire frame size for a [payload]-byte
    message: header plus padding to the minimum frame. *)
val frame_bytes : t -> int -> int

(** [wire_time t payload] is the medium occupancy of one frame. *)
val wire_time : t -> int -> Vtime.t

(** [send_cost t payload] is the sender-side CPU per message. *)
val send_cost : t -> int -> Vtime.t

(** [recv_cost t payload] is the receiver-side CPU per message, excluding
    delivery (interrupt/sigio/resume) costs. *)
val recv_cost : t -> int -> Vtime.t

(** [deliver_blocked_cpu t] is interrupt + resume: CPU consumed delivering
    to a process blocked in receive. *)
val deliver_blocked_cpu : t -> Vtime.t

(** [deliver_handler_cpu t ~fresh] is interrupt (+ signal dispatch when
    [fresh]) consumed delivering to the SIGIO handler. *)
val deliver_handler_cpu : t -> fresh:bool -> Vtime.t

val network_name : network -> string
val protocol_name : protocol -> string

(** [name t] is e.g. ["ATM-AAL3/4"]. *)
val name : t -> string
