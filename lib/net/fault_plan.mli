(** Deterministic fault-injection schedules for the transport.

    The paper's premise is DSM on stock hardware and operating systems:
    messages ride UDP/IP (or AAL3/4) with no delivery guarantee, and
    "operation-specific, user-level protocols" (§3.7) retransmit on
    timers.  A fault plan describes, ahead of a run, how the simulated
    medium misbehaves; combined with the run's seed it makes every
    faulty execution exactly reproducible:

    - {e loss}: each frame is independently dropped with a fixed
      probability, globally or per directed link;
    - {e duplication}: the medium delivers a second copy of a frame
      shortly after the first (e.g. a retransmitted frame whose original
      was merely late);
    - {e reordering}: a frame is held back by a random extra delay drawn
      from a bounded window, letting later frames overtake it;
    - {e node stalls}: a processor's handler loop pauses for a fixed
      window of virtual time (a descheduled or momentarily frozen host) —
      frames keep arriving but service waits for the window to end;
    - {e unreachable peers}: every frame to or from a listed processor is
      dropped, modelling a network partition.  The transport's bounded
      retry budget converts this into a per-peer {e suspicion} (see
      {!Transport.on_suspect}) instead of retransmitting forever;
    - {e crashes}: a processor fails crash-stop at a fixed virtual time —
      it goes silent, every frame to or from it from then on is dropped,
      and the DSM protocol's failure detection and recovery take over.

    All draws come from the transport's seeded PRNG, so a (seed, plan)
    pair reproduces the event stream bit-for-bit. *)

open Tmk_sim

(** One handler-loop pause window. *)
type stall = { st_pid : int; st_start : Vtime.t; st_len : Vtime.t }

(** One crash-stop failure. *)
type crash = { cr_pid : int; cr_at : Vtime.t }

type t = {
  loss : float;  (** global frame-drop probability *)
  dup : float;  (** frame duplication probability *)
  reorder : float;  (** probability a frame is held back *)
  reorder_window : Vtime.t;  (** maximum extra delay of a held-back frame *)
  link_loss : ((int * int) * float) list;
      (** [(src, dst), rate] overrides of the global loss rate, directed *)
  stalls : stall list;
  unreachable : int list;  (** partitioned processors *)
  crashes : crash list;  (** crash-stop failures *)
}

(** [none] — the ideal network: no faults, 200 µs default reorder window
    should reordering later be enabled. *)
val none : t

(** Builders; each validates its rate.
    @raise Invalid_argument on rates outside [0,1). *)
val with_loss : t -> float -> t

val with_dup : t -> float -> t
val with_reorder : ?window:Vtime.t -> t -> float -> t
val with_link_loss : t -> src:int -> dst:int -> float -> t
val with_stall : t -> pid:int -> start:Vtime.t -> len:Vtime.t -> t
val with_unreachable : t -> int -> t

(** [with_crash t ~pid ~at] — processor [pid] fails crash-stop at [at].
    @raise Invalid_argument if [pid] already crashes in the plan. *)
val with_crash : t -> pid:int -> at:Vtime.t -> t

(** [crashes t] — the planned crashes, sorted by (time, pid). *)
val crashes : t -> crash list

(** [validate t] re-checks every field (for plans built literally).
    @raise Invalid_argument when a rate or window is out of range. *)
val validate : t -> unit

(** [is_faulty t] — true when any fault can affect {e delivery} (loss,
    duplication, reordering, or a partition); the transport then engages
    its acknowledgement/retransmission protocol.  Stalls alone delay
    service but never lose frames, so they do not require reliability. *)
val is_faulty : t -> bool

(** [loss_for t ~src ~dst] — effective drop probability on one directed
    link (the per-link override wins when larger). *)
val loss_for : t -> src:int -> dst:int -> float

(** [unreachable_link t ~src ~dst] — true when either end is partitioned. *)
val unreachable_link : t -> src:int -> dst:int -> bool

(** [stall_until t ~pid ~at] — earliest time at or after [at] when [pid]'s
    handler loop is outside every stall window. *)
val stall_until : t -> pid:int -> at:Vtime.t -> Vtime.t

(** [parse_stalls "1@2000+500,3@0+10000"] — CLI syntax: comma-separated
    [pid@start_us+len_us] windows.
    @raise Invalid_argument on malformed specs. *)
val parse_stalls : string -> stall list

(** [parse_crashes "3@5000,1@20000"] — CLI syntax: comma-separated
    [pid@t_us] crash points.
    @raise Invalid_argument on malformed specs. *)
val parse_crashes : string -> crash list

(** [describe t] — a one-line human-readable summary ("loss 5.0%, stall
    p1 @2000us +500us"). *)
val describe : t -> string
