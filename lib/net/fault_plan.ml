open Tmk_sim

type stall = { st_pid : int; st_start : Vtime.t; st_len : Vtime.t }
type crash = { cr_pid : int; cr_at : Vtime.t }

type t = {
  loss : float;
  dup : float;
  reorder : float;
  reorder_window : Vtime.t;
  link_loss : ((int * int) * float) list;
  stalls : stall list;
  unreachable : int list;
  crashes : crash list;
}

let none =
  {
    loss = 0.0;
    dup = 0.0;
    reorder = 0.0;
    reorder_window = Vtime.us 200;
    link_loss = [];
    stalls = [];
    unreachable = [];
    crashes = [];
  }

let check_rate name r =
  if r < 0.0 || r >= 1.0 then
    invalid_arg (Printf.sprintf "Fault_plan: %s rate %g not in [0,1)" name r)

let validate t =
  check_rate "loss" t.loss;
  check_rate "duplication" t.dup;
  check_rate "reordering" t.reorder;
  List.iter (fun (_, r) -> check_rate "per-link loss" r) t.link_loss;
  if t.reorder_window < Vtime.zero then invalid_arg "Fault_plan: negative reorder window";
  List.iter
    (fun s ->
      if s.st_pid < 0 then invalid_arg "Fault_plan: negative stall pid";
      if s.st_len < Vtime.zero then invalid_arg "Fault_plan: negative stall length")
    t.stalls;
  List.iter
    (fun c ->
      if c.cr_pid < 0 then invalid_arg "Fault_plan: negative crash pid";
      if c.cr_at < Vtime.zero then invalid_arg "Fault_plan: negative crash time")
    t.crashes;
  let pids = List.map (fun c -> c.cr_pid) t.crashes in
  if List.length (List.sort_uniq compare pids) <> List.length pids then
    invalid_arg "Fault_plan: a processor crashes at most once"

let with_loss t rate =
  check_rate "loss" rate;
  { t with loss = rate }

let with_dup t rate =
  check_rate "duplication" rate;
  { t with dup = rate }

let with_reorder ?window t rate =
  check_rate "reordering" rate;
  let reorder_window = Option.value ~default:t.reorder_window window in
  { t with reorder = rate; reorder_window }

let with_link_loss t ~src ~dst rate =
  check_rate "per-link loss" rate;
  { t with link_loss = ((src, dst), rate) :: t.link_loss }

let with_stall t ~pid ~start ~len =
  { t with stalls = { st_pid = pid; st_start = start; st_len = len } :: t.stalls }

let with_unreachable t pid = { t with unreachable = pid :: t.unreachable }

let with_crash t ~pid ~at =
  if List.exists (fun c -> c.cr_pid = pid) t.crashes then
    invalid_arg (Printf.sprintf "Fault_plan: processor %d already crashes" pid);
  { t with crashes = { cr_pid = pid; cr_at = at } :: t.crashes }

(* Crash times in injection order: ascending time, then pid, so the
   protocol schedules them deterministically whatever order the plan was
   built in. *)
let crashes t =
  List.sort
    (fun a b -> compare (a.cr_at, a.cr_pid) (b.cr_at, b.cr_pid))
    t.crashes

let is_faulty t =
  t.loss > 0.0 || t.dup > 0.0 || t.reorder > 0.0 || t.link_loss <> []
  || t.unreachable <> [] || t.crashes <> []

let loss_for t ~src ~dst =
  match List.assoc_opt (src, dst) t.link_loss with
  | Some r -> Float.max r t.loss
  | None -> t.loss

let unreachable_link t ~src ~dst =
  List.mem src t.unreachable || List.mem dst t.unreachable

(* A frame arriving (or a timer delivering work) to a stalled processor
   waits until the end of every stall window covering [at]: the handler
   loop is paused, as if the process were descheduled or the host
   momentarily frozen.  Windows may abut or nest, so iterate to a fixed
   point. *)
let stall_until t ~pid ~at =
  let rec settle at =
    let pushed =
      List.fold_left
        (fun acc s ->
          if s.st_pid = pid && s.st_start <= acc && acc < Vtime.add s.st_start s.st_len
          then Vtime.add s.st_start s.st_len
          else acc)
        at t.stalls
    in
    if pushed > at then settle pushed else at
  in
  settle at

(* "pid@start_us+len_us", comma-separated, e.g. "1@2000+500,3@0+10000". *)
let parse_stalls spec =
  let parse_one s =
    match String.split_on_char '@' (String.trim s) with
    | [ pid; rest ] ->
      (match String.split_on_char '+' rest with
      | [ start; len ] ->
        {
          st_pid = int_of_string pid;
          st_start = Vtime.us (int_of_string start);
          st_len = Vtime.us (int_of_string len);
        }
      | _ -> invalid_arg (Printf.sprintf "Fault_plan.parse_stalls: bad window %S" s))
    | _ ->
      invalid_arg
        (Printf.sprintf "Fault_plan.parse_stalls: %S is not pid@start_us+len_us" s)
  in
  match String.trim spec with
  | "" -> []
  | spec -> List.map parse_one (String.split_on_char ',' spec)

(* "pid@t_us", comma-separated, e.g. "3@5000,1@20000". *)
let parse_crashes spec =
  let parse_one s =
    match String.split_on_char '@' (String.trim s) with
    | [ pid; at ] -> (
      match (int_of_string_opt pid, int_of_string_opt at) with
      | Some pid, Some at -> { cr_pid = pid; cr_at = Vtime.us at }
      | _ -> invalid_arg (Printf.sprintf "Fault_plan.parse_crashes: bad crash %S" s))
    | _ ->
      invalid_arg (Printf.sprintf "Fault_plan.parse_crashes: %S is not pid@t_us" s)
  in
  match String.trim spec with
  | "" -> []
  | spec -> List.map parse_one (String.split_on_char ',' spec)

let describe t =
  if not (is_faulty t) && t.stalls = [] then "no faults"
  else begin
    let parts = ref [] in
    let addf fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
    if t.loss > 0.0 then addf "loss %.1f%%" (t.loss *. 100.0);
    if t.dup > 0.0 then addf "dup %.1f%%" (t.dup *. 100.0);
    if t.reorder > 0.0 then
      addf "reorder %.1f%% (window %.0fus)" (t.reorder *. 100.0)
        (Vtime.to_us t.reorder_window);
    List.iter
      (fun ((s, d), r) -> addf "link %d->%d loss %.1f%%" s d (r *. 100.0))
      t.link_loss;
    List.iter
      (fun s ->
        addf "stall p%d @%.0fus +%.0fus" s.st_pid (Vtime.to_us s.st_start)
          (Vtime.to_us s.st_len))
      t.stalls;
    List.iter (fun p -> addf "p%d unreachable" p) t.unreachable;
    List.iter (fun c -> addf "crash p%d @%.0fus" c.cr_pid (Vtime.to_us c.cr_at)) (crashes t);
    String.concat ", " (List.rev !parts)
  end
