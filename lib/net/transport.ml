open Tmk_sim

type counters = {
  mutable msgs : int;
  mutable bytes : int;
  mutable retrans : int;  (* frames that were retransmissions *)
  mutable dups : int;  (* extra copies injected by the medium *)
}

type mix_entry = {
  mix_label : string;
  mix_msgs : int;
  mix_bytes : int;
  mix_retrans : int;
  mix_dups : int;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  plan : Fault_plan.t;
  prng : Tmk_util.Prng.t;
  batching : bool;  (* coalesce multi-part messages into single frames *)
  link_free : Vtime.t array;  (* per-source ATM link, or slot 0 = shared bus *)
  per_proc : counters array;
  by_label : (string, counters) Hashtbl.t;  (* message mix by protocol operation *)
  mutable retransmissions : int;
  mutable dup_frames : int;
  mutable dups_suppressed : int;
  mutable coalesced : int;  (* frames saved by batching: Σ (parts − 1) *)
  mutable suspicions : int;  (* retry budgets exhausted *)
  mutable on_suspect :
    (src:int -> dst:int -> label:string -> attempts:int -> unit) option;
  mutable next_msg_id : int;
  delivered : (int, unit) Hashtbl.t;
      (* duplicate suppression, reliable mode only; entries are pruned once
         the ack lands and every outstanding copy has been filtered, so the
         table holds only in-flight messages, never the whole run's
         history *)
}

let fresh_counters () = { msgs = 0; bytes = 0; retrans = 0; dups = 0 }

let create ?(plan = Fault_plan.none) ?(batching = true) ~engine ~params ~prng () =
  Fault_plan.validate plan;
  (* Params.with_loss is the legacy loss knob: fold it into the plan so
     the two configuration paths agree. *)
  let plan =
    if params.Params.loss_rate > plan.Fault_plan.loss then
      { plan with Fault_plan.loss = params.Params.loss_rate }
    else plan
  in
  let n = Engine.nprocs engine in
  {
    engine;
    params;
    plan;
    prng;
    batching;
    link_free = Array.make (max n 1) Vtime.zero;
    per_proc = Array.init n (fun _ -> fresh_counters ());
    by_label = Hashtbl.create 16;
    retransmissions = 0;
    dup_frames = 0;
    dups_suppressed = 0;
    coalesced = 0;
    suspicions = 0;
    on_suspect = None;
    next_msg_id = 0;
    delivered = Hashtbl.create 64;
  }

let engine t = t.engine
let params t = t.params
let plan t = t.plan
let batching t = t.batching

(* Delivery faults engage the ack/retransmit protocol; stall-only plans
   delay service but never lose frames. *)
let reliable t = Fault_plan.is_faulty t.plan

let on_suspect t f = t.on_suspect <- Some f
let suspicions t = t.suspicions

(* A retry budget ran out: the peer is *suspected*.  This fires from a
   scheduled timer callback, so it must never raise — the simulation
   would be left torn mid-event.  The consumer (the DSM protocol's
   failure detector) is told through the registered callback; without
   one, the run is terminated cleanly at the next event boundary, with
   stats and traces intact. *)
let suspected t ~src ~dst ~label ~attempts =
  t.suspicions <- t.suspicions + 1;
  if Engine.tracing t.engine then
    Engine.emit t.engine ~pid:src (Tmk_trace.Event.Peer_suspect { dst; label; attempts });
  match t.on_suspect with
  | Some f -> f ~src ~dst ~label ~attempts
  | None ->
    Engine.request_stop t.engine
      (Printf.sprintf "peer %d unreachable (%s from %d, %d attempts)" dst label src
         attempts)

let fresh_id t =
  let id = t.next_msg_id in
  t.next_msg_id <- id + 1;
  id

let label_counters t label =
  match Hashtbl.find_opt t.by_label label with
  | Some lc -> lc
  | None ->
    let lc = fresh_counters () in
    Hashtbl.add t.by_label label lc;
    lc

(* ------------------------------------------------------------------ *)
(* Medium: arbitration, faults, statistics.                            *)

(* Fragment sizes of an unbatched multi-part message: the payload splits
   evenly across [parts] fragments (remainder to the first ones) and each
   fragment pays the full per-frame header/minimum-size overhead. *)
let split_frames p ~bytes ~parts =
  let base = bytes / parts and rem = bytes mod parts in
  List.init parts (fun i -> Params.frame_bytes p (base + if i < rem then 1 else 0))

(* Hand one message to the medium at [at]; [on_arrival] fires at the
   receiver's network interface (no CPU charged yet) once per copy the
   medium actually delivers — zero times when dropped, twice when
   duplicated.  [on_fate] reports that copy count as soon as the medium
   decides it (retransmission bookkeeping).

   [parts] is the number of logical protocol units riding in the message
   (write notices batches, gathered diff entries...).  A batching
   transport coalesces them into one frame and counts the [parts − 1]
   saved frames; an unbatched transport puts each part on the wire as its
   own frame, back to back.  The fragment burst shares one fate — one
   loss/dup/reorder draw, one delivery at the arrival of the last
   fragment — so both modes consume identical PRNG streams and stay
   individually bit-deterministic. *)
let transmit ?(label = "other") ?(retrans = false) ?(parts = 1)
    ?(on_fate = fun _ -> ()) t ~src ~dst ~bytes ~at ~on_arrival =
  let p = t.params in
  let split = (not t.batching) && parts > 1 in
  let frames =
    if split then split_frames p ~bytes ~parts else [ Params.frame_bytes p bytes ]
  in
  let nframes = List.length frames in
  let total = List.fold_left ( + ) 0 frames in
  let c = t.per_proc.(src) in
  c.msgs <- c.msgs + nframes;
  c.bytes <- c.bytes + total;
  let lc = label_counters t label in
  lc.msgs <- lc.msgs + nframes;
  lc.bytes <- lc.bytes + total;
  if t.batching && parts > 1 then t.coalesced <- t.coalesced + (parts - 1);
  Engine.schedule t.engine ~at (fun () ->
      if Engine.tracing t.engine then begin
        List.iter
          (fun frame ->
            Engine.emit t.engine ~pid:src
              (Tmk_trace.Event.Frame_send { src; dst; label; bytes = frame; retrans }))
          frames;
        if t.batching && parts > 1 then
          Engine.emit t.engine ~pid:src
            (Tmk_trace.Event.Frame_batch { src; dst; label; parts })
      end;
      let slot = if p.Params.shared_medium then 0 else src in
      let free_at = t.link_free.(slot) in
      (* A frame finding the medium busy pays the contention penalty
         (deference + collisions + backoff) on top of waiting its turn. *)
      let start =
        if free_at > at then Vtime.add free_at p.Params.busy_access_delay
        else at
      in
      let occupancy = Vtime.ns (total * p.Params.wire_ns_per_byte) in
      t.link_free.(slot) <- Vtime.add start occupancy;
      let loss = Fault_plan.loss_for t.plan ~src ~dst in
      (* A crashed endpoint is silent from its crash instant on: frames
         already in flight still arrive (their [arrive] events are
         scheduled), but nothing sent at or after the crash touches the
         wire in either direction. *)
      let dropped =
        Engine.crashed t.engine src || Engine.crashed t.engine dst
        || Fault_plan.unreachable_link t.plan ~src ~dst
        || (loss > 0.0 && Tmk_util.Prng.float t.prng 1.0 < loss)
      in
      if dropped then begin
        if Engine.tracing t.engine then
          List.iter
            (fun frame ->
              Engine.emit t.engine ~pid:src
                (Tmk_trace.Event.Frame_drop { src; dst; label; bytes = frame }))
            frames;
        on_fate 0
      end
      else begin
        let copies =
          if
            t.plan.Fault_plan.dup > 0.0
            && Tmk_util.Prng.float t.prng 1.0 < t.plan.Fault_plan.dup
          then 2
          else 1
        in
        (* Reordering: hold the frame back by a bounded random delay so
           later frames on the same link can overtake it. *)
        let held =
          if
            t.plan.Fault_plan.reorder > 0.0
            && Tmk_util.Prng.float t.prng 1.0 < t.plan.Fault_plan.reorder
          then
            Vtime.ns
              (Tmk_util.Prng.int t.prng
                 (Vtime.add t.plan.Fault_plan.reorder_window (Vtime.ns 1)))
          else Vtime.zero
        in
        on_fate copies;
        let arrival =
          Vtime.add (Vtime.add (Vtime.add start occupancy) p.Params.wire_latency) held
        in
        let arrive at =
          Engine.schedule t.engine ~at (fun () ->
              if Engine.tracing t.engine then
                List.iter
                  (fun frame ->
                    Engine.emit t.engine ~pid:dst
                      (Tmk_trace.Event.Frame_recv { src; dst; label; bytes = frame }))
                  frames;
              on_arrival at)
        in
        arrive arrival;
        if copies = 2 then begin
          t.dup_frames <- t.dup_frames + nframes;
          lc.dups <- lc.dups + nframes;
          if Engine.tracing t.engine then
            Engine.emit t.engine ~pid:src
              (Tmk_trace.Event.Frame_dup { src; dst; label });
          (* The duplicate trails its original back-to-back. *)
          arrive (Vtime.add arrival occupancy)
        end
      end)

(* Post work into [pid]'s handler loop, deferred past any stall window
   covering [at] (the loop is paused: frames arrive, service waits). *)
let post_to t ~pid ~at f =
  Engine.post_handler t.engine ~pid ~at:(Fault_plan.stall_until t.plan ~pid ~at) f

(* Deliver a request frame into [dst]'s SIGIO handler: charge the
   interrupt/dispatch/receive path, then run the payload. *)
let deliver_to_handler t ~dst ~bytes ~arrival ~deliver =
  post_to t ~pid:dst ~at:arrival (fun h ->
      Engine.hcharge h Category.Unix_comm
        (Params.deliver_handler_cpu t.params ~fresh:(Engine.hfresh h));
      Engine.hcharge h Category.Unix_comm (Params.recv_cost t.params bytes);
      deliver h)

(* ------------------------------------------------------------------ *)
(* Reliable one-way messages.                                          *)

(* Per-message retransmission state.  [expected]/[checked] count medium
   copies: [expected] grows at each transmission (adjusted once the
   medium decides the copy count), [checked] when a copy has passed the
   duplicate filter.  The dedup entry can be dropped only when the ack
   has landed AND no copy is still in flight — pruning earlier would let
   a trailing duplicate deliver a second time. *)
type rel = {
  mutable acked : bool;
  mutable expected : int;
  mutable checked : int;
  mutable attempts : int;
  mutable cancel : unit -> unit;
}

(* In reliable mode each one-way message is acknowledged; the sender
   retransmits on an exponentially backed-off timer until the ack lands
   or the retry budget runs out (the peer is {i suspected}).  Acks and
   retransmissions consume CPU through self-posted handlers so the
   charges land on the right processor even though the original caller
   has moved on. *)
let rec oneway ?(label = "other") ?(parts = 1) ?retry_budget t ~src ~dst ~bytes ~at
    ~deliver =
  if not (reliable t) then
    transmit ~label ~parts t ~src ~dst ~bytes ~at ~on_arrival:(fun arrival ->
        deliver_to_handler t ~dst ~bytes ~arrival ~deliver)
  else begin
    let budget =
      match retry_budget with
      | Some b -> min b t.params.Params.max_retransmits
      | None -> t.params.Params.max_retransmits
    in
    let id = fresh_id t in
    let st = { acked = false; expected = 0; checked = 0; attempts = 0; cancel = ignore } in
    let maybe_prune () =
      if st.acked && st.expected = st.checked then Hashtbl.remove t.delivered id
    in
    let on_ack () =
      if not st.acked then begin
        st.acked <- true;
        st.cancel ();
        maybe_prune ()
      end
    in
    let lc = label_counters t label in
    let rec attempt ~at =
      st.attempts <- st.attempts + 1;
      st.expected <- st.expected + 1;
      if st.attempts > 1 then begin
        t.retransmissions <- t.retransmissions + 1;
        lc.retrans <- lc.retrans + 1
      end;
      transmit ~label ~retrans:(st.attempts > 1) ~parts t ~src ~dst ~bytes ~at
        ~on_fate:(fun copies ->
          st.expected <- st.expected + (copies - 1);
          maybe_prune ())
        ~on_arrival:(fun arrival ->
          deliver_to_handler t ~dst ~bytes ~arrival ~deliver:(fun h ->
              if not (Hashtbl.mem t.delivered id) then begin
                Hashtbl.add t.delivered id ();
                deliver h
              end
              else t.dups_suppressed <- t.dups_suppressed + 1;
              st.checked <- st.checked + 1;
              maybe_prune ();
              send_ack t h ~dst:src ~on_ack));
      let timeout = Vtime.add at (Params.retransmit_delay t.params ~attempt:st.attempts) in
      st.cancel <-
        Engine.schedule_cancellable t.engine ~at:timeout (fun () ->
            (* A dead sender retransmits nothing (and suspects no one). *)
            if (not st.acked) && not (Engine.crashed t.engine src) then begin
              if st.attempts >= budget then
                suspected t ~src ~dst ~label ~attempts:st.attempts
              else
                (* The user-level timer fires on [src]: charge the resend. *)
                post_to t ~pid:src ~at:timeout (fun h ->
                    if not st.acked then begin
                      Engine.hcharge h Category.Unix_comm (Params.send_cost t.params bytes);
                      attempt ~at:(Engine.hnow h)
                    end)
            end)
    in
    attempt ~at
  end

(* Acks are fire-and-forget minimum-size frames; a lost ack just causes a
   (suppressed) duplicate and a re-ack. *)
and send_ack t h ~dst ~on_ack =
  Engine.hcharge h Category.Unix_comm (Params.send_cost t.params 0);
  transmit ~label:"ack" t ~src:(Engine.hpid h) ~dst ~bytes:0 ~at:(Engine.hnow h)
    ~on_arrival:(fun arrival ->
      post_to t ~pid:dst ~at:arrival (fun ha ->
          Engine.hcharge ha Category.Unix_comm
            (Params.deliver_handler_cpu t.params ~fresh:(Engine.hfresh ha));
          Engine.hcharge ha Category.Unix_comm (Params.recv_cost t.params 0);
          on_ack ()))

(* Sender CPU for a possibly-split burst: the payload cost once, plus the
   fixed kernel send entry for each extra fragment an unbatched transport
   puts on the wire (a batching transport pays it only once). *)
let burst_send_cost t ~bytes ~parts =
  let base = Params.send_cost t.params bytes in
  if (not t.batching) && parts > 1 then
    Vtime.add base (Vtime.scale (Params.send_cost t.params 0) (parts - 1))
  else base

let send ?label ?(parts = 1) t ~src ~dst ~bytes ~deliver =
  Engine.advance Category.Unix_comm (burst_send_cost t ~bytes ~parts);
  oneway ?label ~parts t ~src ~dst ~bytes ~at:(Engine.now t.engine) ~deliver

let hsend ?label ?(parts = 1) t h ~dst ~bytes ~deliver =
  Engine.hcharge h Category.Unix_comm (burst_send_cost t ~bytes ~parts);
  oneway ?label ~parts t ~src:(Engine.hpid h) ~dst ~bytes ~at:(Engine.hnow h) ~deliver

(* Context-free reliable one-way send at the current instant: usable from
   scheduled thunks and recovery code where neither process-context
   [Engine.advance] nor a handler context is available.  The sender CPU
   is deliberately not charged (a heartbeat or mirror runs below the
   measurement's resolution); delivery still charges the receiver. *)
let notify ?label ?(parts = 1) ?retry_budget t ~src ~dst ~bytes ~deliver =
  oneway ?label ~parts ?retry_budget t ~src ~dst ~bytes ~at:(Engine.now t.engine)
    ~deliver

(* ------------------------------------------------------------------ *)
(* Messages that wake a blocked process.                               *)

type 'a mailbox = (int * 'a) Engine.Ivar.t

let mailbox () = Engine.Ivar.create ()
let mailbox_filled mb = Engine.Ivar.is_filled mb

(* The data lands in the mailbox at wire arrival (deferred past any stall
   window on the receiver); the interrupt/resume and receive CPU are
   charged by [await_value] when the process resumes, which is when that
   kernel work happens on the real system.  In reliable mode the frame
   additionally runs a (cheap) handler on [dst] to source the
   acknowledgement; the single-use mailbox doubles as the duplicate
   filter, so no dedup-table entry is needed. *)
let value_message ?(label = "other") ?(parts = 1) ?retry_budget t ~src ~dst ~bytes ~at
    mb v =
  let fill_at arrival =
    let at = Fault_plan.stall_until t.plan ~pid:dst ~at:arrival in
    if not (Engine.Ivar.is_filled mb) then Engine.fill t.engine mb ~at (bytes, v)
    else t.dups_suppressed <- t.dups_suppressed + 1
  in
  if not (reliable t) then
    transmit ~label ~parts t ~src ~dst ~bytes ~at ~on_arrival:fill_at
  else begin
    let budget =
      match retry_budget with
      | Some b -> min b t.params.Params.max_retransmits
      | None -> t.params.Params.max_retransmits
    in
    let st = { acked = false; expected = 0; checked = 0; attempts = 0; cancel = ignore } in
    let on_ack () =
      if not st.acked then begin
        st.acked <- true;
        st.cancel ()
      end
    in
    let lc = label_counters t label in
    let rec attempt ~at =
      st.attempts <- st.attempts + 1;
      if st.attempts > 1 then begin
        t.retransmissions <- t.retransmissions + 1;
        lc.retrans <- lc.retrans + 1
      end;
      transmit ~label ~retrans:(st.attempts > 1) ~parts t ~src ~dst ~bytes ~at
        ~on_arrival:(fun arrival ->
          fill_at arrival;
          post_to t ~pid:dst ~at:arrival (fun h ->
              send_ack t h ~dst:src ~on_ack));
      let timeout = Vtime.add at (Params.retransmit_delay t.params ~attempt:st.attempts) in
      st.cancel <-
        Engine.schedule_cancellable t.engine ~at:timeout (fun () ->
            if (not st.acked) && not (Engine.crashed t.engine src) then begin
              if st.attempts >= budget then
                suspected t ~src ~dst ~label ~attempts:st.attempts
              else
                post_to t ~pid:src ~at:timeout (fun h ->
                    if not st.acked then begin
                      Engine.hcharge h Category.Unix_comm (Params.send_cost t.params bytes);
                      attempt ~at:(Engine.hnow h)
                    end)
            end)
    in
    attempt ~at
  end

let send_value ?label ?(parts = 1) t ~src ~dst ~bytes mb v =
  Engine.advance Category.Unix_comm (burst_send_cost t ~bytes ~parts);
  value_message ?label ~parts t ~src ~dst ~bytes ~at:(Engine.now t.engine) mb v

let hsend_value ?label ?(parts = 1) t h ~dst ~bytes mb v =
  Engine.hcharge h Category.Unix_comm (burst_send_cost t ~bytes ~parts);
  value_message ?label ~parts t ~src:(Engine.hpid h) ~dst ~bytes ~at:(Engine.hnow h) mb v

let await_value t mb =
  let bytes, v = Engine.await mb in
  Engine.advance Category.Unix_comm (Params.deliver_blocked_cpu t.params);
  Engine.advance Category.Unix_comm (Params.recv_cost t.params bytes);
  v

(* ------------------------------------------------------------------ *)
(* Request/response.                                                   *)

type 'a promise = 'a mailbox

let call ?label ?(parts = 1) t ~src ~dst ~bytes ~serve =
  let mb = mailbox () in
  let reply_label = Option.map (fun l -> l ^ "-reply") label in
  Engine.advance Category.Unix_comm (burst_send_cost t ~bytes ~parts);
  oneway ?label ~parts t ~src ~dst ~bytes ~at:(Engine.now t.engine) ~deliver:(fun h ->
      let reply_bytes, reply = serve h in
      hsend_value ?label:reply_label t h ~dst:src ~bytes:reply_bytes mb reply);
  mb

let await_reply = await_value

let rpc ?label t ~src ~dst ~bytes ~serve =
  await_reply t (call ?label t ~src ~dst ~bytes ~serve)

(* ------------------------------------------------------------------ *)
(* Statistics.                                                         *)

let messages_sent t = Array.fold_left (fun acc c -> acc + c.msgs) 0 t.per_proc
let bytes_sent t = Array.fold_left (fun acc c -> acc + c.bytes) 0 t.per_proc
let messages_of t pid = t.per_proc.(pid).msgs
let bytes_of t pid = t.per_proc.(pid).bytes
let retransmissions t = t.retransmissions
let frames_coalesced t = t.coalesced
let duplicates_injected t = t.dup_frames
let duplicates_suppressed t = t.dups_suppressed
let dedup_entries t = Hashtbl.length t.delivered

let message_mix t =
  Hashtbl.fold
    (fun label c acc ->
      {
        mix_label = label;
        mix_msgs = c.msgs;
        mix_bytes = c.bytes;
        mix_retrans = c.retrans;
        mix_dups = c.dups;
      }
      :: acc)
    t.by_label []
  |> List.sort (fun a b -> compare b.mix_msgs a.mix_msgs)

let reset_stats t =
  Array.iter
    (fun c ->
      c.msgs <- 0;
      c.bytes <- 0;
      c.retrans <- 0;
      c.dups <- 0)
    t.per_proc;
  Hashtbl.reset t.by_label;
  Hashtbl.reset t.delivered;
  t.retransmissions <- 0;
  t.dup_frames <- 0;
  t.dups_suppressed <- 0;
  t.coalesced <- 0
