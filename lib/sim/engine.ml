type pid = int

exception Deadlock of pid list

(* ------------------------------------------------------------------ *)
(* Ivars                                                              *)

module Ivar = struct
  type 'a state =
    | Empty of ('a -> Vtime.t -> unit) list  (* waiters: value, fill time *)
    | Filled of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let is_filled iv = match iv.state with Filled _ -> true | Empty _ -> false
  let peek iv = match iv.state with Filled v -> Some v | Empty _ -> None
end

(* ------------------------------------------------------------------ *)
(* Processors                                                         *)

type proc = {
  id : pid;
  busy : Vtime.t array;  (* indexed by Category.index *)
  mutable handler_busy_until : Vtime.t;
  mutable handler_running : bool;
  handler_queue : (hctx -> unit) Queue.t;
  mutable in_chunk : bool;
  mutable stolen : Vtime.t;  (* handler CPU stolen from the current chunk *)
  mutable spawned : bool;
  mutable finished_at : Vtime.t option;
  mutable had_handler : bool;
  mutable crashed_at : Vtime.t option;
}

and hctx = {
  hproc : proc;
  hstart : Vtime.t;
  mutable hcharged : Vtime.t;
  hengine : t;
  hfresh : bool;
}

and event = { time : Vtime.t; mutable live : bool; thunk : unit -> unit }

and t = {
  procs : proc array;
  events : event Tmk_util.Heap.t;
  mutable clock : Vtime.t;
  mutable last_event_time : Vtime.t;
  mutable running_pid : pid option;  (* process currently executing, if any *)
  blocked : bool array;  (* per-pid: process suspended on an ivar *)
  mutable blocked_count : int;
  mutable sink : Tmk_trace.Sink.t option;
  mutable stop_reason : string option;
}

let create ~nprocs =
  if nprocs <= 0 then invalid_arg "Engine.create: nprocs must be positive";
  let make_proc id =
    {
      id;
      busy = Array.make Category.count Vtime.zero;
      handler_busy_until = Vtime.zero;
      handler_running = false;
      handler_queue = Queue.create ();
      in_chunk = false;
      stolen = Vtime.zero;
      spawned = false;
      finished_at = None;
      had_handler = false;
      crashed_at = None;
    }
  in
  {
    procs = Array.init nprocs make_proc;
    events = Tmk_util.Heap.create ~compare:(fun a b -> compare a.time b.time);
    clock = Vtime.zero;
    last_event_time = Vtime.zero;
    running_pid = None;
    blocked = Array.make nprocs false;
    blocked_count = 0;
    sink = None;
    stop_reason = None;
  }

let nprocs t = Array.length t.procs
let now t = t.clock

(* ------------------------------------------------------------------ *)
(* Crash-stop failures and clean termination                           *)

let crashed t pid = t.procs.(pid).crashed_at <> None
let crash_time t pid = t.procs.(pid).crashed_at

(* A crashed processor executes nothing from this instant on: its pending
   handler queue is discarded and every later resume point (chunk end,
   ivar fill, handler delivery) checks [crashed] before running.  The
   suspended continuation, if any, is simply never resumed — leaked, which
   is fine in a simulator. *)
let mark_crashed t pid =
  let proc = t.procs.(pid) in
  if proc.crashed_at = None then begin
    proc.crashed_at <- Some t.clock;
    Queue.clear proc.handler_queue;
    proc.handler_running <- false;
    if t.blocked.(pid) then begin
      t.blocked.(pid) <- false;
      t.blocked_count <- t.blocked_count - 1
    end
  end

(* Ask the main loop to return at the next event boundary: the clean
   alternative to raising out of a timer callback.  Stats, busy times and
   traces accumulated so far all stay intact.  The first reason wins. *)
let request_stop t reason = if t.stop_reason = None then t.stop_reason <- Some reason
let stop_reason t = t.stop_reason

(* ------------------------------------------------------------------ *)
(* Typed event tracing                                                 *)

let set_sink t s = t.sink <- Some s
let sink t = t.sink
let tracing t = t.sink <> None

let emit_at t ~time ~pid ev =
  match t.sink with
  | None -> ()
  | Some s -> Tmk_trace.Sink.emit s ~time ~pid ev

let emit t ~pid ev = emit_at t ~time:t.clock ~pid ev

let trace t msg =
  if tracing t then
    let pid = match t.running_pid with Some p -> p | None -> -1 in
    emit t ~pid (Tmk_trace.Event.Mark msg)

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is before now %d" at t.clock);
  Tmk_util.Heap.push t.events { time = at; live = true; thunk = f }

(* A cancelled event is skipped by the main loop without advancing the
   clock or the makespan: a retransmission timer whose ack already landed
   must not stretch the run's end time past the last real event. *)
let schedule_cancellable t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is before now %d" at t.clock);
  let ev = { time = at; live = true; thunk = f } in
  Tmk_util.Heap.push t.events ev;
  fun () -> ev.live <- false

let pending_events t =
  Tmk_util.Heap.length t.events

(* ------------------------------------------------------------------ *)
(* Effects: the process-context operations                            *)

type _ Effect.t +=
  | Advance : Category.t * Vtime.t -> unit Effect.t
  | Await : 'a Ivar.t -> 'a Effect.t

let advance cat dt = Effect.perform (Advance (cat, dt))
let await iv = Effect.perform (Await iv)

let charge proc cat dt =
  if dt < 0 then invalid_arg "Engine: negative time charge";
  proc.busy.(Category.index cat) <- Vtime.add proc.busy.(Category.index cat) dt

(* A computation chunk ends at its nominal time plus whatever handler CPU
   was stolen meanwhile; stolen time can itself be extended, so re-check
   until no new theft occurred. *)
let rec finish_chunk t proc resume at =
  schedule t ~at (fun () ->
    if proc.crashed_at <> None then ()
    else if proc.stolen > Vtime.zero then begin
      let extra = proc.stolen in
      proc.stolen <- Vtime.zero;
      finish_chunk t proc resume (Vtime.add at extra)
    end
    else begin
      proc.in_chunk <- false;
      resume ()
    end)

let fill (_ : t) iv ~at v =
  match iv.Ivar.state with
  | Ivar.Filled _ -> invalid_arg "Engine.fill: ivar already filled"
  | Ivar.Empty waiters ->
    iv.Ivar.state <- Ivar.Filled v;
    List.iter (fun w -> w v at) (List.rev waiters)

let spawn t pid main =
  let proc = t.procs.(pid) in
  if proc.spawned then invalid_arg "Engine.spawn: processor already has a process";
  proc.spawned <- true;
  let open Effect.Deep in
  let body () =
    match_with main ()
      {
        retc =
          (fun () ->
            proc.finished_at <- Some t.clock;
            emit t ~pid Tmk_trace.Event.Proc_finish);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Advance (cat, dt) ->
              Some
                (fun (k : (a, _) continuation) ->
                  charge proc cat dt;
                  proc.in_chunk <- true;
                  proc.stolen <- Vtime.zero;
                  let resume () =
                    t.running_pid <- Some pid;
                    continue k ();
                    t.running_pid <- None
                  in
                  finish_chunk t proc resume (Vtime.add t.clock dt))
            | Await iv ->
              Some
                (fun (k : (a, _) continuation) ->
                  match iv.Ivar.state with
                  | Ivar.Filled v ->
                    (* Already available: no time passes. *)
                    continue k v
                  | Ivar.Empty waiters ->
                    t.blocked.(pid) <- true;
                    t.blocked_count <- t.blocked_count + 1;
                    let waiter v at =
                      (* Resume no earlier than the fill and no earlier
                         than the end of any handler occupying our CPU.
                         A crashed processor never resumes; its blocked
                         bookkeeping was cleared by [mark_crashed]. *)
                      if proc.crashed_at = None then
                        let resume_at = Vtime.max at proc.handler_busy_until in
                        schedule t ~at:resume_at (fun () ->
                            if proc.crashed_at = None then begin
                              t.blocked.(pid) <- false;
                              t.blocked_count <- t.blocked_count - 1;
                              t.running_pid <- Some pid;
                              continue k v;
                              t.running_pid <- None
                            end)
                    in
                    iv.Ivar.state <- Ivar.Empty (waiter :: waiters))
            | _ -> None);
      }
  in
  schedule t ~at:Vtime.zero (fun () ->
      if proc.crashed_at = None then begin
        t.running_pid <- Some pid;
        body ();
        t.running_pid <- None
      end)

(* ------------------------------------------------------------------ *)
(* Handlers                                                           *)

let hcharge h cat dt =
  charge h.hproc cat dt;
  h.hcharged <- Vtime.add h.hcharged dt

let hnow h = Vtime.add h.hstart h.hcharged
let hpid h = h.hproc.id
let hfresh h = h.hfresh

(* Run queued handlers one at a time per processor.  Service time is known
   only after the handler body runs (it charges as it goes), so the pump
   runs the body at its start time and schedules the next pump at the
   resulting end time. *)
let rec handler_pump t proc =
  if proc.crashed_at <> None then begin
    Queue.clear proc.handler_queue;
    proc.handler_running <- false
  end
  else
    match Queue.take_opt proc.handler_queue with
    | None -> proc.handler_running <- false
    | Some f ->
      proc.handler_running <- true;
      let start = Vtime.max t.clock proc.handler_busy_until in
      (* Fresh = the handler slot was idle when this request begins service,
         so a real system would pay a full signal dispatch; back-to-back
         requests are drained by the already-running handler loop. *)
      let fresh = (not proc.had_handler) || start > proc.handler_busy_until in
      proc.had_handler <- true;
      schedule t ~at:start (fun () ->
          if proc.crashed_at <> None then ()
          else begin
            let h =
              { hproc = proc; hstart = start; hcharged = Vtime.zero; hengine = t;
                hfresh = fresh }
            in
            f h;
            let fin = Vtime.add start h.hcharged in
            proc.handler_busy_until <- fin;
            if proc.in_chunk then proc.stolen <- Vtime.add proc.stolen h.hcharged;
            schedule t ~at:fin (fun () -> handler_pump t proc)
          end)

let post_handler t ~pid ~at f =
  let proc = t.procs.(pid) in
  schedule t ~at (fun () ->
      if proc.crashed_at = None then begin
        Queue.add f proc.handler_queue;
        if not proc.handler_running then handler_pump t proc
      end)

(* ------------------------------------------------------------------ *)
(* Main loop                                                          *)

let run t =
  let rec loop () =
    if t.stop_reason <> None then ()
    else
    match Tmk_util.Heap.pop_opt t.events with
    | None ->
      if t.blocked_count > 0 then begin
        (* Report the processes actually suspended on an ivar, not every
           unfinished one: a deadlock under fault injection typically
           strands one waiter while its peers sit in handler loops. *)
        let stuck =
          Array.to_list t.procs
          |> List.filter (fun p -> t.blocked.(p.id))
          |> List.map (fun p -> p.id)
        in
        raise (Deadlock stuck)
      end
    | Some ev when not ev.live -> loop ()
    | Some ev ->
      t.clock <- ev.time;
      t.last_event_time <- ev.time;
      ev.thunk ();
      loop ()
  in
  loop ()

let finished t pid = t.procs.(pid).finished_at <> None

let finish_time t pid =
  match t.procs.(pid).finished_at with
  | Some at -> at
  | None -> invalid_arg "Engine.finish_time: process has not finished"

let busy t pid cat = t.procs.(pid).busy.(Category.index cat)

let busy_total t pid = Array.fold_left Vtime.add Vtime.zero t.procs.(pid).busy

let end_time t = t.last_event_time

(* Handler-context emission: the handler's own clock (service start plus
   CPU charged so far) is ahead of the global clock, so events it emits
   are stamped with [hnow], keeping the stream causally ordered per
   processor. *)
let hemit h ev = emit_at h.hengine ~time:(hnow h) ~pid:(hpid h) ev
let htracing h = tracing h.hengine
