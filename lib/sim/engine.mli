(** Deterministic discrete-event simulation of a workstation cluster.

    The engine substitutes for the paper's 8 DECstation-5000/240s.  Each
    simulated processor hosts:

    - one {e application process}, a cooperative coroutine implemented with
      OCaml effect handlers.  Application code runs instantaneously in real
      time and advances its processor's virtual clock explicitly with
      {!advance}; it blocks on {!await} (lock grants, barrier releases,
      remote page data) exactly where the real system would block in a Unix
      [sigsuspend]/receive;
    - a FIFO of {e request handlers}, modelling TreadMarks' SIGIO handler:
      an incoming request interrupts whatever the application is doing,
      consumes CPU, and delays the application's current computation chunk
      by the stolen time.  Handlers on one processor serialise with each
      other.

    All CPU consumption is charged to a {!Category.t}, reproducing the
    paper's execution-time decomposition (computation / Unix / TreadMarks /
    idle).  Events at equal times fire in schedule order, so a run is a
    pure function of its inputs — replaying a seed reproduces the event
    stream bit-for-bit. *)

type t

(** Processor identifier, in [0, nprocs). *)
type pid = int

(** Write-once cells used to block an application process until a handler
    (possibly on another processor) supplies a value. *)
module Ivar : sig
  type 'a t

  (** [create ()] makes an empty ivar. *)
  val create : unit -> 'a t

  (** [is_filled iv] tests whether a value has been supplied. *)
  val is_filled : 'a t -> bool

  (** [peek iv] is the value, if any. *)
  val peek : 'a t -> 'a option
end

(** [create ~nprocs] builds a cluster of [nprocs] processors. *)
val create : nprocs:int -> t

(** [nprocs t] is the cluster size. *)
val nprocs : t -> int

(** [now t] is the current virtual time.  Inside application code this is
    the application's own clock position. *)
val now : t -> Vtime.t

(** [schedule t ~at f] runs [f] at virtual time [at] (which must not be in
    the past). *)
val schedule : t -> at:Vtime.t -> (unit -> unit) -> unit

(** [schedule_cancellable t ~at f] is {!schedule} returning a thunk that
    prevents [f] from running if called before [at] (retransmission
    timers).  A cancelled event is skipped entirely: it neither advances
    the clock nor counts toward {!end_time}, so dead timers cannot
    stretch a run's makespan. *)
val schedule_cancellable : t -> at:Vtime.t -> (unit -> unit) -> (unit -> unit)

(** [pending_events t] is the number of events still queued (including
    cancelled ones not yet reaped); zero after {!run} returns. *)
val pending_events : t -> int

(** [spawn t pid main] installs the application process of processor
    [pid]; it starts at time zero when {!run} is called.  At most one
    process per processor.  Within [main], the functions below marked
    "process context" may be used. *)
val spawn : t -> pid -> (unit -> unit) -> unit

(** Process context: [advance cat dt] advances the calling process's
    virtual clock by [dt], charging the time to [cat].  If request handlers
    interrupt during the span, completion is pushed back by the stolen
    CPU. *)
val advance : Category.t -> Vtime.t -> unit

(** Process context: [await iv] suspends until [iv] is filled and returns
    its value.  Returns immediately if already filled. *)
val await : 'a Ivar.t -> 'a

(** [fill t iv ~at v] fills [iv] at time [at], waking any waiter.
    Usable from handlers and scheduled thunks.
    @raise Invalid_argument if [iv] is already filled. *)
val fill : t -> 'a Ivar.t -> at:Vtime.t -> 'a -> unit

(** Handler context passed to request handlers. *)
type hctx

(** [post_handler t ~pid ~at f] delivers a request to processor [pid] at
    time [at]: [f] runs when the processor's handler slot is free (handlers
    FIFO per processor), charging CPU via {!hcharge}.  [f] must not perform
    process-context effects. *)
val post_handler : t -> pid:pid -> at:Vtime.t -> (hctx -> unit) -> unit

(** [hcharge h cat dt] consumes [dt] of handler CPU, charged to [cat]. *)
val hcharge : hctx -> Category.t -> Vtime.t -> unit

(** [hnow h] is the handler's current virtual time (service start plus CPU
    charged so far) — the departure time for messages it sends. *)
val hnow : hctx -> Vtime.t

(** [hpid h] is the processor the handler runs on. *)
val hpid : hctx -> pid

(** [hfresh h] is [true] when this handler began with the processor's
    handler slot idle — a real system would pay a full signal dispatch.
    [false] means it ran back-to-back after another handler (the SIGIO
    handler loop drains queued messages without re-entering the kernel), so
    callers should charge the cheaper amortised delivery cost. *)
val hfresh : hctx -> bool

(** [run t] executes events until quiescence, or until {!request_stop} is
    called.
    @raise Deadlock if the queue empties while some live (non-crashed)
    process is blocked. *)
val run : t -> unit

(** {2 Crash-stop failures and clean termination} *)

(** [mark_crashed t pid] fails processor [pid] at the current instant:
    its pending handler queue is discarded and no further code (process
    resume, handler, chunk completion) ever runs on it.  Frames already
    on the wire are unaffected — a crash-stop node simply goes silent.
    Idempotent. *)
val mark_crashed : t -> pid -> unit

(** [crashed t pid] holds once {!mark_crashed} was applied to [pid]. *)
val crashed : t -> pid -> bool

(** [crash_time t pid] is when [pid] crashed, if it did. *)
val crash_time : t -> pid -> Vtime.t option

(** [request_stop t reason] makes {!run} return at the next event
    boundary instead of raising from wherever the caller happens to be
    (e.g. a retransmission-timer callback).  Stats, busy times and the
    trace stream all remain intact and renderable.  The first reason
    wins; later requests are ignored. *)
val request_stop : t -> string -> unit

(** [stop_reason t] is the reason passed to {!request_stop}, if any. *)
val stop_reason : t -> string option

(** The payload lists exactly the processes suspended on an ivar when the
    event queue ran dry — the real culprits, not merely every unfinished
    process. *)
exception Deadlock of pid list

(** [finished t pid] holds once [pid]'s application process returned. *)
val finished : t -> pid -> bool

(** [finish_time t pid] is when the process returned.
    @raise Invalid_argument if it has not finished. *)
val finish_time : t -> pid -> Vtime.t

(** [busy t pid cat] is the CPU time processor [pid] charged to [cat]. *)
val busy : t -> pid -> Category.t -> Vtime.t

(** [busy_total t pid] sums {!busy} over all categories. *)
val busy_total : t -> pid -> Vtime.t

(** [end_time t] is the time of the last executed event (the run's
    makespan). *)
val end_time : t -> Vtime.t

(** {2 Typed event tracing}

    The engine owns at most one {!Tmk_trace.Sink.t}; every layer of the
    system (transport, DSM protocol, applications) emits structured
    events through it.  When no sink is installed, emission is a single
    [option] test — instrumented code guards event construction with
    {!tracing} so a disabled trace allocates nothing and perturbs
    nothing. *)

(** [set_sink t s] installs the typed event sink. *)
val set_sink : t -> Tmk_trace.Sink.t -> unit

(** [sink t] is the installed sink, if any. *)
val sink : t -> Tmk_trace.Sink.t option

(** [tracing t] is [true] iff a sink is installed.  Emitting code should
    test this before building an event value. *)
val tracing : t -> bool

(** [emit t ~pid ev] records [ev] at the current virtual time on behalf
    of processor [pid] (use [-1] for engine-level events).  No-op
    without a sink. *)
val emit : t -> pid:pid -> Tmk_trace.Event.t -> unit

(** [emit_at t ~time ~pid ev] records [ev] at an explicit time (for
    contexts whose local clock is ahead of the global one). *)
val emit_at : t -> time:Vtime.t -> pid:pid -> Tmk_trace.Event.t -> unit

(** [hemit h ev] records [ev] from handler context, stamped with the
    handler's own clock ({!hnow}) and pid. *)
val hemit : hctx -> Tmk_trace.Event.t -> unit

(** [htracing h] is {!tracing} reached through a handler context. *)
val htracing : hctx -> bool

(** [trace t msg] records a {!Tmk_trace.Event.Mark} at the current time,
    attributed to the running process if any (no-op without a sink). *)
val trace : t -> string -> unit
