(** Per-processor DSM state and consistency bookkeeping (§3.1–§3.2).

    Mirrors the paper's data structures: the {e PageArray} (page state,
    approximate copyset, per-processor write-notice lists), the
    {e ProcArray} (per-processor interval record lists, newest first),
    interval records carrying vector timestamps, write-notice records
    doubly linked to their intervals, and the diff pool (diffs hang off
    write-notice records).

    Functions here are pure bookkeeping plus simulated-cost charging; they
    never communicate.  They run either in the application process or in a
    request handler, so each takes a [charge] callback that routes CPU
    costs to the right accounting context. *)

open Tmk_sim

(** [charge cat dt] consumes [dt] of CPU in the caller's context. *)
type charge = Category.t -> Vtime.t -> unit

(** Write-notice record: page [wn_page] was modified in interval
    [wn_interval]; [wn_diff] is filled when the diff has been created
    locally or received; [wn_applied] when its content is reflected in the
    local copy (they differ once diffs can arrive piggybacked on
    synchronization messages). *)
type write_notice = {
  wn_page : int;
  wn_interval : interval;
  mutable wn_diff : Tmk_util.Rle.t option;
  mutable wn_applied : bool;
}

(** Interval record of processor [iv_proc], interval index [iv_id],
    stamped [iv_vt]. *)
and interval = {
  iv_proc : int;
  iv_id : int;
  iv_vt : Vector_time.t;
  mutable iv_notices : write_notice list;
}

(** PageArray entry. *)
type page_entry = {
  mutable pg_copyset : Tmk_util.Bitset.t;  (** processors believed to cache the page *)
  pg_notices : write_notice list array;  (** per processor, decreasing interval index *)
  mutable pg_twin : Bytes.t option;
  mutable pg_has_copy : bool;  (** false until a copy has been fetched (or initially held) *)
  mutable pg_fetched : bool;
      (** armed by this processor's own access misses, disarmed by each
          speculative gather; gates multi-page diff gathering so a page
          the processor has stopped touching wastes at most one
          speculative fetch (see [Protocol.fetch_and_apply_diffs]) *)
  mutable pg_no_gather : bool;
      (** set when a responder declined to serve this page's gathered
          entries (diffs too large to ride a reply); blocks further
          speculative gathering of the page *)
}

(** Interval data as carried by synchronization messages.  Under the
    hybrid update protocol ([Config.lrc_updates]) each write notice can
    carry its diff. *)
type msg_interval = {
  mi_proc : int;
  mi_id : int;
  mi_vt : Vector_time.t;
  mi_pages : (int * Tmk_util.Rle.t option) list;
}

type t = {
  pid : int;
  nprocs : int;
  vm : Tmk_mem.Vm.t;
  vt : Vector_time.t;  (** current vector timestamp *)
  mutable next_interval : int;  (** index the next local interval will get *)
  intervals : interval list array;  (** ProcArray: per processor, newest first *)
  pages : page_entry array;
  mutable dirty : int list;  (** pages twinned since the last interval creation *)
  mutable live_records : int;  (** intervals + notices + diffs held (GC trigger) *)
  diff_cache : (int * int * int, Tmk_util.Rle.t) Hashtbl.t;
      (** served-diff cache, keyed (proc, interval id, page); see
          {!cached_diff} *)
  backup_store : (int * int * int, Tmk_util.Rle.t) Hashtbl.t;
      (** diffs mirrored to this node as another processor's backup
          ({!Config.diff_backup}); cleared by {!discard_all_records} *)
  mutable on_diff_create :
    (page:int -> proc:int -> interval:int -> diff:Tmk_util.Rle.t -> unit) option;
      (** replication hook, fired when a local diff is attached to its
          notice; install with {!set_diff_hook} *)
  stats : Stats.t;
  emit : (Tmk_trace.Event.t -> unit) option;
      (** typed-trace hook; [None] disables emission entirely *)
}

(** [create ?emit ~pid ~nprocs ~pages ()] — initial state: processor 0
    holds every page [Read_only] (it is the initial copyset), everyone
    else holds nothing ([No_access], no copy).  [emit], when given,
    receives the node's bookkeeping events (twin creation, interval
    close, diff create/apply, invalidations, record receipt).
    [vm_fast_path] (default [true]) is forwarded to {!Tmk_mem.Vm.create}. *)
val create :
  ?emit:(Tmk_trace.Event.t -> unit) ->
  ?vm_fast_path:bool ->
  pid:int ->
  nprocs:int ->
  pages:int ->
  unit ->
  t

(** [write_fault_twin t page ~charge] — handle a write fault on a valid
    page: make the twin, upgrade to read-write (§3.7 SIGSEGV handler, twin
    branch). *)
val write_fault_twin : t -> int -> charge:charge -> unit

(** [close_interval t ~charge] — if any page was twinned since the last
    interval, start a new interval carrying one write notice per such page
    (§3.2).  No-op otherwise.  [eager_diffs:true] additionally creates
    every new notice's diff immediately (the Munin-style ablation of lazy
    diff creation, §2.4); default [false]. *)
val close_interval : ?eager_diffs:bool -> t -> charge:charge -> unit

(** [intervals_since t vt] — every interval record known to [t] that [vt]
    does not cover, as message intervals ordered oldest-first per
    processor (the piggyback payload of §3.3/§3.4).  [attach] selects a
    piggybacked diff per write notice (hybrid update protocol); the
    default attaches none. *)
val intervals_since :
  ?attach:(write_notice -> Tmk_util.Rle.t option) -> t -> Vector_time.t -> msg_interval list

(** [own_intervals_since t vt] — only [t]'s own intervals newer than
    [vt]'s entry for [t] (barrier arrival payload, §3.4). *)
val own_intervals_since :
  ?attach:(write_notice -> Tmk_util.Rle.t option) -> t -> Vector_time.t -> msg_interval list

(** [notice_counts intervals] — write-notice counts for {!Wire} sizing. *)
val notice_counts : msg_interval list -> int list

(** [update_bytes intervals] — total encoded size of the piggybacked
    diffs (zero under the invalidate protocol). *)
val update_bytes : msg_interval list -> int

(** [incorporate t intervals ~charge] — §3.3's "incorporate": append
    interval records, prepend write-notice records, advance the vector
    timestamp, and invalidate the pages named by the notices.  A local
    twin forces local diff creation before invalidation (§2.4).  Intervals
    already covered by [t.vt] are skipped (they can arrive twice at a
    barrier manager).  Notices carrying piggybacked diffs (hybrid update
    protocol) update valid un-twinned pages in place instead of
    invalidating them. *)
val incorporate : t -> msg_interval list -> charge:charge -> unit

(** [ensure_own_diff t page ~charge] — lazy diff creation (§3.2): if
    [page] is twinned, create the diff against the twin, attach it to the
    newest local write notice for the page, write-protect the page and
    discard the twin.  Returns the diff when one was created or already
    attached to the newest local notice. *)
val ensure_own_diff : t -> int -> charge:charge -> unit

(** [find_diff t ~proc ~interval_id ~page ~charge] — look up a diff in
    the pool, creating it lazily when it is this node's own
    ({!ensure_own_diff}).
    @raise Not_found when the notice is unknown.
    @raise Invalid_argument when the notice exists but its diff is absent
    (protocol invariant violation). *)
val find_diff :
  t -> proc:int -> interval_id:int -> page:int -> charge:charge -> Tmk_util.Rle.t

(** [cached_diff t ~proc ~interval_id ~page] — look up the responder-side
    diff cache.  Diffs are immutable and interval ids are never reused, so
    a hit is always current; the cache is cleared by
    {!discard_all_records}. *)
val cached_diff : t -> proc:int -> interval_id:int -> page:int -> Tmk_util.Rle.t option

(** [cache_diff t ~proc ~interval_id ~page diff] — remember a served
    diff for future fetches of the same (proc, interval, page). *)
val cache_diff : t -> proc:int -> interval_id:int -> page:int -> Tmk_util.Rle.t -> unit

(** [set_diff_hook t f] — install the diff-replication hook: [f] fires
    once per locally created diff, right after the diff is attached to
    its write notice (so inside whatever context created it). *)
val set_diff_hook :
  t -> (page:int -> proc:int -> interval:int -> diff:Tmk_util.Rle.t -> unit) -> unit

(** [store_backup t ~proc ~interval_id ~page diff] — hold a mirrored copy
    of another processor's diff ({!Config.diff_backup}). *)
val store_backup : t -> proc:int -> interval_id:int -> page:int -> Tmk_util.Rle.t -> unit

(** [backup_diff t ~proc ~interval_id ~page] — look up the mirror store
    (recovery path: the creator has crashed). *)
val backup_diff : t -> proc:int -> interval_id:int -> page:int -> Tmk_util.Rle.t option

(** [missing_diffs t page] — the write notices for [page] lacking diffs,
    grouped per processor, each group newest-first. *)
val missing_diffs : t -> int -> (int * write_notice list) list

(** [unapplied_diffs t page] — notices whose diffs are present but not
    yet reflected in the local copy (piggybacked arrivals on an invalid or
    twinned page). *)
val unapplied_diffs : t -> int -> write_notice list

(** [store_diff t ~proc ~interval_id ~page diff] — attach a received diff
    to its notice record. *)
val store_diff : t -> proc:int -> interval_id:int -> page:int -> Tmk_util.Rle.t -> unit

(** [apply_missing_diffs t page notices ~charge] — apply the given
    notices' diffs (which must all be present) in increasing
    vector-timestamp order and validate the page ([Read_only]). *)
val apply_missing_diffs : t -> int -> write_notice list -> charge:charge -> unit

(** [validate_page t page ~charge] — mark a freshly fetched base copy
    present and readable. *)
val validate_page : t -> int -> Bytes.t -> charge:charge -> unit

(** [discard_all_records t ~charge] — GC sweep (§3.6): drop every
    interval, write-notice and diff record, and all twins.  Returns the
    number of records discarded. *)
val discard_all_records : t -> charge:charge -> int

(** [modified_pages t] — pages with a local twin or a local write notice
    (the pages this node must validate during GC). *)
val modified_pages : t -> int list
