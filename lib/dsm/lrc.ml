(* Lazy release consistency (§3): the TreadMarks protocol proper.
   Multiple-writer pages with twins and lazy diffs, interval/write-notice
   records piggybacked on synchronization, minimal-responder diff fetch
   (§3.5), and the optional hybrid update protocol ([Config.lrc_updates])
   and diff replication ([Config.diff_backup]). *)

open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Rle = Tmk_util.Rle
module Bitset = Tmk_util.Bitset

let app_charge = Cluster.app_charge
let h_charge = Cluster.h_charge
let atomically = Cluster.atomically

let caps =
  {
    Backend.c_name = Config.protocol_name Config.Lrc;
    c_crash_runs = true;
    c_zero_recovery = false;
    c_diff_backup = true;
    c_vt_on_wire = true;
  }

(* ------------------------------------------------------------------ *)
(* Access misses (§3.5)                                                *)

let fetch_base cl pid page =
  let node = cl.Cluster.nodes.(pid) in
  let entry = node.Node.pages.(page) in
  let mb = Transport.mailbox () in
  let serve provider h =
    let pnode = cl.Cluster.nodes.(provider) in
    h_charge h Category.Tmk_mem Costs.page_copy;
    let pentry = pnode.Node.pages.(page) in
    Bitset.add pentry.Node.pg_copyset pid;
    (* Serve the twin when the page is dirty: diffs record only the
       bytes that changed relative to their interval's base state, so
       a base copy containing the provider's uncommitted (not yet
       diffed) writes would be byte-inconsistent with the very diffs
       the requester is about to apply over it. *)
    let snapshot =
      match pentry.Node.pg_twin with
      | Some twin -> Bytes.copy twin
      | None -> Vm.page_snapshot pnode.Node.vm page
    in
    Transport.hsend_value ~label:"page-fetch-reply" cl.Cluster.transport h ~dst:pid
      ~bytes:Wire.page_reply_bytes mb (snapshot, Bitset.copy pentry.Node.pg_copyset)
  in
  (* Re-issue against another live copyset member if the provider dies
     before replying.  The retry runs in timer context, so the request
     goes out as a context-free notification. *)
  let rec arm_retry provider =
    Cluster.register_pending cl ~pid ~target:provider
      ~settled:(fun () -> Transport.mailbox_filled mb)
      ~retry:(fun () ->
        match Cluster.choose_provider cl entry.Node.pg_copyset ~self:pid ~page with
        | provider' ->
          arm_retry provider';
          Transport.notify ~label:"page-fetch" cl.Cluster.transport ~src:pid ~dst:provider'
            ~bytes:Wire.page_request_bytes ~deliver:(serve provider')
        | exception Cluster.Empty_copyset _ ->
          Cluster.note_fatal cl ~pid
            (Printf.sprintf "page %d has no live copy (its only copies died with the crash)"
               page))
  in
  match Cluster.choose_provider cl entry.Node.pg_copyset ~self:pid ~page with
  | exception Cluster.Empty_copyset _ ->
    Cluster.degrade_app cl ~pid
      (Printf.sprintf "page %d has no live copy (its only copies died with the crash)" page)
  | provider ->
    app_charge Category.Tmk_other Cpu.page_request_build;
    Transport.send ~label:"page-fetch" cl.Cluster.transport ~src:pid ~dst:provider
      ~bytes:Wire.page_request_bytes ~deliver:(serve provider);
    arm_retry provider;
    let bytes, copyset = Transport.await_value cl.Cluster.transport mb in
    if Engine.tracing cl.Cluster.engine then
      Cluster.emit cl ~pid (Tmk_trace.Event.Page_fetch { page; from_ = provider });
    atomically (fun charge ->
        Node.validate_page node page bytes ~charge;
        Bitset.union_into ~src:copyset ~dst:entry.Node.pg_copyset;
        Bitset.add entry.Node.pg_copyset pid)

(* Serve one gathered diff-request entry on responder [r].  In batched
   mode repeated fetches of the same (proc, interval, page) diff hit the
   responder's cache instead of recomputing/relocating the RLE (diffs are
   immutable and interval ids never reused, so a hit is always current). *)

(* A speculative (other-page) diff rides a gathered reply only if it is
   small: gathering targets the many-small-messages regime the paper
   highlights (§4.7), where a round trip costs far more than the payload;
   a large diff would instead dominate the reply the fault is stalled on,
   losing more latency than the saved round trip.  The faulting page's
   own diffs are always served in full.  Entries the responder declines
   simply stay missing at the requester (which blacklists the page from
   future gathering) and are fetched on their own later miss — cheaply,
   since serving them here already warmed the responder's diff cache. *)
let gather_entry_max = 512

let serve_diff_entry cl r h (page, proc, interval_id) =
  let rnode = cl.Cluster.nodes.(r) in
  let batched = cl.Cluster.cfg.Config.batching in
  let cached = if batched then Node.cached_diff rnode ~proc ~interval_id ~page else None in
  match cached with
  | Some diff ->
    h_charge h Category.Tmk_other Cpu.diff_cache_hit;
    rnode.Node.stats.Stats.diff_cache_hits <- rnode.Node.stats.Stats.diff_cache_hits + 1;
    if Engine.htracing h then
      Engine.hemit h (Tmk_trace.Event.Diff_cache { page; hit = true });
    (page, proc, interval_id, diff)
  | None ->
    h_charge h Category.Tmk_other Cpu.diff_lookup_per_entry;
    let diff = Node.find_diff rnode ~proc ~interval_id ~page ~charge:(h_charge h) in
    if batched then begin
      Node.cache_diff rnode ~proc ~interval_id ~page diff;
      rnode.Node.stats.Stats.diff_cache_misses <-
        rnode.Node.stats.Stats.diff_cache_misses + 1;
      if Engine.htracing h then
        Engine.hemit h (Tmk_trace.Event.Diff_cache { page; hit = false })
    end;
    (page, proc, interval_id, diff)

(* Locate a diff whose creator (or original responder) has crashed: a
   live processor's own notice records (§3.5: a processor that modified
   the page in a covering interval holds the diff), then the diff-backup
   mirror stores ([Config.diff_backup]).  [None] means the diff died with
   the crash. *)
let lookup_diff_anywhere cl ~proc ~interval_id ~page =
  let n = cl.Cluster.cfg.Config.nprocs in
  let rec scan p =
    if p >= n then None
    else if cl.Cluster.dead.(p) then scan (p + 1)
    else
      let pn = cl.Cluster.nodes.(p) in
      let found =
        List.find_opt
          (fun wn -> wn.Node.wn_interval.Node.iv_id = interval_id && wn.Node.wn_diff <> None)
          pn.Node.pages.(page).Node.pg_notices.(proc)
      in
      match found with
      | Some wn -> wn.Node.wn_diff
      | None -> (
        match Node.backup_diff pn ~proc ~interval_id ~page with
        | Some d -> Some d
        | None -> scan (p + 1))
  in
  scan 0

(* Re-issue a gathered diff fetch whose responder died before replying.
   The surviving replacement responder re-serves every entry: its own
   diffs through the normal path, a dead creator's through
   [lookup_diff_anywhere].  Charging all lookups at one coordinator is a
   deliberate simplification — the real recovery would fan out, but the
   total work is the same and the simulator keeps one reply message. *)
let retry_diff_fetch cl ~pid ~entries ~mb =
  match Cluster.lowest_live_other cl pid with
  | None -> Cluster.note_fatal cl ~pid "no live peer left to serve diffs"
  | Some c ->
    let n = List.length entries in
    Transport.notify ~label:"diff-fetch" ~parts:n cl.Cluster.transport ~src:pid ~dst:c
      ~bytes:(Wire.gathered_diff_request_bytes n)
      ~deliver:(fun h ->
        let missing = ref None in
        let replies =
          List.filter_map
            (fun (page, proc, interval_id) ->
              h_charge h Category.Tmk_other Cpu.diff_lookup_per_entry;
              let diff =
                if not cl.Cluster.dead.(proc) then
                  match
                    Node.find_diff cl.Cluster.nodes.(proc) ~proc ~interval_id ~page
                      ~charge:(h_charge h)
                  with
                  | d -> Some d
                  | exception (Not_found | Invalid_argument _) ->
                    lookup_diff_anywhere cl ~proc ~interval_id ~page
                else lookup_diff_anywhere cl ~proc ~interval_id ~page
              in
              match diff with
              | Some d -> Some (page, proc, interval_id, d)
              | None ->
                if !missing = None then missing := Some (page, proc, interval_id);
                None)
            entries
        in
        match !missing with
        | Some (page, proc, interval_id) ->
          Cluster.note_fatal cl ~pid
            (Printf.sprintf "diff (proc %d, interval %d, page %d) died with the crash" proc
               interval_id page)
        | None ->
          let sizes = List.map (fun (_, _, _, d) -> Rle.encoded_size d) replies in
          Transport.hsend_value ~label:"diff-fetch-reply" ~parts:(List.length replies)
            cl.Cluster.transport h ~dst:pid
            ~bytes:(Wire.gathered_diff_reply_bytes sizes)
            mb replies)

(* §3.5 responder assignment for one page: the newest lacking notice per
   processor is a head; undominated heads are the minimal responder set,
   and each processor's lacking notices go to a responder whose newest
   interval covers them (a processor that modified the page in interval i
   holds all of the page's diffs for intervals with smaller timestamps). *)
let plan_page_fetch missing =
  let heads =
    List.map
      (fun (q, wns) ->
        match wns with
        | wn :: _ -> (q, wn.Node.wn_interval.Node.iv_vt)
        | [] -> assert false)
      missing
  in
  let dominated (q, vt) =
    List.exists (fun (r, vt') -> r <> q && Vector_time.leq vt vt') heads
  in
  (heads, List.filter (fun h -> not (dominated h)) heads)

(* Fetch the diffs for [missing] (per-processor groups of notices lacking
   diffs) from the minimal processor set, in parallel, then apply them in
   vector-timestamp order.  In batched mode the requests additionally
   gather other invalidated pages' lacking diffs whenever an
   already-contacted responder provably holds them, so a page-miss burst
   at scale costs one request/response pair per responder instead of one
   per (responder, page). *)
let fetch_and_apply_diffs cl pid page missing =
  let node = cl.Cluster.nodes.(pid) in
  let total_notices = List.fold_left (fun acc (_, wns) -> acc + List.length wns) 0 missing in
  app_charge Category.Tmk_consistency (Vtime.scale Cpu.miss_plan total_notices);
  let _, responders = plan_page_fetch missing in
  let assignments = Hashtbl.create 4 in
  (* per-responder entry buffers, appended in plan order (a reverse-and-flip
     list accumulation here was quadratic in the number of lacking
     processors before it grew a rev_append; the buffer keeps it linear and
     allocation-light) *)
  let entries_for r =
    match Hashtbl.find_opt assignments r with
    | Some v -> v
    | None ->
      let v = Tmk_util.Vec.create () in
      Hashtbl.add assignments r v;
      v
  in
  let assign (q, wns) =
    let vt_q = (List.hd wns).Node.wn_interval.Node.iv_vt in
    let r =
      match List.find_opt (fun (_r, vt_r) -> Vector_time.leq vt_q vt_r) responders with
      | Some (r, _) -> r
      | None -> assert false (* q's own head is undominated or covered *)
    in
    let v = entries_for r in
    List.iter (fun wn -> Tmk_util.Vec.push v (page, q, wn.Node.wn_interval.Node.iv_id)) wns
  in
  List.iter assign missing;
  (* Multi-page gathering (batched mode): ride the requests already going
     out.  Another page's lacking group can be attached to a contacted
     responder [r] when [r] is the group's own creator, or when [r] itself
     modified that page in an interval covering the group's head — either
     way §3.5 guarantees [r] holds the diffs.  Only pages this processor
     has faulted on since their last gather are eligible ([pg_fetched],
     armed by a genuine access miss, disarmed by each gather) — the
     hybrid update protocol's "receiver actively uses the page"
     heuristic, with a one-strike bound: a page the processor has stopped
     touching wastes at most one speculative fetch before gathering stops
     until its next real miss.  Pages whose entries a responder has
     previously declined ([pg_no_gather]: diffs too large to ride a
     reply) are never retried.  Unattached groups are simply fetched on
     their own later miss. *)
  let gathered = ref 0 in
  if cl.Cluster.cfg.Config.batching then begin
    let contacted = Hashtbl.fold (fun r _ acc -> r :: acc) assignments [] in
    Array.iteri
      (fun q_page pentry ->
        if
          q_page <> page && pentry.Node.pg_fetched
          && (not pentry.Node.pg_no_gather)
          && pentry.Node.pg_has_copy
        then
          match Node.missing_diffs node q_page with
          | [] -> ()
          | groups ->
            let heads =
              List.map
                (fun (g, wns) -> (g, (List.hd wns).Node.wn_interval.Node.iv_vt))
                groups
            in
            List.iter
              (fun (g, wns) ->
                if g <> pid then begin
                  let vt_g = (List.hd wns).Node.wn_interval.Node.iv_vt in
                  let holds r =
                    r = g
                    || List.exists
                         (fun (p, vt_p) -> p = r && Vector_time.leq vt_g vt_p)
                         heads
                  in
                  match List.find_opt holds contacted with
                  | None -> ()
                  | Some r ->
                    let v = entries_for r in
                    List.iter
                      (fun wn ->
                        Tmk_util.Vec.push v (q_page, g, wn.Node.wn_interval.Node.iv_id))
                      wns;
                    gathered := !gathered + List.length wns;
                    pentry.Node.pg_fetched <- false
                end)
              groups)
      node.Node.pages;
    if !gathered > 0 then begin
      node.Node.stats.Stats.diff_prefetch_entries <-
        node.Node.stats.Stats.diff_prefetch_entries + !gathered;
      app_charge Category.Tmk_consistency (Vtime.scale Cpu.miss_plan !gathered)
    end
  end;
  let promises =
    Hashtbl.fold
      (fun r entry_buf acc ->
        let entries = Tmk_util.Vec.to_list entry_buf in
        let n = Tmk_util.Vec.length entry_buf in
        app_charge Category.Tmk_other Cpu.page_request_build;
        if cl.Cluster.dead.(r) then begin
          (* The planned responder died before this fetch was issued —
             its write notices still dominate, so the assignment keeps
             naming it.  Route the entries through a live coordinator
             (surviving notice records, then the diff-backup mirrors)
             instead of timing out against a silent peer: suspicion for
             an already-dead processor is ignored, so nothing else
             would ever complete this fetch. *)
          let mb = Transport.mailbox () in
          (match Cluster.lowest_live_other cl pid with
          | Some c ->
            Cluster.register_pending cl ~pid ~target:c
              ~settled:(fun () -> Transport.mailbox_filled mb)
              ~retry:(fun () -> retry_diff_fetch cl ~pid ~entries ~mb)
          | None -> ());
          retry_diff_fetch cl ~pid ~entries ~mb;
          (entries, mb) :: acc
        end
        else begin
          if Engine.tracing cl.Cluster.engine then begin
            (* one Diff_fetch per (responder, page) group of the request *)
            let by_page = Hashtbl.create 4 in
            List.iter
              (fun (p, _, _) ->
                Hashtbl.replace by_page p
                  (1 + Option.value ~default:0 (Hashtbl.find_opt by_page p)))
              entries;
            Hashtbl.iter
              (fun p count ->
                Cluster.emit cl ~pid (Tmk_trace.Event.Diff_fetch { page = p; from_ = r; count }))
              by_page
          end;
          let mb = Transport.mailbox () in
          Cluster.register_pending cl ~pid ~target:r
            ~settled:(fun () -> Transport.mailbox_filled mb)
            ~retry:(fun () -> retry_diff_fetch cl ~pid ~entries ~mb);
          Transport.send ~label:"diff-fetch" ~parts:n cl.Cluster.transport ~src:pid ~dst:r
            ~bytes:(Wire.gathered_diff_request_bytes n)
            ~deliver:(fun h ->
              let replies =
                List.filter_map
                  (fun ((p, _, _) as entry) ->
                    let ((_, _, _, d) as reply) = serve_diff_entry cl r h entry in
                    if p = page || Rle.encoded_size d <= gather_entry_max then Some reply
                    else None)
                  entries
              in
              let sizes = List.map (fun (_, _, _, d) -> Rle.encoded_size d) replies in
              Transport.hsend_value ~label:"diff-fetch-reply"
                ~parts:(List.length replies) cl.Cluster.transport h ~dst:pid
                ~bytes:(Wire.gathered_diff_reply_bytes sizes) mb replies);
          (entries, mb) :: acc
        end)
      assignments []
  in
  let receive (entries, promise) =
    let replies = Transport.await_value cl.Cluster.transport promise in
    List.iter
      (fun (p, proc, interval_id, diff) ->
        Node.store_diff node ~proc ~interval_id ~page:p diff)
      replies;
    (* Drop feedback: a gathered entry the responder declined to serve
       means that page's diffs are too large to prefetch — blacklist the
       page so the request/decline cycle is not repeated at every miss. *)
    List.iter
      (fun ((p, _, _) as entry) ->
        if
          p <> page
          && not (List.exists (fun (p', q', i', _) -> (p', q', i') = entry) replies)
        then node.Node.pages.(p).Node.pg_no_gather <- true)
      entries
  in
  List.iter receive promises;
  atomically (fun charge ->
      (* the fetched diffs, plus any piggybacked ones not yet reflected;
         rev_append (not @): apply_missing_diffs sorts by timestamp *)
      let fetched =
        List.fold_left (fun acc (_, wns) -> List.rev_append wns acc) [] missing
      in
      let pending =
        List.filter (fun wn -> not (List.memq wn fetched)) (Node.unapplied_diffs node page)
      in
      Node.apply_missing_diffs node page (List.rev_append fetched pending) ~charge)

(* Bring [page] current: new write notices can be incorporated by a
   request handler while we wait for replies (this node may be the
   barrier manager); loop until every known diff has been applied. *)
let settle cl pid page =
  let node = cl.Cluster.nodes.(pid) in
  let rec loop () =
    match Node.missing_diffs node page with
    | [] ->
      atomically (fun charge ->
          (match Node.unapplied_diffs node page with
          | [] -> ()
          | pending ->
            (* diffs that arrived piggybacked on synchronization
               messages (hybrid update protocol) while the page was
               invalid or twinned *)
            Node.apply_missing_diffs node page pending ~charge);
          if Vm.prot node.Node.vm page = Vm.No_access then begin
            charge Category.Unix_mem Costs.mprotect;
            Vm.set_prot node.Node.vm page Vm.Read_only
          end)
    | missing ->
      fetch_and_apply_diffs cl pid page missing;
      loop ()
  in
  loop ()

let miss cl pid page =
  Cluster.note_miss cl pid page;
  let entry = cl.Cluster.nodes.(pid).Node.pages.(page) in
  (* A genuine access miss (re-)arms the page for speculative gathering;
     each gather disarms it (one-strike policy, see
     [fetch_and_apply_diffs]). *)
  entry.Node.pg_fetched <- true;
  if not entry.Node.pg_has_copy then fetch_base cl pid page;
  settle cl pid page

(* ------------------------------------------------------------------ *)
(* Hybrid update protocol (§2.2's alternative to invalidation): when
   enabled, synchronization messages piggyback the diffs of pages the
   receiver is believed to cache, and the receiver updates valid pages in
   place. *)

let attach_for cl node ~receiver ~charge =
  if not cl.Cluster.cfg.Config.lrc_updates then None
  else
    Some
      (fun wn ->
        let page = wn.Node.wn_page in
        if Bitset.mem node.Node.pages.(page).Node.pg_copyset receiver then begin
          (* a pending local diff is created now (it is the newest
             diff-less local notice by the lazy-diffing invariant) *)
          if wn.Node.wn_interval.Node.iv_proc = node.Node.pid && wn.Node.wn_diff = None
          then Node.ensure_own_diff node page ~charge;
          wn.Node.wn_diff
        end
        else None)

(* Diff mirroring requires the diff to exist the moment its interval
   closes (a lazily deferred diff would die with its creator), so
   [Config.diff_backup] forces eager creation. *)
let eager_diffs cl =
  (not cl.Cluster.cfg.Config.lazy_diffs) || cl.Cluster.cfg.Config.diff_backup

(* ------------------------------------------------------------------ *)
(* Synchronization payloads                                            *)

(* A new interval logically begins at the release-to-another-processor:
   the grant carries exactly the granter's knowledge not covered by the
   requester's timestamp, so incorporation alone realises the
   pairwise-maximum rule of §2.2; the timestamp itself must only ever
   track incorporated records (see Node.incorporate). *)
let make_acquire cl ~pid =
  let node = cl.Cluster.nodes.(pid) in
  let request_vt = Vector_time.copy node.Node.vt in
  {
    Backend.a_grant =
      (fun ~granter ~charge ->
        let gnode = cl.Cluster.nodes.(granter) in
        Node.close_interval ~eager_diffs:(eager_diffs cl) gnode ~charge;
        let attach = attach_for cl gnode ~receiver:pid ~charge in
        let intervals = Node.intervals_since ?attach gnode request_vt in
        charge Category.Unix_comm Cpu.lock_grant_kernel;
        charge Category.Tmk_other Cpu.lock_grant_dsm;
        let bytes =
          Wire.lock_grant_bytes ~nprocs:cl.Cluster.cfg.Config.nprocs
            (Node.notice_counts intervals)
          + Node.update_bytes intervals
        in
        let granter_vt = Vector_time.copy gnode.Node.vt in
        {
          Backend.p_bytes = bytes;
          p_parts = 1 + List.length intervals;
          p_absorb =
            (fun ~charge ->
              Node.close_interval ~eager_diffs:(eager_diffs cl) node ~charge;
              Node.incorporate node intervals ~charge;
              assert (Vector_time.leq granter_vt node.Node.vt));
        });
  }

let make_arrival cl ~pid =
  let node = cl.Cluster.nodes.(pid) in
  let mgr_node = cl.Cluster.nodes.(Cluster.barrier_manager) in
  let nprocs = cl.Cluster.cfg.Config.nprocs in
  (* Send the manager our intervals it does not know about: everything
     newer than the last manager timestamp we have seen (§3.4). *)
  let mgr_known_vt =
    match node.Node.intervals.(Cluster.barrier_manager) with
    | iv :: _ -> iv.Node.iv_vt
    | [] -> Vector_time.create nprocs
  in
  let own =
    atomically (fun charge ->
        let attach = attach_for cl node ~receiver:Cluster.barrier_manager ~charge in
        Node.own_intervals_since ?attach node mgr_known_vt)
  in
  let arrival_vt = Vector_time.copy node.Node.vt in
  {
    Backend.v_bytes =
      Wire.barrier_arrival_bytes ~nprocs (Node.notice_counts own) + Node.update_bytes own;
    v_parts = 1 + List.length own;
    v_absorb_mgr = (fun ~charge -> Node.incorporate mgr_node own ~charge);
    v_release =
      (* interval selection (and any hybrid-protocol diff creation) runs
         at the manager, atomic with respect to its handlers; the
         timestamp is snapshotted in the same atomic section as the
         interval list — a release whose timestamp claims intervals it
         does not contain breaks the acquirer's coverage invariant at
         the receiving client. *)
      (fun ~charge ->
        let attach = attach_for cl mgr_node ~receiver:pid ~charge in
        let intervals = Node.intervals_since ?attach mgr_node arrival_vt in
        let release_vt = Vector_time.copy mgr_node.Node.vt in
        {
          Backend.p_bytes =
            Wire.barrier_release_bytes ~nprocs (Node.notice_counts intervals)
            + Node.update_bytes intervals;
          p_parts = 1 + List.length intervals;
          p_absorb =
            (fun ~charge ->
              Node.incorporate node intervals ~charge;
              assert (Vector_time.leq release_vt node.Node.vt));
        });
  }

(* GC step 1 (§3.6): validate every page this node modified — flush
   twins to diffs, fetch and apply whatever is missing. *)
let gc_validate cl ~pid =
  let node = cl.Cluster.nodes.(pid) in
  let validate page =
    atomically (fun charge -> Node.ensure_own_diff node page ~charge);
    settle cl pid page
  in
  List.iter validate (Node.modified_pages node)

(* Drop the dead processor from every live node's copysets. *)
let on_death cl dead_pid =
  Array.iteri
    (fun pid node ->
      if not cl.Cluster.dead.(pid) then
        Array.iter (fun entry -> Bitset.remove entry.Node.pg_copyset dead_pid) node.Node.pages)
    cl.Cluster.nodes

(* Diff replication: mirror each locally created diff to its creator's
   deterministic backup peer the moment it exists. *)
let install_diff_backup cl =
  Array.iter
    (fun node ->
      Node.set_diff_hook node (fun ~page ~proc ~interval ~diff ->
          match Cluster.backup_peer cl proc with
          | None -> ()
          | Some b ->
            let bytes = Wire.diff_backup_bytes (Rle.encoded_size diff) in
            node.Node.stats.Stats.diff_backups <- node.Node.stats.Stats.diff_backups + 1;
            node.Node.stats.Stats.diff_backup_bytes <-
              node.Node.stats.Stats.diff_backup_bytes + bytes;
            if Engine.tracing cl.Cluster.engine then
              Engine.emit cl.Cluster.engine ~pid:proc
                (Tmk_trace.Event.Diff_backup { page; proc; interval; bytes; to_ = b });
            Transport.notify ~label:"diff-backup" cl.Cluster.transport ~src:proc ~dst:b
              ~bytes
              ~deliver:(fun h ->
                h_charge h Category.Tmk_mem (Costs.diff_apply 0);
                Node.store_backup cl.Cluster.nodes.(b) ~proc ~interval_id:interval ~page diff)))
    cl.Cluster.nodes

let make cl =
  if cl.Cluster.cfg.Config.diff_backup then install_diff_backup cl;
  {
    Backend.b_caps = caps;
    b_handle_fault =
      (fun ~pid kind page -> Cluster.rc_fault cl pid kind page ~miss:(fun () -> miss cl pid page));
    b_lock_request_bytes = Wire.lock_request_bytes ~nprocs:cl.Cluster.cfg.Config.nprocs;
    b_pre_acquire = Backend.noop_pid;
    b_make_acquire = (fun ~pid -> make_acquire cl ~pid);
    b_pre_release = Backend.noop_pid;
    b_pre_barrier = Backend.noop_pid;
    b_barrier_begin =
      (fun ~pid ->
        atomically (fun charge ->
            Node.close_interval ~eager_diffs:(eager_diffs cl) cl.Cluster.nodes.(pid) ~charge));
    b_make_arrival = (fun ~pid -> make_arrival cl ~pid);
    b_barrier_depart = Backend.noop_pid;
    b_want_gc =
      (fun ~pid ->
        cl.Cluster.nodes.(pid).Node.live_records > cl.Cluster.cfg.Config.gc_threshold);
    b_gc_validate = (fun ~pid -> gc_validate cl ~pid);
    b_on_death = (fun dead_pid -> on_death cl dead_pid);
  }
