(** SC-ABD: majority-quorum replicated memory, packaged as a {!Backend}.

    Every word of every page is a last-writer-wins register fully
    replicated at all processors; misses read a majority (ABD read with
    read-repair), release-time flushes run a two-phase quorum write
    (timestamp query, then store acknowledged by a majority), and
    acquires drop the whole cache.  Quorum intersection makes any
    minority of crashes harmless {e without any recovery protocol}:
    [caps.c_zero_recovery] is set and a [--crash] run completes with an
    empty recovery list. *)

val caps : Backend.caps
val make : Cluster.t -> Backend.t
