(** Backend-agnostic cluster substrate.

    The pieces of a running cluster that every coherence backend and the
    protocol core share: configuration, engine, transport, the per-node
    DSM state, the membership view (detected deaths, epoch), the
    re-issuable-operation registry for crash recovery, and the small
    context helpers (atomic sections, charging, tracing, provider
    choice).  {!Protocol} builds one of these, hands it to the selected
    backend's [make], and layers locks/barriers/GC/failover on top. *)

open Tmk_sim

(** One remote operation whose reply may never come because the serving
    peer can crash: recovery re-issues it against a live peer.  The
    original reply mailbox is reused; value messages never double-fill,
    so a late duplicate from the first attempt is harmless. *)
type pending_op = {
  po_pid : int;  (** the waiting processor *)
  po_seq : int;  (** registration order, for deterministic replay *)
  po_target : int;  (** the peer whose reply is awaited *)
  po_settled : unit -> bool;  (** reply already arrived *)
  po_retry : unit -> unit;  (** re-issue; runs in timer context *)
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  transport : Tmk_net.Transport.t;
  nodes : Node.t array;
  crashes_planned : bool;  (** gates the pending-op registry *)
  dead : bool array;  (** deaths detected so far (protocol view) *)
  mutable epoch : int;  (** membership epoch, bumped per detected death *)
  mutable pending_ops : pending_op list;  (** newest first *)
  mutable next_op : int;
  mutable fatal : (int * string) option;
}

(** [create cfg] builds engine, transport and nodes.  [cfg] must already
    be validated. *)
val create : Config.t -> t

(** The centralized barrier (and GC) manager. *)
val barrier_manager : int

(** Raised when a page fetch finds no live processor in the page's
    copyset (every copy died with a crash). *)
exception Empty_copyset of { pid : int; page : int }

val live : t -> int -> bool
val live_count : t -> int

(** [lowest_live_other t pid] — the lowest-numbered live processor other
    than [pid]; [None] when nobody else is alive. *)
val lowest_live_other : t -> int -> int option

(** The deterministic backup peer for [proc]'s diff mirrors: the next
    live processor in cyclic pid order. *)
val backup_peer : t -> int -> int option

(** [note_fatal t ~pid reason] — record that the run cannot make
    progress (surfaced as [Api.Degraded]) and stop the engine at the
    next event boundary.  Safe from any context. *)
val note_fatal : t -> pid:int -> string -> unit

(** Application-context variant: parks the calling process forever. *)
val degrade_app : t -> pid:int -> string -> 'a

val app_charge : Category.t -> Vtime.t -> unit
val h_charge : Engine.hctx -> Category.t -> Vtime.t -> unit

(** [atomically f] — run protocol bookkeeping without scheduling points:
    [f] receives a charge collector, mutations run instantaneously, and
    the accumulated CPU is charged afterwards (the real implementation
    masks signals around these sections). *)
val atomically : (Node.charge -> 'a) -> 'a

val emit : t -> pid:int -> Tmk_trace.Event.t -> unit

(** Shared Logs source ("tmk.protocol"). *)
module Log : Logs.LOG

(** [choose_provider t copyset ~self ~page] — a live copyset member
    (never [self]), hashed over (page, self) to spread concurrent
    misses.  @raise Empty_copyset when no live candidate remains. *)
val choose_provider : t -> Tmk_util.Bitset.t -> self:int -> page:int -> int

(** Lowest live member variant (ERC: the longest-standing member is the
    only one guaranteed to hold current bytes). *)
val choose_provider_lowest : t -> Tmk_util.Bitset.t -> self:int -> page:int -> int

(** [register_pending t ~pid ~target ~settled ~retry] — register a
    re-issuable remote operation (no-op unless a crash plan is armed). *)
val register_pending :
  t -> pid:int -> target:int -> settled:(unit -> bool) -> retry:(unit -> unit) -> unit

(** [note_miss t pid page] — common access-miss bookkeeping (stats,
    debug log). *)
val note_miss : t -> int -> int -> unit

(** [rc_fault t pid kind page ~miss] — the shared fault prologue of the
    release-consistent backends (LRC, ERC): SIGSEGV and dispatch
    charges, fault stats and events, twin creation on write-to-valid,
    and the protection-state dispatch into [miss] for invalid pages. *)
val rc_fault : t -> int -> Tmk_mem.Vm.access -> int -> miss:(unit -> unit) -> unit
