open Tmk_sim
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Rle = Tmk_util.Rle
module Bitset = Tmk_util.Bitset

type charge = Category.t -> Vtime.t -> unit

type write_notice = {
  wn_page : int;
  wn_interval : interval;
  mutable wn_diff : Rle.t option;
  mutable wn_applied : bool;
      (* the diff's content is reflected in the local copy of the page;
         distinct from wn_diff presence once diffs can arrive piggybacked
         on synchronization messages (hybrid update protocol) *)
}

and interval = {
  iv_proc : int;
  iv_id : int;
  iv_vt : Vector_time.t;
  mutable iv_notices : write_notice list;
}

type page_entry = {
  mutable pg_copyset : Bitset.t;
  pg_notices : write_notice list array;
  mutable pg_twin : Bytes.t option;
  mutable pg_has_copy : bool;
  mutable pg_fetched : bool;
  mutable pg_no_gather : bool;
}

type msg_interval = {
  mi_proc : int;
  mi_id : int;
  mi_vt : Vector_time.t;
  mi_pages : (int * Rle.t option) list;
      (* page and, under the hybrid update protocol, its piggybacked diff *)
}

type t = {
  pid : int;
  nprocs : int;
  vm : Vm.t;
  vt : Vector_time.t;
  mutable next_interval : int;
  intervals : interval list array;
  pages : page_entry array;
  mutable dirty : int list;
  mutable live_records : int;
  diff_cache : (int * int * int, Rle.t) Hashtbl.t;
      (* responder-side cache of served diffs, keyed (proc, interval id,
         page).  Diffs are immutable once created and interval ids are
         never reused (next_interval survives GC), so entries can never go
         stale; the table is cleared with the records it shadows at GC *)
  backup_store : (int * int * int, Rle.t) Hashtbl.t;
      (* diffs mirrored TO this node as another processor's backup
         (Config.diff_backup), keyed like the diff cache; consulted when
         the creator has crashed, cleared with everything else at GC *)
  mutable on_diff_create :
    (page:int -> proc:int -> interval:int -> diff:Rle.t -> unit) option;
      (* fires whenever a local diff is attached to its write notice —
         the protocol's diff-replication hook (None outside diff_backup
         mode) *)
  stats : Stats.t;
  emit : (Tmk_trace.Event.t -> unit) option;
      (* typed-trace emission hook; None disables (and must cost nothing) *)
}

(* Guard with [tracing] before constructing an event value so a disabled
   trace allocates nothing. *)
let tracing t = t.emit <> None
let emit t ev = match t.emit with None -> () | Some f -> f ev
let vt_array t vt = Array.init t.nprocs (Vector_time.get vt)

let create ?emit ?(vm_fast_path = true) ~pid ~nprocs ~pages () =
  let vm = Vm.create ~fast_path:vm_fast_path ~pages () in
  let make_entry _ =
    let copyset = Bitset.create nprocs in
    Bitset.add copyset 0;
    {
      pg_copyset = copyset;
      pg_notices = Array.make nprocs [];
      pg_twin = None;
      pg_has_copy = pid = 0;
      pg_fetched = false;
      pg_no_gather = false;
    }
  in
  (* Processor 0 starts with every page valid but write-protected (a first
     write must twin); everyone else has no copies at all. *)
  for page = 0 to pages - 1 do
    Vm.set_prot vm page (if pid = 0 then Vm.Read_only else Vm.No_access)
  done;
  {
    pid;
    nprocs;
    vm;
    vt = Vector_time.create nprocs;
    next_interval = 1;
    intervals = Array.make nprocs [];
    pages = Array.init pages make_entry;
    dirty = [];
    live_records = 0;
    diff_cache = Hashtbl.create 64;
    backup_store = Hashtbl.create 16;
    on_diff_create = None;
    stats = Stats.create ();
    emit;
  }

let set_diff_hook t f = t.on_diff_create <- Some f
let store_backup t ~proc ~interval_id ~page diff =
  Hashtbl.replace t.backup_store (proc, interval_id, page) diff

let backup_diff t ~proc ~interval_id ~page =
  Hashtbl.find_opt t.backup_store (proc, interval_id, page)

let write_fault_twin t page ~charge =
  let entry = t.pages.(page) in
  assert (entry.pg_twin = None);
  charge Category.Tmk_mem Costs.twin_copy;
  entry.pg_twin <- Some (Vm.page_snapshot t.vm page);
  charge Category.Unix_mem Costs.mprotect;
  Vm.set_prot t.vm page Vm.Read_write;
  t.dirty <- page :: t.dirty;
  t.stats.Stats.twins_created <- t.stats.Stats.twins_created + 1;
  if tracing t then emit t (Tmk_trace.Event.Twin_create { page })

(* [attach] decides the piggybacked diff for one write notice (hybrid
   update protocol); the plain invalidate protocol attaches nothing. *)
let to_msg ?(attach = fun _ -> None) iv =
  {
    mi_proc = iv.iv_proc;
    mi_id = iv.iv_id;
    mi_vt = iv.iv_vt;
    mi_pages = List.map (fun wn -> (wn.wn_page, attach wn)) iv.iv_notices;
  }

(* Intervals of processor [q] newer than [vt]'s entry for [q], oldest
   first.  Stored lists are newest-first and contiguous, so this is a
   reversed prefix. *)
let proc_intervals_since ?attach t q vt =
  let bound = Vector_time.get vt q in
  let rec take acc = function
    | iv :: rest when iv.iv_id > bound -> take (to_msg ?attach iv :: acc) rest
    | _ -> acc
  in
  take [] t.intervals.(q)

let intervals_since ?attach t vt =
  (* Flatten once into a push-in-order buffer instead of concatenating
     per-processor lists (the concat re-walked every earlier prefix). *)
  let out = Tmk_util.Vec.create () in
  for q = 0 to t.nprocs - 1 do
    List.iter (Tmk_util.Vec.push out) (proc_intervals_since ?attach t q vt)
  done;
  Tmk_util.Vec.to_list out

let own_intervals_since ?attach t vt = proc_intervals_since ?attach t t.pid vt

let notice_counts intervals = List.map (fun mi -> List.length mi.mi_pages) intervals

let update_bytes intervals =
  List.fold_left
    (fun acc mi ->
      List.fold_left
        (fun acc (_, diff) ->
          match diff with None -> acc | Some d -> acc + Rle.encoded_size d)
        acc mi.mi_pages)
    0 intervals

let rec close_interval ?(eager_diffs = false) t ~charge =
  match t.dirty with
  | [] -> ()
  | dirty ->
    let id = t.next_interval in
    t.next_interval <- id + 1;
    Vector_time.set t.vt t.pid id;
    let iv = { iv_proc = t.pid; iv_id = id; iv_vt = Vector_time.copy t.vt; iv_notices = [] } in
    charge Category.Tmk_consistency
      (Vtime.add Cpu.interval_close_base
         (Vtime.scale Cpu.interval_close_per_page (List.length dirty)));
    let add_notice page =
      let wn = { wn_page = page; wn_interval = iv; wn_diff = None; wn_applied = true } in
      iv.iv_notices <- wn :: iv.iv_notices;
      t.pages.(page).pg_notices.(t.pid) <- wn :: t.pages.(page).pg_notices.(t.pid);
      t.live_records <- t.live_records + 1
    in
    List.iter add_notice dirty;
    t.intervals.(t.pid) <- iv :: t.intervals.(t.pid);
    t.live_records <- t.live_records + 1;
    t.dirty <- [];
    if tracing t then
      emit t
        (Tmk_trace.Event.Interval_close
           { id; notices = List.length iv.iv_notices; vt = vt_array t iv.iv_vt });
    (* Munin-style ablation: create every diff at the release instead of
       on demand (§2.4 argues laziness avoids many of these). *)
    if eager_diffs then List.iter (fun page -> ensure_own_diff t page ~charge) dirty

(* Compute and record the diff of a twinned page; the caller decides the
   page's subsequent protection (read-only after lazy creation, no-access
   when invalidating).  The twin's writes belong to the current interval:
   if that interval has not been materialized yet (e.g. a write notice
   arrives in a request handler while this processor is still computing,
   before any remote synchronization of its own), it is closed here so
   the diff has a notice to attach to — "a subsequent write results in a
   write notice for the next interval" (§3.2). *)
and make_diff_now t page ~charge =
  let entry = t.pages.(page) in
  match entry.pg_twin with
  | None -> ()
  | Some twin ->
    (match entry.pg_notices.(t.pid) with
    | wn :: _ when wn.wn_diff = None -> ()
    | _ -> close_interval t ~charge);
    charge Category.Tmk_mem (Costs.diff_create Vm.page_size);
    let diff = Vm.diff_against t.vm page ~twin in
    entry.pg_twin <- None;
    t.stats.Stats.diffs_created <- t.stats.Stats.diffs_created + 1;
    t.stats.Stats.diff_bytes_created <-
      t.stats.Stats.diff_bytes_created + Rle.encoded_size diff;
    t.live_records <- t.live_records + 1;
    (match entry.pg_notices.(t.pid) with
    | wn :: _ when wn.wn_diff = None ->
      wn.wn_diff <- Some diff;
      if tracing t then
        emit t
          (Tmk_trace.Event.Diff_create
             { page; bytes = Rle.encoded_size diff; proc = t.pid;
               interval = wn.wn_interval.iv_id });
      (match t.on_diff_create with
      | Some f -> f ~page ~proc:t.pid ~interval:wn.wn_interval.iv_id ~diff
      | None -> ())
    | _ ->
      invalid_arg
        (Printf.sprintf "Node.make_diff_now: page %d twinned without an open notice" page))

(* Lazy diff creation (§3.2): "the actual diff is created, the page is
   read protected, and the twin is discarded". *)
and ensure_own_diff t page ~charge =
  if t.pages.(page).pg_twin <> None then begin
    make_diff_now t page ~charge;
    charge Category.Unix_mem Costs.mprotect;
    Vm.set_prot t.vm page Vm.Read_only
  end

(* Invalidate a page on receipt of a write notice: local modifications are
   first saved as a diff (§2.4: "it is essential to make a diff"). *)
let invalidate t page ~charge =
  make_diff_now t page ~charge;
  if Vm.prot t.vm page <> Vm.No_access then begin
    charge Category.Unix_mem Costs.mprotect;
    Vm.set_prot t.vm page Vm.No_access;
    if tracing t then emit t (Tmk_trace.Event.Page_invalidate { page })
  end

let find_notice t ~proc ~interval_id ~page =
  let rec find = function
    | [] -> raise Not_found
    | wn :: rest -> if wn.wn_interval.iv_id = interval_id then wn else find rest
  in
  find t.pages.(page).pg_notices.(proc)

let find_diff t ~proc ~interval_id ~page ~charge =
  (if proc = t.pid then
     (* Our own diff may not exist yet: this is the lazy-creation point
        for a diff request from another processor (§3.2). *)
     let entry = t.pages.(page) in
     match entry.pg_notices.(t.pid) with
     | wn :: _ when wn.wn_diff = None && wn.wn_interval.iv_id = interval_id ->
       ensure_own_diff t page ~charge
     | _ -> ());
  let wn = find_notice t ~proc ~interval_id ~page in
  match wn.wn_diff with
  | Some diff -> diff
  | None ->
    invalid_arg
      (Printf.sprintf "Node.find_diff: notice (proc %d, interval %d, page %d) has no diff"
         proc interval_id page)

let cached_diff t ~proc ~interval_id ~page =
  Hashtbl.find_opt t.diff_cache (proc, interval_id, page)

let cache_diff t ~proc ~interval_id ~page diff =
  Hashtbl.replace t.diff_cache (proc, interval_id, page) diff

let missing_diffs t page =
  (* Scan the whole notice list: with piggybacked diffs (hybrid update
     protocol) a newer notice can hold its diff while an older one still
     lacks one, so the diff-less notices are not necessarily a prefix. *)
  let entry = t.pages.(page) in
  let per_proc q =
    match List.filter (fun wn -> wn.wn_diff = None) entry.pg_notices.(q) with
    | [] -> None
    | l -> Some (q, l) (* newest-first, like the source list *)
  in
  List.filter_map per_proc (List.init t.nprocs (fun q -> q))

let unapplied_diffs t page =
  let entry = t.pages.(page) in
  List.concat_map
    (fun q -> List.filter (fun wn -> wn.wn_diff <> None && not wn.wn_applied) entry.pg_notices.(q))
    (List.init t.nprocs (fun q -> q))

let store_diff t ~proc ~interval_id ~page diff =
  let wn = find_notice t ~proc ~interval_id ~page in
  if wn.wn_diff = None then begin
    wn.wn_diff <- Some diff;
    t.live_records <- t.live_records + 1
  end

let apply_missing_diffs t page notices ~charge =
  (* The local (out-of-date) copy already reflects every previously held
     diff and this node's own saved modifications.  A freshly fetched diff
     can be older in the happened-before order than content already in
     the copy (its creator folded pre-synchronization writes into it,
     §3.2), so applying it alone would regress those words.  Rebuild the
     suffix instead: apply, in increasing vector-timestamp order, the
     missing diffs together with every held diff that is not ordered
     strictly before all of them. *)
  let missing_vts = List.map (fun wn -> wn.wn_interval.iv_vt) notices in
  let needs_replay wn =
    wn.wn_diff <> None
    && (not (List.memq wn notices))
    && List.exists
         (fun mvt -> Vector_time.compare_total mvt wn.wn_interval.iv_vt < 0)
         missing_vts
  in
  let replay =
    List.concat_map
      (fun q -> List.filter needs_replay t.pages.(page).pg_notices.(q))
      (List.init t.nprocs (fun q -> q))
  in
  let ordered =
    (* rev_append, not (@): [notices] can be long on the replay path and
       the sort is insensitive to input order (compare_total totally
       orders distinct intervals). *)
    List.sort
      (fun a b -> Vector_time.compare_total a.wn_interval.iv_vt b.wn_interval.iv_vt)
      (List.rev_append notices replay)
  in
  let apply wn =
    match wn.wn_diff with
    | None ->
      invalid_arg
        (Printf.sprintf "Node.apply_missing_diffs: diff absent (proc %d, page %d)"
           wn.wn_interval.iv_proc page)
    | Some diff ->
      charge Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
      Vm.patch t.vm page diff;
      wn.wn_applied <- true;
      t.stats.Stats.diffs_applied <- t.stats.Stats.diffs_applied + 1;
      if tracing t then
        emit t
          (Tmk_trace.Event.Diff_apply
             { page; bytes = Rle.payload_size diff; proc = wn.wn_interval.iv_proc;
               interval = wn.wn_interval.iv_id })
  in
  List.iter apply ordered;
  charge Category.Unix_mem Costs.mprotect;
  Vm.set_prot t.vm page Vm.Read_only

let incorporate t intervals ~charge =
  charge Category.Tmk_consistency Cpu.incorporate_base;
  (* Save local modifications of the named pages FIRST, before the vector
     timestamp advances: a twinned page without an open notice forces an
     interval close inside make_diff_now, and that interval's timestamp
     must not claim coverage of the incoming intervals (it would break the
     §3.5 invariant that a processor whose interval covers another's holds
     its diffs). *)
  List.iter
    (fun mi ->
      (* only intervals that will actually be incorporated below; a
         duplicate's pages must not be touched (the settle pass would
         never fix their protection up) *)
      if mi.mi_id > Vector_time.get t.vt mi.mi_proc then
        List.iter
          (fun (page, _) ->
            if t.pages.(page).pg_twin <> None then make_diff_now t page ~charge)
          mi.mi_pages)
    intervals;
  (* Under the hybrid update protocol some notices arrive with their diff
     attached; a valid page whose fresh notices all carried diffs is
     updated in place instead of invalidated. *)
  let fresh_by_page : (int, write_notice list) Hashtbl.t = Hashtbl.create 8 in
  let add_one mi =
    (* Skip intervals we already cover (possible at the barrier manager
       when two clients both forward a third party's interval). *)
    if mi.mi_id > Vector_time.get t.vt mi.mi_proc then begin
      charge Category.Tmk_consistency Cpu.incorporate_per_interval;
      let iv =
        { iv_proc = mi.mi_proc; iv_id = mi.mi_id; iv_vt = mi.mi_vt; iv_notices = [] }
      in
      let add_notice (page, diff) =
        charge Category.Tmk_consistency Cpu.incorporate_per_notice;
        let wn = { wn_page = page; wn_interval = iv; wn_diff = diff; wn_applied = false } in
        iv.iv_notices <- wn :: iv.iv_notices;
        t.pages.(page).pg_notices.(mi.mi_proc) <-
          wn :: t.pages.(page).pg_notices.(mi.mi_proc);
        t.live_records <- t.live_records + (if diff = None then 1 else 2);
        t.stats.Stats.write_notices_in <- t.stats.Stats.write_notices_in + 1;
        if tracing t then
          emit t
            (Tmk_trace.Event.Write_notice_recv
               { page; proc = mi.mi_proc; interval = mi.mi_id });
        let prev = Option.value ~default:[] (Hashtbl.find_opt fresh_by_page page) in
        Hashtbl.replace fresh_by_page page (wn :: prev)
      in
      if tracing t then
        emit t
          (Tmk_trace.Event.Interval_recv
             {
               proc = mi.mi_proc;
               id = mi.mi_id;
               notices = List.length mi.mi_pages;
               vt = vt_array t mi.mi_vt;
             });
      List.iter add_notice mi.mi_pages;
      t.intervals.(mi.mi_proc) <- iv :: t.intervals.(mi.mi_proc);
      t.live_records <- t.live_records + 1;
      t.stats.Stats.intervals_in <- t.stats.Stats.intervals_in + 1;
      (* Advance only this processor's entry.  Folding in the interval's
         whole vector timestamp would mark transitively-covered intervals
         as seen before their records arrive (they may be later in this
         same message, or in another barrier client's arrival), and the
         skip above would then drop them forever.  The timestamp must
         track record coverage exactly. *)
      Vector_time.set t.vt mi.mi_proc mi.mi_id
    end
  in
  List.iter add_one intervals;
  let settle page fresh =
    let updatable =
      (* update in place only for a currently valid page with no local
         twin (a twinned page would need its twin patched too; the plain
         invalidate path handles it via the local diff) and no other diffs
         outstanding *)
      t.pages.(page).pg_twin = None
      && Vm.prot t.vm page <> Vm.No_access
      && List.for_all (fun wn -> wn.wn_diff <> None) fresh
      && missing_diffs t page = []
    in
    if updatable then apply_missing_diffs t page fresh ~charge
    else invalidate t page ~charge
  in
  Hashtbl.iter settle fresh_by_page

let validate_page t page bytes ~charge =
  charge Category.Tmk_mem Costs.page_copy;
  Vm.install_page t.vm page bytes;
  t.pages.(page).pg_has_copy <- true;
  t.stats.Stats.page_fetches <- t.stats.Stats.page_fetches + 1

let discard_all_records t ~charge =
  let discarded = t.live_records in
  charge Category.Tmk_other (Vtime.scale Cpu.gc_per_record discarded);
  for q = 0 to t.nprocs - 1 do
    t.intervals.(q) <- []
  done;
  Array.iter
    (fun entry ->
      Array.fill entry.pg_notices 0 t.nprocs [];
      entry.pg_twin <- None;
      (* the gather blacklist describes diffs that no longer exist *)
      entry.pg_no_gather <- false)
    t.pages;
  t.dirty <- [];
  t.live_records <- 0;
  Hashtbl.reset t.diff_cache;
  (* the mirrored diffs shadow records every node is discarding right now *)
  Hashtbl.reset t.backup_store;
  t.stats.Stats.records_discarded <- t.stats.Stats.records_discarded + discarded;
  discarded

let modified_pages t =
  let result = ref [] in
  Array.iteri
    (fun page entry ->
      if entry.pg_twin <> None || entry.pg_notices.(t.pid) <> [] then
        result := page :: !result)
    t.pages;
  List.rev !result
