type protocol = Lrc | Erc | Sc | Tardis | Sc_abd

type t = {
  nprocs : int;
  pages : int;
  protocol : protocol;
  net : Tmk_net.Params.t;
  faults : Tmk_net.Fault_plan.t;
  gc_threshold : int;
  seed : int64;
  flop_ns : int;
  lazy_diffs : bool;
  lrc_updates : bool;
  batching : bool;
  diff_backup : bool;
  vm_fast_path : bool;
  trace : Tmk_trace.Sink.t option;
  check : Tmk_check.Checker.t option;
}

let default =
  {
    nprocs = 8;
    pages = 256;
    protocol = Lrc;
    net = Tmk_net.Params.atm_aal34;
    faults = Tmk_net.Fault_plan.none;
    gc_threshold = max_int;
    seed = 1L;
    flop_ns = 200;
    lazy_diffs = true;
    lrc_updates = false;
    batching = true;
    diff_backup = false;
    vm_fast_path = true;
    trace = None;
    check = None;
  }

let validate t =
  if t.nprocs < 1 then invalid_arg "Config: nprocs must be >= 1";
  if t.pages < 1 then invalid_arg "Config: pages must be >= 1";
  if t.gc_threshold < 1 then invalid_arg "Config: gc_threshold must be >= 1";
  if t.flop_ns < 0 then invalid_arg "Config: flop_ns must be >= 0";
  Tmk_net.Fault_plan.validate t.faults;
  List.iter
    (fun p ->
      if p < 0 || p >= t.nprocs then
        invalid_arg "Config: unreachable pid outside the cluster")
    t.faults.Tmk_net.Fault_plan.unreachable;
  List.iter
    (fun s ->
      if s.Tmk_net.Fault_plan.st_pid >= t.nprocs then
        invalid_arg "Config: stall pid outside the cluster")
    t.faults.Tmk_net.Fault_plan.stalls;
  List.iter
    (fun c ->
      if c.Tmk_net.Fault_plan.cr_pid >= t.nprocs then
        invalid_arg "Config: crash pid outside the cluster")
    t.faults.Tmk_net.Fault_plan.crashes;
  (* Whether crash schedules or diff_backup are admissible depends on the
     selected coherence backend's capabilities; Protocol.create checks
     them against [Backend.caps] (this module cannot: the backend modules
     sit above it in the dependency order). *)
  match t.check with
  | None -> ()
  | Some c ->
    (match Tmk_check.Checker.race c with
    | Some r ->
      if Tmk_check.Race.nprocs r <> t.nprocs then
        invalid_arg "Config: race detector sized for a different cluster";
      if Tmk_check.Race.pages r <> t.pages then
        invalid_arg "Config: race detector sized for a different address space"
    | None -> ());
    (match Tmk_check.Checker.oracle c with
    | Some o ->
      if Tmk_check.Oracle.nprocs o <> t.nprocs then
        invalid_arg "Config: invariant oracle sized for a different cluster"
    | None -> ())

let protocol_name = function
  | Lrc -> "lazy"
  | Erc -> "eager"
  | Sc -> "sc"
  | Tardis -> "tardis"
  | Sc_abd -> "sc-abd"

let protocol_description = function
  | Lrc -> "lazy release consistency"
  | Erc -> "eager release consistency"
  | Sc -> "sequentially-consistent single-writer"
  | Tardis -> "tardis timestamp coherence"
  | Sc_abd -> "sc-abd quorum replication"

let all_protocols = [ Lrc; Erc; Sc; Tardis; Sc_abd ]

let protocol_of_string s =
  match String.lowercase_ascii s with
  | "lazy" | "lrc" -> Lrc
  | "eager" | "erc" -> Erc
  | "sc" | "single-writer" -> Sc
  | "tardis" -> Tardis
  | "sc-abd" | "abd" -> Sc_abd
  | other ->
    invalid_arg
      (Printf.sprintf "Config.protocol_of_string: unknown protocol %S (valid: %s)" other
         (String.concat ", " (List.map protocol_name all_protocols)))
