open Tmk_sim
module Vm = Tmk_mem.Vm

type farray = { f_base : int; f_len : int }
type iarray = { i_base : int; i_len : int }

type ctx = {
  cluster : Protocol.t;
  cpid : int;
  node : Node.t;
  mutable alloc_next : int;  (* bump allocator, replicated per processor *)
  mutable alloc_seq : int;  (* index into the shared allocation log *)
  cprng : Tmk_util.Prng.t;
  alloc_log : (int, int * int) Hashtbl.t;  (* shared across processors: step -> (size, base) *)
  mutable coll_scratch : (farray * iarray) option;
      (* per-processor slot arrays for the collectives, allocated lazily
         on the first reduce (collective calls are SPMD-synchronous, so
         the lazy allocation happens at the same sequence step everywhere) *)
}

type run_result = {
  cluster : Protocol.t;
  total_time : Vtime.t;
  proc_finish : Vtime.t array;
  busy : Vtime.t array array;
  idle : Vtime.t array;
  stats : Stats.t array;
  total_stats : Stats.t;
  messages : int;
  bytes : int;
  retransmissions : int;
  frames_coalesced : int;
  stopped : string option;
  recoveries : Protocol.recovery list;
}

exception Degraded of { pid : int; reason : string }

let () =
  Printexc.register_printer (function
    | Degraded { pid; reason } ->
      Some (Printf.sprintf "Tmk_dsm.Api.Degraded(processor %d: %s)" pid reason)
    | _ -> None)

let pid (ctx : ctx) = ctx.cpid
let nprocs (ctx : ctx) = Protocol.config ctx.cluster |> fun c -> c.Config.nprocs
let config (ctx : ctx) = Protocol.config ctx.cluster
let prng (ctx : ctx) = ctx.cprng

(* ------------------------------------------------------------------ *)
(* Shared memory                                                       *)

let malloc ?(align = 8) (ctx : ctx) ~bytes =
  if bytes <= 0 then invalid_arg "Api.malloc: bytes must be positive";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Api.malloc: align must be a power of two";
  let base = (ctx.alloc_next + align - 1) land lnot (align - 1) in
  let limit = (Protocol.config ctx.cluster).Config.pages * Vm.page_size in
  if base + bytes > limit then
    invalid_arg
      (Printf.sprintf "Api.malloc: out of shared memory (%d + %d > %d); raise Config.pages"
         base bytes limit);
  ctx.alloc_next <- base + bytes;
  (* SPMD discipline check: every processor must produce the identical
     allocation sequence. *)
  let seq = ctx.alloc_seq in
  ctx.alloc_seq <- seq + 1;
  (match Hashtbl.find_opt ctx.alloc_log seq with
  | Some (expected_bytes, expected_base) ->
    if expected_bytes <> bytes || expected_base <> base then
      invalid_arg
        (Printf.sprintf
           "Api.malloc: allocation sequences diverge at step %d (processor %d asked %d@%d, \
            first caller got %d@%d)"
           seq ctx.cpid bytes base expected_bytes expected_base)
  | None -> Hashtbl.add ctx.alloc_log seq (bytes, base));
  base

let falloc ?align ctx len = { f_base = malloc ?align ctx ~bytes:(8 * len); f_len = len }
let ialloc ?align ctx len = { i_base = malloc ?align ctx ~bytes:(8 * len); i_len = len }
let flen a = a.f_len
let ilen a = a.i_len

let read_f64 (ctx : ctx) addr = Vm.read_f64 ctx.node.Node.vm addr
let write_f64 (ctx : ctx) addr v = Vm.write_f64 ctx.node.Node.vm addr v
let read_int (ctx : ctx) addr = Vm.read_int ctx.node.Node.vm addr
let write_int (ctx : ctx) addr v = Vm.write_int ctx.node.Node.vm addr v

let fget ctx a i =
  if i < 0 || i >= a.f_len then invalid_arg "Api.fget: index out of bounds";
  read_f64 ctx (a.f_base + (8 * i))

let fset ctx a i v =
  if i < 0 || i >= a.f_len then invalid_arg "Api.fset: index out of bounds";
  write_f64 ctx (a.f_base + (8 * i)) v

let iget ctx a i =
  if i < 0 || i >= a.i_len then invalid_arg "Api.iget: index out of bounds";
  read_int ctx (a.i_base + (8 * i))

let iset ctx a i v =
  if i < 0 || i >= a.i_len then invalid_arg "Api.iset: index out of bounds";
  write_int ctx (a.i_base + (8 * i)) v

(* ------------------------------------------------------------------ *)
(* Synchronization and computation                                     *)

let acquire (ctx : ctx) lock = Protocol.acquire ctx.cluster ~pid:ctx.cpid ~lock
let release (ctx : ctx) lock = Protocol.release ctx.cluster ~pid:ctx.cpid ~lock

let with_lock ctx lock f =
  acquire ctx lock;
  match f () with
  | v ->
    release ctx lock;
    v
  | exception e ->
    release ctx lock;
    raise e

let barrier (ctx : ctx) id = Protocol.barrier ctx.cluster ~pid:ctx.cpid ~id

(* Declare an intentionally unsynchronized span (e.g. TSP's unsynchronized
   read of the global bound, §5.2: a stale value only costs extra search).
   When a race detector is riding along, its view of the accesses made
   inside [f] is suppressed entirely — they neither raise findings nor
   update the read/write frontiers, so a later properly locked access is
   not compared against them either. *)
let unsynchronized (ctx : ctx) f =
  let race, hooks =
    match (Protocol.config ctx.cluster).Config.check with
    | Some c -> (Tmk_check.Checker.race c, Tmk_check.Checker.hooks c)
    | None -> (None, [])
  in
  match (race, hooks) with
  | None, [] -> f ()
  | _ ->
    let set on =
      (match race with
      | Some r -> Tmk_check.Race.suppress r ~pid:ctx.cpid on
      | None -> ());
      List.iter (fun h -> h.Tmk_check.Hooks.h_suppress ~pid:ctx.cpid on) hooks
    in
    set true;
    Fun.protect ~finally:(fun () -> set false) f

let compute_ns (ctx : ctx) ns = Protocol.charge_compute ctx.cluster ~pid:ctx.cpid ns

let compute_flops (ctx : ctx) n =
  if n > 0 then compute_ns ctx (n * (Protocol.config ctx.cluster).Config.flop_ns)

(* ------------------------------------------------------------------ *)
(* Collectives (barrier composition; see the interface for the contract) *)

(* Barrier ids at and above this value are reserved for the collectives
   (sequential reuse of a barrier id is safe: the manager resets the
   barrier's state before sending the releases). *)
let coll_barrier_base = 1 lsl 30

let scratch (ctx : ctx) =
  match ctx.coll_scratch with
  | Some s -> s
  | None ->
    let n = nprocs ctx in
    let s = (falloc ctx n, ialloc ctx n) in
    ctx.coll_scratch <- Some s;
    s

(* Every processor deposits its contribution in its own slot, meets at a
   barrier, folds the slots in pid order (deterministic: all processors
   compute the identical result, bit for bit), and meets again so nobody
   can overwrite a slot for the next collective while a slow processor is
   still folding. *)
let reduce_f (ctx : ctx) f v =
  let n = nprocs ctx in
  if n = 1 then v
  else begin
    let fa, _ = scratch ctx in
    fset ctx fa ctx.cpid v;
    barrier ctx coll_barrier_base;
    let acc = ref (fget ctx fa 0) in
    for q = 1 to n - 1 do
      acc := f !acc (fget ctx fa q)
    done;
    barrier ctx (coll_barrier_base + 1);
    !acc
  end

let reduce_i (ctx : ctx) f v =
  let n = nprocs ctx in
  if n = 1 then v
  else begin
    let _, ia = scratch ctx in
    iset ctx ia ctx.cpid v;
    barrier ctx coll_barrier_base;
    let acc = ref (iget ctx ia 0) in
    for q = 1 to n - 1 do
      acc := f !acc (iget ctx ia q)
    done;
    barrier ctx (coll_barrier_base + 1);
    !acc
  end

let bcast ?(root = 0) (ctx : ctx) f =
  if ctx.cpid = root then f ();
  barrier ctx (coll_barrier_base + 2)

(* ------------------------------------------------------------------ *)
(* Running                                                             *)

let run ?trace cfg app =
  let cfg =
    match trace with None -> cfg | Some sink -> { cfg with Config.trace = Some sink }
  in
  (* The invariant oracle and any trace-attach callbacks (the lint
     suite's event listeners) consume the typed event stream; give them a
     private sink when the caller did not ask for tracing. *)
  let oracle, attach =
    match cfg.Config.check with
    | Some c -> (Tmk_check.Checker.oracle c, Tmk_check.Checker.attach c)
    | None -> (None, [])
  in
  let cfg =
    match (oracle, attach, cfg.Config.trace) with
    | Some _, _, None | _, _ :: _, None ->
      { cfg with Config.trace = Some (Tmk_trace.Sink.create ()) }
    | _ -> cfg
  in
  (match cfg.Config.trace with
  | Some sink -> List.iter (fun f -> f sink) attach
  | None -> ());
  (match (oracle, cfg.Config.trace) with
  | Some o, Some sink ->
    Tmk_check.Oracle.attach o sink;
    (* Vector-time invariants only apply to backends that put vector
       timestamps on the wire (Tardis and SC-ABD do not). *)
    Tmk_check.Oracle.set_vt_checked o
      (Protocol.backend_caps cfg.Config.protocol).Backend.c_vt_on_wire
  | _ -> ());
  let cluster = Protocol.create cfg in
  let engine = Protocol.engine cluster in
  let alloc_log = Hashtbl.create 64 in
  let root = Tmk_util.Prng.create cfg.Config.seed in
  for p = 0 to cfg.Config.nprocs - 1 do
    let ctx =
      {
        cluster;
        cpid = p;
        node = Protocol.node cluster p;
        alloc_next = 0;
        alloc_seq = 0;
        cprng = Tmk_util.Prng.split_named root (Printf.sprintf "proc-%d" p);
        alloc_log;
        coll_scratch = None;
      }
    in
    Engine.spawn engine p (fun () -> app ctx)
  done;
  Engine.run engine;
  (match Protocol.fatality cluster with
  | Some (pid, reason) -> raise (Degraded { pid; reason })
  | None -> ());
  let n = cfg.Config.nprocs in
  (* A crashed processor never returns: report its silencing instant; a
     processor parked by a clean stop reports the end of the run. *)
  let proc_finish =
    Array.init n (fun p ->
        if Engine.finished engine p then Engine.finish_time engine p
        else
          match Engine.crash_time engine p with
          | Some at -> at
          | None -> Engine.end_time engine)
  in
  let total_time = Array.fold_left Vtime.max Vtime.zero proc_finish in
  let busy =
    Array.init n (fun p ->
        Array.of_list (List.map (fun c -> Engine.busy engine p c) Category.all))
  in
  let idle = Array.init n (fun p -> Vtime.sub total_time (Engine.busy_total engine p)) in
  let stats = Array.init n (fun p -> (Protocol.node cluster p).Node.stats) in
  let total_stats = Stats.create () in
  Array.iter (fun s -> Stats.add ~into:total_stats s) stats;
  let transport = Protocol.transport cluster in
  {
    cluster;
    total_time;
    proc_finish;
    busy;
    idle;
    stats;
    total_stats;
    messages = Tmk_net.Transport.messages_sent transport;
    bytes = Tmk_net.Transport.bytes_sent transport;
    retransmissions = Tmk_net.Transport.retransmissions transport;
    frames_coalesced = Tmk_net.Transport.frames_coalesced transport;
    stopped = Engine.stop_reason engine;
    recoveries = Protocol.recoveries cluster;
  }
