(** Sequentially consistent, single-writer DSM — the "early DSM design"
    baseline (§1, §2.3).

    This is the Li–Hudak-style shared-virtual-memory protocol that
    TreadMarks was built to improve on: every page has exactly one writer
    at a time, reads replicate the page, and a write invalidates every
    other copy.  Under false sharing (two processors touching different
    variables on one page) the page ping-pongs across the network in its
    entirety — the behaviour the multiple-writer protocol eliminates.

    Implementation: each page has a statically assigned {e manager}
    (page mod nprocs) holding the page's ownership record (current owner,
    copyset) and a FIFO of outstanding requests; requests are processed
    one at a time per page, entirely by request handlers:

    - read miss: request → manager → forward to owner → owner downgrades
      itself to read-only and sends the page → requester installs,
      notifies the manager, joins the copyset;
    - write miss: request → manager → manager invalidates every other
      copy (acknowledged) → ownership (and the page, if the writer has no
      current copy) transfers → writer upgrades to read-write.

    Synchronization (locks, barriers) carries no consistency payload:
    memory is kept consistent at every write, which is exactly why this
    protocol communicates so much more.

    Used through {!Protocol} with [Config.protocol = Sc]. *)

open Tmk_sim

type t

(** [create ~engine ~transport ~nodes ~pages] — ownership starts at
    processor 0 for every page, matching {!Node.create}'s initial page
    states. *)
val create :
  engine:Engine.t ->
  transport:Tmk_net.Transport.t ->
  nodes:Node.t array ->
  pages:int ->
  t

(** [handle_fault t ~pid kind page] — application-context fault entry
    point (the SIGSEGV analogue); blocks until the access is legal. *)
val handle_fault : t -> pid:int -> Tmk_mem.Vm.access -> int -> unit

val caps : Backend.caps

(** [make cl] builds the single-writer state over [cl]'s nodes and
    returns the backend hook table (all synchronization hooks are
    plain: consistency lives entirely in the fault path). *)
val make : Cluster.t -> Backend.t
