(* Tardis-style timestamp coherence: logical leases instead of vector
   timestamps.

   Every page has a write timestamp [wts] (the logical time of its last
   write) and a read timestamp [rts] (the logical time its current value
   is leased through); every processor has a scalar logical clock [pts].
   A read leases the page forward ([rts] grows by [lease_span] past the
   reader's clock); a write must pick [wts > rts], so it never rewrites
   logical times at which somebody may still be reading the old value —
   stale copies stay {e logically} valid until their lease runs out, and
   no invalidation fan-out is ever sent.  Synchronization carries one
   scalar timestamp: the acquirer merges the granter's clock and then
   expires every cached page whose lease is older than the merged clock
   (a local sweep, no messages).  For data-race-free programs this gives
   the same guarantees as the vector-timestamp protocols: granting a
   lease forces the owner to read-only, so any later write picks
   [wts > lease] and propagates a larger clock through the sync chain
   that expires the lease at the next acquire.

   Page requests are serialized per page through a static manager
   (page mod nprocs), Li–Hudak style, but the manager keeps only the
   (owner, wts, rts) triple — no copyset, because there is nothing to
   invalidate.  An ownership transfer leaves the old owner a leased
   read-only copy valid through [wts - 1]. *)

open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs

let caps =
  {
    Backend.c_name = Config.protocol_name Config.Tardis;
    c_crash_runs = false;
    c_zero_recovery = false;
    c_diff_backup = false;
    c_vt_on_wire = false;
  }

(* How far past the reader's clock a read leases the page.  Larger spans
   mean fewer re-reads of stable pages across synchronization; smaller
   spans expire sooner.  Leases are logical, so the span costs nothing
   when nobody writes. *)
let lease_span = 8

type kind = Read_miss | Write_miss

type request = {
  rq_pid : int;
  rq_kind : kind;
  rq_pts : int;  (* requester clock at fault time *)
  rq_version : int;  (* wts of the bytes the requester still caches; -1 = none *)
  rq_done : unit Engine.Ivar.t;
}

(* The manager-side record of one page.  At most one request per page is
   in flight ([ps_current]); the rest queue FIFO. *)
type page_state = {
  ps_page : int;
  mutable ps_owner : int;
  mutable ps_wts : int;
  mutable ps_rts : int;
  mutable ps_current : request option;
  ps_queue : request Queue.t;
}

type t = {
  cl : Cluster.t;
  pstates : page_state array;
  pts : int array;  (* per-processor scalar logical clock *)
  lease : int array array;  (* lease.(pid).(page): valid-through rts *)
  version : int array array;  (* version.(pid).(page): wts of cached bytes; -1 = none *)
}

let nprocs t = t.cl.Cluster.cfg.Config.nprocs
let manager_of t page = page mod nprocs t
let h_charge = Cluster.h_charge

(* ------------------------------------------------------------------ *)
(* Page requests (manager-serialized, handler context throughout)      *)

let rec complete t st _rq h =
  h_charge h Category.Tmk_other Cpu.tardis_manager;
  st.ps_current <- None;
  match Queue.take_opt st.ps_queue with
  | None -> ()
  | Some next -> start t st next h

(* Runs at the requester: install the page (unless its cached bytes are
   already the current version), record version and lease, advance the
   clock past the write it just read, wake the application. *)
and grant t st rq ~wts ~lease ~prot ~from_ ~page_bytes h =
  let node = t.cl.Cluster.nodes.(rq.rq_pid) in
  (match page_bytes with
  | Some bytes ->
    h_charge h Category.Tmk_mem Costs.page_copy;
    Vm.install_page node.Node.vm st.ps_page bytes;
    node.Node.stats.Stats.page_fetches <- node.Node.stats.Stats.page_fetches + 1;
    if Engine.htracing h then
      Engine.hemit h (Tmk_trace.Event.Page_fetch { page = st.ps_page; from_ })
  | None -> ());
  h_charge h Category.Unix_mem Costs.mprotect;
  Vm.set_prot node.Node.vm st.ps_page prot;
  node.Node.pages.(st.ps_page).Node.pg_has_copy <- true;
  t.version.(rq.rq_pid).(st.ps_page) <- wts;
  t.lease.(rq.rq_pid).(st.ps_page) <- lease;
  t.pts.(rq.rq_pid) <- max t.pts.(rq.rq_pid) wts;
  Engine.fill t.cl.Cluster.engine rq.rq_done ~at:(Engine.hnow h) ();
  Transport.hsend ~label:"tardis-complete" t.cl.Cluster.transport h
    ~dst:(manager_of t st.ps_page) ~bytes:Wire.ack_bytes
    ~deliver:(fun hm -> complete t st rq hm)

(* Serve a read at the owner: downgrade to read-only (the granted lease
   forbids writing at times <= rts without a fresh wts) and ship the
   page unless the requester's cached bytes are already current. *)
and owner_serve_read t st rq ~rts h =
  let owner = st.ps_owner in
  let onode = t.cl.Cluster.nodes.(owner) in
  if Vm.prot onode.Node.vm st.ps_page = Vm.Read_write then begin
    h_charge h Category.Unix_mem Costs.mprotect;
    Vm.set_prot onode.Node.vm st.ps_page Vm.Read_only
  end;
  let wts = st.ps_wts in
  let with_page = rq.rq_version <> wts in
  let page_bytes =
    if with_page then begin
      h_charge h Category.Tmk_mem Costs.page_copy;
      Some (Vm.page_snapshot onode.Node.vm st.ps_page)
    end
    else None
  in
  Transport.hsend ~label:"tardis-page" t.cl.Cluster.transport h ~dst:rq.rq_pid
    ~bytes:(Wire.tardis_page_reply_bytes ~with_page)
    ~deliver:(grant t st rq ~wts ~lease:rts ~prot:Vm.Read_only ~from_:owner ~page_bytes)

(* Ownership transfer at the old owner.  The old owner relinquishes
   eagerly — in its own handler, so a concurrent lease sweep at this
   processor either still sees it as owner (copy current, skip) or sees
   the lease set here — keeping a read-only copy leased through the new
   write time minus one. *)
and owner_transfer t st rq ~wts ~old_wts ~need_page h =
  let owner = st.ps_owner in
  let onode = t.cl.Cluster.nodes.(owner) in
  let page_bytes =
    if need_page then begin
      h_charge h Category.Tmk_mem Costs.page_copy;
      Some (Vm.page_snapshot onode.Node.vm st.ps_page)
    end
    else None
  in
  if Vm.prot onode.Node.vm st.ps_page = Vm.Read_write then begin
    h_charge h Category.Unix_mem Costs.mprotect;
    Vm.set_prot onode.Node.vm st.ps_page Vm.Read_only
  end;
  t.lease.(owner).(st.ps_page) <- wts - 1;
  t.version.(owner).(st.ps_page) <- old_wts;
  st.ps_owner <- rq.rq_pid;
  Transport.hsend ~label:"tardis-transfer" t.cl.Cluster.transport h ~dst:rq.rq_pid
    ~bytes:(Wire.tardis_page_reply_bytes ~with_page:need_page)
    ~deliver:(grant t st rq ~wts ~lease:wts ~prot:Vm.Read_write ~from_:owner ~page_bytes)

(* Begin serving a request (manager context). *)
and start t st rq h =
  st.ps_current <- Some rq;
  h_charge h Category.Tmk_other Cpu.tardis_manager;
  match rq.rq_kind with
  | Read_miss ->
    (* lease the current value forward past the reader's clock *)
    let rts = max st.ps_rts (rq.rq_pts + lease_span) in
    st.ps_rts <- rts;
    Transport.hsend ~label:"tardis-read" t.cl.Cluster.transport h ~dst:st.ps_owner
      ~bytes:Wire.tardis_page_request_bytes
      ~deliver:(fun ho -> owner_serve_read t st rq ~rts ho)
  | Write_miss ->
    (* the write happens after every outstanding lease and after the
       writer's own clock: no invalidations needed, ever *)
    let wts = 1 + max st.ps_wts (max st.ps_rts rq.rq_pts) in
    let old_wts = st.ps_wts in
    st.ps_wts <- wts;
    st.ps_rts <- max st.ps_rts wts;
    if st.ps_owner = rq.rq_pid then
      (* pure upgrade: the owner's bytes are current by construction *)
      Transport.hsend ~label:"tardis-upgrade" t.cl.Cluster.transport h ~dst:rq.rq_pid
        ~bytes:Wire.ack_bytes
        ~deliver:
          (grant t st rq ~wts ~lease:wts ~prot:Vm.Read_write ~from_:rq.rq_pid
             ~page_bytes:None)
    else
      let need_page = rq.rq_version <> old_wts in
      Transport.hsend ~label:"tardis-ownership" t.cl.Cluster.transport h ~dst:st.ps_owner
        ~bytes:Wire.tardis_page_request_bytes
        ~deliver:(owner_transfer t st rq ~wts ~old_wts ~need_page)

let manager_handle _t st rq h =
  if st.ps_current = None then start _t st rq h else Queue.add rq st.ps_queue

let handle_fault t ~pid kind page =
  let node = t.cl.Cluster.nodes.(pid) in
  Engine.advance Category.Unix_mem Costs.sigsegv;
  Engine.advance Category.Tmk_other Cpu.fault_dispatch;
  (match kind with
  | Vm.Read -> node.Node.stats.Stats.read_faults <- node.Node.stats.Stats.read_faults + 1
  | Vm.Write -> node.Node.stats.Stats.write_faults <- node.Node.stats.Stats.write_faults + 1);
  node.Node.stats.Stats.remote_misses <- node.Node.stats.Stats.remote_misses + 1;
  let rq_kind = match kind with Vm.Read -> Read_miss | Vm.Write -> Write_miss in
  let ekind =
    match kind with Vm.Read -> Tmk_trace.Event.Read | Vm.Write -> Tmk_trace.Event.Write
  in
  if Engine.tracing t.cl.Cluster.engine then
    Cluster.emit t.cl ~pid (Tmk_trace.Event.Page_fault { page; kind = ekind });
  let rq =
    {
      rq_pid = pid;
      rq_kind;
      rq_pts = t.pts.(pid);
      rq_version = t.version.(pid).(page);
      rq_done = Engine.Ivar.create ();
    }
  in
  Engine.advance Category.Tmk_other Cpu.page_request_build;
  let st = t.pstates.(page) in
  Transport.send ~label:"tardis-request" t.cl.Cluster.transport ~src:pid
    ~dst:(manager_of t page) ~bytes:Wire.tardis_page_request_bytes
    ~deliver:(fun h -> manager_handle t st rq h);
  Engine.await rq.rq_done;
  if Engine.tracing t.cl.Cluster.engine then
    Cluster.emit t.cl ~pid (Tmk_trace.Event.Page_fault_done { page; kind = ekind })

(* ------------------------------------------------------------------ *)
(* Synchronization: merge the granter's clock, sweep expired leases.   *)

(* Expire every cached page whose lease is older than this processor's
   (just-merged) clock.  The owner of a page never expires its own copy:
   ownership means holding the newest bytes.  [version] is kept — it
   records which bytes are still in memory, so a later re-read whose
   version matches the current wts costs no page transfer. *)
let sweep t pid ~charge =
  let node = t.cl.Cluster.nodes.(pid) in
  let npages = t.cl.Cluster.cfg.Config.pages in
  charge Category.Tmk_consistency (Vtime.scale Cpu.lease_sweep_per_page npages);
  let now = t.pts.(pid) in
  for page = 0 to npages - 1 do
    if
      t.version.(pid).(page) >= 0
      && t.pstates.(page).ps_owner <> pid
      && Vm.prot node.Node.vm page <> Vm.No_access
      && t.lease.(pid).(page) < now
    then begin
      charge Category.Unix_mem Costs.mprotect;
      Vm.set_prot node.Node.vm page Vm.No_access;
      node.Node.pages.(page).Node.pg_has_copy <- false;
      node.Node.stats.Stats.lease_expiries <- node.Node.stats.Stats.lease_expiries + 1;
      if Engine.tracing t.cl.Cluster.engine then
        Cluster.emit t.cl ~pid (Tmk_trace.Event.Lease_expire { page })
    end
  done

(* Absorb one synchronization timestamp: merge, sweep, trace. *)
let absorb t pid ~from_pts ~charge =
  charge Category.Tmk_consistency Cpu.incorporate_base;
  t.pts.(pid) <- max t.pts.(pid) from_pts;
  sweep t pid ~charge;
  if Engine.tracing t.cl.Cluster.engine then
    Cluster.emit t.cl ~pid (Tmk_trace.Event.Ts_sync { ts = t.pts.(pid) })

let make_acquire t ~pid =
  {
    Backend.a_grant =
      (fun ~granter ~charge ->
        charge Category.Unix_comm Cpu.lock_grant_kernel;
        charge Category.Tmk_other Cpu.lock_grant_dsm;
        let granter_pts = t.pts.(granter) in
        {
          Backend.p_bytes = Wire.tardis_lock_grant_bytes;
          p_parts = 1;
          p_absorb = (fun ~charge -> absorb t pid ~from_pts:granter_pts ~charge);
        });
  }

let make_arrival t ~pid =
  let mgr = Cluster.barrier_manager in
  let arrival_pts = t.pts.(pid) in
  {
    Backend.v_bytes = Wire.tardis_barrier_arrival_bytes;
    v_parts = 1;
    v_absorb_mgr =
      (fun ~charge ->
        charge Category.Tmk_consistency Cpu.incorporate_base;
        t.pts.(mgr) <- max t.pts.(mgr) arrival_pts);
    v_release =
      (fun ~charge:_ ->
        let merged = t.pts.(mgr) in
        {
          Backend.p_bytes = Wire.tardis_barrier_release_bytes;
          p_parts = 1;
          p_absorb = (fun ~charge -> absorb t pid ~from_pts:merged ~charge);
        });
  }

let make cl =
  let npages = cl.Cluster.cfg.Config.pages in
  let n = cl.Cluster.cfg.Config.nprocs in
  let t =
    {
      cl;
      pstates =
        Array.init npages (fun page ->
            {
              ps_page = page;
              ps_owner = 0;
              ps_wts = 0;
              ps_rts = 0;
              ps_current = None;
              ps_queue = Queue.create ();
            });
      pts = Array.make n 0;
      lease = Array.make_matrix n npages 0;
      version =
        Array.init n (fun pid -> Array.make npages (if pid = 0 then 0 else -1));
    }
  in
  {
    Backend.b_caps = caps;
    b_handle_fault = (fun ~pid kind page -> handle_fault t ~pid kind page);
    b_lock_request_bytes = Wire.tardis_lock_request_bytes;
    b_pre_acquire = Backend.noop_pid;
    b_make_acquire = (fun ~pid -> make_acquire t ~pid);
    b_pre_release = Backend.noop_pid;
    b_pre_barrier = Backend.noop_pid;
    b_barrier_begin = Backend.noop_pid;
    b_make_arrival = (fun ~pid -> make_arrival t ~pid);
    b_barrier_depart =
      (* the manager merged every arrival into its own clock; sweep it
         (clients sweep inside their release payload's absorb) *)
      (fun ~pid ->
        Cluster.atomically (fun charge ->
            sweep t pid ~charge;
            if Engine.tracing cl.Cluster.engine then
              Cluster.emit cl ~pid (Tmk_trace.Event.Ts_sync { ts = t.pts.(pid) })));
    b_want_gc = (fun ~pid:_ -> false);
    b_gc_validate = Backend.noop_pid;
    b_on_death = (fun _ -> ());
  }
