(** Cluster configuration. *)

(** Consistency protocol (§2 and §5.1), i.e. the coherence backend the
    cluster runs ({!Backend}). *)
type protocol =
  | Lrc  (** lazy release consistency, invalidate, lazy diffs (TreadMarks) *)
  | Erc  (** eager release consistency, update protocol (the Munin-style baseline) *)
  | Sc
      (** sequentially consistent single-writer protocol (the Li-Hudak-style
          "early DSM" baseline of §2.3; see {!Sc}) *)
  | Tardis
      (** timestamp-counter coherence with read leases: no vector
          timestamps on the wire, per-page write/read counters at a
          distributed manager, lease sweeps at synchronization (see
          {!Tardis}) *)
  | Sc_abd
      (** majority-quorum replicated sequential consistency: ABD-style
          two-phase word-granularity reads/writes over full replicas,
          crash-stop tolerant with zero recovery protocol (see
          {!Sc_abd}) *)

type t = {
  nprocs : int;  (** cluster size (the paper uses up to 8) *)
  pages : int;  (** shared address space, in 4096-byte pages *)
  protocol : protocol;
  net : Tmk_net.Params.t;  (** communication substrate *)
  faults : Tmk_net.Fault_plan.t;
      (** deterministic fault-injection schedule for the run; the default
          {!Tmk_net.Fault_plan.none} is the ideal network *)
  gc_threshold : int;
      (** run garbage collection at the next barrier once a node holds more
          than this many consistency records (intervals + notices + diffs);
          [max_int] disables *)
  seed : int64;  (** root of every random stream in the run *)
  flop_ns : int;  (** nanoseconds per application floating-point operation *)
  lazy_diffs : bool;
      (** [true] (TreadMarks): diffs are created only when requested or
          when a write notice arrives (§2.4).  [false]: Munin-style eager
          diff creation at every interval close — the ablation of the
          §2.4/§5.2 claim that laziness reduces diff counts *)
  lrc_updates : bool;
      (** [false] (TreadMarks): the invalidate protocol — write notices
          invalidate pages and diffs move on demand.  [true]: the hybrid
          update protocol §2.2 mentions as the alternative — grants and
          barrier releases piggyback the diffs of pages the receiver is
          believed to cache, and valid pages are updated in place instead
          of invalidated *)
  batching : bool;
      (** [true] (the default): consistency traffic destined for one peer
          is coalesced — the write notices and piggybacked intervals of a
          grant or barrier message travel in a single frame, multi-page
          diff requests to the same responder are gathered into one
          request/response pair, and responders cache computed diffs so
          repeated fetches of the same (page, interval) diff skip the RLE
          recomputation.  [false]: every logical part goes out as its own
          frame and responders recompute diffs on every fetch — the
          unbatched ablation for the E11 scaling study *)
  diff_backup : bool;
      (** [true]: every diff is mirrored, at creation, to one
          deterministic backup peer (the next live processor), so the
          committed work of a processor that later crashes stays
          fetchable and barrier programs survive the crash with results
          identical to a crash-free run restricted to the surviving work.
          Implies eager diff creation at interval close (a diff that was
          never created cannot have been mirrored).  [false] (the
          default): no replication — a crash can strand diffs that only
          the dead processor held, degrading the run (see
          {!Api.Degraded}).  Only meaningful for backends whose
          [Backend.caps.c_diff_backup] is set (Lrc). *)
  vm_fast_path : bool;
      (** [true] (the default): typed accessors on writable, unobserved
          pages skip the software-MMU protection check (see
          {!Tmk_mem.Vm.set_fast_path}).  Purely a simulator-speed knob —
          results, traffic and simulated time are bit-identical either
          way; [false] forces every access through the checked path *)
  trace : Tmk_trace.Sink.t option;
      (** typed protocol-event sink; [None] (the default) disables
          tracing entirely — no events are recorded and no run behaviour
          changes.  Install a {!Tmk_trace.Sink.t} to capture the full
          structured stream (see [lib/trace]) *)
  check : Tmk_check.Checker.t option;
      (** DRF / protocol checker for the run; [None] (the default)
          checks nothing and costs nothing.  A {!Tmk_check.Race.t}
          observes every typed access and all lock/barrier edges; a
          {!Tmk_check.Oracle.t} is attached to the run's trace sink
          ([Api.run] installs a private sink when none is configured).
          Checkers are observers only — simulated time, results and
          message traffic are identical with and without them *)
}

(** [default] — 8 processors, 256 pages, LRC on ATM/AAL3/4, GC off,
    2 µs-per-10-flops application speed (a DECstation-5000/240-class
    scalar FPU). *)
val default : t

(** [validate t] checks invariants.  Capability-dependent admissibility
    (crash schedules, [diff_backup]) is checked by [Protocol.create]
    against the selected backend's {!Backend.caps}.
    @raise Invalid_argument when a field is out of range. *)
val validate : t -> unit

val protocol_name : protocol -> string

(** [protocol_description p] — a short human label for stats output,
    e.g. ["lazy release consistency"], ["sc-abd quorum replication"]. *)
val protocol_description : protocol -> string

(** Every protocol, in declaration order. *)
val all_protocols : protocol list

(** [protocol_of_string s] — inverse of {!protocol_name}
    (case-insensitive; also accepts the aliases "lrc", "erc",
    "single-writer" and "abd").
    @raise Invalid_argument on unknown names, listing the valid ones. *)
val protocol_of_string : string -> protocol
