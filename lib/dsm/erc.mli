(** Eager release consistency (§5.1), packaged as a {!Backend}.

    At every release and barrier arrival the dirty pages are diffed and
    the diffs pushed as updates to every cacher in the page's directory,
    with the release blocked until all updates are acknowledged
    (DASH-style).  Locks and barriers carry no consistency payload and
    pages are never invalidated — a miss is always a cold fetch. *)

val caps : Backend.caps
val make : Cluster.t -> Backend.t
