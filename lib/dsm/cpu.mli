(** CPU costs of the TreadMarks protocol code paths (user level).

    Together with {!Tmk_net.Params} (kernel communication) and
    {!Tmk_mem.Costs} (memory management), these constants are calibrated
    so the simulator reproduces the paper's §4.2 microbenchmarks:
    827/1149 µs lock acquires, 2186 µs 8-processor barrier, 2792 µs remote
    page fault.  The calibration tests in [test/test_calibration.ml] pin
    them.  Categories: all of these are TreadMarks user-level time;
    interval/write-notice bookkeeping is [Tmk_consistency], request
    marshalling and synchronization handling is [Tmk_other]. *)

open Tmk_sim

(** [lock_request_build] — assembling an acquire request (requester);
    split into its kernel part (signal masking, socket bookkeeping,
    [Unix_comm]) and its DSM part (marshalling, [Tmk_other]). *)
val lock_request_build : Vtime.t

val lock_request_build_kernel : Vtime.t
val lock_request_build_dsm : Vtime.t

(** [lock_grant] — release-side processing of a grant: deciding the
    interval delta and marshalling it (excludes per-interval costs);
    split like {!lock_request_build}. *)
val lock_grant : Vtime.t

val lock_grant_kernel : Vtime.t
val lock_grant_dsm : Vtime.t

(** [lock_forward] — manager forwarding a request to the last requester. *)
val lock_forward : Vtime.t

(** [lock_local] — reacquiring a cached lock without communication. *)
val lock_local : Vtime.t

(** [incorporate_base] — fixed cost of incorporating a sync message's
    consistency information. *)
val incorporate_base : Vtime.t

(** [incorporate_per_interval] — appending one interval record. *)
val incorporate_per_interval : Vtime.t

(** [incorporate_per_notice] — prepending one write-notice record (the
    page invalidation's mprotect is charged separately). *)
val incorporate_per_notice : Vtime.t

(** [interval_close_base] / [interval_close_per_page] — creating a new
    interval with a write notice per twinned page (§3.2). *)
val interval_close_base : Vtime.t

val interval_close_per_page : Vtime.t

(** [barrier_arrival_build] — client-side arrival processing; split like
    {!lock_request_build}. *)
val barrier_arrival_build : Vtime.t

val barrier_arrival_build_kernel : Vtime.t
val barrier_arrival_build_dsm : Vtime.t

(** [barrier_release_per_client] — manager-side marshalling of one release
    message (excludes per-interval costs). *)
val barrier_release_per_client : Vtime.t

(** [fault_dispatch] — entering the DSM fault machinery from the SIGSEGV
    handler and classifying the miss. *)
val fault_dispatch : Vtime.t

(** [page_request_build] — assembling a page/diff fetch request. *)
val page_request_build : Vtime.t

(** [diff_lookup_per_entry] — locating one requested diff in the diff
    pool (server side). *)
val diff_lookup_per_entry : Vtime.t

(** [diff_cache_hit] — answering a diff fetch from the responder's served
    diff cache (batched mode), replacing the pool walk and any lazy RLE
    recomputation. *)
val diff_cache_hit : Vtime.t

(** [miss_plan] — computing the minimal processor set to query (§3.5's
    domination analysis), per write notice examined. *)
val miss_plan : Vtime.t

(** [erc_flush_per_page] — eager-release bookkeeping per dirty page
    beyond diff creation itself. *)
val erc_flush_per_page : Vtime.t

(** [gc_per_record] — discarding one consistency record during garbage
    collection. *)
val gc_per_record : Vtime.t

(** [tardis_manager] — one Tardis manager bookkeeping step (timestamp
    compare/bump, request queue maintenance); same magnitude as the SC
    manager's per-step cost. *)
val tardis_manager : Vtime.t

(** [lease_sweep_per_page] — examining one cached page during a Tardis
    lease sweep (the invalidation's mprotect is charged separately). *)
val lease_sweep_per_page : Vtime.t

(** [abd_serve] — replica-side service of one SC-ABD quorum message
    (timestamp scan or word-filtered store application). *)
val abd_serve : Vtime.t

(** [abd_merge_per_reply] — requester-side word-wise merge of one quorum
    read reply. *)
val abd_merge_per_reply : Vtime.t
