(** Per-node protocol event counters.

    These feed the paper's execution statistics (Figure 4) and the
    lazy-vs-eager comparison (Figures 9–12).  Communication volume lives
    in {!Tmk_net.Transport}; simulated time lives in
    {!Tmk_sim.Engine}. *)

type t = {
  mutable lock_acquires : int;  (** every application acquire *)
  mutable lock_remote : int;  (** acquires that needed communication *)
  mutable barriers : int;
  mutable read_faults : int;
  mutable write_faults : int;
  mutable remote_misses : int;  (** faults that fetched pages or diffs *)
  mutable twins_created : int;
  mutable diffs_created : int;
  mutable diffs_applied : int;
  mutable diff_bytes_created : int;
  mutable write_notices_in : int;  (** notices received in sync messages *)
  mutable intervals_in : int;
  mutable page_fetches : int;  (** full-page copies received *)
  mutable gc_runs : int;
  mutable records_discarded : int;  (** consistency records freed by GC *)
  mutable diff_cache_hits : int;
      (** responder-side diff fetches answered from the (proc, interval,
          page) diff cache without recomputing the RLE encoding (batched
          mode only) *)
  mutable diff_cache_misses : int;
      (** responder-side diff fetches that had to compute/look up the
          diff and populated the cache (batched mode only) *)
  mutable diff_prefetch_entries : int;
      (** diff entries gathered onto another page's request to the same
          responder — multi-page request aggregation (batched mode only) *)
  mutable diff_backups : int;
      (** diffs mirrored to a backup peer at creation
          ({!Config.diff_backup} mode only) *)
  mutable diff_backup_bytes : int;  (** payload bytes of those mirrors *)
  mutable lease_expiries : int;
      (** Tardis: cached pages invalidated by a lease sweep at a
          synchronization point *)
  mutable quorum_reads : int;
      (** SC-ABD: majority-quorum page reads (one per access miss) *)
  mutable quorum_writes : int;
      (** SC-ABD: two-phase quorum flushes (one per release/barrier with
          dirty pages) *)
}

val create : unit -> t

(** [add ~into t] accumulates [t] into [into] (cluster totals). *)
val add : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
