(* The backend-agnostic protocol core: locks (distributed queue with
   static managers and forwarding, §3.3), centralized barriers (§3.4),
   garbage collection orchestration (§3.6), and crash detection /
   metadata failover.  Everything coherence-specific — fault handling,
   what synchronization messages carry and what absorbing them does —
   lives behind the {!Backend} hook table selected from
   [Config.protocol]. *)

open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Bitset = Tmk_util.Bitset

type recovery = {
  rc_pid : int;
  rc_epoch : int;
  rc_crash_at : Vtime.t;
  rc_detected_at : Vtime.t;
  rc_locks_rehomed : int;
  rc_retries : int;
}

(* Every detected death, whether or not it produced a recovery record: a
   zero-recovery backend (SC-ABD) rides out a crash without rebuilding
   anything, but the grace-window bookkeeping below still needs the
   detection times. *)
type death = { d_pid : int; d_crash_at : Vtime.t; d_detected_at : Vtime.t }

type lock_request = {
  lr_lock : int;
  lr_requester : int;
  lr_acq : Backend.acq;  (* grant builder, capturing the request-time state *)
  lr_mb : Backend.payload Transport.mailbox;
  lr_epoch : int;
      (* membership epoch at creation; requests stamped with an older
         epoch are stale routing from before a crash and are dropped
         (recovery re-injects a fresh record for every live waiter) *)
}

type barrier_release = { br_payload : Backend.payload; br_gc : bool }

type lock_state = { mutable held : bool; mutable cached : bool; pending : lock_request Queue.t }
type mgr_state = { mutable last_requester : int }

type barrier_client = {
  bc_pid : int;
  bc_release : charge:Node.charge -> Backend.payload;
  bc_mb : barrier_release Transport.mailbox;
}

type barrier_state = {
  mutable bs_clients : barrier_client list;
  mutable bs_manager_here : bool;
  mutable bs_all_in : unit Engine.Ivar.t;
  mutable bs_gc : bool;
}

type gc_client = { gc_pid : int; gc_keep : Bitset.t; gc_mb : Bitset.t array Transport.mailbox }

type gc_state = {
  mutable gs_clients : gc_client list;
  mutable gs_manager_here : bool;
  mutable gs_all_in : unit Engine.Ivar.t;
}

type t = {
  cl : Cluster.t;
  backend : Backend.t;
  lock_states : (int, lock_state) Hashtbl.t array;  (* per node *)
  lock_mgrs : (int, mgr_state) Hashtbl.t array;  (* per node, manager role *)
  barrier_states : (int, barrier_state) Hashtbl.t;  (* at the central manager *)
  mutable gc : gc_state;
  waiting_acquires : (int, lock_request) Hashtbl.t array;
      (* per pid: lock -> the outstanding remote acquire, if any *)
  grant_target : (int, lock_request) Hashtbl.t;
      (* lock -> request a grant is in flight to (token owner in transit) *)
  mutable deaths : death list;  (* newest first *)
  mutable recoveries : recovery list;  (* newest first *)
}

let config t = t.cl.Cluster.cfg
let engine t = t.cl.Cluster.engine
let transport t = t.cl.Cluster.transport
let node t pid = t.cl.Cluster.nodes.(pid)
let barrier_manager = Cluster.barrier_manager
let lock_manager t lock = lock mod (config t).Config.nprocs

let backend_caps = function
  | Config.Lrc -> Lrc.caps
  | Config.Erc -> Erc.caps
  | Config.Sc -> Sc.caps
  | Config.Tardis -> Tardis.caps
  | Config.Sc_abd -> Sc_abd.caps

(* --- liveness helpers --- *)

let live t pid = Cluster.live t.cl pid
let epoch t = t.cl.Cluster.epoch
let fatality t = t.cl.Cluster.fatal
let recoveries t = List.rev t.recoveries
let live_count t = Cluster.live_count t.cl
let dead t pid = t.cl.Cluster.dead.(pid)

(* Lock managership migrates deterministically to the next live
   processor in cyclic pid order from the static home.  With no deaths
   this is exactly [lock_manager]. *)
let effective_lock_manager t lock =
  let n = (config t).Config.nprocs in
  let m = lock_manager t lock in
  let rec seek i = if not (dead t ((m + i) mod n)) then (m + i) mod n else seek (i + 1) in
  seek 0

let note_fatal t ~pid reason = Cluster.note_fatal t.cl ~pid reason

module Log = Cluster.Log

let app_charge = Cluster.app_charge
let h_charge = Cluster.h_charge
let atomically = Cluster.atomically
let emit t ~pid ev = Cluster.emit t.cl ~pid ev

(* The race detector, when one rides along in [Config.check].  Sync
   edges are reported from application context at the four points the
   happens-before relation needs: release before the grant can leave,
   acquired after the grant is absorbed, barrier arrival before the
   arrival message goes out, departure after the release is absorbed. *)
let race_of t =
  match (config t).Config.check with
  | Some c -> Tmk_check.Checker.race c
  | None -> None

(* Generic checker hooks (the lint suite) observe the same events. *)
let hooks_of t =
  match (config t).Config.check with
  | Some c -> Tmk_check.Checker.hooks c
  | None -> []

let race_lock_acquired t ~pid ~lock =
  (match race_of t with
  | Some r -> Tmk_check.Race.lock_acquired r ~pid ~lock
  | None -> ());
  List.iter (fun h -> h.Tmk_check.Hooks.h_lock_acquired ~pid ~lock) (hooks_of t)

let race_lock_release t ~pid ~lock =
  (match race_of t with
  | Some r -> Tmk_check.Race.lock_release r ~pid ~lock
  | None -> ());
  List.iter (fun h -> h.Tmk_check.Hooks.h_lock_release ~pid ~lock) (hooks_of t)

let race_barrier_arrive t ~pid ~id =
  (match race_of t with
  | Some r -> Tmk_check.Race.barrier_arrive r ~pid ~id
  | None -> ());
  List.iter (fun h -> h.Tmk_check.Hooks.h_barrier_arrive ~pid ~id) (hooks_of t)

let race_barrier_depart t ~pid ~id =
  (match race_of t with
  | Some r -> Tmk_check.Race.barrier_depart r ~pid ~id
  | None -> ());
  List.iter (fun h -> h.Tmk_check.Hooks.h_barrier_depart ~pid ~id) (hooks_of t)

let lock_state_of t pid lock =
  match Hashtbl.find_opt t.lock_states.(pid) lock with
  | Some st -> st
  | None ->
    (* The manager starts out holding the token of each lock it manages.
       Using the effective (post-crash) manager keeps first-touch
       initialisation globally consistent after a failover: recovery
       explicitly rebuilds every lock that was ever touched, so this lazy
       rule only ever runs for locks with no token anywhere. *)
    let st =
      { held = false; cached = effective_lock_manager t lock = pid; pending = Queue.create () }
    in
    Hashtbl.add t.lock_states.(pid) lock st;
    st

let mgr_state_of t pid lock =
  match Hashtbl.find_opt t.lock_mgrs.(pid) lock with
  | Some st -> st
  | None ->
    let st = { last_requester = pid } in
    Hashtbl.add t.lock_mgrs.(pid) lock st;
    st

let barrier_state_of t id =
  match Hashtbl.find_opt t.barrier_states id with
  | Some bs -> bs
  | None ->
    let bs =
      { bs_clients = []; bs_manager_here = false; bs_all_in = Engine.Ivar.create (); bs_gc = false }
    in
    Hashtbl.add t.barrier_states id bs;
    bs

(* ------------------------------------------------------------------ *)
(* Locks (§3.3)                                                        *)

(* Grant from a request handler: the lock was free (cached) at this node. *)
let grant_from_handler t granter req h =
  let payload = req.lr_acq.Backend.a_grant ~granter ~charge:(h_charge h) in
  if Engine.htracing h then
    Engine.hemit h
      (Tmk_trace.Event.Lock_grant
         {
           lock = req.lr_lock;
           requester = req.lr_requester;
           intervals = payload.Backend.p_parts - 1;
           bytes = payload.Backend.p_bytes;
         });
  Transport.hsend_value ~label:"lock-grant" ~parts:payload.Backend.p_parts (transport t) h
    ~dst:req.lr_requester ~bytes:payload.Backend.p_bytes req.lr_mb payload

(* Grant from application context (at release time). *)
let grant_from_app t granter req =
  let payload = atomically (fun charge -> req.lr_acq.Backend.a_grant ~granter ~charge) in
  if Engine.tracing (engine t) then
    emit t ~pid:granter
      (Tmk_trace.Event.Lock_grant
         {
           lock = req.lr_lock;
           requester = req.lr_requester;
           intervals = payload.Backend.p_parts - 1;
           bytes = payload.Backend.p_bytes;
         });
  Transport.send_value ~label:"lock-grant" ~parts:payload.Backend.p_parts (transport t)
    ~src:granter ~dst:req.lr_requester ~bytes:payload.Backend.p_bytes req.lr_mb payload

(* A request is stale routing when it predates the current membership
   epoch (recovery re-injected a fresh copy for every live waiter), when
   its requester has died, or when its grant already went out. *)
let stale_request t req =
  req.lr_epoch < epoch t
  || dead t req.lr_requester
  || Transport.mailbox_filled req.lr_mb

(* Track the request a grant is in flight to: if the requester dies the
   token dies with it and recovery regenerates it; if the granter dies
   the already-sent grant still arrives (crash-stop drops only frames
   sent after the crash). *)
let note_grant_inflight t req =
  if t.cl.Cluster.crashes_planned then Hashtbl.replace t.grant_target req.lr_lock req

(* A lock request reaching the node at the end of the forwarding chain. *)
let transfer_request t target req h =
  if stale_request t req then ()
  else begin
    let st = lock_state_of t target req.lr_lock in
    Log.debug (fun m ->
        m "[t=%d] lock %d transfer-request at %d from %d (held=%b cached=%b)"
          (Engine.now (engine t)) req.lr_lock target req.lr_requester st.held st.cached);
    if st.held || not st.cached then begin
      if Engine.htracing h then
        Engine.hemit h
          (Tmk_trace.Event.Lock_queued { lock = req.lr_lock; requester = req.lr_requester });
      Queue.add req st.pending
    end
    else begin
      st.cached <- false;
      note_grant_inflight t req;
      grant_from_handler t target req h
    end
  end

(* The (effective) manager: record the requester, forward to the
   previous one (§3.3). *)
let manager_handle t mgr req h =
  if stale_request t req then ()
  else begin
    let ms = mgr_state_of t mgr req.lr_lock in
    let target = ms.last_requester in
    assert (target <> req.lr_requester);
    ms.last_requester <- req.lr_requester;
    if Engine.htracing h then
      Engine.hemit h
        (Tmk_trace.Event.Lock_request_recv
           { lock = req.lr_lock; requester = req.lr_requester });
    if target = mgr then transfer_request t mgr req h
    else begin
      h_charge h Category.Tmk_other Cpu.lock_forward;
      if Engine.htracing h then
        Engine.hemit h
          (Tmk_trace.Event.Lock_forward
             { lock = req.lr_lock; requester = req.lr_requester; target });
      Transport.hsend ~label:"lock-forward" (transport t) h ~dst:target
        ~bytes:t.backend.Backend.b_lock_request_bytes
        ~deliver:(fun h2 -> transfer_request t target req h2)
    end
  end

let acquire t ~pid ~lock =
  t.backend.Backend.b_pre_acquire ~pid;
  let node = t.cl.Cluster.nodes.(pid) in
  let st = lock_state_of t pid lock in
  node.Node.stats.Stats.lock_acquires <- node.Node.stats.Stats.lock_acquires + 1;
  if Engine.tracing (engine t) then
    emit t ~pid (Tmk_trace.Event.Lock_acquire { lock; local = st.cached });
  if st.cached then begin
    (* Mark the lock held before charging: Engine.advance is a scheduling
       point, and a request handler running inside it must see the token
       as taken or it would grant it away (the real implementation masks
       SIGIO around the lock internals). *)
    st.held <- true;
    Log.debug (fun m -> m "[t=%d] lock %d local acquire by %d" (Engine.now (engine t)) lock pid);
    app_charge Category.Tmk_other Cpu.lock_local;
    if Engine.tracing (engine t) then
      emit t ~pid (Tmk_trace.Event.Lock_acquired { lock; local = true });
    race_lock_acquired t ~pid ~lock
  end
  else begin
    node.Node.stats.Stats.lock_remote <- node.Node.stats.Stats.lock_remote + 1;
    app_charge Category.Unix_comm Cpu.lock_request_build_kernel;
    app_charge Category.Tmk_other Cpu.lock_request_build_dsm;
    let mb = Transport.mailbox () in
    let req =
      {
        lr_lock = lock;
        lr_requester = pid;
        lr_acq = t.backend.Backend.b_make_acquire ~pid;
        lr_mb = mb;
        lr_epoch = epoch t;
      }
    in
    if t.cl.Cluster.crashes_planned then Hashtbl.replace t.waiting_acquires.(pid) lock req;
    let mgr = effective_lock_manager t lock in
    Transport.send ~label:"lock-request" (transport t) ~src:pid ~dst:mgr
      ~bytes:t.backend.Backend.b_lock_request_bytes
      ~deliver:(fun h -> manager_handle t mgr req h);
    let payload = Transport.await_value (transport t) mb in
    Log.debug (fun m ->
        m "[t=%d] lock %d granted to %d (%d parts)" (Engine.now (engine t)) lock pid
          payload.Backend.p_parts);
    atomically (fun charge -> payload.Backend.p_absorb ~charge);
    st.held <- true;
    st.cached <- true;
    (* Deregister only after the token flags are set: recovery must never
       observe a grant that is in neither the registry nor [st.cached]. *)
    if t.cl.Cluster.crashes_planned then begin
      Hashtbl.remove t.waiting_acquires.(pid) lock;
      match Hashtbl.find_opt t.grant_target lock with
      | Some r when r.lr_requester = pid -> Hashtbl.remove t.grant_target lock
      | _ -> ()
    end;
    if Engine.tracing (engine t) then
      emit t ~pid (Tmk_trace.Event.Lock_acquired { lock; local = false });
    race_lock_acquired t ~pid ~lock
  end

let release t ~pid ~lock =
  let st = lock_state_of t pid lock in
  Log.debug (fun m ->
      m "[t=%d] lock %d release by %d (pending=%d)" (Engine.now (engine t)) lock pid
        (Queue.length st.pending));
  if not st.held then
    invalid_arg (Printf.sprintf "Protocol.release: processor %d does not hold lock %d" pid lock);
  race_lock_release t ~pid ~lock;
  t.backend.Backend.b_pre_release ~pid;
  st.held <- false;
  (* Skip waiters invalidated by a crash: stale epochs, dead requesters,
     requests already granted elsewhere by recovery. *)
  let rec next_waiter () =
    match Queue.take_opt st.pending with
    | Some req when stale_request t req -> next_waiter ()
    | other -> other
  in
  match next_waiter () with
  | None ->
    (* token stays cached here *)
    if Engine.tracing (engine t) then
      emit t ~pid (Tmk_trace.Event.Lock_release { lock; granted_to = None })
  | Some req ->
    Log.debug (fun m ->
        m "[t=%d] lock %d release-grant by %d to %d" (Engine.now (engine t)) lock pid
          req.lr_requester);
    if Engine.tracing (engine t) then
      emit t ~pid
        (Tmk_trace.Event.Lock_release { lock; granted_to = Some req.lr_requester });
    st.cached <- false;
    note_grant_inflight t req;
    grant_from_app t pid req;
    (* Any stragglers chase the token to its new holder. *)
    Queue.iter
      (fun r ->
        if not (stale_request t r) then
          Transport.send ~label:"lock-forward" (transport t) ~src:pid ~dst:req.lr_requester
            ~bytes:t.backend.Backend.b_lock_request_bytes
            ~deliver:(fun h -> transfer_request t req.lr_requester r h))
      st.pending;
    Queue.clear st.pending

(* ------------------------------------------------------------------ *)
(* Garbage collection (§3.6)                                           *)

let fresh_gc_state () =
  { gs_clients = []; gs_manager_here = false; gs_all_in = Engine.Ivar.create () }

let gc_maybe_complete t =
  let gs = t.gc in
  let live_clients =
    List.length (List.filter (fun c -> not (dead t c.gc_pid)) gs.gs_clients)
  in
  if
    gs.gs_manager_here
    && live_clients >= live_count t - 1
    && not (Engine.Ivar.is_filled gs.gs_all_in)
  then Engine.fill (engine t) gs.gs_all_in ~at:(Engine.now (engine t)) ()

let gc_phase t pid =
  let node = t.cl.Cluster.nodes.(pid) in
  let npages = (config t).Config.pages in
  Log.debug (fun m ->
      m "[t=%d] gc at %d (%d live records)" (Engine.now (engine t)) pid node.Node.live_records);
  node.Node.stats.Stats.gc_runs <- node.Node.stats.Stats.gc_runs + 1;
  if Engine.tracing (engine t) then
    emit t ~pid (Tmk_trace.Event.Gc_begin { live = node.Node.live_records });
  (* 1. Backend-specific validation: bring every page this node modified
     to a fully applied state so the records become discardable. *)
  t.backend.Backend.b_gc_validate ~pid;
  (* 2. Exchange keep-bitmaps so everyone learns the new copysets. *)
  let keep = Bitset.create npages in
  for page = 0 to npages - 1 do
    if Vm.prot node.Node.vm page <> Vm.No_access then Bitset.add keep page
  done;
  let keepers =
    if pid = barrier_manager then begin
      t.gc.gs_manager_here <- true;
      gc_maybe_complete t;
      Engine.await t.gc.gs_all_in;
      let clients = t.gc.gs_clients in
      t.gc <- fresh_gc_state ();
      (* Aggregate: keepers per page, one bitset of processors per page. *)
      let keepers = Array.init npages (fun _ -> Bitset.create (config t).Config.nprocs) in
      let note_keeps who bitmap =
        Bitset.iter (fun page -> Bitset.add keepers.(page) who) bitmap
      in
      note_keeps pid keep;
      List.iter (fun c -> if not (dead t c.gc_pid) then note_keeps c.gc_pid c.gc_keep) clients;
      let reply_bytes = (config t).Config.nprocs * Wire.gc_keep_bitmap_bytes ~npages in
      List.iter
        (fun c ->
          if not (dead t c.gc_pid) then
            Transport.send_value ~label:"gc-copysets" (transport t) ~src:pid ~dst:c.gc_pid
              ~bytes:reply_bytes c.gc_mb keepers)
        clients;
      keepers
    end
    else begin
      let mb = Transport.mailbox () in
      Transport.send ~label:"gc-bitmap" (transport t) ~src:pid ~dst:barrier_manager
        ~bytes:(Wire.gc_keep_bitmap_bytes ~npages)
        ~deliver:(fun _h ->
          t.gc.gs_clients <- { gc_pid = pid; gc_keep = keep; gc_mb = mb } :: t.gc.gs_clients;
          gc_maybe_complete t);
      Transport.await_value (transport t) mb
    end
  in
  (* 3. Adopt the new copysets and discard every consistency record. *)
  Array.iteri
    (fun page entry ->
      entry.Node.pg_copyset <- Bitset.copy keepers.(page);
      if not (Bitset.mem keepers.(page) pid) then entry.Node.pg_has_copy <- false)
    node.Node.pages;
  let discarded = Node.discard_all_records node ~charge:app_charge in
  if Engine.tracing (engine t) then
    emit t ~pid (Tmk_trace.Event.Gc_end { discarded })

(* ------------------------------------------------------------------ *)
(* Barriers (§3.4)                                                     *)

(* Completion counts live clients against the live membership: a dead
   processor never arrives, and a client that arrived and then died is
   kept (its payload is already incorporated) but not counted or
   released. *)
let barrier_maybe_complete t bs ~at =
  let live_clients =
    List.length (List.filter (fun bc -> not (dead t bc.bc_pid)) bs.bs_clients)
  in
  if
    bs.bs_manager_here
    && live_clients >= live_count t - 1
    && not (Engine.Ivar.is_filled bs.bs_all_in)
  then Engine.fill (engine t) bs.bs_all_in ~at ()

let barrier t ~pid ~id =
  let node = t.cl.Cluster.nodes.(pid) in
  Log.debug (fun m -> m "[t=%d] barrier %d arrival by %d" (Engine.now (engine t)) id pid);
  node.Node.stats.Stats.barriers <- node.Node.stats.Stats.barriers + 1;
  (* epoch = this processor's global barrier sequence number *)
  let epoch = node.Node.stats.Stats.barriers - 1 in
  if Engine.tracing (engine t) then
    emit t ~pid (Tmk_trace.Event.Barrier_arrive { id; epoch });
  race_barrier_arrive t ~pid ~id;
  t.backend.Backend.b_pre_barrier ~pid;
  app_charge Category.Unix_comm Cpu.barrier_arrival_build_kernel;
  app_charge Category.Tmk_other Cpu.barrier_arrival_build_dsm;
  t.backend.Backend.b_barrier_begin ~pid;
  let want_gc = t.backend.Backend.b_want_gc ~pid in
  if (config t).Config.nprocs = 1 then begin
    if Engine.tracing (engine t) then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id
  end
  else if pid = barrier_manager then begin
    let bs = barrier_state_of t id in
    bs.bs_manager_here <- true;
    bs.bs_gc <- bs.bs_gc || want_gc;
    barrier_maybe_complete t bs ~at:(Engine.now (engine t));
    Engine.await bs.bs_all_in;
    let clients = bs.bs_clients in
    let run_gc = bs.bs_gc in
    (* Reset before releasing so the next use of this id starts clean. *)
    bs.bs_clients <- [];
    bs.bs_manager_here <- false;
    bs.bs_all_in <- Engine.Ivar.create ();
    bs.bs_gc <- false;
    let release_one bc =
      (* The backend builds each client's release payload in an atomic
         section: payload selection (interval deltas, timestamp
         snapshots, hybrid-protocol diffs) must not interleave with this
         node's handlers — the per-client charge below is a scheduling
         point, and a handler interleaving there (e.g. a fast client's
         arrival at the NEXT barrier) would advance the manager's state
         past what this release claims to carry. *)
      let payload = atomically (fun charge -> bc.bc_release ~charge) in
      app_charge Category.Tmk_other Cpu.barrier_release_per_client;
      Transport.send_value ~label:"barrier-release" ~parts:payload.Backend.p_parts
        (transport t) ~src:pid ~dst:bc.bc_pid ~bytes:payload.Backend.p_bytes bc.bc_mb
        { br_payload = payload; br_gc = run_gc }
    in
    (* Release in client order for determinism; dead clients get none. *)
    List.iter release_one
      (List.sort
         (fun a b -> compare a.bc_pid b.bc_pid)
         (List.filter (fun bc -> not (dead t bc.bc_pid)) clients));
    if Engine.tracing (engine t) then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id;
    t.backend.Backend.b_barrier_depart ~pid;
    if run_gc then gc_phase t pid
  end
  else begin
    let mb = Transport.mailbox () in
    let arr = t.backend.Backend.b_make_arrival ~pid in
    Transport.send ~label:"barrier-arrival" ~parts:arr.Backend.v_parts (transport t)
      ~src:pid ~dst:barrier_manager ~bytes:arr.Backend.v_bytes
      ~deliver:(fun h ->
        let bs = barrier_state_of t id in
        arr.Backend.v_absorb_mgr ~charge:(h_charge h);
        bs.bs_clients <-
          { bc_pid = pid; bc_release = arr.Backend.v_release; bc_mb = mb } :: bs.bs_clients;
        bs.bs_gc <- bs.bs_gc || want_gc;
        barrier_maybe_complete t bs ~at:(Engine.hnow h));
    let rel = Transport.await_value (transport t) mb in
    atomically (fun charge -> rel.br_payload.Backend.p_absorb ~charge);
    if Engine.tracing (engine t) then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id;
    if rel.br_gc then gc_phase t pid
  end

let charge_compute _t ~pid:_ ns = app_charge Category.Computation (Vtime.ns ns)

(* ------------------------------------------------------------------ *)
(* Failure detection and recovery

   Runs in timer/handler context (from a transport suspicion), so it
   never calls [Engine.advance]: messages go out as context-free
   notifications and deferred work is posted to handlers.  The simulator
   rebuilds the metadata with global visibility — the real system's
   recovery rounds are modelled by the death notices below, and the
   recovery is treated as instantaneous at the detection time.           *)

(* Rebuild one lock's metadata.  The token is located with global
   visibility: a live casher keeps it; a grant in flight to a live
   requester is left to land; otherwise it died with the crash and is
   regenerated at the effective manager.  Every live waiter whose grant
   can no longer reach it is re-injected (fresh epoch) into the owner's
   queue in pid order; stale in-flight routing is dropped by
   [stale_request]. *)
let recover_lock t lock =
  let n = (config t).Config.nprocs in
  let waiters = ref [] in
  for p = n - 1 downto 0 do
    (match Hashtbl.find_opt t.lock_states.(p) lock with
    | Some st -> Queue.clear st.pending
    | None -> ());
    if not (dead t p) then
      match Hashtbl.find_opt t.waiting_acquires.(p) lock with
      | Some req when not (Transport.mailbox_filled req.lr_mb) -> waiters := req :: !waiters
      | _ -> ()
  done;
  let cached_at = ref None in
  for p = n - 1 downto 0 do
    if not (dead t p) then
      match Hashtbl.find_opt t.lock_states.(p) lock with
      | Some st when st.cached -> cached_at := Some p
      | _ -> ()
  done;
  let in_flight_to =
    match Hashtbl.find_opt t.grant_target lock with
    | Some req when not (dead t req.lr_requester) -> Some req.lr_requester
    | _ -> None
  in
  let owner, regenerated =
    match (!cached_at, in_flight_to) with
    | Some p, _ -> (p, false)
    | None, Some r -> (r, false)
    | None, None -> (effective_lock_manager t lock, true)
  in
  let owner_st =
    match Hashtbl.find_opt t.lock_states.(owner) lock with
    | Some st -> st
    | None ->
      let st = { held = false; cached = false; pending = Queue.create () } in
      Hashtbl.add t.lock_states.(owner) lock st;
      st
  in
  if regenerated then owner_st.cached <- true;
  let waiters =
    List.filter
      (fun req -> req.lr_requester <> owner || regenerated)
      (List.sort (fun a b -> compare a.lr_requester b.lr_requester) !waiters)
  in
  List.iter
    (fun old ->
      let fresh = { old with lr_epoch = epoch t } in
      Hashtbl.replace t.waiting_acquires.(old.lr_requester) lock fresh;
      Queue.add fresh owner_st.pending)
    waiters;
  (* Re-home the forwarding chain at the effective manager: the next new
     request chases the tail of the rebuilt queue. *)
  let ms = mgr_state_of t (effective_lock_manager t lock) lock in
  (match List.rev waiters with
  | last :: _ -> ms.last_requester <- last.lr_requester
  | [] -> ms.last_requester <- owner);
  (* A free token (regenerated, or parked at a live casher) with waiters
     starts moving immediately; a grant in flight drains its queue when
     the new holder releases.  As at release time, the stragglers chase
     the token to its new holder — leaving them queued at [owner], which
     no longer has the token, would strand them forever. *)
  if owner_st.cached && (not owner_st.held) && not (Queue.is_empty owner_st.pending) then begin
    match Queue.take_opt owner_st.pending with
    | Some req ->
      owner_st.cached <- false;
      note_grant_inflight t req;
      Engine.post_handler (engine t) ~pid:owner ~at:(Engine.now (engine t)) (fun h ->
          grant_from_handler t owner req h);
      Queue.iter
        (fun r ->
          if not (stale_request t r) then
            Transport.notify ~label:"lock-forward" (transport t) ~src:owner
              ~dst:req.lr_requester ~bytes:t.backend.Backend.b_lock_request_bytes
              ~deliver:(fun h -> transfer_request t req.lr_requester r h))
        owner_st.pending;
      Queue.clear owner_st.pending
    | None -> ()
  end

let recover_locks t =
  let known = Hashtbl.create 16 in
  let note l _ = if not (Hashtbl.mem known l) then Hashtbl.add known l () in
  Array.iter (fun tbl -> Hashtbl.iter note tbl) t.lock_states;
  Array.iter (fun tbl -> Hashtbl.iter note tbl) t.lock_mgrs;
  Array.iter (fun tbl -> Hashtbl.iter note tbl) t.waiting_acquires;
  let locks = List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) known []) in
  List.iter (recover_lock t) locks;
  List.length locks

(* Re-issue every registered in-flight operation that was waiting on the
   dead processor, in deterministic (pid, registration) order. *)
let retry_pending_ops t dead_pid =
  let pending =
    List.filter (fun op -> not (op.Cluster.po_settled ())) t.cl.Cluster.pending_ops
  in
  let hit, rest = List.partition (fun op -> op.Cluster.po_target = dead_pid) pending in
  t.cl.Cluster.pending_ops <- rest;
  let hit =
    List.sort
      (fun a b ->
        compare (a.Cluster.po_pid, a.Cluster.po_seq) (b.Cluster.po_pid, b.Cluster.po_seq))
      hit
  in
  List.iter (fun op -> op.Cluster.po_retry ()) hit;
  List.length hit

(* Metadata failover, run once per detected death. *)
let note_death t dead_pid =
  if not (dead t dead_pid) then begin
    t.cl.Cluster.dead.(dead_pid) <- true;
    t.cl.Cluster.epoch <- t.cl.Cluster.epoch + 1;
    let detected_at = Engine.now (engine t) in
    let crash_at =
      Option.value ~default:detected_at (Engine.crash_time (engine t) dead_pid)
    in
    if Engine.tracing (engine t) then
      Engine.emit (engine t) ~pid:dead_pid
        (Tmk_trace.Event.Failover { dead = dead_pid; epoch = epoch t });
    Log.debug (fun m ->
        m "[t=%d] processor %d declared dead (epoch %d)" (Engine.now (engine t)) dead_pid
          (epoch t));
    if dead_pid = barrier_manager then
      (* Processor 0 is the barrier/GC manager and the initial copyset of
         every page: its state is not recoverable. *)
      note_fatal t ~pid:dead_pid "barrier manager (processor 0) crashed"
    else begin
      (* Death notices: every live peer learns the new epoch (the
         simulator applies the membership change with global visibility;
         the notices model the traffic). *)
      let monitor = barrier_manager in
      for q = 0 to (config t).Config.nprocs - 1 do
        if q <> monitor && not (dead t q) then
          Transport.notify ~label:"death-notice" (transport t) ~src:monitor ~dst:q
            ~bytes:Wire.death_notice_bytes
            ~deliver:(fun h -> h_charge h Category.Tmk_other Cpu.lock_forward)
      done;
      t.backend.Backend.b_on_death dead_pid;
      let locks = recover_locks t in
      let retries = retry_pending_ops t dead_pid in
      (* Barriers and GC whose completion was gated on the dead client. *)
      Hashtbl.iter
        (fun _id bs -> barrier_maybe_complete t bs ~at:(Engine.now (engine t)))
        t.barrier_states;
      gc_maybe_complete t;
      t.deaths <- { d_pid = dead_pid; d_crash_at = crash_at; d_detected_at = detected_at } :: t.deaths;
      (* A zero-recovery backend rode out the crash by construction:
         record a recovery only when something was actually rebuilt. *)
      let counted =
        (not t.backend.Backend.b_caps.Backend.c_zero_recovery) || locks > 0 || retries > 0
      in
      if counted then begin
        if Engine.tracing (engine t) then
          Engine.emit (engine t) ~pid:barrier_manager
            (Tmk_trace.Event.Recovery_done { dead = dead_pid; locks; retries });
        t.recoveries <-
          {
            rc_pid = dead_pid;
            rc_epoch = epoch t;
            rc_crash_at = crash_at;
            rc_detected_at = detected_at;
            rc_locks_rehomed = locks;
            rc_retries = retries;
          }
          :: t.recoveries
      end
    end
  end

(* Transport suspicion: a crashed peer triggers failover; a peer that is
   merely unreachable (fault-plan partition) stops the run cleanly, as
   recovery from a false positive is out of scope.  Heartbeat probes are
   the exception: their retry budget is deliberately small so crashes are
   detected quickly, which makes a false suspicion of a live peer
   possible under bursty traffic (a congested handler queue can delay
   the probe ack past the whole backoff sequence).  A live peer that
   missed its probes is retried at the next tick; only the data path —
   with the full retransmit budget behind it — declares a live peer
   unreachable. *)
let on_suspicion t ~src ~dst ~label ~attempts =
  if not (dead t dst) then begin
    if Engine.crashed (engine t) dst then note_death t dst
    else if label <> "hb" then
      Engine.request_stop (engine t)
        (Printf.sprintf "peer %d unreachable (from %d after %d attempts)" dst src attempts)
  end

(* Failure detector: while a crash plan is armed, the lowest functioning
   processor probes every live peer on a short period with a small retry
   budget; budget exhaustion raises the suspicion that drives
   [note_death].  The monitor is recomputed every tick so that the crash of
   the monitor itself (processor 0, usually) leaves a successor probing —
   otherwise its death would go undetected with everyone parked on
   ivars.  Probing stops once every live processor has finished so the
   heartbeat never delays quiescence. *)
let heartbeat_period = Vtime.us 25_000
let heartbeat_budget = 4

(* Recovery restores protocol metadata, but it cannot restore
   application state the dead processor alone held — a task it popped
   from a shared work queue and never completed, say.  Survivors then
   poll forever, and because the heartbeat itself keeps the event queue
   non-empty the simulation would never end.  So once every planned
   crash is resolved, survivors owe {e progress} within a grace window:
   generous (30 simulated seconds, or [crash_grace_factor] times the
   crash instant for long runs, whichever is larger), and renewed each
   time a surviving processor reaches another barrier or finishes.
   Barrier arrivals are the one progress signal livelock cannot fake:
   workers polling a shared queue for a task that died with its owner
   keep faulting and keep cycling the queue lock, but they never reach
   the next barrier — while a legitimately slow run (full-replication
   backends move whole pages where LRC moves diffs) keeps arriving and
   keeps its lease.  Only a run that is both past its deadline and
   barrier-silent for a whole window gets the typed degradation. *)
let crash_grace = Vtime.s 30
let crash_grace_factor = 10

let arm_heartbeat t =
  let monitor () =
    let m = ref None in
    for p = (config t).Config.nprocs - 1 downto 0 do
      if (not (dead t p)) && not (Engine.crashed (engine t) p) then m := Some p
    done;
    !m
  in
  let unfinished_live () =
    let alive = ref false in
    for p = 0 to (config t).Config.nprocs - 1 do
      if (not (dead t p)) && not (Engine.finished (engine t) p) then alive := true
    done;
    !alive
  in
  (* A planned crash is resolved once its victim is dead (detected and
     handled) or finished before the crash instant ever arrived. *)
  let all_crashes_resolved () =
    List.for_all
      (fun { Tmk_net.Fault_plan.cr_pid; _ } ->
        dead t cr_pid || Engine.finished (engine t) cr_pid)
      (Tmk_net.Fault_plan.crashes (config t).Config.faults)
  in
  let allowance () =
    List.fold_left
      (fun acc d ->
        Vtime.max acc (Vtime.max crash_grace (Vtime.scale d.d_crash_at crash_grace_factor)))
      Vtime.zero t.deaths
  in
  let grace_deadline () =
    List.fold_left
      (fun acc d -> Vtime.max acc (Vtime.add d.d_detected_at (allowance ())))
      Vtime.zero t.deaths
  in
  (* Barrier arrivals plus run completions across the survivors: the
     progress signal that renews the grace lease (see the comment at
     [crash_grace]).  Deliberately excludes locks and page faults — a
     work-queue livelock generates both at full speed. *)
  let progress_marker () =
    let m = ref 0 in
    for p = 0 to (config t).Config.nprocs - 1 do
      if not (dead t p) then begin
        m := !m + t.cl.Cluster.nodes.(p).Node.stats.Stats.barriers;
        if Engine.finished (engine t) p then incr m
      end
    done;
    !m
  in
  let last_marker = ref (-1) in
  let progress_at = ref Vtime.zero in
  let note_progress () =
    let m = progress_marker () in
    if m <> !last_marker then begin
      last_marker := m;
      progress_at := Engine.now (engine t)
    end
  in
  let probe () =
    match monitor () with
    | None -> ()
    | Some monitor ->
      for q = 0 to (config t).Config.nprocs - 1 do
        if q <> monitor && (not (dead t q)) && not (Engine.finished (engine t) q) then
          Transport.notify ~label:"hb" ~retry_budget:heartbeat_budget (transport t)
            ~src:monitor ~dst:q ~bytes:Wire.heartbeat_bytes
            ~deliver:(fun _h -> ())
      done
  in
  let rec tick at =
    Engine.schedule (engine t) ~at (fun () ->
        if Engine.stop_reason (engine t) = None && unfinished_live () then
          if not (all_crashes_resolved ()) then begin
            probe ();
            tick (Vtime.add at heartbeat_period)
          end
          else
            match t.deaths with
            | [] ->
              (* Every victim finished before its crash instant: nothing
                 to detect or to count down.  Stand down so a genuine
                 application deadlock still surfaces as one. *)
              ()
            | d :: _ ->
              note_progress ();
              let now = Engine.now (engine t) in
              if now > grace_deadline () && now > Vtime.add !progress_at (allowance ())
              then
                (* The protocol absorbed the crash long ago and the
                   survivors have been barrier-silent for a whole grace
                   window: they are stuck on application state only the
                   dead processor could produce.  Give them the typed
                   ending, not an endless simulation. *)
                note_fatal t ~pid:d.d_pid
                  (Printf.sprintf
                     "survivors made no progress for %.0f s after recovery: \
                      application state lost in the crash of processor %d \
                      cannot be reproduced"
                     (Vtime.to_s (Vtime.sub now !progress_at))
                     d.d_pid)
              else tick (Vtime.add at heartbeat_period))
  in
  tick heartbeat_period

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create cfg =
  Config.validate cfg;
  let caps = backend_caps cfg.Config.protocol in
  let planned_crashes = Tmk_net.Fault_plan.crashes cfg.Config.faults in
  if planned_crashes <> [] && not caps.Backend.c_crash_runs then
    invalid_arg
      (Printf.sprintf "Config: crash recovery is not supported by the %s backend"
         caps.Backend.c_name);
  if cfg.Config.diff_backup && not caps.Backend.c_diff_backup then
    invalid_arg
      (Printf.sprintf "Config: diff_backup is not supported by the %s backend"
         caps.Backend.c_name);
  let cl = Cluster.create cfg in
  let backend =
    match cfg.Config.protocol with
    | Config.Lrc -> Lrc.make cl
    | Config.Erc -> Erc.make cl
    | Config.Sc -> Sc.make cl
    | Config.Tardis -> Tardis.make cl
    | Config.Sc_abd -> Sc_abd.make cl
  in
  let t =
    {
      cl;
      backend;
      lock_states = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 16);
      lock_mgrs = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 16);
      barrier_states = Hashtbl.create 4;
      gc = fresh_gc_state ();
      waiting_acquires = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 4);
      grant_target = Hashtbl.create 16;
      deaths = [];
      recoveries = [];
    }
  in
  Array.iteri
    (fun pid node ->
      Vm.set_fault_handler node.Node.vm (fun kind page ->
          backend.Backend.b_handle_fault ~pid kind page))
    cl.Cluster.nodes;
  (match (race_of t, hooks_of t) with
  | None, [] -> ()
  | race, hooks ->
    Array.iteri
      (fun pid node ->
        Vm.set_access_hook node.Node.vm (fun kind addr width ->
            (match race with
            | Some race ->
              let kind =
                match kind with
                | Vm.Read -> Tmk_check.Race.Read
                | Vm.Write -> Tmk_check.Race.Write
              in
              Tmk_check.Race.note_access race ~pid kind ~addr ~width
            | None -> ());
            let kind =
              match kind with
              | Vm.Read -> Tmk_check.Hooks.Read
              | Vm.Write -> Tmk_check.Hooks.Write
            in
            List.iter (fun h -> h.Tmk_check.Hooks.h_access ~pid kind ~addr ~width) hooks))
      cl.Cluster.nodes);
  (* Suspicions from retry-budget exhaustion drive failure handling. *)
  Transport.on_suspect cl.Cluster.transport (fun ~src ~dst ~label ~attempts ->
      on_suspicion t ~src ~dst ~label ~attempts);
  (* Crash injection: silence the processor at its planned instant;
     detection and failover run through the suspicion path. *)
  List.iter
    (fun { Tmk_net.Fault_plan.cr_pid; cr_at } ->
      Engine.schedule cl.Cluster.engine ~at:cr_at (fun () ->
          if not (Engine.finished cl.Cluster.engine cr_pid) then begin
            if Engine.tracing cl.Cluster.engine then
              Engine.emit cl.Cluster.engine ~pid:cr_pid Tmk_trace.Event.Proc_crash;
            Engine.mark_crashed cl.Cluster.engine cr_pid
          end))
    planned_crashes;
  if cl.Cluster.crashes_planned then arm_heartbeat t;
  t
