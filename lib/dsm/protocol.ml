open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Rle = Tmk_util.Rle
module Bitset = Tmk_util.Bitset

(* ------------------------------------------------------------------ *)
(* Message payloads (sizes are computed via [Wire]; the values travel
   as closures/records inside the simulator).                          *)

type grant = { g_intervals : Node.msg_interval list; g_granter_vt : Vector_time.t }

type lock_request = {
  lr_lock : int;
  lr_requester : int;
  lr_vt : Vector_time.t;
  lr_mb : grant Transport.mailbox;
}

type barrier_release = {
  br_intervals : Node.msg_interval list;
  br_vt : Vector_time.t;
  br_gc : bool;
}

(* ------------------------------------------------------------------ *)
(* Lock and barrier state                                              *)

type lock_state = { mutable held : bool; mutable cached : bool; pending : lock_request Queue.t }

type mgr_state = { mutable last_requester : int }

type barrier_client = {
  bc_pid : int;
  bc_vt : Vector_time.t;
  bc_mb : barrier_release Transport.mailbox;
}

type barrier_state = {
  mutable bs_clients : barrier_client list;
  mutable bs_manager_here : bool;
  mutable bs_all_in : unit Engine.Ivar.t;
  mutable bs_gc : bool;
}

type gc_client = { gc_pid : int; gc_keep : Bitset.t; gc_mb : Bitset.t array Transport.mailbox }

type gc_state = {
  mutable gs_clients : gc_client list;
  mutable gs_manager_here : bool;
  mutable gs_all_in : unit Engine.Ivar.t;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  transport : Transport.t;
  nodes : Node.t array;
  lock_states : (int, lock_state) Hashtbl.t array;  (* per node *)
  lock_mgrs : (int, mgr_state) Hashtbl.t array;  (* per node, manager role *)
  barrier_states : (int, barrier_state) Hashtbl.t;  (* at the central manager *)
  mutable gc : gc_state;
  erc_dir : Bitset.t array;  (* ERC copyset directory (one entry per page) *)
  erc_pending : (int, Rle.t list) Hashtbl.t array;  (* ERC updates for absent pages *)
  erc_inflight : int array;  (* ERC update messages not yet delivered, per page *)
  mutable sc : Sc.t option;  (* single-writer protocol state, when Config.Sc *)
}

let config t = t.cfg
let engine t = t.engine
let transport t = t.transport
let node t pid = t.nodes.(pid)

let barrier_manager = 0
let lock_manager t lock = lock mod t.cfg.Config.nprocs

(* Protocol event tracing: enable with Logs at Debug level on the
   "tmk.protocol" source (tmk_run --verbose), e.g. to watch lock tokens
   move or flushes drain. *)
let log_src = Logs.Src.create "tmk.protocol" ~doc:"TreadMarks protocol events"

module Log = (val Logs.src_log log_src : Logs.LOG)

let app_charge cat dt = Engine.advance cat dt
let h_charge h cat dt = Engine.hcharge h cat dt

(* Typed-trace emission.  Always guard with [Engine.tracing] (or
   [Engine.htracing] in handler context) at the call site so the event
   value is never even allocated when tracing is off. *)
let emit t ~pid ev = Engine.emit t.engine ~pid ev

(* The race detector, when one rides along in [Config.check].  Sync
   edges are reported from application context at the four points the
   happens-before relation needs: release before the grant can leave,
   acquired after the grant is absorbed, barrier arrival before the
   arrival message goes out, departure after the release is absorbed. *)
let race_of t =
  match t.cfg.Config.check with
  | Some c -> Tmk_check.Checker.race c
  | None -> None

let race_lock_acquired t ~pid ~lock =
  match race_of t with
  | Some r -> Tmk_check.Race.lock_acquired r ~pid ~lock
  | None -> ()

let race_lock_release t ~pid ~lock =
  match race_of t with
  | Some r -> Tmk_check.Race.lock_release r ~pid ~lock
  | None -> ()

let race_barrier_arrive t ~pid ~id =
  match race_of t with
  | Some r -> Tmk_check.Race.barrier_arrive r ~pid ~id
  | None -> ()

let race_barrier_depart t ~pid ~id =
  match race_of t with
  | Some r -> Tmk_check.Race.barrier_depart r ~pid ~id
  | None -> ()

(* Application-context protocol bookkeeping must not interleave with this
   processor's request handlers: [Engine.advance] is a scheduling point,
   so charging time in the middle of a mutation sequence would let a
   handler observe (and mutate) half-updated consistency structures.  The
   real implementation masks signals around these sections; we run the
   mutations instantaneously and charge the accumulated CPU afterwards. *)
let atomically f =
  let charges = ref [] in
  let charge cat dt = charges := (cat, dt) :: !charges in
  let result = f charge in
  List.iter (fun (cat, dt) -> Engine.advance cat dt) (List.rev !charges);
  result

let lock_state_of t pid lock =
  match Hashtbl.find_opt t.lock_states.(pid) lock with
  | Some st -> st
  | None ->
    (* The manager starts out holding the token of each lock it manages. *)
    let st = { held = false; cached = lock_manager t lock = pid; pending = Queue.create () } in
    Hashtbl.add t.lock_states.(pid) lock st;
    st

let mgr_state_of t pid lock =
  match Hashtbl.find_opt t.lock_mgrs.(pid) lock with
  | Some st -> st
  | None ->
    let st = { last_requester = pid } in
    Hashtbl.add t.lock_mgrs.(pid) lock st;
    st

let barrier_state_of t id =
  match Hashtbl.find_opt t.barrier_states id with
  | Some bs -> bs
  | None ->
    let bs =
      { bs_clients = []; bs_manager_here = false; bs_all_in = Engine.Ivar.create (); bs_gc = false }
    in
    Hashtbl.add t.barrier_states id bs;
    bs

(* ------------------------------------------------------------------ *)
(* Access misses (§3.5)                                                *)

(* Pick a processor believed to cache the page (never ourselves). *)
let choose_provider copyset ~self =
  let provider = Bitset.fold (fun q acc -> if q <> self && acc < 0 then q else acc) copyset (-1) in
  if provider < 0 then failwith "Protocol: page has an empty copyset" else provider

let fetch_base_lrc t pid page =
  let node = t.nodes.(pid) in
  let entry = node.Node.pages.(page) in
  let provider = choose_provider entry.Node.pg_copyset ~self:pid in
  app_charge Category.Tmk_other Cpu.page_request_build;
  let bytes, copyset =
    Transport.rpc ~label:"page-fetch" t.transport ~src:pid ~dst:provider
      ~bytes:Wire.page_request_bytes
      ~serve:(fun h ->
        let pnode = t.nodes.(provider) in
        h_charge h Category.Tmk_mem Costs.page_copy;
        let pentry = pnode.Node.pages.(page) in
        Bitset.add pentry.Node.pg_copyset pid;
        (* Serve the twin when the page is dirty: diffs record only the
           bytes that changed relative to their interval's base state, so
           a base copy containing the provider's uncommitted (not yet
           diffed) writes would be byte-inconsistent with the very diffs
           the requester is about to apply over it. *)
        let snapshot =
          match pentry.Node.pg_twin with
          | Some twin -> Bytes.copy twin
          | None -> Vm.page_snapshot pnode.Node.vm page
        in
        (Wire.page_reply_bytes, (snapshot, Bitset.copy pentry.Node.pg_copyset)))
  in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fetch { page; from_ = provider });
  atomically (fun charge ->
      Node.validate_page node page bytes ~charge;
      Bitset.union_into ~src:copyset ~dst:entry.Node.pg_copyset;
      Bitset.add entry.Node.pg_copyset pid)

(* Serve one gathered diff-request entry on responder [r].  In batched
   mode repeated fetches of the same (proc, interval, page) diff hit the
   responder's cache instead of recomputing/relocating the RLE (diffs are
   immutable and interval ids never reused, so a hit is always current). *)

(* A speculative (other-page) diff rides a gathered reply only if it is
   small: gathering targets the many-small-messages regime the paper
   highlights (§4.7), where a round trip costs far more than the payload;
   a large diff would instead dominate the reply the fault is stalled on,
   losing more latency than the saved round trip.  The faulting page's
   own diffs are always served in full.  Entries the responder declines
   simply stay missing at the requester (which blacklists the page from
   future gathering) and are fetched on their own later miss — cheaply,
   since serving them here already warmed the responder's diff cache. *)
let gather_entry_max = 512
let serve_diff_entry t r h (page, proc, interval_id) =
  let rnode = t.nodes.(r) in
  let batched = t.cfg.Config.batching in
  let cached = if batched then Node.cached_diff rnode ~proc ~interval_id ~page else None in
  match cached with
  | Some diff ->
    h_charge h Category.Tmk_other Cpu.diff_cache_hit;
    rnode.Node.stats.Stats.diff_cache_hits <- rnode.Node.stats.Stats.diff_cache_hits + 1;
    if Engine.htracing h then
      Engine.hemit h (Tmk_trace.Event.Diff_cache { page; hit = true });
    (page, proc, interval_id, diff)
  | None ->
    h_charge h Category.Tmk_other Cpu.diff_lookup_per_entry;
    let diff = Node.find_diff rnode ~proc ~interval_id ~page ~charge:(h_charge h) in
    if batched then begin
      Node.cache_diff rnode ~proc ~interval_id ~page diff;
      rnode.Node.stats.Stats.diff_cache_misses <-
        rnode.Node.stats.Stats.diff_cache_misses + 1;
      if Engine.htracing h then
        Engine.hemit h (Tmk_trace.Event.Diff_cache { page; hit = false })
    end;
    (page, proc, interval_id, diff)

(* §3.5 responder assignment for one page: the newest lacking notice per
   processor is a head; undominated heads are the minimal responder set,
   and each processor's lacking notices go to a responder whose newest
   interval covers them (a processor that modified the page in interval i
   holds all of the page's diffs for intervals with smaller timestamps). *)
let plan_page_fetch missing =
  let heads =
    List.map
      (fun (q, wns) ->
        match wns with
        | wn :: _ -> (q, wn.Node.wn_interval.Node.iv_vt)
        | [] -> assert false)
      missing
  in
  let dominated (q, vt) =
    List.exists (fun (r, vt') -> r <> q && Vector_time.leq vt vt') heads
  in
  (heads, List.filter (fun h -> not (dominated h)) heads)

(* Fetch the diffs for [missing] (per-processor groups of notices lacking
   diffs) from the minimal processor set, in parallel, then apply them in
   vector-timestamp order.  In batched mode the requests additionally
   gather other invalidated pages' lacking diffs whenever an
   already-contacted responder provably holds them, so a page-miss burst
   at scale costs one request/response pair per responder instead of one
   per (responder, page). *)
let fetch_and_apply_diffs t pid page missing =
  let node = t.nodes.(pid) in
  let total_notices = List.fold_left (fun acc (_, wns) -> acc + List.length wns) 0 missing in
  app_charge Category.Tmk_consistency (Vtime.scale Cpu.miss_plan total_notices);
  let _, responders = plan_page_fetch missing in
  let assignments = Hashtbl.create 4 in
  let assign (q, wns) =
    let vt_q = (List.hd wns).Node.wn_interval.Node.iv_vt in
    let r =
      match List.find_opt (fun (_r, vt_r) -> Vector_time.leq vt_q vt_r) responders with
      | Some (r, _) -> r
      | None -> assert false (* q's own head is undominated or covered *)
    in
    let entries = List.map (fun wn -> (page, q, wn.Node.wn_interval.Node.iv_id)) wns in
    (* accumulated in reverse and flipped once below: [prev @ entries] here
       would be quadratic in the number of lacking processors *)
    let prev = Option.value ~default:[] (Hashtbl.find_opt assignments r) in
    Hashtbl.replace assignments r (List.rev_append entries prev)
  in
  List.iter assign missing;
  (* Multi-page gathering (batched mode): ride the requests already going
     out.  Another page's lacking group can be attached to a contacted
     responder [r] when [r] is the group's own creator, or when [r] itself
     modified that page in an interval covering the group's head — either
     way §3.5 guarantees [r] holds the diffs.  Only pages this processor
     has faulted on since their last gather are eligible ([pg_fetched],
     armed by a genuine access miss, disarmed by each gather) — the
     hybrid update protocol's "receiver actively uses the page"
     heuristic, with a one-strike bound: a page the processor has stopped
     touching wastes at most one speculative fetch before gathering stops
     until its next real miss.  Pages whose entries a responder has
     previously declined ([pg_no_gather]: diffs too large to ride a
     reply) are never retried.  Unattached groups are simply fetched on
     their own later miss. *)
  let gathered = ref 0 in
  if t.cfg.Config.batching then begin
    let contacted = Hashtbl.fold (fun r _ acc -> r :: acc) assignments [] in
    Array.iteri
      (fun q_page pentry ->
        if
          q_page <> page && pentry.Node.pg_fetched
          && (not pentry.Node.pg_no_gather)
          && pentry.Node.pg_has_copy
        then
          match Node.missing_diffs node q_page with
          | [] -> ()
          | groups ->
            let heads =
              List.map
                (fun (g, wns) -> (g, (List.hd wns).Node.wn_interval.Node.iv_vt))
                groups
            in
            List.iter
              (fun (g, wns) ->
                if g <> pid then begin
                  let vt_g = (List.hd wns).Node.wn_interval.Node.iv_vt in
                  let holds r =
                    r = g
                    || List.exists
                         (fun (p, vt_p) -> p = r && Vector_time.leq vt_g vt_p)
                         heads
                  in
                  match List.find_opt holds contacted with
                  | None -> ()
                  | Some r ->
                    let entries =
                      List.map
                        (fun wn -> (q_page, g, wn.Node.wn_interval.Node.iv_id))
                        wns
                    in
                    gathered := !gathered + List.length entries;
                    pentry.Node.pg_fetched <- false;
                    let prev =
                      Option.value ~default:[] (Hashtbl.find_opt assignments r)
                    in
                    Hashtbl.replace assignments r (List.rev_append entries prev)
                end)
              groups)
      node.Node.pages;
    if !gathered > 0 then begin
      node.Node.stats.Stats.diff_prefetch_entries <-
        node.Node.stats.Stats.diff_prefetch_entries + !gathered;
      app_charge Category.Tmk_consistency (Vtime.scale Cpu.miss_plan !gathered)
    end
  end;
  let promises =
    Hashtbl.fold
      (fun r rev_entries acc ->
        let entries = List.rev rev_entries in
        let n = List.length entries in
        app_charge Category.Tmk_other Cpu.page_request_build;
        if Engine.tracing t.engine then begin
          (* one Diff_fetch per (responder, page) group of the request *)
          let by_page = Hashtbl.create 4 in
          List.iter
            (fun (p, _, _) ->
              Hashtbl.replace by_page p
                (1 + Option.value ~default:0 (Hashtbl.find_opt by_page p)))
            entries;
          Hashtbl.iter
            (fun p count ->
              emit t ~pid (Tmk_trace.Event.Diff_fetch { page = p; from_ = r; count }))
            by_page
        end;
        let mb = Transport.mailbox () in
        Transport.send ~label:"diff-fetch" ~parts:n t.transport ~src:pid ~dst:r
          ~bytes:(Wire.gathered_diff_request_bytes n)
          ~deliver:(fun h ->
            let replies =
              List.filter_map
                (fun ((p, _, _) as entry) ->
                  let ((_, _, _, d) as reply) = serve_diff_entry t r h entry in
                  if p = page || Rle.encoded_size d <= gather_entry_max then
                    Some reply
                  else None)
                entries
            in
            let sizes = List.map (fun (_, _, _, d) -> Rle.encoded_size d) replies in
            Transport.hsend_value ~label:"diff-fetch-reply"
              ~parts:(List.length replies) t.transport h ~dst:pid
              ~bytes:(Wire.gathered_diff_reply_bytes sizes) mb replies);
        (entries, mb) :: acc)
      assignments []
  in
  let receive (entries, promise) =
    let replies = Transport.await_value t.transport promise in
    List.iter
      (fun (p, proc, interval_id, diff) ->
        Node.store_diff node ~proc ~interval_id ~page:p diff)
      replies;
    (* Drop feedback: a gathered entry the responder declined to serve
       means that page's diffs are too large to prefetch — blacklist the
       page so the request/decline cycle is not repeated at every miss. *)
    List.iter
      (fun ((p, _, _) as entry) ->
        if
          p <> page
          && not (List.exists (fun (p', q', i', _) -> (p', q', i') = entry) replies)
        then node.Node.pages.(p).Node.pg_no_gather <- true)
      entries
  in
  List.iter receive promises;
  atomically (fun charge ->
      (* the fetched diffs, plus any piggybacked ones not yet reflected;
         rev_append (not @): apply_missing_diffs sorts by timestamp *)
      let fetched =
        List.fold_left (fun acc (_, wns) -> List.rev_append wns acc) [] missing
      in
      let pending =
        List.filter (fun wn -> not (List.memq wn fetched)) (Node.unapplied_diffs node page)
      in
      Node.apply_missing_diffs node page (List.rev_append fetched pending) ~charge)

(* ERC: cold fetch through the global directory; updates that raced ahead
   of the base copy are queued and applied on installation.  A provider
   with update messages still in flight to it cannot produce a current
   snapshot, and the requester is not yet a copyset member so it would
   never receive those updates: the serve stalls (the handler re-arms
   itself) until the page's in-flight update count drains.  Flushes are
   bursts bounded by their acknowledgements, so the wait is short. *)
let fetch_base_erc t pid page =
  let node = t.nodes.(pid) in
  let provider = choose_provider t.erc_dir.(page) ~self:pid in
  app_charge Category.Tmk_other Cpu.page_request_build;
  let mb = Transport.mailbox () in
  let rec serve h =
    if t.erc_inflight.(page) > 0 then begin
      h_charge h Category.Tmk_other (Vtime.us 5);
      Engine.post_handler t.engine ~pid:provider
        ~at:(Vtime.add (Engine.hnow h) (Vtime.us 200))
        serve
    end
    else begin
      h_charge h Category.Tmk_mem Costs.page_copy;
      (* Joining the copyset here makes every later flush reach the new
         member (possibly before the base installs; see erc_pending). *)
      Bitset.add t.erc_dir.(page) pid;
      Transport.hsend_value ~label:"page-fetch-reply" t.transport h ~dst:pid
        ~bytes:Wire.page_reply_bytes mb
        (Vm.page_snapshot t.nodes.(provider).Node.vm page)
    end
  in
  Transport.send ~label:"page-fetch" t.transport ~src:pid ~dst:provider
    ~bytes:Wire.page_request_bytes ~deliver:serve;
  let bytes = Transport.await_value t.transport mb in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fetch { page; from_ = provider });
  atomically (fun charge ->
      Node.validate_page node page bytes ~charge;
      (match Hashtbl.find_opt t.erc_pending.(pid) page with
      | None -> ()
      | Some diffs ->
        List.iter
          (fun diff ->
            charge Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
            Vm.patch node.Node.vm page diff;
            node.Node.stats.Stats.diffs_applied <- node.Node.stats.Stats.diffs_applied + 1;
            if Engine.tracing t.engine then
              emit t ~pid
                (Tmk_trace.Event.Diff_apply
                   (* queued while the base copy was in flight; the sender's
                      identity was not kept *)
                   { page; bytes = Rle.payload_size diff; proc = -1; interval = -1 }))
          (List.rev diffs);
        Hashtbl.remove t.erc_pending.(pid) page);
      charge Category.Unix_mem Costs.mprotect;
      Vm.set_prot node.Node.vm page Vm.Read_only)

let miss t pid page =
  let node = t.nodes.(pid) in
  Log.debug (fun m -> m "[t=%d] miss at %d on page %d" (Engine.now t.engine) pid page);
  node.Node.stats.Stats.remote_misses <- node.Node.stats.Stats.remote_misses + 1;
  match t.cfg.Config.protocol with
  | Config.Sc -> assert false (* SC faults are handled entirely by Sc *)
  | Config.Erc ->
    (* Update protocol: pages are never invalidated, so a miss is always a
       cold fetch. *)
    assert (not node.Node.pages.(page).Node.pg_has_copy);
    fetch_base_erc t pid page
  | Config.Lrc ->
    let entry = node.Node.pages.(page) in
    (* A genuine access miss (re-)arms the page for speculative gathering;
       each gather disarms it (one-strike policy, see
       [fetch_and_apply_diffs]). *)
    entry.Node.pg_fetched <- true;
    if not entry.Node.pg_has_copy then fetch_base_lrc t pid page;
    (* New write notices can be incorporated by a request handler while we
       wait for replies (this node may be the barrier manager); loop until
       every known diff has been applied. *)
    let rec settle () =
      match Node.missing_diffs node page with
      | [] ->
        atomically (fun charge ->
            (match Node.unapplied_diffs node page with
            | [] -> ()
            | pending ->
              (* diffs that arrived piggybacked on synchronization
                 messages (hybrid update protocol) while the page was
                 invalid or twinned *)
              Node.apply_missing_diffs node page pending ~charge);
            if Vm.prot node.Node.vm page = Vm.No_access then begin
              charge Category.Unix_mem Costs.mprotect;
              Vm.set_prot node.Node.vm page Vm.Read_only
            end)
      | missing ->
        fetch_and_apply_diffs t pid page missing;
        settle ()
    in
    settle ()

let handle_fault_rc t pid kind page =
  let node = t.nodes.(pid) in
  app_charge Category.Unix_mem Costs.sigsegv;
  app_charge Category.Tmk_other Cpu.fault_dispatch;
  (match kind with
  | Vm.Read -> node.Node.stats.Stats.read_faults <- node.Node.stats.Stats.read_faults + 1
  | Vm.Write -> node.Node.stats.Stats.write_faults <- node.Node.stats.Stats.write_faults + 1);
  let ekind =
    match kind with Vm.Read -> Tmk_trace.Event.Read | Vm.Write -> Tmk_trace.Event.Write
  in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fault { page; kind = ekind });
  (match (Vm.prot node.Node.vm page, kind) with
  | Vm.Read_only, Vm.Write ->
    atomically (fun charge -> Node.write_fault_twin node page ~charge)
  | Vm.No_access, Vm.Read -> miss t pid page
  | Vm.No_access, Vm.Write ->
    miss t pid page;
    (* The miss can leave the page invalid again if a notice raced in;
       the Vm fault dispatcher retries and we fall into the miss path
       once more. *)
    if Vm.prot node.Node.vm page = Vm.Read_only then
      atomically (fun charge -> Node.write_fault_twin node page ~charge)
  | (Vm.Read_only | Vm.Read_write), _ -> assert false);
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fault_done { page; kind = ekind })

(* Fault entry: the SC baseline handles its faults entirely in Sc. *)
let handle_fault t pid kind page =
  match t.sc with
  | Some sc -> Sc.handle_fault sc ~pid kind page
  | None -> handle_fault_rc t pid kind page

(* ------------------------------------------------------------------ *)
(* ERC release flush (§5.1): diff every dirty page and push updates to
   every cacher, then wait for all acknowledgements.                    *)

let erc_flush t pid =
  let node = t.nodes.(pid) in
  let dirty = node.Node.dirty in
  node.Node.dirty <- [];
  if dirty <> [] then begin
    (* First pass: create every diff and collect the update fan-out so the
       acknowledgement count is known before any ack can arrive. *)
    Log.debug (fun m ->
        m "[t=%d] erc flush by %d, %d dirty pages" (Engine.now t.engine) pid
          (List.length dirty));
    let updates =
      List.filter_map
        (fun page ->
          let entry = node.Node.pages.(page) in
          match entry.Node.pg_twin with
          | None -> None
          | Some twin ->
            let diff =
              atomically (fun charge ->
                  charge Category.Tmk_other Cpu.erc_flush_per_page;
                  charge Category.Tmk_mem (Costs.diff_create Vm.page_size);
                  let diff = Vm.diff_against node.Node.vm page ~twin in
                  entry.Node.pg_twin <- None;
                  node.Node.stats.Stats.diffs_created <-
                    node.Node.stats.Stats.diffs_created + 1;
                  node.Node.stats.Stats.diff_bytes_created <-
                    node.Node.stats.Stats.diff_bytes_created + Rle.encoded_size diff;
                  if Engine.tracing t.engine then
                    emit t ~pid
                      (Tmk_trace.Event.Diff_create
                         { page; bytes = Rle.encoded_size diff; proc = pid;
                           interval = -1 });
                  charge Category.Unix_mem Costs.mprotect;
                  Vm.set_prot node.Node.vm page Vm.Read_only;
                  diff)
            in
            let members =
              List.filter (fun q -> q <> pid) (Bitset.to_list t.erc_dir.(page))
            in
            (* Reserve the deliveries while still atomic with the
               membership read, so concurrent cold fetches stall until
               these updates land (see fetch_base_erc). *)
            t.erc_inflight.(page) <- t.erc_inflight.(page) + List.length members;
            if members = [] then None else Some (page, diff, members))
        dirty
    in
    (* Regroup the (page → members) fan-out into per-member batches: one
       update message per cacher carrying all of its pages' diffs (one
       frame when batching, back-to-back fragments otherwise), answered by
       one aggregate acknowledgement. *)
    let by_member = Hashtbl.create 8 in
    List.iter
      (fun (page, diff, members) ->
        List.iter
          (fun m ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_member m) in
            Hashtbl.replace by_member m ((page, diff) :: prev))
          members)
      updates;
    let batches =
      Hashtbl.fold (fun m rev_pages acc -> (m, List.rev rev_pages) :: acc) by_member []
    in
    if batches <> [] then begin
      let remaining = ref (List.length batches) in
      let all_acked = Engine.Ivar.create () in
      let send_batch (m, entries) =
        let n = List.length entries in
        let bytes =
          List.fold_left
            (fun acc (_, diff) -> acc + Wire.erc_update_bytes (Rle.encoded_size diff))
            0 entries
        in
        let deliver h =
          let mnode = t.nodes.(m) in
          List.iter
            (fun (page, diff) ->
              t.erc_inflight.(page) <- t.erc_inflight.(page) - 1;
              Log.debug (fun msg ->
                  msg "[t=%d] erc update page %d from %d at %d (%d runs, has_copy=%b)"
                    (Engine.now t.engine) page pid m
                    (Tmk_util.Rle.run_count diff)
                    mnode.Node.pages.(page).Node.pg_has_copy);
              if mnode.Node.pages.(page).Node.pg_has_copy then begin
                h_charge h Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
                Vm.patch mnode.Node.vm page diff;
                (match mnode.Node.pages.(page).Node.pg_twin with
                | Some tw -> Rle.apply diff tw
                | None -> ());
                mnode.Node.stats.Stats.diffs_applied <-
                  mnode.Node.stats.Stats.diffs_applied + 1;
                if Engine.htracing h then
                  Engine.hemit h
                    (Tmk_trace.Event.Diff_apply
                       { page; bytes = Rle.payload_size diff; proc = pid; interval = -1 })
              end
              else begin
                (* The base copy is still in flight: queue the update. *)
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt t.erc_pending.(m) page)
                in
                Hashtbl.replace t.erc_pending.(m) page (diff :: prev)
              end)
            entries;
          Transport.hsend ~label:"erc-ack" ~parts:n t.transport h ~dst:pid
            ~bytes:(n * Wire.ack_bytes)
            ~deliver:(fun ha ->
              decr remaining;
              if !remaining = 0 then Engine.fill t.engine all_acked ~at:(Engine.hnow ha) ())
        in
        Transport.send ~label:"erc-update" ~parts:n t.transport ~src:pid ~dst:m ~bytes
          ~deliver
      in
      (* Send in member order for determinism (by_member is a Hashtbl). *)
      List.iter send_batch (List.sort (fun (a, _) (b, _) -> compare a b) batches);
      (* The release "is not allowed to perform" until every update is
         acknowledged (section 5.1's DASH-style requirement). *)
      Log.debug (fun m ->
          m "[t=%d] erc flush by %d awaiting %d acks" (Engine.now t.engine) pid !remaining);
      Engine.await all_acked;
      Log.debug (fun m -> m "[t=%d] erc flush by %d complete" (Engine.now t.engine) pid)
    end
  end

(* ------------------------------------------------------------------ *)
(* Hybrid update protocol (§2.2's alternative to invalidation): when
   enabled, synchronization messages piggyback the diffs of pages the
   receiver is believed to cache, and the receiver updates valid pages in
   place. *)

let attach_for t node ~receiver ~charge =
  if not t.cfg.Config.lrc_updates then None
  else
    Some
      (fun wn ->
        let page = wn.Node.wn_page in
        if Bitset.mem node.Node.pages.(page).Node.pg_copyset receiver then begin
          (* a pending local diff is created now (it is the newest
             diff-less local notice by the lazy-diffing invariant) *)
          if wn.Node.wn_interval.Node.iv_proc = node.Node.pid && wn.Node.wn_diff = None
          then Node.ensure_own_diff node page ~charge;
          wn.Node.wn_diff
        end
        else None)

(* ------------------------------------------------------------------ *)
(* Locks (§3.3)                                                        *)

let grant_payload t granter req ~charge =
  let node = t.nodes.(granter) in
  match t.cfg.Config.protocol with
  | Config.Lrc ->
    (* A new interval logically begins at the release-to-another-processor. *)
    Node.close_interval ~eager_diffs:(not t.cfg.Config.lazy_diffs) node ~charge;
    let attach = attach_for t node ~receiver:req.lr_requester ~charge in
    let intervals = Node.intervals_since ?attach node req.lr_vt in
    charge Category.Unix_comm Cpu.lock_grant_kernel;
    charge Category.Tmk_other Cpu.lock_grant_dsm;
    let bytes =
      Wire.lock_grant_bytes ~nprocs:t.cfg.Config.nprocs (Node.notice_counts intervals)
      + Node.update_bytes intervals
    in
    (bytes, { g_intervals = intervals; g_granter_vt = Vector_time.copy node.Node.vt })
  | Config.Erc | Config.Sc ->
    charge Category.Unix_comm Cpu.lock_grant_kernel;
    charge Category.Tmk_other Cpu.lock_grant_dsm;
    ( Wire.lock_grant_bytes ~nprocs:t.cfg.Config.nprocs [],
      { g_intervals = []; g_granter_vt = Vector_time.copy node.Node.vt } )

(* A grant (or barrier message) carrying n piggybacked intervals is one
   logical header plus n interval units: an unbatched transport sends each
   as its own frame, a batching one coalesces them (the tentpole). *)
let interval_parts intervals = 1 + List.length intervals

(* Grant from a request handler: the lock was free (cached) at this node. *)
let grant_from_handler t granter req h =
  let bytes, payload = grant_payload t granter req ~charge:(h_charge h) in
  if Engine.htracing h then
    Engine.hemit h
      (Tmk_trace.Event.Lock_grant
         {
           lock = req.lr_lock;
           requester = req.lr_requester;
           intervals = List.length payload.g_intervals;
           bytes;
         });
  Transport.hsend_value ~label:"lock-grant" ~parts:(interval_parts payload.g_intervals)
    t.transport h ~dst:req.lr_requester ~bytes req.lr_mb payload

(* Grant from application context (at release time). *)
let grant_from_app t granter req =
  let bytes, payload = atomically (fun charge -> grant_payload t granter req ~charge) in
  if Engine.tracing t.engine then
    emit t ~pid:granter
      (Tmk_trace.Event.Lock_grant
         {
           lock = req.lr_lock;
           requester = req.lr_requester;
           intervals = List.length payload.g_intervals;
           bytes;
         });
  Transport.send_value ~label:"lock-grant" ~parts:(interval_parts payload.g_intervals)
    t.transport ~src:granter ~dst:req.lr_requester ~bytes req.lr_mb payload

(* A lock request reaching the node at the end of the forwarding chain. *)
let transfer_request t target req h =
  let st = lock_state_of t target req.lr_lock in
  Log.debug (fun m ->
      m "[t=%d] lock %d transfer-request at %d from %d (held=%b cached=%b)"
        (Engine.now t.engine) req.lr_lock target req.lr_requester st.held st.cached);
  if st.held || not st.cached then begin
    if Engine.htracing h then
      Engine.hemit h
        (Tmk_trace.Event.Lock_queued
           { lock = req.lr_lock; requester = req.lr_requester });
    Queue.add req st.pending
  end
  else begin
    st.cached <- false;
    grant_from_handler t target req h
  end

(* The statically assigned manager: record the requester, forward to the
   previous one (§3.3). *)
let manager_handle t mgr req h =
  let ms = mgr_state_of t mgr req.lr_lock in
  let target = ms.last_requester in
  assert (target <> req.lr_requester);
  ms.last_requester <- req.lr_requester;
  if Engine.htracing h then
    Engine.hemit h
      (Tmk_trace.Event.Lock_request_recv
         { lock = req.lr_lock; requester = req.lr_requester });
  if target = mgr then transfer_request t mgr req h
  else begin
    h_charge h Category.Tmk_other Cpu.lock_forward;
    if Engine.htracing h then
      Engine.hemit h
        (Tmk_trace.Event.Lock_forward
           { lock = req.lr_lock; requester = req.lr_requester; target });
    Transport.hsend ~label:"lock-forward" t.transport h ~dst:target
      ~bytes:(Wire.lock_request_bytes ~nprocs:t.cfg.Config.nprocs)
      ~deliver:(fun h2 -> transfer_request t target req h2)
  end

let acquire t ~pid ~lock =
  let node = t.nodes.(pid) in
  let st = lock_state_of t pid lock in
  node.Node.stats.Stats.lock_acquires <- node.Node.stats.Stats.lock_acquires + 1;
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Lock_acquire { lock; local = st.cached });
  if st.cached then begin
    (* Mark the lock held before charging: Engine.advance is a scheduling
       point, and a request handler running inside it must see the token
       as taken or it would grant it away (the real implementation masks
       SIGIO around the lock internals). *)
    st.held <- true;
    Log.debug (fun m -> m "[t=%d] lock %d local acquire by %d" (Engine.now t.engine) lock pid);
    app_charge Category.Tmk_other Cpu.lock_local;
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Lock_acquired { lock; local = true });
    race_lock_acquired t ~pid ~lock
  end
  else begin
    node.Node.stats.Stats.lock_remote <- node.Node.stats.Stats.lock_remote + 1;
    app_charge Category.Unix_comm Cpu.lock_request_build_kernel;
    app_charge Category.Tmk_other Cpu.lock_request_build_dsm;
    let mb = Transport.mailbox () in
    let req = { lr_lock = lock; lr_requester = pid; lr_vt = Vector_time.copy node.Node.vt; lr_mb = mb } in
    let mgr = lock_manager t lock in
    Transport.send ~label:"lock-request" t.transport ~src:pid ~dst:mgr
      ~bytes:(Wire.lock_request_bytes ~nprocs:t.cfg.Config.nprocs)
      ~deliver:(fun h -> manager_handle t mgr req h);
    let grant = Transport.await_value t.transport mb in
    Log.debug (fun m ->
        m "[t=%d] lock %d granted to %d (%d intervals)" (Engine.now t.engine) lock pid
          (List.length grant.g_intervals));
    (match t.cfg.Config.protocol with
    | Config.Lrc ->
      atomically (fun charge ->
          Node.close_interval ~eager_diffs:(not t.cfg.Config.lazy_diffs) node ~charge;
          (* The piggybacked intervals are exactly the granter's knowledge
             not covered by our request timestamp, so incorporation alone
             realises the pairwise-maximum rule of §2.2; the timestamp
             itself must only ever track incorporated records (see
             Node.incorporate). *)
          Node.incorporate node grant.g_intervals ~charge);
      assert (Vector_time.leq grant.g_granter_vt node.Node.vt)
    | Config.Erc | Config.Sc -> app_charge Category.Tmk_consistency Cpu.incorporate_base);
    st.held <- true;
    st.cached <- true;
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Lock_acquired { lock; local = false });
    race_lock_acquired t ~pid ~lock
  end

let release t ~pid ~lock =
  let st = lock_state_of t pid lock in
  Log.debug (fun m ->
      m "[t=%d] lock %d release by %d (pending=%d)" (Engine.now t.engine) lock pid
        (Queue.length st.pending));
  if not st.held then
    invalid_arg (Printf.sprintf "Protocol.release: processor %d does not hold lock %d" pid lock);
  race_lock_release t ~pid ~lock;
  if t.cfg.Config.protocol = Config.Erc then erc_flush t pid;
  st.held <- false;
  match Queue.take_opt st.pending with
  | None ->
    (* token stays cached here *)
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Lock_release { lock; granted_to = None })
  | Some req ->
    Log.debug (fun m ->
        m "[t=%d] lock %d release-grant by %d to %d" (Engine.now t.engine) lock pid
          req.lr_requester);
    if Engine.tracing t.engine then
      emit t ~pid
        (Tmk_trace.Event.Lock_release { lock; granted_to = Some req.lr_requester });
    st.cached <- false;
    grant_from_app t pid req;
    (* Any stragglers chase the token to its new holder. *)
    Queue.iter
      (fun r ->
        Transport.send ~label:"lock-forward" t.transport ~src:pid ~dst:req.lr_requester
          ~bytes:(Wire.lock_request_bytes ~nprocs:t.cfg.Config.nprocs)
          ~deliver:(fun h -> transfer_request t req.lr_requester r h))
      st.pending;
    Queue.clear st.pending

(* ------------------------------------------------------------------ *)
(* Garbage collection (§3.6)                                           *)

let fresh_gc_state () =
  { gs_clients = []; gs_manager_here = false; gs_all_in = Engine.Ivar.create () }

let gc_maybe_complete t =
  let gs = t.gc in
  if
    gs.gs_manager_here
    && List.length gs.gs_clients = t.cfg.Config.nprocs - 1
    && not (Engine.Ivar.is_filled gs.gs_all_in)
  then Engine.fill t.engine gs.gs_all_in ~at:(Engine.now t.engine) ()

let gc_phase t pid =
  let node = t.nodes.(pid) in
  let npages = t.cfg.Config.pages in
  Log.debug (fun m ->
      m "[t=%d] gc at %d (%d live records)" (Engine.now t.engine) pid node.Node.live_records);
  node.Node.stats.Stats.gc_runs <- node.Node.stats.Stats.gc_runs + 1;
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Gc_begin { live = node.Node.live_records });
  (* 1. Validate every page this node modified: flush twins to diffs,
     fetch and apply whatever is missing. *)
  let validate page =
    atomically (fun charge -> Node.ensure_own_diff node page ~charge);
    let rec settle () =
      match Node.missing_diffs node page with
      | [] ->
        atomically (fun charge ->
            (match Node.unapplied_diffs node page with
            | [] -> ()
            | pending -> Node.apply_missing_diffs node page pending ~charge);
            if Vm.prot node.Node.vm page = Vm.No_access then begin
              charge Category.Unix_mem Costs.mprotect;
              Vm.set_prot node.Node.vm page Vm.Read_only
            end)
      | missing ->
        fetch_and_apply_diffs t pid page missing;
        settle ()
    in
    settle ()
  in
  List.iter validate (Node.modified_pages node);
  (* 2. Exchange keep-bitmaps so everyone learns the new copysets. *)
  let keep = Bitset.create npages in
  for page = 0 to npages - 1 do
    if Vm.prot node.Node.vm page <> Vm.No_access then Bitset.add keep page
  done;
  let keepers =
    if pid = barrier_manager then begin
      t.gc.gs_manager_here <- true;
      gc_maybe_complete t;
      Engine.await t.gc.gs_all_in;
      let clients = t.gc.gs_clients in
      t.gc <- fresh_gc_state ();
      (* Aggregate: keepers per page, one bitset of processors per page. *)
      let keepers = Array.init npages (fun _ -> Bitset.create t.cfg.Config.nprocs) in
      let note_keeps who bitmap =
        Bitset.iter (fun page -> Bitset.add keepers.(page) who) bitmap
      in
      note_keeps pid keep;
      List.iter (fun c -> note_keeps c.gc_pid c.gc_keep) clients;
      let reply_bytes =
        t.cfg.Config.nprocs * Wire.gc_keep_bitmap_bytes ~npages
      in
      List.iter
        (fun c ->
          Transport.send_value ~label:"gc-copysets" t.transport ~src:pid ~dst:c.gc_pid
            ~bytes:reply_bytes c.gc_mb keepers)
        clients;
      keepers
    end
    else begin
      let mb = Transport.mailbox () in
      Transport.send ~label:"gc-bitmap" t.transport ~src:pid ~dst:barrier_manager
        ~bytes:(Wire.gc_keep_bitmap_bytes ~npages)
        ~deliver:(fun _h ->
          t.gc.gs_clients <- { gc_pid = pid; gc_keep = keep; gc_mb = mb } :: t.gc.gs_clients;
          gc_maybe_complete t);
      Transport.await_value t.transport mb
    end
  in
  (* 3. Adopt the new copysets and discard every consistency record. *)
  Array.iteri
    (fun page entry ->
      entry.Node.pg_copyset <- Bitset.copy keepers.(page);
      if not (Bitset.mem keepers.(page) pid) then entry.Node.pg_has_copy <- false)
    node.Node.pages;
  let discarded = Node.discard_all_records node ~charge:app_charge in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Gc_end { discarded })

(* ------------------------------------------------------------------ *)
(* Barriers (§3.4)                                                     *)

let barrier_maybe_complete t bs ~at =
  if
    bs.bs_manager_here
    && List.length bs.bs_clients = t.cfg.Config.nprocs - 1
    && not (Engine.Ivar.is_filled bs.bs_all_in)
  then Engine.fill t.engine bs.bs_all_in ~at ()

let barrier t ~pid ~id =
  let node = t.nodes.(pid) in
  let lrc = t.cfg.Config.protocol = Config.Lrc in
  Log.debug (fun m -> m "[t=%d] barrier %d arrival by %d" (Engine.now t.engine) id pid);
  node.Node.stats.Stats.barriers <- node.Node.stats.Stats.barriers + 1;
  (* epoch = this processor's global barrier sequence number *)
  let epoch = node.Node.stats.Stats.barriers - 1 in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Barrier_arrive { id; epoch });
  race_barrier_arrive t ~pid ~id;
  if t.cfg.Config.protocol = Config.Erc then erc_flush t pid;
  app_charge Category.Unix_comm Cpu.barrier_arrival_build_kernel;
  app_charge Category.Tmk_other Cpu.barrier_arrival_build_dsm;
  if lrc then atomically (fun charge ->
      Node.close_interval ~eager_diffs:(not t.cfg.Config.lazy_diffs) node ~charge);
  let want_gc = lrc && node.Node.live_records > t.cfg.Config.gc_threshold in
  if t.cfg.Config.nprocs = 1 then begin
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id
  end
  else if pid = barrier_manager then begin
    let bs = barrier_state_of t id in
    bs.bs_manager_here <- true;
    bs.bs_gc <- bs.bs_gc || want_gc;
    barrier_maybe_complete t bs ~at:(Engine.now t.engine);
    Engine.await bs.bs_all_in;
    let clients = bs.bs_clients in
    let run_gc = bs.bs_gc in
    (* Reset before releasing so the next use of this id starts clean. *)
    bs.bs_clients <- [];
    bs.bs_manager_here <- false;
    bs.bs_all_in <- Engine.Ivar.create ();
    bs.bs_gc <- false;
    let release_one bc =
      (* interval selection (and any hybrid-protocol diff creation) is
         atomic with respect to this node's handlers; a grant handler
         interleaving between releases merely enlarges later clients'
         deltas, which is safe *)
      (* The timestamp must be snapshotted in the same atomic section as
         the interval list: the per-client charge below is a scheduling
         point, and a handler interleaving there (e.g. a fast client's
         arrival at the NEXT barrier) advances the manager's timestamp
         past what this release carries.  A release whose br_vt claims
         intervals it does not contain breaks the acquirer's coverage
         invariant at the receiving client. *)
      let intervals, release_vt =
        if lrc then
          atomically (fun charge ->
              let attach = attach_for t node ~receiver:bc.bc_pid ~charge in
              ( Node.intervals_since ?attach node bc.bc_vt,
                Vector_time.copy node.Node.vt ))
        else ([], Vector_time.copy node.Node.vt)
      in
      app_charge Category.Tmk_other Cpu.barrier_release_per_client;
      let bytes =
        Wire.barrier_release_bytes ~nprocs:t.cfg.Config.nprocs (Node.notice_counts intervals)
        + Node.update_bytes intervals
      in
      Transport.send_value ~label:"barrier-release" ~parts:(interval_parts intervals)
        t.transport ~src:pid ~dst:bc.bc_pid ~bytes bc.bc_mb
        { br_intervals = intervals; br_vt = release_vt; br_gc = run_gc }
    in
    (* Release in client order for determinism. *)
    List.iter release_one (List.sort (fun a b -> compare a.bc_pid b.bc_pid) clients);
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id;
    if run_gc then gc_phase t pid
  end
  else begin
    let mb = Transport.mailbox () in
    (* Send the manager our intervals it does not know about: everything
       newer than the last manager timestamp we have seen (§3.4). *)
    let mgr_known_vt =
      if lrc then
        match node.Node.intervals.(barrier_manager) with
        | iv :: _ -> iv.Node.iv_vt
        | [] -> Vector_time.create t.cfg.Config.nprocs
      else Vector_time.create t.cfg.Config.nprocs
    in
    let own =
      if lrc then
        atomically (fun charge ->
            let attach = attach_for t node ~receiver:barrier_manager ~charge in
            Node.own_intervals_since ?attach node mgr_known_vt)
      else []
    in
    let arrival_vt = Vector_time.copy node.Node.vt in
    let bytes =
      Wire.barrier_arrival_bytes ~nprocs:t.cfg.Config.nprocs (Node.notice_counts own)
      + Node.update_bytes own
    in
    Transport.send ~label:"barrier-arrival" ~parts:(interval_parts own) t.transport
      ~src:pid ~dst:barrier_manager ~bytes
      ~deliver:(fun h ->
        let bs = barrier_state_of t id in
        if lrc then Node.incorporate t.nodes.(barrier_manager) own ~charge:(h_charge h)
        else h_charge h Category.Tmk_consistency Cpu.incorporate_base;
        bs.bs_clients <- { bc_pid = pid; bc_vt = arrival_vt; bc_mb = mb } :: bs.bs_clients;
        bs.bs_gc <- bs.bs_gc || want_gc;
        barrier_maybe_complete t bs ~at:(Engine.hnow h));
    let rel = Transport.await_value t.transport mb in
    if lrc then begin
      atomically (fun charge -> Node.incorporate node rel.br_intervals ~charge);
      assert (Vector_time.leq rel.br_vt node.Node.vt)
    end
    else app_charge Category.Tmk_consistency Cpu.incorporate_base;
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id;
    if rel.br_gc then gc_phase t pid
  end

let charge_compute _t ~pid:_ ns = app_charge Category.Computation (Vtime.ns ns)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create cfg =
  Config.validate cfg;
  let engine = Engine.create ~nprocs:cfg.Config.nprocs in
  (match cfg.Config.trace with
  | Some sink -> Engine.set_sink engine sink
  | None -> ());
  let prng = Tmk_util.Prng.split_named (Tmk_util.Prng.create cfg.Config.seed) "net" in
  let transport =
    Transport.create ~plan:cfg.Config.faults ~batching:cfg.Config.batching ~engine
      ~params:cfg.Config.net ~prng ()
  in
  let nodes =
    Array.init cfg.Config.nprocs (fun pid ->
        let emit =
          match cfg.Config.trace with
          | None -> None
          | Some _ -> Some (fun ev -> Engine.emit engine ~pid ev)
        in
        Node.create ?emit ~pid ~nprocs:cfg.Config.nprocs ~pages:cfg.Config.pages ())
  in
  let erc_dir =
    Array.init cfg.Config.pages (fun _ ->
        let b = Bitset.create cfg.Config.nprocs in
        Bitset.add b 0;
        b)
  in
  let t =
    {
      cfg;
      engine;
      transport;
      nodes;
      lock_states = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 16);
      lock_mgrs = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 16);
      barrier_states = Hashtbl.create 4;
      gc = fresh_gc_state ();
      erc_dir;
      erc_pending = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 4);
      erc_inflight = Array.make cfg.Config.pages 0;
      sc = None;
    }
  in
  (if cfg.Config.protocol = Config.Sc then
     t.sc <- Some (Sc.create ~engine ~transport ~nodes ~pages:cfg.Config.pages));
  Array.iteri
    (fun pid node ->
      Vm.set_fault_handler node.Node.vm (fun kind page -> handle_fault t pid kind page))
    nodes;
  (match race_of t with
  | Some race ->
    Array.iteri
      (fun pid node ->
        Vm.set_access_hook node.Node.vm (fun kind addr width ->
            let kind =
              match kind with Vm.Read -> Tmk_check.Race.Read | Vm.Write -> Tmk_check.Race.Write
            in
            Tmk_check.Race.note_access race ~pid kind ~addr ~width))
      nodes
  | None -> ());
  t
