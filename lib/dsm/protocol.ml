open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Rle = Tmk_util.Rle
module Bitset = Tmk_util.Bitset

(* ------------------------------------------------------------------ *)
(* Message payloads (sizes are computed via [Wire]; the values travel
   as closures/records inside the simulator).                          *)

type grant = { g_intervals : Node.msg_interval list; g_granter_vt : Vector_time.t }

type lock_request = {
  lr_lock : int;
  lr_requester : int;
  lr_vt : Vector_time.t;
  lr_mb : grant Transport.mailbox;
  lr_epoch : int;
      (* membership epoch at creation; requests stamped with an older
         epoch are stale routing from before a crash and are dropped
         (recovery re-injects a fresh record for every live waiter) *)
}

type barrier_release = {
  br_intervals : Node.msg_interval list;
  br_vt : Vector_time.t;
  br_gc : bool;
}

(* ------------------------------------------------------------------ *)
(* Lock and barrier state                                              *)

type lock_state = { mutable held : bool; mutable cached : bool; pending : lock_request Queue.t }

type mgr_state = { mutable last_requester : int }

type barrier_client = {
  bc_pid : int;
  bc_vt : Vector_time.t;
  bc_mb : barrier_release Transport.mailbox;
}

type barrier_state = {
  mutable bs_clients : barrier_client list;
  mutable bs_manager_here : bool;
  mutable bs_all_in : unit Engine.Ivar.t;
  mutable bs_gc : bool;
}

type gc_client = { gc_pid : int; gc_keep : Bitset.t; gc_mb : Bitset.t array Transport.mailbox }

type gc_state = {
  mutable gs_clients : gc_client list;
  mutable gs_manager_here : bool;
  mutable gs_all_in : unit Engine.Ivar.t;
}

(* ------------------------------------------------------------------ *)
(* Failure model (crash-stop).

   A crashed processor is silenced by the engine; everyone else learns of
   the death through the transport's suspicion mechanism (retry-budget
   exhaustion), either organically — a retransmitted request the dead
   peer never acknowledges — or through the heartbeat probes processor 0
   sends while a crash plan is armed.  Detection triggers a membership
   epoch bump and deterministic metadata failover (see [note_death]). *)

(* One remote operation whose reply may never come because the serving
   peer can crash: recovery re-issues it against a live peer.  The
   original reply mailbox is reused; value messages never double-fill, so
   a late duplicate from the first attempt is harmless. *)
type pending_op = {
  po_pid : int;  (* the waiting processor *)
  po_seq : int;  (* registration order, for deterministic replay *)
  po_target : int;  (* the peer whose reply is awaited *)
  po_settled : unit -> bool;  (* reply already arrived *)
  po_retry : unit -> unit;  (* re-issue; runs in timer context *)
}

type recovery = {
  rc_pid : int;  (* the dead processor *)
  rc_epoch : int;  (* membership epoch after the death *)
  rc_crash_at : Vtime.t;
  rc_detected_at : Vtime.t;
  rc_locks_rehomed : int;  (* locks whose state recovery rebuilt *)
  rc_retries : int;  (* in-flight operations re-issued *)
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  transport : Transport.t;
  nodes : Node.t array;
  lock_states : (int, lock_state) Hashtbl.t array;  (* per node *)
  lock_mgrs : (int, mgr_state) Hashtbl.t array;  (* per node, manager role *)
  barrier_states : (int, barrier_state) Hashtbl.t;  (* at the central manager *)
  mutable gc : gc_state;
  erc_dir : Bitset.t array;  (* ERC copyset directory (one entry per page) *)
  erc_pending : (int, Rle.t list) Hashtbl.t array;  (* ERC updates for absent pages *)
  erc_inflight : int array;  (* ERC update messages not yet delivered, per page *)
  mutable sc : Sc.t option;  (* single-writer protocol state, when Config.Sc *)
  (* --- failure handling --- *)
  crashes_planned : bool;  (* gates all registry bookkeeping below *)
  dead : bool array;  (* deaths detected so far (protocol view) *)
  mutable epoch : int;  (* membership epoch, bumped per detected death *)
  waiting_acquires : (int, lock_request) Hashtbl.t array;
      (* per pid: lock -> the outstanding remote acquire, if any *)
  grant_target : (int, lock_request) Hashtbl.t;
      (* lock -> request a grant is in flight to (token owner in transit) *)
  mutable pending_ops : pending_op list;  (* newest first *)
  mutable next_op : int;
  mutable recoveries : recovery list;  (* newest first *)
  mutable fatal : (int * string) option;
      (* set when the run cannot make progress without the dead
         processor's state; surfaced as [Api.Degraded] *)
}

let config t = t.cfg
let engine t = t.engine
let transport t = t.transport
let node t pid = t.nodes.(pid)

let barrier_manager = 0
let lock_manager t lock = lock mod t.cfg.Config.nprocs

(* --- liveness helpers --- *)

let live t pid = not t.dead.(pid)
let epoch t = t.epoch
let fatality t = t.fatal
let recoveries t = List.rev t.recoveries

let live_count t =
  let n = ref 0 in
  Array.iter (fun d -> if not d then incr n) t.dead;
  !n

(* Lock managership migrates deterministically to the next live
   processor in cyclic pid order from the static home.  With no deaths
   this is exactly [lock_manager]. *)
let effective_lock_manager t lock =
  let n = t.cfg.Config.nprocs in
  let m = lock_manager t lock in
  let rec seek i = if not t.dead.((m + i) mod n) then (m + i) mod n else seek (i + 1) in
  seek 0

(* The deterministic backup peer for [proc]'s diff mirrors: the next live
   processor in cyclic pid order.  [None] when nobody else is alive. *)
let backup_peer t proc =
  let n = t.cfg.Config.nprocs in
  let rec seek i =
    if i >= n then None
    else
      let p = (proc + i) mod n in
      if p <> proc && not t.dead.(p) then Some p else seek (i + 1)
  in
  seek 1

let lowest_live_other t pid =
  let n = t.cfg.Config.nprocs in
  let rec seek p =
    if p >= n then None else if p <> pid && not t.dead.(p) then Some p else seek (p + 1)
  in
  seek 0

(* A run degrades when surviving processors would need consistency state
   that only the dead processor held.  Safe from any context: records the
   fatality and asks the engine to stop at the next event boundary. *)
let note_fatal t ~pid reason =
  if t.fatal = None then begin
    t.fatal <- Some (pid, reason);
    Engine.request_stop t.engine ("degraded: " ^ reason)
  end

(* Application-context variant: parks the calling process forever (the
   engine stops before the park can deadlock anything). *)
let degrade_app t ~pid reason =
  note_fatal t ~pid reason;
  Engine.await (Engine.Ivar.create ())

(* Protocol event tracing: enable with Logs at Debug level on the
   "tmk.protocol" source (tmk_run --verbose), e.g. to watch lock tokens
   move or flushes drain. *)
let log_src = Logs.Src.create "tmk.protocol" ~doc:"TreadMarks protocol events"

module Log = (val Logs.src_log log_src : Logs.LOG)

let app_charge cat dt = Engine.advance cat dt
let h_charge h cat dt = Engine.hcharge h cat dt

(* Typed-trace emission.  Always guard with [Engine.tracing] (or
   [Engine.htracing] in handler context) at the call site so the event
   value is never even allocated when tracing is off. *)
let emit t ~pid ev = Engine.emit t.engine ~pid ev

(* The race detector, when one rides along in [Config.check].  Sync
   edges are reported from application context at the four points the
   happens-before relation needs: release before the grant can leave,
   acquired after the grant is absorbed, barrier arrival before the
   arrival message goes out, departure after the release is absorbed. *)
let race_of t =
  match t.cfg.Config.check with
  | Some c -> Tmk_check.Checker.race c
  | None -> None

let race_lock_acquired t ~pid ~lock =
  match race_of t with
  | Some r -> Tmk_check.Race.lock_acquired r ~pid ~lock
  | None -> ()

let race_lock_release t ~pid ~lock =
  match race_of t with
  | Some r -> Tmk_check.Race.lock_release r ~pid ~lock
  | None -> ()

let race_barrier_arrive t ~pid ~id =
  match race_of t with
  | Some r -> Tmk_check.Race.barrier_arrive r ~pid ~id
  | None -> ()

let race_barrier_depart t ~pid ~id =
  match race_of t with
  | Some r -> Tmk_check.Race.barrier_depart r ~pid ~id
  | None -> ()

(* Application-context protocol bookkeeping must not interleave with this
   processor's request handlers: [Engine.advance] is a scheduling point,
   so charging time in the middle of a mutation sequence would let a
   handler observe (and mutate) half-updated consistency structures.  The
   real implementation masks signals around these sections; we run the
   mutations instantaneously and charge the accumulated CPU afterwards. *)
let atomically f =
  let charges = Tmk_util.Vec.create () in
  let charge cat dt = Tmk_util.Vec.push charges (cat, dt) in
  let result = f charge in
  Tmk_util.Vec.iter (fun (cat, dt) -> Engine.advance cat dt) charges;
  result

let lock_state_of t pid lock =
  match Hashtbl.find_opt t.lock_states.(pid) lock with
  | Some st -> st
  | None ->
    (* The manager starts out holding the token of each lock it manages.
       Using the effective (post-crash) manager keeps first-touch
       initialisation globally consistent after a failover: recovery
       explicitly rebuilds every lock that was ever touched, so this lazy
       rule only ever runs for locks with no token anywhere. *)
    let st =
      { held = false; cached = effective_lock_manager t lock = pid; pending = Queue.create () }
    in
    Hashtbl.add t.lock_states.(pid) lock st;
    st

let mgr_state_of t pid lock =
  match Hashtbl.find_opt t.lock_mgrs.(pid) lock with
  | Some st -> st
  | None ->
    let st = { last_requester = pid } in
    Hashtbl.add t.lock_mgrs.(pid) lock st;
    st

let barrier_state_of t id =
  match Hashtbl.find_opt t.barrier_states id with
  | Some bs -> bs
  | None ->
    let bs =
      { bs_clients = []; bs_manager_here = false; bs_all_in = Engine.Ivar.create (); bs_gc = false }
    in
    Hashtbl.add t.barrier_states id bs;
    bs

(* ------------------------------------------------------------------ *)
(* Access misses (§3.5)                                                *)

exception Empty_copyset of { pid : int; page : int }

let () =
  Printexc.register_printer (function
    | Empty_copyset { pid; page } ->
      Some
        (Printf.sprintf "Tmk_dsm.Protocol.Empty_copyset(pid %d, page %d): no live copy" pid
           page)
    | _ -> None)

(* Pick a live processor believed to cache the page (never ourselves).
   The choice hashes (page, faulting pid) over the members so concurrent
   cold misses spread across the copyset instead of all landing on the
   lowest member (processor 0 holds every page initially, which made it a
   hot spot).  @raise Empty_copyset when no live candidate remains. *)
let choose_provider t copyset ~self ~page =
  let members =
    Bitset.fold (fun q acc -> if q <> self && not t.dead.(q) then q :: acc else acc) copyset []
  in
  match List.rev members with
  | [] -> raise (Empty_copyset { pid = self; page })
  | members ->
    let h = (((page + 1) * 2654435761) + (self * 40503)) land max_int in
    List.nth members (h mod List.length members)

(* ERC variant: always the lowest live member.  The update protocol's
   directory admits members whose base copy is still in flight (the
   faulter joins at serve time, before its reply lands), so an arbitrary
   member is not yet guaranteed to hold current bytes; the lowest member
   is the longest-standing one — in practice the page's origin. *)
let choose_provider_lowest t copyset ~self ~page =
  let provider =
    Bitset.fold
      (fun q acc -> if q <> self && (not t.dead.(q)) && acc < 0 then q else acc)
      copyset (-1)
  in
  if provider < 0 then raise (Empty_copyset { pid = self; page }) else provider

(* Register a re-issuable remote operation (only while a crash plan is
   armed; the registry would otherwise grow for nothing). *)
let register_pending t ~pid ~target ~settled ~retry =
  if t.crashes_planned then begin
    let seq = t.next_op in
    t.next_op <- seq + 1;
    t.pending_ops <-
      { po_pid = pid; po_seq = seq; po_target = target; po_settled = settled; po_retry = retry }
      :: t.pending_ops
  end

let fetch_base_lrc t pid page =
  let node = t.nodes.(pid) in
  let entry = node.Node.pages.(page) in
  let mb = Transport.mailbox () in
  let serve provider h =
    let pnode = t.nodes.(provider) in
    h_charge h Category.Tmk_mem Costs.page_copy;
    let pentry = pnode.Node.pages.(page) in
    Bitset.add pentry.Node.pg_copyset pid;
    (* Serve the twin when the page is dirty: diffs record only the
       bytes that changed relative to their interval's base state, so
       a base copy containing the provider's uncommitted (not yet
       diffed) writes would be byte-inconsistent with the very diffs
       the requester is about to apply over it. *)
    let snapshot =
      match pentry.Node.pg_twin with
      | Some twin -> Bytes.copy twin
      | None -> Vm.page_snapshot pnode.Node.vm page
    in
    Transport.hsend_value ~label:"page-fetch-reply" t.transport h ~dst:pid
      ~bytes:Wire.page_reply_bytes mb (snapshot, Bitset.copy pentry.Node.pg_copyset)
  in
  (* Re-issue against another live copyset member if the provider dies
     before replying.  The retry runs in timer context, so the request
     goes out as a context-free notification. *)
  let rec arm_retry provider =
    register_pending t ~pid ~target:provider
      ~settled:(fun () -> Transport.mailbox_filled mb)
      ~retry:(fun () ->
        match choose_provider t entry.Node.pg_copyset ~self:pid ~page with
        | provider' ->
          arm_retry provider';
          Transport.notify ~label:"page-fetch" t.transport ~src:pid ~dst:provider'
            ~bytes:Wire.page_request_bytes ~deliver:(serve provider')
        | exception Empty_copyset _ ->
          note_fatal t ~pid
            (Printf.sprintf "page %d has no live copy (its only copies died with the crash)"
               page))
  in
  match choose_provider t entry.Node.pg_copyset ~self:pid ~page with
  | exception Empty_copyset _ ->
    degrade_app t ~pid
      (Printf.sprintf "page %d has no live copy (its only copies died with the crash)" page)
  | provider ->
    app_charge Category.Tmk_other Cpu.page_request_build;
    Transport.send ~label:"page-fetch" t.transport ~src:pid ~dst:provider
      ~bytes:Wire.page_request_bytes ~deliver:(serve provider);
    arm_retry provider;
    let bytes, copyset = Transport.await_value t.transport mb in
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Page_fetch { page; from_ = provider });
    atomically (fun charge ->
        Node.validate_page node page bytes ~charge;
        Bitset.union_into ~src:copyset ~dst:entry.Node.pg_copyset;
        Bitset.add entry.Node.pg_copyset pid)

(* Serve one gathered diff-request entry on responder [r].  In batched
   mode repeated fetches of the same (proc, interval, page) diff hit the
   responder's cache instead of recomputing/relocating the RLE (diffs are
   immutable and interval ids never reused, so a hit is always current). *)

(* A speculative (other-page) diff rides a gathered reply only if it is
   small: gathering targets the many-small-messages regime the paper
   highlights (§4.7), where a round trip costs far more than the payload;
   a large diff would instead dominate the reply the fault is stalled on,
   losing more latency than the saved round trip.  The faulting page's
   own diffs are always served in full.  Entries the responder declines
   simply stay missing at the requester (which blacklists the page from
   future gathering) and are fetched on their own later miss — cheaply,
   since serving them here already warmed the responder's diff cache. *)
let gather_entry_max = 512
let serve_diff_entry t r h (page, proc, interval_id) =
  let rnode = t.nodes.(r) in
  let batched = t.cfg.Config.batching in
  let cached = if batched then Node.cached_diff rnode ~proc ~interval_id ~page else None in
  match cached with
  | Some diff ->
    h_charge h Category.Tmk_other Cpu.diff_cache_hit;
    rnode.Node.stats.Stats.diff_cache_hits <- rnode.Node.stats.Stats.diff_cache_hits + 1;
    if Engine.htracing h then
      Engine.hemit h (Tmk_trace.Event.Diff_cache { page; hit = true });
    (page, proc, interval_id, diff)
  | None ->
    h_charge h Category.Tmk_other Cpu.diff_lookup_per_entry;
    let diff = Node.find_diff rnode ~proc ~interval_id ~page ~charge:(h_charge h) in
    if batched then begin
      Node.cache_diff rnode ~proc ~interval_id ~page diff;
      rnode.Node.stats.Stats.diff_cache_misses <-
        rnode.Node.stats.Stats.diff_cache_misses + 1;
      if Engine.htracing h then
        Engine.hemit h (Tmk_trace.Event.Diff_cache { page; hit = false })
    end;
    (page, proc, interval_id, diff)

(* Locate a diff whose creator (or original responder) has crashed: a
   live processor's own notice records (§3.5: a processor that modified
   the page in a covering interval holds the diff), then the diff-backup
   mirror stores ([Config.diff_backup]).  [None] means the diff died with
   the crash. *)
let lookup_diff_anywhere t ~proc ~interval_id ~page =
  let n = t.cfg.Config.nprocs in
  let rec scan p =
    if p >= n then None
    else if t.dead.(p) then scan (p + 1)
    else
      let pn = t.nodes.(p) in
      let found =
        List.find_opt
          (fun wn -> wn.Node.wn_interval.Node.iv_id = interval_id && wn.Node.wn_diff <> None)
          pn.Node.pages.(page).Node.pg_notices.(proc)
      in
      match found with
      | Some wn -> wn.Node.wn_diff
      | None -> (
        match Node.backup_diff pn ~proc ~interval_id ~page with
        | Some d -> Some d
        | None -> scan (p + 1))
  in
  scan 0

(* Re-issue a gathered diff fetch whose responder died before replying.
   The surviving replacement responder re-serves every entry: its own
   diffs through the normal path, a dead creator's through
   [lookup_diff_anywhere].  Charging all lookups at one coordinator is a
   deliberate simplification — the real recovery would fan out, but the
   total work is the same and the simulator keeps one reply message. *)
let retry_diff_fetch t ~pid ~entries ~mb =
  match lowest_live_other t pid with
  | None -> note_fatal t ~pid "no live peer left to serve diffs"
  | Some c ->
    let n = List.length entries in
    Transport.notify ~label:"diff-fetch" ~parts:n t.transport ~src:pid ~dst:c
      ~bytes:(Wire.gathered_diff_request_bytes n)
      ~deliver:(fun h ->
        let missing = ref None in
        let replies =
          List.filter_map
            (fun (page, proc, interval_id) ->
              h_charge h Category.Tmk_other Cpu.diff_lookup_per_entry;
              let diff =
                if not t.dead.(proc) then
                  match
                    Node.find_diff t.nodes.(proc) ~proc ~interval_id ~page
                      ~charge:(h_charge h)
                  with
                  | d -> Some d
                  | exception (Not_found | Invalid_argument _) ->
                    lookup_diff_anywhere t ~proc ~interval_id ~page
                else lookup_diff_anywhere t ~proc ~interval_id ~page
              in
              match diff with
              | Some d -> Some (page, proc, interval_id, d)
              | None ->
                if !missing = None then missing := Some (page, proc, interval_id);
                None)
            entries
        in
        match !missing with
        | Some (page, proc, interval_id) ->
          note_fatal t ~pid
            (Printf.sprintf "diff (proc %d, interval %d, page %d) died with the crash" proc
               interval_id page)
        | None ->
          let sizes = List.map (fun (_, _, _, d) -> Rle.encoded_size d) replies in
          Transport.hsend_value ~label:"diff-fetch-reply" ~parts:(List.length replies)
            t.transport h ~dst:pid
            ~bytes:(Wire.gathered_diff_reply_bytes sizes)
            mb replies)

(* §3.5 responder assignment for one page: the newest lacking notice per
   processor is a head; undominated heads are the minimal responder set,
   and each processor's lacking notices go to a responder whose newest
   interval covers them (a processor that modified the page in interval i
   holds all of the page's diffs for intervals with smaller timestamps). *)
let plan_page_fetch missing =
  let heads =
    List.map
      (fun (q, wns) ->
        match wns with
        | wn :: _ -> (q, wn.Node.wn_interval.Node.iv_vt)
        | [] -> assert false)
      missing
  in
  let dominated (q, vt) =
    List.exists (fun (r, vt') -> r <> q && Vector_time.leq vt vt') heads
  in
  (heads, List.filter (fun h -> not (dominated h)) heads)

(* Fetch the diffs for [missing] (per-processor groups of notices lacking
   diffs) from the minimal processor set, in parallel, then apply them in
   vector-timestamp order.  In batched mode the requests additionally
   gather other invalidated pages' lacking diffs whenever an
   already-contacted responder provably holds them, so a page-miss burst
   at scale costs one request/response pair per responder instead of one
   per (responder, page). *)
let fetch_and_apply_diffs t pid page missing =
  let node = t.nodes.(pid) in
  let total_notices = List.fold_left (fun acc (_, wns) -> acc + List.length wns) 0 missing in
  app_charge Category.Tmk_consistency (Vtime.scale Cpu.miss_plan total_notices);
  let _, responders = plan_page_fetch missing in
  let assignments = Hashtbl.create 4 in
  (* per-responder entry buffers, appended in plan order (a reverse-and-flip
     list accumulation here was quadratic in the number of lacking
     processors before it grew a rev_append; the buffer keeps it linear and
     allocation-light) *)
  let entries_for r =
    match Hashtbl.find_opt assignments r with
    | Some v -> v
    | None ->
      let v = Tmk_util.Vec.create () in
      Hashtbl.add assignments r v;
      v
  in
  let assign (q, wns) =
    let vt_q = (List.hd wns).Node.wn_interval.Node.iv_vt in
    let r =
      match List.find_opt (fun (_r, vt_r) -> Vector_time.leq vt_q vt_r) responders with
      | Some (r, _) -> r
      | None -> assert false (* q's own head is undominated or covered *)
    in
    let v = entries_for r in
    List.iter (fun wn -> Tmk_util.Vec.push v (page, q, wn.Node.wn_interval.Node.iv_id)) wns
  in
  List.iter assign missing;
  (* Multi-page gathering (batched mode): ride the requests already going
     out.  Another page's lacking group can be attached to a contacted
     responder [r] when [r] is the group's own creator, or when [r] itself
     modified that page in an interval covering the group's head — either
     way §3.5 guarantees [r] holds the diffs.  Only pages this processor
     has faulted on since their last gather are eligible ([pg_fetched],
     armed by a genuine access miss, disarmed by each gather) — the
     hybrid update protocol's "receiver actively uses the page"
     heuristic, with a one-strike bound: a page the processor has stopped
     touching wastes at most one speculative fetch before gathering stops
     until its next real miss.  Pages whose entries a responder has
     previously declined ([pg_no_gather]: diffs too large to ride a
     reply) are never retried.  Unattached groups are simply fetched on
     their own later miss. *)
  let gathered = ref 0 in
  if t.cfg.Config.batching then begin
    let contacted = Hashtbl.fold (fun r _ acc -> r :: acc) assignments [] in
    Array.iteri
      (fun q_page pentry ->
        if
          q_page <> page && pentry.Node.pg_fetched
          && (not pentry.Node.pg_no_gather)
          && pentry.Node.pg_has_copy
        then
          match Node.missing_diffs node q_page with
          | [] -> ()
          | groups ->
            let heads =
              List.map
                (fun (g, wns) -> (g, (List.hd wns).Node.wn_interval.Node.iv_vt))
                groups
            in
            List.iter
              (fun (g, wns) ->
                if g <> pid then begin
                  let vt_g = (List.hd wns).Node.wn_interval.Node.iv_vt in
                  let holds r =
                    r = g
                    || List.exists
                         (fun (p, vt_p) -> p = r && Vector_time.leq vt_g vt_p)
                         heads
                  in
                  match List.find_opt holds contacted with
                  | None -> ()
                  | Some r ->
                    let v = entries_for r in
                    List.iter
                      (fun wn ->
                        Tmk_util.Vec.push v (q_page, g, wn.Node.wn_interval.Node.iv_id))
                      wns;
                    gathered := !gathered + List.length wns;
                    pentry.Node.pg_fetched <- false
                end)
              groups)
      node.Node.pages;
    if !gathered > 0 then begin
      node.Node.stats.Stats.diff_prefetch_entries <-
        node.Node.stats.Stats.diff_prefetch_entries + !gathered;
      app_charge Category.Tmk_consistency (Vtime.scale Cpu.miss_plan !gathered)
    end
  end;
  let promises =
    Hashtbl.fold
      (fun r entry_buf acc ->
        let entries = Tmk_util.Vec.to_list entry_buf in
        let n = Tmk_util.Vec.length entry_buf in
        app_charge Category.Tmk_other Cpu.page_request_build;
        if t.dead.(r) then begin
          (* The planned responder died before this fetch was issued —
             its write notices still dominate, so the assignment keeps
             naming it.  Route the entries through a live coordinator
             (surviving notice records, then the diff-backup mirrors)
             instead of timing out against a silent peer: suspicion for
             an already-dead processor is ignored, so nothing else
             would ever complete this fetch. *)
          let mb = Transport.mailbox () in
          (match lowest_live_other t pid with
          | Some c ->
            register_pending t ~pid ~target:c
              ~settled:(fun () -> Transport.mailbox_filled mb)
              ~retry:(fun () -> retry_diff_fetch t ~pid ~entries ~mb)
          | None -> ());
          retry_diff_fetch t ~pid ~entries ~mb;
          (entries, mb) :: acc
        end
        else begin
        if Engine.tracing t.engine then begin
          (* one Diff_fetch per (responder, page) group of the request *)
          let by_page = Hashtbl.create 4 in
          List.iter
            (fun (p, _, _) ->
              Hashtbl.replace by_page p
                (1 + Option.value ~default:0 (Hashtbl.find_opt by_page p)))
            entries;
          Hashtbl.iter
            (fun p count ->
              emit t ~pid (Tmk_trace.Event.Diff_fetch { page = p; from_ = r; count }))
            by_page
        end;
        let mb = Transport.mailbox () in
        register_pending t ~pid ~target:r
          ~settled:(fun () -> Transport.mailbox_filled mb)
          ~retry:(fun () -> retry_diff_fetch t ~pid ~entries ~mb);
        Transport.send ~label:"diff-fetch" ~parts:n t.transport ~src:pid ~dst:r
          ~bytes:(Wire.gathered_diff_request_bytes n)
          ~deliver:(fun h ->
            let replies =
              List.filter_map
                (fun ((p, _, _) as entry) ->
                  let ((_, _, _, d) as reply) = serve_diff_entry t r h entry in
                  if p = page || Rle.encoded_size d <= gather_entry_max then
                    Some reply
                  else None)
                entries
            in
            let sizes = List.map (fun (_, _, _, d) -> Rle.encoded_size d) replies in
            Transport.hsend_value ~label:"diff-fetch-reply"
              ~parts:(List.length replies) t.transport h ~dst:pid
              ~bytes:(Wire.gathered_diff_reply_bytes sizes) mb replies);
        (entries, mb) :: acc
        end)
      assignments []
  in
  let receive (entries, promise) =
    let replies = Transport.await_value t.transport promise in
    List.iter
      (fun (p, proc, interval_id, diff) ->
        Node.store_diff node ~proc ~interval_id ~page:p diff)
      replies;
    (* Drop feedback: a gathered entry the responder declined to serve
       means that page's diffs are too large to prefetch — blacklist the
       page so the request/decline cycle is not repeated at every miss. *)
    List.iter
      (fun ((p, _, _) as entry) ->
        if
          p <> page
          && not (List.exists (fun (p', q', i', _) -> (p', q', i') = entry) replies)
        then node.Node.pages.(p).Node.pg_no_gather <- true)
      entries
  in
  List.iter receive promises;
  atomically (fun charge ->
      (* the fetched diffs, plus any piggybacked ones not yet reflected;
         rev_append (not @): apply_missing_diffs sorts by timestamp *)
      let fetched =
        List.fold_left (fun acc (_, wns) -> List.rev_append wns acc) [] missing
      in
      let pending =
        List.filter (fun wn -> not (List.memq wn fetched)) (Node.unapplied_diffs node page)
      in
      Node.apply_missing_diffs node page (List.rev_append fetched pending) ~charge)

(* ERC: cold fetch through the global directory; updates that raced ahead
   of the base copy are queued and applied on installation.  A provider
   with update messages still in flight to it cannot produce a current
   snapshot, and the requester is not yet a copyset member so it would
   never receive those updates: the serve stalls (the handler re-arms
   itself) until the page's in-flight update count drains.  Flushes are
   bursts bounded by their acknowledgements, so the wait is short. *)
let fetch_base_erc t pid page =
  let node = t.nodes.(pid) in
  let provider = choose_provider_lowest t t.erc_dir.(page) ~self:pid ~page in
  app_charge Category.Tmk_other Cpu.page_request_build;
  let mb = Transport.mailbox () in
  let rec serve h =
    if t.erc_inflight.(page) > 0 then begin
      h_charge h Category.Tmk_other (Vtime.us 5);
      Engine.post_handler t.engine ~pid:provider
        ~at:(Vtime.add (Engine.hnow h) (Vtime.us 200))
        serve
    end
    else begin
      h_charge h Category.Tmk_mem Costs.page_copy;
      (* Joining the copyset here makes every later flush reach the new
         member (possibly before the base installs; see erc_pending). *)
      Bitset.add t.erc_dir.(page) pid;
      Transport.hsend_value ~label:"page-fetch-reply" t.transport h ~dst:pid
        ~bytes:Wire.page_reply_bytes mb
        (Vm.page_snapshot t.nodes.(provider).Node.vm page)
    end
  in
  Transport.send ~label:"page-fetch" t.transport ~src:pid ~dst:provider
    ~bytes:Wire.page_request_bytes ~deliver:serve;
  let bytes = Transport.await_value t.transport mb in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fetch { page; from_ = provider });
  atomically (fun charge ->
      Node.validate_page node page bytes ~charge;
      (match Hashtbl.find_opt t.erc_pending.(pid) page with
      | None -> ()
      | Some diffs ->
        List.iter
          (fun diff ->
            charge Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
            Vm.patch node.Node.vm page diff;
            node.Node.stats.Stats.diffs_applied <- node.Node.stats.Stats.diffs_applied + 1;
            if Engine.tracing t.engine then
              emit t ~pid
                (Tmk_trace.Event.Diff_apply
                   (* queued while the base copy was in flight; the sender's
                      identity was not kept *)
                   { page; bytes = Rle.payload_size diff; proc = -1; interval = -1 }))
          (List.rev diffs);
        Hashtbl.remove t.erc_pending.(pid) page);
      charge Category.Unix_mem Costs.mprotect;
      Vm.set_prot node.Node.vm page Vm.Read_only)

let miss t pid page =
  let node = t.nodes.(pid) in
  Log.debug (fun m -> m "[t=%d] miss at %d on page %d" (Engine.now t.engine) pid page);
  node.Node.stats.Stats.remote_misses <- node.Node.stats.Stats.remote_misses + 1;
  match t.cfg.Config.protocol with
  | Config.Sc -> assert false (* SC faults are handled entirely by Sc *)
  | Config.Erc ->
    (* Update protocol: pages are never invalidated, so a miss is always a
       cold fetch. *)
    assert (not node.Node.pages.(page).Node.pg_has_copy);
    fetch_base_erc t pid page
  | Config.Lrc ->
    let entry = node.Node.pages.(page) in
    (* A genuine access miss (re-)arms the page for speculative gathering;
       each gather disarms it (one-strike policy, see
       [fetch_and_apply_diffs]). *)
    entry.Node.pg_fetched <- true;
    if not entry.Node.pg_has_copy then fetch_base_lrc t pid page;
    (* New write notices can be incorporated by a request handler while we
       wait for replies (this node may be the barrier manager); loop until
       every known diff has been applied. *)
    let rec settle () =
      match Node.missing_diffs node page with
      | [] ->
        atomically (fun charge ->
            (match Node.unapplied_diffs node page with
            | [] -> ()
            | pending ->
              (* diffs that arrived piggybacked on synchronization
                 messages (hybrid update protocol) while the page was
                 invalid or twinned *)
              Node.apply_missing_diffs node page pending ~charge);
            if Vm.prot node.Node.vm page = Vm.No_access then begin
              charge Category.Unix_mem Costs.mprotect;
              Vm.set_prot node.Node.vm page Vm.Read_only
            end)
      | missing ->
        fetch_and_apply_diffs t pid page missing;
        settle ()
    in
    settle ()

let handle_fault_rc t pid kind page =
  let node = t.nodes.(pid) in
  app_charge Category.Unix_mem Costs.sigsegv;
  app_charge Category.Tmk_other Cpu.fault_dispatch;
  (match kind with
  | Vm.Read -> node.Node.stats.Stats.read_faults <- node.Node.stats.Stats.read_faults + 1
  | Vm.Write -> node.Node.stats.Stats.write_faults <- node.Node.stats.Stats.write_faults + 1);
  let ekind =
    match kind with Vm.Read -> Tmk_trace.Event.Read | Vm.Write -> Tmk_trace.Event.Write
  in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fault { page; kind = ekind });
  (match (Vm.prot node.Node.vm page, kind) with
  | Vm.Read_only, Vm.Write ->
    atomically (fun charge -> Node.write_fault_twin node page ~charge)
  | Vm.No_access, Vm.Read -> miss t pid page
  | Vm.No_access, Vm.Write ->
    miss t pid page;
    (* The miss can leave the page invalid again if a notice raced in;
       the Vm fault dispatcher retries and we fall into the miss path
       once more. *)
    if Vm.prot node.Node.vm page = Vm.Read_only then
      atomically (fun charge -> Node.write_fault_twin node page ~charge)
  | (Vm.Read_only | Vm.Read_write), _ -> assert false);
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fault_done { page; kind = ekind })

(* Fault entry: the SC baseline handles its faults entirely in Sc. *)
let handle_fault t pid kind page =
  match t.sc with
  | Some sc -> Sc.handle_fault sc ~pid kind page
  | None -> handle_fault_rc t pid kind page

(* ------------------------------------------------------------------ *)
(* ERC release flush (§5.1): diff every dirty page and push updates to
   every cacher, then wait for all acknowledgements.                    *)

let erc_flush t pid =
  let node = t.nodes.(pid) in
  let dirty = node.Node.dirty in
  node.Node.dirty <- [];
  if dirty <> [] then begin
    (* First pass: create every diff and collect the update fan-out so the
       acknowledgement count is known before any ack can arrive. *)
    Log.debug (fun m ->
        m "[t=%d] erc flush by %d, %d dirty pages" (Engine.now t.engine) pid
          (List.length dirty));
    let updates =
      List.filter_map
        (fun page ->
          let entry = node.Node.pages.(page) in
          match entry.Node.pg_twin with
          | None -> None
          | Some twin ->
            let diff =
              atomically (fun charge ->
                  charge Category.Tmk_other Cpu.erc_flush_per_page;
                  charge Category.Tmk_mem (Costs.diff_create Vm.page_size);
                  let diff = Vm.diff_against node.Node.vm page ~twin in
                  entry.Node.pg_twin <- None;
                  node.Node.stats.Stats.diffs_created <-
                    node.Node.stats.Stats.diffs_created + 1;
                  node.Node.stats.Stats.diff_bytes_created <-
                    node.Node.stats.Stats.diff_bytes_created + Rle.encoded_size diff;
                  if Engine.tracing t.engine then
                    emit t ~pid
                      (Tmk_trace.Event.Diff_create
                         { page; bytes = Rle.encoded_size diff; proc = pid;
                           interval = -1 });
                  charge Category.Unix_mem Costs.mprotect;
                  Vm.set_prot node.Node.vm page Vm.Read_only;
                  diff)
            in
            let members =
              List.filter (fun q -> q <> pid) (Bitset.to_list t.erc_dir.(page))
            in
            (* Reserve the deliveries while still atomic with the
               membership read, so concurrent cold fetches stall until
               these updates land (see fetch_base_erc). *)
            t.erc_inflight.(page) <- t.erc_inflight.(page) + List.length members;
            if members = [] then None else Some (page, diff, members))
        dirty
    in
    (* Regroup the (page → members) fan-out into per-member batches: one
       update message per cacher carrying all of its pages' diffs (one
       frame when batching, back-to-back fragments otherwise), answered by
       one aggregate acknowledgement. *)
    let by_member = Hashtbl.create 8 in
    List.iter
      (fun (page, diff, members) ->
        List.iter
          (fun m ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_member m) in
            Hashtbl.replace by_member m ((page, diff) :: prev))
          members)
      updates;
    let batches =
      Hashtbl.fold (fun m rev_pages acc -> (m, List.rev rev_pages) :: acc) by_member []
    in
    if batches <> [] then begin
      let remaining = ref (List.length batches) in
      let all_acked = Engine.Ivar.create () in
      let send_batch (m, entries) =
        let n = List.length entries in
        let bytes =
          List.fold_left
            (fun acc (_, diff) -> acc + Wire.erc_update_bytes (Rle.encoded_size diff))
            0 entries
        in
        let deliver h =
          let mnode = t.nodes.(m) in
          List.iter
            (fun (page, diff) ->
              t.erc_inflight.(page) <- t.erc_inflight.(page) - 1;
              Log.debug (fun msg ->
                  msg "[t=%d] erc update page %d from %d at %d (%d runs, has_copy=%b)"
                    (Engine.now t.engine) page pid m
                    (Tmk_util.Rle.run_count diff)
                    mnode.Node.pages.(page).Node.pg_has_copy);
              if mnode.Node.pages.(page).Node.pg_has_copy then begin
                h_charge h Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
                Vm.patch mnode.Node.vm page diff;
                (match mnode.Node.pages.(page).Node.pg_twin with
                | Some tw -> Rle.apply diff tw
                | None -> ());
                mnode.Node.stats.Stats.diffs_applied <-
                  mnode.Node.stats.Stats.diffs_applied + 1;
                if Engine.htracing h then
                  Engine.hemit h
                    (Tmk_trace.Event.Diff_apply
                       { page; bytes = Rle.payload_size diff; proc = pid; interval = -1 })
              end
              else begin
                (* The base copy is still in flight: queue the update. *)
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt t.erc_pending.(m) page)
                in
                Hashtbl.replace t.erc_pending.(m) page (diff :: prev)
              end)
            entries;
          Transport.hsend ~label:"erc-ack" ~parts:n t.transport h ~dst:pid
            ~bytes:(n * Wire.ack_bytes)
            ~deliver:(fun ha ->
              decr remaining;
              if !remaining = 0 then Engine.fill t.engine all_acked ~at:(Engine.hnow ha) ())
        in
        Transport.send ~label:"erc-update" ~parts:n t.transport ~src:pid ~dst:m ~bytes
          ~deliver
      in
      (* Send in member order for determinism (by_member is a Hashtbl). *)
      List.iter send_batch (List.sort (fun (a, _) (b, _) -> compare a b) batches);
      (* The release "is not allowed to perform" until every update is
         acknowledged (section 5.1's DASH-style requirement). *)
      Log.debug (fun m ->
          m "[t=%d] erc flush by %d awaiting %d acks" (Engine.now t.engine) pid !remaining);
      Engine.await all_acked;
      Log.debug (fun m -> m "[t=%d] erc flush by %d complete" (Engine.now t.engine) pid)
    end
  end

(* ------------------------------------------------------------------ *)
(* Hybrid update protocol (§2.2's alternative to invalidation): when
   enabled, synchronization messages piggyback the diffs of pages the
   receiver is believed to cache, and the receiver updates valid pages in
   place. *)

let attach_for t node ~receiver ~charge =
  if not t.cfg.Config.lrc_updates then None
  else
    Some
      (fun wn ->
        let page = wn.Node.wn_page in
        if Bitset.mem node.Node.pages.(page).Node.pg_copyset receiver then begin
          (* a pending local diff is created now (it is the newest
             diff-less local notice by the lazy-diffing invariant) *)
          if wn.Node.wn_interval.Node.iv_proc = node.Node.pid && wn.Node.wn_diff = None
          then Node.ensure_own_diff node page ~charge;
          wn.Node.wn_diff
        end
        else None)

(* Diff mirroring requires the diff to exist the moment its interval
   closes (a lazily deferred diff would die with its creator), so
   [Config.diff_backup] forces eager creation. *)
let eager_diffs t = (not t.cfg.Config.lazy_diffs) || t.cfg.Config.diff_backup

(* ------------------------------------------------------------------ *)
(* Locks (§3.3)                                                        *)

let grant_payload t granter req ~charge =
  let node = t.nodes.(granter) in
  match t.cfg.Config.protocol with
  | Config.Lrc ->
    (* A new interval logically begins at the release-to-another-processor. *)
    Node.close_interval ~eager_diffs:(eager_diffs t) node ~charge;
    let attach = attach_for t node ~receiver:req.lr_requester ~charge in
    let intervals = Node.intervals_since ?attach node req.lr_vt in
    charge Category.Unix_comm Cpu.lock_grant_kernel;
    charge Category.Tmk_other Cpu.lock_grant_dsm;
    let bytes =
      Wire.lock_grant_bytes ~nprocs:t.cfg.Config.nprocs (Node.notice_counts intervals)
      + Node.update_bytes intervals
    in
    (bytes, { g_intervals = intervals; g_granter_vt = Vector_time.copy node.Node.vt })
  | Config.Erc | Config.Sc ->
    charge Category.Unix_comm Cpu.lock_grant_kernel;
    charge Category.Tmk_other Cpu.lock_grant_dsm;
    ( Wire.lock_grant_bytes ~nprocs:t.cfg.Config.nprocs [],
      { g_intervals = []; g_granter_vt = Vector_time.copy node.Node.vt } )

(* A grant (or barrier message) carrying n piggybacked intervals is one
   logical header plus n interval units: an unbatched transport sends each
   as its own frame, a batching one coalesces them (the tentpole). *)
let interval_parts intervals = 1 + List.length intervals

(* Grant from a request handler: the lock was free (cached) at this node. *)
let grant_from_handler t granter req h =
  let bytes, payload = grant_payload t granter req ~charge:(h_charge h) in
  if Engine.htracing h then
    Engine.hemit h
      (Tmk_trace.Event.Lock_grant
         {
           lock = req.lr_lock;
           requester = req.lr_requester;
           intervals = List.length payload.g_intervals;
           bytes;
         });
  Transport.hsend_value ~label:"lock-grant" ~parts:(interval_parts payload.g_intervals)
    t.transport h ~dst:req.lr_requester ~bytes req.lr_mb payload

(* Grant from application context (at release time). *)
let grant_from_app t granter req =
  let bytes, payload = atomically (fun charge -> grant_payload t granter req ~charge) in
  if Engine.tracing t.engine then
    emit t ~pid:granter
      (Tmk_trace.Event.Lock_grant
         {
           lock = req.lr_lock;
           requester = req.lr_requester;
           intervals = List.length payload.g_intervals;
           bytes;
         });
  Transport.send_value ~label:"lock-grant" ~parts:(interval_parts payload.g_intervals)
    t.transport ~src:granter ~dst:req.lr_requester ~bytes req.lr_mb payload

(* A request is stale routing when it predates the current membership
   epoch (recovery re-injected a fresh copy for every live waiter), when
   its requester has died, or when its grant already went out. *)
let stale_request t req =
  req.lr_epoch < t.epoch
  || t.dead.(req.lr_requester)
  || Transport.mailbox_filled req.lr_mb

(* Track the request a grant is in flight to: if the requester dies the
   token dies with it and recovery regenerates it; if the granter dies
   the already-sent grant still arrives (crash-stop drops only frames
   sent after the crash). *)
let note_grant_inflight t req =
  if t.crashes_planned then Hashtbl.replace t.grant_target req.lr_lock req

(* A lock request reaching the node at the end of the forwarding chain. *)
let transfer_request t target req h =
  if stale_request t req then ()
  else begin
  let st = lock_state_of t target req.lr_lock in
  Log.debug (fun m ->
      m "[t=%d] lock %d transfer-request at %d from %d (held=%b cached=%b)"
        (Engine.now t.engine) req.lr_lock target req.lr_requester st.held st.cached);
  if st.held || not st.cached then begin
    if Engine.htracing h then
      Engine.hemit h
        (Tmk_trace.Event.Lock_queued
           { lock = req.lr_lock; requester = req.lr_requester });
    Queue.add req st.pending
  end
  else begin
    st.cached <- false;
    note_grant_inflight t req;
    grant_from_handler t target req h
  end
  end

(* The (effective) manager: record the requester, forward to the
   previous one (§3.3). *)
let manager_handle t mgr req h =
  if stale_request t req then ()
  else begin
  let ms = mgr_state_of t mgr req.lr_lock in
  let target = ms.last_requester in
  assert (target <> req.lr_requester);
  ms.last_requester <- req.lr_requester;
  if Engine.htracing h then
    Engine.hemit h
      (Tmk_trace.Event.Lock_request_recv
         { lock = req.lr_lock; requester = req.lr_requester });
  if target = mgr then transfer_request t mgr req h
  else begin
    h_charge h Category.Tmk_other Cpu.lock_forward;
    if Engine.htracing h then
      Engine.hemit h
        (Tmk_trace.Event.Lock_forward
           { lock = req.lr_lock; requester = req.lr_requester; target });
    Transport.hsend ~label:"lock-forward" t.transport h ~dst:target
      ~bytes:(Wire.lock_request_bytes ~nprocs:t.cfg.Config.nprocs)
      ~deliver:(fun h2 -> transfer_request t target req h2)
  end
  end

let acquire t ~pid ~lock =
  let node = t.nodes.(pid) in
  let st = lock_state_of t pid lock in
  node.Node.stats.Stats.lock_acquires <- node.Node.stats.Stats.lock_acquires + 1;
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Lock_acquire { lock; local = st.cached });
  if st.cached then begin
    (* Mark the lock held before charging: Engine.advance is a scheduling
       point, and a request handler running inside it must see the token
       as taken or it would grant it away (the real implementation masks
       SIGIO around the lock internals). *)
    st.held <- true;
    Log.debug (fun m -> m "[t=%d] lock %d local acquire by %d" (Engine.now t.engine) lock pid);
    app_charge Category.Tmk_other Cpu.lock_local;
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Lock_acquired { lock; local = true });
    race_lock_acquired t ~pid ~lock
  end
  else begin
    node.Node.stats.Stats.lock_remote <- node.Node.stats.Stats.lock_remote + 1;
    app_charge Category.Unix_comm Cpu.lock_request_build_kernel;
    app_charge Category.Tmk_other Cpu.lock_request_build_dsm;
    let mb = Transport.mailbox () in
    let req =
      {
        lr_lock = lock;
        lr_requester = pid;
        lr_vt = Vector_time.copy node.Node.vt;
        lr_mb = mb;
        lr_epoch = t.epoch;
      }
    in
    if t.crashes_planned then Hashtbl.replace t.waiting_acquires.(pid) lock req;
    let mgr = effective_lock_manager t lock in
    Transport.send ~label:"lock-request" t.transport ~src:pid ~dst:mgr
      ~bytes:(Wire.lock_request_bytes ~nprocs:t.cfg.Config.nprocs)
      ~deliver:(fun h -> manager_handle t mgr req h);
    let grant = Transport.await_value t.transport mb in
    Log.debug (fun m ->
        m "[t=%d] lock %d granted to %d (%d intervals)" (Engine.now t.engine) lock pid
          (List.length grant.g_intervals));
    (match t.cfg.Config.protocol with
    | Config.Lrc ->
      atomically (fun charge ->
          Node.close_interval ~eager_diffs:(eager_diffs t) node ~charge;
          (* The piggybacked intervals are exactly the granter's knowledge
             not covered by our request timestamp, so incorporation alone
             realises the pairwise-maximum rule of §2.2; the timestamp
             itself must only ever track incorporated records (see
             Node.incorporate). *)
          Node.incorporate node grant.g_intervals ~charge);
      assert (Vector_time.leq grant.g_granter_vt node.Node.vt)
    | Config.Erc | Config.Sc -> app_charge Category.Tmk_consistency Cpu.incorporate_base);
    st.held <- true;
    st.cached <- true;
    (* Deregister only after the token flags are set: recovery must never
       observe a grant that is in neither the registry nor [st.cached]. *)
    if t.crashes_planned then begin
      Hashtbl.remove t.waiting_acquires.(pid) lock;
      match Hashtbl.find_opt t.grant_target lock with
      | Some r when r.lr_requester = pid -> Hashtbl.remove t.grant_target lock
      | _ -> ()
    end;
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Lock_acquired { lock; local = false });
    race_lock_acquired t ~pid ~lock
  end

let release t ~pid ~lock =
  let st = lock_state_of t pid lock in
  Log.debug (fun m ->
      m "[t=%d] lock %d release by %d (pending=%d)" (Engine.now t.engine) lock pid
        (Queue.length st.pending));
  if not st.held then
    invalid_arg (Printf.sprintf "Protocol.release: processor %d does not hold lock %d" pid lock);
  race_lock_release t ~pid ~lock;
  if t.cfg.Config.protocol = Config.Erc then erc_flush t pid;
  st.held <- false;
  (* Skip waiters invalidated by a crash: stale epochs, dead requesters,
     requests already granted elsewhere by recovery. *)
  let rec next_waiter () =
    match Queue.take_opt st.pending with
    | Some req when stale_request t req -> next_waiter ()
    | other -> other
  in
  match next_waiter () with
  | None ->
    (* token stays cached here *)
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Lock_release { lock; granted_to = None })
  | Some req ->
    Log.debug (fun m ->
        m "[t=%d] lock %d release-grant by %d to %d" (Engine.now t.engine) lock pid
          req.lr_requester);
    if Engine.tracing t.engine then
      emit t ~pid
        (Tmk_trace.Event.Lock_release { lock; granted_to = Some req.lr_requester });
    st.cached <- false;
    note_grant_inflight t req;
    grant_from_app t pid req;
    (* Any stragglers chase the token to its new holder. *)
    Queue.iter
      (fun r ->
        if not (stale_request t r) then
          Transport.send ~label:"lock-forward" t.transport ~src:pid ~dst:req.lr_requester
            ~bytes:(Wire.lock_request_bytes ~nprocs:t.cfg.Config.nprocs)
            ~deliver:(fun h -> transfer_request t req.lr_requester r h))
      st.pending;
    Queue.clear st.pending

(* ------------------------------------------------------------------ *)
(* Garbage collection (§3.6)                                           *)

let fresh_gc_state () =
  { gs_clients = []; gs_manager_here = false; gs_all_in = Engine.Ivar.create () }

let gc_maybe_complete t =
  let gs = t.gc in
  let live_clients =
    List.length (List.filter (fun c -> not t.dead.(c.gc_pid)) gs.gs_clients)
  in
  if
    gs.gs_manager_here
    && live_clients >= live_count t - 1
    && not (Engine.Ivar.is_filled gs.gs_all_in)
  then Engine.fill t.engine gs.gs_all_in ~at:(Engine.now t.engine) ()

let gc_phase t pid =
  let node = t.nodes.(pid) in
  let npages = t.cfg.Config.pages in
  Log.debug (fun m ->
      m "[t=%d] gc at %d (%d live records)" (Engine.now t.engine) pid node.Node.live_records);
  node.Node.stats.Stats.gc_runs <- node.Node.stats.Stats.gc_runs + 1;
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Gc_begin { live = node.Node.live_records });
  (* 1. Validate every page this node modified: flush twins to diffs,
     fetch and apply whatever is missing. *)
  let validate page =
    atomically (fun charge -> Node.ensure_own_diff node page ~charge);
    let rec settle () =
      match Node.missing_diffs node page with
      | [] ->
        atomically (fun charge ->
            (match Node.unapplied_diffs node page with
            | [] -> ()
            | pending -> Node.apply_missing_diffs node page pending ~charge);
            if Vm.prot node.Node.vm page = Vm.No_access then begin
              charge Category.Unix_mem Costs.mprotect;
              Vm.set_prot node.Node.vm page Vm.Read_only
            end)
      | missing ->
        fetch_and_apply_diffs t pid page missing;
        settle ()
    in
    settle ()
  in
  List.iter validate (Node.modified_pages node);
  (* 2. Exchange keep-bitmaps so everyone learns the new copysets. *)
  let keep = Bitset.create npages in
  for page = 0 to npages - 1 do
    if Vm.prot node.Node.vm page <> Vm.No_access then Bitset.add keep page
  done;
  let keepers =
    if pid = barrier_manager then begin
      t.gc.gs_manager_here <- true;
      gc_maybe_complete t;
      Engine.await t.gc.gs_all_in;
      let clients = t.gc.gs_clients in
      t.gc <- fresh_gc_state ();
      (* Aggregate: keepers per page, one bitset of processors per page. *)
      let keepers = Array.init npages (fun _ -> Bitset.create t.cfg.Config.nprocs) in
      let note_keeps who bitmap =
        Bitset.iter (fun page -> Bitset.add keepers.(page) who) bitmap
      in
      note_keeps pid keep;
      List.iter (fun c -> if not t.dead.(c.gc_pid) then note_keeps c.gc_pid c.gc_keep) clients;
      let reply_bytes =
        t.cfg.Config.nprocs * Wire.gc_keep_bitmap_bytes ~npages
      in
      List.iter
        (fun c ->
          if not t.dead.(c.gc_pid) then
            Transport.send_value ~label:"gc-copysets" t.transport ~src:pid ~dst:c.gc_pid
              ~bytes:reply_bytes c.gc_mb keepers)
        clients;
      keepers
    end
    else begin
      let mb = Transport.mailbox () in
      Transport.send ~label:"gc-bitmap" t.transport ~src:pid ~dst:barrier_manager
        ~bytes:(Wire.gc_keep_bitmap_bytes ~npages)
        ~deliver:(fun _h ->
          t.gc.gs_clients <- { gc_pid = pid; gc_keep = keep; gc_mb = mb } :: t.gc.gs_clients;
          gc_maybe_complete t);
      Transport.await_value t.transport mb
    end
  in
  (* 3. Adopt the new copysets and discard every consistency record. *)
  Array.iteri
    (fun page entry ->
      entry.Node.pg_copyset <- Bitset.copy keepers.(page);
      if not (Bitset.mem keepers.(page) pid) then entry.Node.pg_has_copy <- false)
    node.Node.pages;
  let discarded = Node.discard_all_records node ~charge:app_charge in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Gc_end { discarded })

(* ------------------------------------------------------------------ *)
(* Barriers (§3.4)                                                     *)

(* Completion counts live clients against the live membership: a dead
   processor never arrives, and a client that arrived and then died is
   kept (its intervals are already incorporated) but not counted or
   released. *)
let barrier_maybe_complete t bs ~at =
  let live_clients =
    List.length (List.filter (fun bc -> not t.dead.(bc.bc_pid)) bs.bs_clients)
  in
  if
    bs.bs_manager_here
    && live_clients >= live_count t - 1
    && not (Engine.Ivar.is_filled bs.bs_all_in)
  then Engine.fill t.engine bs.bs_all_in ~at ()

let barrier t ~pid ~id =
  let node = t.nodes.(pid) in
  let lrc = t.cfg.Config.protocol = Config.Lrc in
  Log.debug (fun m -> m "[t=%d] barrier %d arrival by %d" (Engine.now t.engine) id pid);
  node.Node.stats.Stats.barriers <- node.Node.stats.Stats.barriers + 1;
  (* epoch = this processor's global barrier sequence number *)
  let epoch = node.Node.stats.Stats.barriers - 1 in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Barrier_arrive { id; epoch });
  race_barrier_arrive t ~pid ~id;
  if t.cfg.Config.protocol = Config.Erc then erc_flush t pid;
  app_charge Category.Unix_comm Cpu.barrier_arrival_build_kernel;
  app_charge Category.Tmk_other Cpu.barrier_arrival_build_dsm;
  if lrc then atomically (fun charge ->
      Node.close_interval ~eager_diffs:(eager_diffs t) node ~charge);
  let want_gc = lrc && node.Node.live_records > t.cfg.Config.gc_threshold in
  if t.cfg.Config.nprocs = 1 then begin
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id
  end
  else if pid = barrier_manager then begin
    let bs = barrier_state_of t id in
    bs.bs_manager_here <- true;
    bs.bs_gc <- bs.bs_gc || want_gc;
    barrier_maybe_complete t bs ~at:(Engine.now t.engine);
    Engine.await bs.bs_all_in;
    let clients = bs.bs_clients in
    let run_gc = bs.bs_gc in
    (* Reset before releasing so the next use of this id starts clean. *)
    bs.bs_clients <- [];
    bs.bs_manager_here <- false;
    bs.bs_all_in <- Engine.Ivar.create ();
    bs.bs_gc <- false;
    let release_one bc =
      (* interval selection (and any hybrid-protocol diff creation) is
         atomic with respect to this node's handlers; a grant handler
         interleaving between releases merely enlarges later clients'
         deltas, which is safe *)
      (* The timestamp must be snapshotted in the same atomic section as
         the interval list: the per-client charge below is a scheduling
         point, and a handler interleaving there (e.g. a fast client's
         arrival at the NEXT barrier) advances the manager's timestamp
         past what this release carries.  A release whose br_vt claims
         intervals it does not contain breaks the acquirer's coverage
         invariant at the receiving client. *)
      let intervals, release_vt =
        if lrc then
          atomically (fun charge ->
              let attach = attach_for t node ~receiver:bc.bc_pid ~charge in
              ( Node.intervals_since ?attach node bc.bc_vt,
                Vector_time.copy node.Node.vt ))
        else ([], Vector_time.copy node.Node.vt)
      in
      app_charge Category.Tmk_other Cpu.barrier_release_per_client;
      let bytes =
        Wire.barrier_release_bytes ~nprocs:t.cfg.Config.nprocs (Node.notice_counts intervals)
        + Node.update_bytes intervals
      in
      Transport.send_value ~label:"barrier-release" ~parts:(interval_parts intervals)
        t.transport ~src:pid ~dst:bc.bc_pid ~bytes bc.bc_mb
        { br_intervals = intervals; br_vt = release_vt; br_gc = run_gc }
    in
    (* Release in client order for determinism; dead clients get none. *)
    List.iter release_one
      (List.sort
         (fun a b -> compare a.bc_pid b.bc_pid)
         (List.filter (fun bc -> not t.dead.(bc.bc_pid)) clients));
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id;
    if run_gc then gc_phase t pid
  end
  else begin
    let mb = Transport.mailbox () in
    (* Send the manager our intervals it does not know about: everything
       newer than the last manager timestamp we have seen (§3.4). *)
    let mgr_known_vt =
      if lrc then
        match node.Node.intervals.(barrier_manager) with
        | iv :: _ -> iv.Node.iv_vt
        | [] -> Vector_time.create t.cfg.Config.nprocs
      else Vector_time.create t.cfg.Config.nprocs
    in
    let own =
      if lrc then
        atomically (fun charge ->
            let attach = attach_for t node ~receiver:barrier_manager ~charge in
            Node.own_intervals_since ?attach node mgr_known_vt)
      else []
    in
    let arrival_vt = Vector_time.copy node.Node.vt in
    let bytes =
      Wire.barrier_arrival_bytes ~nprocs:t.cfg.Config.nprocs (Node.notice_counts own)
      + Node.update_bytes own
    in
    Transport.send ~label:"barrier-arrival" ~parts:(interval_parts own) t.transport
      ~src:pid ~dst:barrier_manager ~bytes
      ~deliver:(fun h ->
        let bs = barrier_state_of t id in
        if lrc then Node.incorporate t.nodes.(barrier_manager) own ~charge:(h_charge h)
        else h_charge h Category.Tmk_consistency Cpu.incorporate_base;
        bs.bs_clients <- { bc_pid = pid; bc_vt = arrival_vt; bc_mb = mb } :: bs.bs_clients;
        bs.bs_gc <- bs.bs_gc || want_gc;
        barrier_maybe_complete t bs ~at:(Engine.hnow h));
    let rel = Transport.await_value t.transport mb in
    if lrc then begin
      atomically (fun charge -> Node.incorporate node rel.br_intervals ~charge);
      assert (Vector_time.leq rel.br_vt node.Node.vt)
    end
    else app_charge Category.Tmk_consistency Cpu.incorporate_base;
    if Engine.tracing t.engine then
      emit t ~pid (Tmk_trace.Event.Barrier_release { id; epoch });
    race_barrier_depart t ~pid ~id;
    if rel.br_gc then gc_phase t pid
  end

let charge_compute _t ~pid:_ ns = app_charge Category.Computation (Vtime.ns ns)

(* ------------------------------------------------------------------ *)
(* Failure detection and recovery

   Runs in timer/handler context (from a transport suspicion), so it
   never calls [Engine.advance]: messages go out as context-free
   notifications and deferred work is posted to handlers.  The simulator
   rebuilds the metadata with global visibility — the real system's
   recovery rounds are modelled by the death notices below, and the
   recovery is treated as instantaneous at the detection time.           *)

(* Drop the dead processor from every live node's copysets (and the ERC
   directory, for completeness; crashes are Lrc-only). *)
let prune_copysets t dead_pid =
  Array.iteri
    (fun pid node ->
      if not t.dead.(pid) then
        Array.iter (fun entry -> Bitset.remove entry.Node.pg_copyset dead_pid) node.Node.pages)
    t.nodes;
  Array.iter (fun dir -> Bitset.remove dir dead_pid) t.erc_dir

(* Rebuild one lock's metadata.  The token is located with global
   visibility: a live casher keeps it; a grant in flight to a live
   requester is left to land; otherwise it died with the crash and is
   regenerated at the effective manager.  Every live waiter whose grant
   can no longer reach it is re-injected (fresh epoch) into the owner's
   queue in pid order; stale in-flight routing is dropped by
   [stale_request]. *)
let recover_lock t lock =
  let n = t.cfg.Config.nprocs in
  let waiters = ref [] in
  for p = n - 1 downto 0 do
    (match Hashtbl.find_opt t.lock_states.(p) lock with
    | Some st -> Queue.clear st.pending
    | None -> ());
    if not t.dead.(p) then
      match Hashtbl.find_opt t.waiting_acquires.(p) lock with
      | Some req when not (Transport.mailbox_filled req.lr_mb) -> waiters := req :: !waiters
      | _ -> ()
  done;
  let cached_at = ref None in
  for p = n - 1 downto 0 do
    if not t.dead.(p) then
      match Hashtbl.find_opt t.lock_states.(p) lock with
      | Some st when st.cached -> cached_at := Some p
      | _ -> ()
  done;
  let in_flight_to =
    match Hashtbl.find_opt t.grant_target lock with
    | Some req when not t.dead.(req.lr_requester) -> Some req.lr_requester
    | _ -> None
  in
  let owner, regenerated =
    match (!cached_at, in_flight_to) with
    | Some p, _ -> (p, false)
    | None, Some r -> (r, false)
    | None, None -> (effective_lock_manager t lock, true)
  in
  let owner_st =
    match Hashtbl.find_opt t.lock_states.(owner) lock with
    | Some st -> st
    | None ->
      let st = { held = false; cached = false; pending = Queue.create () } in
      Hashtbl.add t.lock_states.(owner) lock st;
      st
  in
  if regenerated then owner_st.cached <- true;
  let waiters =
    List.filter
      (fun req -> req.lr_requester <> owner || regenerated)
      (List.sort (fun a b -> compare a.lr_requester b.lr_requester) !waiters)
  in
  List.iter
    (fun old ->
      let fresh = { old with lr_epoch = t.epoch } in
      Hashtbl.replace t.waiting_acquires.(old.lr_requester) lock fresh;
      Queue.add fresh owner_st.pending)
    waiters;
  (* Re-home the forwarding chain at the effective manager: the next new
     request chases the tail of the rebuilt queue. *)
  let ms = mgr_state_of t (effective_lock_manager t lock) lock in
  (match List.rev waiters with
  | last :: _ -> ms.last_requester <- last.lr_requester
  | [] -> ms.last_requester <- owner);
  (* A free token (regenerated, or parked at a live casher) with waiters
     starts moving immediately; a grant in flight drains its queue when
     the new holder releases.  As at release time, the stragglers chase
     the token to its new holder — leaving them queued at [owner], which
     no longer has the token, would strand them forever. *)
  if owner_st.cached && (not owner_st.held) && not (Queue.is_empty owner_st.pending) then begin
    match Queue.take_opt owner_st.pending with
    | Some req ->
      owner_st.cached <- false;
      note_grant_inflight t req;
      Engine.post_handler t.engine ~pid:owner ~at:(Engine.now t.engine) (fun h ->
          grant_from_handler t owner req h);
      Queue.iter
        (fun r ->
          if not (stale_request t r) then
            Transport.notify ~label:"lock-forward" t.transport ~src:owner
              ~dst:req.lr_requester
              ~bytes:(Wire.lock_request_bytes ~nprocs:t.cfg.Config.nprocs)
              ~deliver:(fun h -> transfer_request t req.lr_requester r h))
        owner_st.pending;
      Queue.clear owner_st.pending
    | None -> ()
  end

let recover_locks t =
  let known = Hashtbl.create 16 in
  let note l _ = if not (Hashtbl.mem known l) then Hashtbl.add known l () in
  Array.iter (fun tbl -> Hashtbl.iter note tbl) t.lock_states;
  Array.iter (fun tbl -> Hashtbl.iter note tbl) t.lock_mgrs;
  Array.iter (fun tbl -> Hashtbl.iter note tbl) t.waiting_acquires;
  let locks = List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) known []) in
  List.iter (recover_lock t) locks;
  List.length locks

(* Re-issue every registered in-flight operation that was waiting on the
   dead processor, in deterministic (pid, registration) order. *)
let retry_pending_ops t dead_pid =
  let pending = List.filter (fun op -> not (op.po_settled ())) t.pending_ops in
  let hit, rest = List.partition (fun op -> op.po_target = dead_pid) pending in
  t.pending_ops <- rest;
  let hit = List.sort (fun a b -> compare (a.po_pid, a.po_seq) (b.po_pid, b.po_seq)) hit in
  List.iter (fun op -> op.po_retry ()) hit;
  List.length hit

(* Metadata failover, run once per detected death. *)
let note_death t dead_pid =
  if not t.dead.(dead_pid) then begin
    t.dead.(dead_pid) <- true;
    t.epoch <- t.epoch + 1;
    let detected_at = Engine.now t.engine in
    let crash_at =
      Option.value ~default:detected_at (Engine.crash_time t.engine dead_pid)
    in
    if Engine.tracing t.engine then
      Engine.emit t.engine ~pid:dead_pid
        (Tmk_trace.Event.Failover { dead = dead_pid; epoch = t.epoch });
    Log.debug (fun m ->
        m "[t=%d] processor %d declared dead (epoch %d)" (Engine.now t.engine) dead_pid
          t.epoch);
    if dead_pid = barrier_manager then
      (* Processor 0 is the barrier/GC manager and the initial copyset of
         every page: its state is not recoverable. *)
      note_fatal t ~pid:dead_pid "barrier manager (processor 0) crashed"
    else begin
      (* Death notices: every live peer learns the new epoch (the
         simulator applies the membership change with global visibility;
         the notices model the traffic). *)
      let monitor = barrier_manager in
      for q = 0 to t.cfg.Config.nprocs - 1 do
        if q <> monitor && not t.dead.(q) then
          Transport.notify ~label:"death-notice" t.transport ~src:monitor ~dst:q
            ~bytes:Wire.death_notice_bytes
            ~deliver:(fun h -> h_charge h Category.Tmk_other Cpu.lock_forward)
      done;
      prune_copysets t dead_pid;
      let locks = recover_locks t in
      let retries = retry_pending_ops t dead_pid in
      (* Barriers and GC whose completion was gated on the dead client. *)
      Hashtbl.iter
        (fun _id bs -> barrier_maybe_complete t bs ~at:(Engine.now t.engine))
        t.barrier_states;
      gc_maybe_complete t;
      if Engine.tracing t.engine then
        Engine.emit t.engine ~pid:barrier_manager
          (Tmk_trace.Event.Recovery_done { dead = dead_pid; locks; retries });
      t.recoveries <-
        {
          rc_pid = dead_pid;
          rc_epoch = t.epoch;
          rc_crash_at = crash_at;
          rc_detected_at = detected_at;
          rc_locks_rehomed = locks;
          rc_retries = retries;
        }
        :: t.recoveries
    end
  end

(* Transport suspicion: a crashed peer triggers failover; a peer that is
   merely unreachable (fault-plan partition) stops the run cleanly, as
   recovery from a false positive is out of scope. *)
let on_suspicion t ~src ~dst ~label:_ ~attempts =
  if not t.dead.(dst) then begin
    if Engine.crashed t.engine dst then note_death t dst
    else
      Engine.request_stop t.engine
        (Printf.sprintf "peer %d unreachable (from %d after %d attempts)" dst src attempts)
  end

(* Failure detector: while a crash plan is armed, the lowest functioning
   processor probes every live peer on a short period with a small retry
   budget; budget exhaustion raises the suspicion that drives
   [note_death].  The monitor is recomputed every tick so that the crash of
   the monitor itself (processor 0, usually) leaves a successor probing —
   otherwise its death would go undetected with everyone parked on
   ivars.  Probing stops once every live processor has finished so the
   heartbeat never delays quiescence. *)
let heartbeat_period = Vtime.us 25_000
let heartbeat_budget = 4

(* Recovery restores protocol metadata, but it cannot restore
   application state the dead processor alone held — a task it popped
   from a shared work queue and never completed, say.  Survivors then
   poll forever, and because the heartbeat itself keeps the event queue
   non-empty the simulation would never end.  So once every planned
   crash is resolved, survivors owe completion within a grace window:
   generous (30 simulated seconds, or [crash_grace_factor] times the
   crash instant for long runs, whichever is larger) so no recovering
   run is cut short, but finite, turning application-level livelock
   into the typed degradation. *)
let crash_grace = Vtime.s 30
let crash_grace_factor = 10

let arm_heartbeat t =
  let monitor () =
    let m = ref None in
    for p = t.cfg.Config.nprocs - 1 downto 0 do
      if (not t.dead.(p)) && not (Engine.crashed t.engine p) then m := Some p
    done;
    !m
  in
  let unfinished_live () =
    let alive = ref false in
    for p = 0 to t.cfg.Config.nprocs - 1 do
      if (not t.dead.(p)) && not (Engine.finished t.engine p) then alive := true
    done;
    !alive
  in
  (* A planned crash is resolved once its victim is dead (detected and
     recovered) or finished before the crash instant ever arrived. *)
  let all_crashes_resolved () =
    List.for_all
      (fun { Tmk_net.Fault_plan.cr_pid; _ } ->
        t.dead.(cr_pid) || Engine.finished t.engine cr_pid)
      (Tmk_net.Fault_plan.crashes t.cfg.Config.faults)
  in
  let grace_deadline () =
    List.fold_left
      (fun acc rc ->
        let allowance =
          Vtime.max crash_grace (Vtime.scale rc.rc_crash_at crash_grace_factor)
        in
        Vtime.max acc (Vtime.add rc.rc_detected_at allowance))
      Vtime.zero t.recoveries
  in
  let probe () =
    match monitor () with
    | None -> ()
    | Some monitor ->
      for q = 0 to t.cfg.Config.nprocs - 1 do
        if q <> monitor && (not t.dead.(q)) && not (Engine.finished t.engine q) then
          Transport.notify ~label:"hb" ~retry_budget:heartbeat_budget t.transport
            ~src:monitor ~dst:q ~bytes:Wire.heartbeat_bytes
            ~deliver:(fun _h -> ())
      done
  in
  let rec tick at =
    Engine.schedule t.engine ~at (fun () ->
        if Engine.stop_reason t.engine = None && unfinished_live () then
          if not (all_crashes_resolved ()) then begin
            probe ();
            tick (Vtime.add at heartbeat_period)
          end
          else
            match t.recoveries with
            | [] ->
              (* Every victim finished before its crash instant: nothing
                 to detect or to count down.  Stand down so a genuine
                 application deadlock still surfaces as one. *)
              ()
            | rc :: _ ->
              if Engine.now t.engine > grace_deadline () then
                (* The protocol recovered long ago; the survivors are
                   stuck on application state only the dead processor
                   could produce.  Give them the typed ending, not an
                   endless simulation. *)
                note_fatal t ~pid:rc.rc_pid
                  (Printf.sprintf
                     "survivors still incomplete %.0f s after recovery: \
                      application state lost in the crash of processor %d \
                      cannot be reproduced"
                     (Vtime.to_s
                        (Vtime.sub (Engine.now t.engine) rc.rc_detected_at))
                     rc.rc_pid)
              else tick (Vtime.add at heartbeat_period))
  in
  tick heartbeat_period

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create cfg =
  Config.validate cfg;
  let engine = Engine.create ~nprocs:cfg.Config.nprocs in
  (match cfg.Config.trace with
  | Some sink -> Engine.set_sink engine sink
  | None -> ());
  let prng = Tmk_util.Prng.split_named (Tmk_util.Prng.create cfg.Config.seed) "net" in
  let transport =
    Transport.create ~plan:cfg.Config.faults ~batching:cfg.Config.batching ~engine
      ~params:cfg.Config.net ~prng ()
  in
  let nodes =
    Array.init cfg.Config.nprocs (fun pid ->
        let emit =
          match cfg.Config.trace with
          | None -> None
          | Some _ -> Some (fun ev -> Engine.emit engine ~pid ev)
        in
        Node.create ?emit ~vm_fast_path:cfg.Config.vm_fast_path ~pid
          ~nprocs:cfg.Config.nprocs ~pages:cfg.Config.pages ())
  in
  let erc_dir =
    Array.init cfg.Config.pages (fun _ ->
        let b = Bitset.create cfg.Config.nprocs in
        Bitset.add b 0;
        b)
  in
  let planned_crashes = Tmk_net.Fault_plan.crashes cfg.Config.faults in
  let t =
    {
      cfg;
      engine;
      transport;
      nodes;
      lock_states = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 16);
      lock_mgrs = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 16);
      barrier_states = Hashtbl.create 4;
      gc = fresh_gc_state ();
      erc_dir;
      erc_pending = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 4);
      erc_inflight = Array.make cfg.Config.pages 0;
      sc = None;
      crashes_planned = planned_crashes <> [];
      dead = Array.make cfg.Config.nprocs false;
      epoch = 0;
      waiting_acquires = Array.init cfg.Config.nprocs (fun _ -> Hashtbl.create 4);
      grant_target = Hashtbl.create 16;
      pending_ops = [];
      next_op = 0;
      recoveries = [];
      fatal = None;
    }
  in
  (if cfg.Config.protocol = Config.Sc then
     t.sc <- Some (Sc.create ~engine ~transport ~nodes ~pages:cfg.Config.pages));
  Array.iteri
    (fun pid node ->
      Vm.set_fault_handler node.Node.vm (fun kind page -> handle_fault t pid kind page))
    nodes;
  (match race_of t with
  | Some race ->
    Array.iteri
      (fun pid node ->
        Vm.set_access_hook node.Node.vm (fun kind addr width ->
            let kind =
              match kind with Vm.Read -> Tmk_check.Race.Read | Vm.Write -> Tmk_check.Race.Write
            in
            Tmk_check.Race.note_access race ~pid kind ~addr ~width))
      nodes
  | None -> ());
  (* Suspicions from retry-budget exhaustion drive failure handling. *)
  Transport.on_suspect transport (fun ~src ~dst ~label ~attempts ->
      on_suspicion t ~src ~dst ~label ~attempts);
  (* Diff replication: mirror each locally created diff to its creator's
     deterministic backup peer the moment it exists. *)
  if cfg.Config.diff_backup then
    Array.iter
      (fun node ->
        Node.set_diff_hook node (fun ~page ~proc ~interval ~diff ->
            match backup_peer t proc with
            | None -> ()
            | Some b ->
              let bytes = Wire.diff_backup_bytes (Rle.encoded_size diff) in
              node.Node.stats.Stats.diff_backups <- node.Node.stats.Stats.diff_backups + 1;
              node.Node.stats.Stats.diff_backup_bytes <-
                node.Node.stats.Stats.diff_backup_bytes + bytes;
              if Engine.tracing engine then
                Engine.emit engine ~pid:proc
                  (Tmk_trace.Event.Diff_backup { page; proc; interval; bytes; to_ = b });
              Transport.notify ~label:"diff-backup" t.transport ~src:proc ~dst:b ~bytes
                ~deliver:(fun h ->
                  h_charge h Category.Tmk_mem (Costs.diff_apply 0);
                  Node.store_backup t.nodes.(b) ~proc ~interval_id:interval ~page diff)))
      nodes;
  (* Crash injection: silence the processor at its planned instant;
     detection and failover run through the suspicion path. *)
  List.iter
    (fun { Tmk_net.Fault_plan.cr_pid; cr_at } ->
      Engine.schedule engine ~at:cr_at (fun () ->
          if not (Engine.finished engine cr_pid) then begin
            if Engine.tracing engine then
              Engine.emit engine ~pid:cr_pid Tmk_trace.Event.Proc_crash;
            Engine.mark_crashed engine cr_pid
          end))
    planned_crashes;
  if t.crashes_planned then arm_heartbeat t;
  t
