(* SC-ABD: shared memory as majority-quorum replicated registers.

   Every processor keeps a full replica of every page, and every 8-byte
   word of a page is a last-writer-wins register with its own timestamp
   (encoded [counter * nprocs + pid], so timestamps are totally ordered
   and writer-unique).  There is no owner, no directory and no manager:

   - A release (or barrier arrival, or acquire of any kind) flushes the
     dirty pages with a two-phase ABD write: query every live replica for
     the maximum timestamp over the dirty words, pick a larger one, then
     store the diffs at every live replica and wait until a majority
     acknowledges.  Receivers apply a store word-filtered (only where the
     incoming timestamp wins), so concurrent writers to disjoint words of
     the same page never lose updates.
   - A miss reads a majority: collect (page, word-timestamps) from live
     replicas, merge word-wise with the local copy, and write the merged
     value back only when the replies disagreed (ABD read-repair).
   - An acquire invalidates the whole cache after its flush — pages are
     re-read through a quorum on next touch.  Invalidating at the
     acquire (rather than when some payload arrives) also covers
     re-acquires of locally cached locks, which exchange no messages.

   Because any majority intersects any other, a read quorum always sees
   the newest completed write, whatever minority of processors has
   crashed — so a crash needs {e no} recovery protocol at all: no state
   is rebuilt, no diffs are re-homed, nothing is re-issued.  The price is
   paid up front, on every miss and every flush, in quorum round-trips. *)

open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Rle = Tmk_util.Rle

let app_charge = Cluster.app_charge
let h_charge = Cluster.h_charge
let atomically = Cluster.atomically

let caps =
  {
    Backend.c_name = Config.protocol_name Config.Sc_abd;
    c_crash_runs = true;
    c_zero_recovery = true;
    c_diff_backup = false;
    c_vt_on_wire = false;
  }

let words = Wire.abd_words_per_page

type t = {
  cl : Cluster.t;
  wordts : int array array;
      (* wordts.(pid).(page * words + w): timestamp of processor [pid]'s
         replica of word [w] of [page] *)
}

let nprocs t = t.cl.Cluster.cfg.Config.nprocs

(* Majority of the {e full} membership: crashed processors still count
   toward the denominator (their replicas are frozen, not forgotten). *)
let needed t = nprocs t / 2

let live_peers t pid =
  List.filter (fun q -> q <> pid && Cluster.live t.cl q) (List.init (nprocs t) Fun.id)

let require_quorum t pid peers =
  if List.length peers < needed t then
    Cluster.degrade_app t.cl ~pid
      (Printf.sprintf "sc-abd: quorum lost (%d live peers, need %d)" (List.length peers)
         (needed t))

(* Apply [diff] to [dst]'s replica of [page], keeping only the words
   where [ts] beats the replica's word timestamp.  The twin is patched
   too when the page is locally dirty, so the incoming words do not
   reappear in [dst]'s own next diff. *)
let apply_store t ~from_ dst page diff ~ts ~charge =
  let node = t.cl.Cluster.nodes.(dst) in
  let row = t.wordts.(dst) in
  let base = page * words in
  let snap = Vm.page_snapshot node.Node.vm page in
  let twin = node.Node.pages.(page).Node.pg_twin in
  List.iter
    (fun { Rle.offset; bytes } ->
      let len = Bytes.length bytes in
      for w = offset / 8 to (offset + len - 1) / 8 do
        if ts > row.(base + w) then begin
          row.(base + w) <- ts;
          let lo = max (w * 8) offset and hi = min ((w + 1) * 8) (offset + len) in
          Bytes.blit bytes (lo - offset) snap lo (hi - lo);
          match twin with
          | Some tw -> Bytes.blit bytes (lo - offset) tw lo (hi - lo)
          | None -> ()
        end
      done)
    (Rle.runs diff);
  Vm.install_page node.Node.vm page snap;
  charge Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
  node.Node.stats.Stats.diffs_applied <- node.Node.stats.Stats.diffs_applied + 1;
  if Engine.tracing t.cl.Cluster.engine then
    Cluster.emit t.cl ~pid:dst
      (Tmk_trace.Event.Diff_apply
         { page; bytes = Rle.payload_size diff; proc = from_; interval = -1 })

(* Word-filtered full-page overwrite (read-repair write-back). *)
let apply_writeback t dst page merged mrow ~charge =
  let node = t.cl.Cluster.nodes.(dst) in
  let row = t.wordts.(dst) in
  let base = page * words in
  let snap = Vm.page_snapshot node.Node.vm page in
  let twin = node.Node.pages.(page).Node.pg_twin in
  for w = 0 to words - 1 do
    if mrow.(w) > row.(base + w) then begin
      row.(base + w) <- mrow.(w);
      Bytes.blit merged (w * 8) snap (w * 8) 8;
      match twin with
      | Some tw -> Bytes.blit merged (w * 8) tw (w * 8) 8
      | None -> ()
    end
  done;
  Vm.install_page node.Node.vm page snap;
  charge Category.Tmk_mem Costs.page_copy

(* ------------------------------------------------------------------ *)
(* Quorum read (application context, from a miss)                      *)

let quorum_read t pid page =
  let cl = t.cl in
  Cluster.note_miss cl pid page;
  let node = cl.Cluster.nodes.(pid) in
  let peers = live_peers t pid in
  let need = needed t in
  require_quorum t pid peers;
  node.Node.stats.Stats.quorum_reads <- node.Node.stats.Stats.quorum_reads + 1;
  app_charge Category.Tmk_other Cpu.page_request_build;
  let replies = ref [] and got = ref 0 in
  let enough = Engine.Ivar.create () in
  List.iter
    (fun q ->
      Transport.send ~label:"abd-read" cl.Cluster.transport ~src:pid ~dst:q
        ~bytes:Wire.abd_read_request_bytes
        ~deliver:(fun h ->
          h_charge h Category.Tmk_other Cpu.abd_serve;
          h_charge h Category.Tmk_mem Costs.page_copy;
          let qnode = cl.Cluster.nodes.(q) in
          let snap = Vm.page_snapshot qnode.Node.vm page in
          let row = Array.sub t.wordts.(q) (page * words) words in
          Transport.hsend ~label:"abd-read-reply" cl.Cluster.transport h ~dst:pid
            ~bytes:Wire.abd_read_reply_bytes
            ~deliver:(fun hr ->
              if !got < need then begin
                replies := (snap, row) :: !replies;
                incr got;
                if !got = need then Engine.fill cl.Cluster.engine enough ~at:(Engine.hnow hr) ()
              end)))
    peers;
  if need > 0 then Engine.await enough;
  (* freeze before charging: late replies past the quorum are ignored *)
  let got_replies = !replies in
  app_charge Category.Tmk_other
    (Vtime.scale Cpu.abd_merge_per_reply (List.length got_replies));
  let base = page * words in
  let my = t.wordts.(pid) in
  let merged = Vm.page_snapshot node.Node.vm page in
  let disagree =
    atomically (fun charge ->
        List.iter
          (fun (snap, row) ->
            for w = 0 to words - 1 do
              if row.(w) > my.(base + w) then begin
                my.(base + w) <- row.(w);
                Bytes.blit snap (w * 8) merged (w * 8) 8
              end
            done)
          got_replies;
        let disagree =
          List.exists
            (fun (_, row) ->
              let stale = ref false in
              for w = 0 to words - 1 do
                if row.(w) < my.(base + w) then stale := true
              done;
              !stale)
            got_replies
        in
        Vm.install_page node.Node.vm page merged;
        charge Category.Unix_mem Costs.mprotect;
        Vm.set_prot node.Node.vm page Vm.Read_only;
        node.Node.pages.(page).Node.pg_has_copy <- true;
        disagree)
  in
  if Engine.tracing cl.Cluster.engine then
    Cluster.emit cl ~pid
      (Tmk_trace.Event.Quorum_read { page; replies = List.length got_replies });
  if disagree then begin
    (* ABD read-repair: the value about to be returned must survive at a
       majority before any later read may be allowed to miss it. *)
    let mrow = Array.sub my base words in
    let acks = ref 0 in
    let repaired = Engine.Ivar.create () in
    List.iter
      (fun q ->
        Transport.send ~label:"abd-writeback" cl.Cluster.transport ~src:pid ~dst:q
          ~bytes:Wire.abd_writeback_bytes
          ~deliver:(fun h ->
            h_charge h Category.Tmk_other Cpu.abd_serve;
            apply_writeback t q page merged mrow ~charge:(h_charge h);
            Transport.hsend ~label:"abd-ack" cl.Cluster.transport h ~dst:pid
              ~bytes:Wire.ack_bytes
              ~deliver:(fun ha ->
                if !acks < need then begin
                  incr acks;
                  if !acks = need then
                    Engine.fill cl.Cluster.engine repaired ~at:(Engine.hnow ha) ()
                end)))
      peers;
    if need > 0 then Engine.await repaired
  end

(* ------------------------------------------------------------------ *)
(* Two-phase quorum flush (application context)                        *)

let flush t pid =
  let cl = t.cl in
  let node = cl.Cluster.nodes.(pid) in
  let dirty = node.Node.dirty in
  node.Node.dirty <- [];
  let entries =
    List.filter_map
      (fun page ->
        let entry = node.Node.pages.(page) in
        match entry.Node.pg_twin with
        | None -> None
        | Some twin ->
          let diff =
            atomically (fun charge ->
                charge Category.Tmk_other Cpu.erc_flush_per_page;
                charge Category.Tmk_mem (Costs.diff_create Vm.page_size);
                let diff = Vm.diff_against node.Node.vm page ~twin in
                entry.Node.pg_twin <- None;
                node.Node.stats.Stats.diffs_created <-
                  node.Node.stats.Stats.diffs_created + 1;
                node.Node.stats.Stats.diff_bytes_created <-
                  node.Node.stats.Stats.diff_bytes_created + Rle.encoded_size diff;
                if Engine.tracing cl.Cluster.engine then
                  Cluster.emit cl ~pid
                    (Tmk_trace.Event.Diff_create
                       { page; bytes = Rle.encoded_size diff; proc = pid; interval = -1 });
                charge Category.Unix_mem Costs.mprotect;
                Vm.set_prot node.Node.vm page Vm.Read_only;
                diff)
          in
          if Rle.is_empty diff then None else Some (page, diff))
      dirty
  in
  if entries <> [] then begin
    let peers = live_peers t pid in
    let need = needed t in
    require_quorum t pid peers;
    let n_dirty = List.length entries in
    (* Phase 1: learn the maximum timestamp any live replica holds for
       the dirty words, so the store's timestamp beats them all. *)
    let maxes = ref [] and got = ref 0 in
    let ph1 = Engine.Ivar.create () in
    List.iter
      (fun q ->
        Transport.send ~label:"abd-ts" cl.Cluster.transport ~src:pid ~dst:q
          ~bytes:(Wire.abd_ts_query_bytes n_dirty)
          ~deliver:(fun h ->
            h_charge h Category.Tmk_other Cpu.abd_serve;
            let row = t.wordts.(q) in
            let m = ref 0 in
            List.iter
              (fun (page, _) ->
                let base = page * words in
                for w = 0 to words - 1 do
                  if row.(base + w) > !m then m := row.(base + w)
                done)
              entries;
            let m = !m in
            Transport.hsend ~label:"abd-ts-reply" cl.Cluster.transport h ~dst:pid
              ~bytes:(Wire.abd_ts_reply_bytes n_dirty)
              ~deliver:(fun hr ->
                if !got < need then begin
                  maxes := m :: !maxes;
                  incr got;
                  if !got = need then
                    Engine.fill cl.Cluster.engine ph1 ~at:(Engine.hnow hr) ()
                end)))
      peers;
    if need > 0 then Engine.await ph1;
    let seen = !maxes in
    let own_max =
      List.fold_left
        (fun acc (page, _) ->
          let base = page * words in
          let m = ref acc in
          for w = 0 to words - 1 do
            if t.wordts.(pid).(base + w) > !m then m := t.wordts.(pid).(base + w)
          done;
          !m)
        0 entries
    in
    let max_seen = List.fold_left max own_max seen in
    let n = nprocs t in
    let ts = (((max_seen / n) + 1) * n) + pid in
    (* Stamp the local replica: it is one of the majority. *)
    atomically (fun charge ->
        charge Category.Tmk_consistency Cpu.incorporate_base;
        List.iter
          (fun (page, diff) ->
            let base = page * words in
            List.iter
              (fun { Rle.offset; bytes } ->
                let len = Bytes.length bytes in
                for w = offset / 8 to (offset + len - 1) / 8 do
                  t.wordts.(pid).(base + w) <- ts
                done)
              (Rle.runs diff))
          entries);
    (* Phase 2: store everywhere, proceed once a majority holds it. *)
    let sizes = List.map (fun (_, d) -> Rle.encoded_size d) entries in
    let bytes = Wire.abd_store_bytes sizes in
    let acks = ref 0 in
    let ph2 = Engine.Ivar.create () in
    List.iter
      (fun q ->
        Transport.send ~label:"abd-store" ~parts:n_dirty cl.Cluster.transport ~src:pid
          ~dst:q ~bytes
          ~deliver:(fun h ->
            h_charge h Category.Tmk_other Cpu.abd_serve;
            List.iter
              (fun (page, diff) ->
                apply_store t ~from_:pid q page diff ~ts ~charge:(h_charge h))
              entries;
            Transport.hsend ~label:"abd-store-ack" cl.Cluster.transport h ~dst:pid
              ~bytes:Wire.ack_bytes
              ~deliver:(fun ha ->
                if !acks < need then begin
                  incr acks;
                  if !acks = need then
                    Engine.fill cl.Cluster.engine ph2 ~at:(Engine.hnow ha) ()
                end)))
      peers;
    if need > 0 then Engine.await ph2;
    node.Node.stats.Stats.quorum_writes <- node.Node.stats.Stats.quorum_writes + 1;
    if Engine.tracing cl.Cluster.engine then
      Cluster.emit cl ~pid (Tmk_trace.Event.Quorum_write { pages = n_dirty; acks = need })
  end

(* Drop the whole cache: the next touch of any page re-reads a quorum.
   One mprotect charge — a real implementation revokes the entire
   contiguous range with a single syscall.  Always runs post-flush, so
   no twins exist. *)
let invalidate_all t pid ~charge =
  if nprocs t > 1 then begin
    let node = t.cl.Cluster.nodes.(pid) in
    charge Category.Unix_mem Costs.mprotect;
    for page = 0 to t.cl.Cluster.cfg.Config.pages - 1 do
      if Vm.prot node.Node.vm page <> Vm.No_access then begin
        Vm.set_prot node.Node.vm page Vm.No_access;
        node.Node.pages.(page).Node.pg_has_copy <- false
      end
    done
  end

let make cl =
  let n = cl.Cluster.cfg.Config.nprocs in
  let npages = cl.Cluster.cfg.Config.pages in
  (* Full replication: every processor starts with a valid all-zero
     replica of every page, timestamp 0. *)
  Array.iter
    (fun node ->
      for page = 0 to npages - 1 do
        Vm.set_prot node.Node.vm page Vm.Read_only;
        node.Node.pages.(page).Node.pg_has_copy <- true
      done)
    cl.Cluster.nodes;
  let t = { cl; wordts = Array.init n (fun _ -> Array.make (npages * words) 0) } in
  {
    Backend.b_caps = caps;
    b_handle_fault =
      (fun ~pid kind page ->
        Cluster.rc_fault cl pid kind page ~miss:(fun () -> quorum_read t pid page));
    b_lock_request_bytes = Wire.abd_sync_bytes;
    b_pre_acquire =
      (fun ~pid ->
        flush t pid;
        atomically (fun charge -> invalidate_all t pid ~charge));
    b_make_acquire =
      (fun ~pid:_ ->
        {
          Backend.a_grant =
            (fun ~granter:_ ~charge ->
              charge Category.Unix_comm Cpu.lock_grant_kernel;
              charge Category.Tmk_other Cpu.lock_grant_dsm;
              {
                Backend.p_bytes = Wire.abd_sync_bytes;
                p_parts = 1;
                p_absorb = Backend.plain_absorb;
              });
        });
    b_pre_release = (fun ~pid -> flush t pid);
    b_pre_barrier = (fun ~pid -> flush t pid);
    b_barrier_begin = Backend.noop_pid;
    b_make_arrival =
      (fun ~pid ->
        {
          Backend.v_bytes = Wire.abd_sync_bytes;
          v_parts = 1;
          v_absorb_mgr = Backend.plain_absorb;
          v_release =
            (fun ~charge:_ ->
              {
                Backend.p_bytes = Wire.abd_sync_bytes;
                p_parts = 1;
                p_absorb =
                  (fun ~charge ->
                    charge Category.Tmk_consistency Cpu.incorporate_base;
                    invalidate_all t pid ~charge);
              });
        });
    b_barrier_depart =
      (fun ~pid -> atomically (fun charge -> invalidate_all t pid ~charge));
    b_want_gc = (fun ~pid:_ -> false);
    b_gc_validate = Backend.noop_pid;
    b_on_death = (fun _ -> ());
  }
