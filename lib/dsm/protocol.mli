(** The TreadMarks protocol engine: lazy release consistency with
    multiple-writer pages and lazy diff creation, plus the eager
    release-consistency baseline of §5.

    One value of type {!t} is a running cluster: an {!Tmk_sim.Engine}
    with one DSM node per processor, a {!Tmk_net.Transport} between them,
    lock and barrier managers, and the fault machinery wired into every
    node's {!Tmk_mem.Vm}.

    The operations below are the synchronization API the applications
    program against.  They must be called from the application process of
    the named processor (they block on remote replies).  Shared-memory
    loads and stores go straight through {!Tmk_mem.Vm} accessors on
    [Node.vm]; protection faults re-enter this module automatically.

    Protocol summary per operation (LRC):

    - {b acquire}: free if this processor holds the lock token; otherwise
      request → manager → (forward to last requester) → grant carrying
      the interval records the acquirer has not seen (§3.3); incorporation
      invalidates the pages named by their write notices.
    - {b release}: no communication unless a queued request is waiting, in
      which case the lock transfers with the same piggybacked interval
      delta.
    - {b barrier}: clients push their new intervals to the centralized
      manager; the manager merges and rebroadcasts each client's missing
      delta (§3.4).
    - {b page fault}: write faults on valid pages twin the page; misses
      fetch a base copy (cold) and the missing diffs, queried from the
      minimal processor set of §3.5, applied in vector-timestamp order.
    - {b garbage collection} (§3.6): piggybacked on a barrier when a
      node's consistency-record count passes the configured threshold;
      everyone validates the pages it modified, keep-bitmaps are
      exchanged, and all records are discarded.

    Under ERC (§5.1), release and barrier arrival instead create diffs of
    every dirty page eagerly and push them as updates to every cacher,
    blocking until all are acknowledged; locks and barriers carry no
    consistency payload and pages are never invalidated.

    {b Failure model (crash-stop, LRC only).}  A processor named in the
    fault plan's crash schedule goes silent at its planned instant.
    Detection runs through the transport's suspicion mechanism (organic
    retransmission exhaustion, plus heartbeat probes from processor 0
    while a crash plan is armed).  On detection the membership epoch is
    bumped and metadata fails over deterministically: lock managership
    migrates to the next live processor in cyclic pid order, lost lock
    tokens are regenerated, live waiters are re-injected in pid order,
    in-flight page/diff fetches are re-issued against live peers,
    copysets are pruned, and barrier/GC completion re-counts against the
    live membership.  A run that would need state only the dead
    processor held (processor 0's initial pages, a diff that was never
    mirrored) records a fatality — surfaced by [Api.run] as [Degraded]
    — and stops cleanly. *)

open Tmk_sim

type t

(** Raised when a page fetch finds no live processor in the page's
    copyset (every copy died with a crash).  Application-context fetches
    convert it into a fatality rather than letting it escape. *)
exception Empty_copyset of { pid : int; page : int }

(** One completed metadata failover. *)
type recovery = {
  rc_pid : int;  (** the dead processor *)
  rc_epoch : int;  (** membership epoch after the death *)
  rc_crash_at : Vtime.t;  (** when the processor went silent *)
  rc_detected_at : Vtime.t;  (** when suspicion declared it dead *)
  rc_locks_rehomed : int;  (** locks whose metadata was rebuilt *)
  rc_retries : int;  (** in-flight operations re-issued *)
}

(** [create config] builds the cluster (engine, transport, nodes, fault
    wiring).  Application processes are spawned by the caller via
    {!Engine.spawn} on {!engine}. *)
val create : Config.t -> t

val config : t -> Config.t
val engine : t -> Engine.t
val transport : t -> Tmk_net.Transport.t

(** [node t pid] — processor [pid]'s DSM state (shared-memory access goes
    through [Node.vm]). *)
val node : t -> int -> Node.t

(** [acquire t ~pid ~lock] — lock acquire (application context). *)
val acquire : t -> pid:int -> lock:int -> unit

(** [release t ~pid ~lock] — lock release (application context).
    @raise Invalid_argument if [pid] does not hold [lock]. *)
val release : t -> pid:int -> lock:int -> unit

(** [barrier t ~pid ~id] — global barrier; every processor must call it
    with the same [id] sequence. *)
val barrier : t -> pid:int -> id:int -> unit

(** [charge_compute t ~pid ns] — account [ns] nanoseconds of application
    computation on [pid] (application context). *)
val charge_compute : t -> pid:int -> int -> unit

(** [live t pid] — whether [pid] has {e not} been declared dead.  (A
    crashed-but-undetected processor is still "live" here.) *)
val live : t -> int -> bool

(** [epoch t] — the current membership epoch (0 with no deaths). *)
val epoch : t -> int

(** [recoveries t] — completed failovers, oldest first. *)
val recoveries : t -> recovery list

(** [fatality t] — set when the run degraded: the processor whose loss
    caused it, and why.  {!Api.run} turns this into [Api.Degraded]. *)
val fatality : t -> (int * string) option
