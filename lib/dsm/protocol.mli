(** The protocol engine: backend-agnostic synchronization plumbing over a
    pluggable {!Backend} coherence engine.

    One value of type {!t} is a running cluster: an {!Tmk_sim.Engine}
    with one DSM node per processor, a {!Tmk_net.Transport} between them,
    lock and barrier managers, and the fault machinery wired into every
    node's {!Tmk_mem.Vm}.

    The operations below are the synchronization API the applications
    program against.  They must be called from the application process of
    the named processor (they block on remote replies).  Shared-memory
    loads and stores go straight through {!Tmk_mem.Vm} accessors on
    [Node.vm]; protection faults re-enter this module automatically,
    dispatching to the selected backend.

    What this module owns, identically under every backend:

    - {b locks} (§3.3): token caching, static managers with cyclic
      failover, request forwarding to the last requester, queued waiters
      drained at release;
    - {b barriers} (§3.4): centralized manager (processor 0), arrival
      collection, per-client release fan-out;
    - {b garbage collection} (§3.6): triggered when the backend's
      [b_want_gc] says so, keep-bitmap exchange, copyset adoption,
      record discard;
    - {b crash handling}: suspicion-driven death detection, membership
      epochs, deterministic metadata failover, heartbeat probing and the
      post-recovery grace window.

    What each message {e carries} and what absorbing it {e means} is the
    backend's business, reached through the hooks of {!Backend.t}: LRC
    grants piggyback interval records whose write notices invalidate
    pages; ERC flushes diffs eagerly at release so synchronization
    carries nothing; SC serializes each page at a per-page manager;
    Tardis ships one scalar timestamp per synchronization and expires
    leases locally; SC-ABD quorum-replicates every word and needs no
    recovery at all.  [Config.protocol] selects the backend;
    {!backend_caps} exposes what the selection supports.

    {b Failure model (crash-stop).}  A processor named in the fault
    plan's crash schedule goes silent at its planned instant; only
    backends with [caps.c_crash_runs] admit such plans ({!create} rejects
    the rest).  Detection runs through the transport's suspicion
    mechanism (organic retransmission exhaustion, plus heartbeat probes
    while a crash plan is armed).  On detection the membership epoch is
    bumped and metadata fails over deterministically: lock managership
    migrates to the next live processor in cyclic pid order, lost lock
    tokens are regenerated, live waiters are re-injected in pid order,
    registered in-flight operations are re-issued against live peers,
    the backend prunes its own per-processor state ([b_on_death]), and
    barrier/GC completion re-counts against the live membership.  A
    backend with [caps.c_zero_recovery] (SC-ABD) rides out the crash by
    construction: nothing is rebuilt and no recovery is recorded.  A run
    that would need state only the dead processor held records a
    fatality — surfaced by [Api.run] as [Degraded] — and stops
    cleanly. *)

open Tmk_sim

type t

(** One completed metadata failover. *)
type recovery = {
  rc_pid : int;  (** the dead processor *)
  rc_epoch : int;  (** membership epoch after the death *)
  rc_crash_at : Vtime.t;  (** when the processor went silent *)
  rc_detected_at : Vtime.t;  (** when suspicion declared it dead *)
  rc_locks_rehomed : int;  (** locks whose metadata was rebuilt *)
  rc_retries : int;  (** in-flight operations re-issued *)
}

(** [backend_caps protocol] — the capability sheet of the coherence
    backend [protocol] selects, without building a cluster.  Used to
    validate configurations (crash plans, [diff_backup]) and to decide
    which run-time checks apply (e.g. vector-timestamp invariants only
    where [c_vt_on_wire]). *)
val backend_caps : Config.protocol -> Backend.caps

(** [create config] builds the cluster (engine, transport, nodes, the
    selected coherence backend, fault wiring).  Application processes are
    spawned by the caller via {!Engine.spawn} on {!engine}.
    @raise Invalid_argument if [config] asks for a capability the
    selected backend lacks (crash schedule without [c_crash_runs],
    [diff_backup] without [c_diff_backup]). *)
val create : Config.t -> t

val config : t -> Config.t
val engine : t -> Engine.t
val transport : t -> Tmk_net.Transport.t

(** [node t pid] — processor [pid]'s DSM state (shared-memory access goes
    through [Node.vm]). *)
val node : t -> int -> Node.t

(** [acquire t ~pid ~lock] — lock acquire (application context). *)
val acquire : t -> pid:int -> lock:int -> unit

(** [release t ~pid ~lock] — lock release (application context).
    @raise Invalid_argument if [pid] does not hold [lock]. *)
val release : t -> pid:int -> lock:int -> unit

(** [barrier t ~pid ~id] — global barrier; every processor must call it
    with the same [id] sequence. *)
val barrier : t -> pid:int -> id:int -> unit

(** [charge_compute t ~pid ns] — account [ns] nanoseconds of application
    computation on [pid] (application context). *)
val charge_compute : t -> pid:int -> int -> unit

(** [live t pid] — whether [pid] has {e not} been declared dead.  (A
    crashed-but-undetected processor is still "live" here.) *)
val live : t -> int -> bool

(** [epoch t] — the current membership epoch (0 with no deaths). *)
val epoch : t -> int

(** [recoveries t] — completed failovers, oldest first.  Empty when no
    processor died, and also when a [c_zero_recovery] backend absorbed
    every death without rebuilding anything. *)
val recoveries : t -> recovery list

(** [fatality t] — set when the run degraded: the processor whose loss
    caused it, and why.  {!Api.run} turns this into [Api.Degraded]. *)
val fatality : t -> (int * string) option
