(** The TreadMarks programming interface.

    Applications are SPMD: {!run} starts the same function once per
    simulated processor.  Each instance allocates shared memory (every
    processor must perform the identical allocation sequence, as in the
    real TreadMarks' [Tmk_malloc] convention), reads and writes it through
    the typed accessors, synchronizes with locks and barriers, and
    accounts for its local computation with {!compute_flops}/{!compute_ns}
    (the simulator cannot observe real instruction streams, so application
    work is charged explicitly; shared-memory accesses themselves cost
    nothing unless they fault, exactly like real loads and stores).

    A minimal program:

    {[
      let config = { Config.default with nprocs = 4; pages = 16 } in
      let result =
        Api.run config (fun ctx ->
            let arr = Api.falloc ctx 100 in
            if Api.pid ctx = 0 then
              for i = 0 to 99 do Api.fset ctx arr i (float_of_int i) done;
            Api.barrier ctx 0;
            (* everyone reads what processor 0 wrote *)
            assert (Api.fget ctx arr 42 = 42.0))
      in
      Fmt.pr "took %a@." Tmk_sim.Vtime.pp result.Api.total_time
    ]} *)

open Tmk_sim

(** Per-processor handle passed to the application function. *)
type ctx

(** Everything measured during a run. *)
type run_result = {
  cluster : Protocol.t;  (** the cluster, for post-run inspection *)
  total_time : Vtime.t;  (** makespan: latest process finish time *)
  proc_finish : Vtime.t array;
  busy : Vtime.t array array;  (** [busy.(pid).(Category.index c)] *)
  idle : Vtime.t array;  (** makespan minus busy, per processor *)
  stats : Stats.t array;  (** per-node protocol counters *)
  total_stats : Stats.t;  (** cluster-wide sum *)
  messages : int;  (** frames handed to the medium *)
  bytes : int;  (** on-wire bytes including headers *)
  retransmissions : int;
  frames_coalesced : int;
      (** frames saved by batching ([Config.batching]); for identical
          protocol activity, an unbatched run sends
          [messages + frames_coalesced] frames *)
  stopped : string option;
      (** set when the engine stopped before quiescence (e.g. a peer was
          unreachable under a partition fault plan) *)
  recoveries : Protocol.recovery list;
      (** completed crash failovers, oldest first (empty without a crash
          plan) *)
}

(** Raised by {!run} when a crash made the run unable to complete: the
    surviving processors needed consistency state that only the dead
    processor held.  [pid] is the processor whose loss caused the
    degradation; partial measurements are discarded. *)
exception Degraded of { pid : int; reason : string }

(** [run config app] — build a cluster, run [app] once per processor to
    completion, and collect the measurements.

    With a crash plan ([Fault_plan.crashes]), processors that die are
    reported with their crash instant in [proc_finish] and each failover
    appears in [recoveries]; the run completes with the survivors' work.

    [?trace], when given, installs the typed event sink into the
    configuration (overriding [config.trace]) so the caller can export or
    analyze the run's full protocol event stream afterwards — the single
    entry point for traced and untraced runs alike.

    @raise Degraded when a crash makes completion impossible. *)
val run : ?trace:Tmk_trace.Sink.t -> Config.t -> (ctx -> unit) -> run_result

(** {2 Identity} *)

val pid : ctx -> int
val nprocs : ctx -> int
val config : ctx -> Config.t

(** [prng ctx] — a per-processor deterministic random stream (seeded from
    the run seed and the processor id). *)
val prng : ctx -> Tmk_util.Prng.t

(** {2 Shared memory} *)

(** [malloc ctx ~bytes] — allocate shared memory; returns the base
    address.  Every processor must allocate identically (checked:
    mismatched sequences raise).  [align] defaults to 8; pass
    [Tmk_mem.Vm.page_size] to give a data structure its own page(s) and
    avoid false sharing. *)
val malloc : ?align:int -> ctx -> bytes:int -> int

(** Typed shared arrays (convenience over {!malloc} + raw accessors). *)
type farray

type iarray

val falloc : ?align:int -> ctx -> int -> farray
val ialloc : ?align:int -> ctx -> int -> iarray
val flen : farray -> int
val ilen : iarray -> int
val fget : ctx -> farray -> int -> float
val fset : ctx -> farray -> int -> float -> unit
val iget : ctx -> iarray -> int -> int
val iset : ctx -> iarray -> int -> int -> unit

(** Raw byte-address accessors. *)
val read_f64 : ctx -> int -> float

val write_f64 : ctx -> int -> float -> unit
val read_int : ctx -> int -> int
val write_int : ctx -> int -> int -> unit

(** {2 Synchronization} *)

val acquire : ctx -> int -> unit
val release : ctx -> int -> unit

(** [with_lock ctx lock f] — acquire, run [f], release (also on
    exception). *)
val with_lock : ctx -> int -> (unit -> 'a) -> 'a

val barrier : ctx -> int -> unit

(** [unsynchronized ctx f] — run [f], declaring its shared accesses
    intentionally racy.  TreadMarks programs are expected to be
    data-race-free, but the paper's TSP reads the global bound without
    the lock (§5.2) because a stale bound only costs extra search; this
    is the annotation for such algorithmic races.  When
    [Config.check] carries a race detector, accesses inside [f] are
    invisible to it (no findings, and no frontier updates for later
    accesses to be compared against); without a detector this is just
    [f ()]. *)
val unsynchronized : ctx -> (unit -> 'a) -> 'a

(** {2 Collectives}

    Composed from barriers over a hidden shared slot array (allocated
    lazily on the first reduce, identically on every processor).  All of
    these are collective operations: every processor must call them at the
    same point of the SPMD program, like a barrier.  Barrier ids at and
    above [2{^30}] are reserved for their internal use.

    Every processor folds the per-processor contributions in pid order,
    so all processors return the identical (bit-for-bit) result — no
    "pid 0 accumulates under a lock, everyone barriers, then everyone
    re-reads" boilerplate, and no order-dependent floating-point drift. *)

(** [reduce_f ctx f v] — fold every processor's [v] with [f] (in pid
    order, starting from processor 0's contribution) and return the same
    total on every processor.  [f] must be associative enough for the
    caller's purpose; the fold order is fixed and identical everywhere. *)
val reduce_f : ctx -> (float -> float -> float) -> float -> float

(** [reduce_i ctx f v] — integer analogue of {!reduce_f}. *)
val reduce_i : ctx -> (int -> int -> int) -> int -> int

(** [bcast ?root ctx f] — [f] runs on [root] (default 0) only, then
    everyone meets at a barrier: the standard "one processor initializes
    shared data, all wait" opening.  [f] must not allocate shared memory
    (allocate on every processor first, then broadcast the contents). *)
val bcast : ?root:int -> ctx -> (unit -> unit) -> unit

(** {2 Computation accounting} *)

(** [compute_ns ctx ns] — charge [ns] nanoseconds of application work. *)
val compute_ns : ctx -> int -> unit

(** [compute_flops ctx n] — charge [n] floating-point operations at the
    configured [flop_ns] rate. *)
val compute_flops : ctx -> int -> unit
