let id_bytes = 2
let write_notice_bytes = 2

let interval_header_bytes ~nprocs = id_bytes + Vector_time.bytes nprocs

let intervals_bytes ~nprocs counts =
  List.fold_left
    (fun acc notices -> acc + interval_header_bytes ~nprocs + (notices * write_notice_bytes))
    0 counts

let lock_request_bytes ~nprocs = (2 * id_bytes) + Vector_time.bytes nprocs

let lock_grant_bytes ~nprocs counts = (2 * id_bytes) + intervals_bytes ~nprocs counts

let barrier_arrival_bytes ~nprocs counts =
  (2 * id_bytes) + Vector_time.bytes nprocs + intervals_bytes ~nprocs counts

let barrier_release_bytes ~nprocs counts = (2 * id_bytes) + intervals_bytes ~nprocs counts

let diff_request_bytes n_entries = id_bytes + (n_entries * (2 * id_bytes))

let diff_reply_bytes encoded_sizes =
  List.fold_left (fun acc sz -> acc + (3 * id_bytes) + sz) 0 encoded_sizes

let gathered_diff_request_bytes n_entries = id_bytes + (n_entries * (3 * id_bytes))

let gathered_diff_reply_bytes encoded_sizes =
  List.fold_left (fun acc sz -> acc + (4 * id_bytes) + sz) 0 encoded_sizes

let page_request_bytes = 2 * id_bytes
let page_reply_bytes = id_bytes + Tmk_mem.Vm.page_size

let erc_update_bytes encoded_size = (2 * id_bytes) + encoded_size
let ack_bytes = id_bytes

let gc_keep_bitmap_bytes ~npages = id_bytes + ((npages + 7) / 8)

(* Failure machinery: a heartbeat probe is an empty frame plus ids; a
   death notice names the dead processor and the new epoch; a diff mirror
   carries one (proc, interval, page) key plus the encoded diff. *)
let heartbeat_bytes = 2 * id_bytes
let death_notice_bytes = 2 * id_bytes
let diff_backup_bytes encoded_size = (3 * id_bytes) + encoded_size
