let id_bytes = 2
let write_notice_bytes = 2

let interval_header_bytes ~nprocs = id_bytes + Vector_time.bytes nprocs

let intervals_bytes ~nprocs counts =
  List.fold_left
    (fun acc notices -> acc + interval_header_bytes ~nprocs + (notices * write_notice_bytes))
    0 counts

let lock_request_bytes ~nprocs = (2 * id_bytes) + Vector_time.bytes nprocs

let lock_grant_bytes ~nprocs counts = (2 * id_bytes) + intervals_bytes ~nprocs counts

let barrier_arrival_bytes ~nprocs counts =
  (2 * id_bytes) + Vector_time.bytes nprocs + intervals_bytes ~nprocs counts

let barrier_release_bytes ~nprocs counts = (2 * id_bytes) + intervals_bytes ~nprocs counts

let diff_request_bytes n_entries = id_bytes + (n_entries * (2 * id_bytes))

let diff_reply_bytes encoded_sizes =
  List.fold_left (fun acc sz -> acc + (3 * id_bytes) + sz) 0 encoded_sizes

let gathered_diff_request_bytes n_entries = id_bytes + (n_entries * (3 * id_bytes))

let gathered_diff_reply_bytes encoded_sizes =
  List.fold_left (fun acc sz -> acc + (4 * id_bytes) + sz) 0 encoded_sizes

let page_request_bytes = 2 * id_bytes
let page_reply_bytes = id_bytes + Tmk_mem.Vm.page_size

let erc_update_bytes encoded_size = (2 * id_bytes) + encoded_size
let ack_bytes = id_bytes

let gc_keep_bitmap_bytes ~npages = id_bytes + ((npages + 7) / 8)

(* Failure machinery: a heartbeat probe is an empty frame plus ids; a
   death notice names the dead processor and the new epoch; a diff mirror
   carries one (proc, interval, page) key plus the encoded diff. *)
let heartbeat_bytes = 2 * id_bytes
let death_notice_bytes = 2 * id_bytes
let diff_backup_bytes encoded_size = (3 * id_bytes) + encoded_size

(* Tardis: logical timestamps are 64-bit counters; synchronization
   messages carry one scalar timestamp instead of a vector. *)
let ts_bytes = 8
let tardis_lock_request_bytes = 2 * id_bytes
let tardis_lock_grant_bytes = (2 * id_bytes) + ts_bytes
let tardis_barrier_arrival_bytes = (2 * id_bytes) + ts_bytes
let tardis_barrier_release_bytes = (2 * id_bytes) + ts_bytes
let tardis_page_request_bytes = (2 * id_bytes) + (2 * ts_bytes)
let tardis_page_reply_bytes ~with_page =
  id_bytes + (2 * ts_bytes) + if with_page then Tmk_mem.Vm.page_size else 0

(* SC-ABD: word-granularity last-writer-wins replicas.  A read reply
   carries the page plus one compressed (32-bit) timestamp per 8-byte
   word; a store carries one diff plus the writer's timestamp per page. *)
let abd_words_per_page = Tmk_mem.Vm.page_size / 8
let abd_wordts_bytes = abd_words_per_page * 4
let abd_read_request_bytes = 2 * id_bytes
let abd_read_reply_bytes = id_bytes + Tmk_mem.Vm.page_size + abd_wordts_bytes
let abd_ts_query_bytes n_pages = id_bytes + (n_pages * id_bytes)
let abd_ts_reply_bytes n_pages = id_bytes + (n_pages * ts_bytes)
let abd_store_bytes encoded_sizes =
  List.fold_left (fun acc sz -> acc + id_bytes + ts_bytes + sz) id_bytes encoded_sizes
let abd_writeback_bytes = id_bytes + Tmk_mem.Vm.page_size + abd_wordts_bytes
let abd_sync_bytes = 2 * id_bytes
