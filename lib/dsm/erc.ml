(* Eager release consistency (§5.1): at every release and barrier
   arrival, diff every dirty page and push the updates to every cacher
   (DASH-style), blocking until all are acknowledged.  Locks and barriers
   carry no consistency payload and pages are never invalidated. *)

open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Rle = Tmk_util.Rle
module Bitset = Tmk_util.Bitset

let app_charge = Cluster.app_charge
let h_charge = Cluster.h_charge
let atomically = Cluster.atomically

let caps =
  {
    Backend.c_name = Config.protocol_name Config.Erc;
    c_crash_runs = false;
    c_zero_recovery = false;
    c_diff_backup = false;
    c_vt_on_wire = true;
  }

type t = {
  cl : Cluster.t;
  dir : Bitset.t array;  (* copyset directory (one entry per page) *)
  pending : (int, Rle.t list) Hashtbl.t array;  (* updates for absent pages *)
  inflight : int array;  (* update messages not yet delivered, per page *)
}

(* Cold fetch through the global directory; updates that raced ahead of
   the base copy are queued and applied on installation.  A provider with
   update messages still in flight to it cannot produce a current
   snapshot, and the requester is not yet a copyset member so it would
   never receive those updates: the serve stalls (the handler re-arms
   itself) until the page's in-flight update count drains.  Flushes are
   bursts bounded by their acknowledgements, so the wait is short. *)
let fetch_base t pid page =
  let cl = t.cl in
  let node = cl.Cluster.nodes.(pid) in
  let provider = Cluster.choose_provider_lowest cl t.dir.(page) ~self:pid ~page in
  app_charge Category.Tmk_other Cpu.page_request_build;
  let mb = Transport.mailbox () in
  let rec serve h =
    if t.inflight.(page) > 0 then begin
      h_charge h Category.Tmk_other (Vtime.us 5);
      Engine.post_handler cl.Cluster.engine ~pid:provider
        ~at:(Vtime.add (Engine.hnow h) (Vtime.us 200))
        serve
    end
    else begin
      h_charge h Category.Tmk_mem Costs.page_copy;
      (* Joining the copyset here makes every later flush reach the new
         member (possibly before the base installs; see [t.pending]). *)
      Bitset.add t.dir.(page) pid;
      Transport.hsend_value ~label:"page-fetch-reply" cl.Cluster.transport h ~dst:pid
        ~bytes:Wire.page_reply_bytes mb
        (Vm.page_snapshot cl.Cluster.nodes.(provider).Node.vm page)
    end
  in
  Transport.send ~label:"page-fetch" cl.Cluster.transport ~src:pid ~dst:provider
    ~bytes:Wire.page_request_bytes ~deliver:serve;
  let bytes = Transport.await_value cl.Cluster.transport mb in
  if Engine.tracing cl.Cluster.engine then
    Cluster.emit cl ~pid (Tmk_trace.Event.Page_fetch { page; from_ = provider });
  atomically (fun charge ->
      Node.validate_page node page bytes ~charge;
      (match Hashtbl.find_opt t.pending.(pid) page with
      | None -> ()
      | Some diffs ->
        List.iter
          (fun diff ->
            charge Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
            Vm.patch node.Node.vm page diff;
            node.Node.stats.Stats.diffs_applied <- node.Node.stats.Stats.diffs_applied + 1;
            if Engine.tracing cl.Cluster.engine then
              Cluster.emit cl ~pid
                (Tmk_trace.Event.Diff_apply
                   (* queued while the base copy was in flight; the sender's
                      identity was not kept *)
                   { page; bytes = Rle.payload_size diff; proc = -1; interval = -1 }))
          (List.rev diffs);
        Hashtbl.remove t.pending.(pid) page);
      charge Category.Unix_mem Costs.mprotect;
      Vm.set_prot node.Node.vm page Vm.Read_only)

let miss t pid page =
  Cluster.note_miss t.cl pid page;
  (* Update protocol: pages are never invalidated, so a miss is always a
     cold fetch. *)
  assert (not t.cl.Cluster.nodes.(pid).Node.pages.(page).Node.pg_has_copy);
  fetch_base t pid page

(* Release flush (§5.1): diff every dirty page and push updates to every
   cacher, then wait for all acknowledgements. *)
let flush t pid =
  let cl = t.cl in
  let node = cl.Cluster.nodes.(pid) in
  let dirty = node.Node.dirty in
  node.Node.dirty <- [];
  if dirty <> [] then begin
    (* First pass: create every diff and collect the update fan-out so the
       acknowledgement count is known before any ack can arrive. *)
    Cluster.Log.debug (fun m ->
        m "[t=%d] erc flush by %d, %d dirty pages" (Engine.now cl.Cluster.engine) pid
          (List.length dirty));
    let updates =
      List.filter_map
        (fun page ->
          let entry = node.Node.pages.(page) in
          match entry.Node.pg_twin with
          | None -> None
          | Some twin ->
            let diff =
              atomically (fun charge ->
                  charge Category.Tmk_other Cpu.erc_flush_per_page;
                  charge Category.Tmk_mem (Costs.diff_create Vm.page_size);
                  let diff = Vm.diff_against node.Node.vm page ~twin in
                  entry.Node.pg_twin <- None;
                  node.Node.stats.Stats.diffs_created <-
                    node.Node.stats.Stats.diffs_created + 1;
                  node.Node.stats.Stats.diff_bytes_created <-
                    node.Node.stats.Stats.diff_bytes_created + Rle.encoded_size diff;
                  if Engine.tracing cl.Cluster.engine then
                    Cluster.emit cl ~pid
                      (Tmk_trace.Event.Diff_create
                         { page; bytes = Rle.encoded_size diff; proc = pid; interval = -1 });
                  charge Category.Unix_mem Costs.mprotect;
                  Vm.set_prot node.Node.vm page Vm.Read_only;
                  diff)
            in
            let members = List.filter (fun q -> q <> pid) (Bitset.to_list t.dir.(page)) in
            (* Reserve the deliveries while still atomic with the
               membership read, so concurrent cold fetches stall until
               these updates land (see [fetch_base]). *)
            t.inflight.(page) <- t.inflight.(page) + List.length members;
            if members = [] then None else Some (page, diff, members))
        dirty
    in
    (* Regroup the (page → members) fan-out into per-member batches: one
       update message per cacher carrying all of its pages' diffs (one
       frame when batching, back-to-back fragments otherwise), answered by
       one aggregate acknowledgement. *)
    let by_member = Hashtbl.create 8 in
    List.iter
      (fun (page, diff, members) ->
        List.iter
          (fun m ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_member m) in
            Hashtbl.replace by_member m ((page, diff) :: prev))
          members)
      updates;
    let batches =
      Hashtbl.fold (fun m rev_pages acc -> (m, List.rev rev_pages) :: acc) by_member []
    in
    if batches <> [] then begin
      let remaining = ref (List.length batches) in
      let all_acked = Engine.Ivar.create () in
      let send_batch (m, entries) =
        let n = List.length entries in
        let bytes =
          List.fold_left
            (fun acc (_, diff) -> acc + Wire.erc_update_bytes (Rle.encoded_size diff))
            0 entries
        in
        let deliver h =
          let mnode = cl.Cluster.nodes.(m) in
          List.iter
            (fun (page, diff) ->
              t.inflight.(page) <- t.inflight.(page) - 1;
              Cluster.Log.debug (fun msg ->
                  msg "[t=%d] erc update page %d from %d at %d (%d runs, has_copy=%b)"
                    (Engine.now cl.Cluster.engine) page pid m
                    (Tmk_util.Rle.run_count diff)
                    mnode.Node.pages.(page).Node.pg_has_copy);
              if mnode.Node.pages.(page).Node.pg_has_copy then begin
                h_charge h Category.Tmk_mem (Costs.diff_apply (Rle.payload_size diff));
                Vm.patch mnode.Node.vm page diff;
                (match mnode.Node.pages.(page).Node.pg_twin with
                | Some tw -> Rle.apply diff tw
                | None -> ());
                mnode.Node.stats.Stats.diffs_applied <-
                  mnode.Node.stats.Stats.diffs_applied + 1;
                if Engine.htracing h then
                  Engine.hemit h
                    (Tmk_trace.Event.Diff_apply
                       { page; bytes = Rle.payload_size diff; proc = pid; interval = -1 })
              end
              else begin
                (* The base copy is still in flight: queue the update. *)
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt t.pending.(m) page)
                in
                Hashtbl.replace t.pending.(m) page (diff :: prev)
              end)
            entries;
          Transport.hsend ~label:"erc-ack" ~parts:n cl.Cluster.transport h ~dst:pid
            ~bytes:(n * Wire.ack_bytes)
            ~deliver:(fun ha ->
              decr remaining;
              if !remaining = 0 then
                Engine.fill cl.Cluster.engine all_acked ~at:(Engine.hnow ha) ())
        in
        Transport.send ~label:"erc-update" ~parts:n cl.Cluster.transport ~src:pid ~dst:m
          ~bytes ~deliver
      in
      (* Send in member order for determinism (by_member is a Hashtbl). *)
      List.iter send_batch (List.sort (fun (a, _) (b, _) -> compare a b) batches);
      (* The release "is not allowed to perform" until every update is
         acknowledged (section 5.1's DASH-style requirement). *)
      Cluster.Log.debug (fun m ->
          m "[t=%d] erc flush by %d awaiting %d acks" (Engine.now cl.Cluster.engine) pid
            !remaining);
      Engine.await all_acked;
      Cluster.Log.debug (fun m ->
          m "[t=%d] erc flush by %d complete" (Engine.now cl.Cluster.engine) pid)
    end
  end

let make cl =
  let nprocs = cl.Cluster.cfg.Config.nprocs in
  let dir =
    Array.init cl.Cluster.cfg.Config.pages (fun _ ->
        let b = Bitset.create nprocs in
        Bitset.add b 0;
        b)
  in
  let t =
    {
      cl;
      dir;
      pending = Array.init nprocs (fun _ -> Hashtbl.create 4);
      inflight = Array.make cl.Cluster.cfg.Config.pages 0;
    }
  in
  {
    Backend.b_caps = caps;
    b_handle_fault =
      (fun ~pid kind page -> Cluster.rc_fault cl pid kind page ~miss:(fun () -> miss t pid page));
    b_lock_request_bytes = Wire.lock_request_bytes ~nprocs;
    b_pre_acquire = Backend.noop_pid;
    b_make_acquire =
      (fun ~pid:_ -> { Backend.a_grant = (fun ~granter ~charge -> Backend.plain_grant ~nprocs ~granter ~charge) });
    b_pre_release = (fun ~pid -> flush t pid);
    b_pre_barrier = (fun ~pid -> flush t pid);
    b_barrier_begin = Backend.noop_pid;
    b_make_arrival = (fun ~pid:_ -> Backend.plain_arrival ~nprocs);
    b_barrier_depart = Backend.noop_pid;
    b_want_gc = (fun ~pid:_ -> false);
    b_gc_validate = Backend.noop_pid;
    b_on_death = (fun dead_pid -> Array.iter (fun d -> Bitset.remove d dead_pid) t.dir);
  }
