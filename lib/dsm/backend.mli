(** The coherence-backend interface.

    A {e backend} is one consistency engine — LRC, ERC, SC, Tardis,
    SC-ABD — packaged behind a first-class record of hooks so the
    protocol core ({!Protocol}) stays backend-agnostic: it owns the
    transport, lock/barrier token machinery, membership and failure
    detection, garbage collection plumbing and tracing, and calls into
    the selected backend at the points where consistency actions happen
    (faults, grant assembly, sync absorption, flushes, GC validation).

    Payload values are closures: the simulator ships message contents as
    opaque OCaml values, so a backend encodes "what travels on this
    grant/release" as a [payload] whose [p_absorb] runs at the receiver.
    Wire sizes are explicit ([p_bytes]) because the simulated network
    charges for them. *)

(** Capability flags, used by {!Protocol.create} to validate a
    configuration against the selected backend (replacing the historic
    Lrc-only [invalid_arg] checks in [Config.validate]) and by the
    checkers to gate backend-specific invariants. *)
type caps = {
  c_name : string;  (** matches {!Config.protocol_name} *)
  c_crash_runs : bool;  (** crash schedules are admissible *)
  c_zero_recovery : bool;
      (** crashes are tolerated by construction: detection still runs,
          but no recovery protocol (lock rebuild aside) is required and
          a crash that re-homes nothing is not counted as a recovery *)
  c_diff_backup : bool;  (** [Config.diff_backup] applies *)
  c_vt_on_wire : bool;
      (** synchronization messages carry vector timestamps; when [false]
          the invariant oracle's vector-time checks are gated off *)
}

(** One backend-defined message payload: its wire size, its logical part
    count (for transport batching), and the receiver-side absorption
    (run under [Cluster.atomically] in application context, or with a
    handler charge in handler context). *)
type payload = {
  p_bytes : int;
  p_parts : int;
  p_absorb : charge:Node.charge -> unit;
}

(** A barrier arrival: what the client sends to the manager
    ([v_bytes]/[v_parts]/[v_absorb_mgr], the latter run in the manager's
    receive handler) and how the manager later builds this client's
    release ([v_release], run at the manager inside one atomic section
    per client). *)
type arrival = {
  v_bytes : int;
  v_parts : int;
  v_absorb_mgr : charge:Node.charge -> unit;
  v_release : charge:Node.charge -> payload;
}

(** A lock acquire in flight: [a_grant] travels inside the request and
    is invoked by whichever processor ends up granting (it captures the
    requester's consistency state at request time — its vector timestamp
    under LRC, its logical timestamp under Tardis); the returned
    payload's [p_absorb] runs back at the requester. *)
type acq = { a_grant : granter:int -> charge:Node.charge -> payload }

type t = {
  b_caps : caps;
  b_handle_fault : pid:int -> Tmk_mem.Vm.access -> int -> unit;
      (** application-context fault entry (the SIGSEGV analogue);
          returns when the access is legal *)
  b_lock_request_bytes : int;  (** wire size of lock request/forward frames *)
  b_pre_acquire : pid:int -> unit;
      (** run at every acquire entry, before the cached-token check
          (SC-ABD flushes its dirty pages and drops its cached copies
          here so the critical section reads fresh quorum state) *)
  b_make_acquire : pid:int -> acq;
      (** build the consistency side of a remote acquire (app context,
          before the request is sent) *)
  b_pre_release : pid:int -> unit;
      (** run before a release hands the token on (ERC/SC-ABD flush) *)
  b_pre_barrier : pid:int -> unit;  (** run at barrier arrival, before anything else *)
  b_barrier_begin : pid:int -> unit;
      (** run after the arrival-build charges (LRC closes its interval here) *)
  b_make_arrival : pid:int -> arrival;  (** build the arrival (app context) *)
  b_barrier_depart : pid:int -> unit;
      (** manager-side hook after all releases are sent (Tardis sweeps
          its leases here; the clients sweep inside their release
          payload's absorb) *)
  b_want_gc : pid:int -> bool;  (** request consistency-record GC at the next barrier *)
  b_gc_validate : pid:int -> unit;
      (** GC step 1: bring every locally modified page to a fetchable
          state before records are discarded *)
  b_on_death : int -> unit;  (** failover hook: drop the dead processor
          from backend-private metadata (copysets, directories) *)
}

(** {2 Plain-synchronization helpers}

    Shared by backends whose locks and barriers carry no consistency
    payload beyond the fixed header (ERC, SC: memory is kept consistent
    by updates/invalidations, not by sync piggybacking). *)

val plain_absorb : charge:Node.charge -> unit
val plain_grant : nprocs:int -> granter:int -> charge:Node.charge -> payload
val plain_arrival : nprocs:int -> arrival
val noop_pid : pid:'a -> unit
