open Tmk_sim

(* Calibration (ATM/AAL3/4 kernel costs from Tmk_net.Params):

   lock, manager-is-releaser (827 µs):
     build(100) + send(87.2) + wire(14.2)
     + deliver_handler(165) + recv(87.2) + grant(97) + send(80.8) + wire(14.2)
     + deliver_blocked(80) + recv(80.8) + incorporate(20)           = 826.5

   lock, one forwarding hop (1149 µs paper, 1171 µs model):
     adds deliver_handler(165) + recv(80) + forward(5) + send(80) + wire(14.2)

   8-processor barrier (2186 µs paper, ~2178 µs model): clients arrive
   together; the manager's SIGIO handler pays the full dispatch once and
   drains the remaining six arrivals back-to-back.

   4096-byte page fault (2792 µs paper, ~2791 µs model):
     sigsegv(45) + fault_dispatch(40) + page_request_build(55) + send(80)
     + wire(14.2) + deliver_handler(165) + recv(80) + page_copy(35)
     + send(80 + 4096·0.2) + wire(10 + 4104·0.08)
     + deliver_blocked(80) + recv(80 + 4096·0.2)
     + page_copy(35) + mprotect(25) *)

(* The lock-path remainders are split between kernel work (signal masking
   around the lock internals, socket bookkeeping: Unix_comm) and DSM code
   (request marshalling: Tmk_other), preserving the calibrated totals.
   This reflects the paper's accounting, where Unix overhead is at least
   three times the TreadMarks overhead for every application (Figure 5)
   and TreadMarks overhead is dominated by memory management, not
   synchronization handling (Figure 7). *)
let lock_request_build = Vtime.us 100
let lock_request_build_kernel = Vtime.us 70
let lock_request_build_dsm = Vtime.us 30
let lock_grant = Vtime.us 97
let lock_grant_kernel = Vtime.us 60
let lock_grant_dsm = Vtime.us 37
let lock_forward = Vtime.us 5
let lock_local = Vtime.us 4

let incorporate_base = Vtime.us 20
let incorporate_per_interval = Vtime.us 6
let incorporate_per_notice = Vtime.us 2

let interval_close_base = Vtime.us 12
let interval_close_per_page = Vtime.us 3

let barrier_arrival_build = Vtime.us 40
let barrier_arrival_build_kernel = Vtime.us 25
let barrier_arrival_build_dsm = Vtime.us 15
let barrier_release_per_client = Vtime.us 10

let fault_dispatch = Vtime.us 40
let page_request_build = Vtime.us 55
let diff_lookup_per_entry = Vtime.us 4
let diff_cache_hit = Vtime.us 1
let miss_plan = Vtime.us 2

let erc_flush_per_page = Vtime.us 8
let gc_per_record = Vtime.ns 300

(* Tardis: one manager bookkeeping step per protocol action (timestamp
   compare/bump, queue maintenance) — same magnitude as the SC manager. *)
let tardis_manager = Vtime.us 25
let lease_sweep_per_page = Vtime.ns 200

(* SC-ABD: replica-side service of one quorum message (timestamp scan or
   word-filtered store application). *)
let abd_serve = Vtime.us 15
let abd_merge_per_reply = Vtime.us 10
