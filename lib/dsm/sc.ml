open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Bitset = Tmk_util.Bitset

type kind = Read_miss | Write_miss

type request = { rq_pid : int; rq_kind : kind; rq_done : unit Engine.Ivar.t }

(* The manager-side record of one page: current owner, the processors
   holding read copies, and the FIFO of requests still to serve.  At most
   one request per page is in flight ([current]). *)
type page_state = {
  ps_page : int;
  mutable ps_owner : int;
  ps_copyset : Bitset.t;
  mutable ps_current : request option;
  mutable ps_awaiting_acks : int;
  ps_queue : request Queue.t;
}

type t = {
  engine : Engine.t;
  transport : Transport.t;
  nodes : Node.t array;
  pstates : page_state array;
}

let nprocs t = Array.length t.nodes
let manager_of t page = page mod nprocs t

(* manager-side bookkeeping per protocol step *)
let manager_cpu = Vtime.us 25

let create ~engine ~transport ~nodes ~pages =
  let make page =
    let copyset = Bitset.create (Array.length nodes) in
    Bitset.add copyset 0;
    {
      ps_page = page;
      ps_owner = 0;
      ps_copyset = copyset;
      ps_current = None;
      ps_awaiting_acks = 0;
      ps_queue = Queue.create ();
    }
  in
  { engine; transport; nodes; pstates = Array.init pages make }

let h_charge h cat dt = Engine.hcharge h cat dt

(* ------------------------------------------------------------------ *)
(* Request completion: runs at the manager, updates ownership records
   and starts the next queued request.                                  *)

let rec complete t st rq h =
  h_charge h Category.Tmk_other manager_cpu;
  (match rq.rq_kind with
  | Read_miss -> Bitset.add st.ps_copyset rq.rq_pid
  | Write_miss ->
    st.ps_owner <- rq.rq_pid;
    Bitset.clear st.ps_copyset;
    Bitset.add st.ps_copyset rq.rq_pid);
  st.ps_current <- None;
  match Queue.take_opt st.ps_queue with
  | None -> ()
  | Some next -> start t st next h

(* Grant the access at the requester: install the page if one travelled,
   set the protection, wake the application, and notify the manager. *)
and grant_at_requester t st rq ~page_bytes ~prot h =
  let node = t.nodes.(rq.rq_pid) in
  (match page_bytes with
  | Some bytes ->
    h_charge h Category.Tmk_mem Costs.page_copy;
    Vm.install_page node.Node.vm st.ps_page bytes;
    node.Node.pages.(st.ps_page).Node.pg_has_copy <- true;
    node.Node.stats.Stats.page_fetches <- node.Node.stats.Stats.page_fetches + 1;
    (* the shipped copy always comes from the current owner (ownership
       records update only afterwards, in [complete]) *)
    if Engine.htracing h then
      Engine.hemit h
        (Tmk_trace.Event.Page_fetch { page = st.ps_page; from_ = st.ps_owner })
  | None -> ());
  h_charge h Category.Unix_mem Costs.mprotect;
  Vm.set_prot node.Node.vm st.ps_page prot;
  Engine.fill t.engine rq.rq_done ~at:(Engine.hnow h) ();
  Transport.hsend ~label:"sc-complete" t.transport h ~dst:(manager_of t st.ps_page)
    ~bytes:Wire.ack_bytes ~deliver:(fun hm -> complete t st rq hm)

(* Ownership (and page, when the writer holds no current copy) transfer
   from the old owner. *)
and owner_transfer_write t st rq ~need_page h =
  let onode = t.nodes.(st.ps_owner) in
  let page_bytes =
    if need_page then begin
      h_charge h Category.Tmk_mem Costs.page_copy;
      Some (Vm.page_snapshot onode.Node.vm st.ps_page)
    end
    else None
  in
  (* the old owner's copy is invalidated by the write *)
  h_charge h Category.Unix_mem Costs.mprotect;
  Vm.set_prot onode.Node.vm st.ps_page Vm.No_access;
  onode.Node.pages.(st.ps_page).Node.pg_has_copy <- false;
  let bytes = if need_page then Wire.page_reply_bytes else Wire.ack_bytes in
  Transport.hsend ~label:"sc-transfer" t.transport h ~dst:rq.rq_pid ~bytes
    ~deliver:(grant_at_requester t st rq ~page_bytes ~prot:Vm.Read_write)

(* After all invalidation acknowledgements: move the page to the writer. *)
and write_transfer t st rq h =
  if st.ps_owner = rq.rq_pid then
    (* the writer already owns the page (it was downgraded by readers):
       a pure upgrade, no transfer *)
    Transport.hsend ~label:"sc-upgrade" t.transport h ~dst:rq.rq_pid ~bytes:Wire.ack_bytes
      ~deliver:(grant_at_requester t st rq ~page_bytes:None ~prot:Vm.Read_write)
  else begin
    let need_page = not (Bitset.mem st.ps_copyset rq.rq_pid) in
    Transport.hsend ~label:"sc-ownership" t.transport h ~dst:st.ps_owner
      ~bytes:Wire.page_request_bytes ~deliver:(owner_transfer_write t st rq ~need_page)
  end

(* Serve a read at the owner: downgrade to read-only, ship the page. *)
and owner_serve_read t st rq h =
  let onode = t.nodes.(st.ps_owner) in
  if Vm.prot onode.Node.vm st.ps_page = Vm.Read_write then begin
    h_charge h Category.Unix_mem Costs.mprotect;
    Vm.set_prot onode.Node.vm st.ps_page Vm.Read_only
  end;
  h_charge h Category.Tmk_mem Costs.page_copy;
  let bytes = Vm.page_snapshot onode.Node.vm st.ps_page in
  Transport.hsend ~label:"sc-page" t.transport h ~dst:rq.rq_pid ~bytes:Wire.page_reply_bytes
    ~deliver:(grant_at_requester t st rq ~page_bytes:(Some bytes) ~prot:Vm.Read_only)

(* Begin serving a request (manager context). *)
and start t st rq h =
  st.ps_current <- Some rq;
  h_charge h Category.Tmk_other manager_cpu;
  match rq.rq_kind with
  | Read_miss ->
    Transport.hsend ~label:"sc-read" t.transport h ~dst:st.ps_owner
      ~bytes:Wire.page_request_bytes ~deliver:(fun ho -> owner_serve_read t st rq ho)
  | Write_miss ->
    (* invalidate every other copy, then transfer *)
    let victims =
      List.filter
        (fun q -> q <> rq.rq_pid && q <> st.ps_owner)
        (Bitset.to_list st.ps_copyset)
    in
    st.ps_awaiting_acks <- List.length victims;
    if victims = [] then write_transfer t st rq h
    else
      List.iter
        (fun victim ->
          Transport.hsend ~label:"sc-invalidate" t.transport h ~dst:victim
            ~bytes:(2 * Wire.ack_bytes)
            ~deliver:(fun hv ->
              let vnode = t.nodes.(victim) in
              if Vm.prot vnode.Node.vm st.ps_page <> Vm.No_access then begin
                h_charge hv Category.Unix_mem Costs.mprotect;
                Vm.set_prot vnode.Node.vm st.ps_page Vm.No_access
              end;
              vnode.Node.pages.(st.ps_page).Node.pg_has_copy <- false;
              Transport.hsend ~label:"sc-inval-ack" t.transport hv
                ~dst:(manager_of t st.ps_page) ~bytes:Wire.ack_bytes
                ~deliver:(fun hm ->
                  st.ps_awaiting_acks <- st.ps_awaiting_acks - 1;
                  if st.ps_awaiting_acks = 0 then write_transfer t st rq hm)))
        victims

let manager_handle t st rq h =
  if st.ps_current = None then start t st rq h else Queue.add rq st.ps_queue

let handle_fault t ~pid kind page =
  let node = t.nodes.(pid) in
  Engine.advance Category.Unix_mem Costs.sigsegv;
  Engine.advance Category.Tmk_other Cpu.fault_dispatch;
  (match kind with
  | Vm.Read -> node.Node.stats.Stats.read_faults <- node.Node.stats.Stats.read_faults + 1
  | Vm.Write -> node.Node.stats.Stats.write_faults <- node.Node.stats.Stats.write_faults + 1);
  node.Node.stats.Stats.remote_misses <- node.Node.stats.Stats.remote_misses + 1;
  let rq_kind = match kind with Vm.Read -> Read_miss | Vm.Write -> Write_miss in
  let ekind =
    match kind with Vm.Read -> Tmk_trace.Event.Read | Vm.Write -> Tmk_trace.Event.Write
  in
  if Engine.tracing t.engine then
    Engine.emit t.engine ~pid (Tmk_trace.Event.Page_fault { page; kind = ekind });
  let rq = { rq_pid = pid; rq_kind; rq_done = Engine.Ivar.create () } in
  Engine.advance Category.Tmk_other Cpu.page_request_build;
  let st = t.pstates.(page) in
  Transport.send ~label:"sc-request" t.transport ~src:pid ~dst:(manager_of t page)
    ~bytes:Wire.page_request_bytes ~deliver:(fun h -> manager_handle t st rq h);
  (* the grant handler runs on this processor and has already charged the
     delivery costs; the application just sleeps until it fires *)
  Engine.await rq.rq_done;
  if Engine.tracing t.engine then
    Engine.emit t.engine ~pid (Tmk_trace.Event.Page_fault_done { page; kind = ekind })

(* ------------------------------------------------------------------ *)
(* Backend packaging                                                   *)

let caps =
  {
    Backend.c_name = Config.protocol_name Config.Sc;
    c_crash_runs = false;
    c_zero_recovery = false;
    c_diff_backup = false;
    c_vt_on_wire = true;
  }

let make cl =
  let t =
    create ~engine:cl.Cluster.engine ~transport:cl.Cluster.transport
      ~nodes:cl.Cluster.nodes ~pages:cl.Cluster.cfg.Config.pages
  in
  let nprocs = cl.Cluster.cfg.Config.nprocs in
  {
    Backend.b_caps = caps;
    b_handle_fault = (fun ~pid kind page -> handle_fault t ~pid kind page);
    b_lock_request_bytes = Wire.lock_request_bytes ~nprocs;
    b_pre_acquire = Backend.noop_pid;
    b_make_acquire =
      (fun ~pid:_ ->
        { Backend.a_grant = (fun ~granter ~charge -> Backend.plain_grant ~nprocs ~granter ~charge) });
    b_pre_release = Backend.noop_pid;
    b_pre_barrier = Backend.noop_pid;
    b_barrier_begin = Backend.noop_pid;
    b_make_arrival = (fun ~pid:_ -> Backend.plain_arrival ~nprocs);
    b_barrier_depart = Backend.noop_pid;
    b_want_gc = (fun ~pid:_ -> false);
    b_gc_validate = Backend.noop_pid;
    b_on_death = (fun _ -> ());
  }
