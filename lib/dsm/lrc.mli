(** Lazy release consistency (§3) — the TreadMarks protocol proper,
    packaged as a {!Backend}.

    Multiple-writer pages with twins and lazy diffs; interval and
    write-notice records piggybacked on lock grants and barrier
    messages; misses fetch a base copy (cold) plus the missing diffs
    from the minimal responder set of §3.5, applied in vector-timestamp
    order.  Honors [Config.lrc_updates] (hybrid update protocol),
    [Config.lazy_diffs], [Config.diff_backup] (diff mirroring, which
    forces eager diffs) and [Config.gc_threshold]. *)

val caps : Backend.caps

(** [make cl] wires the backend to [cl] (installing the diff-backup hook
    when configured) and returns its hook table. *)
val make : Cluster.t -> Backend.t
