open Tmk_sim
module Transport = Tmk_net.Transport
module Vm = Tmk_mem.Vm
module Costs = Tmk_mem.Costs
module Bitset = Tmk_util.Bitset

type pending_op = {
  po_pid : int;
  po_seq : int;
  po_target : int;
  po_settled : unit -> bool;
  po_retry : unit -> unit;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  transport : Transport.t;
  nodes : Node.t array;
  crashes_planned : bool;
  dead : bool array;
  mutable epoch : int;
  mutable pending_ops : pending_op list;
  mutable next_op : int;
  mutable fatal : (int * string) option;
}

let barrier_manager = 0

exception Empty_copyset of { pid : int; page : int }

let () =
  Printexc.register_printer (function
    | Empty_copyset { pid; page } ->
      Some
        (Printf.sprintf "Tmk_dsm.Protocol.Empty_copyset(pid %d, page %d): no live copy" pid
           page)
    | _ -> None)

let live t pid = not t.dead.(pid)

let live_count t =
  let n = ref 0 in
  Array.iter (fun d -> if not d then incr n) t.dead;
  !n

let lowest_live_other t pid =
  let n = t.cfg.Config.nprocs in
  let rec seek p =
    if p >= n then None else if p <> pid && not t.dead.(p) then Some p else seek (p + 1)
  in
  seek 0

let backup_peer t proc =
  let n = t.cfg.Config.nprocs in
  let rec seek i =
    if i >= n then None
    else
      let p = (proc + i) mod n in
      if p <> proc && not t.dead.(p) then Some p else seek (i + 1)
  in
  seek 1

(* A run degrades when surviving processors would need consistency state
   that only the dead processor held.  Safe from any context: records the
   fatality and asks the engine to stop at the next event boundary. *)
let note_fatal t ~pid reason =
  if t.fatal = None then begin
    t.fatal <- Some (pid, reason);
    Engine.request_stop t.engine ("degraded: " ^ reason)
  end

(* Application-context variant: parks the calling process forever (the
   engine stops before the park can deadlock anything). *)
let degrade_app t ~pid reason =
  note_fatal t ~pid reason;
  Engine.await (Engine.Ivar.create ())

(* Protocol event tracing: enable with Logs at Debug level on the
   "tmk.protocol" source (tmk_run --verbose). *)
let log_src = Logs.Src.create "tmk.protocol" ~doc:"TreadMarks protocol events"

module Log = (val Logs.src_log log_src : Logs.LOG)

let app_charge cat dt = Engine.advance cat dt
let h_charge h cat dt = Engine.hcharge h cat dt

(* Typed-trace emission.  Always guard with [Engine.tracing] (or
   [Engine.htracing] in handler context) at the call site so the event
   value is never even allocated when tracing is off. *)
let emit t ~pid ev = Engine.emit t.engine ~pid ev

(* Application-context protocol bookkeeping must not interleave with this
   processor's request handlers: [Engine.advance] is a scheduling point,
   so charging time in the middle of a mutation sequence would let a
   handler observe (and mutate) half-updated consistency structures.  The
   real implementation masks signals around these sections; we run the
   mutations instantaneously and charge the accumulated CPU afterwards. *)
let atomically f =
  let charges = Tmk_util.Vec.create () in
  let charge cat dt = Tmk_util.Vec.push charges (cat, dt) in
  let result = f charge in
  Tmk_util.Vec.iter (fun (cat, dt) -> Engine.advance cat dt) charges;
  result

(* Pick a live processor believed to cache the page (never ourselves).
   The choice hashes (page, faulting pid) over the members so concurrent
   cold misses spread across the copyset instead of all landing on the
   lowest member (processor 0 holds every page initially, which made it a
   hot spot).  @raise Empty_copyset when no live candidate remains. *)
let choose_provider t copyset ~self ~page =
  let members =
    Bitset.fold (fun q acc -> if q <> self && not t.dead.(q) then q :: acc else acc) copyset []
  in
  match List.rev members with
  | [] -> raise (Empty_copyset { pid = self; page })
  | members ->
    let h = (((page + 1) * 2654435761) + (self * 40503)) land max_int in
    List.nth members (h mod List.length members)

(* ERC variant: always the lowest live member.  The update protocol's
   directory admits members whose base copy is still in flight (the
   faulter joins at serve time, before its reply lands), so an arbitrary
   member is not yet guaranteed to hold current bytes; the lowest member
   is the longest-standing one — in practice the page's origin. *)
let choose_provider_lowest t copyset ~self ~page =
  let provider =
    Bitset.fold
      (fun q acc -> if q <> self && (not t.dead.(q)) && acc < 0 then q else acc)
      copyset (-1)
  in
  if provider < 0 then raise (Empty_copyset { pid = self; page }) else provider

(* Register a re-issuable remote operation (only while a crash plan is
   armed; the registry would otherwise grow for nothing). *)
let register_pending t ~pid ~target ~settled ~retry =
  if t.crashes_planned then begin
    let seq = t.next_op in
    t.next_op <- seq + 1;
    t.pending_ops <-
      { po_pid = pid; po_seq = seq; po_target = target; po_settled = settled; po_retry = retry }
      :: t.pending_ops
  end

let note_miss t pid page =
  let node = t.nodes.(pid) in
  Log.debug (fun m -> m "[t=%d] miss at %d on page %d" (Engine.now t.engine) pid page);
  node.Node.stats.Stats.remote_misses <- node.Node.stats.Stats.remote_misses + 1

(* Shared fault prologue of the release-consistent backends (§3.7's
   SIGSEGV handler): charges, stats, events, twin creation on a write to
   a valid page, and the miss dispatch for invalid pages. *)
let rc_fault t pid kind page ~miss =
  let node = t.nodes.(pid) in
  app_charge Category.Unix_mem Costs.sigsegv;
  app_charge Category.Tmk_other Cpu.fault_dispatch;
  (match kind with
  | Vm.Read -> node.Node.stats.Stats.read_faults <- node.Node.stats.Stats.read_faults + 1
  | Vm.Write -> node.Node.stats.Stats.write_faults <- node.Node.stats.Stats.write_faults + 1);
  let ekind =
    match kind with Vm.Read -> Tmk_trace.Event.Read | Vm.Write -> Tmk_trace.Event.Write
  in
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fault { page; kind = ekind });
  (match (Vm.prot node.Node.vm page, kind) with
  | Vm.Read_only, Vm.Write ->
    atomically (fun charge -> Node.write_fault_twin node page ~charge)
  | Vm.No_access, Vm.Read -> miss ()
  | Vm.No_access, Vm.Write ->
    miss ();
    (* The miss can leave the page invalid again if a notice raced in;
       the Vm fault dispatcher retries and we fall into the miss path
       once more. *)
    if Vm.prot node.Node.vm page = Vm.Read_only then
      atomically (fun charge -> Node.write_fault_twin node page ~charge)
  | (Vm.Read_only | Vm.Read_write), _ -> assert false);
  if Engine.tracing t.engine then
    emit t ~pid (Tmk_trace.Event.Page_fault_done { page; kind = ekind })

let create cfg =
  let engine = Engine.create ~nprocs:cfg.Config.nprocs in
  (match cfg.Config.trace with
  | Some sink -> Engine.set_sink engine sink
  | None -> ());
  let prng = Tmk_util.Prng.split_named (Tmk_util.Prng.create cfg.Config.seed) "net" in
  let transport =
    Transport.create ~plan:cfg.Config.faults ~batching:cfg.Config.batching ~engine
      ~params:cfg.Config.net ~prng ()
  in
  let nodes =
    Array.init cfg.Config.nprocs (fun pid ->
        let emit =
          match cfg.Config.trace with
          | None -> None
          | Some _ -> Some (fun ev -> Engine.emit engine ~pid ev)
        in
        Node.create ?emit ~vm_fast_path:cfg.Config.vm_fast_path ~pid
          ~nprocs:cfg.Config.nprocs ~pages:cfg.Config.pages ())
  in
  {
    cfg;
    engine;
    transport;
    nodes;
    crashes_planned = Tmk_net.Fault_plan.crashes cfg.Config.faults <> [];
    dead = Array.make cfg.Config.nprocs false;
    epoch = 0;
    pending_ops = [];
    next_op = 0;
    fatal = None;
  }
