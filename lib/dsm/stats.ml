type t = {
  mutable lock_acquires : int;
  mutable lock_remote : int;
  mutable barriers : int;
  mutable read_faults : int;
  mutable write_faults : int;
  mutable remote_misses : int;
  mutable twins_created : int;
  mutable diffs_created : int;
  mutable diffs_applied : int;
  mutable diff_bytes_created : int;
  mutable write_notices_in : int;
  mutable intervals_in : int;
  mutable page_fetches : int;
  mutable gc_runs : int;
  mutable records_discarded : int;
  mutable diff_cache_hits : int;
  mutable diff_cache_misses : int;
  mutable diff_prefetch_entries : int;
  mutable diff_backups : int;
  mutable diff_backup_bytes : int;
  mutable lease_expiries : int;
  mutable quorum_reads : int;
  mutable quorum_writes : int;
}

let create () =
  {
    lock_acquires = 0;
    lock_remote = 0;
    barriers = 0;
    read_faults = 0;
    write_faults = 0;
    remote_misses = 0;
    twins_created = 0;
    diffs_created = 0;
    diffs_applied = 0;
    diff_bytes_created = 0;
    write_notices_in = 0;
    intervals_in = 0;
    page_fetches = 0;
    gc_runs = 0;
    records_discarded = 0;
    diff_cache_hits = 0;
    diff_cache_misses = 0;
    diff_prefetch_entries = 0;
    diff_backups = 0;
    diff_backup_bytes = 0;
    lease_expiries = 0;
    quorum_reads = 0;
    quorum_writes = 0;
  }

let add ~into t =
  into.lock_acquires <- into.lock_acquires + t.lock_acquires;
  into.lock_remote <- into.lock_remote + t.lock_remote;
  into.barriers <- into.barriers + t.barriers;
  into.read_faults <- into.read_faults + t.read_faults;
  into.write_faults <- into.write_faults + t.write_faults;
  into.remote_misses <- into.remote_misses + t.remote_misses;
  into.twins_created <- into.twins_created + t.twins_created;
  into.diffs_created <- into.diffs_created + t.diffs_created;
  into.diffs_applied <- into.diffs_applied + t.diffs_applied;
  into.diff_bytes_created <- into.diff_bytes_created + t.diff_bytes_created;
  into.write_notices_in <- into.write_notices_in + t.write_notices_in;
  into.intervals_in <- into.intervals_in + t.intervals_in;
  into.page_fetches <- into.page_fetches + t.page_fetches;
  into.gc_runs <- into.gc_runs + t.gc_runs;
  into.records_discarded <- into.records_discarded + t.records_discarded;
  into.diff_cache_hits <- into.diff_cache_hits + t.diff_cache_hits;
  into.diff_cache_misses <- into.diff_cache_misses + t.diff_cache_misses;
  into.diff_prefetch_entries <- into.diff_prefetch_entries + t.diff_prefetch_entries;
  into.diff_backups <- into.diff_backups + t.diff_backups;
  into.diff_backup_bytes <- into.diff_backup_bytes + t.diff_backup_bytes;
  into.lease_expiries <- into.lease_expiries + t.lease_expiries;
  into.quorum_reads <- into.quorum_reads + t.quorum_reads;
  into.quorum_writes <- into.quorum_writes + t.quorum_writes

let pp ppf t =
  Format.fprintf ppf
    "locks=%d (remote %d) barriers=%d faults=r%d/w%d misses=%d twins=%d diffs=c%d/a%d \
     diff-bytes=%d notices-in=%d intervals-in=%d pages=%d gc=%d discarded=%d \
     diff-cache=h%d/m%d prefetched=%d backups=%d/%dB leases=%d quorum=r%d/w%d"
    t.lock_acquires t.lock_remote t.barriers t.read_faults t.write_faults t.remote_misses
    t.twins_created t.diffs_created t.diffs_applied t.diff_bytes_created
    t.write_notices_in t.intervals_in t.page_fetches t.gc_runs t.records_discarded
    t.diff_cache_hits t.diff_cache_misses t.diff_prefetch_entries t.diff_backups
    t.diff_backup_bytes t.lease_expiries t.quorum_reads t.quorum_writes
