open Tmk_sim

type caps = {
  c_name : string;
  c_crash_runs : bool;
  c_zero_recovery : bool;
  c_diff_backup : bool;
  c_vt_on_wire : bool;
}

type payload = {
  p_bytes : int;
  p_parts : int;
  p_absorb : charge:Node.charge -> unit;
}

type arrival = {
  v_bytes : int;
  v_parts : int;
  v_absorb_mgr : charge:Node.charge -> unit;
  v_release : charge:Node.charge -> payload;
}

type acq = { a_grant : granter:int -> charge:Node.charge -> payload }

type t = {
  b_caps : caps;
  b_handle_fault : pid:int -> Tmk_mem.Vm.access -> int -> unit;
  b_lock_request_bytes : int;
  b_pre_acquire : pid:int -> unit;
  b_make_acquire : pid:int -> acq;
  b_pre_release : pid:int -> unit;
  b_pre_barrier : pid:int -> unit;
  b_barrier_begin : pid:int -> unit;
  b_make_arrival : pid:int -> arrival;
  b_barrier_depart : pid:int -> unit;
  b_want_gc : pid:int -> bool;
  b_gc_validate : pid:int -> unit;
  b_on_death : int -> unit;
}

(* Plain-synchronization payloads: a fixed-size header, no piggybacked
   consistency records, a flat incorporation charge at the receiver. *)

let plain_absorb ~charge = charge Category.Tmk_consistency Cpu.incorporate_base

let plain_grant ~nprocs ~granter:_ ~charge =
  charge Category.Unix_comm Cpu.lock_grant_kernel;
  charge Category.Tmk_other Cpu.lock_grant_dsm;
  { p_bytes = Wire.lock_grant_bytes ~nprocs []; p_parts = 1; p_absorb = plain_absorb }

let plain_release ~nprocs =
  { p_bytes = Wire.barrier_release_bytes ~nprocs []; p_parts = 1; p_absorb = plain_absorb }

let plain_arrival ~nprocs =
  {
    v_bytes = Wire.barrier_arrival_bytes ~nprocs [];
    v_parts = 1;
    v_absorb_mgr = plain_absorb;
    v_release = (fun ~charge:_ -> plain_release ~nprocs);
  }

let noop_pid ~pid:_ = ()
