(** Tardis-style timestamp coherence, packaged as a {!Backend}.

    Pages carry (write, read) logical timestamp counters; reads lease
    the current value forward, writes pick a timestamp past every
    outstanding lease, so no invalidation messages exist.  Each
    synchronization message carries one scalar clock ([Wire.ts_bytes])
    instead of a vector timestamp, and the acquirer expires stale leases
    with a purely local sweep — nothing on the wire grows with the
    processor count. *)

val caps : Backend.caps
val make : Cluster.t -> Backend.t
