(** Wire-format sizes of the protocol messages.

    Payloads travel as OCaml values in the simulation; these functions
    compute the byte counts the real encodings would occupy, which drive
    the transport's timing and the paper's message/data-rate statistics.
    Write notices are "a fixed 16-bit entry containing the page number"
    (§3.3); vector timestamps use 32-bit entries; ids are 16-bit. *)

(** [write_notice_bytes] is 2 (§3.3). *)
val write_notice_bytes : int

(** [interval_header_bytes ~nprocs] — processor id plus the interval's
    vector timestamp. *)
val interval_header_bytes : nprocs:int -> int

(** [intervals_bytes ~nprocs counts] — a batch of intervals, where
    [counts] lists the number of write notices of each interval. *)
val intervals_bytes : nprocs:int -> int list -> int

(** [lock_request_bytes ~nprocs] — lock id, requester id, requester VT. *)
val lock_request_bytes : nprocs:int -> int

(** [lock_grant_bytes ~nprocs counts] — grant header plus piggybacked
    intervals. *)
val lock_grant_bytes : nprocs:int -> int list -> int

(** [barrier_arrival_bytes ~nprocs counts] — client VT plus the client's
    new intervals. *)
val barrier_arrival_bytes : nprocs:int -> int list -> int

(** [barrier_release_bytes ~nprocs counts] — per-client release with the
    manager's merged intervals. *)
val barrier_release_bytes : nprocs:int -> int list -> int

(** [diff_request_bytes n_entries] — page id plus [n_entries] requested
    (processor, interval index) pairs. *)
val diff_request_bytes : int -> int

(** [diff_reply_bytes encoded_sizes] — per-diff header (page, proc,
    interval index) plus each diff's runlength encoding. *)
val diff_reply_bytes : int list -> int

(** [gathered_diff_request_bytes n_entries] — the multi-page batched
    request: an entry count plus [n_entries] (page, processor, interval
    index) triples.  Two bytes per entry wider than {!diff_request_bytes}
    because each entry names its page explicitly instead of sharing one
    page header. *)
val gathered_diff_request_bytes : int -> int

(** [gathered_diff_reply_bytes encoded_sizes] — the multi-page batched
    reply: per-diff header (page, proc, interval index, encoded length)
    plus each diff's runlength encoding. *)
val gathered_diff_reply_bytes : int list -> int

(** [page_request_bytes] / [page_reply_bytes] — full-page fetch on a cold
    miss. *)
val page_request_bytes : int

val page_reply_bytes : int

(** [erc_update_bytes encoded_size] — one eager diff update message. *)
val erc_update_bytes : int -> int

(** [ack_bytes] — an ERC update acknowledgement. *)
val ack_bytes : int

(** [gc_keep_bitmap_bytes ~npages] — the pages-kept bitmap exchanged
    during garbage collection. *)
val gc_keep_bitmap_bytes : npages:int -> int

(** [heartbeat_bytes] — one failure-detector probe (ids only). *)
val heartbeat_bytes : int

(** [death_notice_bytes] — dead processor id plus the new epoch. *)
val death_notice_bytes : int

(** [diff_backup_bytes encoded_size] — one mirrored diff: its
    (processor, interval index, page) key plus the runlength encoding. *)
val diff_backup_bytes : int -> int

(** {2 Tardis} — synchronization carries one 64-bit scalar timestamp
    instead of a vector; page traffic carries (wts, rts) counter pairs. *)

val ts_bytes : int
val tardis_lock_request_bytes : int
val tardis_lock_grant_bytes : int
val tardis_barrier_arrival_bytes : int
val tardis_barrier_release_bytes : int

(** [tardis_page_request_bytes] — page id, requester id, requester
    timestamp, held-copy version. *)
val tardis_page_request_bytes : int

(** [tardis_page_reply_bytes ~with_page] — (wts, rts) pair plus the page
    contents unless the requester's cached version is current. *)
val tardis_page_reply_bytes : with_page:bool -> int

(** {2 SC-ABD} — quorum-replicated word-granularity LWW stores. *)

val abd_words_per_page : int

(** [abd_wordts_bytes] — one compressed (32-bit) timestamp per 8-byte
    word of a page. *)
val abd_wordts_bytes : int

val abd_read_request_bytes : int

(** [abd_read_reply_bytes] — page contents plus per-word timestamps. *)
val abd_read_reply_bytes : int

(** [abd_ts_query_bytes n] / [abd_ts_reply_bytes n] — flush phase 1: the
    dirty page list, answered by per-page maximum timestamps. *)
val abd_ts_query_bytes : int -> int

val abd_ts_reply_bytes : int -> int

(** [abd_store_bytes encoded_sizes] — flush phase 2: one store message
    carrying each dirty page's diff plus the writer's timestamp. *)
val abd_store_bytes : int list -> int

(** [abd_writeback_bytes] — a read-repair write-back (full page plus
    word timestamps). *)
val abd_writeback_bytes : int

(** [abd_sync_bytes] — an SC-ABD lock/barrier control message: ids only
    (synchronization carries no consistency payload at all). *)
val abd_sync_bytes : int
