type 'a t = { mutable buf : 'a array; mutable len : int }

let create ?(capacity = 0) () =
  ignore capacity;
  (* The backing array is allocated lazily at the first push (there is no
     dummy element to fill with); [capacity] is advisory only. *)
  { buf = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    let grown = Array.make (if cap = 0 then 8 else 2 * cap) x in
    Array.blit t.buf 0 grown 0 t.len;
    t.buf <- grown
  end;
  Array.unsafe_set t.buf t.len x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  Array.unsafe_get t.buf i

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.buf i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.buf i)
  done;
  !acc

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (Array.unsafe_get t.buf i :: acc) in
  build (t.len - 1) []

let clear t = t.len <- 0
