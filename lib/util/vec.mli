(** Growable array buffer (amortized O(1) [push]).

    OCaml 5.1 predates [Dynarray]; the simulator's hot paths (trace
    listeners, consistency-record accumulation, diff-fetch assembly) need
    an append-in-order container without the reverse-and-copy or quadratic
    [(@)] costs of list accumulation.  Elements pushed stay reachable
    until the vector itself is collected ([clear] does not erase the
    backing array) — callers that buffer large values briefly should drop
    the whole vector instead of reusing it. *)

type 'a t

(** [create ()] — an empty vector.  [capacity] is advisory (the backing
    array is allocated at the first push). *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push t x] appends [x]; amortized O(1), doubling growth. *)
val push : 'a t -> 'a -> unit

(** [get t i] — the [i]th element pushed.
    @raise Invalid_argument when out of bounds. *)
val get : 'a t -> int -> 'a

(** [iter f t] — visit elements in push order. *)
val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [to_list t] — elements in push order. *)
val to_list : 'a t -> 'a list

(** [clear t] — forget the elements (keeps the backing array). *)
val clear : 'a t -> unit
