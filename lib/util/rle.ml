type run = { offset : int; bytes : Bytes.t }

(* Run count and payload ride along from encode time: both sit on the
   stats path of every diff (wire sizing, trace events, cache caps), and
   recomputing them by walking the run list was measurable at scale. *)
type t = { runs : run list; nruns : int; payload : int }

let header_bytes = 4

let runs t = t.runs
let is_empty t = t.nruns = 0
let run_count t = t.nruns
let payload_size t = t.payload
let encoded_size t = t.payload + (header_bytes * t.nruns)

let of_runs runs =
  let nruns, payload =
    List.fold_left (fun (c, p) r -> (c + 1, p + Bytes.length r.bytes)) (0, 0) runs
  in
  { runs; nruns; payload }

(* SWAR helper: [x] is the XOR of two 8-byte words; a zero byte of [x]
   marks a byte position where the words agree. *)
let no_equal_byte x =
  Int64.equal
    (Int64.logand
       (Int64.logand (Int64.sub x 0x0101010101010101L) (Int64.lognot x))
       0x8080808080808080L)
    0L

let encode ?(join_gap = 4) ~old_ current =
  let n = Bytes.length old_ in
  if Bytes.length current <> n then
    invalid_arg "Rle.encode: buffers must have equal length";
  (* Scan for maximal differing runs, comparing 8-byte words and dropping
     to byte granularity only inside a word that differs; then merge runs
     whose separating gap of equal bytes is shorter than [join_gap].  The
     spans produced are byte-for-byte identical to a plain byte scan. *)
  let rec diff_byte i =
    (* precondition: a differing byte exists at or after [i] *)
    if Bytes.unsafe_get old_ i <> Bytes.unsafe_get current i then i else diff_byte (i + 1)
  in
  let rec find_diff i =
    if i + 8 <= n then
      if Int64.equal (Bytes.get_int64_le old_ i) (Bytes.get_int64_le current i) then
        find_diff (i + 8)
      else Some (diff_byte i)
    else if i >= n then None
    else if Bytes.unsafe_get old_ i <> Bytes.unsafe_get current i then Some i
    else find_diff (i + 1)
  in
  let rec same_byte i =
    (* precondition: an equal byte exists at or after [i] *)
    if Bytes.unsafe_get old_ i = Bytes.unsafe_get current i then i else same_byte (i + 1)
  in
  let rec find_same i =
    if i + 8 <= n then begin
      let x = Int64.logxor (Bytes.get_int64_le old_ i) (Bytes.get_int64_le current i) in
      if no_equal_byte x then find_same (i + 8) else same_byte i
    end
    else if i >= n then n
    else if Bytes.unsafe_get old_ i = Bytes.unsafe_get current i then i
    else find_same (i + 1)
  in
  (* Accumulate (start, stop) spans, joining across small gaps. *)
  let rec spans acc i =
    match find_diff i with
    | None -> List.rev acc
    | Some start ->
      let stop = find_same (start + 1) in
      (match acc with
       | (s0, e0) :: rest when start - e0 < join_gap -> spans ((s0, stop) :: rest) stop
       | _ -> spans ((start, stop) :: acc) stop)
  in
  let rec build spans nruns payload acc =
    match spans with
    | [] -> { runs = List.rev acc; nruns; payload }
    | (start, stop) :: rest ->
      let len = stop - start in
      build rest (nruns + 1) (payload + len)
        ({ offset = start; bytes = Bytes.sub current start len } :: acc)
  in
  build (spans [] 0) 0 0 []

let apply t target =
  let n = Bytes.length target in
  let apply_run { offset; bytes } =
    let len = Bytes.length bytes in
    if offset < 0 || offset + len > n then invalid_arg "Rle.apply: run out of bounds";
    Bytes.blit bytes 0 target offset len
  in
  List.iter apply_run t.runs

let overlaps a b =
  let covers r pos = pos >= r.offset && pos < r.offset + Bytes.length r.bytes in
  let run_overlap ra rb =
    covers ra rb.offset || covers rb ra.offset
  in
  List.exists (fun ra -> List.exists (run_overlap ra) b.runs) a.runs

let pp ppf t =
  let pp_run ppf r = Format.fprintf ppf "%d+%d" r.offset (Bytes.length r.bytes) in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_run)
    t.runs
