(** Run-length delta encoding between two equal-length byte buffers.

    TreadMarks represents page modifications as {e diffs}: "a runlength
    encoded record of the modifications to the page" (paper §2.4), computed
    by comparing the current page contents against its twin.  This module
    implements that encoding generically over [Bytes.t]; [Tmk_mem.Vm]
    layers page identity on top.

    The comparison runs 8 bytes at a time over the flat buffers (dropping
    to byte granularity only inside a differing word), and the run count
    and payload size are computed once at encode time — both sit on the
    per-diff stats path.  The runs produced are byte-for-byte identical to
    a naive per-byte scan. *)

(** One modified run: [bytes] replaces the region starting at [offset]. *)
type run = { offset : int; bytes : Bytes.t }

type t

(** [encode ~old_ current] computes the runs where [current] differs from
    [old_].  Runs are maximal, disjoint, and sorted by increasing offset.
    Runs separated by fewer than [join_gap] identical bytes are merged,
    mirroring the wire-efficiency tradeoff of a real implementation (a run
    header costs header bytes; tiny gaps are cheaper to resend).
    [join_gap] defaults to 4.
    @raise Invalid_argument if the buffers have different lengths. *)
val encode : ?join_gap:int -> old_:Bytes.t -> Bytes.t -> t

(** [apply t target] overwrites [target] with each run.
    @raise Invalid_argument if a run falls outside [target]. *)
val apply : t -> Bytes.t -> unit

(** [runs t] — the runs, sorted by increasing offset. *)
val runs : t -> run list

(** [of_runs runs] — rebuild a diff from explicit runs (tests and
    hand-crafted fixtures; [encode] is the normal constructor). *)
val of_runs : run list -> t

(** [is_empty t] holds when no byte differs. *)
val is_empty : t -> bool

(** [run_count t] is the number of runs; O(1). *)
val run_count : t -> int

(** [payload_size t] is the total number of modified bytes carried; O(1). *)
val payload_size : t -> int

(** [encoded_size t] is the wire size: per-run header ([header_bytes]) plus
    payload; O(1). *)
val encoded_size : t -> int

(** Size in bytes of one run header on the wire (offset + length, 2 bytes
    each — pages are 4 KB so 16-bit fields suffice). *)
val header_bytes : int

(** [overlaps a b] holds when some byte position is covered by both
    encodings. *)
val overlaps : t -> t -> bool

(** [pp] formats a diff as [\[off+len; ...\]] for debugging. *)
val pp : Format.formatter -> t -> unit
