(** Experiment runner: executes the five applications under a chosen
    cluster configuration and extracts the statistics the paper reports
    (execution time, synchronization and communication rates, execution
    time breakdowns, diff counts). *)

open Tmk_dsm

(** The five §4.3 applications, plus the two deliberately racy fixtures:
    [Racey] — the happens-before detector's ({!Tmk_apps.Racey}) — and
    [Racey2] — the lockset analyzer's ({!Tmk_apps.Racey2}). *)
type app = Water | Jacobi | Tsp | Quicksort | Ilink | Racey | Racey2

(** [all_apps] in the paper's reporting order.  [Racey] and [Racey2] are
    excluded: they exist to be caught by [--racecheck] / [--lint], not
    benchmarked. *)
val all_apps : app list

val app_name : app -> string

(** [app_of_name s] — inverse of {!app_name} (case-insensitive).  Also
    accepts a source path naming the app, e.g. ["examples/racey.ml"].
    @raise Invalid_argument on unknown names. *)
val app_of_name : string -> app

(** Per-run measurements, cluster-wide (rates are totals divided by the
    run's makespan, matching Figure 4). *)
type metrics = {
  m_app : app;
  m_nprocs : int;
  m_protocol : Config.protocol;
  m_net : string;
  m_time_s : float;  (** execution time (simulated seconds) *)
  m_barriers_per_sec : float;
  m_locks_per_sec : float;
  m_msgs_per_sec : float;
  m_kbytes_per_sec : float;
  m_diffs_per_sec : float;  (** diff creation rate (Figure 12) *)
  m_comp_pct : float;  (** Figure 5 components, percent of nprocs × time *)
  m_unix_comm_pct : float;
  m_unix_mem_pct : float;
  m_tmk_mem_pct : float;
  m_tmk_consistency_pct : float;
  m_tmk_other_pct : float;
  m_idle_pct : float;
  m_raw : Api.run_result;
}

(** [unix_pct m] / [tmk_pct m] — the grouped Figure 5 bars. *)
val unix_pct : metrics -> float

val tmk_pct : metrics -> float

(** Experiment-scale workload parameters (larger than the unit-test
    sizes; chosen so the 8-processor communication-to-computation ratios
    land in the paper's regimes — see EXPERIMENTS.md). *)
val water_params : Tmk_apps.Water.params

val jacobi_params : Tmk_apps.Jacobi.params
val tsp_params : Tmk_apps.Tsp.params
val quicksort_params : Tmk_apps.Quicksort.params
val ilink_params : Tmk_apps.Ilink.params

(** [workload_description app] — a short human-readable input summary. *)
val workload_description : app -> string

(** [config ~app ~nprocs ~protocol ~net] — a cluster configuration sized
    for [app]'s experiment workload. *)
val config :
  app:app -> nprocs:int -> protocol:Config.protocol -> net:Tmk_net.Params.t -> Config.t

(** [body app] — the application's SPMD body at experiment scale (result
    collection disabled), for callers that need a custom {!Config.t}
    (ablations). *)
val body : app -> Api.ctx -> unit

(** [run ~app ~nprocs ~protocol ~net] — execute and measure. *)
val run :
  app:app -> nprocs:int -> protocol:Config.protocol -> net:Tmk_net.Params.t -> metrics

(** [run_cfg ~app cfg] — like {!run} with full control of the cluster
    configuration (seed, GC threshold, diffing policy, fault plan...).
    [?trace] is forwarded to {!Api.run}: pass a sink to capture the typed
    event stream (overriding [cfg.trace]) and assert on trace-derived
    quantities afterwards (lock contention, hot pages, barrier skew — see
    {!Tmk_trace.Analyze}). *)
val run_cfg : ?trace:Tmk_trace.Sink.t -> app:app -> Config.t -> metrics

(** [breakdown_table m] — a per-processor execution-time table (one row
    per processor: the six {!Tmk_sim.Category.t} busy columns, their sum,
    and the idle remainder [makespan − Σ busy] reported explicitly). *)
val breakdown_table : metrics -> string

(** [run_checked ~app cfg] — like {!run_cfg} but also collects the DSM
    result on processor 0 and returns a hex digest of its
    schedule-independent part (Water energy+positions, Jacobi grid, TSP
    best tour length, Quicksort sorted array, ILINK likelihood+theta).
    Two runs of the same workload must digest identically regardless of
    the fault plan — the robustness criterion of experiment E10.  Note
    the collection traffic makes the metrics slightly heavier than
    {!run_cfg}'s. *)
val run_checked : app:app -> Config.t -> metrics * string

(** [speedup ~app ~nprocs ~protocol ~net] — [time(1)/time(nprocs)]; the
    uniprocessor baseline runs the same program on one processor (all
    synchronization local). *)
val speedup :
  app:app -> nprocs:int -> protocol:Config.protocol -> net:Tmk_net.Params.t -> float

(** [parallel_map ~jobs f items] — map [f] over [items] on up to [jobs]
    OCaml domains (sequentially when [jobs <= 1]).  Results are returned
    in item order regardless of scheduling, so reports built from them
    are byte-identical to a sequential run.  [f] must be self-contained —
    every simulation run is (it builds its own cluster and RNG streams
    from the config seed) — and must not force shared [lazy] values. *)
val parallel_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
