(** Regeneration of every table and figure in the paper's evaluation
    (§4–§5).  Each function runs the necessary simulations and renders a
    plain-text table or chart, quoting the paper's own numbers alongside
    for shape comparison.  The per-experiment index lives in DESIGN.md;
    measured-vs-paper records live in EXPERIMENTS.md. *)

(** Experiment identifiers, in paper order. *)
type id =
  | E1  (** §4.2 basic operation costs *)
  | E2  (** Figure 3: speedups, 1–8 processors, ATM *)
  | E3  (** Figure 4: execution statistics, 8 processors *)
  | E4  (** Figure 5: execution time breakdown *)
  | E5  (** Figure 6: Unix overhead breakdown *)
  | E6  (** Figure 7: TreadMarks overhead breakdown *)
  | E7  (** Figure 8: Water across communication substrates *)
  | E8  (** Figures 9–12: lazy versus eager release consistency *)
  | E9  (** abstract: speedups on the 10 Mbps Ethernet *)
  | E10
      (** robustness sweep (§3.7): the five applications under 0–20% frame
          loss — execution time, retransmissions, message overhead versus
          the loss-free baseline, and a digest check that the DSM answer
          is bit-identical at every loss rate *)
  | E11
      (** scaling study past the paper: the five applications on 2–64
          processors, batched versus unbatched consistency traffic
          ([Config.batching]) — speedup curves, messages and kilobytes per
          synchronization acquire, frames coalesced, and diff-cache
          effectiveness.  Also writes the raw measurements to
          [BENCH_3.json] in the working directory. *)
  | E12
      (** crash survival study: the five applications on 8 processors,
          {no crash, processor 4 dies halfway} × {diff replication
          off, on} — survival or typed degradation, failure-detection
          latency, locks re-homed, in-flight fetches re-issued, and the
          message/byte cost of mirroring each diff to a backup peer.
          Also writes the raw measurements to [BENCH_5.json] in the
          working directory. *)
  | E13
      (** coherence backend comparison: the five applications on 8
          processors under lazy, eager, tardis and sc-abd, on both the
          ATM and Ethernet models — execution time and backend-specific
          traffic (page fetches, diffs, lease expiries, quorum rounds),
          with a digest check that every backend computes the same
          answer.  Also writes the raw measurements to [BENCH_7.json] in
          the working directory. *)

val all : id list

val id_name : id -> string

(** [id_of_name "e3"] — parse a CLI argument.
    @raise Invalid_argument on unknown ids. *)
val id_of_name : string -> id

(** [describe id] — one-line description. *)
val describe : id -> string

(** [set_jobs n] — run the independent arms of sweep experiments (E10,
    E11, E13) on up to [n] OCaml domains via {!Harness.parallel_map}.
    The default is 1 (sequential); reports are byte-identical at any
    value. *)
val set_jobs : int -> unit

(** [run id] — execute the experiment and return its rendered report. *)
val run : id -> string

(** [run_all ()] — E1 through E13, concatenated. *)
val run_all : unit -> string
