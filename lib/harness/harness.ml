open Tmk_sim
open Tmk_dsm

type app = Water | Jacobi | Tsp | Quicksort | Ilink | Racey | Racey2

(* Racey and Racey2 are deliberately excluded: they are the race
   detector's and the lockset analyzer's positive fixtures, not
   benchmarks. *)
let all_apps = [ Water; Jacobi; Tsp; Quicksort; Ilink ]

let app_name = function
  | Water -> "Water"
  | Jacobi -> "Jacobi"
  | Tsp -> "TSP"
  | Quicksort -> "Quicksort"
  | Ilink -> "ILINK"
  | Racey -> "Racey"
  | Racey2 -> "Racey2"

let app_of_name s =
  (* Accept a source path too ("examples/racey.ml" names the same app). *)
  let s = Filename.remove_extension (Filename.basename s) in
  match String.lowercase_ascii s with
  | "water" -> Water
  | "jacobi" -> Jacobi
  | "tsp" -> Tsp
  | "quicksort" | "qsort" -> Quicksort
  | "ilink" -> Ilink
  | "racey" -> Racey
  | "racey2" -> Racey2
  | other -> invalid_arg (Printf.sprintf "Harness.app_of_name: unknown application %S" other)

type metrics = {
  m_app : app;
  m_nprocs : int;
  m_protocol : Config.protocol;
  m_net : string;
  m_time_s : float;
  m_barriers_per_sec : float;
  m_locks_per_sec : float;
  m_msgs_per_sec : float;
  m_kbytes_per_sec : float;
  m_diffs_per_sec : float;
  m_comp_pct : float;
  m_unix_comm_pct : float;
  m_unix_mem_pct : float;
  m_tmk_mem_pct : float;
  m_tmk_consistency_pct : float;
  m_tmk_other_pct : float;
  m_idle_pct : float;
  m_raw : Api.run_result;
}

let unix_pct m = m.m_unix_comm_pct +. m.m_unix_mem_pct
let tmk_pct m = m.m_tmk_mem_pct +. m.m_tmk_consistency_pct +. m.m_tmk_other_pct

(* Experiment workloads: scaled-down versions of the paper's inputs (343
   molecules -> 125, 2000x1000 grid -> 256x192, 19 cities -> 12, 256K
   integers -> 32K, 12 CLP families -> 32 synthetic pedigrees), with
   per-operation costs set so the 8-processor communication/computation
   ratios fall in the same regimes as Figure 4. *)
let water_params =
  {
    Tmk_apps.Water.default with
    Tmk_apps.Water.nmol = 216;
    steps = 3;
    flops_per_pair = 600;
    flops_per_molecule = 30;
  }

let jacobi_params =
  {
    Tmk_apps.Jacobi.default with
    Tmk_apps.Jacobi.rows = 128;
    cols = 512;
    iters = 16;
    flops_per_point = 320;
  }

let tsp_params = { Tmk_apps.Tsp.default with Tmk_apps.Tsp.ncities = 12; prefix_depth = 3 }

let quicksort_params =
  {
    Tmk_apps.Quicksort.default with
    Tmk_apps.Quicksort.n = 131_072;
    threshold = 1024;
    flops_per_compare = 8;
  }

let ilink_params =
  {
    Tmk_apps.Ilink.default with
    Tmk_apps.Ilink.families = 96;
    iterations = 6;
    flops_per_unit = 500;
  }

let racey_params = Tmk_apps.Racey.default
let racey2_params = Tmk_apps.Racey2.default

let workload_description = function
  | Water ->
    Printf.sprintf "%d mols, %d steps" water_params.Tmk_apps.Water.nmol
      water_params.Tmk_apps.Water.steps
  | Jacobi ->
    Printf.sprintf "%dx%d floats, %d iters" jacobi_params.Tmk_apps.Jacobi.rows
      jacobi_params.Tmk_apps.Jacobi.cols jacobi_params.Tmk_apps.Jacobi.iters
  | Tsp -> Printf.sprintf "%d-city tour" tsp_params.Tmk_apps.Tsp.ncities
  | Quicksort -> Printf.sprintf "%d integers" quicksort_params.Tmk_apps.Quicksort.n
  | Ilink -> Printf.sprintf "%d pedigrees" ilink_params.Tmk_apps.Ilink.families
  | Racey ->
    Printf.sprintf "%d items, %d racy buckets" racey_params.Tmk_apps.Racey.items
      racey_params.Tmk_apps.Racey.buckets
  | Racey2 ->
    Printf.sprintf "%d lock rounds, 1 unprotected flag"
      racey2_params.Tmk_apps.Racey2.rounds

let pages_for = function
  | Water -> Tmk_apps.Water.pages_needed water_params
  | Jacobi -> Tmk_apps.Jacobi.pages_needed jacobi_params
  | Tsp -> Tmk_apps.Tsp.pages_needed tsp_params
  | Quicksort -> Tmk_apps.Quicksort.pages_needed quicksort_params
  | Ilink -> Tmk_apps.Ilink.pages_needed ilink_params
  | Racey -> Tmk_apps.Racey.pages_needed racey_params
  | Racey2 -> Tmk_apps.Racey2.pages_needed racey2_params

let config ~app ~nprocs ~protocol ~net =
  { Config.default with Config.nprocs; pages = pages_for app; protocol; net; seed = 1994L }

(* Timing runs skip the result read-back: the paper measures the
   application, not the experimenter copying the answer out. *)
let body app ctx =
  match app with
  | Water -> ignore (Tmk_apps.Water.parallel ~collect:false ctx water_params)
  | Jacobi -> ignore (Tmk_apps.Jacobi.parallel ~collect:false ctx jacobi_params)
  | Tsp -> ignore (Tmk_apps.Tsp.parallel ctx tsp_params)
  | Quicksort -> ignore (Tmk_apps.Quicksort.parallel ~collect:false ctx quicksort_params)
  | Ilink -> ignore (Tmk_apps.Ilink.parallel ctx ilink_params)
  | Racey -> ignore (Tmk_apps.Racey.parallel ~collect:false ctx racey_params)
  | Racey2 -> ignore (Tmk_apps.Racey2.parallel ctx racey2_params)

let metrics_of_raw ~app cfg raw =
  let nprocs = cfg.Config.nprocs in
  let time_s = Vtime.to_s raw.Api.total_time in
  let per_sec n = float_of_int n /. time_s in
  let total_busy cat =
    let acc = ref 0 in
    for p = 0 to nprocs - 1 do
      acc := !acc + raw.Api.busy.(p).(Category.index cat)
    done;
    !acc
  in
  let denominator = float_of_int (nprocs * raw.Api.total_time) in
  let pct cat = 100.0 *. float_of_int (total_busy cat) /. denominator in
  let idle_total = Array.fold_left ( + ) 0 raw.Api.idle in
  let s = raw.Api.total_stats in
  {
    m_app = app;
    m_nprocs = nprocs;
    m_protocol = cfg.Config.protocol;
    m_net = Tmk_net.Params.name cfg.Config.net;
    m_time_s = time_s;
    m_barriers_per_sec = per_sec s.Stats.barriers /. float_of_int nprocs;
    m_locks_per_sec = per_sec s.Stats.lock_acquires;
    m_msgs_per_sec = per_sec raw.Api.messages;
    m_kbytes_per_sec = per_sec raw.Api.bytes /. 1024.0;
    m_diffs_per_sec = per_sec s.Stats.diffs_created;
    m_comp_pct = pct Category.Computation;
    m_unix_comm_pct = pct Category.Unix_comm;
    m_unix_mem_pct = pct Category.Unix_mem;
    m_tmk_mem_pct = pct Category.Tmk_mem;
    m_tmk_consistency_pct = pct Category.Tmk_consistency;
    m_tmk_other_pct = pct Category.Tmk_other;
    m_idle_pct = 100.0 *. float_of_int idle_total /. denominator;
    m_raw = raw;
  }

let run_cfg ?trace ~app cfg = metrics_of_raw ~app cfg (Api.run ?trace cfg (body app))

let run ~app ~nprocs ~protocol ~net = run_cfg ~app (config ~app ~nprocs ~protocol ~net)

(* Per-processor execution-time breakdown with idle reported explicitly
   as makespan − Σ busy categories (the paper's figure decompositions
   include idle; Category.t does not, so it is derived, never charged). *)
let breakdown_table m =
  let raw = m.m_raw in
  let ms v = Printf.sprintf "%.3f" (Vtime.to_ms v) in
  let header =
    [ "cpu"; "comp"; "unix comm"; "unix mem"; "tmk mem"; "tmk cons"; "tmk other";
      "busy"; "idle"; "total" ]
  in
  let row pid =
    let busy cat = raw.Api.busy.(pid).(Category.index cat) in
    let busy_sum =
      Array.fold_left Vtime.add Vtime.zero raw.Api.busy.(pid)
    in
    [ string_of_int pid; ms (busy Category.Computation); ms (busy Category.Unix_comm);
      ms (busy Category.Unix_mem); ms (busy Category.Tmk_mem);
      ms (busy Category.Tmk_consistency); ms (busy Category.Tmk_other);
      ms busy_sum; ms raw.Api.idle.(pid); ms raw.Api.total_time ]
  in
  Tmk_util.Tablefmt.render
    ~title:"Per-processor breakdown (ms; idle = makespan − Σ busy)"
    ~header
    (List.init m.m_nprocs row)

(* Checked runs collect the DSM result on processor 0 and hash the
   schedule-independent part: a correctly synchronized program must
   produce the same answer whatever the network does to the messages.
   TSP's [nodes_expanded] is excluded — it depends on when bound updates
   propagate, which faults legitimately shift. *)
let run_checked ~app cfg =
  let digest = ref "" in
  let put v =
    if !digest = "" then
      digest := Stdlib.Digest.to_hex (Stdlib.Digest.string (Marshal.to_string v []))
  in
  let checked_body ctx =
    match app with
    | Water -> (
      match Tmk_apps.Water.parallel ~collect:true ctx water_params with
      | Some r -> put (r.Tmk_apps.Water.energy, r.Tmk_apps.Water.positions)
      | None -> ())
    | Jacobi -> (
      match Tmk_apps.Jacobi.parallel ~collect:true ctx jacobi_params with
      | Some grid -> put grid
      | None -> ())
    | Tsp -> (
      match Tmk_apps.Tsp.parallel ctx tsp_params with
      | Some r -> put r.Tmk_apps.Tsp.best
      | None -> ())
    | Quicksort -> (
      match Tmk_apps.Quicksort.parallel ~collect:true ctx quicksort_params with
      | Some sorted -> put sorted
      | None -> ())
    | Ilink -> (
      match Tmk_apps.Ilink.parallel ctx ilink_params with
      | Some r -> put (r.Tmk_apps.Ilink.log_likelihood, r.Tmk_apps.Ilink.theta)
      | None -> ())
    | Racey -> (
      (* Racy by design, so the counts are schedule-dependent — but the
         schedule is deterministic per seed, so the digest still is. *)
      match Tmk_apps.Racey.parallel ~collect:true ctx racey_params with
      | Some hist -> put hist
      | None -> ())
    | Racey2 -> (
      match Tmk_apps.Racey2.parallel ctx racey2_params with
      | Some count -> put count
      | None -> ())
  in
  let raw = Api.run cfg checked_body in
  (metrics_of_raw ~app cfg raw, !digest)

let speedup ~app ~nprocs ~protocol ~net =
  let base = run ~app ~nprocs:1 ~protocol ~net in
  let par = run ~app ~nprocs ~protocol ~net in
  base.m_time_s /. par.m_time_s

(* Independent simulation arms on OCaml 5 domains.  Every run builds its
   own cluster, engine and RNG streams from the config's seed, so arms
   share no mutable state; results land in an index-keyed slot array, so
   the output order (and therefore every report built from it) is
   identical to the sequential order whatever the interleaving. *)
let parallel_map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f arr.(i));
        worker ()
      end
    in
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list (Array.map (function Some r -> r | None -> assert false) results)
  end
