open Tmk_sim
open Tmk_dsm
module Tablefmt = Tmk_util.Tablefmt
module Params = Tmk_net.Params

type id = E1 | E2 | E3 | E4 | E5 | E6 | E7 | E8 | E9 | E10 | E11 | E12 | E13

let all = [ E1; E2; E3; E4; E5; E6; E7; E8; E9; E10; E11; E12; E13 ]

let id_name = function
  | E1 -> "e1"
  | E2 -> "e2"
  | E3 -> "e3"
  | E4 -> "e4"
  | E5 -> "e5"
  | E6 -> "e6"
  | E7 -> "e7"
  | E8 -> "e8"
  | E9 -> "e9"
  | E10 -> "e10"
  | E11 -> "e11"
  | E12 -> "e12"
  | E13 -> "e13"

let id_of_name s =
  match String.lowercase_ascii s with
  | "e1" -> E1
  | "e2" -> E2
  | "e3" -> E3
  | "e4" -> E4
  | "e5" -> E5
  | "e6" -> E6
  | "e7" -> E7
  | "e8" -> E8
  | "e9" -> E9
  | "e10" -> E10
  | "e11" -> E11
  | "e12" -> E12
  | "e13" -> E13
  | other -> invalid_arg (Printf.sprintf "Experiments.id_of_name: unknown experiment %S" other)

let describe = function
  | E1 -> "basic operation costs (paper section 4.2)"
  | E2 -> "speedups on 1-8 processors, ATM/AAL3/4 (Figure 3)"
  | E3 -> "8-processor execution statistics (Figure 4)"
  | E4 -> "execution time breakdown (Figure 5)"
  | E5 -> "Unix overhead breakdown (Figure 6)"
  | E6 -> "TreadMarks overhead breakdown (Figure 7)"
  | E7 -> "Water across communication substrates (Figure 8)"
  | E8 -> "lazy vs eager release consistency (Figures 9-12)"
  | E9 -> "speedups on the 10 Mbps Ethernet (abstract)"
  | E10 -> "robustness sweep: all applications under 0-20% frame loss (section 3.7)"
  | E11 -> "scaling study, 2-64 processors, batched vs unbatched consistency traffic"
  | E12 -> "crash survival: recovery latency and diff replication cost, 8 processors"
  | E13 -> "coherence backend comparison: lazy/eager/tardis/sc-abd on both networks"

let atm = Params.atm_aal34

(* Worker-domain count for sweeps whose arms are independent runs (E10,
   E11); 1 = sequential.  Arms that share memoised [lazy] baselines stay
   sequential whatever this says — forcing a lazy from two domains races. *)
let jobs = ref 1
let set_jobs n = jobs := max 1 n

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f0 v = Printf.sprintf "%.0f" v

(* Shared measurements, computed once per process. *)
let lrc_atm_8p =
  lazy
    (List.map
       (fun app -> (app, Harness.run ~app ~nprocs:8 ~protocol:Config.Lrc ~net:atm))
       Harness.all_apps)

let lrc_atm_1p =
  lazy
    (List.map
       (fun app -> (app, Harness.run ~app ~nprocs:1 ~protocol:Config.Lrc ~net:atm))
       Harness.all_apps)

let metrics_8p app = List.assoc app (Lazy.force lrc_atm_8p)
let metrics_1p app = List.assoc app (Lazy.force lrc_atm_1p)

(* ------------------------------------------------------------------ *)
(* E1: basic operation costs                                           *)

let measure_op nprocs setup op =
  let cfg = { Config.default with Config.nprocs; pages = 4; seed = 5L } in
  let cluster = Protocol.create cfg in
  let engine = Protocol.engine cluster in
  setup cluster engine;
  let t0 = ref Vtime.zero and t1 = ref Vtime.zero in
  Engine.spawn engine 0 (fun () ->
      t0 := Engine.now engine;
      op cluster;
      t1 := Engine.now engine);
  Engine.run engine;
  Vtime.to_us (Vtime.sub !t1 !t0)

let e1 () =
  let idle_spawn pids cluster engine =
    ignore cluster;
    List.iter (fun p -> Engine.spawn engine p (fun () -> ())) pids
  in
  let lock_direct =
    measure_op 2 (idle_spawn [ 1 ]) (fun cluster -> Protocol.acquire cluster ~pid:0 ~lock:1)
  in
  let lock_forwarded =
    measure_op 3
      (fun cluster engine ->
        Engine.spawn engine 1 (fun () -> ());
        Engine.spawn engine 2 (fun () ->
            Protocol.acquire cluster ~pid:2 ~lock:1;
            Protocol.release cluster ~pid:2 ~lock:1))
      (fun cluster ->
        Engine.advance Category.Computation (Vtime.ms 20);
        Protocol.acquire cluster ~pid:0 ~lock:1)
    -. 20_000.0
  in
  let barrier8 =
    let cfg = { Config.default with Config.nprocs = 8; pages = 4; seed = 5L } in
    let cluster = Protocol.create cfg in
    let engine = Protocol.engine cluster in
    let finish = Array.make 8 Vtime.zero in
    for p = 0 to 7 do
      Engine.spawn engine p (fun () ->
          Protocol.barrier cluster ~pid:p ~id:0;
          finish.(p) <- Engine.now engine)
    done;
    Engine.run engine;
    Vtime.to_us (Array.fold_left Vtime.max Vtime.zero finish)
  in
  let page_fault =
    (* the faulting processor must be the one with no copy: measure on 1 *)
    let cfg = { Config.default with Config.nprocs = 2; pages = 4; seed = 5L } in
    let cluster = Protocol.create cfg in
    let engine = Protocol.engine cluster in
    Engine.spawn engine 0 (fun () -> ());
    let t0 = ref Vtime.zero and t1 = ref Vtime.zero in
    Engine.spawn engine 1 (fun () ->
        t0 := Engine.now engine;
        ignore (Tmk_mem.Vm.read_int (Protocol.node cluster 1).Node.vm 0);
        t1 := Engine.now engine);
    Engine.run engine;
    Vtime.to_us (Vtime.sub !t1 !t0)
  in
  (* minimum round trips over the raw transport: the paper's 500 us
     blocking-receive case, and the 670 us both-ends-handler case *)
  let roundtrip ~handlers =
    let engine = Engine.create ~nprocs:2 in
    let prng = Tmk_util.Prng.create 5L in
    let transport = Tmk_net.Transport.create ~engine ~params:Params.atm_aal34 ~prng () in
    let t0 = ref Vtime.zero and t1 = ref Vtime.zero in
    if handlers then begin
      (* both directions delivered through SIGIO handlers *)
      Engine.spawn engine 1 (fun () -> ());
      Engine.spawn engine 0 (fun () ->
          t0 := Engine.now engine;
          let done_ = Engine.Ivar.create () in
          Tmk_net.Transport.send transport ~src:0 ~dst:1 ~bytes:0 ~deliver:(fun h ->
              Tmk_net.Transport.hsend transport h ~dst:0 ~bytes:0 ~deliver:(fun h2 ->
                  Engine.fill engine done_ ~at:(Engine.hnow h2) ()));
          Engine.await done_;
          t1 := Engine.now engine)
    end
    else begin
      (* both ends block in receive: the paper's plain send/receive case *)
      let ping = Tmk_net.Transport.mailbox () and pong = Tmk_net.Transport.mailbox () in
      Engine.spawn engine 1 (fun () ->
          let () = Tmk_net.Transport.await_value transport ping in
          Tmk_net.Transport.send_value transport ~src:1 ~dst:0 ~bytes:0 pong ());
      Engine.spawn engine 0 (fun () ->
          t0 := Engine.now engine;
          Tmk_net.Transport.send_value transport ~src:0 ~dst:1 ~bytes:0 ping ();
          let () = Tmk_net.Transport.await_value transport pong in
          t1 := Engine.now engine)
    end;
    Engine.run engine;
    Vtime.to_us (Vtime.sub !t1 !t0)
  in
  let rt_blocking = roundtrip ~handlers:false in
  let rt_handlers = roundtrip ~handlers:true in
  Tablefmt.render ~title:"E1. Basic operation costs (us), ATM/AAL3/4 [paper section 4.2]"
    ~header:[ "operation"; "measured"; "paper" ]
    [
      [ "min round trip, blocked receive both ends"; f0 rt_blocking; "500" ];
      [ "round trip, signal handlers both ends"; f0 rt_handlers; "670" ];
      [ "lock acquire, manager was last holder"; f0 lock_direct; "827" ];
      [ "lock acquire, one forwarding hop"; f0 lock_forwarded; "1149" ];
      [ "barrier, 8 processors"; f0 barrier8; "2186" ];
      [ "remote page fault (4096 bytes)"; f0 page_fault; "2792" ];
    ]

(* ------------------------------------------------------------------ *)
(* E2: Figure 3 speedups                                               *)

let paper_speedups_atm =
  [ (Harness.Water, 4.0); (Harness.Jacobi, 7.4); (Harness.Tsp, 7.2);
    (Harness.Quicksort, 6.3); (Harness.Ilink, 5.7) ]

let e2 () =
  let procs = [ 1; 2; 4; 6; 8 ] in
  let curves =
    List.map
      (fun app ->
        let base = (metrics_1p app).Harness.m_time_s in
        let speeds =
          List.map
            (fun n ->
              if n = 1 then 1.0
              else if n = 8 then base /. (metrics_8p app).Harness.m_time_s
              else
                base
                /. (Harness.run ~app ~nprocs:n ~protocol:Config.Lrc ~net:atm).Harness.m_time_s)
            procs
        in
        (app, speeds))
      Harness.all_apps
  in
  let chart =
    Tablefmt.line_chart ~title:"E2. Speedups on ATM/AAL3/4 [Figure 3]" ~x_label:"processors"
      ~y_label:"speedup"
      ~x:(List.map float_of_int procs)
      (List.map
         (fun (app, speeds) ->
           (Harness.app_name app, (Harness.app_name app).[0], speeds))
         curves)
  in
  let table =
    Tablefmt.render ~title:"8-processor speedups vs paper"
      ~header:[ "app"; "measured"; "paper" ]
      (List.map
         (fun (app, speeds) ->
           (* last point of the sweep = the 8-processor speedup; an empty
              sweep must render, not raise *)
           let speed_8p =
             match List.rev speeds with [] -> "n/a" | last :: _ -> f2 last
           in
           [ Harness.app_name app; speed_8p; f1 (List.assoc app paper_speedups_atm) ])
         curves)
  in
  chart ^ "\n" ^ table

(* ------------------------------------------------------------------ *)
(* E3: Figure 4 execution statistics                                   *)

let paper_stats =
  (* app, time, barriers/s, locks/s, msgs/s, kbytes/s *)
  [ (Harness.Water, (15.0, 2.5, 582.4, 2238.0, 798.0));
    (Harness.Jacobi, (32.0, 6.3, 0.0, 334.0, 415.0));
    (Harness.Tsp, (43.8, 0.0, 16.1, 404.0, 121.0));
    (Harness.Quicksort, (13.1, 0.4, 53.9, 703.0, 788.0));
    (Harness.Ilink, (1113.0, 0.4, 0.0, 456.0, 164.0)) ]

let e3 () =
  let row app =
    let m = metrics_8p app in
    let pt, pb, pl, pm, pk = List.assoc app paper_stats in
    let avg_msg = 1024.0 *. m.Harness.m_kbytes_per_sec /. m.Harness.m_msgs_per_sec in
    let paper_avg = 1024.0 *. pk /. pm in
    [ Harness.app_name app;
      Harness.workload_description app;
      f1 m.Harness.m_time_s ^ " / " ^ f1 pt;
      f1 m.Harness.m_barriers_per_sec ^ " / " ^ f1 pb;
      f1 m.Harness.m_locks_per_sec ^ " / " ^ f1 pl;
      f0 m.Harness.m_msgs_per_sec ^ " / " ^ f0 pm;
      f0 m.Harness.m_kbytes_per_sec ^ " / " ^ f0 pk;
      f0 avg_msg ^ " / " ^ f0 paper_avg ]
  in
  let stats_table =
    Tablefmt.render
      ~title:
        "E3. Execution statistics, 8 processors, ATM (measured / paper) [Figure 4]\n\
         (inputs are scaled versions of the paper's; rates are expected to land in the same \
         regime, not match absolutely; the paper highlights Water's many small messages —\n\
         average size 356 bytes)"
      ~header:[ "app"; "input"; "time s"; "barr/s"; "locks/s"; "msgs/s"; "KB/s"; "B/msg" ]
      (List.map row Harness.all_apps)
  in
  (* Message mix for Water, the communication-bound case: which protocol
     operations the 4.7 "large number of small messages" actually are. *)
  let water = metrics_8p Harness.Water in
  let transport = Protocol.transport water.Harness.m_raw.Api.cluster in
  let mix =
    Tablefmt.render ~title:"Water message mix (protocol operation, frames, on-wire KB)"
      ~header:[ "operation"; "frames"; "KB"; "avg B" ]
      (List.map
         (fun e ->
           let msgs = e.Tmk_net.Transport.mix_msgs
           and bytes = e.Tmk_net.Transport.mix_bytes in
           [ e.Tmk_net.Transport.mix_label; string_of_int msgs;
             string_of_int (bytes / 1024);
             f0 (float_of_int bytes /. float_of_int (max 1 msgs)) ])
         (Tmk_net.Transport.message_mix transport))
  in
  stats_table ^ "\n" ^ mix

(* ------------------------------------------------------------------ *)
(* E4-E6: breakdowns                                                   *)

let e4 () =
  let items =
    List.map
      (fun app ->
        let m = metrics_8p app in
        ( Harness.app_name app,
          [ m.Harness.m_comp_pct; Harness.unix_pct m; Harness.tmk_pct m; m.Harness.m_idle_pct ] ))
      Harness.all_apps
  in
  Tablefmt.stacked_bar_chart
    ~title:
      "E4. Execution time breakdown, % of total, 8 processors [Figure 5]\n\
       (paper: Unix overhead at least 3x TreadMarks overhead for every application)"
    ~unit_:"%" ~components:[ "computation"; "unix"; "treadmarks"; "idle" ] items

let e5 () =
  let items =
    List.concat_map
      (fun app ->
        let m = metrics_8p app in
        [ (Harness.app_name app ^ " comm", m.Harness.m_unix_comm_pct);
          (Harness.app_name app ^ " mem", m.Harness.m_unix_mem_pct) ])
      Harness.all_apps
  in
  Tablefmt.bar_chart
    ~title:
      "E5. Unix overhead breakdown, % of total execution time [Figure 6]\n\
       (paper: at least 80% of kernel time is communication for every application)"
    ~unit_:"%" items

let e6 () =
  let items =
    List.map
      (fun app ->
        let m = metrics_8p app in
        ( Harness.app_name app,
          [ m.Harness.m_tmk_mem_pct; m.Harness.m_tmk_consistency_pct; m.Harness.m_tmk_other_pct ] ))
      Harness.all_apps
  in
  Tablefmt.stacked_bar_chart
    ~title:
      "E6. TreadMarks overhead breakdown, % of total execution time [Figure 7]\n\
       (paper: dominated by memory management; consistency bookkeeping small)"
    ~unit_:"%" ~components:[ "memory"; "consistency"; "other" ] items

(* ------------------------------------------------------------------ *)
(* E7: Figure 8, Water across substrates                               *)

let e7 () =
  let substrates =
    [ (Params.atm_aal34, 15.0); (Params.atm_udp, 17.5); (Params.ethernet_udp, 27.5) ]
  in
  let rows =
    List.map
      (fun (net, paper_time) ->
        let m = Harness.run ~app:Harness.Water ~nprocs:8 ~protocol:Config.Lrc ~net in
        (m, paper_time))
      substrates
  in
  let base = (fun (m, _) -> m.Harness.m_time_s) (List.hd rows) in
  let paper_base = 15.0 in
  let items =
    List.map
      (fun (m, _) ->
        ( m.Harness.m_net,
          [ m.Harness.m_comp_pct *. m.Harness.m_time_s /. 100.0;
            Harness.unix_pct m *. m.Harness.m_time_s /. 100.0;
            Harness.tmk_pct m *. m.Harness.m_time_s /. 100.0;
            m.Harness.m_idle_pct *. m.Harness.m_time_s /. 100.0 ] ))
      rows
  in
  let chart =
    Tablefmt.stacked_bar_chart
      ~title:"E7. Water, 8 processors, per-processor seconds by category [Figure 8]" ~unit_:"s"
      ~components:[ "computation"; "unix"; "treadmarks"; "idle" ] items
  in
  let table =
    Tablefmt.render ~title:"Relative execution time (ATM-AAL3/4 = 1.0)"
      ~header:[ "substrate"; "time s"; "relative"; "paper relative" ]
      (List.map
         (fun (m, paper_time) ->
           [ m.Harness.m_net; f2 m.Harness.m_time_s; f2 (m.Harness.m_time_s /. base);
             f2 (paper_time /. paper_base) ])
         rows)
  in
  chart ^ "\n" ^ table

(* ------------------------------------------------------------------ *)
(* E8: Figures 9-12, LRC vs ERC                                        *)

let e8 () =
  let erc app n = Harness.run ~app ~nprocs:n ~protocol:Config.Erc ~net:atm in
  let data =
    List.map
      (fun app ->
        let lazy8 = metrics_8p app in
        let lazy1 = metrics_1p app in
        let eager8 = erc app 8 in
        let eager1 = erc app 1 in
        ( app,
          lazy1.Harness.m_time_s /. lazy8.Harness.m_time_s,
          eager1.Harness.m_time_s /. eager8.Harness.m_time_s,
          lazy8,
          eager8 ))
      Harness.all_apps
  in
  let speedups =
    Tablefmt.grouped_bar_chart ~title:"E8a. Speedups, 8 processors [Figure 9]" ~unit_:"x"
      ~series:[ "lazy"; "eager" ]
      (List.map (fun (app, sl, se, _, _) -> (Harness.app_name app, [ sl; se ])) data)
  in
  let msgs =
    Tablefmt.grouped_bar_chart ~title:"E8b. Message rate (messages/sec) [Figure 10]" ~unit_:""
      ~series:[ "lazy"; "eager" ]
      (List.map
         (fun (app, _, _, l, e) ->
           (Harness.app_name app, [ l.Harness.m_msgs_per_sec; e.Harness.m_msgs_per_sec ]))
         data)
  in
  let bytes =
    Tablefmt.grouped_bar_chart ~title:"E8c. Data rate (kbytes/sec) [Figure 11]" ~unit_:""
      ~series:[ "lazy"; "eager" ]
      (List.map
         (fun (app, _, _, l, e) ->
           (Harness.app_name app, [ l.Harness.m_kbytes_per_sec; e.Harness.m_kbytes_per_sec ]))
         data)
  in
  let diffs =
    Tablefmt.grouped_bar_chart ~title:"E8d. Diff creation rate (diffs/sec) [Figure 12]"
      ~unit_:"" ~series:[ "lazy"; "eager" ]
      (List.map
         (fun (app, _, _, l, e) ->
           (Harness.app_name app, [ l.Harness.m_diffs_per_sec; e.Harness.m_diffs_per_sec ]))
         data)
  in
  let note =
    "paper shape: LRC beats ERC for Water and Quicksort; comparable for Jacobi and ILINK;\n\
     ERC beats LRC for TSP (stale unsynchronized bound reads cause redundant search under\n\
     LRC, section 5.2); ERC always creates diffs at least as fast (eager creation).\n"
  in
  speedups ^ "\n" ^ msgs ^ "\n" ^ bytes ^ "\n" ^ diffs ^ "\n" ^ note

(* ------------------------------------------------------------------ *)
(* E9: Ethernet speedups                                               *)

let paper_speedups_eth =
  [ (Harness.Water, 2.1); (Harness.Jacobi, 5.5); (Harness.Tsp, 6.5);
    (Harness.Quicksort, 4.2); (Harness.Ilink, 5.1) ]

let e9 () =
  let eth = Params.ethernet_udp in
  let rows =
    List.map
      (fun app ->
        let base = Harness.run ~app ~nprocs:1 ~protocol:Config.Lrc ~net:eth in
        let m = Harness.run ~app ~nprocs:8 ~protocol:Config.Lrc ~net:eth in
        [ Harness.app_name app;
          f2 (base.Harness.m_time_s /. m.Harness.m_time_s);
          f1 (List.assoc app paper_speedups_eth);
          f2
            ((metrics_1p app).Harness.m_time_s /. (metrics_8p app).Harness.m_time_s) ])
      Harness.all_apps
  in
  Tablefmt.render
    ~title:"E9. 8-processor speedups on the 10 Mbps Ethernet [paper abstract]"
    ~header:[ "app"; "measured"; "paper"; "(ATM measured)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10: robustness sweep                                               *)

let e10_loss_rates = [ 0.0; 0.01; 0.05; 0.10; 0.20 ]

let e10 () =
  let run_at app rate =
    let cfg = Harness.config ~app ~nprocs:8 ~protocol:Config.Lrc ~net:atm in
    let cfg =
      if rate = 0.0 then cfg
      else { cfg with Config.faults = Tmk_net.Fault_plan.with_loss Tmk_net.Fault_plan.none rate }
    in
    Harness.run_checked ~app cfg
  in
  (* app × loss-rate arms are independent checked runs — fan them across
     domains and look results up by arm (rate 0.0 doubles as the baseline,
     run once). *)
  let arms =
    List.concat_map
      (fun app -> List.map (fun rate -> (app, rate)) e10_loss_rates)
      Harness.all_apps
  in
  let results = Harness.parallel_map ~jobs:!jobs (fun (app, rate) -> run_at app rate) arms in
  let by_arm = Hashtbl.create 32 in
  List.iter2 (fun arm r -> Hashtbl.replace by_arm arm r) arms results;
  let rows =
    List.concat_map
      (fun app ->
        let base, base_digest = Hashtbl.find by_arm (app, 0.0) in
        let base_msgs = base.Harness.m_raw.Api.messages in
        List.map
          (fun rate ->
            let m, digest = Hashtbl.find by_arm (app, rate) in
            let msgs = m.Harness.m_raw.Api.messages in
            let overhead =
              100.0 *. (float_of_int msgs /. float_of_int base_msgs -. 1.0)
            in
            [ Harness.app_name app;
              Printf.sprintf "%.0f%%" (rate *. 100.0);
              f2 m.Harness.m_time_s;
              string_of_int m.Harness.m_raw.Api.retransmissions;
              string_of_int msgs;
              Printf.sprintf "%+.0f%%" overhead;
              (if digest = base_digest then "ok" else "MISMATCH") ])
          e10_loss_rates)
      Harness.all_apps
  in
  Tablefmt.render
    ~title:
      "E10. Robustness sweep: LRC, 8 processors, ATM, frame loss 0-20%\n\
       (user-level reliability protocol, section 3.7: the DSM answer must be\n\
       bit-identical at every loss rate; message overhead = extra frames from\n\
       retransmissions and acknowledgements vs the loss-free run)"
    ~header:[ "app"; "loss"; "time s"; "retrans"; "frames"; "overhead"; "result" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: scaling past the paper, batched vs unbatched traffic           *)

let e11_procs = [ 2; 4; 8; 16; 32; 64 ]

(* "Per acquire" normalizes traffic by synchronization operations (lock
   acquires + barrier arrivals): as the cluster grows, each operation
   carries more piggybacked intervals, and the batched protocol's win is
   exactly the frames it no longer pays per interval. *)
let e11_acquires (m : Harness.metrics) =
  let s = m.Harness.m_raw.Api.total_stats in
  s.Stats.lock_acquires + s.Stats.barriers

let e11_per_acquire (m : Harness.metrics) =
  let acq = float_of_int (max 1 (e11_acquires m)) in
  ( float_of_int m.Harness.m_raw.Api.messages /. acq,
    float_of_int m.Harness.m_raw.Api.bytes /. 1024.0 /. acq )

let e11_json ~file data =
  let b = Buffer.create 8192 in
  let mode_json (m : Harness.metrics) base_time =
    let mpa, kpa = e11_per_acquire m in
    let s = m.Harness.m_raw.Api.total_stats in
    Printf.sprintf
      "{\"time_s\":%.6f,\"speedup\":%.4f,\"messages\":%d,\"bytes\":%d,\"acquires\":%d,\
       \"msgs_per_acquire\":%.4f,\"kb_per_acquire\":%.4f,\"frames_coalesced\":%d,\
       \"diff_cache_hits\":%d,\"diff_cache_misses\":%d}"
      m.Harness.m_time_s
      (base_time /. m.Harness.m_time_s)
      m.Harness.m_raw.Api.messages m.Harness.m_raw.Api.bytes (e11_acquires m) mpa kpa
      m.Harness.m_raw.Api.frames_coalesced s.Stats.diff_cache_hits s.Stats.diff_cache_misses
  in
  Buffer.add_string b
    "{\"experiment\":\"E11\",\"protocol\":\"lrc\",\"network\":\"atm-aal34\",\"apps\":[";
  List.iteri
    (fun i (app, (base : Harness.metrics), points) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"app\":%S,\"workload\":%S,\"baseline_time_s\":%.6f,\"points\":["
           (Harness.app_name app)
           (Harness.workload_description app)
           base.Harness.m_time_s);
      List.iteri
        (fun j (n, batched, unbatched) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"nprocs\":%d,\"batched\":%s,\"unbatched\":%s}" n
               (mode_json batched base.Harness.m_time_s)
               (mode_json unbatched base.Harness.m_time_s)))
        points;
      Buffer.add_string b "]}")
    data;
  Buffer.add_string b "]}\n";
  let oc = open_out file in
  Buffer.output_buffer oc b;
  close_out oc

let e11 () =
  (* Every arm of the sweep is an independent run, so fan the flattened
     arm list across domains ([--jobs]) and reassemble by position —
     output is identical to the sequential nesting. *)
  let arms =
    List.concat_map
      (fun app ->
        (app, 1, true)
        :: List.concat_map (fun n -> [ (app, n, true); (app, n, false) ]) e11_procs)
      Harness.all_apps
  in
  let run_arm (app, n, batching) =
    let cfg = Harness.config ~app ~nprocs:n ~protocol:Config.Lrc ~net:atm in
    Harness.run_cfg ~app { cfg with Config.batching = batching }
  in
  let results = Harness.parallel_map ~jobs:!jobs run_arm arms in
  let by_arm = Hashtbl.create 128 in
  List.iter2 (fun arm m -> Hashtbl.replace by_arm arm m) arms results;
  let data =
    List.map
      (fun app ->
        let base = Hashtbl.find by_arm (app, 1, true) in
        let points =
          List.map
            (fun n ->
              (n, Hashtbl.find by_arm (app, n, true), Hashtbl.find by_arm (app, n, false)))
            e11_procs
        in
        (app, base, points))
      Harness.all_apps
  in
  let json_file = "BENCH_3.json" in
  e11_json ~file:json_file data;
  let speedup_chart =
    Tablefmt.line_chart
      ~title:"E11a. Speedups, 2-64 processors, batched (4x the paper's cluster size)"
      ~x_label:"processors" ~y_label:"speedup"
      ~x:(List.map float_of_int e11_procs)
      (List.map
         (fun (app, (base : Harness.metrics), points) ->
           ( Harness.app_name app,
             (Harness.app_name app).[0],
             List.map
               (fun (_, (batched : Harness.metrics), _) ->
                 base.Harness.m_time_s /. batched.Harness.m_time_s)
               points ))
         data)
  in
  let per_app (app, (base : Harness.metrics), points) =
    Tablefmt.render
      ~title:
        (Printf.sprintf "E11b. %s (%s): batched vs unbatched consistency traffic"
           (Harness.app_name app)
           (Harness.workload_description app))
      ~header:
        [ "procs"; "speedup b/u"; "msgs/acq b/u"; "KB/acq b/u"; "coalesced"; "cache h/m" ]
      (List.map
         (fun (n, (bm : Harness.metrics), (um : Harness.metrics)) ->
           let b_mpa, b_kpa = e11_per_acquire bm in
           let u_mpa, u_kpa = e11_per_acquire um in
           let bs = bm.Harness.m_raw.Api.total_stats in
           [ string_of_int n;
             f2 (base.Harness.m_time_s /. bm.Harness.m_time_s)
             ^ " / "
             ^ f2 (base.Harness.m_time_s /. um.Harness.m_time_s);
             f2 b_mpa ^ " / " ^ f2 u_mpa;
             f2 b_kpa ^ " / " ^ f2 u_kpa;
             string_of_int bm.Harness.m_raw.Api.frames_coalesced;
             Printf.sprintf "%d/%d" bs.Stats.diff_cache_hits bs.Stats.diff_cache_misses ])
         points)
  in
  let strict =
    List.for_all
      (fun (_, _, points) ->
        List.for_all
          (fun (_, bm, um) ->
            let b_mpa, _ = e11_per_acquire bm and u_mpa, _ = e11_per_acquire um in
            b_mpa < u_mpa)
          points)
      data
  in
  String.concat "\n"
    (speedup_chart :: List.map per_app data
    @ [
        Printf.sprintf
          "batching strictly reduces messages per acquire at every point: %s\n\
           (raw measurements written to %s)"
          (if strict then "yes" else "NO - REGRESSION")
          json_file;
      ])

(* ------------------------------------------------------------------ *)
(* E12: crash survival, recovery latency, diff replication cost        *)

let e12_nprocs = 8
let e12_crash_pid = 4

(* One arm of the E12 matrix.  [Harness.run_checked] raises [Degraded]
   when the survivors needed state only the dead processor held; the arm
   records that outcome instead of aborting the experiment. *)
type e12_outcome =
  | E12_ok of Harness.metrics * string  (* metrics, result digest *)
  | E12_degraded of int * string  (* pid whose loss caused it, reason *)

let e12_arm ~app ~crash_at ~backup =
  let cfg = Harness.config ~app ~nprocs:e12_nprocs ~protocol:Config.Lrc ~net:atm in
  let cfg = { cfg with Config.diff_backup = backup } in
  let cfg =
    match crash_at with
    | None -> cfg
    | Some at ->
      { cfg with
        Config.faults =
          Tmk_net.Fault_plan.with_crash Tmk_net.Fault_plan.none ~pid:e12_crash_pid ~at }
  in
  match Harness.run_checked ~app cfg with
  | m, digest -> E12_ok (m, digest)
  | exception Api.Degraded { pid; reason } -> E12_degraded (pid, reason)

let e12_json ~file data =
  let b = Buffer.create 8192 in
  let recovery_json (r : Protocol.recovery) =
    Printf.sprintf
      "{\"pid\":%d,\"epoch\":%d,\"crash_at_us\":%.0f,\"detected_at_us\":%.0f,\
       \"latency_us\":%.0f,\"locks_rehomed\":%d,\"refetches\":%d}"
      r.Protocol.rc_pid r.Protocol.rc_epoch
      (Vtime.to_us r.Protocol.rc_crash_at)
      (Vtime.to_us r.Protocol.rc_detected_at)
      (Vtime.to_us (Vtime.sub r.Protocol.rc_detected_at r.Protocol.rc_crash_at))
      r.Protocol.rc_locks_rehomed r.Protocol.rc_retries
  in
  let arm_json ~crash ~backup outcome =
    match outcome with
    | E12_degraded (pid, reason) ->
      Printf.sprintf "{\"crash\":%b,\"backup\":%b,\"survived\":false,\"degraded_pid\":%d,\
                      \"reason\":%S}"
        crash backup pid reason
    | E12_ok (m, digest) ->
      let s = m.Harness.m_raw.Api.total_stats in
      Printf.sprintf
        "{\"crash\":%b,\"backup\":%b,\"survived\":true,\"time_s\":%.6f,\"messages\":%d,\
         \"bytes\":%d,\"diff_backups\":%d,\"diff_backup_bytes\":%d,\"digest\":%S,\
         \"recoveries\":[%s]}"
        crash backup m.Harness.m_time_s m.Harness.m_raw.Api.messages
        m.Harness.m_raw.Api.bytes s.Stats.diff_backups s.Stats.diff_backup_bytes digest
        (String.concat "," (List.map recovery_json m.Harness.m_raw.Api.recoveries))
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"experiment\":\"E12\",\"protocol\":\"lrc\",\"network\":\"atm-aal34\",\
        \"nprocs\":%d,\"crash_pid\":%d,\"apps\":["
       e12_nprocs e12_crash_pid);
  List.iteri
    (fun i (app, crash_at, arms) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"app\":%S,\"crash_at_us\":%.0f,\"arms\":[" (Harness.app_name app)
           (Vtime.to_us crash_at));
      List.iteri
        (fun j ((crash, backup), outcome) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (arm_json ~crash ~backup outcome))
        arms;
      Buffer.add_string b "]}")
    data;
  Buffer.add_string b "]}\n";
  let oc = open_out file in
  Buffer.output_buffer oc b;
  close_out oc

let e12 () =
  let data =
    List.map
      (fun app ->
        (* Crash processor 4 halfway through the crash-free run. *)
        let base = e12_arm ~app ~crash_at:None ~backup:false in
        let base_time =
          match base with
          | E12_ok (m, _) -> m.Harness.m_time_s
          | E12_degraded _ -> assert false (* no crash plan: cannot degrade *)
        in
        let crash_at = Vtime.us (int_of_float (base_time *. 1e6 /. 2.0)) in
        let arms =
          [ ((false, false), base);
            ((false, true), e12_arm ~app ~crash_at:None ~backup:true);
            ((true, false), e12_arm ~app ~crash_at:(Some crash_at) ~backup:false);
            ((true, true), e12_arm ~app ~crash_at:(Some crash_at) ~backup:true) ]
        in
        (app, crash_at, arms))
      Harness.all_apps
  in
  let json_file = "BENCH_5.json" in
  e12_json ~file:json_file data;
  let arm_name (crash, backup) =
    (if crash then "crash" else "no crash") ^ (if backup then " +backup" else "")
  in
  let rows =
    List.concat_map
      (fun (app, crash_at, arms) ->
        List.map
          (fun (arm, outcome) ->
            let when_ = if fst arm then Printf.sprintf "%.0f" (Vtime.to_us crash_at) else "-" in
            match outcome with
            | E12_degraded (pid, reason) ->
              [ Harness.app_name app; arm_name arm; when_;
                Printf.sprintf "degraded (p%d: %s)" pid reason; "-"; "-"; "-" ]
            | E12_ok (m, _) ->
              let latency, rehomed, refetches =
                match m.Harness.m_raw.Api.recoveries with
                | [] -> ("-", "-", "-")
                | rs ->
                  ( String.concat "+"
                      (List.map
                         (fun r ->
                           f0
                             (Vtime.to_us
                                (Vtime.sub r.Protocol.rc_detected_at r.Protocol.rc_crash_at)))
                         rs),
                    string_of_int
                      (List.fold_left (fun a r -> a + r.Protocol.rc_locks_rehomed) 0 rs),
                    string_of_int (List.fold_left (fun a r -> a + r.Protocol.rc_retries) 0 rs) )
              in
              [ Harness.app_name app; arm_name arm; when_; "completed " ^ f2 m.Harness.m_time_s ^ "s";
                latency; rehomed; refetches ])
          arms)
      data
  in
  let table =
    Tablefmt.render
      ~title:
        (Printf.sprintf
           "E12. Crash survival: LRC, %d processors, ATM; processor %d dies halfway\n\
            (failure detection by heartbeat + retransmission exhaustion; lock managership\n\
            migrates to the next live processor; +backup mirrors each diff to one peer)"
           e12_nprocs e12_crash_pid)
      ~header:[ "app"; "arm"; "crash us"; "outcome"; "detect us"; "locks rehomed"; "refetches" ]
      rows
  in
  (* Replication cost: what the diff mirroring adds to a crash-free run. *)
  let overhead =
    Tablefmt.render ~title:"Diff replication overhead (no-crash runs, +backup vs plain)"
      ~header:[ "app"; "mirrored diffs"; "mirror KB"; "msgs +%"; "bytes +%"; "time +%" ]
      (List.filter_map
         (fun (app, _, arms) ->
           match (List.assoc (false, false) arms, List.assoc (false, true) arms) with
           | E12_ok (plain, _), E12_ok (backed, _) ->
             let s = backed.Harness.m_raw.Api.total_stats in
             let pct f g = Printf.sprintf "%+.1f%%" (100.0 *. ((f /. g) -. 1.0)) in
             Some
               [ Harness.app_name app;
                 string_of_int s.Stats.diff_backups;
                 string_of_int (s.Stats.diff_backup_bytes / 1024);
                 pct
                   (float_of_int backed.Harness.m_raw.Api.messages)
                   (float_of_int plain.Harness.m_raw.Api.messages);
                 pct
                   (float_of_int backed.Harness.m_raw.Api.bytes)
                   (float_of_int plain.Harness.m_raw.Api.bytes);
                 pct backed.Harness.m_time_s plain.Harness.m_time_s ]
           | _ -> None)
         data)
  in
  let survived_crashes =
    List.concat_map
      (fun (_, _, arms) ->
        List.filter_map
          (fun ((crash, _), o) ->
            if crash then Some (match o with E12_ok _ -> true | E12_degraded _ -> false)
            else None)
          arms)
      data
  in
  let n_ok = List.length (List.filter Fun.id survived_crashes) in
  table ^ "\n" ^ overhead
  ^ Printf.sprintf "\ncrash arms survived: %d/%d (raw measurements written to %s)\n" n_ok
      (List.length survived_crashes) json_file

(* ------------------------------------------------------------------ *)
(* E13: coherence backend comparison                                   *)

let e13_nprocs = 8
let e13_backends = [ Config.Lrc; Config.Erc; Config.Tardis; Config.Sc_abd ]
let e13_nets = [ Params.atm_aal34; Params.ethernet_udp ]

let e13_json ~file data =
  let b = Buffer.create 8192 in
  let arm_json (protocol, (m : Harness.metrics), digest) lazy_time =
    let s = m.Harness.m_raw.Api.total_stats in
    Printf.sprintf
      "{\"backend\":%S,\"time_s\":%.6f,\"vs_lazy\":%.4f,\"messages\":%d,\"bytes\":%d,\
       \"page_fetches\":%d,\"diffs_created\":%d,\"diffs_applied\":%d,\
       \"lease_expiries\":%d,\"quorum_reads\":%d,\"quorum_writes\":%d,\"digest\":%S}"
      (Config.protocol_name protocol)
      m.Harness.m_time_s
      (lazy_time /. m.Harness.m_time_s)
      m.Harness.m_raw.Api.messages m.Harness.m_raw.Api.bytes s.Stats.page_fetches
      s.Stats.diffs_created s.Stats.diffs_applied s.Stats.lease_expiries
      s.Stats.quorum_reads s.Stats.quorum_writes digest
  in
  Buffer.add_string b
    (Printf.sprintf "{\"experiment\":\"E13\",\"nprocs\":%d,\"networks\":[" e13_nprocs);
  List.iteri
    (fun i (net, by_app) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"network\":%S,\"apps\":[" (Params.name net));
      List.iteri
        (fun j (app, arms) ->
          if j > 0 then Buffer.add_char b ',';
          let lazy_time =
            let _, (m : Harness.metrics), _ =
              List.find (fun (p, _, _) -> p = Config.Lrc) arms
            in
            m.Harness.m_time_s
          in
          Buffer.add_string b
            (Printf.sprintf "{\"app\":%S,\"workload\":%S,\"backends\":[%s]}"
               (Harness.app_name app)
               (Harness.workload_description app)
               (String.concat "," (List.map (fun arm -> arm_json arm lazy_time) arms))))
        by_app;
      Buffer.add_string b "]}")
    data;
  Buffer.add_string b "]}\n";
  let oc = open_out file in
  Buffer.output_buffer oc b;
  close_out oc

let e13 () =
  let arms =
    List.concat_map
      (fun net ->
        List.concat_map
          (fun app -> List.map (fun protocol -> (net, app, protocol)) e13_backends)
          Harness.all_apps)
      e13_nets
  in
  let run_arm (net, app, protocol) =
    Harness.run_checked ~app (Harness.config ~app ~nprocs:e13_nprocs ~protocol ~net)
  in
  let results = Harness.parallel_map ~jobs:!jobs run_arm arms in
  let by_arm = Hashtbl.create 64 in
  List.iter2 (fun arm r -> Hashtbl.replace by_arm arm r) arms results;
  let data =
    List.map
      (fun net ->
        ( net,
          List.map
            (fun app ->
              ( app,
                List.map
                  (fun protocol ->
                    let m, digest = Hashtbl.find by_arm (net, app, protocol) in
                    (protocol, m, digest))
                  e13_backends ))
            Harness.all_apps ))
      e13_nets
  in
  let json_file = "BENCH_7.json" in
  e13_json ~file:json_file data;
  let per_net (net, by_app) =
    Tablefmt.render
      ~title:
        (Printf.sprintf
           "E13. Coherence backends on %s, %d processors\n\
            (time in simulated seconds; vs-lazy = lazy time / backend time)"
           (Params.name net) e13_nprocs)
      ~header:
        [ "app"; "lazy s"; "eager s (vs)"; "tardis s (vs)"; "sc-abd s (vs)"; "answers" ]
      (List.map
         (fun (app, arms) ->
           let time p =
             let _, (m : Harness.metrics), _ = List.find (fun (q, _, _) -> q = p) arms in
             m.Harness.m_time_s
           in
           let cell p = Printf.sprintf "%s (%s)" (f2 (time p)) (f2 (time Config.Lrc /. time p)) in
           let digests = List.map (fun (_, _, d) -> d) arms in
           let agree = List.for_all (fun d -> d = List.hd digests) digests in
           [ Harness.app_name app;
             f2 (time Config.Lrc);
             cell Config.Erc;
             cell Config.Tardis;
             cell Config.Sc_abd;
             (if agree then "identical" else "MISMATCH") ])
         by_app)
  in
  let all_agree =
    List.for_all
      (fun (_, by_app) ->
        List.for_all
          (fun (_, arms) ->
            match List.map (fun (_, _, d) -> d) arms with
            | [] -> true
            | d :: rest -> List.for_all (( = ) d) rest)
          by_app)
      data
  in
  String.concat "\n"
    (List.map per_net data
    @ [
        Printf.sprintf
          "every application digests identically under every backend: %s\n\
           (raw measurements written to %s)"
          (if all_agree then "yes" else "NO - REGRESSION")
          json_file;
      ])

let run = function
  | E1 -> e1 ()
  | E2 -> e2 ()
  | E3 -> e3 ()
  | E4 -> e4 ()
  | E5 -> e5 ()
  | E6 -> e6 ()
  | E7 -> e7 ()
  | E8 -> e8 ()
  | E9 -> e9 ()
  | E10 -> e10 ()
  | E11 -> e11 ()
  | E12 -> e12 ()
  | E13 -> e13 ()

let run_all () =
  String.concat "\n"
    (List.map
       (fun id ->
         Printf.sprintf "=== %s: %s ===\n%s" (String.uppercase_ascii (id_name id))
           (describe id) (run id))
       all)
