(** Typed protocol-trace events.

    One constructor per observable protocol transition, covering the whole
    surface the paper's evaluation instruments: lock acquire/release
    (local vs remote, forwarded through the statically assigned manager),
    barrier arrival/release, page faults and twin creation, diff
    create/apply/fetch with byte sizes, write-notice and interval receipt
    with vector timestamps, frame-level transport outcomes (send, receive,
    drop, duplicate, retransmission — wired to {!Tmk_net.Fault_plan}
    decisions), and garbage collection.

    This module deliberately depends on nothing above [tmk_util]: times
    are plain integers (nanoseconds of virtual time, {!Tmk_sim.Vtime.t}'s
    representation) and vector timestamps are plain [int array] copies, so
    every layer of the system — including the simulation engine itself —
    can emit events without a dependency cycle. *)

(** Kind of memory access that faulted. *)
type fault_kind = Read | Write

type t =
  (* Locks (§3.3) *)
  | Lock_acquire of { lock : int; local : bool }
      (** the application asks for the lock; begins the wait span *)
  | Lock_acquired of { lock : int; local : bool }
      (** the application holds the lock; ends the wait span *)
  | Lock_release of { lock : int; granted_to : int option }
      (** release; [granted_to] is the queued requester the token moves
          to, or [None] when it stays cached here *)
  | Lock_queued of { lock : int; requester : int }
      (** a request reached the token holder while the lock was held —
          the direct observation of contention *)
  | Lock_request_recv of { lock : int; requester : int }
      (** the statically assigned manager received a request *)
  | Lock_forward of { lock : int; requester : int; target : int }
      (** the manager forwarded the request along the probable-owner
          chain *)
  | Lock_grant of { lock : int; requester : int; intervals : int; bytes : int }
      (** a grant left this processor, piggybacking [intervals] interval
          records in a [bytes]-byte message *)
  (* Barriers (§3.4) *)
  | Barrier_arrive of { id : int; epoch : int }
      (** arrival at the barrier; [epoch] is this processor's global
          barrier sequence number; begins the wait span *)
  | Barrier_release of { id : int; epoch : int }
      (** this processor crossed the barrier; ends the wait span *)
  (* Page faults and page movement (§3.5) *)
  | Page_fault of { page : int; kind : fault_kind }  (** begins the fault span *)
  | Page_fault_done of { page : int; kind : fault_kind }  (** ends the fault span *)
  | Twin_create of { page : int }
  | Page_fetch of { page : int; from_ : int }
      (** a full base copy was fetched from [from_] and installed *)
  | Page_invalidate of { page : int }
      (** a write notice invalidated the local copy *)
  (* Diffs (§2.4, §3.2) *)
  | Diff_create of { page : int; bytes : int; proc : int; interval : int }
      (** [bytes] is the encoded size; [(proc, interval)] identifies the
          interval the diff belongs to, or [(p, -1)] when the protocol has
          no intervals (the ERC baseline's eager flush) *)
  | Diff_apply of { page : int; bytes : int; proc : int; interval : int }
      (** [bytes] is the payload patched in; [(proc, interval)] as for
          {!Diff_create}, [-1] when the applier no longer knows the origin *)
  | Diff_fetch of { page : int; from_ : int; count : int }
      (** a lazy diff request for [count] diffs left for [from_] *)
  (* Consistency records (§2.2, §3.1) *)
  | Interval_close of { id : int; notices : int; vt : int array }
      (** a local interval was closed with [notices] write notices *)
  | Interval_recv of { proc : int; id : int; notices : int; vt : int array }
      (** a remote interval record was incorporated *)
  | Write_notice_recv of { page : int; proc : int; interval : int }
  (* Transport frames (§3.7) *)
  | Frame_send of { src : int; dst : int; label : string; bytes : int; retrans : bool }
      (** a frame (headers included) was handed to the medium *)
  | Frame_recv of { src : int; dst : int; label : string; bytes : int }
  | Frame_drop of { src : int; dst : int; label : string; bytes : int }
      (** the fault plan dropped the frame (loss or partition) *)
  | Frame_dup of { src : int; dst : int; label : string }
      (** the medium injected a duplicate copy *)
  | Frame_batch of { src : int; dst : int; label : string; parts : int }
      (** a batching transport coalesced [parts] logical protocol units
          into the single frame just sent (follows its [Frame_send]) *)
  | Diff_cache of { page : int; hit : bool }
      (** a responder served a diff fetch from its (proc, interval, page)
          diff cache ([hit = true]) or computed and cached it *)
  (* Garbage collection (§3.6) *)
  | Gc_begin of { live : int }  (** live consistency records at entry *)
  | Gc_end of { discarded : int }
  (* Crash-stop failures and recovery *)
  | Proc_crash  (** the processor failed (crash-stop): silent from here on *)
  | Peer_suspect of { dst : int; label : string; attempts : int }
      (** this processor's retry budget for a [label] message to [dst] ran
          out after [attempts] transmissions — the failure-detection
          signal *)
  | Failover of { dead : int; epoch : int }
      (** recovery from [dead]'s crash begins; the membership advanced to
          [epoch] *)
  | Recovery_done of { dead : int; locks : int; retries : int }
      (** recovery finished: [locks] lock tokens/queues were rebuilt and
          [retries] in-flight fetches re-driven *)
  | Diff_backup of { page : int; proc : int; interval : int; bytes : int; to_ : int }
      (** [diff_backup] mode mirrored a freshly created diff to its
          deterministic backup peer [to_] *)
  (* Tardis / SC-ABD backends *)
  | Ts_sync of { ts : int }
      (** Tardis: a synchronization absorbed the granter's scalar logical
          time, advancing this processor's clock to [ts] *)
  | Lease_expire of { page : int }
      (** Tardis: a lease sweep invalidated the cached copy of [page] *)
  | Quorum_read of { page : int; replies : int }
      (** SC-ABD: a miss on [page] completed a majority-quorum read with
          [replies] replica answers (excluding self) *)
  | Quorum_write of { pages : int; acks : int }
      (** SC-ABD: a flush stored [pages] dirty pages to a majority,
          gathering [acks] store acknowledgements (excluding self) *)
  (* Engine *)
  | Proc_finish  (** the application process returned *)
  | Mark of string  (** free-text marker ({!Tmk_sim.Engine.trace} shim) *)

(** Serialized argument of an event field, for the exporters. *)
type arg = Int of int | Bool of bool | Str of string | Ints of int array

(** [name ev] — stable kebab-case event name ("lock-acquire", ...). *)
val name : t -> string

(** [args ev] — the event's fields in declaration order, for exporters.
    Deterministic: same event, same list. *)
val args : t -> (string * arg) list

(** [fault_kind_name k] — ["read"] or ["write"]. *)
val fault_kind_name : fault_kind -> string

(** [of_args name args] rebuilds the event [name]/[args] serialized — the
    exact inverse of the two functions above, used when re-reading a
    recorded JSONL stream.  [None] on an unknown name or missing/mistyped
    field. *)
val of_args : string -> (string * arg) list -> t option
