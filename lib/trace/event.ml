type fault_kind = Read | Write

type t =
  | Lock_acquire of { lock : int; local : bool }
  | Lock_acquired of { lock : int; local : bool }
  | Lock_release of { lock : int; granted_to : int option }
  | Lock_queued of { lock : int; requester : int }
  | Lock_request_recv of { lock : int; requester : int }
  | Lock_forward of { lock : int; requester : int; target : int }
  | Lock_grant of { lock : int; requester : int; intervals : int; bytes : int }
  | Barrier_arrive of { id : int; epoch : int }
  | Barrier_release of { id : int; epoch : int }
  | Page_fault of { page : int; kind : fault_kind }
  | Page_fault_done of { page : int; kind : fault_kind }
  | Twin_create of { page : int }
  | Page_fetch of { page : int; from_ : int }
  | Page_invalidate of { page : int }
  | Diff_create of { page : int; bytes : int }
  | Diff_apply of { page : int; bytes : int }
  | Diff_fetch of { page : int; from_ : int; count : int }
  | Interval_close of { id : int; notices : int; vt : int array }
  | Interval_recv of { proc : int; id : int; notices : int; vt : int array }
  | Write_notice_recv of { page : int; proc : int; interval : int }
  | Frame_send of { src : int; dst : int; label : string; bytes : int; retrans : bool }
  | Frame_recv of { src : int; dst : int; label : string; bytes : int }
  | Frame_drop of { src : int; dst : int; label : string; bytes : int }
  | Frame_dup of { src : int; dst : int; label : string }
  | Frame_batch of { src : int; dst : int; label : string; parts : int }
  | Diff_cache of { page : int; hit : bool }
  | Gc_begin of { live : int }
  | Gc_end of { discarded : int }
  | Proc_finish
  | Mark of string

type arg = Int of int | Bool of bool | Str of string | Ints of int array

let fault_kind_name = function Read -> "read" | Write -> "write"

let name = function
  | Lock_acquire _ -> "lock-acquire"
  | Lock_acquired _ -> "lock-acquired"
  | Lock_release _ -> "lock-release"
  | Lock_queued _ -> "lock-queued"
  | Lock_request_recv _ -> "lock-request-recv"
  | Lock_forward _ -> "lock-forward"
  | Lock_grant _ -> "lock-grant"
  | Barrier_arrive _ -> "barrier-arrive"
  | Barrier_release _ -> "barrier-release"
  | Page_fault _ -> "page-fault"
  | Page_fault_done _ -> "page-fault-done"
  | Twin_create _ -> "twin-create"
  | Page_fetch _ -> "page-fetch"
  | Page_invalidate _ -> "page-invalidate"
  | Diff_create _ -> "diff-create"
  | Diff_apply _ -> "diff-apply"
  | Diff_fetch _ -> "diff-fetch"
  | Interval_close _ -> "interval-close"
  | Interval_recv _ -> "interval-recv"
  | Write_notice_recv _ -> "write-notice-recv"
  | Frame_send _ -> "frame-send"
  | Frame_recv _ -> "frame-recv"
  | Frame_drop _ -> "frame-drop"
  | Frame_dup _ -> "frame-dup"
  | Frame_batch _ -> "frame-batch"
  | Diff_cache _ -> "diff-cache"
  | Gc_begin _ -> "gc-begin"
  | Gc_end _ -> "gc-end"
  | Proc_finish -> "proc-finish"
  | Mark _ -> "mark"

let args = function
  | Lock_acquire { lock; local } | Lock_acquired { lock; local } ->
    [ ("lock", Int lock); ("local", Bool local) ]
  | Lock_release { lock; granted_to } ->
    [ ("lock", Int lock);
      ("granted_to", Int (match granted_to with Some p -> p | None -> -1)) ]
  | Lock_queued { lock; requester } | Lock_request_recv { lock; requester } ->
    [ ("lock", Int lock); ("requester", Int requester) ]
  | Lock_forward { lock; requester; target } ->
    [ ("lock", Int lock); ("requester", Int requester); ("target", Int target) ]
  | Lock_grant { lock; requester; intervals; bytes } ->
    [ ("lock", Int lock); ("requester", Int requester); ("intervals", Int intervals);
      ("bytes", Int bytes) ]
  | Barrier_arrive { id; epoch } | Barrier_release { id; epoch } ->
    [ ("id", Int id); ("epoch", Int epoch) ]
  | Page_fault { page; kind } | Page_fault_done { page; kind } ->
    [ ("page", Int page); ("kind", Str (fault_kind_name kind)) ]
  | Twin_create { page } | Page_invalidate { page } -> [ ("page", Int page) ]
  | Page_fetch { page; from_ } -> [ ("page", Int page); ("from", Int from_) ]
  | Diff_create { page; bytes } | Diff_apply { page; bytes } ->
    [ ("page", Int page); ("bytes", Int bytes) ]
  | Diff_fetch { page; from_; count } ->
    [ ("page", Int page); ("from", Int from_); ("count", Int count) ]
  | Interval_close { id; notices; vt } ->
    [ ("id", Int id); ("notices", Int notices); ("vt", Ints vt) ]
  | Interval_recv { proc; id; notices; vt } ->
    [ ("proc", Int proc); ("id", Int id); ("notices", Int notices); ("vt", Ints vt) ]
  | Write_notice_recv { page; proc; interval } ->
    [ ("page", Int page); ("proc", Int proc); ("interval", Int interval) ]
  | Frame_send { src; dst; label; bytes; retrans } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label); ("bytes", Int bytes);
      ("retrans", Bool retrans) ]
  | Frame_recv { src; dst; label; bytes } | Frame_drop { src; dst; label; bytes } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label); ("bytes", Int bytes) ]
  | Frame_dup { src; dst; label } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label) ]
  | Frame_batch { src; dst; label; parts } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label); ("parts", Int parts) ]
  | Diff_cache { page; hit } -> [ ("page", Int page); ("hit", Bool hit) ]
  | Gc_begin { live } -> [ ("live", Int live) ]
  | Gc_end { discarded } -> [ ("discarded", Int discarded) ]
  | Proc_finish -> []
  | Mark msg -> [ ("msg", Str msg) ]
