type fault_kind = Read | Write

type t =
  | Lock_acquire of { lock : int; local : bool }
  | Lock_acquired of { lock : int; local : bool }
  | Lock_release of { lock : int; granted_to : int option }
  | Lock_queued of { lock : int; requester : int }
  | Lock_request_recv of { lock : int; requester : int }
  | Lock_forward of { lock : int; requester : int; target : int }
  | Lock_grant of { lock : int; requester : int; intervals : int; bytes : int }
  | Barrier_arrive of { id : int; epoch : int }
  | Barrier_release of { id : int; epoch : int }
  | Page_fault of { page : int; kind : fault_kind }
  | Page_fault_done of { page : int; kind : fault_kind }
  | Twin_create of { page : int }
  | Page_fetch of { page : int; from_ : int }
  | Page_invalidate of { page : int }
  | Diff_create of { page : int; bytes : int; proc : int; interval : int }
  | Diff_apply of { page : int; bytes : int; proc : int; interval : int }
  | Diff_fetch of { page : int; from_ : int; count : int }
  | Interval_close of { id : int; notices : int; vt : int array }
  | Interval_recv of { proc : int; id : int; notices : int; vt : int array }
  | Write_notice_recv of { page : int; proc : int; interval : int }
  | Frame_send of { src : int; dst : int; label : string; bytes : int; retrans : bool }
  | Frame_recv of { src : int; dst : int; label : string; bytes : int }
  | Frame_drop of { src : int; dst : int; label : string; bytes : int }
  | Frame_dup of { src : int; dst : int; label : string }
  | Frame_batch of { src : int; dst : int; label : string; parts : int }
  | Diff_cache of { page : int; hit : bool }
  | Gc_begin of { live : int }
  | Gc_end of { discarded : int }
  | Proc_crash
  | Peer_suspect of { dst : int; label : string; attempts : int }
  | Failover of { dead : int; epoch : int }
  | Recovery_done of { dead : int; locks : int; retries : int }
  | Diff_backup of { page : int; proc : int; interval : int; bytes : int; to_ : int }
  | Ts_sync of { ts : int }
  | Lease_expire of { page : int }
  | Quorum_read of { page : int; replies : int }
  | Quorum_write of { pages : int; acks : int }
  | Proc_finish
  | Mark of string

type arg = Int of int | Bool of bool | Str of string | Ints of int array

let fault_kind_name = function Read -> "read" | Write -> "write"

let name = function
  | Lock_acquire _ -> "lock-acquire"
  | Lock_acquired _ -> "lock-acquired"
  | Lock_release _ -> "lock-release"
  | Lock_queued _ -> "lock-queued"
  | Lock_request_recv _ -> "lock-request-recv"
  | Lock_forward _ -> "lock-forward"
  | Lock_grant _ -> "lock-grant"
  | Barrier_arrive _ -> "barrier-arrive"
  | Barrier_release _ -> "barrier-release"
  | Page_fault _ -> "page-fault"
  | Page_fault_done _ -> "page-fault-done"
  | Twin_create _ -> "twin-create"
  | Page_fetch _ -> "page-fetch"
  | Page_invalidate _ -> "page-invalidate"
  | Diff_create _ -> "diff-create"
  | Diff_apply _ -> "diff-apply"
  | Diff_fetch _ -> "diff-fetch"
  | Interval_close _ -> "interval-close"
  | Interval_recv _ -> "interval-recv"
  | Write_notice_recv _ -> "write-notice-recv"
  | Frame_send _ -> "frame-send"
  | Frame_recv _ -> "frame-recv"
  | Frame_drop _ -> "frame-drop"
  | Frame_dup _ -> "frame-dup"
  | Frame_batch _ -> "frame-batch"
  | Diff_cache _ -> "diff-cache"
  | Gc_begin _ -> "gc-begin"
  | Gc_end _ -> "gc-end"
  | Proc_crash -> "proc-crash"
  | Peer_suspect _ -> "peer-suspect"
  | Failover _ -> "failover"
  | Recovery_done _ -> "recovery-done"
  | Diff_backup _ -> "diff-backup"
  | Ts_sync _ -> "ts-sync"
  | Lease_expire _ -> "lease-expire"
  | Quorum_read _ -> "quorum-read"
  | Quorum_write _ -> "quorum-write"
  | Proc_finish -> "proc-finish"
  | Mark _ -> "mark"

let args = function
  | Lock_acquire { lock; local } | Lock_acquired { lock; local } ->
    [ ("lock", Int lock); ("local", Bool local) ]
  | Lock_release { lock; granted_to } ->
    [ ("lock", Int lock);
      ("granted_to", Int (match granted_to with Some p -> p | None -> -1)) ]
  | Lock_queued { lock; requester } | Lock_request_recv { lock; requester } ->
    [ ("lock", Int lock); ("requester", Int requester) ]
  | Lock_forward { lock; requester; target } ->
    [ ("lock", Int lock); ("requester", Int requester); ("target", Int target) ]
  | Lock_grant { lock; requester; intervals; bytes } ->
    [ ("lock", Int lock); ("requester", Int requester); ("intervals", Int intervals);
      ("bytes", Int bytes) ]
  | Barrier_arrive { id; epoch } | Barrier_release { id; epoch } ->
    [ ("id", Int id); ("epoch", Int epoch) ]
  | Page_fault { page; kind } | Page_fault_done { page; kind } ->
    [ ("page", Int page); ("kind", Str (fault_kind_name kind)) ]
  | Twin_create { page } | Page_invalidate { page } -> [ ("page", Int page) ]
  | Page_fetch { page; from_ } -> [ ("page", Int page); ("from", Int from_) ]
  | Diff_create { page; bytes; proc; interval } | Diff_apply { page; bytes; proc; interval } ->
    [ ("page", Int page); ("bytes", Int bytes); ("proc", Int proc); ("interval", Int interval) ]
  | Diff_fetch { page; from_; count } ->
    [ ("page", Int page); ("from", Int from_); ("count", Int count) ]
  | Interval_close { id; notices; vt } ->
    [ ("id", Int id); ("notices", Int notices); ("vt", Ints vt) ]
  | Interval_recv { proc; id; notices; vt } ->
    [ ("proc", Int proc); ("id", Int id); ("notices", Int notices); ("vt", Ints vt) ]
  | Write_notice_recv { page; proc; interval } ->
    [ ("page", Int page); ("proc", Int proc); ("interval", Int interval) ]
  | Frame_send { src; dst; label; bytes; retrans } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label); ("bytes", Int bytes);
      ("retrans", Bool retrans) ]
  | Frame_recv { src; dst; label; bytes } | Frame_drop { src; dst; label; bytes } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label); ("bytes", Int bytes) ]
  | Frame_dup { src; dst; label } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label) ]
  | Frame_batch { src; dst; label; parts } ->
    [ ("src", Int src); ("dst", Int dst); ("label", Str label); ("parts", Int parts) ]
  | Diff_cache { page; hit } -> [ ("page", Int page); ("hit", Bool hit) ]
  | Gc_begin { live } -> [ ("live", Int live) ]
  | Gc_end { discarded } -> [ ("discarded", Int discarded) ]
  | Proc_crash -> []
  | Peer_suspect { dst; label; attempts } ->
    [ ("dst", Int dst); ("label", Str label); ("attempts", Int attempts) ]
  | Failover { dead; epoch } -> [ ("dead", Int dead); ("epoch", Int epoch) ]
  | Recovery_done { dead; locks; retries } ->
    [ ("dead", Int dead); ("locks", Int locks); ("retries", Int retries) ]
  | Diff_backup { page; proc; interval; bytes; to_ } ->
    [ ("page", Int page); ("proc", Int proc); ("interval", Int interval);
      ("bytes", Int bytes); ("to", Int to_) ]
  | Ts_sync { ts } -> [ ("ts", Int ts) ]
  | Lease_expire { page } -> [ ("page", Int page) ]
  | Quorum_read { page; replies } -> [ ("page", Int page); ("replies", Int replies) ]
  | Quorum_write { pages; acks } -> [ ("pages", Int pages); ("acks", Int acks) ]
  | Proc_finish -> []
  | Mark msg -> [ ("msg", Str msg) ]

(* Inverse of [name]/[args], for re-reading recorded JSONL streams.  Local
   exception turns any missing/mistyped field into [None]. *)
exception Bad_args

let of_args ev_name ev_args =
  let int k = match List.assoc_opt k ev_args with Some (Int v) -> v | _ -> raise Bad_args in
  let bool k = match List.assoc_opt k ev_args with Some (Bool v) -> v | _ -> raise Bad_args in
  let str k = match List.assoc_opt k ev_args with Some (Str v) -> v | _ -> raise Bad_args in
  let ints k = match List.assoc_opt k ev_args with Some (Ints v) -> v | _ -> raise Bad_args in
  let fault k =
    match str k with "read" -> Read | "write" -> Write | _ -> raise Bad_args
  in
  try
    let ev =
      match ev_name with
      | "lock-acquire" -> Lock_acquire { lock = int "lock"; local = bool "local" }
      | "lock-acquired" -> Lock_acquired { lock = int "lock"; local = bool "local" }
      | "lock-release" ->
        let g = int "granted_to" in
        Lock_release { lock = int "lock"; granted_to = (if g < 0 then None else Some g) }
      | "lock-queued" -> Lock_queued { lock = int "lock"; requester = int "requester" }
      | "lock-request-recv" ->
        Lock_request_recv { lock = int "lock"; requester = int "requester" }
      | "lock-forward" ->
        Lock_forward { lock = int "lock"; requester = int "requester"; target = int "target" }
      | "lock-grant" ->
        Lock_grant
          { lock = int "lock"; requester = int "requester"; intervals = int "intervals";
            bytes = int "bytes" }
      | "barrier-arrive" -> Barrier_arrive { id = int "id"; epoch = int "epoch" }
      | "barrier-release" -> Barrier_release { id = int "id"; epoch = int "epoch" }
      | "page-fault" -> Page_fault { page = int "page"; kind = fault "kind" }
      | "page-fault-done" -> Page_fault_done { page = int "page"; kind = fault "kind" }
      | "twin-create" -> Twin_create { page = int "page" }
      | "page-fetch" -> Page_fetch { page = int "page"; from_ = int "from" }
      | "page-invalidate" -> Page_invalidate { page = int "page" }
      | "diff-create" ->
        Diff_create
          { page = int "page"; bytes = int "bytes"; proc = int "proc";
            interval = int "interval" }
      | "diff-apply" ->
        Diff_apply
          { page = int "page"; bytes = int "bytes"; proc = int "proc";
            interval = int "interval" }
      | "diff-fetch" ->
        Diff_fetch { page = int "page"; from_ = int "from"; count = int "count" }
      | "interval-close" ->
        Interval_close { id = int "id"; notices = int "notices"; vt = ints "vt" }
      | "interval-recv" ->
        Interval_recv
          { proc = int "proc"; id = int "id"; notices = int "notices"; vt = ints "vt" }
      | "write-notice-recv" ->
        Write_notice_recv { page = int "page"; proc = int "proc"; interval = int "interval" }
      | "frame-send" ->
        Frame_send
          { src = int "src"; dst = int "dst"; label = str "label"; bytes = int "bytes";
            retrans = bool "retrans" }
      | "frame-recv" ->
        Frame_recv
          { src = int "src"; dst = int "dst"; label = str "label"; bytes = int "bytes" }
      | "frame-drop" ->
        Frame_drop
          { src = int "src"; dst = int "dst"; label = str "label"; bytes = int "bytes" }
      | "frame-dup" -> Frame_dup { src = int "src"; dst = int "dst"; label = str "label" }
      | "frame-batch" ->
        Frame_batch
          { src = int "src"; dst = int "dst"; label = str "label"; parts = int "parts" }
      | "diff-cache" -> Diff_cache { page = int "page"; hit = bool "hit" }
      | "gc-begin" -> Gc_begin { live = int "live" }
      | "gc-end" -> Gc_end { discarded = int "discarded" }
      | "proc-crash" -> Proc_crash
      | "peer-suspect" ->
        Peer_suspect { dst = int "dst"; label = str "label"; attempts = int "attempts" }
      | "failover" -> Failover { dead = int "dead"; epoch = int "epoch" }
      | "recovery-done" ->
        Recovery_done { dead = int "dead"; locks = int "locks"; retries = int "retries" }
      | "diff-backup" ->
        Diff_backup
          { page = int "page"; proc = int "proc"; interval = int "interval";
            bytes = int "bytes"; to_ = int "to" }
      | "ts-sync" -> Ts_sync { ts = int "ts" }
      | "lease-expire" -> Lease_expire { page = int "page" }
      | "quorum-read" -> Quorum_read { page = int "page"; replies = int "replies" }
      | "quorum-write" -> Quorum_write { pages = int "pages"; acks = int "acks" }
      | "proc-finish" -> Proc_finish
      | "mark" -> Mark (str "msg")
      | _ -> raise Bad_args
    in
    Some ev
  with Bad_args -> None
