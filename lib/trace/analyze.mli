(** Trace analyzer: the paper's §5 measurements, recomputed per event.

    Consumes a recorded stream and derives the figures the evaluation
    section tabulates — lock contention and wait/hold times, hot pages
    (the false-sharing signal: many faults and much diff traffic on the
    same page), barrier skew per epoch, and per-processor wait
    decompositions with a critical-path estimate.  [report] renders them
    with {!Tmk_util.Tablefmt}. *)

type lock_stats = {
  l_id : int;
  l_acquires : int;  (** total acquires across processors *)
  l_local : int;  (** acquires satisfied from the local cached token *)
  l_queued : int;  (** requests that arrived while the lock was held *)
  l_wait_ns : int;  (** total time between acquire request and grant *)
  l_hold_ns : int;  (** total time between grant and release *)
}

type page_stats = {
  p_id : int;
  p_read_faults : int;
  p_write_faults : int;
  p_fetches : int;  (** full-page base fetches *)
  p_invalidations : int;
  p_diff_bytes_created : int;
  p_diff_bytes_applied : int;
  p_writers : int;  (** distinct processors that produced write notices *)
}

type barrier_epoch = {
  be_id : int;
  be_epoch : int;  (** per-barrier occurrence index, computed from the stream *)
  be_first_arrival : int;
  be_last_arrival : int;  (** skew = last − first *)
  be_release : int;  (** time the last processor crossed *)
}

type proc_stats = {
  pr_pid : int;
  pr_finish : int;  (** virtual time the process returned; 0 if unseen *)
  pr_lock_wait : int;
  pr_barrier_wait : int;
  pr_fault_wait : int;
  pr_frames_sent : int;
  pr_bytes_sent : int;
}

type t = {
  a_end : int;  (** time of the last record *)
  a_events : int;
  a_locks : lock_stats list;  (** most-waited-on first *)
  a_pages : page_stats list;  (** hottest first *)
  a_barriers : barrier_epoch list;  (** chronological *)
  a_procs : proc_stats list;  (** by pid *)
}

(** [analyze sink] — single pass over the stream. *)
val analyze : Sink.t -> t

(** [hot_score p] — the ranking key for [a_pages]: faults weighted
    against diff traffic, so a page is "hot" whether it thrashes through
    full fetches or through diff exchange. *)
val hot_score : page_stats -> int

(** [report ?findings a] — lock-contention, hot-page, barrier-skew and
    per-processor tables plus a critical-path estimate, as printable
    text.  [findings] is a pre-rendered sanitizer findings table
    (rendering lives above this library — see [Tmk_lint.Findings.table]);
    when given it leads the report. *)
val report : ?findings:string -> t -> string
