module Tablefmt = Tmk_util.Tablefmt

type lock_stats = {
  l_id : int;
  l_acquires : int;
  l_local : int;
  l_queued : int;
  l_wait_ns : int;
  l_hold_ns : int;
}

type page_stats = {
  p_id : int;
  p_read_faults : int;
  p_write_faults : int;
  p_fetches : int;
  p_invalidations : int;
  p_diff_bytes_created : int;
  p_diff_bytes_applied : int;
  p_writers : int;
}

type barrier_epoch = {
  be_id : int;
  be_epoch : int;
  be_first_arrival : int;
  be_last_arrival : int;
  be_release : int;
}

type proc_stats = {
  pr_pid : int;
  pr_finish : int;
  pr_lock_wait : int;
  pr_barrier_wait : int;
  pr_fault_wait : int;
  pr_frames_sent : int;
  pr_bytes_sent : int;
}

type t = {
  a_end : int;
  a_events : int;
  a_locks : lock_stats list;
  a_pages : page_stats list;
  a_barriers : barrier_epoch list;
  a_procs : proc_stats list;
}

(* Mutable accumulators keyed by lock / page / processor id. *)

type lock_acc = {
  mutable k_acquires : int;
  mutable k_local : int;
  mutable k_queued : int;
  mutable k_wait : int;
  mutable k_hold : int;
}

type page_acc = {
  mutable g_rf : int;
  mutable g_wf : int;
  mutable g_fetches : int;
  mutable g_inval : int;
  mutable g_dc : int;
  mutable g_da : int;
  mutable g_writers : int list;  (* small distinct set *)
}

type proc_acc = {
  mutable c_finish : int;
  mutable c_lock_wait : int;
  mutable c_barrier_wait : int;
  mutable c_fault_wait : int;
  mutable c_frames : int;
  mutable c_bytes : int;
}

let get tbl key fresh =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = fresh () in
    Hashtbl.add tbl key v;
    v

let analyze sink =
  let locks = Hashtbl.create 16 in
  let pages = Hashtbl.create 64 in
  let procs = Hashtbl.create 16 in
  let lock_acc l =
    get locks l (fun () ->
        { k_acquires = 0; k_local = 0; k_queued = 0; k_wait = 0; k_hold = 0 })
  in
  let page_acc p =
    get pages p (fun () ->
        { g_rf = 0; g_wf = 0; g_fetches = 0; g_inval = 0; g_dc = 0; g_da = 0;
          g_writers = [] })
  in
  let proc_acc p =
    get procs p (fun () ->
        { c_finish = 0; c_lock_wait = 0; c_barrier_wait = 0; c_fault_wait = 0;
          c_frames = 0; c_bytes = 0 })
  in
  (* Open wait intervals: acquire-but-not-yet-acquired, keyed per
     (pid, resource).  Hold intervals keyed likewise. *)
  let lock_wait_start = Hashtbl.create 16 in
  let lock_hold_start = Hashtbl.create 16 in
  let barrier_wait_start = Hashtbl.create 16 in
  let fault_start = Hashtbl.create 16 in
  (* Barrier arrivals/releases grouped by (id, per-pid occurrence index). *)
  let barrier_seq = Hashtbl.create 16 in  (* (id, pid) -> next epoch *)
  let barrier_arrivals = Hashtbl.create 16 in  (* (id, epoch) -> times *)
  let barrier_releases = Hashtbl.create 16 in
  let last_time = ref 0 in
  let n_events = ref 0 in
  Sink.iter
    (fun { Sink.r_time; r_pid; r_ev } ->
      last_time := r_time;
      incr n_events;
      match r_ev with
      | Lock_acquire { lock; _ } ->
        Hashtbl.replace lock_wait_start (r_pid, lock) r_time
      | Lock_acquired { lock; local } ->
        let a = lock_acc lock in
        a.k_acquires <- a.k_acquires + 1;
        if local then a.k_local <- a.k_local + 1;
        (match Hashtbl.find_opt lock_wait_start (r_pid, lock) with
        | Some t0 ->
          Hashtbl.remove lock_wait_start (r_pid, lock);
          a.k_wait <- a.k_wait + (r_time - t0);
          let p = proc_acc r_pid in
          p.c_lock_wait <- p.c_lock_wait + (r_time - t0)
        | None -> ());
        Hashtbl.replace lock_hold_start (r_pid, lock) r_time
      | Lock_release { lock; _ } -> (
        match Hashtbl.find_opt lock_hold_start (r_pid, lock) with
        | Some t0 ->
          Hashtbl.remove lock_hold_start (r_pid, lock);
          let a = lock_acc lock in
          a.k_hold <- a.k_hold + (r_time - t0)
        | None -> ())
      | Lock_queued { lock; _ } ->
        let a = lock_acc lock in
        a.k_queued <- a.k_queued + 1
      | Barrier_arrive { id; _ } ->
        Hashtbl.replace barrier_wait_start (r_pid, id) r_time;
        let seq = Option.value ~default:0 (Hashtbl.find_opt barrier_seq (id, r_pid)) in
        Hashtbl.replace barrier_seq (id, r_pid) (seq + 1);
        let key = (id, seq) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt barrier_arrivals key) in
        Hashtbl.replace barrier_arrivals key (r_time :: prev)
      | Barrier_release { id; _ } -> (
        (match Hashtbl.find_opt barrier_wait_start (r_pid, id) with
        | Some t0 ->
          Hashtbl.remove barrier_wait_start (r_pid, id);
          let p = proc_acc r_pid in
          p.c_barrier_wait <- p.c_barrier_wait + (r_time - t0)
        | None -> ());
        (* the release belongs to the epoch of the latest arrival *)
        match Hashtbl.find_opt barrier_seq (id, r_pid) with
        | Some seq when seq > 0 ->
          let key = (id, seq - 1) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt barrier_releases key) in
          Hashtbl.replace barrier_releases key (r_time :: prev)
        | _ -> ())
      | Page_fault { page; kind } ->
        let g = page_acc page in
        (match kind with
        | Event.Read -> g.g_rf <- g.g_rf + 1
        | Event.Write -> g.g_wf <- g.g_wf + 1);
        Hashtbl.replace fault_start (r_pid, page) r_time
      | Page_fault_done { page; _ } -> (
        match Hashtbl.find_opt fault_start (r_pid, page) with
        | Some t0 ->
          Hashtbl.remove fault_start (r_pid, page);
          let p = proc_acc r_pid in
          p.c_fault_wait <- p.c_fault_wait + (r_time - t0)
        | None -> ())
      | Page_fetch { page; _ } ->
        let g = page_acc page in
        g.g_fetches <- g.g_fetches + 1
      | Page_invalidate { page } ->
        let g = page_acc page in
        g.g_inval <- g.g_inval + 1
      | Diff_create { page; bytes; _ } ->
        let g = page_acc page in
        g.g_dc <- g.g_dc + bytes;
        if not (List.mem r_pid g.g_writers) then g.g_writers <- r_pid :: g.g_writers
      | Diff_apply { page; bytes; _ } ->
        let g = page_acc page in
        g.g_da <- g.g_da + bytes
      | Write_notice_recv { page; proc; _ } ->
        let g = page_acc page in
        if not (List.mem proc g.g_writers) then g.g_writers <- proc :: g.g_writers
      | Frame_send { bytes; _ } ->
        let p = proc_acc r_pid in
        p.c_frames <- p.c_frames + 1;
        p.c_bytes <- p.c_bytes + bytes
      | Proc_finish ->
        let p = proc_acc r_pid in
        p.c_finish <- r_time
      | _ -> ())
    sink;
  let a_locks =
    Hashtbl.fold
      (fun l a acc ->
        { l_id = l; l_acquires = a.k_acquires; l_local = a.k_local;
          l_queued = a.k_queued; l_wait_ns = a.k_wait; l_hold_ns = a.k_hold }
        :: acc)
      locks []
    |> List.sort (fun a b ->
           match compare b.l_wait_ns a.l_wait_ns with
           | 0 -> compare a.l_id b.l_id
           | c -> c)
  in
  let a_pages =
    Hashtbl.fold
      (fun p g acc ->
        { p_id = p; p_read_faults = g.g_rf; p_write_faults = g.g_wf;
          p_fetches = g.g_fetches; p_invalidations = g.g_inval;
          p_diff_bytes_created = g.g_dc; p_diff_bytes_applied = g.g_da;
          p_writers = List.length g.g_writers }
        :: acc)
      pages []
  in
  let a_barriers =
    Hashtbl.fold
      (fun (id, epoch) arrivals acc ->
        let first = List.fold_left min max_int arrivals in
        let last = List.fold_left max 0 arrivals in
        let release =
          match Hashtbl.find_opt barrier_releases (id, epoch) with
          | Some times -> List.fold_left max 0 times
          | None -> last
        in
        { be_id = id; be_epoch = epoch; be_first_arrival = first;
          be_last_arrival = last; be_release = release }
        :: acc)
      barrier_arrivals []
    |> List.sort (fun a b -> compare a.be_first_arrival b.be_first_arrival)
  in
  let a_procs =
    Hashtbl.fold
      (fun pid c acc ->
        { pr_pid = pid; pr_finish = c.c_finish; pr_lock_wait = c.c_lock_wait;
          pr_barrier_wait = c.c_barrier_wait; pr_fault_wait = c.c_fault_wait;
          pr_frames_sent = c.c_frames; pr_bytes_sent = c.c_bytes }
        :: acc)
      procs []
    |> List.filter (fun p -> p.pr_pid >= 0)
    |> List.sort (fun a b -> compare a.pr_pid b.pr_pid)
  in
  let hot_score p =
    p.p_read_faults + p.p_write_faults + p.p_fetches
    + ((p.p_diff_bytes_created + p.p_diff_bytes_applied) / 256)
  in
  let a_pages =
    List.sort
      (fun a b ->
        match compare (hot_score b) (hot_score a) with
        | 0 -> compare a.p_id b.p_id
        | c -> c)
      a_pages
  in
  { a_end = !last_time; a_events = !n_events; a_locks; a_pages; a_barriers; a_procs }

let hot_score p =
  p.p_read_faults + p.p_write_faults + p.p_fetches
  + ((p.p_diff_bytes_created + p.p_diff_bytes_applied) / 256)

(* ---- rendering ---- *)

let ms ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e6)

(* Per-something averages: traces with no acquires (or one processor)
   have a zero denominator; render "-" instead of dividing. *)
let avg_ms num den = if den <= 0 then "-" else ms (num / den)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let report ?findings a =
  let b = Buffer.create 2048 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  add
    (Printf.sprintf "trace: %d events over %s ms of virtual time" a.a_events
       (ms a.a_end));
  add "";
  (match findings with
  | Some table ->
    add table;
    add ""
  | None -> ());
  (if a.a_locks = [] then add "no lock activity."
   else
     let rows =
       List.map
         (fun l ->
           [ string_of_int l.l_id; string_of_int l.l_acquires;
             string_of_int l.l_local; string_of_int l.l_queued;
             ms l.l_wait_ns; ms l.l_hold_ns;
             avg_ms l.l_wait_ns l.l_acquires;
             avg_ms l.l_hold_ns l.l_acquires ])
         (take 10 a.a_locks)
     in
     add
       (Tablefmt.render ~title:"Lock contention (top 10 by total wait)"
          ~header:
            [ "lock"; "acquires"; "local"; "queued"; "wait ms"; "hold ms";
              "avg wait"; "avg hold" ]
          rows));
  (let hot = List.filter (fun p -> hot_score p > 0) a.a_pages in
   if hot = [] then add "no page activity."
   else
     let rows =
       List.map
         (fun p ->
           [ string_of_int p.p_id; string_of_int p.p_read_faults;
             string_of_int p.p_write_faults; string_of_int p.p_fetches;
             string_of_int p.p_invalidations; string_of_int p.p_writers;
             string_of_int p.p_diff_bytes_created;
             string_of_int p.p_diff_bytes_applied ])
         (take 10 hot)
     in
     add
       (Tablefmt.render ~title:"Hot pages (top 10; many writers = false-sharing candidate)"
          ~header:
            [ "page"; "rd faults"; "wr faults"; "fetches"; "invals"; "writers";
              "diff B out"; "diff B in" ]
          rows));
  (if a.a_barriers = [] then add "no barrier activity."
   else
     let shown = take 20 a.a_barriers in
     (* count each list once for the whole report block — [a_barriers] can
        hold one epoch per barrier of a long run *)
     let n_barriers = List.length a.a_barriers and n_shown = List.length shown in
     (* Average skew over the gaps between consecutive arrivals: n
        processors have n-1 gaps; single-processor runs have none. *)
     let gaps = List.length a.a_procs - 1 in
     let rows =
       List.map
         (fun e ->
           [ string_of_int e.be_id; string_of_int e.be_epoch;
             ms e.be_first_arrival; ms e.be_last_arrival;
             ms (e.be_last_arrival - e.be_first_arrival);
             avg_ms (e.be_last_arrival - e.be_first_arrival) gaps;
             ms (e.be_release - e.be_last_arrival) ])
         shown
     in
     add
       (Tablefmt.render ~title:"Barrier skew per epoch"
          ~header:
            [ "barrier"; "epoch"; "first ms"; "last ms"; "skew ms"; "skew/gap";
              "mgr ms" ]
          rows);
     if n_barriers > n_shown then
       add (Printf.sprintf "(… %d more epochs not shown)" (n_barriers - n_shown)));
  (if a.a_procs = [] then add "no per-processor activity."
   else
     let rows =
       List.map
         (fun p ->
           [ string_of_int p.pr_pid; ms p.pr_finish; ms p.pr_lock_wait;
             ms p.pr_barrier_wait; ms p.pr_fault_wait;
             string_of_int p.pr_frames_sent; string_of_int p.pr_bytes_sent ])
         a.a_procs
     in
     add
       (Tablefmt.render ~title:"Per-processor waits"
          ~header:
            [ "cpu"; "finish ms"; "lock wait"; "barrier wait"; "fault wait";
              "frames"; "bytes" ]
          rows));
  (match
     List.fold_left
       (fun best p ->
         match best with
         | Some q when q.pr_finish >= p.pr_finish -> best
         | _ -> Some p)
       None a.a_procs
   with
  | None -> ()
  | Some p ->
    let waits = p.pr_lock_wait + p.pr_barrier_wait + p.pr_fault_wait in
    add
      (Printf.sprintf
         "critical path: cpu %d finishes last at %s ms — %s ms lock wait, %s ms \
          barrier wait, %s ms fault wait, %s ms compute/other"
         p.pr_pid (ms p.pr_finish) (ms p.pr_lock_wait) (ms p.pr_barrier_wait)
         (ms p.pr_fault_wait)
         (ms (p.pr_finish - waits))));
  Buffer.contents b
