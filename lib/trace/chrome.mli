(** Chrome [trace_event] export (catapult JSON, Perfetto-loadable).

    The stream is rendered as one process with one named track (thread)
    per simulated processor, plus an ["engine"] track for records with
    no processor.  Wait intervals that have a begin/end event pair —
    lock waits ([Lock_acquire]/[Lock_acquired]), barrier waits
    ([Barrier_arrive]/[Barrier_release]), page faults
    ([Page_fault]/[Page_fault_done]) and GC runs ([Gc_begin]/[Gc_end])
    — become complete ([ph:"X"]) slices with a duration; every other
    event becomes a thread-scoped instant ([ph:"i"]).  Cumulative
    counter tracks ([ph:"C"]) are kept for frames and bytes on the wire,
    diff bytes created, and page faults, so traffic can be eyeballed
    against the timeline.  Timestamps are virtual-time microseconds.

    Load the resulting file at https://ui.perfetto.dev or
    chrome://tracing. *)

(** [to_string sink] — a complete JSON document
    [{"traceEvents": [...], "displayTimeUnit": "ms"}].  Unmatched begin
    events are closed at the time of the last record.  Deterministic:
    same stream, same bytes. *)
val to_string : Sink.t -> string

(** [write oc sink] — write the document to a channel. *)
val write : out_channel -> Sink.t -> unit
