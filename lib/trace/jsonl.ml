(* Hand-rolled JSON: the event vocabulary only needs ints, bools,
   strings and int arrays, and keeping the encoder local makes the
   output byte-stable by construction. *)

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_string b s =
  Buffer.add_char b '"';
  escape_to b s;
  Buffer.add_char b '"'

let add_arg b = function
  | Event.Int n -> Buffer.add_string b (string_of_int n)
  | Event.Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Event.Str s -> add_string b s
  | Event.Ints a ->
    Buffer.add_char b '[';
    Array.iteri
      (fun i n ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int n))
      a;
    Buffer.add_char b ']'

let record_to_buffer b (r : Sink.record) =
  Buffer.add_string b "{\"t\":";
  Buffer.add_string b (string_of_int r.r_time);
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int r.r_pid);
  Buffer.add_string b ",\"ev\":";
  add_string b (Event.name r.r_ev);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_string b k;
      Buffer.add_char b ':';
      add_arg b v)
    (Event.args r.r_ev);
  Buffer.add_char b '}'

let record_to_string r =
  let b = Buffer.create 96 in
  record_to_buffer b r;
  Buffer.contents b

let to_string sink =
  let b = Buffer.create 4096 in
  Sink.iter
    (fun r ->
      record_to_buffer b r;
      Buffer.add_char b '\n')
    sink;
  Buffer.contents b

let write oc sink =
  Sink.iter
    (fun r ->
      output_string oc (record_to_string r);
      output_char oc '\n')
    sink

(* Decoder: the exact inverse of the encoder above.  Not a general JSON
   parser — it accepts precisely the subset the encoder produces (flat
   object, int/bool/string/int-array values), which is all a recorded
   trace can contain. *)

exception Parse_error of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then line.[!pos] else '\255' in
  let advance () = incr pos in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_int () =
    let start = !pos in
    if peek () = '-' then advance ();
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start || (line.[start] = '-' && !pos = start + 1) then fail "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\255' -> fail "unterminated string"
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub line !pos 4)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          if code > 0xFF then fail "non-latin \\u escape";
          Buffer.add_char b (Char.chr code)
        | _ -> fail "unknown escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let expect_word w v =
    if !pos + String.length w <= n && String.sub line !pos (String.length w) = w then begin
      pos := !pos + String.length w;
      v
    end
    else fail (Printf.sprintf "expected %s" w)
  in
  let parse_value () =
    match peek () with
    | '"' -> Event.Str (parse_string ())
    | 't' -> expect_word "true" (Event.Bool true)
    | 'f' -> expect_word "false" (Event.Bool false)
    | '[' ->
      advance ();
      let items = ref [] in
      if peek () = ']' then advance ()
      else begin
        let rec go () =
          items := parse_int () :: !items;
          match peek () with
          | ',' -> advance (); go ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ()
      end;
      Event.Ints (Array.of_list (List.rev !items))
    | _ -> Event.Int (parse_int ())
  in
  expect '{';
  let fields = ref [] in
  (if peek () = '}' then advance ()
   else
     let rec go () =
       let k = parse_string () in
       expect ':';
       let v = parse_value () in
       fields := (k, v) :: !fields;
       match peek () with
       | ',' -> advance (); go ()
       | '}' -> advance ()
       | _ -> fail "expected ',' or '}'"
     in
     go ());
  if !pos <> n then fail "trailing bytes after object";
  let fields = List.rev !fields in
  let int_field k =
    match List.assoc_opt k fields with
    | Some (Event.Int v) -> v
    | _ -> fail (Printf.sprintf "missing integer field %S" k)
  in
  let str_field k =
    match List.assoc_opt k fields with
    | Some (Event.Str v) -> v
    | _ -> fail (Printf.sprintf "missing string field %S" k)
  in
  let time = int_field "t" and pid = int_field "pid" and ev_name = str_field "ev" in
  let args = List.filter (fun (k, _) -> k <> "t" && k <> "pid" && k <> "ev") fields in
  match Event.of_args ev_name args with
  | Some ev -> { Sink.r_time = time; r_pid = pid; r_ev = ev }
  | None -> fail (Printf.sprintf "unknown or malformed event %S" ev_name)

let read_channel ic =
  let sink = Sink.create () in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.length line > 0 then begin
         let r =
           try parse_line line
           with Parse_error msg ->
             raise (Parse_error (Printf.sprintf "line %d: %s" !lineno msg))
         in
         Sink.emit sink ~time:r.Sink.r_time ~pid:r.Sink.r_pid r.Sink.r_ev
       end
     done
   with End_of_file -> ());
  sink

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_channel ic)
