(* Hand-rolled JSON: the event vocabulary only needs ints, bools,
   strings and int arrays, and keeping the encoder local makes the
   output byte-stable by construction. *)

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_string b s =
  Buffer.add_char b '"';
  escape_to b s;
  Buffer.add_char b '"'

let add_arg b = function
  | Event.Int n -> Buffer.add_string b (string_of_int n)
  | Event.Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Event.Str s -> add_string b s
  | Event.Ints a ->
    Buffer.add_char b '[';
    Array.iteri
      (fun i n ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int n))
      a;
    Buffer.add_char b ']'

let record_to_buffer b (r : Sink.record) =
  Buffer.add_string b "{\"t\":";
  Buffer.add_string b (string_of_int r.r_time);
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int r.r_pid);
  Buffer.add_string b ",\"ev\":";
  add_string b (Event.name r.r_ev);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_string b k;
      Buffer.add_char b ':';
      add_arg b v)
    (Event.args r.r_ev);
  Buffer.add_char b '}'

let record_to_string r =
  let b = Buffer.create 96 in
  record_to_buffer b r;
  Buffer.contents b

let to_string sink =
  let b = Buffer.create 4096 in
  Sink.iter
    (fun r ->
      record_to_buffer b r;
      Buffer.add_char b '\n')
    sink;
  Buffer.contents b

let write oc sink =
  Sink.iter
    (fun r ->
      output_string oc (record_to_string r);
      output_char oc '\n')
    sink
