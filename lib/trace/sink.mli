(** In-memory event sink.

    A sink is an append-only buffer of timestamped records.  The engine
    owns at most one; every layer emits through it.  Recording one event
    is a couple of array writes — cheap enough that tracing a full Water
    run stays interactive — and when no sink is installed the emitting
    code never allocates (the guard is a single [option] test).

    Records are totally ordered by append order, which for the
    deterministic engine coincides with (virtual time, scheduling order):
    two runs with the same seed and fault plan produce byte-identical
    streams. *)

type record = {
  r_time : int;  (** virtual time, nanoseconds *)
  r_pid : int;  (** emitting processor; [-1] for engine-level events *)
  r_ev : Event.t;
}

type t

(** [create ()] — a fresh, empty sink. *)
val create : unit -> t

(** [emit t ~time ~pid ev] appends one record. *)
val emit : t -> time:int -> pid:int -> Event.t -> unit

(** [on_record t f] registers [f] to be called on every subsequent
    record, after it is buffered (used by the string-trace compatibility
    shim and by streaming writers). *)
val on_record : t -> (record -> unit) -> unit

(** [length t] — number of buffered records. *)
val length : t -> int

(** [iter f t] — visit records in append order. *)
val iter : (record -> unit) -> t -> unit

(** [to_list t] — records in append order. *)
val to_list : t -> record list

(** [clear t] — drop all buffered records (listeners stay). *)
val clear : t -> unit
