(* trace_event JSON writer.  Timestamps ("ts") are microseconds; ours
   are nanoseconds, so every slice boundary is time / 1000 with three
   decimals — exact, no float rounding surprises below the picosecond. *)

let b_ts b ns =
  Buffer.add_string b (string_of_int (ns / 1000));
  Buffer.add_char b '.';
  Buffer.add_string b (Printf.sprintf "%03d" (ns mod 1000))

let b_str b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let b_args b ev =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      b_str b k;
      Buffer.add_char b ':';
      match v with
      | Event.Int n -> Buffer.add_string b (string_of_int n)
      | Event.Bool v -> Buffer.add_string b (if v then "true" else "false")
      | Event.Str s -> b_str b s
      | Event.Ints a ->
        Buffer.add_char b '[';
        Array.iteri
          (fun j n ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (string_of_int n))
          a;
        Buffer.add_char b ']')
    (Event.args ev);
  Buffer.add_char b '}'

type emitter = { b : Buffer.t; mutable first : bool }

let entry e f =
  if e.first then e.first <- false else Buffer.add_string e.b ",\n";
  Buffer.add_char e.b '{';
  f e.b;
  Buffer.add_char e.b '}'

let meta_thread e ~tid ~name =
  entry e (fun b ->
      Buffer.add_string b "\"ph\":\"M\",\"pid\":1,\"tid\":";
      Buffer.add_string b (string_of_int tid);
      Buffer.add_string b ",\"name\":\"thread_name\",\"args\":{\"name\":";
      b_str b name;
      Buffer.add_char b '}')

let complete e ~tid ~name ~cat ~start ~stop ev =
  entry e (fun b ->
      Buffer.add_string b "\"ph\":\"X\",\"pid\":1,\"tid\":";
      Buffer.add_string b (string_of_int tid);
      Buffer.add_string b ",\"name\":";
      b_str b name;
      Buffer.add_string b ",\"cat\":";
      b_str b cat;
      Buffer.add_string b ",\"ts\":";
      b_ts b start;
      Buffer.add_string b ",\"dur\":";
      b_ts b (stop - start);
      Buffer.add_char b ',';
      b_args b ev)

let instant e ~tid ~cat ~ts ev =
  entry e (fun b ->
      Buffer.add_string b "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
      Buffer.add_string b (string_of_int tid);
      Buffer.add_string b ",\"name\":";
      b_str b (Event.name ev);
      Buffer.add_string b ",\"cat\":";
      b_str b cat;
      Buffer.add_string b ",\"ts\":";
      b_ts b ts;
      Buffer.add_char b ',';
      b_args b ev)

let counter e ~name ~ts ~value =
  entry e (fun b ->
      Buffer.add_string b "\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":";
      b_str b name;
      Buffer.add_string b ",\"ts\":";
      b_ts b ts;
      Buffer.add_string b ",\"args\":{\"value\":";
      Buffer.add_string b (string_of_int value);
      Buffer.add_char b '}')

(* Event classification. *)

let cat_of (ev : Event.t) =
  match ev with
  | Lock_acquire _ | Lock_acquired _ | Lock_release _ | Lock_queued _
  | Lock_request_recv _ | Lock_forward _ | Lock_grant _ -> "lock"
  | Barrier_arrive _ | Barrier_release _ -> "barrier"
  | Page_fault _ | Page_fault_done _ | Twin_create _ | Page_fetch _
  | Page_invalidate _ -> "page"
  | Diff_create _ | Diff_apply _ | Diff_fetch _ | Diff_cache _ -> "diff"
  | Interval_close _ | Interval_recv _ | Write_notice_recv _ -> "consistency"
  | Frame_send _ | Frame_recv _ | Frame_drop _ | Frame_dup _ | Frame_batch _ -> "net"
  | Gc_begin _ | Gc_end _ -> "gc"
  | Proc_crash | Peer_suspect _ | Failover _ | Recovery_done _ | Diff_backup _ ->
    "failure"
  | Ts_sync _ -> "consistency"
  | Lease_expire _ | Quorum_read _ | Quorum_write _ -> "page"
  | Proc_finish | Mark _ -> "engine"

(* Begin/end pairing: a begin event opens a span under a key; the
   matching end event closes the most recent open span with that key on
   the same track (they cannot interleave per processor, but a stack
   keeps us safe regardless). *)

let span_begin (ev : Event.t) =
  match ev with
  | Lock_acquire { lock; _ } -> Some (Printf.sprintf "lock-wait L%d" lock)
  | Barrier_arrive { id; _ } -> Some (Printf.sprintf "barrier %d" id)
  | Page_fault { page; kind } ->
    Some (Printf.sprintf "%s-fault p%d" (Event.fault_kind_name kind) page)
  | Gc_begin _ -> Some "gc"
  | _ -> None

let span_end (ev : Event.t) =
  match ev with
  | Lock_acquired { lock; _ } -> Some (Printf.sprintf "lock-wait L%d" lock)
  | Barrier_release { id; _ } -> Some (Printf.sprintf "barrier %d" id)
  | Page_fault_done { page; kind } ->
    Some (Printf.sprintf "%s-fault p%d" (Event.fault_kind_name kind) page)
  | Gc_end _ -> Some "gc"
  | _ -> None

let to_string sink =
  let e = { b = Buffer.create 8192; first = true } in
  Buffer.add_string e.b "{\"traceEvents\":[\n";
  (* Track names.  Records with pid = -1 (engine marks) go on a
     dedicated track numbered past the last processor. *)
  let max_pid = ref (-1) in
  Sink.iter (fun r -> if r.Sink.r_pid > !max_pid then max_pid := r.Sink.r_pid) sink;
  let engine_tid = !max_pid + 1 in
  for p = 0 to !max_pid do
    meta_thread e ~tid:p ~name:(Printf.sprintf "cpu %d" p)
  done;
  meta_thread e ~tid:engine_tid ~name:"engine";
  let tid_of pid = if pid < 0 then engine_tid else pid in
  (* Open spans: (tid, key) -> start time * begin event, newest first. *)
  let open_spans : (int * string, (int * Event.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let last_time = ref 0 in
  (* Counters, sampled whenever they change. *)
  let frames = ref 0 and wire = ref 0 and diff_bytes = ref 0 and faults = ref 0 in
  Sink.iter
    (fun { Sink.r_time; r_pid; r_ev } ->
      last_time := r_time;
      let tid = tid_of r_pid in
      let cat = cat_of r_ev in
      (match span_begin r_ev with
      | Some key ->
        let stack = Option.value ~default:[] (Hashtbl.find_opt open_spans (tid, key)) in
        Hashtbl.replace open_spans (tid, key) ((r_time, r_ev) :: stack)
      | None -> (
        match span_end r_ev with
        | Some key -> (
          match Hashtbl.find_opt open_spans (tid, key) with
          | Some ((start, bev) :: rest) ->
            Hashtbl.replace open_spans (tid, key) rest;
            complete e ~tid ~name:key ~cat ~start ~stop:r_time bev
          | _ ->
            (* end without begin: render as an instant so nothing is lost *)
            instant e ~tid ~cat ~ts:r_time r_ev)
        | None -> instant e ~tid ~cat ~ts:r_time r_ev));
      match r_ev with
      | Frame_send { bytes; _ } ->
        incr frames;
        wire := !wire + bytes;
        counter e ~name:"frames sent" ~ts:r_time ~value:!frames;
        counter e ~name:"wire bytes" ~ts:r_time ~value:!wire
      | Diff_create { bytes; _ } ->
        diff_bytes := !diff_bytes + bytes;
        counter e ~name:"diff bytes" ~ts:r_time ~value:!diff_bytes
      | Page_fault _ ->
        incr faults;
        counter e ~name:"page faults" ~ts:r_time ~value:!faults
      | _ -> ())
    sink;
  (* Close anything still open at the end of the trace. *)
  let leftovers = ref [] in
  Hashtbl.iter
    (fun (tid, key) stack ->
      List.iter (fun (start, bev) -> leftovers := (tid, key, start, bev) :: !leftovers) stack)
    open_spans;
  List.iter
    (fun (tid, key, start, bev) ->
      complete e ~tid ~name:key ~cat:(cat_of bev) ~start ~stop:!last_time bev)
    (List.sort compare !leftovers);
  Buffer.add_string e.b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents e.b

let write oc sink = output_string oc (to_string sink)
