type record = { r_time : int; r_pid : int; r_ev : Event.t }

(* Growable array by hand: OCaml 5.1 has no Dynarray yet, and a list
   would put the stream in reverse order with two words of overhead per
   record. *)
type t = {
  mutable buf : record array;
  mutable len : int;
  listeners : (record -> unit) Tmk_util.Vec.t;
      (* push order = registration order = notification order; the old
         [l @ [f]] registration re-copied the whole list per listener *)
}

let dummy = { r_time = 0; r_pid = -1; r_ev = Event.Proc_finish }
let create () = { buf = Array.make 256 dummy; len = 0; listeners = Tmk_util.Vec.create () }

let emit t ~time ~pid ev =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  let r = { r_time = time; r_pid = pid; r_ev = ev } in
  t.buf.(t.len) <- r;
  t.len <- t.len + 1;
  Tmk_util.Vec.iter (fun f -> f r) t.listeners

let on_record t f = Tmk_util.Vec.push t.listeners f
let length t = t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let to_list t = List.init t.len (fun i -> t.buf.(i))
let clear t = t.len <- 0
