(** JSONL export: one JSON object per line, in stream order.

    The shape of a line is

    {v {"t":12345,"pid":2,"ev":"lock-acquire","lock":1,"local":false} v}

    — [t] is virtual time in nanoseconds, [pid] the emitting processor
    ([-1] for engine-level events), [ev] the stable event name, and the
    remaining fields the event's arguments in declaration order.  The
    encoding is deterministic, so byte-comparing two files is a valid
    equality test on event streams (the determinism tests rely on
    this). *)

(** [record_to_string r] — one line, without the trailing newline. *)
val record_to_string : Sink.record -> string

(** [to_string sink] — the whole stream, one record per line, each line
    newline-terminated. *)
val to_string : Sink.t -> string

(** [write oc sink] — stream the sink to a channel. *)
val write : out_channel -> Sink.t -> unit

(** {2 Reading recorded streams back}

    The decoder accepts exactly what the encoder produces (the offline
    invariant oracle re-checks recorded runs this way); it is not a
    general JSON parser. *)

exception Parse_error of string

(** [parse_line line] — decode one line (no trailing newline).
    @raise Parse_error on malformed input. *)
val parse_line : string -> Sink.record

(** [read_channel ic] / [read_file path] — decode a whole stream into a
    fresh sink, skipping blank lines.
    @raise Parse_error with a line number on malformed input. *)
val read_channel : in_channel -> Sink.t

val read_file : string -> Sink.t
