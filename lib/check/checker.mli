(** The checker a run carries through [Config.check]: a race detector, an
    invariant oracle, generic event observers ({!Hooks}), trace-attach
    callbacks — any combination.

    [hooks] observe the same access and sync events as the race detector;
    [attach] callbacks receive the run's trace sink before the run starts
    (the DSM creates a private sink when the caller did not request
    tracing).  Both exist for analyzers that sit above [tmk_dsm] in the
    dependency order, such as the [lib/lint] sanitizer suite. *)

type t

val create :
  ?race:Race.t ->
  ?oracle:Oracle.t ->
  ?hooks:Hooks.t list ->
  ?attach:(Tmk_trace.Sink.t -> unit) list ->
  unit ->
  t

val race : t -> Race.t option
val oracle : t -> Oracle.t option
val hooks : t -> Hooks.t list
val attach : t -> (Tmk_trace.Sink.t -> unit) list
