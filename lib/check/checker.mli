(** The checker a run carries through [Config.check]: a race detector, an
    invariant oracle, or both. *)

type t = { ck_race : Race.t option; ck_oracle : Oracle.t option }

val create : ?race:Race.t -> ?oracle:Oracle.t -> unit -> t
val race : t -> Race.t option
val oracle : t -> Oracle.t option
