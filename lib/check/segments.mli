(** Segment clocks: the happens-before skeleton shared by the checkers.

    Each processor's program order is cut into segments at every lock
    acquire/release and barrier arrive/depart; happens-before over
    segments is the transitive closure of program order plus the
    release→acquire and all-to-all barrier sync edges.  One instance is
    shared per run: the happens-before race detector ({!Race}) and the
    lockset analyzer ([lib/lint]) both consult it, so "ordered" means the
    same thing to both. *)

type segment = {
  s_pid : int;
  s_idx : int;  (** 1-based index of this segment in its processor's order *)
  s_open : int array;  (** the processor's clock when the segment opened *)
  s_ctx : string;  (** the synchronization that opened it, for reports *)
  s_locks : int list;  (** locks held while the segment runs *)
}

type t

val create : nprocs:int -> unit -> t
val nprocs : t -> int

(** [current t pid] is the processor's open segment. *)
val current : t -> int -> segment

(** [held t pid] is the set of locks the processor holds right now. *)
val held : t -> int -> int list

(** [generation t] counts barrier occurrences absorbed so far (each
    occurrence bumps it exactly once, at its first departure).  Accesses
    with different generations are separated — and therefore ordered — by
    at least one all-to-all barrier. *)
val generation : t -> int

(** [ordered s cur] — did segment [s] happen before the (current) segment
    [cur]?  True within one processor (program order). *)
val ordered : segment -> segment -> bool

(** Sync edges, reported by the protocol layer.  [lock_release] must be
    reported before the matching grant leaves the releaser; [lock_acquired]
    after the grant (and its piggybacked intervals) is absorbed;
    [barrier_arrive] before the arrival message is sent; [barrier_depart]
    after the release is absorbed. *)
val lock_release : t -> pid:int -> lock:int -> unit

val lock_acquired : t -> pid:int -> lock:int -> unit
val barrier_arrive : t -> pid:int -> id:int -> unit
val barrier_depart : t -> pid:int -> id:int -> unit

(** [barrier_name id] renders a barrier id, mapping the Api collectives'
    reserved range (ids at and above 2{^30}) to "collective n". *)
val barrier_name : int -> string
