(* A generic observer of the protocol's checker-visible events: the typed
   accesses the software MMU sees, the four sync points, and the
   [Api.unsynchronized] suppression spans.  The DSM layer dispatches to
   every hook a [Checker] carries, so analyzers that live above [tmk_dsm]
   in the dependency order — the lint suite in [lib/lint] — can observe a
   run without this library (or the protocol) depending on them. *)

type access_kind = Read | Write

type t = {
  h_access : pid:int -> access_kind -> addr:int -> width:int -> unit;
  h_lock_acquired : pid:int -> lock:int -> unit;
  h_lock_release : pid:int -> lock:int -> unit;
  h_barrier_arrive : pid:int -> id:int -> unit;
  h_barrier_depart : pid:int -> id:int -> unit;
  h_suppress : pid:int -> bool -> unit;
}

let nop =
  {
    h_access = (fun ~pid:_ _ ~addr:_ ~width:_ -> ());
    h_lock_acquired = (fun ~pid:_ ~lock:_ -> ());
    h_lock_release = (fun ~pid:_ ~lock:_ -> ());
    h_barrier_arrive = (fun ~pid:_ ~id:_ -> ());
    h_barrier_depart = (fun ~pid:_ ~id:_ -> ());
    h_suppress = (fun ~pid:_ _ -> ());
  }
