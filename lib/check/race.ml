(* Happens-before data-race detector.

   TreadMarks only promises sequential consistency for data-race-free
   programs (§2): two conflicting accesses from different processors must
   be ordered by the lock/barrier synchronization the protocol sees.  The
   detector checks exactly that, with its own bookkeeping rather than the
   protocol's: the protocol's vector timestamps advance lazily (an interval
   closes only when the processor has dirtied pages), so they under-count
   synchronization and cannot serve directly as the happens-before clock.

   The program order of each processor is cut into {e segments} at every
   lock acquire, lock release, barrier arrival and barrier departure.
   Happens-before over segments is computed from sync edges only:

   - release of lock [l] -> next acquire of [l].  The simulation runs one
     processor at a time and the protocol enforces mutual exclusion, so
     each lock's critical sections are totally ordered and a single stored
     clock per lock suffices.
   - barrier: all-to-all.  Arrival clocks accumulate per (id, occurrence);
     departure merges the accumulated clock, which is complete because the
     manager releases only after every arrival.

   Accesses are checked online against a per-word frontier (the FastTrack
   idea): each 8-byte word keeps its last writer segment and at most one
   reader segment per processor (a same-processor older reader is ordered
   before the newer one by program order, so it can be dropped).  This
   keeps the cost per access O(readers) instead of comparing interval
   pairs quadratically at barriers. *)

type kind = Read | Write

type segment = {
  s_pid : int;
  s_idx : int;  (* 1-based index of this segment in its processor's order *)
  s_open : int array;  (* the processor's clock when the segment opened *)
  s_ctx : string;  (* the synchronization that opened it, for reports *)
  s_locks : int list;  (* locks held while the segment runs *)
}

type finding = {
  f_page : int;
  mutable f_lo : int;  (* byte range within the page, word-granular *)
  mutable f_hi : int;
  f_first_pid : int;
  f_first_kind : kind;
  f_first_ctx : string;
  f_second_pid : int;
  f_second_kind : kind;
  f_second_ctx : string;
  f_hint : string;  (* the synchronization that would have ordered them *)
  mutable f_pairs : int;  (* distinct access pairs merged into this row *)
}

type cell = { mutable c_writer : segment option; mutable c_readers : segment list }

type t = {
  nprocs : int;
  pages : int;
  clock : int array array;  (* clock.(p).(q): segments of q ordered before p's current *)
  seg : segment array;  (* current open segment per processor *)
  held : int list array;
  suppress : int array;  (* Api.unsynchronized nesting depth *)
  lock_clock : (int, int array) Hashtbl.t;  (* lock -> releaser's clock *)
  bar_seq : (int * int, int) Hashtbl.t;  (* (id, pid) -> arrivals so far *)
  bar_acc : (int * int, int array) Hashtbl.t;  (* (id, occurrence) -> merged clock *)
  words : (int, cell) Hashtbl.t;
  races : (int * int * int * kind * kind, finding) Hashtbl.t;
  mutable order : finding list;  (* findings, newest first *)
  mutable npairs : int;
  mutable accesses : int;
}

let word_bytes = 8

let create ~nprocs ~pages () =
  if nprocs <= 0 then invalid_arg "Race.create: nprocs must be positive";
  if pages <= 0 then invalid_arg "Race.create: pages must be positive";
  let seg0 pid =
    { s_pid = pid; s_idx = 1; s_open = Array.make nprocs 0; s_ctx = "at start"; s_locks = [] }
  in
  {
    nprocs;
    pages;
    clock = Array.init nprocs (fun _ -> Array.make nprocs 0);
    seg = Array.init nprocs seg0;
    held = Array.make nprocs [];
    suppress = Array.make nprocs 0;
    lock_clock = Hashtbl.create 16;
    bar_seq = Hashtbl.create 16;
    bar_acc = Hashtbl.create 16;
    words = Hashtbl.create 4096;
    races = Hashtbl.create 16;
    order = [];
    npairs = 0;
    accesses = 0;
  }

let nprocs t = t.nprocs
let pages t = t.pages

let max_into src dst =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

(* [s] happened before [cur] iff they share a processor (program order) or
   [cur]'s opening clock already covers [s]. *)
let ordered s cur = s.s_pid = cur.s_pid || cur.s_open.(s.s_pid) >= s.s_idx

let close_segment t pid =
  let c = t.clock.(pid) in
  c.(pid) <- c.(pid) + 1

let open_segment t pid ctx =
  t.seg.(pid) <-
    {
      s_pid = pid;
      s_idx = t.clock.(pid).(pid) + 1;
      s_open = Array.copy t.clock.(pid);
      s_ctx = ctx;
      s_locks = t.held.(pid);
    }

(* Barrier ids at and above 2^30 are the Api collectives' reserved range
   (reduce/bcast); name them as such rather than leaking raw ids. *)
let barrier_name id =
  if id >= 1 lsl 30 then Printf.sprintf "collective %d" (id - (1 lsl 30))
  else Printf.sprintf "barrier %d" id

let lock_release t ~pid ~lock =
  close_segment t pid;
  Hashtbl.replace t.lock_clock lock (Array.copy t.clock.(pid));
  t.held.(pid) <- List.filter (fun l -> l <> lock) t.held.(pid);
  open_segment t pid (Printf.sprintf "after releasing lock %d" lock)

let lock_acquired t ~pid ~lock =
  close_segment t pid;
  (match Hashtbl.find_opt t.lock_clock lock with
  | Some c -> max_into c t.clock.(pid)
  | None -> ());
  t.held.(pid) <- lock :: t.held.(pid);
  open_segment t pid (Printf.sprintf "holding lock %d" lock)

let barrier_arrive t ~pid ~id =
  close_segment t pid;
  let occ = try Hashtbl.find t.bar_seq (id, pid) with Not_found -> 0 in
  Hashtbl.replace t.bar_seq (id, pid) (occ + 1);
  (match Hashtbl.find_opt t.bar_acc (id, occ) with
  | Some acc -> max_into t.clock.(pid) acc
  | None -> Hashtbl.add t.bar_acc (id, occ) (Array.copy t.clock.(pid)));
  open_segment t pid (Printf.sprintf "arriving at %s" (barrier_name id))

let barrier_depart t ~pid ~id =
  close_segment t pid;
  let occ = (try Hashtbl.find t.bar_seq (id, pid) with Not_found -> 1) - 1 in
  (match Hashtbl.find_opt t.bar_acc (id, occ) with
  | Some acc -> max_into acc t.clock.(pid)
  | None -> ());
  open_segment t pid (Printf.sprintf "after %s" (barrier_name id))

let suppress t ~pid on =
  t.suppress.(pid) <- (t.suppress.(pid) + if on then 1 else -1)

let min_lock = function [] -> None | l :: ls -> Some (List.fold_left min l ls)

let hint first second =
  match (min_lock first.s_locks, min_lock second.s_locks) with
  | Some l, _ ->
    Printf.sprintf "lock %d held by p%d but not by p%d" l first.s_pid second.s_pid
  | None, Some l ->
    Printf.sprintf "lock %d held by p%d but not by p%d" l second.s_pid first.s_pid
  | None, None -> "no common lock; a lock or an intervening barrier must order them"

let record t word ~first ~fk ~second ~sk =
  let page = word * word_bytes / 4096 in
  let lo = word * word_bytes mod 4096 in
  let hi = lo + word_bytes - 1 in
  t.npairs <- t.npairs + 1;
  let key = (page, first.s_pid, second.s_pid, fk, sk) in
  match Hashtbl.find_opt t.races key with
  | Some f ->
    f.f_lo <- min f.f_lo lo;
    f.f_hi <- max f.f_hi hi;
    f.f_pairs <- f.f_pairs + 1
  | None ->
    let f =
      {
        f_page = page;
        f_lo = lo;
        f_hi = hi;
        f_first_pid = first.s_pid;
        f_first_kind = fk;
        f_first_ctx = first.s_ctx;
        f_second_pid = second.s_pid;
        f_second_kind = sk;
        f_second_ctx = second.s_ctx;
        f_hint = hint first second;
        f_pairs = 1;
      }
    in
    Hashtbl.add t.races key f;
    t.order <- f :: t.order

let cell_of t word =
  match Hashtbl.find_opt t.words word with
  | Some c -> c
  | None ->
    let c = { c_writer = None; c_readers = [] } in
    Hashtbl.add t.words word c;
    c

let note_access t ~pid kind ~addr ~width =
  if t.suppress.(pid) = 0 then begin
    t.accesses <- t.accesses + 1;
    let seg = t.seg.(pid) in
    let w0 = addr / word_bytes and w1 = (addr + width - 1) / word_bytes in
    for word = w0 to w1 do
      let cell = cell_of t word in
      match kind with
      | Read ->
        (match cell.c_writer with
        | Some ws when not (ordered ws seg) ->
          record t word ~first:ws ~fk:Write ~second:seg ~sk:Read
        | _ -> ());
        (match cell.c_readers with
        | s :: _ when s == seg -> ()
        | rs -> cell.c_readers <- seg :: List.filter (fun s -> s.s_pid <> pid) rs)
      | Write ->
        (match cell.c_writer with
        | Some ws when not (ordered ws seg) ->
          record t word ~first:ws ~fk:Write ~second:seg ~sk:Write
        | _ -> ());
        List.iter
          (fun rs ->
            if rs.s_pid <> pid && not (ordered rs seg) then
              record t word ~first:rs ~fk:Read ~second:seg ~sk:Write)
          cell.c_readers;
        cell.c_writer <- Some seg;
        cell.c_readers <- []
    done
  end

let findings t = List.rev t.order
let has_findings t = t.order <> []

let kind_name = function Read -> "R" | Write -> "W"

let report t =
  if t.order = [] then
    Printf.sprintf "race check: no unordered conflicting accesses (%d accesses, %d shared words tracked)"
      t.accesses (Hashtbl.length t.words)
  else begin
    let rows =
      List.map
        (fun f ->
          [
            string_of_int f.f_page;
            Printf.sprintf "%d..%d" f.f_lo f.f_hi;
            Printf.sprintf "%s/%s" (kind_name f.f_first_kind) (kind_name f.f_second_kind);
            Printf.sprintf "p%d %s" f.f_first_pid f.f_first_ctx;
            Printf.sprintf "p%d %s" f.f_second_pid f.f_second_ctx;
            string_of_int f.f_pairs;
            f.f_hint;
          ])
        (findings t)
    in
    Printf.sprintf "race check: %d distinct race(s), %d conflicting access pair(s)\n\n%s"
      (List.length t.order) t.npairs
      (Tmk_util.Tablefmt.render
         ~title:"Data races (conflicting accesses unordered by happens-before)"
         ~header:[ "page"; "bytes"; "kind"; "first access"; "second access"; "pairs"; "ordering fix" ]
         rows)
  end
