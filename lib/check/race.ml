(* Happens-before data-race detector.

   TreadMarks only promises sequential consistency for data-race-free
   programs (§2): two conflicting accesses from different processors must
   be ordered by the lock/barrier synchronization the protocol sees.  The
   detector checks exactly that, with its own bookkeeping rather than the
   protocol's: the protocol's vector timestamps advance lazily (an interval
   closes only when the processor has dirtied pages), so they under-count
   synchronization and cannot serve directly as the happens-before clock.

   The segment-clock machinery (program order cut at sync operations,
   happens-before from release→acquire and barrier edges) lives in
   [Segments]; it is shared with the lockset analyzer in [lib/lint].

   Accesses are checked online against a per-word frontier (the FastTrack
   idea): each 8-byte word keeps its last writer segment and at most one
   reader segment per processor (a same-processor older reader is ordered
   before the newer one by program order, so it can be dropped).  This
   keeps the cost per access O(readers) instead of comparing interval
   pairs quadratically at barriers. *)

type kind = Read | Write

type segment = Segments.segment

type finding = {
  f_page : int;
  mutable f_lo : int;  (* byte range within the page, word-granular *)
  mutable f_hi : int;
  f_first_pid : int;
  f_first_kind : kind;
  f_first_ctx : string;
  f_second_pid : int;
  f_second_kind : kind;
  f_second_ctx : string;
  f_hint : string;  (* the synchronization that would have ordered them *)
  mutable f_pairs : int;  (* distinct access pairs merged into this row *)
}

type cell = { mutable c_writer : segment option; mutable c_readers : segment list }

type t = {
  nprocs : int;
  pages : int;
  segs : Segments.t;
  suppress : int array;  (* Api.unsynchronized nesting depth *)
  words : (int, cell) Hashtbl.t;
  races : (int * int * int * kind * kind, finding) Hashtbl.t;
  mutable npairs : int;
  mutable accesses : int;
}

let word_bytes = 8

let create ~nprocs ~pages () =
  if nprocs <= 0 then invalid_arg "Race.create: nprocs must be positive";
  if pages <= 0 then invalid_arg "Race.create: pages must be positive";
  {
    nprocs;
    pages;
    segs = Segments.create ~nprocs ();
    suppress = Array.make nprocs 0;
    words = Hashtbl.create 4096;
    races = Hashtbl.create 16;
    npairs = 0;
    accesses = 0;
  }

let nprocs t = t.nprocs
let pages t = t.pages
let lock_release t ~pid ~lock = Segments.lock_release t.segs ~pid ~lock
let lock_acquired t ~pid ~lock = Segments.lock_acquired t.segs ~pid ~lock
let barrier_arrive t ~pid ~id = Segments.barrier_arrive t.segs ~pid ~id
let barrier_depart t ~pid ~id = Segments.barrier_depart t.segs ~pid ~id

let suppress t ~pid on =
  t.suppress.(pid) <- (t.suppress.(pid) + if on then 1 else -1)

let min_lock = function [] -> None | l :: ls -> Some (List.fold_left min l ls)

let hint (first : segment) (second : segment) =
  match (min_lock first.Segments.s_locks, min_lock second.Segments.s_locks) with
  | Some l, _ ->
    Printf.sprintf "lock %d held by p%d but not by p%d" l first.Segments.s_pid
      second.Segments.s_pid
  | None, Some l ->
    Printf.sprintf "lock %d held by p%d but not by p%d" l second.Segments.s_pid
      first.Segments.s_pid
  | None, None -> "no common lock; a lock or an intervening barrier must order them"

let record t word ~(first : segment) ~fk ~(second : segment) ~sk =
  let page = word * word_bytes / 4096 in
  let lo = word * word_bytes mod 4096 in
  let hi = lo + word_bytes - 1 in
  t.npairs <- t.npairs + 1;
  let key = (page, first.Segments.s_pid, second.Segments.s_pid, fk, sk) in
  match Hashtbl.find_opt t.races key with
  | Some f ->
    f.f_lo <- min f.f_lo lo;
    f.f_hi <- max f.f_hi hi;
    f.f_pairs <- f.f_pairs + 1
  | None ->
    let f =
      {
        f_page = page;
        f_lo = lo;
        f_hi = hi;
        f_first_pid = first.Segments.s_pid;
        f_first_kind = fk;
        f_first_ctx = first.Segments.s_ctx;
        f_second_pid = second.Segments.s_pid;
        f_second_kind = sk;
        f_second_ctx = second.Segments.s_ctx;
        f_hint = hint first second;
        f_pairs = 1;
      }
    in
    Hashtbl.add t.races key f

let cell_of t word =
  match Hashtbl.find_opt t.words word with
  | Some c -> c
  | None ->
    let c = { c_writer = None; c_readers = [] } in
    Hashtbl.add t.words word c;
    c

let note_access t ~pid kind ~addr ~width =
  if t.suppress.(pid) = 0 then begin
    t.accesses <- t.accesses + 1;
    let seg = Segments.current t.segs pid in
    let ordered = Segments.ordered in
    let w0 = addr / word_bytes and w1 = (addr + width - 1) / word_bytes in
    for word = w0 to w1 do
      let cell = cell_of t word in
      match kind with
      | Read ->
        (match cell.c_writer with
        | Some ws when not (ordered ws seg) ->
          record t word ~first:ws ~fk:Write ~second:seg ~sk:Read
        | _ -> ());
        (match cell.c_readers with
        | s :: _ when s == seg -> ()
        | rs ->
          cell.c_readers <- seg :: List.filter (fun s -> s.Segments.s_pid <> pid) rs)
      | Write ->
        (match cell.c_writer with
        | Some ws when not (ordered ws seg) ->
          record t word ~first:ws ~fk:Write ~second:seg ~sk:Write
        | _ -> ());
        List.iter
          (fun rs ->
            if rs.Segments.s_pid <> pid && not (ordered rs seg) then
              record t word ~first:rs ~fk:Read ~second:seg ~sk:Write)
          cell.c_readers;
        cell.c_writer <- Some seg;
        cell.c_readers <- []
    done
  end

let kind_rank = function Read -> 0 | Write -> 1

(* Canonical order, not discovery order: (page, byte range, pids, kinds).
   Discovery order is deterministic for one run but differs across
   backends and schedules that find the same races; the canonical sort
   makes the report a function of the finding set alone, so equal finding
   sets render byte-identically under any --jobs setting or backend. *)
let compare_findings a b =
  let cmp =
    List.find_opt (fun c -> c <> 0)
      [
        compare a.f_page b.f_page;
        compare a.f_lo b.f_lo;
        compare a.f_hi b.f_hi;
        compare a.f_first_pid b.f_first_pid;
        compare a.f_second_pid b.f_second_pid;
        compare (kind_rank a.f_first_kind) (kind_rank b.f_first_kind);
        compare (kind_rank a.f_second_kind) (kind_rank b.f_second_kind);
      ]
  in
  match cmp with Some c -> c | None -> 0

let findings t =
  List.sort compare_findings (Hashtbl.fold (fun _ f acc -> f :: acc) t.races [])

let has_findings t = Hashtbl.length t.races > 0

let kind_name = function Read -> "R" | Write -> "W"

let report t =
  if not (has_findings t) then
    Printf.sprintf
      "race check: no unordered conflicting accesses (%d accesses, %d shared words tracked)"
      t.accesses (Hashtbl.length t.words)
  else begin
    let rows =
      List.map
        (fun f ->
          [
            string_of_int f.f_page;
            Printf.sprintf "%d..%d" f.f_lo f.f_hi;
            Printf.sprintf "%s/%s" (kind_name f.f_first_kind) (kind_name f.f_second_kind);
            Printf.sprintf "p%d %s" f.f_first_pid f.f_first_ctx;
            Printf.sprintf "p%d %s" f.f_second_pid f.f_second_ctx;
            string_of_int f.f_pairs;
            f.f_hint;
          ])
        (findings t)
    in
    Printf.sprintf "race check: %d distinct race(s), %d conflicting access pair(s)\n\n%s"
      (Hashtbl.length t.races) t.npairs
      (Tmk_util.Tablefmt.render
         ~title:"Data races (conflicting accesses unordered by happens-before)"
         ~header:[ "page"; "bytes"; "kind"; "first access"; "second access"; "pairs"; "ordering fix" ]
         rows)
  end
