(** Happens-before data-race detector.

    TreadMarks guarantees sequential consistency only for data-race-free
    programs (§2): every pair of conflicting accesses from different
    processors must be ordered by the locks and barriers the protocol
    sees.  This module checks that promise against the accesses the
    software MMU observes.

    The detector keeps its own segment clocks — one segment per
    sync-to-sync span of each processor — rather than reusing the
    protocol's vector timestamps, which advance lazily (only when an
    interval is dirty) and therefore under-count synchronization.  Races
    are detected online against a per-word frontier: for each 8-byte word,
    the last writer segment and the most recent reader segment per
    processor.  Detection is scheduling-independent: a conflict is flagged
    whenever no chain of sync edges orders the two accesses, whether or
    not they were adjacent in the simulated interleaving.

    Limitations (see PROTOCOL.md, "Data-race freedom and the checker"):
    granularity is the 8-byte word, so two byte accesses inside one word
    can be flagged together; accesses wrapped in [Api.unsynchronized] are
    invisible by design. *)

type t

type kind = Read | Write

(** [create ~nprocs ~pages ()] sizes the detector for one cluster; a
    detector instance must not be shared across runs (its clocks carry
    over). *)
val create : nprocs:int -> pages:int -> unit -> t

val nprocs : t -> int
val pages : t -> int

(** [note_access t ~pid kind ~addr ~width] records one load or store.
    Called from the [Vm] access hook for every typed access. *)
val note_access : t -> pid:int -> kind -> addr:int -> width:int -> unit

(** Sync edges, reported by the protocol layer. [lock_release] must be
    reported before the matching grant leaves the releaser; [lock_acquired]
    after the grant (and its piggybacked intervals) is absorbed;
    [barrier_arrive] before the arrival message is sent; [barrier_depart]
    after the release is absorbed. *)
val lock_release : t -> pid:int -> lock:int -> unit

val lock_acquired : t -> pid:int -> lock:int -> unit
val barrier_arrive : t -> pid:int -> id:int -> unit
val barrier_depart : t -> pid:int -> id:int -> unit

(** [suppress t ~pid on] enters/leaves an [Api.unsynchronized] span:
    accesses made while the depth is positive are not recorded at all. *)
val suppress : t -> pid:int -> bool -> unit

type finding = {
  f_page : int;
  mutable f_lo : int;  (** byte range within the page, word-granular *)
  mutable f_hi : int;
  f_first_pid : int;
  f_first_kind : kind;
  f_first_ctx : string;  (** sync context, e.g. "after barrier 0" *)
  f_second_pid : int;
  f_second_kind : kind;
  f_second_ctx : string;
  f_hint : string;  (** the synchronization that would have ordered them *)
  mutable f_pairs : int;  (** access pairs merged into this finding *)
}

(** [findings t] in canonical order — sorted by (page, byte range, pids,
    kinds) rather than discovery order, so equal finding sets render
    byte-identically whatever schedule, backend or [--jobs] setting found
    them.  One finding per (page, pids, kinds), with the byte range
    widened over all conflicting words. *)
val findings : t -> finding list

val has_findings : t -> bool

(** [report t] renders the findings as a Tablefmt table, or a one-line
    all-clear. *)
val report : t -> string
