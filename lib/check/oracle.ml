(* Protocol invariant oracle.

   A pass over the typed event stream (live, through a sink listener, or
   offline over a recorded JSONL trace) asserting properties every
   correct run must satisfy, whatever the application does — the oracle
   holds even for racy programs; it checks the protocol, not the app.

   I1  Vector-time monotonicity: each processor's interval-close
       timestamps are totally ordered, own-component = interval id,
       ids strictly increasing.
   I2  Incorporation exactness: a processor's close timestamp claims,
       for every peer, exactly the intervals whose records it received
       (no invented knowledge, no forgotten receipts); received ids are
       strictly increasing per (owner, receiver).
   I3  Coverage at acquire: a remote lock acquire leaves the acquirer
       knowing at least everything the granter knew when it assembled
       the grant, and a barrier release leaves every client knowing at
       least what the manager knew when it released — the records
       promised by intervals_since really all arrive.  (A stronger
       "knowledge dominates every piggybacked timestamp" check is
       unsound: a node serving a lock grant mid-barrier can legitimately
       hold a record whose timestamp references arrivals it has not
       itself incorporated yet.)
   I4  Barrier epoch agreement: all arrivals at one (id, occurrence)
       carry the same global barrier sequence number, at most nprocs of
       them, and every arrival is matched by exactly one release.
   I5  Diff conservation: every identified diff application references a
       diff previously created by its owning processor, and all
       applications of one (proc, interval, page) patch the same number
       of bytes.  (ERC's eager diffs carry interval -1 and are exempt:
       they are transient and never cached.)
   I6  GC safety: after a processor runs garbage collection, it never
       receives a write notice or applies a diff for an interval at or
       below the knowledge it held when it collected — collected records
       are truly dead.

   Crash-stop runs: a [Proc_crash] event marks its processor dead, and
   the end-of-run barrier completeness checks (I4) are relaxed by the
   number of dead processors — a crossing may legitimately complete with
   only the survivors, and the arrivals of a crossing in flight at the
   crash may exceed its releases by the dead. *)

type t = {
  o_nprocs : int;
  know : int array array;  (* know.(p).(q): highest interval of q that p incorporated *)
  grant_snap : (int * int, int array Queue.t) Hashtbl.t;
      (* (lock, requester) -> granter knowledge at each in-flight grant *)
  bar_snap : (int * int, int array) Hashtbl.t;
      (* (id, occurrence) -> manager knowledge at its release *)
  last_close : int array option array;
  bar_seq : (int * int, int) Hashtbl.t;  (* (id, pid) -> arrivals so far *)
  bar_epoch : (int * int, int) Hashtbl.t;  (* (id, occurrence) -> first epoch seen *)
  bar_in : (int * int, int) Hashtbl.t;  (* (id, occurrence) -> arrivals *)
  bar_out : (int * int, int) Hashtbl.t;  (* (id, occurrence) -> releases *)
  diff_created : (int * int * int, unit) Hashtbl.t;  (* (proc, interval, page) *)
  diff_bytes : (int * int * int, int) Hashtbl.t;
  gc_floor : int array option array;  (* per pid: know at its last Gc_end *)
  dead : bool array;  (* per pid: a Proc_crash was seen *)
  mutable vt_checked : bool;
      (* vector-time invariants (I1/I2, knowledge coverage in I3) apply;
         off for backends without vector timestamps on the wire *)
  mutable violations : string list;  (* newest first *)
  mutable nviol : int;
  mutable fed : int;
}

let max_recorded = 200

let create ~nprocs () =
  if nprocs <= 0 then invalid_arg "Oracle.create: nprocs must be positive";
  {
    o_nprocs = nprocs;
    know = Array.init nprocs (fun _ -> Array.make nprocs 0);
    grant_snap = Hashtbl.create 16;
    bar_snap = Hashtbl.create 16;
    last_close = Array.make nprocs None;
    bar_seq = Hashtbl.create 16;
    bar_epoch = Hashtbl.create 16;
    bar_in = Hashtbl.create 16;
    bar_out = Hashtbl.create 16;
    diff_created = Hashtbl.create 64;
    diff_bytes = Hashtbl.create 64;
    gc_floor = Array.make nprocs None;
    dead = Array.make nprocs false;
    vt_checked = true;
    violations = [];
    nviol = 0;
    fed = 0;
  }

let nprocs t = t.o_nprocs
let set_vt_checked t b = t.vt_checked <- b

let viol t fmt =
  Printf.ksprintf
    (fun msg ->
      t.nviol <- t.nviol + 1;
      if t.nviol <= max_recorded then t.violations <- msg :: t.violations)
    fmt

let leq a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
  !ok

(* I3: at a sync completion point, [p]'s knowledge must dominate the
   snapshot taken of its sync partner (granter or barrier manager) when
   the partner assembled the records. *)
let coverage t p ~against:snap where =
  let k = t.know.(p) in
  for q = 0 to t.o_nprocs - 1 do
    if snap.(q) > k.(q) then
      viol t
        "I3 coverage: p%d %s knowing p%d only up to interval %d; its partner knew %d"
        p where q k.(q) snap.(q)
  done

let feed t (r : Tmk_trace.Sink.record) =
  t.fed <- t.fed + 1;
  let p = r.r_pid in
  let in_range = p >= 0 && p < t.o_nprocs in
  match r.r_ev with
  | Tmk_trace.Event.Interval_close { id; notices = _; vt } when in_range && t.vt_checked ->
    if Array.length vt <> t.o_nprocs then
      viol t "I1 p%d closed interval %d with a %d-entry vector timestamp (cluster has %d)"
        p id (Array.length vt) t.o_nprocs
    else begin
      if vt.(p) <> id then
        viol t "I1 p%d closed interval %d but its own vt entry says %d" p id vt.(p);
      if id <= t.know.(p).(p) then
        viol t "I1 p%d interval ids not increasing: closed %d after %d" p id t.know.(p).(p);
      (match t.last_close.(p) with
      | Some prev when not (leq prev vt) ->
        viol t "I1 p%d vector time not monotonic at interval %d" p id
      | _ -> ());
      for q = 0 to t.o_nprocs - 1 do
        if q <> p && vt.(q) <> t.know.(p).(q) then
          viol t
            "I2 p%d closed interval %d claiming p%d's interval %d; incorporation says %d"
            p id q vt.(q) t.know.(p).(q)
      done;
      t.know.(p).(p) <- id;
      t.last_close.(p) <- Some (Array.copy vt)
    end
  | Interval_recv { proc = q; id; notices = _; vt } when in_range && t.vt_checked ->
    if q = p then viol t "I2 p%d incorporated its own interval %d" p id
    else if q < 0 || q >= t.o_nprocs then
      viol t "I2 p%d incorporated an interval from unknown p%d" p q
    else begin
      if id <= t.know.(p).(q) then
        viol t "I2 p%d re-incorporated p%d's interval %d (already at %d)" p q id
          t.know.(p).(q);
      if Array.length vt = t.o_nprocs then begin
        if vt.(q) <> id then
          viol t "I2 p%d's record of p%d's interval %d carries own vt entry %d" p q id
            vt.(q)
      end
      else viol t "I2 p%d received a malformed vector timestamp from p%d" p q;
      t.know.(p).(q) <- max t.know.(p).(q) id
    end
  | Lock_grant { lock; requester; _ } when in_range && t.vt_checked ->
    (* Snapshot the granter's knowledge: the grant carries every record
       the requester lacks of it, so the requester must dominate this at
       its Lock_acquired. *)
    let q =
      match Hashtbl.find_opt t.grant_snap (lock, requester) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.grant_snap (lock, requester) q;
        q
    in
    Queue.push (Array.copy t.know.(p)) q
  | Lock_acquired { lock; local } when in_range && t.vt_checked ->
    if not local then (
      match Hashtbl.find_opt t.grant_snap (lock, p) with
      | Some q when not (Queue.is_empty q) ->
        coverage t p ~against:(Queue.pop q) "finished a remote acquire"
      | _ ->
        viol t "I3 p%d finished a remote acquire of lock %d with no grant in flight" p
          lock)
  | Barrier_arrive { id; epoch } when in_range ->
    let occ = try Hashtbl.find t.bar_seq (id, p) with Not_found -> 0 in
    Hashtbl.replace t.bar_seq (id, p) (occ + 1);
    let arrived = (try Hashtbl.find t.bar_in (id, occ) with Not_found -> 0) + 1 in
    Hashtbl.replace t.bar_in (id, occ) arrived;
    if arrived > t.o_nprocs then
      viol t "I4 barrier %d crossing %d saw %d arrivals for %d processors" id occ arrived
        t.o_nprocs;
    (match Hashtbl.find_opt t.bar_epoch (id, occ) with
    | None -> Hashtbl.add t.bar_epoch (id, occ) epoch
    | Some e ->
      if e <> epoch then
        viol t "I4 barrier %d crossing %d: p%d arrives in epoch %d, another in %d" id occ
          p epoch e)
  | Barrier_release { id; epoch = _ } when in_range ->
    let occ = (try Hashtbl.find t.bar_seq (id, p) with Not_found -> 0) - 1 in
    if occ < 0 then viol t "I4 p%d released from barrier %d it never arrived at" p id
    else begin
      (* The manager releases the clients, so its own Barrier_release is
         the first of the crossing in stream order; every client must
         then dominate the knowledge the manager released with. *)
      if t.vt_checked then (
        match Hashtbl.find_opt t.bar_snap (id, occ) with
        | None -> Hashtbl.add t.bar_snap (id, occ) (Array.copy t.know.(p))
        | Some snap -> coverage t p ~against:snap "crossed a barrier");
      let released = (try Hashtbl.find t.bar_out (id, occ) with Not_found -> 0) + 1 in
      Hashtbl.replace t.bar_out (id, occ) released;
      if released > t.o_nprocs then
        viol t "I4 barrier %d crossing %d released %d times" id occ released
    end
  | Diff_create { page; bytes = _; proc; interval } when in_range && interval >= 0 ->
    if proc <> p then
      viol t "I5 p%d created a diff owned by p%d (interval %d, page %d)" p proc interval
        page;
    if Hashtbl.mem t.diff_created (proc, interval, page) then
      viol t "I5 diff (p%d, interval %d, page %d) created twice" proc interval page
    else Hashtbl.add t.diff_created (proc, interval, page) ()
  | Diff_apply { page; bytes; proc; interval } when in_range && interval >= 0 ->
    if not (Hashtbl.mem t.diff_created (proc, interval, page)) then
      viol t "I5 p%d applied diff (p%d, interval %d, page %d) that was never created" p
        proc interval page;
    (match Hashtbl.find_opt t.diff_bytes (proc, interval, page) with
    | None -> Hashtbl.add t.diff_bytes (proc, interval, page) bytes
    | Some b ->
      if b <> bytes then
        viol t "I5 diff (p%d, interval %d, page %d) applied with %d bytes, earlier %d"
          proc interval page bytes b);
    (match t.gc_floor.(p) with
    | Some floor when proc >= 0 && proc < t.o_nprocs && interval <= floor.(proc) ->
      viol t "I6 p%d applied diff of p%d's collected interval %d (floor %d)" p proc
        interval floor.(proc)
    | _ -> ())
  | Write_notice_recv { page; proc; interval } when in_range ->
    (match t.gc_floor.(p) with
    | Some floor when proc >= 0 && proc < t.o_nprocs && interval <= floor.(proc) ->
      viol t
        "I6 p%d received a write notice (page %d) for p%d's collected interval %d (floor %d)"
        p page proc interval floor.(proc)
    | _ -> ())
  | Gc_end _ when in_range -> t.gc_floor.(p) <- Some (Array.copy t.know.(p))
  | Proc_crash when in_range -> t.dead.(p) <- true
  | _ -> ()

let attach t sink = Tmk_trace.Sink.on_record sink (feed t)

(* End-of-run checks: every barrier crossing that gathered arrivals must
   have completed.  (A trace truncated mid-run will trip these — that is
   the point.)  Dead processors are excused: a crossing after (or during)
   a crash completes with the survivors, and a dead arriver is never
   released. *)
let finish t =
  let ndead = Array.fold_left (fun a d -> if d then a + 1 else a) 0 t.dead in
  let pending = ref [] in
  Hashtbl.iter (fun k v -> pending := (k, v) :: !pending) t.bar_in;
  let pending = List.sort compare !pending in
  List.iter
    (fun ((id, occ), arrived) ->
      if arrived < t.o_nprocs - ndead || arrived > t.o_nprocs then
        viol t "I4 barrier %d crossing %d ended with %d/%d arrivals" id occ arrived
          t.o_nprocs;
      let released = try Hashtbl.find t.bar_out (id, occ) with Not_found -> 0 in
      if released < arrived - ndead || released > arrived then
        viol t "I4 barrier %d crossing %d: %d arrivals but %d releases" id occ arrived
          released)
    pending;
  let vs = List.rev t.violations in
  if t.nviol > max_recorded then
    vs @ [ Printf.sprintf "... and %d more violations suppressed" (t.nviol - max_recorded) ]
  else vs

let check_sink ~nprocs sink =
  let t = create ~nprocs () in
  Tmk_trace.Sink.iter (feed t) sink;
  finish t

let report = function
  | [] -> "invariant oracle: all protocol invariants hold"
  | vs ->
    Printf.sprintf "invariant oracle: %d violation(s)\n%s" (List.length vs)
      (String.concat "\n" (List.map (fun v -> "  - " ^ v) vs))
