(** Protocol invariant oracle.

    Replays the typed event stream — live via a sink listener or offline
    from a recorded JSONL trace — and asserts properties every correct
    run satisfies regardless of what the application computes.  Racy
    programs get wrong {e answers}, never wrong {e protocol} — the
    oracle checks the protocol:

    - {b I1} vector-time monotonicity per processor, own entry = closed
      interval id, ids strictly increasing;
    - {b I2} incorporation exactness: close timestamps claim exactly the
      peer intervals whose records were received, receipts strictly
      increasing per peer;
    - {b I3} coverage: a remote lock acquire leaves the acquirer knowing
      at least everything the granter knew at grant time, and a barrier
      release leaves every client knowing at least what the manager
      released with — what [intervals_since] promises, the stream
      delivers;
    - {b I4} barrier agreement: per (id, occurrence) at most [nprocs]
      arrivals, all in the same global epoch, each matched by a release,
      all complete at end of run;
    - {b I5} diff conservation: identified diff applications reference a
      created diff and agree on its payload size across appliers;
    - {b I6} GC safety: no write notice received or diff applied for an
      interval at or below the receiver's knowledge at its last
      collection. *)

type t

(** [create ~nprocs ()] — fresh oracle for one run. *)
val create : nprocs:int -> unit -> t

val nprocs : t -> int

(** [set_vt_checked t b] — enable or disable the vector-time invariants
    (I1, I2, and the knowledge-coverage half of I3; on by default).
    Coherence backends without vector timestamps on the wire
    ([Backend.caps.c_vt_on_wire = false]: Tardis, SC-ABD) emit no
    interval events and make knowledge comparisons vacuous, so [Api.run]
    switches these checks off for them; the structural barrier checks
    (I4) and diff conservation (I5) stay on for every backend. *)
val set_vt_checked : t -> bool -> unit

(** [feed t r] — consume one record in stream order. *)
val feed : t -> Tmk_trace.Sink.record -> unit

(** [attach t sink] — register [feed] as a listener for a live run. *)
val attach : t -> Tmk_trace.Sink.t -> unit

(** [finish t] — run end-of-stream checks and return all violations in
    discovery order (capped at 200, with a summary line beyond that).
    Call once, after the run. *)
val finish : t -> string list

(** [check_sink ~nprocs sink] — one-shot offline pass over a buffered or
    re-read stream. *)
val check_sink : nprocs:int -> Tmk_trace.Sink.t -> string list

(** [report violations] — human-readable summary. *)
val report : string list -> string
