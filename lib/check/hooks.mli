(** A generic observer of the checker-visible events of a run.

    The protocol dispatches every typed access, every sync edge and every
    [Api.unsynchronized] span to each hook carried by the run's
    {!Checker}.  Hooks let analyzers that sit above [tmk_dsm] in the
    dependency order (the sanitizer suite in [lib/lint]) observe a run
    without the DSM depending on them.

    Event contracts match {!Race}: [h_lock_release] fires before the grant
    leaves the releaser, [h_lock_acquired] after the grant is absorbed,
    [h_barrier_arrive] before the arrival message goes out,
    [h_barrier_depart] after the release is absorbed, and [h_access] on
    every typed access (installing any hook disables the MMU fast path for
    that run).  [h_suppress pid on] brackets an [Api.unsynchronized]
    span. *)

type access_kind = Read | Write

type t = {
  h_access : pid:int -> access_kind -> addr:int -> width:int -> unit;
  h_lock_acquired : pid:int -> lock:int -> unit;
  h_lock_release : pid:int -> lock:int -> unit;
  h_barrier_arrive : pid:int -> id:int -> unit;
  h_barrier_depart : pid:int -> id:int -> unit;
  h_suppress : pid:int -> bool -> unit;
}

(** [nop] ignores everything; build a hook by overriding the fields you
    observe. *)
val nop : t
