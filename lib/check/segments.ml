(* Segment clocks: the happens-before skeleton shared by the checkers.

   The program order of each processor is cut into {e segments} at every
   lock acquire, lock release, barrier arrival and barrier departure.
   Happens-before over segments is computed from sync edges only:

   - release of lock [l] -> next acquire of [l].  The simulation runs one
     processor at a time and the protocol enforces mutual exclusion, so
     each lock's critical sections are totally ordered and a single stored
     clock per lock suffices.
   - barrier: all-to-all.  Arrival clocks accumulate per (id, occurrence);
     departure merges the accumulated clock, which is complete because the
     manager releases only after every arrival.

   Extracted from the race detector (PR 4) so the lockset analyzer in
   [lib/lint] can share one clock instance per run instead of keeping a
   second, subtly different notion of ordering. *)

type segment = {
  s_pid : int;
  s_idx : int;  (* 1-based index of this segment in its processor's order *)
  s_open : int array;  (* the processor's clock when the segment opened *)
  s_ctx : string;  (* the synchronization that opened it, for reports *)
  s_locks : int list;  (* locks held while the segment runs *)
}

type t = {
  nprocs : int;
  clock : int array array;  (* clock.(p).(q): segments of q ordered before p's current *)
  seg : segment array;  (* current open segment per processor *)
  held : int list array;
  lock_clock : (int, int array) Hashtbl.t;  (* lock -> releaser's clock *)
  bar_seq : (int * int, int) Hashtbl.t;  (* (id, pid) -> arrivals so far *)
  bar_acc : (int * int, int array) Hashtbl.t;  (* (id, occurrence) -> merged clock *)
  bar_departed : (int * int, unit) Hashtbl.t;  (* (id, occurrence) seen departing *)
  mutable generation : int;  (* barrier generation, see [generation] below *)
}

let create ~nprocs () =
  if nprocs <= 0 then invalid_arg "Segments.create: nprocs must be positive";
  let seg0 pid =
    { s_pid = pid; s_idx = 1; s_open = Array.make nprocs 0; s_ctx = "at start"; s_locks = [] }
  in
  {
    nprocs;
    clock = Array.init nprocs (fun _ -> Array.make nprocs 0);
    seg = Array.init nprocs seg0;
    held = Array.make nprocs [];
    lock_clock = Hashtbl.create 16;
    bar_seq = Hashtbl.create 16;
    bar_acc = Hashtbl.create 16;
    bar_departed = Hashtbl.create 16;
    generation = 0;
  }

let nprocs t = t.nprocs
let current t pid = t.seg.(pid)
let held t pid = t.held.(pid)
let generation t = t.generation

let max_into src dst =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

(* [s] happened before [cur] iff they share a processor (program order) or
   [cur]'s opening clock already covers [s]. *)
let ordered s cur = s.s_pid = cur.s_pid || cur.s_open.(s.s_pid) >= s.s_idx

let close_segment t pid =
  let c = t.clock.(pid) in
  c.(pid) <- c.(pid) + 1

let open_segment t pid ctx =
  t.seg.(pid) <-
    {
      s_pid = pid;
      s_idx = t.clock.(pid).(pid) + 1;
      s_open = Array.copy t.clock.(pid);
      s_ctx = ctx;
      s_locks = t.held.(pid);
    }

(* Barrier ids at and above 2^30 are the Api collectives' reserved range
   (reduce/bcast); name them as such rather than leaking raw ids. *)
let barrier_name id =
  if id >= 1 lsl 30 then Printf.sprintf "collective %d" (id - (1 lsl 30))
  else Printf.sprintf "barrier %d" id

let lock_release t ~pid ~lock =
  close_segment t pid;
  Hashtbl.replace t.lock_clock lock (Array.copy t.clock.(pid));
  t.held.(pid) <- List.filter (fun l -> l <> lock) t.held.(pid);
  open_segment t pid (Printf.sprintf "after releasing lock %d" lock)

let lock_acquired t ~pid ~lock =
  close_segment t pid;
  (match Hashtbl.find_opt t.lock_clock lock with
  | Some c -> max_into c t.clock.(pid)
  | None -> ());
  t.held.(pid) <- lock :: t.held.(pid);
  open_segment t pid (Printf.sprintf "holding lock %d" lock)

let barrier_arrive t ~pid ~id =
  close_segment t pid;
  let occ = try Hashtbl.find t.bar_seq (id, pid) with Not_found -> 0 in
  Hashtbl.replace t.bar_seq (id, pid) (occ + 1);
  (match Hashtbl.find_opt t.bar_acc (id, occ) with
  | Some acc -> max_into t.clock.(pid) acc
  | None -> Hashtbl.add t.bar_acc (id, occ) (Array.copy t.clock.(pid)));
  open_segment t pid (Printf.sprintf "arriving at %s" (barrier_name id))

let barrier_depart t ~pid ~id =
  close_segment t pid;
  let occ = (try Hashtbl.find t.bar_seq (id, pid) with Not_found -> 1) - 1 in
  (match Hashtbl.find_opt t.bar_acc (id, occ) with
  | Some acc -> max_into acc t.clock.(pid)
  | None -> ());
  (* The generation bumps once per barrier occurrence, at its first
     departure.  Every arrival precedes every departure of an occurrence
     in simulation order and a blocked processor makes no accesses, so no
     access can fall between two departures of the same occurrence: the
     generation splits the accesses of a run into barrier epochs. *)
  if not (Hashtbl.mem t.bar_departed (id, occ)) then begin
    Hashtbl.add t.bar_departed (id, occ) ();
    t.generation <- t.generation + 1
  end;
  open_segment t pid (Printf.sprintf "after %s" (barrier_name id))
