(* The checker a run carries: any part may be absent.  Lives in its own
   module so [Config] needs a single optional field and the DSM layer
   depends only on this library's interface, not on which checks run.

   Besides the two built-in checkers (race detector, invariant oracle),
   a checker can carry generic [Hooks.t] observers and trace-attach
   callbacks; both exist so the lint suite in [lib/lint] — which sits
   above [tmk_dsm] — can ride along on a run without a dependency cycle. *)

type t = {
  ck_race : Race.t option;
  ck_oracle : Oracle.t option;
  ck_hooks : Hooks.t list;
  ck_attach : (Tmk_trace.Sink.t -> unit) list;
}

let create ?race ?oracle ?(hooks = []) ?(attach = []) () =
  { ck_race = race; ck_oracle = oracle; ck_hooks = hooks; ck_attach = attach }

let race t = t.ck_race
let oracle t = t.ck_oracle
let hooks t = t.ck_hooks
let attach t = t.ck_attach
