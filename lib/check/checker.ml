(* The checker a run carries: either half may be absent.  Lives in its
   own module so [Config] needs a single optional field and the DSM layer
   depends only on this library's interface, not on which checks run. *)

type t = { ck_race : Race.t option; ck_oracle : Oracle.t option }

let create ?race ?oracle () = { ck_race = race; ck_oracle = oracle }
let race t = t.ck_race
let oracle t = t.ck_oracle
