(* White-box tests of the consistency bookkeeping in Node: interval
   closing, incorporation and its duplicate suppression, interval deltas,
   lazy diff creation, miss planning inputs, replay ordering, and the GC
   sweep. *)

open Tmk_dsm
module Vm = Tmk_mem.Vm

let check = Alcotest.check
let no_charge _ _ = ()

let make_node ?(pid = 0) ?(nprocs = 4) ?(pages = 4) () = Node.create ~pid ~nprocs ~pages ()

(* simulate a local write: twin the page, then poke the vm *)
let write node page ~offset v =
  (match Vm.prot node.Node.vm page with
  | Vm.Read_write -> ()
  | Vm.Read_only | Vm.No_access ->
    (* tests drive the bookkeeping directly; force writability first *)
    if node.Node.pages.(page).Node.pg_twin = None then
      Node.write_fault_twin node page ~charge:no_charge);
  Vm.write_int node.Node.vm (Vm.addr_of_page page + offset) v

let close_creates_interval () =
  let n = make_node () in
  write n 0 ~offset:0 1;
  write n 1 ~offset:8 2;
  check Alcotest.int "two dirty pages" 2 (List.length n.Node.dirty);
  Node.close_interval n ~charge:no_charge;
  check Alcotest.int "dirty drained" 0 (List.length n.Node.dirty);
  check Alcotest.int "vt advanced" 1 (Vector_time.get n.Node.vt 0);
  (match n.Node.intervals.(0) with
  | [ iv ] ->
    check Alcotest.int "interval id" 1 iv.Node.iv_id;
    check Alcotest.int "two notices" 2 (List.length iv.Node.iv_notices)
  | other -> Alcotest.failf "expected one interval, got %d" (List.length other));
  (* closing again with nothing dirty is a no-op *)
  Node.close_interval n ~charge:no_charge;
  check Alcotest.int "vt unchanged" 1 (Vector_time.get n.Node.vt 0)

let close_eager_diffs () =
  let n = make_node () in
  write n 0 ~offset:0 5;
  Node.close_interval ~eager_diffs:true n ~charge:no_charge;
  check Alcotest.int "diff created eagerly" 1 n.Node.stats.Stats.diffs_created;
  check Alcotest.bool "twin discarded" true (n.Node.pages.(0).Node.pg_twin = None);
  (* lazy default: no diff until demanded *)
  let n2 = make_node () in
  write n2 0 ~offset:0 5;
  Node.close_interval n2 ~charge:no_charge;
  check Alcotest.int "no eager diff" 0 n2.Node.stats.Stats.diffs_created;
  check Alcotest.bool "twin kept" true (n2.Node.pages.(0).Node.pg_twin <> None)

let msg_interval ?(diffs = []) ~proc ~id ~vt ~pages () =
  let v = Vector_time.create 4 in
  List.iteri (fun q x -> Vector_time.set v q x) vt;
  let diff_for p = List.assoc_opt p diffs in
  { Node.mi_proc = proc; mi_id = id; mi_vt = v; mi_pages = List.map (fun p -> (p, diff_for p)) pages }

let incorporate_invalidates () =
  let n = make_node ~pid:0 () in
  (* node 0 initially holds every page read-only *)
  Node.incorporate n [ msg_interval ~proc:1 ~id:1 ~vt:[ 0; 1; 0; 0 ] ~pages:[ 2 ] () ]
    ~charge:no_charge;
  check Alcotest.bool "page invalidated" true (Vm.prot n.Node.vm 2 = Vm.No_access);
  check Alcotest.int "vt tracks" 1 (Vector_time.get n.Node.vt 1);
  check Alcotest.int "notice recorded" 1 (List.length n.Node.pages.(2).Node.pg_notices.(1))

let incorporate_skips_duplicates () =
  let n = make_node ~pid:0 () in
  let mi = msg_interval ~proc:1 ~id:1 ~vt:[ 0; 1; 0; 0 ] ~pages:[ 2 ] () in
  Node.incorporate n [ mi ] ~charge:no_charge;
  Node.incorporate n [ mi ] ~charge:no_charge;
  check Alcotest.int "one record only" 1 (List.length n.Node.pages.(2).Node.pg_notices.(1));
  check Alcotest.int "one interval only" 1 (List.length n.Node.intervals.(1))

let incorporate_saves_local_twin () =
  let n = make_node ~pid:0 () in
  write n 2 ~offset:16 42;
  Node.close_interval n ~charge:no_charge;
  (* a foreign notice for the twinned page forces our diff first *)
  Node.incorporate n [ msg_interval ~proc:1 ~id:1 ~vt:[ 0; 1; 0; 0 ] ~pages:[ 2 ] () ]
    ~charge:no_charge;
  check Alcotest.int "local diff created" 1 n.Node.stats.Stats.diffs_created;
  check Alcotest.bool "twin gone" true (n.Node.pages.(2).Node.pg_twin = None);
  check Alcotest.bool "invalid" true (Vm.prot n.Node.vm 2 = Vm.No_access);
  (* and the local diff is addressable *)
  let diff = Node.find_diff n ~proc:0 ~interval_id:1 ~page:2 ~charge:no_charge in
  check Alcotest.bool "diff nonempty" false (Tmk_util.Rle.is_empty diff)

let intervals_since_delta () =
  let n = make_node ~pid:0 () in
  (* two own intervals *)
  write n 0 ~offset:0 1;
  Node.close_interval n ~charge:no_charge;
  (* page 0 is still writable (twin alive): re-twin requires a diff first *)
  Node.ensure_own_diff n 0 ~charge:no_charge;
  write n 0 ~offset:8 2;
  Node.close_interval n ~charge:no_charge;
  let zero = Vector_time.create 4 in
  check Alcotest.int "all intervals" 2 (List.length (Node.intervals_since n zero));
  let seen_one = Vector_time.create 4 in
  Vector_time.set seen_one 0 1;
  let delta = Node.intervals_since n seen_one in
  check Alcotest.int "only the newer" 1 (List.length delta);
  check Alcotest.int "its id" 2 (List.hd delta).Node.mi_id;
  (* foreign intervals flow through too *)
  Node.incorporate n [ msg_interval ~proc:2 ~id:1 ~vt:[ 0; 0; 1; 0 ] ~pages:[ 3 ] () ]
    ~charge:no_charge;
  check Alcotest.int "foreign included" 2 (List.length (Node.intervals_since n seen_one))

let own_intervals_only () =
  let n = make_node ~pid:0 () in
  write n 0 ~offset:0 1;
  Node.close_interval n ~charge:no_charge;
  Node.incorporate n [ msg_interval ~proc:2 ~id:1 ~vt:[ 0; 0; 1; 0 ] ~pages:[ 3 ] () ]
    ~charge:no_charge;
  let zero = Vector_time.create 4 in
  check Alcotest.int "own only" 1 (List.length (Node.own_intervals_since n zero));
  check Alcotest.int "own id" 0 (List.hd (Node.own_intervals_since n zero)).Node.mi_proc

let lazy_diff_on_request () =
  let n = make_node ~pid:0 () in
  write n 1 ~offset:24 9;
  Node.close_interval n ~charge:no_charge;
  check Alcotest.int "still lazy" 0 n.Node.stats.Stats.diffs_created;
  (* a diff request for our own newest notice creates it *)
  let diff = Node.find_diff n ~proc:0 ~interval_id:1 ~page:1 ~charge:no_charge in
  check Alcotest.int "created on demand" 1 n.Node.stats.Stats.diffs_created;
  check Alcotest.bool "page reprotected" true (Vm.prot n.Node.vm 1 = Vm.Read_only);
  check Alcotest.bool "has the bytes" false (Tmk_util.Rle.is_empty diff);
  (* unknown notices raise *)
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Node.find_diff n ~proc:3 ~interval_id:9 ~page:1 ~charge:no_charge))

let missing_diffs_prefix () =
  let n = make_node ~pid:0 () in
  Node.incorporate n
    [ msg_interval ~proc:1 ~id:1 ~vt:[ 0; 1; 0; 0 ] ~pages:[ 2 ] ();
      msg_interval ~proc:1 ~id:2 ~vt:[ 0; 2; 0; 0 ] ~pages:[ 2 ] () ]
    ~charge:no_charge;
  (match Node.missing_diffs n 2 with
  | [ (1, wns) ] ->
    check Alcotest.int "both lacking" 2 (List.length wns);
    check Alcotest.int "newest first" 2 (List.hd wns).Node.wn_interval.Node.iv_id
  | _ -> Alcotest.fail "unexpected grouping");
  (* Diffs arrive in complete fetch rounds, oldest first within a round,
     so the lacking notices always form a newest-first prefix.  Store the
     older diff: only the newer remains missing. *)
  Node.store_diff n ~proc:1 ~interval_id:1 ~page:2 (Tmk_util.Rle.of_runs []);
  (match Node.missing_diffs n 2 with
  | [ (1, [ wn ]) ] -> check Alcotest.int "newer still lacking" 2 wn.Node.wn_interval.Node.iv_id
  | _ -> Alcotest.fail "unexpected");
  Node.store_diff n ~proc:1 ~interval_id:2 ~page:2 (Tmk_util.Rle.of_runs []);
  check Alcotest.bool "none lacking" true (Node.missing_diffs n 2 = [])

(* Replay: applying an older foreign diff must re-apply newer held diffs
   over it (the byte-regression bug found by quicksort). *)
let apply_replays_newer_diffs () =
  let n = make_node ~pid:0 ~pages:1 () in
  (* incorporate two ordered foreign intervals touching the same word *)
  Node.incorporate n [ msg_interval ~proc:1 ~id:1 ~vt:[ 0; 1; 0; 0 ] ~pages:[ 0 ] () ]
    ~charge:no_charge;
  Node.incorporate n [ msg_interval ~proc:2 ~id:1 ~vt:[ 0; 1; 1; 0 ] ~pages:[ 0 ] () ]
    ~charge:no_charge;
  let diff_of value =
    let base = Bytes.make Vm.page_size '\000' in
    let cur = Bytes.copy base in
    Bytes.set_int64_le cur 0 (Int64.of_int value);
    Tmk_util.Rle.encode ~old_:base cur
  in
  (* the newer diff (proc 2, causally after proc 1's) is already held and
     applied; then the older one arrives *)
  Node.store_diff n ~proc:2 ~interval_id:1 ~page:0 (diff_of 222);
  let newer =
    match n.Node.pages.(0).Node.pg_notices.(2) with [ wn ] -> wn | _ -> assert false
  in
  Node.apply_missing_diffs n 0 [ newer ] ~charge:no_charge;
  check Alcotest.int "newer applied" 222 (Vm.read_int n.Node.vm 0);
  Node.store_diff n ~proc:1 ~interval_id:1 ~page:0 (diff_of 111);
  let older =
    match n.Node.pages.(0).Node.pg_notices.(1) with [ wn ] -> wn | _ -> assert false
  in
  Node.apply_missing_diffs n 0 [ older ] ~charge:no_charge;
  (* without replay this would regress to 111 *)
  check Alcotest.int "newer value survives" 222 (Vm.read_int n.Node.vm 0)

let discard_sweeps_everything () =
  let n = make_node ~pid:0 () in
  write n 0 ~offset:0 1;
  Node.close_interval n ~charge:no_charge;
  Node.incorporate n [ msg_interval ~proc:1 ~id:1 ~vt:[ 0; 1; 0; 0 ] ~pages:[ 2 ] () ]
    ~charge:no_charge;
  check Alcotest.bool "records live" true (n.Node.live_records > 0);
  let freed = Node.discard_all_records n ~charge:no_charge in
  check Alcotest.bool "freed" true (freed > 0);
  check Alcotest.int "live zero" 0 n.Node.live_records;
  check Alcotest.bool "twins gone" true
    (Array.for_all (fun e -> e.Node.pg_twin = None) n.Node.pages);
  check Alcotest.bool "intervals gone" true
    (Array.for_all (fun l -> l = []) n.Node.intervals)

let modified_pages_tracks () =
  let n = make_node ~pid:0 () in
  write n 0 ~offset:0 1;
  check Alcotest.(list int) "twinned page" [ 0 ] (Node.modified_pages n);
  Node.close_interval n ~charge:no_charge;
  Node.ensure_own_diff n 0 ~charge:no_charge;
  (* notice remains after the diff *)
  check Alcotest.(list int) "still modified" [ 0 ] (Node.modified_pages n)

let notice_counts_sizes () =
  let mis =
    [ msg_interval ~proc:0 ~id:1 ~vt:[ 1; 0; 0; 0 ] ~pages:[ 1; 2; 3 ] ();
      msg_interval ~proc:1 ~id:1 ~vt:[ 0; 1; 0; 0 ] ~pages:[] () ]
  in
  check Alcotest.(list int) "counts" [ 3; 0 ] (Node.notice_counts mis)

let suite =
  [
    Alcotest.test_case "close creates interval" `Quick close_creates_interval;
    Alcotest.test_case "close eager diffs" `Quick close_eager_diffs;
    Alcotest.test_case "incorporate invalidates" `Quick incorporate_invalidates;
    Alcotest.test_case "incorporate skips duplicates" `Quick incorporate_skips_duplicates;
    Alcotest.test_case "incorporate saves local twin" `Quick incorporate_saves_local_twin;
    Alcotest.test_case "intervals_since delta" `Quick intervals_since_delta;
    Alcotest.test_case "own intervals only" `Quick own_intervals_only;
    Alcotest.test_case "lazy diff on request" `Quick lazy_diff_on_request;
    Alcotest.test_case "missing diffs prefix" `Quick missing_diffs_prefix;
    Alcotest.test_case "apply replays newer diffs" `Quick apply_replays_newer_diffs;
    Alcotest.test_case "discard sweeps everything" `Quick discard_sweeps_everything;
    Alcotest.test_case "modified pages tracks" `Quick modified_pages_tracks;
    Alcotest.test_case "notice counts" `Quick notice_counts_sizes;
  ]
