(* Software-MMU tests: typed accessors, protection faults, page
   snapshot/patch machinery. *)

open Tmk_mem

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let accessors_roundtrip () =
  let vm = Vm.create ~pages:4 () in
  Vm.write_u8 vm 0 0xAB;
  check Alcotest.int "u8" 0xAB (Vm.read_u8 vm 0);
  Vm.write_i64 vm 8 0x1122334455667788L;
  check Alcotest.int64 "i64" 0x1122334455667788L (Vm.read_i64 vm 8);
  Vm.write_int vm 16 (-123456789);
  check Alcotest.int "int" (-123456789) (Vm.read_int vm 16);
  Vm.write_f64 vm 24 3.14159;
  check (Alcotest.float 0.0) "f64" 3.14159 (Vm.read_f64 vm 24);
  (* Last valid slot of the last page. *)
  let last = Vm.size_bytes vm - 8 in
  Vm.write_f64 vm last 2.5;
  check (Alcotest.float 0.0) "end of space" 2.5 (Vm.read_f64 vm last)

let bounds_checks () =
  let vm = Vm.create ~pages:1 () in
  Alcotest.check_raises "negative" (Invalid_argument "Vm: address -1 out of range")
    (fun () -> ignore (Vm.read_u8 vm (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Vm: address 4089 out of range")
    (fun () -> ignore (Vm.read_i64 vm 4089));
  let vm2 = Vm.create ~pages:2 () in
  Alcotest.check_raises "straddle"
    (Invalid_argument "Vm: access at 4092 straddles a page boundary") (fun () ->
      ignore (Vm.read_i64 vm2 4092))

let read_fault_dispatch () =
  let vm = Vm.create ~pages:2 () in
  Vm.write_int vm 4096 77;
  Vm.set_prot vm 1 Vm.No_access;
  let faults = ref [] in
  Vm.set_fault_handler vm (fun kind page ->
      faults := (kind, page) :: !faults;
      Vm.set_prot vm page Vm.Read_only);
  check Alcotest.int "read retried" 77 (Vm.read_int vm 4096);
  check Alcotest.bool "one read fault" true (!faults = [ (Vm.Read, 1) ]);
  (* Second read: no further fault. *)
  ignore (Vm.read_int vm 4096);
  check Alcotest.int "still one fault" 1 (List.length !faults)

let write_fault_on_read_only () =
  let vm = Vm.create ~pages:1 () in
  Vm.set_prot vm 0 Vm.Read_only;
  let faulted = ref false in
  Vm.set_fault_handler vm (fun kind page ->
      check Alcotest.bool "write kind" true (kind = Vm.Write);
      faulted := true;
      Vm.set_prot vm page Vm.Read_write);
  Vm.write_int vm 0 5;
  check Alcotest.bool "fault ran" true !faulted;
  check Alcotest.int "write landed" 5 (Vm.read_int vm 0)

let fault_loop_detected () =
  let vm = Vm.create ~pages:1 () in
  Vm.set_prot vm 0 Vm.No_access;
  Vm.set_fault_handler vm (fun _ _ -> (* forgets to fix the protection *) ());
  (match Vm.read_u8 vm 0 with
  | _ -> Alcotest.fail "expected Fault_loop"
  | exception Vm.Fault_loop { page = 0; kind = Vm.Read } -> ()
  | exception _ -> Alcotest.fail "wrong exception")

let snapshot_install_roundtrip () =
  let vm = Vm.create ~pages:2 () in
  for i = 0 to 511 do
    Vm.write_int vm (4096 + (i * 8)) (i * i)
  done;
  let snap = Vm.page_snapshot vm 1 in
  let vm2 = Vm.create ~pages:2 () in
  Vm.install_page vm2 1 snap;
  for i = 0 to 511 do
    check Alcotest.int "copied" (i * i) (Vm.read_int vm2 (4096 + (i * 8)))
  done

let install_wrong_size () =
  let vm = Vm.create ~pages:1 () in
  Alcotest.check_raises "wrong size" (Invalid_argument "Vm.install_page: wrong page size")
    (fun () -> Vm.install_page vm 0 (Bytes.create 100))

let diff_patch_roundtrip () =
  let vm = Vm.create ~pages:1 () in
  Vm.write_int vm 0 1;
  Vm.write_int vm 1000 2;
  let twin = Vm.page_snapshot vm 0 in
  (* Modify after twinning. *)
  Vm.write_int vm 8 42;
  Vm.write_int vm 2000 43;
  let diff = Vm.diff_against vm 0 ~twin in
  check Alcotest.bool "nonempty" false (Tmk_util.Rle.is_empty diff);
  (* A second VM holding the twin contents catches up via the diff. *)
  let vm2 = Vm.create ~pages:1 () in
  Vm.install_page vm2 0 twin;
  Vm.patch vm2 0 diff;
  check Alcotest.bool "pages equal" true
    (Bytes.equal (Vm.page_snapshot vm 0) (Vm.page_snapshot vm2 0))

let diff_patch_random =
  qtest "random writes diff/patch to equality"
    QCheck.(pair int64 (list_of_size (QCheck.Gen.int_range 0 40) (pair (int_range 0 511) small_int)))
    (fun (seed, writes) ->
      ignore seed;
      let vm = Vm.create ~pages:1 () in
      (* Seed page with a pattern. *)
      for i = 0 to 511 do
        Vm.write_int vm (i * 8) i
      done;
      let twin = Vm.page_snapshot vm 0 in
      List.iter (fun (slot, v) -> Vm.write_int vm (slot * 8) v) writes;
      let diff = Vm.diff_against vm 0 ~twin in
      let vm2 = Vm.create ~pages:1 () in
      Vm.install_page vm2 0 twin;
      Vm.patch vm2 0 diff;
      Bytes.equal (Vm.page_snapshot vm 0) (Vm.page_snapshot vm2 0))

let identical_page_empty_diff () =
  let vm = Vm.create ~pages:1 () in
  Vm.write_int vm 0 9;
  let twin = Vm.page_snapshot vm 0 in
  check Alcotest.bool "empty" true (Tmk_util.Rle.is_empty (Vm.diff_against vm 0 ~twin))

let costs_sane () =
  check Alcotest.bool "mprotect>0" true (Costs.mprotect > 0);
  check Alcotest.bool "sigsegv>0" true (Costs.sigsegv > 0);
  check Alcotest.bool "twin>0" true (Costs.twin_copy > 0);
  check Alcotest.bool "diff grows" true (Costs.diff_create 4096 > Costs.diff_create 0);
  check Alcotest.bool "apply grows" true (Costs.diff_apply 4096 > Costs.diff_apply 0)

let page_addr_conversions () =
  check Alcotest.int "page_of_addr" 2 (Vm.page_of_addr 8192);
  check Alcotest.int "page_of_addr mid" 2 (Vm.page_of_addr 8200);
  check Alcotest.int "addr_of_page" 8192 (Vm.addr_of_page 2);
  check Alcotest.int "page_size" 4096 Vm.page_size

let suite =
  [
    Alcotest.test_case "accessors roundtrip" `Quick accessors_roundtrip;
    Alcotest.test_case "bounds checks" `Quick bounds_checks;
    Alcotest.test_case "read fault dispatch" `Quick read_fault_dispatch;
    Alcotest.test_case "write fault on read-only" `Quick write_fault_on_read_only;
    Alcotest.test_case "fault loop detected" `Quick fault_loop_detected;
    Alcotest.test_case "snapshot/install roundtrip" `Quick snapshot_install_roundtrip;
    Alcotest.test_case "install wrong size" `Quick install_wrong_size;
    Alcotest.test_case "diff/patch roundtrip" `Quick diff_patch_roundtrip;
    diff_patch_random;
    Alcotest.test_case "identical page empty diff" `Quick identical_page_empty_diff;
    Alcotest.test_case "costs sane" `Quick costs_sane;
    Alcotest.test_case "page addr conversions" `Quick page_addr_conversions;
  ]
