(* Tests of the sanitizer suite (lib/lint): the lockset automaton's
   transitions, the sharing-pattern classifier, the sync-discipline
   heuristics, the unified findings model's serializations, and the
   end-to-end contracts — the five applications lint-clean at 8 and 32
   processors under every backend, racey and racey2 caught, and racey2
   caught by the lockset analyzer alone while the happens-before detector
   stays (correctly) silent. *)

open Tmk_dsm
module Race = Tmk_check.Race
module Checker = Tmk_check.Checker
module Hooks = Tmk_check.Hooks
module Findings = Tmk_lint.Findings
module Sharing = Tmk_lint.Sharing
module Discipline = Tmk_lint.Discipline
module Lint = Tmk_lint.Lint
module Segments = Tmk_check.Segments

let check = Alcotest.check

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Lockset automaton units, driven through the Lint hooks (the same
   entry point the protocol uses) with a Race instance fed the identical
   history, so each test also states what happens-before would say.      *)

type op =
  | A of int * Hooks.access_kind * int  (* pid, kind, addr (width 8) *)
  | L of int * int  (* acquire: pid, lock *)
  | U of int * int  (* release: pid, lock *)
  | B of int  (* barrier: all procs arrive then depart *)

let drive ~nprocs ops =
  let race = Race.create ~nprocs ~pages:16 () in
  let lint = Lint.create ~nprocs () in
  let h = Lint.hooks lint in
  List.iter
    (fun op ->
      match op with
      | A (pid, kind, addr) ->
        let rk = match kind with Hooks.Read -> Race.Read | Hooks.Write -> Race.Write in
        Race.note_access race ~pid rk ~addr ~width:8;
        h.Hooks.h_access ~pid kind ~addr ~width:8
      | L (pid, lock) ->
        Race.lock_acquired race ~pid ~lock;
        h.Hooks.h_lock_acquired ~pid ~lock
      | U (pid, lock) ->
        Race.lock_release race ~pid ~lock;
        h.Hooks.h_lock_release ~pid ~lock
      | B id ->
        for pid = 0 to nprocs - 1 do
          Race.barrier_arrive race ~pid ~id;
          h.Hooks.h_barrier_arrive ~pid ~id
        done;
        for pid = 0 to nprocs - 1 do
          Race.barrier_depart race ~pid ~id;
          h.Hooks.h_barrier_depart ~pid ~id
        done)
    ops;
  (race, lint)

let errors fs = List.filter (fun f -> f.Findings.severity = Findings.Error) fs

let lockset_rows fs = List.filter (fun f -> f.Findings.rule = "lockset-race") fs

(* Two unordered unprotected writes: both detectors fire; the unified
   report keeps the HB row and drops the overlapping lockset row. *)
let lockset_unordered_writes () =
  let race, lint =
    drive ~nprocs:2 [ A (0, Hooks.Write, 64); A (1, Hooks.Write, 64) ]
  in
  check Alcotest.bool "HB sees it too" true (Race.has_findings race);
  let fs = Lint.findings lint in
  (match lockset_rows fs with
  | [ f ] ->
    check Alcotest.int "page" 0 f.Findings.page;
    check Alcotest.int "lo" 64 f.Findings.lo;
    check Alcotest.int "hi" 71 f.Findings.hi;
    check (Alcotest.list Alcotest.int) "pids" [ 0; 1 ] f.Findings.pids;
    check Alcotest.bool "error severity" true (f.Findings.severity = Findings.Error)
  | other -> Alcotest.failf "expected one lockset finding, got %d" (List.length other));
  let unified = Lint.findings ~race lint in
  check Alcotest.bool "HB row outranks the lockset row" true
    (List.for_all (fun f -> f.Findings.analyzer = "hb") (errors unified))

(* Lock-mediated handoff: every access HB-ordered through one lock
   transfers ownership; the word never goes Shared and stays clean even
   though the second owner writes with no lock held. *)
let lockset_ordered_handoff_clean () =
  let _, lint =
    drive ~nprocs:2
      [
        L (0, 3); A (0, Hooks.Write, 0); U (0, 3);
        L (1, 3); A (1, Hooks.Read, 0); U (1, 3);
        A (1, Hooks.Write, 0);
      ]
  in
  check (Alcotest.list Alcotest.string) "clean" []
    (List.map (fun f -> f.Findings.rule) (lockset_rows (Lint.findings lint)))

(* Distinct locks protect nothing in common: the candidate set drains to
   empty on the first genuinely concurrent access. *)
let lockset_distinct_locks_race () =
  (* No release of lock 1 before lock 2's acquire, so the two critical
     sections are unordered — Eraser's classic C(v) = {1} ∩ {2} = ∅. *)
  let _, lint =
    drive ~nprocs:2
      [
        L (0, 1); A (0, Hooks.Write, 0);
        L (1, 2); A (1, Hooks.Write, 0);
        U (0, 1); U (1, 2);
      ]
  in
  check Alcotest.int "one potential race" 1
    (List.length (lockset_rows (Lint.findings lint)))

(* A common lock held across unordered accesses keeps the candidate set
   non-empty: no report. *)
let lockset_common_lock_refines () =
  let _, lint =
    drive ~nprocs:2
      [
        L (0, 1); A (0, Hooks.Write, 0);
        L (1, 1);  (* unordered: lock 1 was never released *)
        A (1, Hooks.Read, 0); A (1, Hooks.Write, 0);
        U (0, 1); U (1, 1);
      ]
  in
  check (Alcotest.list Alcotest.string) "clean" []
    (List.map (fun f -> f.Findings.rule) (lockset_rows (Lint.findings lint)))

(* Barrier generations reset words to Virgin: phase-partitioned unlocked
   writes by different processors are the normal SPMD pattern. *)
let lockset_barrier_resets () =
  let _, lint =
    drive ~nprocs:2
      [ A (0, Hooks.Write, 0); B 7; A (1, Hooks.Write, 0); B 7; A (0, Hooks.Write, 0) ]
  in
  check (Alcotest.list Alcotest.string) "clean" []
    (List.map (fun f -> f.Findings.rule) (lockset_rows (Lint.findings lint)))

(* Concurrent reads with no writer in the generation: Shared with an
   empty candidate set, but nothing to report. *)
let lockset_concurrent_reads_clean () =
  let _, lint =
    drive ~nprocs:3
      [ A (0, Hooks.Write, 0); B 1; A (1, Hooks.Read, 0); A (2, Hooks.Read, 0) ]
  in
  check (Alcotest.list Alcotest.string) "clean" []
    (List.map (fun f -> f.Findings.rule) (lockset_rows (Lint.findings lint)))

(* The racey2 shape in miniature: every conflicting pair ordered through
   the lock chain (HB silent), no common lock on the flag (lockset
   fires).  The two reads land between their processors' critical
   sections, so they are concurrent with each other — which is what
   drains the candidate set. *)
let lockset_catches_what_hb_misses () =
  let flag = 8 in
  let race, lint =
    drive ~nprocs:4
      [
        A (0, Hooks.Write, flag); L (0, 0); U (0, 0);
        L (1, 0); U (1, 0);
        L (2, 0); U (2, 0);
        A (1, Hooks.Read, flag);
        A (2, Hooks.Read, flag);
        L (1, 0); U (1, 0);
        L (2, 0); U (2, 0);
        L (3, 0); U (3, 0);
        A (3, Hooks.Write, flag);
      ]
  in
  check Alcotest.bool "HB is silent: the schedule ordered every pair" false
    (Race.has_findings race);
  match lockset_rows (Lint.findings ~race lint) with
  | [ f ] ->
    check Alcotest.int "page" 0 f.Findings.page;
    check (Alcotest.list Alcotest.int) "all four processors" [ 0; 1; 2; 3 ]
      f.Findings.pids;
    check Alcotest.bool "writers and readers named" true
      (contains ~affix:"writers p0,p3" f.Findings.message
      && contains ~affix:"readers p1,p2" f.Findings.message)
  | other -> Alcotest.failf "expected one lockset finding, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Sharing-pattern classifier units.                                    *)

let sharing_pair ~nprocs =
  let segs = Segments.create ~nprocs () in
  (segs, Sharing.create ~segs ~nprocs ())

let classify_one sh =
  match Sharing.classify sh with
  | [ c ] -> c
  | rows -> Alcotest.failf "expected one classified page, got %d" (List.length rows)

let sharing_false_sharing () =
  let _, sh = sharing_pair ~nprocs:2 in
  (* p0 owns words 0..2, p1 words 10..12 of page 0: disjoint, >=2 each *)
  List.iter (fun a -> Sharing.access sh ~pid:0 Hooks.Write ~addr:a ~width:8) [ 0; 8; 16 ];
  List.iter (fun a -> Sharing.access sh ~pid:1 Hooks.Write ~addr:a ~width:8) [ 80; 88; 96 ];
  let c = classify_one sh in
  check Alcotest.string "pattern" "falsely-shared" c.Sharing.cl_pattern;
  match List.filter (fun f -> f.Findings.rule = "false-sharing") (Sharing.findings sh) with
  | [ f ] ->
    check Alcotest.int "page" 0 f.Findings.page;
    check (Alcotest.list Alcotest.int) "both writers" [ 0; 1 ] f.Findings.pids;
    check Alcotest.bool "warning, not error" true (f.Findings.severity = Findings.Warning)
  | other -> Alcotest.failf "expected one warning, got %d" (List.length other)

(* One scratch word per processor is the Api collectives' layout, not
   false sharing worth reporting. *)
let sharing_single_word_writers_excluded () =
  let _, sh = sharing_pair ~nprocs:2 in
  Sharing.access sh ~pid:0 Hooks.Write ~addr:0 ~width:8;
  Sharing.access sh ~pid:1 Hooks.Write ~addr:8 ~width:8;
  check (Alcotest.list Alcotest.string) "no warning" []
    (List.map (fun f -> f.Findings.rule) (Sharing.findings sh))

let sharing_true_shared () =
  let _, sh = sharing_pair ~nprocs:2 in
  List.iter (fun a -> Sharing.access sh ~pid:0 Hooks.Write ~addr:a ~width:8) [ 0; 8 ];
  List.iter (fun a -> Sharing.access sh ~pid:1 Hooks.Write ~addr:a ~width:8) [ 8; 16 ];
  check Alcotest.string "pattern" "true-shared" (classify_one sh).Sharing.cl_pattern

let sharing_producer_consumer () =
  let _, sh = sharing_pair ~nprocs:2 in
  Sharing.access sh ~pid:0 Hooks.Write ~addr:0 ~width:8;
  Sharing.access sh ~pid:1 Hooks.Read ~addr:0 ~width:8;
  check Alcotest.string "pattern" "producer-consumer" (classify_one sh).Sharing.cl_pattern

let sharing_migratory () =
  let segs, sh = sharing_pair ~nprocs:2 in
  Sharing.access sh ~pid:0 Hooks.Write ~addr:0 ~width:8;
  for pid = 0 to 1 do Segments.barrier_arrive segs ~pid ~id:1 done;
  for pid = 0 to 1 do Segments.barrier_depart segs ~pid ~id:1 done;
  Sharing.access sh ~pid:1 Hooks.Write ~addr:0 ~width:8;
  check Alcotest.string "pattern" "migratory" (classify_one sh).Sharing.cl_pattern

(* ------------------------------------------------------------------ *)
(* Sync-discipline units.                                               *)

let discipline_inconsistent_pages () =
  let d = Discipline.create ~nprocs:2 () in
  let session pid lock page =
    Discipline.lock_acquired d ~pid ~lock;
    Discipline.access d ~pid Hooks.Write ~addr:(page * 4096) ~width:8;
    Discipline.lock_release d ~pid ~lock
  in
  session 0 9 0;
  session 1 9 1;
  session 0 9 0;
  session 1 9 1;
  match List.filter (fun f -> f.Findings.rule = "inconsistent-lock-pages")
          (Discipline.findings d) with
  | [ f ] ->
    check Alcotest.bool "names the lock" true (contains ~affix:"lock 9" f.Findings.message);
    check (Alcotest.list Alcotest.int) "both pids" [ 0; 1 ] f.Findings.pids
  | other -> Alcotest.failf "expected one warning, got %d" (List.length other)

(* The same page set every session: consistent, no finding. *)
let discipline_consistent_is_quiet () =
  let d = Discipline.create ~nprocs:2 () in
  for i = 0 to 5 do
    let pid = i mod 2 in
    Discipline.lock_acquired d ~pid ~lock:9;
    Discipline.access d ~pid Hooks.Write ~addr:0 ~width:8;
    Discipline.lock_release d ~pid ~lock:9
  done;
  check (Alcotest.list Alcotest.string) "quiet" []
    (List.map (fun f -> f.Findings.rule) (Discipline.findings d))

let discipline_no_protected_writes () =
  let d = Discipline.create ~nprocs:2 () in
  for pid = 0 to 1 do
    Discipline.lock_acquired d ~pid ~lock:4;
    Discipline.access d ~pid Hooks.Read ~addr:0 ~width:8;
    Discipline.lock_release d ~pid ~lock:4
  done;
  match List.filter (fun f -> f.Findings.rule = "no-protected-writes")
          (Discipline.findings d) with
  | [ f ] -> check Alcotest.bool "info severity" true (f.Findings.severity = Findings.Info)
  | other -> Alcotest.failf "expected one info, got %d" (List.length other)

let discipline_unsynchronized_shadow () =
  let d = Discipline.create ~nprocs:2 () in
  Discipline.suppress d ~pid:1 true;
  Discipline.access d ~pid:1 Hooks.Read ~addr:40 ~width:8;
  Discipline.suppress d ~pid:1 false;
  (* word 5 races per the lockset analyzer; the span covered it *)
  (match List.filter (fun f -> f.Findings.rule = "unsynchronized-shadow")
           (Discipline.findings d ~racy_words:[ 5 ]) with
  | [ f ] ->
    check Alcotest.int "page" 0 f.Findings.page;
    check Alcotest.int "lo" 40 f.Findings.lo;
    check Alcotest.int "hi" 47 f.Findings.hi
  | other -> Alcotest.failf "expected one warning, got %d" (List.length other));
  (* a racy word the span did not cover is not this annotation's fault *)
  check (Alcotest.list Alcotest.string) "uncovered word: quiet" []
    (List.map (fun f -> f.Findings.rule) (Discipline.findings d ~racy_words:[ 99 ]))

(* ------------------------------------------------------------------ *)
(* Findings model: serializations round-trip, canonical order holds.    *)

let sample_findings =
  [
    {
      Findings.analyzer = "sharing"; rule = "false-sharing";
      severity = Findings.Warning; page = 2; lo = -1; hi = -1; pids = [ 0; 3 ];
      message = "message with \"quotes\" and a\ttab"; hint = "pad it \\ done";
    };
    {
      Findings.analyzer = "lockset"; rule = "lockset-race";
      severity = Findings.Error; page = 0; lo = 0; hi = 15; pids = [ 1; 2 ];
      message = "potential race"; hint = "lock it";
    };
    {
      Findings.analyzer = "discipline"; rule = "no-protected-writes";
      severity = Findings.Info; page = -1; lo = -1; hi = -1; pids = [];
      message = "lock 4 never guards a write"; hint = "drop it";
    };
  ]

let findings_jsonl_roundtrip () =
  let sorted = Findings.sort_dedup sample_findings in
  check Alcotest.bool "errors sort first" true
    ((List.hd sorted).Findings.severity = Findings.Error);
  let encoded = Findings.to_jsonl sorted in
  let decoded = Findings.of_jsonl encoded in
  check Alcotest.int "same length" (List.length sorted) (List.length decoded);
  List.iter2
    (fun a b ->
      check Alcotest.int "round-trips" 0 (compare a b))
    sorted decoded;
  check Alcotest.string "re-encoding is byte-identical" encoded
    (Findings.to_jsonl decoded)

let findings_jsonl_golden () =
  let f = List.nth sample_findings 1 in
  check Alcotest.string "golden line"
    "{\"analyzer\":\"lockset\",\"rule\":\"lockset-race\",\"severity\":\"error\",\
     \"page\":0,\"lo\":0,\"hi\":15,\"pids\":[1,2],\"message\":\"potential race\",\
     \"hint\":\"lock it\"}"
    (Findings.to_jsonl_line f)

let findings_sarif_shape () =
  let s = Findings.to_sarif ~uri:"lib/apps/racey2.ml" sample_findings in
  List.iter
    (fun affix -> check Alcotest.bool affix true (contains ~affix s))
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"tmk-lint\"";
      "\"id\":\"lockset-race\"";
      "\"level\":\"error\"";
      "\"level\":\"note\"";
      "\"uri\":\"lib/apps/racey2.ml\"";
      "page 0:0..15 [p1,p2]";
    ]

let findings_table_all_clear () =
  check Alcotest.string "all-clear line" "lint: no findings" (Findings.table []);
  let t = Findings.table sample_findings in
  check Alcotest.bool "counts" true (contains ~affix:"1 error(s), 1 warning(s), 1 info" t)

let analyzers_of_string () =
  check Alcotest.int "all by default" 3 (List.length (Lint.analyzers_of_string "all"));
  check Alcotest.int "subset" 2
    (List.length (Lint.analyzers_of_string "lockset,discipline"));
  match Lint.analyzers_of_string "bogus" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end: full runs with the suite attached via the checker.       *)

let lint_run ?(nprocs = 8) ?(protocol = Config.Lrc) ~pages body =
  let race = Race.create ~nprocs ~pages () in
  let lint = Lint.create ~nprocs () in
  let cfg =
    {
      Config.default with
      Config.nprocs;
      pages;
      seed = 3L;
      protocol;
      check =
        Some
          (Checker.create ~race ~hooks:[ Lint.hooks lint ]
             ~attach:[ Lint.attach lint ] ());
    }
  in
  let _ = Api.run cfg body in
  (race, lint)

let water_params = { Tmk_apps.Water.default with Tmk_apps.Water.nmol = 27; steps = 2 }

let jacobi_params =
  { Tmk_apps.Jacobi.default with Tmk_apps.Jacobi.rows = 40; cols = 32; iters = 6 }

let tsp_params = { Tmk_apps.Tsp.default with Tmk_apps.Tsp.ncities = 9; prefix_depth = 3 }

let qsort_params =
  { Tmk_apps.Quicksort.default with Tmk_apps.Quicksort.n = 2048; threshold = 64 }

let ilink_params =
  { Tmk_apps.Ilink.default with Tmk_apps.Ilink.families = 12; iterations = 3 }

let five_apps =
  [
    ( "water",
      Tmk_apps.Water.pages_needed water_params,
      fun ctx -> ignore (Tmk_apps.Water.parallel ctx water_params) );
    ( "jacobi",
      Tmk_apps.Jacobi.pages_needed jacobi_params,
      fun ctx -> ignore (Tmk_apps.Jacobi.parallel ctx jacobi_params) );
    ( "tsp",
      Tmk_apps.Tsp.pages_needed tsp_params,
      fun ctx -> ignore (Tmk_apps.Tsp.parallel ctx tsp_params) );
    ( "quicksort",
      Tmk_apps.Quicksort.pages_needed qsort_params,
      fun ctx -> ignore (Tmk_apps.Quicksort.parallel ctx qsort_params) );
    ( "ilink",
      Tmk_apps.Ilink.pages_needed ilink_params,
      fun ctx -> ignore (Tmk_apps.Ilink.parallel ctx ilink_params) );
  ]

(* Lint-clean means no error-severity findings: legitimate warnings
   (water's false sharing, contended work locks) are expected and fine. *)
let apps_clean_at nprocs () =
  List.iter
    (fun (name, pages, body) ->
      let race, lint = lint_run ~nprocs ~pages body in
      let fs = Lint.findings ~race lint in
      if Findings.has_errors fs then
        Alcotest.failf "%s at %d procs:\n%s" name nprocs (Findings.table fs))
    five_apps

let backends_clean () =
  List.iter
    (fun protocol ->
      List.iter
        (fun (name, pages, body) ->
          let race, lint = lint_run ~protocol ~pages body in
          let fs = Lint.findings ~race lint in
          if Findings.has_errors fs then
            Alcotest.failf "%s under %s:\n%s" name
              (Config.protocol_name protocol)
              (Findings.table fs))
        five_apps)
    [ Config.Lrc; Config.Erc; Config.Tardis; Config.Sc_abd ]

let racey_caught () =
  let p = Tmk_apps.Racey.default in
  let race, lint =
    lint_run ~pages:(Tmk_apps.Racey.pages_needed p) (fun ctx ->
        ignore (Tmk_apps.Racey.parallel ~collect:false ctx p))
  in
  let fs = Lint.findings ~race lint in
  check Alcotest.bool "errors found" true (Findings.has_errors fs);
  check Alcotest.bool "HB rows present" true
    (List.exists (fun f -> f.Findings.analyzer = "hb") fs);
  (* the lockset rows for the same bytes were deduplicated away *)
  let hb_pages =
    List.filter_map
      (fun f -> if f.Findings.analyzer = "hb" then Some f.Findings.page else None)
      fs
  in
  check Alcotest.bool "lockset rows on HB pages dropped" true
    (List.for_all
       (fun f -> not (List.mem f.Findings.page hb_pages))
       (lockset_rows fs))

(* The headline contract: racey2's race is invisible to happens-before
   under the default seed and caught by the lockset analyzer. *)
let racey2_needs_lockset () =
  let p = Tmk_apps.Racey2.default in
  let race, lint =
    lint_run ~pages:(Tmk_apps.Racey2.pages_needed p) (fun ctx ->
        ignore (Tmk_apps.Racey2.parallel ctx p))
  in
  check Alcotest.bool "HB reports nothing" false (Race.has_findings race);
  let fs = Lint.findings ~race lint in
  check Alcotest.bool "lint still fails the run" true (Findings.has_errors fs);
  match lockset_rows fs with
  | [ f ] ->
    check Alcotest.int "the flag page" 0 f.Findings.page;
    check (Alcotest.list Alcotest.int) "both writers, both readers" [ 0; 1; 2; 7 ]
      f.Findings.pids
  | other -> Alcotest.failf "expected one lockset finding, got %d" (List.length other)

(* Findings are byte-identical across backends for a run with no
   trace-derived rows in play... they are not, in general (diff counts
   differ per backend), but error-severity rows must agree: the lockset
   race is a property of the program, not the protocol. *)
let racey2_error_identical_across_backends () =
  let p = Tmk_apps.Racey2.default in
  let errors_of protocol =
    let race, lint =
      lint_run ~protocol ~pages:(Tmk_apps.Racey2.pages_needed p) (fun ctx ->
          ignore (Tmk_apps.Racey2.parallel ctx p))
    in
    Findings.to_jsonl (errors (Lint.findings ~race lint))
  in
  let base = errors_of Config.Lrc in
  check Alcotest.bool "found under lazy" true (base <> "");
  List.iter
    (fun protocol ->
      check Alcotest.string (Config.protocol_name protocol) base (errors_of protocol))
    [ Config.Erc; Config.Tardis; Config.Sc_abd ]

let suite =
  [
    Alcotest.test_case "lockset: unordered writes race" `Quick lockset_unordered_writes;
    Alcotest.test_case "lockset: ordered handoff is clean" `Quick
      lockset_ordered_handoff_clean;
    Alcotest.test_case "lockset: distinct locks race" `Quick lockset_distinct_locks_race;
    Alcotest.test_case "lockset: common lock refines" `Quick lockset_common_lock_refines;
    Alcotest.test_case "lockset: barriers reset generations" `Quick lockset_barrier_resets;
    Alcotest.test_case "lockset: concurrent reads are clean" `Quick
      lockset_concurrent_reads_clean;
    Alcotest.test_case "lockset: catches what HB misses" `Quick
      lockset_catches_what_hb_misses;
    Alcotest.test_case "sharing: false sharing flagged" `Quick sharing_false_sharing;
    Alcotest.test_case "sharing: scratch words excluded" `Quick
      sharing_single_word_writers_excluded;
    Alcotest.test_case "sharing: true sharing classified" `Quick sharing_true_shared;
    Alcotest.test_case "sharing: producer-consumer classified" `Quick
      sharing_producer_consumer;
    Alcotest.test_case "sharing: migratory classified" `Quick sharing_migratory;
    Alcotest.test_case "discipline: inconsistent lock pages" `Quick
      discipline_inconsistent_pages;
    Alcotest.test_case "discipline: consistent lock is quiet" `Quick
      discipline_consistent_is_quiet;
    Alcotest.test_case "discipline: read-only lock" `Quick discipline_no_protected_writes;
    Alcotest.test_case "discipline: unsynchronized shadow" `Quick
      discipline_unsynchronized_shadow;
    Alcotest.test_case "findings: jsonl round-trip" `Quick findings_jsonl_roundtrip;
    Alcotest.test_case "findings: jsonl golden" `Quick findings_jsonl_golden;
    Alcotest.test_case "findings: sarif shape" `Quick findings_sarif_shape;
    Alcotest.test_case "findings: table" `Quick findings_table_all_clear;
    Alcotest.test_case "analyzer list parsing" `Quick analyzers_of_string;
    Alcotest.test_case "five apps lint-clean at 8 procs" `Quick (apps_clean_at 8);
    Alcotest.test_case "five apps lint-clean at 32 procs" `Slow (apps_clean_at 32);
    Alcotest.test_case "five apps lint-clean under all backends" `Slow backends_clean;
    Alcotest.test_case "racey: caught, HB rows outrank lockset" `Quick racey_caught;
    Alcotest.test_case "racey2: HB-silent, lockset-caught" `Quick racey2_needs_lockset;
    Alcotest.test_case "racey2: error findings backend-independent" `Quick
      racey2_error_identical_across_backends;
  ]
