(* Aggregates every suite; `dune runtest` runs this executable. *)

let () =
  Alcotest.run "treadmarks"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("faults", Test_faults.suite);
      ("crash", Test_crash.suite);
      ("mem", Test_mem.suite);
      ("dsm", Test_dsm.suite);
      ("node", Test_node.suite);
      ("sc", Test_sc.suite);
      ("backend", Test_backend.suite);
      ("calibration", Test_calibration.suite);
      ("apps", Test_apps.suite);
      ("harness", Test_harness.suite);
      ("batching", Test_batching.suite);
      ("trace", Test_trace.suite);
      ("check", Test_check.suite);
      ("lint", Test_lint.suite);
      ("perf", Test_perf.suite);
      ("fuzz", Test_fuzz.suite);
    ]
