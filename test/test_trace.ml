(* Tests of the tracing subsystem: analyzer semantics on hand-built
   streams, exporter goldens, end-to-end determinism of recorded runs,
   and the no-observer-effect guarantee when tracing is disabled. *)

open Tmk_trace

let check = Alcotest.check

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let mk events =
  let sink = Sink.create () in
  List.iter (fun (time, pid, ev) -> Sink.emit sink ~time ~pid ev) events;
  sink

(* ------------------------------------------------------------------ *)
(* Analyzer units on streams with known answers.                       *)

(* Lock 7: pid 1 waits 2000ns and holds 5000ns; pid 2 acquires from its
   cached token (no wait) and holds 500ns; one request is queued. *)
let analyze_locks () =
  let open Event in
  let sink =
    mk
      [
        (1_000, 1, Lock_acquire { lock = 7; local = false });
        (1_500, 0, Lock_queued { lock = 7; requester = 2 });
        (2_000, 2, Lock_acquire { lock = 7; local = true });
        (2_000, 2, Lock_acquired { lock = 7; local = true });
        (2_500, 2, Lock_release { lock = 7; granted_to = None });
        (3_000, 1, Lock_acquired { lock = 7; local = false });
        (8_000, 1, Lock_release { lock = 7; granted_to = Some 2 });
      ]
  in
  let a = Analyze.analyze sink in
  check Alcotest.int "events" 7 a.Analyze.a_events;
  check Alcotest.int "end" 8_000 a.Analyze.a_end;
  match a.Analyze.a_locks with
  | [ l ] ->
    check Alcotest.int "id" 7 l.Analyze.l_id;
    check Alcotest.int "acquires" 2 l.Analyze.l_acquires;
    check Alcotest.int "local" 1 l.Analyze.l_local;
    check Alcotest.int "queued" 1 l.Analyze.l_queued;
    check Alcotest.int "wait" 2_000 l.Analyze.l_wait_ns;
    check Alcotest.int "hold" 5_500 l.Analyze.l_hold_ns
  | other -> Alcotest.failf "expected one lock, got %d" (List.length other)

(* Barrier 0 crossed twice by two processors: epochs are separated by
   per-processor occurrence index, skew is last − first arrival. *)
let analyze_barriers () =
  let open Event in
  let sink =
    mk
      [
        (100, 0, Barrier_arrive { id = 0; epoch = 0 });
        (400, 1, Barrier_arrive { id = 0; epoch = 0 });
        (600, 0, Barrier_release { id = 0; epoch = 0 });
        (600, 1, Barrier_release { id = 0; epoch = 0 });
        (1_000, 0, Barrier_arrive { id = 0; epoch = 1 });
        (1_100, 1, Barrier_arrive { id = 0; epoch = 1 });
        (1_300, 0, Barrier_release { id = 0; epoch = 1 });
        (1_300, 1, Barrier_release { id = 0; epoch = 1 });
      ]
  in
  let a = Analyze.analyze sink in
  (match a.Analyze.a_barriers with
  | [ e0; e1 ] ->
    check Alcotest.int "epoch0 first" 100 e0.Analyze.be_first_arrival;
    check Alcotest.int "epoch0 last" 400 e0.Analyze.be_last_arrival;
    check Alcotest.int "epoch0 release" 600 e0.Analyze.be_release;
    check Alcotest.int "epoch1 index" 1 e1.Analyze.be_epoch;
    check Alcotest.int "epoch1 skew" 100
      (e1.Analyze.be_last_arrival - e1.Analyze.be_first_arrival)
  | other -> Alcotest.failf "expected two epochs, got %d" (List.length other));
  match a.Analyze.a_procs with
  | [ p0; p1 ] ->
    (* pid 0 waits 500 + 300, pid 1 waits 200 + 200 *)
    check Alcotest.int "p0 barrier wait" 800 p0.Analyze.pr_barrier_wait;
    check Alcotest.int "p1 barrier wait" 400 p1.Analyze.pr_barrier_wait
  | other -> Alcotest.failf "expected two procs, got %d" (List.length other)

(* Page 3 sees faults, a fetch, diff traffic from two distinct writers;
   page 1 sees a single read fault.  The hotter page ranks first. *)
let analyze_hot_pages () =
  let open Event in
  let sink =
    mk
      [
        (10, 0, Page_fault { page = 3; kind = Read });
        (20, 0, Page_fault_done { page = 3; kind = Read });
        (30, 1, Page_fault { page = 3; kind = Write });
        (35, 1, Twin_create { page = 3 });
        (40, 1, Page_fault_done { page = 3; kind = Write });
        (50, 0, Page_fetch { page = 3; from_ = 1 });
        (60, 1, Diff_create { page = 3; bytes = 512; proc = 1; interval = 4 });
        (70, 0, Diff_apply { page = 3; bytes = 512; proc = 1; interval = 4 });
        (80, 0, Write_notice_recv { page = 3; proc = 2; interval = 0 });
        (90, 2, Page_invalidate { page = 3 });
        (95, 2, Page_fault { page = 1; kind = Read });
        (99, 2, Page_fault_done { page = 1; kind = Read });
      ]
  in
  let a = Analyze.analyze sink in
  match a.Analyze.a_pages with
  | [ hot; cold ] ->
    check Alcotest.int "hottest page" 3 hot.Analyze.p_id;
    check Alcotest.int "read faults" 1 hot.Analyze.p_read_faults;
    check Alcotest.int "write faults" 1 hot.Analyze.p_write_faults;
    check Alcotest.int "fetches" 1 hot.Analyze.p_fetches;
    check Alcotest.int "invalidations" 1 hot.Analyze.p_invalidations;
    check Alcotest.int "diff bytes out" 512 hot.Analyze.p_diff_bytes_created;
    check Alcotest.int "diff bytes in" 512 hot.Analyze.p_diff_bytes_applied;
    check Alcotest.int "distinct writers" 2 hot.Analyze.p_writers;
    check Alcotest.int "cold page" 1 cold.Analyze.p_id;
    check Alcotest.bool "ranking" true (Analyze.hot_score hot > Analyze.hot_score cold)
  | other -> Alcotest.failf "expected two pages, got %d" (List.length other)

(* Fault wait and frame accounting land on the emitting processor. *)
let analyze_procs () =
  let open Event in
  let sink =
    mk
      [
        (0, 0, Page_fault { page = 0; kind = Write });
        (10, 0, Frame_send { src = 0; dst = 1; label = "diff-req"; bytes = 100; retrans = false });
        (200, 1, Frame_recv { src = 0; dst = 1; label = "diff-req"; bytes = 100 });
        (900, 0, Page_fault_done { page = 0; kind = Write });
        (1_000, 0, Proc_finish);
      ]
  in
  let a = Analyze.analyze sink in
  match a.Analyze.a_procs with
  | p0 :: _ ->
    check Alcotest.int "fault wait" 900 p0.Analyze.pr_fault_wait;
    check Alcotest.int "frames" 1 p0.Analyze.pr_frames_sent;
    check Alcotest.int "bytes" 100 p0.Analyze.pr_bytes_sent;
    check Alcotest.int "finish" 1_000 p0.Analyze.pr_finish
  | [] -> Alcotest.fail "expected proc stats"

(* The report renders every section without raising. *)
let report_renders () =
  let open Event in
  let sink =
    mk
      [
        (0, 0, Lock_acquire { lock = 0; local = false });
        (5, 0, Lock_acquired { lock = 0; local = false });
        (10, 0, Barrier_arrive { id = 0; epoch = 0 });
        (20, 0, Barrier_release { id = 0; epoch = 0 });
        (30, 0, Page_fault { page = 0; kind = Read });
        (40, 0, Page_fault_done { page = 0; kind = Read });
        (50, 0, Proc_finish);
      ]
  in
  let text = Analyze.report (Analyze.analyze sink) in
  List.iter
    (fun fragment ->
      check Alcotest.bool fragment true (contains ~affix:fragment text))
    [ "Lock contention"; "Hot pages"; "Barrier skew"; "Per-processor waits";
      "critical path" ]

(* A lock that was queued for but never acquired and a barrier crossed by
   a single processor: the report's average columns (wait/hold per
   acquire, skew per crossing) must not divide by zero. *)
let report_survives_zero_acquires () =
  let open Event in
  let sink =
    mk
      [
        (100, 0, Lock_queued { lock = 9; requester = 1 });
        (200, 0, Barrier_arrive { id = 0; epoch = 0 });
        (300, 0, Barrier_release { id = 0; epoch = 0 });
        (400, 0, Proc_finish);
      ]
  in
  let text = Analyze.report (Analyze.analyze sink) in
  check Alcotest.bool "lock table renders" true (contains ~affix:"Lock contention" text);
  check Alcotest.bool "no nan" false (contains ~affix:"nan" text);
  check Alcotest.bool "no inf" false (contains ~affix:"inf" text)

(* ------------------------------------------------------------------ *)
(* Exporter goldens: the encodings are deterministic by construction,
   so exact strings are a fair contract.                               *)

let jsonl_golden () =
  let open Event in
  let sink =
    mk
      [
        (1_000, 0, Lock_acquire { lock = 1; local = false });
        (3_000, -1, Mark "hi \"there\"\n");
        (4_000, 2, Interval_close { id = 5; notices = 2; vt = [| 1; 0; 3 |] });
      ]
  in
  check Alcotest.string "jsonl"
    ("{\"t\":1000,\"pid\":0,\"ev\":\"lock-acquire\",\"lock\":1,\"local\":false}\n"
   ^ "{\"t\":3000,\"pid\":-1,\"ev\":\"mark\",\"msg\":\"hi \\\"there\\\"\\n\"}\n"
   ^ "{\"t\":4000,\"pid\":2,\"ev\":\"interval-close\",\"id\":5,\"notices\":2,\"vt\":[1,0,3]}\n")
    (Jsonl.to_string sink)

let chrome_golden () =
  let open Event in
  let sink =
    mk
      [
        (1_000, 0, Lock_acquire { lock = 1; local = false });
        (2_500, 0, Lock_acquired { lock = 1; local = false });
        (3_000, -1, Mark "hello");
      ]
  in
  check Alcotest.string "chrome"
    ("{\"traceEvents\":[\n"
   ^ "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"cpu 0\"}},\n"
   ^ "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"engine\"}},\n"
   ^ "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"lock-wait L1\",\"cat\":\"lock\",\"ts\":1.000,\"dur\":1.500,\"args\":{\"lock\":1,\"local\":false}},\n"
   ^ "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"name\":\"mark\",\"cat\":\"engine\",\"ts\":3.000,\"args\":{\"msg\":\"hello\"}}\n"
   ^ "],\"displayTimeUnit\":\"ms\"}\n")
    (Chrome.to_string sink)

(* Decode inverts encode for every constructor: re-emitting the parsed
   records reproduces the stream byte for byte.  This is the contract
   the offline oracle ([tmk_run --check-trace]) relies on. *)
let jsonl_roundtrip () =
  let open Event in
  let sink =
    mk
      [
        (0, 0, Lock_acquire { lock = 1; local = false });
        (5, 0, Lock_acquired { lock = 1; local = true });
        (10, 0, Lock_release { lock = 1; granted_to = Some 2 });
        (12, 2, Lock_release { lock = 3; granted_to = None });
        (15, 0, Lock_queued { lock = 1; requester = 2 });
        (17, 0, Lock_request_recv { lock = 1; requester = 2 });
        (18, 0, Lock_forward { lock = 1; requester = 2; target = 3 });
        (19, 0, Lock_grant { lock = 1; requester = 2; intervals = 4; bytes = 640 });
        (20, 1, Barrier_arrive { id = 0; epoch = 3 });
        (25, 1, Barrier_release { id = 0; epoch = 3 });
        (30, 0, Page_fault { page = 4; kind = Read });
        (35, 0, Page_fault_done { page = 4; kind = Write });
        (40, 0, Twin_create { page = 4 });
        (45, 0, Page_fetch { page = 4; from_ = 1 });
        (47, 0, Page_invalidate { page = 4 });
        (50, 1, Diff_create { page = 4; bytes = 128; proc = 1; interval = 2 });
        (55, 0, Diff_apply { page = 4; bytes = 128; proc = 1; interval = 2 });
        (57, 0, Diff_fetch { page = 4; from_ = 1; count = 2 });
        (58, 0, Diff_cache { page = 4; hit = true });
        (60, 0, Write_notice_recv { page = 4; proc = 1; interval = 2 });
        (70, 1, Interval_close { id = 2; notices = 1; vt = [| 0; 2; 5 |] });
        (75, 0, Interval_recv { proc = 1; id = 2; notices = 1; vt = [| 0; 2; 5 |] });
        ( 80,
          0,
          Frame_send { src = 0; dst = 1; label = "diff-req"; bytes = 96; retrans = true }
        );
        (85, 1, Frame_recv { src = 0; dst = 1; label = "diff-req"; bytes = 96 });
        (86, 1, Frame_drop { src = 0; dst = 1; label = "diff-req"; bytes = 96 });
        (87, 1, Frame_dup { src = 0; dst = 1; label = "diff-req" });
        (88, 0, Frame_batch { src = 0; dst = 1; label = "barrier-delta"; parts = 3 });
        (89, 1, Gc_begin { live = 41 });
        (90, 1, Gc_end { discarded = 7 });
        (95, 1, Proc_finish);
        (99, -1, Mark "done \"quoted\"\t\n");
      ]
  in
  let text = Jsonl.to_string sink in
  let reparsed = Sink.create () in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then begin
           let r = Jsonl.parse_line line in
           Sink.emit reparsed ~time:r.Sink.r_time ~pid:r.Sink.r_pid r.Sink.r_ev
         end);
  check Alcotest.int "record count" (Sink.length sink) (Sink.length reparsed);
  check Alcotest.string "parse . print = id" text (Jsonl.to_string reparsed)

(* An unmatched begin event is closed at the last record's time. *)
let chrome_closes_open_spans () =
  let open Event in
  let sink =
    mk
      [
        (100, 0, Barrier_arrive { id = 2; epoch = 0 });
        (900, 0, Mark "end");
      ]
  in
  let s = Chrome.to_string sink in
  check Alcotest.bool "span closed" true
    (contains
       ~affix:"\"name\":\"barrier 2\",\"cat\":\"barrier\",\"ts\":0.100,\"dur\":0.800" s)

(* ------------------------------------------------------------------ *)
(* End-to-end properties on real runs.                                 *)

let traced_jsonl ~app cfg =
  let sink = Sink.create () in
  let _ = Tmk_harness.Harness.run_cfg ~trace:sink ~app cfg in
  check Alcotest.bool "stream non-empty" true (Sink.length sink > 0);
  Jsonl.to_string sink

(* Same seed, same program: byte-identical event streams — also under a
   lossy network, where retransmissions are part of the schedule. *)
let determinism app name =
  let cfg =
    Tmk_harness.Harness.config ~app ~nprocs:4 ~protocol:Tmk_dsm.Config.Lrc
      ~net:Tmk_net.Params.atm_aal34
  in
  check Alcotest.string (name ^ " clean") (traced_jsonl ~app cfg) (traced_jsonl ~app cfg);
  let lossy =
    { cfg with Tmk_dsm.Config.faults = Tmk_net.Fault_plan.(with_loss none 0.05) }
  in
  check Alcotest.string (name ^ " 5% loss") (traced_jsonl ~app lossy)
    (traced_jsonl ~app lossy)

let determinism_jacobi () = determinism Tmk_harness.Harness.Jacobi "jacobi"
let determinism_tsp () = determinism Tmk_harness.Harness.Tsp "tsp"

(* Tracing must not perturb the run: with and without a sink, the
   result digest, message count, byte count and makespan agree — and a
   run without a sink records nothing. *)
let disabled_is_free () =
  let cfg =
    Tmk_harness.Harness.config ~app:Tmk_harness.Harness.Jacobi ~nprocs:4
      ~protocol:Tmk_dsm.Config.Lrc ~net:Tmk_net.Params.atm_aal34
  in
  let plain_m, plain_digest = Tmk_harness.Harness.run_checked ~app:Tmk_harness.Harness.Jacobi cfg in
  let sink = Sink.create () in
  let traced_m, traced_digest =
    Tmk_harness.Harness.run_checked ~app:Tmk_harness.Harness.Jacobi
      { cfg with Tmk_dsm.Config.trace = Some sink }
  in
  check Alcotest.string "digest" plain_digest traced_digest;
  check Alcotest.int "messages" plain_m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.messages
    traced_m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.messages;
  check Alcotest.int "bytes" plain_m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.bytes
    traced_m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.bytes;
  check Alcotest.int "makespan" plain_m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.total_time
    traced_m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.total_time;
  check Alcotest.bool "traced run recorded events" true (Sink.length sink > 0)

(* The analyzer agrees with the protocol's own counters on a real run. *)
let analyzer_matches_stats () =
  let app = Tmk_harness.Harness.Tsp in
  let cfg =
    Tmk_harness.Harness.config ~app ~nprocs:4 ~protocol:Tmk_dsm.Config.Lrc
      ~net:Tmk_net.Params.atm_aal34
  in
  let sink = Sink.create () in
  let m = Tmk_harness.Harness.run_cfg ~trace:sink ~app cfg in
  let s = m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.total_stats in
  let a = Analyze.analyze sink in
  let total f = List.fold_left (fun acc l -> acc + f l) 0 in
  check Alcotest.int "lock acquires"
    s.Tmk_dsm.Stats.lock_acquires
    (total (fun l -> l.Analyze.l_acquires) a.Analyze.a_locks);
  check Alcotest.int "page faults"
    (s.Tmk_dsm.Stats.read_faults + s.Tmk_dsm.Stats.write_faults)
    (total (fun p -> p.Analyze.p_read_faults + p.Analyze.p_write_faults) a.Analyze.a_pages);
  check Alcotest.int "page fetches" s.Tmk_dsm.Stats.page_fetches
    (total (fun p -> p.Analyze.p_fetches) a.Analyze.a_pages);
  check Alcotest.int "frames"
    m.Tmk_harness.Harness.m_raw.Tmk_dsm.Api.messages
    (total (fun p -> p.Analyze.pr_frames_sent) a.Analyze.a_procs);
  (* every processor finished and the analyzer saw it *)
  check Alcotest.int "procs" 4 (List.length a.Analyze.a_procs);
  List.iter
    (fun p -> check Alcotest.bool "finish recorded" true (p.Analyze.pr_finish > 0))
    a.Analyze.a_procs

let suite =
  [
    Alcotest.test_case "analyze locks" `Quick analyze_locks;
    Alcotest.test_case "analyze barriers" `Quick analyze_barriers;
    Alcotest.test_case "analyze hot pages" `Quick analyze_hot_pages;
    Alcotest.test_case "analyze procs" `Quick analyze_procs;
    Alcotest.test_case "report renders" `Quick report_renders;
    Alcotest.test_case "report survives zero acquires" `Quick
      report_survives_zero_acquires;
    Alcotest.test_case "jsonl golden" `Quick jsonl_golden;
    Alcotest.test_case "jsonl roundtrip" `Quick jsonl_roundtrip;
    Alcotest.test_case "chrome golden" `Quick chrome_golden;
    Alcotest.test_case "chrome closes open spans" `Quick chrome_closes_open_spans;
    Alcotest.test_case "determinism jacobi" `Quick determinism_jacobi;
    Alcotest.test_case "determinism tsp" `Slow determinism_tsp;
    Alcotest.test_case "tracing disabled is free" `Quick disabled_is_free;
    Alcotest.test_case "analyzer matches stats" `Quick analyzer_matches_stats;
  ]
