(* Protocol fuzzer: randomized SPMD programs whose outcome is known by
   construction, executed under every protocol.

   Each scenario runs some rounds; in every round each processor writes a
   randomly assigned set of shared slots (scattered across pages, so
   concurrent writers collide on pages but never on words — the
   multiple-writer case) and applies lock-protected increments to shared
   counters (the ordered read-modify-write case); rounds are separated by
   barriers.  Afterwards every slot must hold its last-assigned value on
   every processor and every counter the sum of all increments.  This
   exercises twins, diff creation and merging, invalidations, cold misses,
   diff-fetch planning, lock forwarding and barrier deltas under schedules
   no hand-written test would find. *)

open Tmk_dsm

type scenario = {
  sc_nprocs : int;
  sc_pages : int;
  sc_rounds : int;
  sc_slots : int array;  (* slot index -> 8-aligned byte address *)
  sc_writes : (int * int * int) list array;  (* per round: (slot, writer, value) *)
  sc_incs : int array array;  (* incs.(round).(pid): increment for the counter *)
  sc_protocol : Config.protocol;
  sc_updates : bool;  (* hybrid update protocol (LRC only) *)
  sc_seed : int64;
}

let protocol_gen =
  QCheck.Gen.oneofl [ Config.Lrc; Config.Erc; Config.Sc ]

let scenario_gen =
  let open QCheck.Gen in
  int_range 2 4 >>= fun nprocs ->
  int_range 2 4 >>= fun pages ->
  int_range 1 4 >>= fun rounds ->
  int_range 4 24 >>= fun nslots ->
  (* distinct 8-aligned addresses, none on the counter page (the last) *)
  let space_words = (pages - 1) * 512 in
  let rec pick_addrs chosen n st =
    if n = 0 then chosen
    else
      let w = int_range 0 (space_words - 1) st in
      if List.mem w chosen then pick_addrs chosen n st
      else pick_addrs (w :: chosen) (n - 1) st
  in
  (fun st -> pick_addrs [] nslots st) >>= fun words ->
  let slots = Array.of_list (List.map (fun w -> w * 8) words) in
  let nslots = Array.length slots in
  (* per round: each slot gets one random writer and value *)
  let round_writes st =
    List.init nslots (fun s -> (s, int_range 0 (nprocs - 1) st, int_range 0 10_000 st))
  in
  (fun st -> Array.init rounds (fun _ -> round_writes st)) >>= fun writes ->
  (fun st -> Array.init rounds (fun _ -> Array.init nprocs (fun _ -> int_range 0 100 st)))
  >>= fun incs ->
  protocol_gen >>= fun protocol ->
  bool >>= fun updates ->
  map
    (fun seed ->
      {
        sc_nprocs = nprocs;
        sc_pages = pages;
        sc_rounds = rounds;
        sc_slots = slots;
        sc_writes = writes;
        sc_incs = incs;
        sc_protocol = protocol;
        sc_updates = (updates && protocol = Config.Lrc);
        sc_seed = Int64.of_int (abs seed);
      })
    int

let print_scenario s =
  Printf.sprintf "{procs=%d pages=%d rounds=%d slots=%d protocol=%s%s seed=%Ld}" s.sc_nprocs
    s.sc_pages s.sc_rounds (Array.length s.sc_slots)
    (Config.protocol_name s.sc_protocol)
    (if s.sc_updates then "+updates" else "")
    s.sc_seed

(* Expected final state. *)
let expectation s =
  let final = Array.make (Array.length s.sc_slots) 0 in
  Array.iter (List.iter (fun (slot, _, v) -> final.(slot) <- v)) s.sc_writes;
  let counter_total = Array.fold_left (fun acc per -> acc + Array.fold_left ( + ) 0 per) 0 s.sc_incs in
  (final, counter_total)

let run_scenario s =
  let expected_slots, expected_counter = expectation s in
  (* Scenarios are data-race-free by construction (single writer per slot
     per round, counter under lock 1) and lock-disciplined, so on every
     fuzzed schedule the detector must stay silent, the protocol
     invariants must hold, and the sanitizer suite must raise no
     error-severity finding. *)
  let race = Tmk_check.Race.create ~nprocs:s.sc_nprocs ~pages:s.sc_pages () in
  let oracle = Tmk_check.Oracle.create ~nprocs:s.sc_nprocs () in
  let lint = Tmk_lint.Lint.create ~nprocs:s.sc_nprocs () in
  let cfg =
    {
      Config.default with
      Config.nprocs = s.sc_nprocs;
      pages = s.sc_pages;
      protocol = s.sc_protocol;
      lrc_updates = s.sc_updates;
      seed = s.sc_seed;
      check =
        Some
          (Tmk_check.Checker.create ~race ~oracle
             ~hooks:[ Tmk_lint.Lint.hooks lint ]
             ~attach:[ Tmk_lint.Lint.attach lint ] ());
    }
  in
  let ok = ref true in
  let note fmt = Printf.ksprintf (fun msg -> ok := false; print_endline msg) fmt in
  let _ =
    Api.run cfg (fun ctx ->
        let pid = Api.pid ctx in
        (* slots live in the low pages; the counter gets the last page *)
        let counter_addr = (s.sc_pages - 1) * Tmk_mem.Vm.page_size in
        if pid = 0 then begin
          Array.iter (fun addr -> Api.write_int ctx addr 0) s.sc_slots;
          Api.write_int ctx counter_addr 0
        end;
        Api.barrier ctx 0;
        for round = 0 to s.sc_rounds - 1 do
          List.iter
            (fun (slot, writer, value) ->
              if writer = pid then Api.write_int ctx s.sc_slots.(slot) value)
            s.sc_writes.(round);
          let inc = s.sc_incs.(round).(pid) in
          if inc > 0 then
            Api.with_lock ctx 1 (fun () ->
                Api.write_int ctx counter_addr (Api.read_int ctx counter_addr + inc));
          Api.barrier ctx (round + 1)
        done;
        (* every processor verifies the whole final state *)
        Array.iteri
          (fun slot addr ->
            let got = Api.read_int ctx addr in
            if got <> expected_slots.(slot) then
              note "pid %d slot %d (addr %d): got %d want %d [%s]" pid slot addr got
                expected_slots.(slot) (print_scenario s))
          s.sc_slots;
        let got = Api.with_lock ctx 1 (fun () -> Api.read_int ctx counter_addr) in
        if got <> expected_counter then
          note "pid %d counter: got %d want %d [%s]" pid got expected_counter
            (print_scenario s))
  in
  if Tmk_check.Race.has_findings race then
    note "race detector fired on a race-free program [%s]\n%s" (print_scenario s)
      (Tmk_check.Race.report race);
  (match Tmk_check.Oracle.finish oracle with
  | [] -> ()
  | v :: _ -> note "invariant violated [%s]: %s" (print_scenario s) v);
  let lint_findings = Tmk_lint.Lint.findings ~race lint in
  if Tmk_lint.Findings.has_errors lint_findings then
    note "sanitizer suite fired on a race-free program [%s]\n%s" (print_scenario s)
      (Tmk_lint.Findings.table lint_findings);
  !ok

let fuzz_protocols =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random programs match their expectation"
       (QCheck.make ~print:print_scenario scenario_gen)
       run_scenario)

(* The same scenarios again under a lossy medium: the reliability layer
   must keep them exact. *)
let fuzz_lossy =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15 ~name:"random programs survive 10% frame loss"
       (QCheck.make ~print:print_scenario scenario_gen)
       (fun s ->
         (* every protocol, including SC: all messages go through the
            transport's reliable one-way primitives *)
         let cfg_net = Tmk_net.Params.with_loss Tmk_net.Params.atm_aal34 0.10 in
         let s = { s with sc_seed = Int64.add s.sc_seed 1L } in
         let expected_slots, expected_counter = expectation s in
         let race = Tmk_check.Race.create ~nprocs:s.sc_nprocs ~pages:s.sc_pages () in
         let oracle = Tmk_check.Oracle.create ~nprocs:s.sc_nprocs () in
         let cfg =
           {
             Config.default with
             Config.nprocs = s.sc_nprocs;
             pages = s.sc_pages;
             protocol = s.sc_protocol;
             lrc_updates = s.sc_updates;
             seed = s.sc_seed;
             net = cfg_net;
             check = Some (Tmk_check.Checker.create ~race ~oracle ());
           }
         in
         let ok = ref true in
         let _ =
           Api.run cfg (fun ctx ->
               let pid = Api.pid ctx in
               let counter_addr = (s.sc_pages - 1) * Tmk_mem.Vm.page_size in
               if pid = 0 then begin
                 Array.iter (fun addr -> Api.write_int ctx addr 0) s.sc_slots;
                 Api.write_int ctx counter_addr 0
               end;
               Api.barrier ctx 0;
               for round = 0 to s.sc_rounds - 1 do
                 List.iter
                   (fun (slot, writer, value) ->
                     if writer = pid then Api.write_int ctx s.sc_slots.(slot) value)
                   s.sc_writes.(round);
                 let inc = s.sc_incs.(round).(pid) in
                 if inc > 0 then
                   Api.with_lock ctx 1 (fun () ->
                       Api.write_int ctx counter_addr (Api.read_int ctx counter_addr + inc));
                 Api.barrier ctx (round + 1)
               done;
               Array.iteri
                 (fun slot addr ->
                   if Api.read_int ctx addr <> expected_slots.(slot) then ok := false)
                 s.sc_slots;
               if Api.with_lock ctx 1 (fun () -> Api.read_int ctx counter_addr)
                  <> expected_counter
               then ok := false)
         in
         (* Retransmission must not confuse the checkers either. *)
         if Tmk_check.Race.has_findings race then ok := false;
         if Tmk_check.Oracle.finish oracle <> [] then ok := false;
         !ok))

let suite = [ fuzz_protocols; fuzz_lossy ]
