(* Tests of the checking subsystem (lib/check): the happens-before race
   detector and the protocol invariant oracle.  Goldens: the racy fixture
   must be flagged with the exact page/range/kind, the five paper
   applications must come out clean at 8 processors, and findings must be
   byte-identical across same-seed runs including under frame loss. *)

open Tmk_dsm
module Race = Tmk_check.Race
module Oracle = Tmk_check.Oracle
module Checker = Tmk_check.Checker
module Event = Tmk_trace.Event
module Sink = Tmk_trace.Sink

let check = Alcotest.check

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* Run [body] on a cluster with both checkers attached. *)
let checked_run ?(loss = 0.0) ?(seed = 3L) ~nprocs ~pages body =
  let race = Race.create ~nprocs ~pages () in
  let oracle = Oracle.create ~nprocs () in
  let faults =
    if loss > 0.0 then Tmk_net.Fault_plan.(with_loss none loss)
    else Tmk_net.Fault_plan.none
  in
  let cfg =
    {
      Config.default with
      Config.nprocs;
      pages;
      seed;
      faults;
      check = Some (Checker.create ~race ~oracle ());
    }
  in
  let _ = Api.run cfg body in
  (race, oracle)

(* ------------------------------------------------------------------ *)
(* The positive fixture: the racy histogram must be caught, precisely.  *)

(* With the default parameters the 4096 data items fill pages 0..7 and
   the 8 bucket counters share page 8, occupying bytes 0..63. *)
let racey_flags_races () =
  let p = Tmk_apps.Racey.default in
  let race, oracle =
    checked_run ~nprocs:8 ~pages:(Tmk_apps.Racey.pages_needed p) (fun ctx ->
        ignore (Tmk_apps.Racey.parallel ~collect:false ctx p))
  in
  check Alcotest.bool "races found" true (Race.has_findings race);
  let fs = Race.findings race in
  List.iter
    (fun f ->
      check Alcotest.int "on the histogram page" 8 f.Race.f_page;
      check Alcotest.bool "inside the 8 bucket words" true
        (f.Race.f_lo >= 0 && f.Race.f_hi <= 63);
      check Alcotest.bool "two distinct processors" true
        (f.Race.f_first_pid <> f.Race.f_second_pid);
      check Alcotest.bool "sync contexts reported" true
        (f.Race.f_first_ctx <> "" && f.Race.f_second_ctx <> ""))
    fs;
  let ww =
    List.filter
      (fun f -> f.Race.f_first_kind = Race.Write && f.Race.f_second_kind = Race.Write)
      fs
  in
  check Alcotest.bool "write/write conflicts present" true (ww <> []);
  check Alcotest.bool "some conflict spans all eight buckets" true
    (List.exists (fun f -> f.Race.f_lo = 0 && f.Race.f_hi = 63) ww);
  let text = Race.report race in
  List.iter
    (fun affix -> check Alcotest.bool affix true (contains ~affix text))
    [ "Data races"; "W/W"; "ordering fix" ];
  check (Alcotest.list Alcotest.string) "racy programs still obey the protocol" []
    (Oracle.finish oracle)

(* ------------------------------------------------------------------ *)
(* The five applications are data-race-free and protocol-clean.         *)

let app_clean name pages body () =
  let race, oracle = checked_run ~nprocs:8 ~pages body in
  if Race.has_findings race then Alcotest.failf "%s:\n%s" name (Race.report race);
  match Oracle.finish oracle with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%s: %s" name v

let water_params = { Tmk_apps.Water.default with Tmk_apps.Water.nmol = 27; steps = 2 }

let jacobi_params =
  { Tmk_apps.Jacobi.default with Tmk_apps.Jacobi.rows = 40; cols = 32; iters = 6 }

let tsp_params = { Tmk_apps.Tsp.default with Tmk_apps.Tsp.ncities = 9; prefix_depth = 3 }

let qsort_params =
  { Tmk_apps.Quicksort.default with Tmk_apps.Quicksort.n = 2048; threshold = 64 }

let ilink_params =
  { Tmk_apps.Ilink.default with Tmk_apps.Ilink.families = 12; iterations = 3 }

let water_clean =
  app_clean "water"
    (Tmk_apps.Water.pages_needed water_params)
    (fun ctx -> ignore (Tmk_apps.Water.parallel ctx water_params))

let jacobi_clean =
  app_clean "jacobi"
    (Tmk_apps.Jacobi.pages_needed jacobi_params)
    (fun ctx -> ignore (Tmk_apps.Jacobi.parallel ctx jacobi_params))

(* TSP reads the shared bound without the lock by design (§5.2); the
   [Api.unsynchronized] annotation must keep the detector quiet. *)
let tsp_clean =
  app_clean "tsp"
    (Tmk_apps.Tsp.pages_needed tsp_params)
    (fun ctx -> ignore (Tmk_apps.Tsp.parallel ctx tsp_params))

let quicksort_clean =
  app_clean "quicksort"
    (Tmk_apps.Quicksort.pages_needed qsort_params)
    (fun ctx -> ignore (Tmk_apps.Quicksort.parallel ctx qsort_params))

let ilink_clean =
  app_clean "ilink"
    (Tmk_apps.Ilink.pages_needed ilink_params)
    (fun ctx -> ignore (Tmk_apps.Ilink.parallel ctx ilink_params))

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, same fault plan -> byte-identical reports.   *)

let deterministic_under_loss () =
  let p = Tmk_apps.Racey.default in
  let run () =
    let race, oracle =
      checked_run ~loss:0.05 ~nprocs:8
        ~pages:(Tmk_apps.Racey.pages_needed p)
        (fun ctx -> ignore (Tmk_apps.Racey.parallel ~collect:false ctx p))
    in
    (Race.report race, Oracle.report (Oracle.finish oracle))
  in
  let r1, o1 = run () in
  let r2, o2 = run () in
  check Alcotest.string "race report stable under 5% loss" r1 r2;
  check Alcotest.string "oracle report stable under 5% loss" o1 o2;
  check Alcotest.bool "still finds the races" true (contains ~affix:"Data races" r1)

(* ------------------------------------------------------------------ *)
(* Detector units: hand-driven segment histories with known answers.    *)

let lock_ordered_is_clean () =
  let r = Race.create ~nprocs:2 ~pages:4 () in
  Race.lock_acquired r ~pid:0 ~lock:3;
  Race.note_access r ~pid:0 Race.Write ~addr:128 ~width:8;
  Race.lock_release r ~pid:0 ~lock:3;
  Race.lock_acquired r ~pid:1 ~lock:3;
  Race.note_access r ~pid:1 Race.Write ~addr:128 ~width:8;
  Race.lock_release r ~pid:1 ~lock:3;
  check Alcotest.bool "no findings" false (Race.has_findings r)

let barrier_orders () =
  let r = Race.create ~nprocs:2 ~pages:4 () in
  Race.note_access r ~pid:0 Race.Write ~addr:0 ~width:8;
  Race.barrier_arrive r ~pid:0 ~id:7;
  Race.barrier_arrive r ~pid:1 ~id:7;
  Race.barrier_depart r ~pid:0 ~id:7;
  Race.barrier_depart r ~pid:1 ~id:7;
  Race.note_access r ~pid:1 Race.Read ~addr:0 ~width:8;
  check Alcotest.bool "no findings" false (Race.has_findings r)

let unordered_writes_race () =
  let r = Race.create ~nprocs:2 ~pages:4 () in
  Race.note_access r ~pid:0 Race.Write ~addr:64 ~width:8;
  Race.note_access r ~pid:1 Race.Write ~addr:64 ~width:8;
  match Race.findings r with
  | [ f ] ->
    check Alcotest.int "page" 0 f.Race.f_page;
    check Alcotest.int "lo" 64 f.Race.f_lo;
    check Alcotest.int "hi" 71 f.Race.f_hi;
    check Alcotest.bool "W/W" true
      (f.Race.f_first_kind = Race.Write && f.Race.f_second_kind = Race.Write)
  | other -> Alcotest.failf "expected one finding, got %d" (List.length other)

(* Distinct words never conflict; distinct bytes of one word do (the
   detector's granularity is the 8-byte word, documented in PROTOCOL.md). *)
let word_granularity () =
  let r = Race.create ~nprocs:2 ~pages:1 () in
  Race.note_access r ~pid:0 Race.Write ~addr:0 ~width:8;
  Race.note_access r ~pid:1 Race.Write ~addr:8 ~width:8;
  check Alcotest.bool "different words: clean" false (Race.has_findings r);
  Race.note_access r ~pid:0 Race.Write ~addr:16 ~width:1;
  Race.note_access r ~pid:1 Race.Write ~addr:20 ~width:1;
  check Alcotest.bool "same word: flagged" true (Race.has_findings r)

let suppressed_is_invisible () =
  let r = Race.create ~nprocs:2 ~pages:1 () in
  Race.note_access r ~pid:0 Race.Write ~addr:0 ~width:8;
  Race.suppress r ~pid:1 true;
  Race.note_access r ~pid:1 Race.Read ~addr:0 ~width:8;
  Race.suppress r ~pid:1 false;
  check Alcotest.bool "annotated access not reported" false (Race.has_findings r)

let hint_names_the_lock () =
  let r = Race.create ~nprocs:2 ~pages:1 () in
  Race.lock_acquired r ~pid:0 ~lock:5;
  Race.note_access r ~pid:0 Race.Write ~addr:0 ~width:8;
  Race.lock_release r ~pid:0 ~lock:5;
  Race.note_access r ~pid:1 Race.Write ~addr:0 ~width:8;
  match Race.findings r with
  | f :: _ ->
    check Alcotest.bool "hint names lock 5" true (contains ~affix:"lock 5" f.Race.f_hint)
  | [] -> Alcotest.fail "expected a finding"

(* ------------------------------------------------------------------ *)
(* Oracle units: hand-built streams violating one invariant at a time.  *)

let run_oracle ?(nprocs = 2) events =
  let sink = Sink.create () in
  List.iter (fun (time, pid, ev) -> Sink.emit sink ~time ~pid ev) events;
  Oracle.check_sink ~nprocs sink

let expect_violation name prefix events =
  let vs = run_oracle events in
  if not (List.exists (fun v -> contains ~affix:prefix v) vs) then
    Alcotest.failf "%s: expected a %s violation, got [%s]" name prefix
      (String.concat "; " vs)

let oracle_clean_stream () =
  let open Event in
  let vs =
    run_oracle
      [
        (0, 0, Interval_close { id = 1; notices = 1; vt = [| 1; 0 |] });
        (1, 0, Lock_grant { lock = 0; requester = 1; intervals = 1; bytes = 96 });
        (2, 1, Interval_recv { proc = 0; id = 1; notices = 1; vt = [| 1; 0 |] });
        (2, 1, Write_notice_recv { page = 0; proc = 0; interval = 1 });
        (3, 1, Lock_acquired { lock = 0; local = false });
        (4, 0, Barrier_arrive { id = 0; epoch = 0 });
        (4, 1, Barrier_arrive { id = 0; epoch = 0 });
        (5, 0, Barrier_release { id = 0; epoch = 0 });
        (6, 1, Barrier_release { id = 0; epoch = 0 });
      ]
  in
  check (Alcotest.list Alcotest.string) "clean" [] vs

let oracle_i1_own_entry () =
  let open Event in
  expect_violation "own entry" "I1"
    [ (0, 0, Interval_close { id = 2; notices = 0; vt = [| 1; 0 |] }) ]

let oracle_i1_ids_decrease () =
  let open Event in
  expect_violation "decreasing ids" "I1"
    [
      (0, 0, Interval_close { id = 2; notices = 0; vt = [| 2; 0 |] });
      (1, 0, Interval_close { id = 1; notices = 0; vt = [| 1; 0 |] });
    ]

let oracle_i2_invented_knowledge () =
  let open Event in
  expect_violation "invented knowledge" "I2"
    [ (0, 0, Interval_close { id = 1; notices = 0; vt = [| 1; 5 |] }) ]

let oracle_i2_own_record () =
  let open Event in
  expect_violation "own record" "I2"
    [ (0, 0, Interval_recv { proc = 0; id = 1; notices = 0; vt = [| 1; 0 |] }) ]

(* The granter knows its interval 1; the acquirer finishes the acquire
   without ever incorporating it. *)
let oracle_i3_acquire_below_granter () =
  let open Event in
  expect_violation "uncovered acquire" "I3"
    [
      (0, 0, Interval_close { id = 1; notices = 1; vt = [| 1; 0 |] });
      (1, 0, Lock_grant { lock = 4; requester = 1; intervals = 1; bytes = 96 });
      (2, 1, Lock_acquired { lock = 4; local = false });
    ]

let oracle_i3_acquire_without_grant () =
  let open Event in
  expect_violation "grantless acquire" "I3"
    [ (0, 1, Lock_acquired { lock = 4; local = false }) ]

(* The manager crosses knowing its own interval; a client crosses without
   having incorporated it. *)
let oracle_i3_barrier_below_manager () =
  let open Event in
  expect_violation "uncovered barrier crossing" "I3"
    [
      (0, 0, Interval_close { id = 1; notices = 1; vt = [| 1; 0 |] });
      (1, 0, Barrier_arrive { id = 0; epoch = 0 });
      (1, 1, Barrier_arrive { id = 0; epoch = 0 });
      (2, 0, Barrier_release { id = 0; epoch = 0 });
      (3, 1, Barrier_release { id = 0; epoch = 0 });
    ]

let oracle_i4_epoch_disagreement () =
  let open Event in
  expect_violation "epoch disagreement" "I4"
    [
      (0, 0, Barrier_arrive { id = 3; epoch = 0 });
      (1, 1, Barrier_arrive { id = 3; epoch = 1 });
    ]

let oracle_i4_incomplete_crossing () =
  let open Event in
  expect_violation "incomplete crossing" "I4"
    [ (0, 0, Barrier_arrive { id = 3; epoch = 0 }) ]

let oracle_i5_apply_without_create () =
  let open Event in
  expect_violation "orphan diff" "I5"
    [ (0, 1, Diff_apply { page = 2; bytes = 64; proc = 0; interval = 3 }) ]

let oracle_i5_size_disagreement () =
  let open Event in
  expect_violation "size disagreement" "I5"
    [
      (0, 0, Diff_create { page = 2; bytes = 64; proc = 0; interval = 3 });
      (1, 1, Diff_apply { page = 2; bytes = 60; proc = 0; interval = 3 });
      (2, 1, Diff_apply { page = 2; bytes = 48; proc = 0; interval = 3 });
    ]

(* ERC's eager diffs carry interval -1 and are exempt from I5. *)
let oracle_i5_erc_exempt () =
  let open Event in
  let vs =
    run_oracle [ (0, 1, Diff_apply { page = 2; bytes = 64; proc = 0; interval = -1 }) ]
  in
  check (Alcotest.list Alcotest.string) "exempt" [] vs

let oracle_i6_collected_interval () =
  let open Event in
  expect_violation "use after collection" "I6"
    [
      (0, 1, Interval_recv { proc = 0; id = 3; notices = 0; vt = [| 3; 0 |] });
      (1, 1, Gc_end { discarded = 4 });
      (2, 1, Write_notice_recv { page = 0; proc = 0; interval = 2 });
    ]

let suite =
  [
    Alcotest.test_case "racey is flagged, precisely" `Quick racey_flags_races;
    Alcotest.test_case "water is clean" `Quick water_clean;
    Alcotest.test_case "jacobi is clean" `Quick jacobi_clean;
    Alcotest.test_case "tsp is clean (annotated bound read)" `Quick tsp_clean;
    Alcotest.test_case "quicksort is clean" `Quick quicksort_clean;
    Alcotest.test_case "ilink is clean" `Quick ilink_clean;
    Alcotest.test_case "findings deterministic under loss" `Quick deterministic_under_loss;
    Alcotest.test_case "lock-ordered accesses are clean" `Quick lock_ordered_is_clean;
    Alcotest.test_case "barrier orders accesses" `Quick barrier_orders;
    Alcotest.test_case "unordered writes race" `Quick unordered_writes_race;
    Alcotest.test_case "word granularity" `Quick word_granularity;
    Alcotest.test_case "unsynchronized spans are invisible" `Quick suppressed_is_invisible;
    Alcotest.test_case "hint names the missing lock" `Quick hint_names_the_lock;
    Alcotest.test_case "oracle: clean stream" `Quick oracle_clean_stream;
    Alcotest.test_case "oracle: I1 own entry" `Quick oracle_i1_own_entry;
    Alcotest.test_case "oracle: I1 decreasing ids" `Quick oracle_i1_ids_decrease;
    Alcotest.test_case "oracle: I2 invented knowledge" `Quick oracle_i2_invented_knowledge;
    Alcotest.test_case "oracle: I2 own record" `Quick oracle_i2_own_record;
    Alcotest.test_case "oracle: I3 acquire below granter" `Quick
      oracle_i3_acquire_below_granter;
    Alcotest.test_case "oracle: I3 acquire without grant" `Quick
      oracle_i3_acquire_without_grant;
    Alcotest.test_case "oracle: I3 barrier below manager" `Quick
      oracle_i3_barrier_below_manager;
    Alcotest.test_case "oracle: I4 epoch disagreement" `Quick oracle_i4_epoch_disagreement;
    Alcotest.test_case "oracle: I4 incomplete crossing" `Quick
      oracle_i4_incomplete_crossing;
    Alcotest.test_case "oracle: I5 apply without create" `Quick
      oracle_i5_apply_without_create;
    Alcotest.test_case "oracle: I5 size disagreement" `Quick oracle_i5_size_disagreement;
    Alcotest.test_case "oracle: I5 ERC exemption" `Quick oracle_i5_erc_exempt;
    Alcotest.test_case "oracle: I6 collected interval" `Quick oracle_i6_collected_interval;
  ]
