(* Digest equivalence for the simulator's hot-path machinery.

   The fast paths this PR adds (software-MMU unchecked-access bitmap,
   word-granular RLE, domain-parallel sweeps) are pure simulator-speed
   changes: every simulated quantity — application answer, Stats counters,
   message/byte counts, simulated time — must be bit-identical with them
   on or off.  These tests enforce that end-to-end:

   - all five applications at 8 and 32 processors: same digest and same
     run accounting with [Config.vm_fast_path] true vs false;
   - the same with the race detector attached (its [on_access] hook must
     still observe every shared access — the checker's findings and the
     digest both have to match, and a Vm-level test counts hook calls);
   - a sweep mapped with [Harness.parallel_map ~jobs:4] equals the
     sequential map, element for element.

   The equivalence runs themselves fan out across domains (they are
   independent simulations), which keeps the suite's wall time near the
   slowest single run instead of the sum. *)

open Tmk_dsm
module Harness = Tmk_harness.Harness
module Vm = Tmk_mem.Vm

let check = Alcotest.check

let cfg_of ~app ~nprocs ~fast =
  let cfg =
    Harness.config ~app ~nprocs ~protocol:Config.Lrc ~net:Tmk_net.Params.atm_aal34
  in
  { cfg with Config.vm_fast_path = fast }

(* One comparable record per run: the digest plus every piece of
   simulated accounting a fast path could plausibly disturb. *)
type fingerprint = {
  fp_digest : string;
  fp_stats : Stats.t;
  fp_time : int;
  fp_messages : int;
  fp_bytes : int;
}

let fingerprint ~app cfg =
  let m, digest = Harness.run_checked ~app cfg in
  let raw = m.Harness.m_raw in
  {
    fp_digest = digest;
    fp_stats = raw.Api.total_stats;
    fp_time = raw.Api.total_time;
    fp_messages = raw.Api.messages;
    fp_bytes = raw.Api.bytes;
  }

let proc_counts = [ 8; 32 ]

(* All (app, nprocs, fast?) arms, run once across domains, keyed for the
   per-app test cases below. *)
let equivalence_runs =
  lazy
    (let arms =
       List.concat_map
         (fun app ->
           List.concat_map
             (fun nprocs -> [ (app, nprocs, true); (app, nprocs, false) ])
             proc_counts)
         Harness.all_apps
     in
     let results =
       Harness.parallel_map ~jobs:4
         (fun (app, nprocs, fast) -> fingerprint ~app (cfg_of ~app ~nprocs ~fast))
         arms
     in
     let tbl = Hashtbl.create 32 in
     List.iter2 (fun arm fp -> Hashtbl.replace tbl arm fp) arms results;
     tbl)

let check_equal ~what fast slow =
  check Alcotest.string (what ^ ": digest") slow.fp_digest fast.fp_digest;
  check Alcotest.bool (what ^ ": digest nonempty") true (fast.fp_digest <> "");
  check Alcotest.bool (what ^ ": stats") true (fast.fp_stats = slow.fp_stats);
  check Alcotest.int (what ^ ": simulated time") slow.fp_time fast.fp_time;
  check Alcotest.int (what ^ ": messages") slow.fp_messages fast.fp_messages;
  check Alcotest.int (what ^ ": bytes") slow.fp_bytes fast.fp_bytes

let fast_path_equivalence app () =
  let runs = Lazy.force equivalence_runs in
  List.iter
    (fun nprocs ->
      let what = Printf.sprintf "%s %dp" (Harness.app_name app) nprocs in
      check_equal ~what
        (Hashtbl.find runs (app, nprocs, true))
        (Hashtbl.find runs (app, nprocs, false)))
    proc_counts

(* ------------------------------------------------------------------ *)
(* With the race detector attached the Vm access hook is installed, so
   the fast bitmap must stay all-clear and the checker must see exactly
   the accesses it always saw — same findings, same digest.  Racey is
   the positive fixture (its findings are non-empty), so a hook that
   silently missed accesses would show up as a findings mismatch.        *)

let checked_fingerprint ~fast =
  let app = Harness.Racey in
  let cfg = cfg_of ~app ~nprocs:8 ~fast in
  let race = Tmk_check.Race.create ~nprocs:8 ~pages:cfg.Config.pages () in
  let cfg = { cfg with Config.check = Some (Tmk_check.Checker.create ~race ()) } in
  let fp = fingerprint ~app cfg in
  (fp, Tmk_check.Race.report race)

let race_detector_equivalence () =
  let fast_fp, fast_report = checked_fingerprint ~fast:true in
  let slow_fp, slow_report = checked_fingerprint ~fast:false in
  check Alcotest.bool "racy fixture still flagged" true
    (fast_report <> "" && fast_report = slow_report);
  check_equal ~what:"racey 8p, race detector on" fast_fp slow_fp

(* Vm-level hook coverage: with the fast path enabled, installing an
   access hook must force every typed access back onto the observed path
   — one hook call per load or store, with the right kind and width. *)
let hook_sees_every_access () =
  let vm = Vm.create ~fast_path:true ~pages:2 () in
  let seen = ref [] in
  Vm.set_access_hook vm (fun kind addr width -> seen := (kind, addr, width) :: !seen);
  Vm.write_int vm 0 42;
  ignore (Vm.read_int vm 0);
  Vm.write_u8 vm 4096 7;
  ignore (Vm.read_u8 vm 4096);
  check Alcotest.bool "every access observed" true
    (List.rev !seen
    = [ (Vm.Write, 0, 8); (Vm.Read, 0, 8); (Vm.Write, 4096, 1); (Vm.Read, 4096, 1) ])

(* Fast-path semantics: out-of-range and straddling accesses must keep
   raising exactly as the checked path does. *)
let fast_path_still_raises () =
  let vm = Vm.create ~fast_path:true ~pages:1 () in
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "negative addr" true (raises (fun () -> Vm.read_u8 vm (-1)));
  check Alcotest.bool "past the end" true (raises (fun () -> Vm.read_u8 vm 4096));
  check Alcotest.bool "straddle" true (raises (fun () -> Vm.read_i64 vm 4092));
  Vm.write_u8 vm 4095 9;
  check Alcotest.int "last byte still accessible" 9 (Vm.read_u8 vm 4095)

(* ------------------------------------------------------------------ *)
(* Domain-parallel sweeps: mapping the arms on 4 domains must be
   indistinguishable from the sequential map.                           *)

let parallel_map_equivalence () =
  let arms =
    List.concat_map
      (fun app -> List.map (fun n -> (app, n)) [ 2; 4 ])
      [ Harness.Tsp; Harness.Jacobi ]
  in
  let run (app, nprocs) = fingerprint ~app (cfg_of ~app ~nprocs ~fast:true) in
  let sequential = Harness.parallel_map ~jobs:1 run arms in
  let parallel = Harness.parallel_map ~jobs:4 run arms in
  check Alcotest.int "same length" (List.length sequential) (List.length parallel)
  ;
  List.iteri
    (fun i (s, p) -> check_equal ~what:(Printf.sprintf "arm %d" i) p s)
    (List.combine sequential parallel)

(* ------------------------------------------------------------------ *)
(* Determinism of the findings pipeline: a lint-attached run's full
   report (findings table + JSONL) is a pure function of the config, so
   sweeping the arms across 4 domains must reproduce the sequential
   output byte for byte.                                                *)

let lint_report_of (app, nprocs) =
  let cfg = cfg_of ~app ~nprocs ~fast:true in
  let race = Tmk_check.Race.create ~nprocs ~pages:cfg.Config.pages () in
  let lint = Tmk_lint.Lint.create ~nprocs () in
  let cfg =
    {
      cfg with
      Config.check =
        Some
          (Tmk_check.Checker.create ~race
             ~hooks:[ Tmk_lint.Lint.hooks lint ]
             ~attach:[ Tmk_lint.Lint.attach lint ] ());
    }
  in
  let _ = Harness.run_checked ~app cfg in
  let fs = Tmk_lint.Lint.findings ~race lint in
  Tmk_lint.Lint.report ~race lint ^ "\n" ^ Tmk_lint.Findings.to_jsonl fs

let lint_findings_deterministic_across_jobs () =
  let arms =
    [ (Harness.Water, 4); (Harness.Tsp, 4); (Harness.Racey, 8); (Harness.Racey2, 8) ]
  in
  let sequential = Harness.parallel_map ~jobs:1 lint_report_of arms in
  let parallel = Harness.parallel_map ~jobs:4 lint_report_of arms in
  List.iteri
    (fun i (s, p) ->
      check Alcotest.string (Printf.sprintf "arm %d report byte-identical" i) s p)
    (List.combine sequential parallel);
  (* the racy arms really carry findings — the comparison is not vacuous *)
  check Alcotest.bool "racey arm has findings" true
    (match List.nth sequential 2 with s -> not (String.length s < 40))

let suite =
  let app_case app =
    Alcotest.test_case
      (Printf.sprintf "fast path preserves %s at 8 and 32 procs" (Harness.app_name app))
      `Slow (fast_path_equivalence app)
  in
  List.map app_case Harness.all_apps
  @ [
      Alcotest.test_case "race detector findings unchanged by fast path" `Slow
        race_detector_equivalence;
      Alcotest.test_case "access hook observes every access" `Quick hook_sees_every_access;
      Alcotest.test_case "fast path keeps checked-path errors" `Quick fast_path_still_raises;
      Alcotest.test_case "parallel_map jobs:4 equals sequential" `Slow
        parallel_map_equivalence;
      Alcotest.test_case "lint findings byte-identical across jobs" `Slow
        lint_findings_deterministic_across_jobs;
    ]
