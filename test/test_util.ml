(* Unit and property tests for Tmk_util: PRNG, heap, RLE, bitset, summary
   statistics, table rendering. *)

open Tmk_util

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Prng *)

let prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let prng_seed_sensitivity () =
  let a = Prng.create 42L and b = Prng.create 43L in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  check Alcotest.bool "streams differ" true !differs

let prng_split_independent () =
  (* Draws from the split stream must not depend on how many draws were
     later made from the parent. *)
  let parent1 = Prng.create 7L in
  let child1 = Prng.split parent1 in
  let _ = Prng.bits64 parent1 in
  let parent2 = Prng.create 7L in
  let child2 = Prng.split parent2 in
  for _ = 1 to 50 do
    let _ = Prng.bits64 parent2 in
    ()
  done;
  for _ = 1 to 20 do
    check Alcotest.int64 "child streams equal" (Prng.bits64 child1) (Prng.bits64 child2)
  done

let prng_split_named_stable () =
  let p1 = Prng.create 9L and p2 = Prng.create 9L in
  let a = Prng.split_named p1 "jacobi" and b = Prng.split_named p2 "jacobi" in
  check Alcotest.int64 "named split deterministic" (Prng.bits64 a) (Prng.bits64 b)

let prng_int_bounds =
  qtest "Prng.int in bounds"
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Prng.create seed in
      let v = Prng.int t bound in
      v >= 0 && v < bound)

let prng_int_in_bounds =
  qtest "Prng.int_in in range"
    QCheck.(triple int64 (int_range (-100) 100) (int_range 0 200))
    (fun (seed, lo, extent) ->
      let hi = lo + extent in
      let t = Prng.create seed in
      let v = Prng.int_in t lo hi in
      v >= lo && v <= hi)

let prng_float_bounds =
  qtest "Prng.float in bounds"
    QCheck.(pair int64 (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let t = Prng.create seed in
      let v = Prng.float t bound in
      v >= 0.0 && v < bound)

let prng_uniformity () =
  (* Chi-square-ish sanity: 10 buckets over 10_000 draws each land within
     30% of the expected count. *)
  let t = Prng.create 2024L in
  let buckets = Array.make 10 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    let b = Prng.int t 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun n ->
      check Alcotest.bool "bucket near uniform" true
        (abs (n - (draws / 10)) < draws * 3 / 100))
    buckets

let prng_shuffle_permutation =
  qtest "shuffle is a permutation"
    QCheck.(pair int64 (list_of_size (Gen.int_range 0 50) small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Prng.shuffle (Prng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Heap *)

let heap_sorts =
  qtest "heap drains sorted"
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let heap_fifo_on_ties () =
  (* Equal priorities must pop in insertion order: the engine's
     determinism depends on it. *)
  let h = Heap.create ~compare:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (0, "x"); (1, "b"); (1, "c"); (0, "y") ];
  let order = List.map snd (Heap.to_sorted_list h) in
  check Alcotest.(list string) "fifo ties" [ "x"; "y"; "a"; "b"; "c" ] order

let heap_interleaved () =
  let h = Heap.create ~compare in
  Heap.push h 5;
  Heap.push h 1;
  check Alcotest.int "pop 1" 1 (Heap.pop h);
  Heap.push h 0;
  Heap.push h 7;
  check Alcotest.int "pop 0" 0 (Heap.pop h);
  check Alcotest.int "pop 5" 5 (Heap.pop h);
  check Alcotest.int "pop 7" 7 (Heap.pop h);
  check Alcotest.bool "empty" true (Heap.is_empty h)

let heap_empty_pop () =
  let h = Heap.create ~compare in
  check Alcotest.bool "pop_opt none" true (Heap.pop_opt h = None);
  check Alcotest.bool "peek none" true (Heap.peek_opt h = None);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Heap.pop h))

let heap_length () =
  let h = Heap.create ~compare in
  for i = 1 to 100 do
    Heap.push h i
  done;
  check Alcotest.int "length" 100 (Heap.length h);
  ignore (Heap.pop h);
  check Alcotest.int "length after pop" 99 (Heap.length h);
  Heap.clear h;
  check Alcotest.int "cleared" 0 (Heap.length h)

(* ------------------------------------------------------------------ *)
(* Rle *)

let bytes_gen n = QCheck.Gen.(map Bytes.of_string (string_size ~gen:printable (return n)))

let pair_of_buffers =
  (* Generate a base buffer and a mutation of it. *)
  let gen =
    QCheck.Gen.(
      int_range 1 256 >>= fun n ->
      bytes_gen n >>= fun base ->
      list_size (int_range 0 20) (pair (int_range 0 (n - 1)) char) >>= fun edits ->
      let current = Bytes.copy base in
      List.iter (fun (i, c) -> Bytes.set current i c) edits;
      return (base, current))
  in
  QCheck.make ~print:(fun (a, b) -> Printf.sprintf "%S / %S" (Bytes.to_string a) (Bytes.to_string b)) gen

let rle_roundtrip =
  qtest ~count:500 "rle encode/apply roundtrip" pair_of_buffers (fun (base, current) ->
      let diff = Rle.encode ~old_:base current in
      let target = Bytes.copy base in
      Rle.apply diff target;
      Bytes.equal target current)

let rle_empty_when_equal =
  qtest "rle of identical buffers is empty" pair_of_buffers (fun (base, _) ->
      Rle.is_empty (Rle.encode ~old_:base (Bytes.copy base)))

let rle_runs_sorted_disjoint =
  qtest "rle runs sorted and disjoint" pair_of_buffers (fun (base, current) ->
      let diff = Rle.encode ~old_:base current in
      let rec ok = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) ->
          a.Rle.offset + Bytes.length a.Rle.bytes <= b.Rle.offset && ok rest
      in
      ok (Rle.runs diff))

let rle_join_gap () =
  (* Two 1-byte changes 2 bytes apart must join into one run with the
     default gap of 4. *)
  let base = Bytes.of_string "aaaaaaaaaa" in
  let cur = Bytes.of_string "abaabaaaaa" in
  let diff = Rle.encode ~old_:base cur in
  check Alcotest.int "joined run" 1 (Rle.run_count diff);
  (* With join_gap 1, they stay separate. *)
  let diff2 = Rle.encode ~join_gap:1 ~old_:base cur in
  check Alcotest.int "separate runs" 2 (Rle.run_count diff2)

let rle_sizes () =
  let base = Bytes.of_string (String.make 64 'x') in
  let cur = Bytes.copy base in
  Bytes.set cur 0 'y';
  Bytes.set cur 32 'z';
  let diff = Rle.encode ~old_:base cur in
  check Alcotest.int "payload" 2 (Rle.payload_size diff);
  check Alcotest.int "encoded" (2 + (2 * Rle.header_bytes)) (Rle.encoded_size diff)

let rle_length_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Rle.encode: buffers must have equal length") (fun () ->
      ignore (Rle.encode ~old_:(Bytes.create 4) (Bytes.create 5)))

let rle_overlap () =
  let base = Bytes.of_string "aaaaaaaa" in
  let c1 = Bytes.of_string "bbaaaaaa" in
  let c2 = Bytes.of_string "aaaaaabb" in
  let c3 = Bytes.of_string "abbaaaaa" in
  let d1 = Rle.encode ~old_:base c1 in
  let d2 = Rle.encode ~old_:base c2 in
  let d3 = Rle.encode ~old_:base c3 in
  check Alcotest.bool "disjoint" false (Rle.overlaps d1 d2);
  check Alcotest.bool "overlapping" true (Rle.overlaps d1 d3)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let bitset_model =
  qtest ~count:500 "bitset matches a set model"
    QCheck.(list (pair bool (int_range 0 63)))
    (fun ops ->
      let bs = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add bs i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove bs i;
            Hashtbl.remove model i
          end)
        ops;
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      Bitset.to_list bs = expected && Bitset.cardinal bs = List.length expected)

let bitset_union () =
  let a = Bitset.create 16 and b = Bitset.create 16 in
  List.iter (Bitset.add a) [ 1; 3; 5 ];
  List.iter (Bitset.add b) [ 3; 4 ];
  Bitset.union_into ~src:a ~dst:b;
  check Alcotest.(list int) "union" [ 1; 3; 4; 5 ] (Bitset.to_list b);
  check Alcotest.(list int) "src unchanged" [ 1; 3; 5 ] (Bitset.to_list a)

let bitset_copy_independent () =
  let a = Bitset.create 8 in
  Bitset.add a 2;
  let b = Bitset.copy a in
  Bitset.add b 3;
  check Alcotest.bool "copy has" true (Bitset.mem b 2);
  check Alcotest.bool "original unchanged" false (Bitset.mem a 3)

let bitset_bounds () =
  let a = Bitset.create 8 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index out of range") (fun () -> Bitset.add a 8)

let bitset_empty () =
  let a = Bitset.create 10 in
  check Alcotest.bool "fresh empty" true (Bitset.is_empty a);
  Bitset.add a 9;
  check Alcotest.bool "not empty" false (Bitset.is_empty a);
  Bitset.clear a;
  check Alcotest.bool "cleared" true (Bitset.is_empty a)

(* ------------------------------------------------------------------ *)
(* Summary *)

let summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 6.0 ];
  check (Alcotest.float 1e-9) "mean" 4.0 (Summary.mean s);
  check (Alcotest.float 1e-9) "min" 2.0 (Summary.min_value s);
  check (Alcotest.float 1e-9) "max" 6.0 (Summary.max_value s);
  check (Alcotest.float 1e-9) "variance" 4.0 (Summary.variance s);
  check (Alcotest.float 1e-9) "total" 12.0 (Summary.total s);
  check Alcotest.int "count" 3 (Summary.count s)

let summary_merge_equals_combined =
  qtest "merge equals single stream"
    QCheck.(pair (list (float_range (-100.0) 100.0)) (list (float_range (-100.0) 100.0)))
    (fun (xs, ys) ->
      let a = Summary.create () and b = Summary.create () and c = Summary.create () in
      List.iter (Summary.add a) xs;
      List.iter (Summary.add b) ys;
      List.iter (Summary.add c) (xs @ ys);
      let m = Summary.merge a b in
      let close x y =
        (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) < 1e-6 *. (1.0 +. Float.abs y)
      in
      Summary.count m = Summary.count c
      && close (Summary.mean m) (Summary.mean c)
      && close (Summary.variance m) (Summary.variance c))

let summary_empty () =
  let s = Summary.create () in
  check Alcotest.bool "mean nan" true (Float.is_nan (Summary.mean s));
  check Alcotest.bool "variance nan" true (Float.is_nan (Summary.variance s))

(* ------------------------------------------------------------------ *)
(* Tablefmt *)

let tablefmt_render () =
  let s =
    Tablefmt.render ~title:"T" ~header:[ "app"; "x" ] [ [ "water"; "1.0" ]; [ "tsp"; "20" ] ]
  in
  check Alcotest.bool "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  check Alcotest.bool "has row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "water"))

let tablefmt_row_mismatch () =
  Alcotest.check_raises "row mismatch"
    (Invalid_argument "Tablefmt.render: row width mismatch") (fun () ->
      ignore (Tablefmt.render ~title:"t" ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let tablefmt_charts_do_not_crash () =
  let _ = Tablefmt.bar_chart ~title:"b" ~unit_:"x" [ ("a", 1.0); ("b", 2.0) ] in
  let _ =
    Tablefmt.grouped_bar_chart ~title:"g" ~unit_:"x" ~series:[ "lazy"; "eager" ]
      [ ("water", [ 1.0; 2.0 ]); ("tsp", [ 3.0; 4.0 ]) ]
  in
  let _ =
    Tablefmt.stacked_bar_chart ~title:"s" ~unit_:"s" ~components:[ "comp"; "unix" ]
      [ ("water", [ 1.0; 0.5 ]) ]
  in
  let _ =
    Tablefmt.line_chart ~title:"l" ~x_label:"procs" ~y_label:"speedup"
      ~x:[ 1.0; 2.0; 4.0; 8.0 ]
      [ ("jacobi", 'j', [ 1.0; 1.9; 3.8; 7.4 ]) ]
  in
  ()

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick prng_deterministic;
    Alcotest.test_case "prng seed sensitivity" `Quick prng_seed_sensitivity;
    Alcotest.test_case "prng split independent" `Quick prng_split_independent;
    Alcotest.test_case "prng split_named stable" `Quick prng_split_named_stable;
    prng_int_bounds;
    prng_int_in_bounds;
    prng_float_bounds;
    Alcotest.test_case "prng uniformity" `Quick prng_uniformity;
    prng_shuffle_permutation;
    heap_sorts;
    Alcotest.test_case "heap fifo on ties" `Quick heap_fifo_on_ties;
    Alcotest.test_case "heap interleaved" `Quick heap_interleaved;
    Alcotest.test_case "heap empty pop" `Quick heap_empty_pop;
    Alcotest.test_case "heap length" `Quick heap_length;
    rle_roundtrip;
    rle_empty_when_equal;
    rle_runs_sorted_disjoint;
    Alcotest.test_case "rle join gap" `Quick rle_join_gap;
    Alcotest.test_case "rle sizes" `Quick rle_sizes;
    Alcotest.test_case "rle length mismatch" `Quick rle_length_mismatch;
    Alcotest.test_case "rle overlap" `Quick rle_overlap;
    bitset_model;
    Alcotest.test_case "bitset union" `Quick bitset_union;
    Alcotest.test_case "bitset copy" `Quick bitset_copy_independent;
    Alcotest.test_case "bitset bounds" `Quick bitset_bounds;
    Alcotest.test_case "bitset empty" `Quick bitset_empty;
    Alcotest.test_case "summary basic" `Quick summary_basic;
    summary_merge_equals_combined;
    Alcotest.test_case "summary empty" `Quick summary_empty;
    Alcotest.test_case "tablefmt render" `Quick tablefmt_render;
    Alcotest.test_case "tablefmt row mismatch" `Quick tablefmt_row_mismatch;
    Alcotest.test_case "tablefmt charts" `Quick tablefmt_charts_do_not_crash;
  ]
